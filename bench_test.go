// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each benchmark runs the corresponding harness experiment and prints
// the same rows/series the paper reports. Run them with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are simulated (the substrate is internal/platform, not
// the authors' Haswell testbed); the shapes — who wins, by what factor,
// where crossovers fall — are the reproduction target. The shared
// environment memoizes autotuning results across benchmarks, as the paper's
// autotuner reuses its exploration results across objectives.
package repro_test

import (
	"os"
	"sync"
	"testing"

	"repro/internal/harness"
)

var (
	envOnce sync.Once
	env     *harness.Env
)

// fullEnv returns the shared full-scale environment. Set STATS_QUICK=1 to
// scale budgets down (smoke runs).
func fullEnv() *harness.Env {
	envOnce.Do(func() {
		env = harness.NewEnv(os.Getenv("STATS_QUICK") == "1")
	})
	return env
}

func BenchmarkFig02OutputVariability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig02Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig03OriginalSpeedup(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig03Table(e).Render(os.Stdout)
	}
}

func BenchmarkTable1DeveloperEffort(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		t, err := harness.Table1Table(e)
		if err != nil {
			b.Fatal(err)
		}
		t.Render(os.Stdout)
	}
}

func BenchmarkFig12Scalability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, t := range harness.Fig12Table(e) {
			t.Render(os.Stdout)
		}
	}
}

func BenchmarkFig13GeomeanScalability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig13Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig14HyperThreading(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig14Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig15Energy(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig15Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig16QualityImprovement(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig16Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig17RelatedWork(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig17Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig18TradeoffPayoff(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig18Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig19BadTraining(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig19Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig20AutotunerConvergence(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig20Table(e).Render(os.Stdout)
	}
}

// Ablation benches quantify the §3.1 design choices DESIGN.md calls out:
// group cardinality, auxiliary window, redo budget, rollback width, and the
// real engine's speculation behaviour across windows.

func BenchmarkAblationGroupSize(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateGroup).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateWindow).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationRedoBudget(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateRedo).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationRollback(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateRollback).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.SchedulerAblation(e).Render(os.Stdout)
	}
}

func BenchmarkAblationRealSpeculation(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			if !w.Desc().SupportsSTATS {
				continue
			}
			harness.SpecBehaviorTable(e, w).Render(os.Stdout)
		}
	}
}
