// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4). Each benchmark runs the corresponding harness experiment and prints
// the same rows/series the paper reports. Run them with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers are simulated (the substrate is internal/platform, not
// the authors' Haswell testbed); the shapes — who wins, by what factor,
// where crossovers fall — are the reproduction target. The shared
// environment memoizes autotuning results across benchmarks, as the paper's
// autotuner reuses its exploration results across objectives.
package repro_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/harness"
	"repro/stats"
)

var (
	envOnce sync.Once
	env     *harness.Env
)

// fullEnv returns the shared full-scale environment. Set STATS_QUICK=1 to
// scale budgets down (smoke runs).
func fullEnv() *harness.Env {
	envOnce.Do(func() {
		env = harness.NewEnv(os.Getenv("STATS_QUICK") == "1")
	})
	return env
}

// BenchmarkSchedulerWorkerSweep drives the public API end to end across
// shared-runtime worker counts, mirroring the paper's thread sweeps on the
// real (non-simulated) engine: each iteration is one speculative run whose
// groups fan out through the sharded work-stealing scheduler. The reported
// steals/op metric shows how much of the dispatch crossed workers.
func BenchmarkSchedulerWorkerSweep(b *testing.B) {
	inputs := make([]int, 512)
	for i := range inputs {
		inputs[i] = i + 1
	}
	compute := func(_ *stats.Rand, in int, s float64) (int, float64) {
		return in * 2, s + float64(in)
	}
	// inputs[i] = i+1, so the last recent input identifies the group
	// start and the exact prefix sum is closed-form: speculation always
	// validates and the benchmark measures the scheduler, not aborts.
	aux := func(_ *stats.Rand, init float64, recent []int) float64 {
		if len(recent) == 0 {
			return init
		}
		start := float64(recent[len(recent)-1])
		return init + start*(start+1)/2
	}
	match := func(spec float64, originals []float64) bool {
		for _, o := range originals {
			if spec == o {
				return true
			}
		}
		return false
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			rt := stats.NewRuntime(w)
			defer rt.Close()
			before := rt.Scheduler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sd := stats.NewStateDependence(inputs, 0.0, compute)
				sd.SetAuxiliary(aux)
				sd.SetStateOps(nil, match)
				sd.Configure(stats.Options{
					UseAux: true, GroupSize: 32, Window: 1, Seed: uint64(i),
				})
				stats.Attach(rt, sd)
				if outs, _, st := sd.Run(); len(outs) != len(inputs) || st.Aborts != 0 {
					b.Fatalf("run broke: %d outputs, %d aborts", len(outs), st.Aborts)
				}
			}
			b.StopTimer()
			m := rt.Scheduler()
			b.ReportMetric(float64(m.Steals-before.Steals)/float64(b.N), "steals/op")
		})
	}
}

func BenchmarkFig02OutputVariability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig02Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig03OriginalSpeedup(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig03Table(e).Render(os.Stdout)
	}
}

func BenchmarkTable1DeveloperEffort(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		t, err := harness.Table1Table(e)
		if err != nil {
			b.Fatal(err)
		}
		t.Render(os.Stdout)
	}
}

func BenchmarkFig12Scalability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, t := range harness.Fig12Table(e) {
			t.Render(os.Stdout)
		}
	}
}

func BenchmarkFig13GeomeanScalability(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig13Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig14HyperThreading(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig14Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig15Energy(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig15Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig16QualityImprovement(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig16Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig17RelatedWork(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig17Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig18TradeoffPayoff(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig18Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig19BadTraining(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig19Table(e).Render(os.Stdout)
	}
}

func BenchmarkFig20AutotunerConvergence(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.Fig20Table(e).Render(os.Stdout)
	}
}

// Ablation benches quantify the §3.1 design choices DESIGN.md calls out:
// group cardinality, auxiliary window, redo budget, rollback width, and the
// real engine's speculation behaviour across windows.

func BenchmarkAblationGroupSize(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateGroup).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateWindow).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationRedoBudget(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateRedo).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationRollback(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			harness.AblationTable(e, w, harness.AblateRollback).Render(os.Stdout)
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		harness.SchedulerAblation(e).Render(os.Stdout)
	}
}

func BenchmarkAblationRealSpeculation(b *testing.B) {
	e := fullEnv()
	for i := 0; i < b.N; i++ {
		for _, w := range e.Targets() {
			if !w.Desc().SupportsSTATS {
				continue
			}
			harness.SpecBehaviorTable(e, w).Render(os.Stdout)
		}
	}
}
