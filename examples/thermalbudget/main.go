// Thermal budget: predict scaling and energy on hardware you do not have.
//
// The public API re-exports the evaluation's platform simulator and energy
// model, so a user can express their own computation as a task graph, sweep
// hardware-thread counts on the paper's dual-socket machine, and compare a
// speculative (STATS-style) execution against the conventional chain —
// including the energy cost of either choice (the Fig. 12/15 methodology,
// self-served).
//
// Run with:
//
//	go run ./examples/thermalbudget
package main

import (
	"fmt"

	"repro/stats"
)

const (
	chainLength = 96
	groupSize   = 8
	invocation  = 1.0 // work units per invocation
	auxWork     = 2.0 // work units per auxiliary execution
)

// conventional builds the serialized chain of Figure 5a.
func conventional() *stats.TaskGraph {
	g := &stats.TaskGraph{}
	prev := -1
	for i := 0; i < chainLength; i++ {
		if prev < 0 {
			prev = g.Add(invocation)
		} else {
			prev = g.Add(invocation, prev)
		}
	}
	return g
}

// speculative builds the overlapped-groups shape of Figure 5b: each group
// after the first starts from an auxiliary task; a validation joins each
// adjacent pair.
func speculative() *stats.TaskGraph {
	g := &stats.TaskGraph{}
	numGroups := chainLength / groupSize
	lastOf := make([]int, numGroups)
	for j := 0; j < numGroups; j++ {
		prev := -1
		if j > 0 {
			prev = g.Add(auxWork)
		}
		for i := 0; i < groupSize; i++ {
			if prev < 0 {
				prev = g.Add(invocation)
			} else {
				prev = g.Add(invocation, prev)
			}
		}
		lastOf[j] = prev
	}
	for j := 1; j < numGroups; j++ {
		g.Add(0.02, lastOf[j-1], lastOf[j])
	}
	return g
}

func main() {
	machine := stats.Haswell28(false)
	model := stats.DefaultEnergyModel()

	conv := conventional()
	spec := speculative()
	baseline := stats.Simulate(machine, conv, 1)

	fmt.Println("threads  conventional  speculative  speedup  energy(conv)  energy(spec)")
	for _, th := range []int{1, 2, 4, 8, 14, 21, 28} {
		c := stats.Simulate(machine, conv, th)
		s := stats.Simulate(machine, spec, th)
		fmt.Printf("%7d  %12.1f  %11.1f  %6.2fx  %11.0fJ  %11.0fJ\n",
			th, c.Makespan, s.Makespan, baseline.Makespan/s.Makespan,
			model.Energy(c), model.Energy(s))
	}

	fmt.Println()
	fmt.Println("the conventional chain cannot use added threads (the state dependence")
	fmt.Println("serializes it); the speculative shape converts threads into speedup and,")
	fmt.Println("by finishing earlier, into energy savings despite the auxiliary work.")
}
