// Quickstart: parallelize a nondeterministic chain with a state dependence.
//
// The program estimates a drifting signal from a stream of noisy readings
// with a tiny randomized filter — the Figure 4 pattern: each reading
// updates an estimate (the state) that the next reading consumes, which
// serializes the chain. The auxiliary code rebuilds the estimate from just
// the last few readings, letting the runtime overlap groups of readings.
//
// Run with:
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -trace quickstart.json   # + Chrome trace
//	go run ./examples/quickstart -serve :8080 -loops 100  # + live telemetry
//
// With -trace, the run goes through a stats.Runtime (whose observability
// layer is always on) and the recorded speculation event log is exported
// as Chrome trace_event JSON — open chrome://tracing or
// https://ui.perfetto.dev and load the file to see the overlapped groups,
// validations and scheduler dispatches on a timeline.
//
// With -serve, the runtime's telemetry server comes up at the given
// address while the chain is (re)processed -loops times: curl /metrics
// for the Prometheus exposition, /healthz for the windowed speculation
// health, /spans for the causal span trees, /events for a live SSE
// stream, /trace for a Chrome-trace dump of the retained rings.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/trace"
	"repro/stats"
)

// reading is one input: a noisy observation of the signal.
type reading struct {
	Value float64
}

// estimate is the state: the filter's current belief.
type estimate struct {
	Mean float64
}

func main() {
	tracePath := flag.String("trace", "", "write the observed speculation event log as Chrome trace_event JSON")
	serve := flag.String("serve", "", "serve HTTP telemetry at this address (e.g. :8080) while the run repeats")
	loops := flag.Int("loops", 1, "with -serve, how many times to process the chain")
	flag.Parse()

	// A fixed input stream: a slow sine drift plus noise baked in at
	// generation time (the input is the same for every run; only the
	// filter's randomness varies).
	const n = 64
	inputs := make([]reading, n)
	for i := range inputs {
		inputs[i] = reading{Value: math.Sin(0.1*float64(i)) + 0.05*math.Cos(7.3*float64(i))}
	}

	// computeOutput: fold the reading into the estimate with a jittered
	// gain — the nondeterminism.
	compute := func(r *stats.Rand, in reading, s estimate) (float64, estimate) {
		gain := 0.5 + 0.1*r.Norm()
		if gain < 0.1 {
			gain = 0.1
		}
		s.Mean += gain * (in.Value - s.Mean)
		return s.Mean, s
	}

	// Auxiliary code: re-estimate from the recent window only. The
	// filter forgets quickly, so a handful of readings reproduce the
	// state.
	aux := func(r *stats.Rand, init estimate, recent []reading) estimate {
		s := init
		if len(recent) > 0 {
			s.Mean = recent[0].Value
		}
		for _, in := range recent {
			s.Mean += 0.5 * (in.Value - s.Mean)
		}
		return s
	}

	// Acceptance: the speculative estimate must sit within the spread of
	// the original (re-executed) estimates — the paper's triangulating
	// doesSpecStateMatchAny.
	match := func(spec estimate, originals []estimate) bool {
		for i := range originals {
			di := math.Abs(spec.Mean - originals[i].Mean)
			for j := range originals {
				if i != j && di <= math.Abs(originals[j].Mean-originals[i].Mean)+0.05 {
					return true
				}
			}
		}
		return len(originals) == 1 && math.Abs(spec.Mean-originals[0].Mean) < 0.05
	}
	newDep := func(seed uint64) *stats.StateDependence[reading, estimate, float64] {
		sd := stats.NewStateDependence(inputs, estimate{}, compute)
		sd.SetAuxiliary(aux)
		sd.SetStateOps(nil, match)
		// Hash-first prefilter (stats.FingerprintFunc): the digest must
		// be equal whenever match would accept. This acceptance is a
		// tolerance band over a continuous mean, so no numeric feature
		// survives an accepted pair — the digest covers only the state's
		// fixed structure and always falls through to match. A dependence
		// comparing discrete features (counts, labels) would hash those
		// and skip most deep comparisons in one probe.
		sd.SetFingerprint(func(estimate) uint64 { return 1 })
		sd.Configure(stats.Options{
			UseAux:    true,
			GroupSize: 8,
			Window:    4,
			RedoMax:   2,
			Rollback:  3,
			Workers:   8,
			Seed:      seed,
		})
		return sd
	}

	// With -serve, process the chain -loops times through a Runtime with
	// its telemetry server up, so the live endpoints have a run to show.
	if *serve != "" {
		rt := stats.NewRuntime(8)
		defer rt.Close()
		srv, err := rt.Serve(*serve)
		if err != nil {
			panic(err)
		}
		fmt.Printf("telemetry at %s (try /metrics, /healthz, /spans, /events?once=1)\n", srv.URL())
		for i := 0; i < *loops; i++ {
			sd := stats.Attach(rt, newDep(42+uint64(i)))
			_, _, st := sd.Run()
			if i == *loops-1 {
				fmt.Printf("loop %d: %d inputs, %d speculative commits, %d aborts\n",
					i+1, st.Inputs, st.SpeculativeCommits, st.Aborts)
			}
		}
		return
	}

	sd := newDep(42)

	// With -trace, run through a shared Runtime so the observability
	// layer records the speculation event log.
	var rt *stats.Runtime
	if *tracePath != "" {
		rt = stats.NewRuntime(8)
		defer rt.Close()
		stats.Attach(rt, sd)
	}

	if err := sd.Start(); err != nil {
		panic(err)
	}
	outputs, final, st := sd.Join()

	if rt != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			panic(err)
		}
		if err := trace.ChromeTrace(f, rt.Trace()); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		fmt.Printf("chrome trace with %d events written to %s (load in chrome://tracing)\n",
			len(rt.Trace()), *tracePath)
	}

	fmt.Printf("processed %d readings in %d groups\n", st.Inputs, st.Groups)
	fmt.Printf("speculative commits: %d inputs, matches: %d, redos: %d, aborts: %d\n",
		st.SpeculativeCommits, st.Matches, st.Redos, st.Aborts)
	fmt.Printf("final estimate: %.4f (last output %.4f)\n", final.Mean, outputs[len(outputs)-1])

	// Compare with the conventional run: same semantics, same quality
	// band, but serialized.
	conv := stats.NewStateDependence(inputs, estimate{}, compute)
	conv.Configure(stats.Options{Seed: 43})
	convOut, _, _ := conv.Run()
	var diff float64
	for i := range outputs {
		diff += math.Abs(outputs[i] - convOut[i])
	}
	fmt.Printf("mean |difference| vs conventional run: %.4f (both are acceptable outputs of the nondeterministic program)\n",
		diff/float64(len(outputs)))
}
