// Body tracking: the paper's flagship scenario (§2.2) on the public API.
//
// A body of several parts moves through 3-D space; each frame carries noisy
// observations of the parts. A randomized particle filter updates a body
// model per frame — the model update is the state dependence that
// serializes the program. The auxiliary code re-detects the body from the
// last few frames, which works because "where a human is at quadruple i is
// likely to be independent of where he/she was in the quadruple i-k with
// high k".
//
// Run with:
//
//	go run ./examples/bodytracking
package main

import (
	"fmt"
	"math"
	"os"

	"repro/stats"
)

const (
	parts     = 4
	particles = 96
	frames    = 48
)

type vec struct{ X, Y, Z float64 }

func (v vec) add(w vec) vec { return vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }
func (v vec) sub(w vec) vec { return vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }
func (v vec) dot(w vec) float64 {
	return v.X*w.X + v.Y*w.Y + v.Z*w.Z
}

// frame is one camera quadruple fused into per-part observations.
type frame struct {
	Obs [parts]vec
}

// model is the state: a particle set over body poses.
type model struct {
	poses [][parts]vec
}

func cloneModel(m model) model {
	c := model{poses: make([][parts]vec, len(m.poses))}
	copy(c.poses, m.poses)
	return c
}

func (m model) mean() [parts]vec {
	var out [parts]vec
	for _, p := range m.poses {
		for j := 0; j < parts; j++ {
			out[j] = out[j].add(p[j])
		}
	}
	n := float64(len(m.poses))
	for j := 0; j < parts; j++ {
		out[j] = vec{out[j].X / n, out[j].Y / n, out[j].Z / n}
	}
	return out
}

func modelDistance(a, b model) float64 {
	pa, pb := a.mean(), b.mean()
	sum := 0.0
	for j := 0; j < parts; j++ {
		d := pa[j].sub(pb[j])
		sum += math.Abs(d.X) + math.Abs(d.Y) + math.Abs(d.Z)
	}
	return sum
}

// filterStep perturbs, weighs and resamples the particle set against a
// frame (one annealing layer, for brevity). The part likelihoods
// factorize, so each part resamples independently — the trick that keeps a
// modest particle count sharp in many dimensions.
func filterStep(r *stats.Rand, m model, f frame) model {
	m = cloneModel(m)
	n := len(m.poses)
	weights := make([]float64, n)
	for j := 0; j < parts; j++ {
		total := 0.0
		for i := range m.poses {
			m.poses[i][j] = m.poses[i][j].add(vec{r.Norm() * 0.3, r.Norm() * 0.3, r.Norm() * 0.3})
			diff := m.poses[i][j].sub(f.Obs[j])
			weights[i] = math.Exp(-diff.dot(diff))
			total += weights[i]
		}
		if total == 0 {
			continue
		}
		// Systematic resampling of part j.
		picked := make([]vec, n)
		step := total / float64(n)
		u := r.Float64() * step
		cum, src := 0.0, 0
		for i := 0; i < n; i++ {
			for cum+weights[src] < u+float64(i)*step && src < n-1 {
				cum += weights[src]
				src++
			}
			picked[i] = m.poses[src][j]
		}
		for i := 0; i < n; i++ {
			m.poses[i][j] = picked[i]
		}
	}
	return m
}

func main() {
	// Synthetic scene: the body orbits slowly; observations are truth
	// plus noise, fixed at generation time.
	gen := func() []frame {
		fs := make([]frame, frames)
		for t := range fs {
			c := vec{3 * math.Sin(0.1*float64(t)), 3 * math.Cos(0.08*float64(t)), 0.1 * float64(t)}
			for j := 0; j < parts; j++ {
				off := vec{math.Cos(float64(j)), math.Sin(float64(j)), 0}
				fs[t].Obs[j] = c.add(off).add(vec{
					0.05 * math.Sin(13.7*float64(t*7+j)),
					0.05 * math.Cos(9.1*float64(t*5+j)),
					0.05 * math.Sin(5.3*float64(t*3+j)),
				})
			}
		}
		return fs
	}
	inputs := gen()

	initial := model{poses: make([][parts]vec, particles)}
	for i := range initial.poses {
		for j := 0; j < parts; j++ {
			initial.poses[i][j] = vec{float64(i%5) - 2, float64(i%3) - 1, 0}
		}
	}

	compute := func(r *stats.Rand, f frame, m model) ([parts]vec, model) {
		for layer := 0; layer < 3; layer++ {
			m = filterStep(r, m, f)
		}
		return m.mean(), m
	}

	aux := func(r *stats.Rand, init model, recent []frame) model {
		if len(recent) == 0 {
			return cloneModel(init)
		}
		// Re-detect: seed particles on the oldest recent observation,
		// then refine through the window.
		m := model{poses: make([][parts]vec, particles)}
		for i := range m.poses {
			for j := 0; j < parts; j++ {
				m.poses[i][j] = recent[0].Obs[j].add(vec{r.Norm() * 0.2, r.Norm() * 0.2, r.Norm() * 0.2})
			}
		}
		for _, f := range recent[1:] {
			// The auxiliary code is a clone of computeOutput (the
			// middle-end's deep clone), so it anneals the same way.
			for layer := 0; layer < 3; layer++ {
				m = filterStep(r, m, f)
			}
		}
		return m
	}

	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.SetAuxiliary(aux)
	sd.SetStateOps(cloneModel, func(spec model, originals []model) bool {
		// Accept if the speculative body position sits between two
		// original positions (§4.2's bodytrack acceptance). The small
		// tolerance is the developer's strictness choice, which the SDI
		// explicitly leaves open ("how strict the matching between
		// speculative and original states needs to be").
		const tol = 0.2
		for i := range originals {
			di := modelDistance(spec, originals[i])
			for j := range originals {
				if i != j && di <= modelDistance(originals[j], originals[i])+tol {
					return true
				}
			}
		}
		return false
	})
	// Hash-first prefilter: the digest must be equal whenever the match
	// above would accept. Acceptance tolerates continuous pose drift, so
	// only the particle-set structure is invariant; both producers build
	// the same particle count, so the prefilter always falls through —
	// the wiring is what this demonstrates (a discrete-feature acceptance
	// would reject most mismatches in this one probe).
	sd.SetFingerprint(func(m model) uint64 { return uint64(len(m.poses)) })
	sd.Configure(stats.Options{
		UseAux: true, GroupSize: 8, Window: 4, RedoMax: 2, Rollback: 3, Workers: 8, Seed: 7,
	})

	if err := sd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "bodytracking:", err)
		os.Exit(1)
	}
	positions, _, st := sd.Join()

	fmt.Printf("tracked %d frames in %d overlapped groups\n", len(positions), st.Groups)
	fmt.Printf("matches %d, redos %d, aborts %d, speculative commits %d frames\n",
		st.Matches, st.Redos, st.Aborts, st.SpeculativeCommits)

	// Tracking error against the known observations (after the filter's
	// burn-in from its diffuse prior).
	worst := 0.0
	for t := 4; t < len(positions); t++ {
		for j := 0; j < parts; j++ {
			d := positions[t][j].sub(inputs[t].Obs[j])
			if e := math.Sqrt(d.dot(d)); e > worst {
				worst = e
			}
		}
	}
	fmt.Printf("worst per-part tracking error after burn-in: %.3f (observation noise is ~0.05)\n", worst)
}
