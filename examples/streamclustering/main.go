// Stream clustering: a by-construction state dependence on the public API.
//
// An online k-median clusterer consumes a point stream; whether a point
// opens a new center is a randomized decision over the current solution —
// the solution update is the state dependence. Because the stream is
// stationary, a solution the auxiliary code builds from a window of recent
// points is a state the nondeterministic original producer could have
// produced, so no comparison function is needed (the paper's streamcluster
// case): speculation always commits.
//
// The example also autotunes the runtime knobs against real wall-clock
// time with stats.Tune.
//
// Run with:
//
//	go run ./examples/streamclustering
package main

import (
	"fmt"
	"math"

	"repro/stats"
)

const (
	dim           = 3
	pointsPerItem = 32
	items         = 64
	maxCenters    = 8
)

type point [dim]float64

type batch struct {
	Points []point
}

type solution struct {
	Centers []point
	Weights []float64
	Cost    float64
}

func cloneSolution(s solution) solution {
	c := solution{
		Centers: append([]point(nil), s.Centers...),
		Weights: append([]float64(nil), s.Weights...),
		Cost:    s.Cost,
	}
	return c
}

func sqDist(a, b point) float64 {
	sum := 0.0
	for d := 0; d < dim; d++ {
		diff := a[d] - b[d]
		sum += diff * diff
	}
	return sum
}

func addPoint(r *stats.Rand, s *solution, p point) {
	if len(s.Centers) == 0 {
		s.Centers = append(s.Centers, p)
		s.Weights = append(s.Weights, 1)
		s.Cost = 1
		return
	}
	best, bi := math.Inf(1), 0
	for i, c := range s.Centers {
		if d := sqDist(c, p); d < best {
			best, bi = d, i
		}
	}
	if len(s.Centers) < maxCenters && r.Float64() < math.Min(1, best/math.Max(s.Cost, 1e-9)) {
		s.Centers = append(s.Centers, p)
		s.Weights = append(s.Weights, 1)
	} else {
		w := s.Weights[bi]
		for d := 0; d < dim; d++ {
			s.Centers[bi][d] = (s.Centers[bi][d]*w + p[d]) / (w + 1)
		}
		s.Weights[bi] = w + 1
	}
	s.Cost = 0.95*s.Cost + 0.05*best*4
}

func genStream() []batch {
	// Five well-separated components, deterministic pseudo-noise.
	centers := [5]point{{0, 0, 0}, {8, 0, 0}, {0, 8, 0}, {0, 0, 8}, {8, 8, 8}}
	bs := make([]batch, items)
	k := 0
	for i := range bs {
		bs[i].Points = make([]point, pointsPerItem)
		for j := range bs[i].Points {
			c := centers[(i*pointsPerItem+j)%5]
			for d := 0; d < dim; d++ {
				k++
				bs[i].Points[j][d] = c[d] + math.Sin(float64(k)*12.9898)*1.1
			}
		}
	}
	return bs
}

func main() {
	inputs := genStream()

	compute := func(r *stats.Rand, b batch, s solution) (int, solution) {
		s = cloneSolution(s)
		for _, p := range b.Points {
			addPoint(r, &s, p)
		}
		// Quality estimation of the current solution — the expensive
		// part of the real benchmark (repeated nearest-center scans).
		est := 0.0
		for pass := 0; pass < 60; pass++ {
			for _, p := range b.Points {
				best := math.Inf(1)
				for _, c := range s.Centers {
					if d := sqDist(c, p); d < best {
						best = d
					}
				}
				est += best
			}
		}
		s.Cost = 0.99*s.Cost + 1e-6*est
		return len(s.Centers), s
	}
	aux := func(r *stats.Rand, init solution, recent []batch) solution {
		s := cloneSolution(init)
		for _, b := range recent {
			for _, p := range b.Points {
				addPoint(r, &s, p)
			}
		}
		return s
	}

	build := func(o stats.Options) ([]int, solution, stats.RunStats) {
		sd := stats.NewStateDependence(inputs, solution{}, compute)
		sd.SetAuxiliary(aux)
		sd.SetStateOps(cloneSolution, nil) // by-construction acceptance
		sd.Configure(o)
		return sd.Run()
	}

	// Autotune the runtime knobs against real wall-clock time.
	res := stats.Tune(stats.TuneSpace{}, stats.TimedBenchmark(func(o stats.Options, _ []int64) {
		build(o)
	}), 60, 11)

	fmt.Printf("autotuned over %d configurations\n", res.Evaluations)
	fmt.Printf("best: aux=%v group=%d window=%d workers=%d (speedup %.2fx over the serial baseline)\n",
		res.Options.UseAux, res.Options.GroupSize, res.Options.Window, res.Options.Workers, res.Speedup())

	counts, final, st := build(res.Options)
	fmt.Printf("clustered %d batches in %d groups; matches %d, aborts %d\n",
		len(counts), st.Groups, st.Matches, st.Aborts)
	fmt.Printf("final solution: %d centers\n", len(final.Centers))
	for i, c := range final.Centers {
		fmt.Printf("  center %d at (%.1f, %.1f, %.1f) weight %.0f\n", i, c[0], c[1], c[2], final.Weights[i])
	}
}
