package repro_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented enforces the deliverable "doc comments
// on every public item": every exported type, function, method, constant
// and variable in non-test source must carry a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range file.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					missing = append(missing, pos(fset, dd.Pos(), "func "+dd.Name.Name))
				}
			case *ast.GenDecl:
				// A doc comment on the GenDecl covers grouped specs
				// (const blocks, var blocks).
				groupDoc := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc == nil {
							missing = append(missing, pos(fset, sp.Pos(), "type "+sp.Name.Name))
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && !groupDoc && sp.Doc == nil && sp.Comment == nil {
								missing = append(missing, pos(fset, sp.Pos(), "value "+n.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) > 0 {
		t.Fatalf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// TestPackagesHaveDocComments requires a package comment on every package
// (on at least one file).
func TestPackagesHaveDocComments(t *testing.T) {
	fset := token.NewFileSet()
	documented := map[string]bool{}
	seen := map[string]bool{}

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		if file.Doc != nil {
			documented[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for dir := range seen {
		if !documented[dir] {
			missing = append(missing, dir)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("packages without package doc comments: %s", strings.Join(missing, ", "))
	}
}

func pos(fset *token.FileSet, p token.Pos, what string) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line) + " " + what
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
