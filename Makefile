# STATS reproduction — build/verify entry points.
#
# `make test` is the tier-1 verify (ROADMAP.md). `make race` is the
# concurrency tier: the whole suite under the race detector, including the
# scheduler's Submit/SubmitBatch/Go-vs-Close stress tests in
# internal/pool/race_test.go. `make check` is test + vet.

GO ?= go

.PHONY: build test check race vet bench-pool bench bench-gate bench-paper fuzz bench-obs serve-smoke chaos explore explore-long

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The full local gate: tier-1 tests, the static-analysis suite, the
# telemetry-server smoke (boot, curl every endpoint, assert statuses),
# the allocation-budget gate over the profiler's warm paths, the
# fault-injection campaign, and the bounded schedule exploration.
check: test vet serve-smoke bench-gate chaos explore

race:
	$(GO) test -race ./...

# Static analysis: the standard Go vet, then statsvet — the IR/source
# passes over the checked-in example program and the runtime-API
# analyzers over the repository's user-facing Go code.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/statsvet testdata/bodytrack.stats ./examples ./internal/workload ./stats
	$(GO) run ./cmd/statsvet -footprints cmd/statsvet/testdata/corpus/good/*.stats

# Scheduler benchmarks: sharded work-stealing pool vs the single-channel
# baseline, plus the engine's group fan-out across worker counts.
bench-pool:
	$(GO) test -run '^$$' -bench 'Submit|Fanout' -benchmem ./internal/pool ./internal/core

# Hot-path benchmark snapshot: the telemetry scrape-under-load and Emit
# microbenchmarks, the always-on profiler's warm paths (incremental span
# folding, windowed signals report), the engine's speculative run with
# the controlled scheduler off (nil fast path) and on, the
# deterministic-reservations protocol, and the engine's recycled hot
# path (warm vs cold run, grouping, hash-first acceptance), written to
# $(BENCH) (the checked-in regression reference continuing
# BENCH_pr9.json). The run also enforces the allocs/op ceilings in
# BENCH_budget.json.
BENCH ?= BENCH_pr10.json

bench:
	$(GO) run ./cmd/statsbench -out $(BENCH) -budget BENCH_budget.json

# Quick allocation-budget gate for `make check`: re-measure the profiler's
# warm paths and the engine's recycled hot path with a small -benchtime
# and fail on any allocs/op ceiling violation, without rewriting the
# checked-in snapshot.
bench-gate:
	$(GO) run ./cmd/statsbench -benchtime 100x -pkgs telemetry,core -budget BENCH_budget.json -out ""

# Full evaluation benchmarks (paper tables/figures). STATS_QUICK=1 scales
# budgets down for smoke runs.
bench-paper:
	$(GO) test -run '^$$' -bench . -benchmem .

# Boot a telemetry-serving run and curl every endpoint.
serve-smoke:
	sh scripts/serve_smoke.sh

# Chaos: the seeded fault-injection campaign (internal/fault) against the
# §3.1 output guarantee — aux panics, garbage speculative states, transient
# compute panics, delays; must not crash, must preserve outputs, and the
# failure counters must reconcile across Stats, the event log and a live
# /metrics scrape. The pinned seed keeps the injection schedule fixed.
chaos:
	$(GO) run ./cmd/statsexp -exp chaos -quick -seed 51966

# Systematic schedule exploration: every engine run's nondeterministic
# decision points (group dispatch, validate/squash races, steal choices)
# are driven by seeded controllers — alternating a random walk and PCT —
# and checked against the schedule-invariance/§3.1 output contracts;
# recorded traces are sampled for replay fidelity and any failure is
# delta-debugged to a minimal trace in testdata/schedules/. The quick
# variant is pinned and bounded for the local gate; explore-long sweeps
# the full schedule budget.
explore:
	$(GO) run ./cmd/statsexp -exp explore -quick -seed 51966 -schedules 6

explore-long:
	$(GO) run ./cmd/statsexp -exp explore -schedules 50

# Fuzzing. Front end: FuzzParse checks accepted inputs round-trip through
# a canonical re-rendering; FuzzTranslate checks translation invariants.
# Analysis: FuzzVerify drives random programs through the pipeline — the
# passes must never panic, pipeline output must verify, and
# verifier-accepted modules must be accepted by the back-end. Go runs one
# fuzz target per invocation, so three runs. Override the budget with
# FUZZTIME=1m etc.
FUZZTIME ?= 10s

fuzz:
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzTranslate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis -run '^$$' -fuzz '^FuzzVerify$$' -fuzztime $(FUZZTIME)

# Observability-layer benchmarks: the disabled fast path (must stay under
# a handful of ns) and the enabled emit/observe costs.
bench-obs:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/obs
