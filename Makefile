# STATS reproduction — build/verify entry points.
#
# `make test` is the tier-1 verify (ROADMAP.md). `make race` is the
# concurrency tier: the whole suite under the race detector, including the
# scheduler's Submit/SubmitBatch/Go-vs-Close stress tests in
# internal/pool/race_test.go. `make check` is test + vet.

GO ?= go

.PHONY: build test check race vet bench-pool bench bench-paper fuzz bench-obs serve-smoke chaos

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The full local gate: tier-1 tests, the static-analysis suite, the
# telemetry-server smoke (boot, curl every endpoint, assert statuses), and
# the fault-injection campaign.
check: test vet serve-smoke chaos

race:
	$(GO) test -race ./...

# Static analysis: the standard Go vet, then statsvet — the IR/source
# passes over the checked-in example program and the runtime-API
# analyzers over the repository's user-facing Go code.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/statsvet testdata/bodytrack.stats ./examples ./internal/workload ./stats

# Scheduler benchmarks: sharded work-stealing pool vs the single-channel
# baseline, plus the engine's group fan-out across worker counts.
bench-pool:
	$(GO) test -run '^$$' -bench 'Submit|Fanout' -benchmem ./internal/pool ./internal/core

# Telemetry/observability benchmark snapshot: runs the scrape-under-load
# and Emit microbenchmarks through cmd/statsbench and writes the parsed
# results to BENCH_pr4.json (the checked-in regression reference).
bench:
	$(GO) run ./cmd/statsbench -out BENCH_pr4.json

# Full evaluation benchmarks (paper tables/figures). STATS_QUICK=1 scales
# budgets down for smoke runs.
bench-paper:
	$(GO) test -run '^$$' -bench . -benchmem .

# Boot a telemetry-serving run and curl every endpoint.
serve-smoke:
	sh scripts/serve_smoke.sh

# Chaos: the seeded fault-injection campaign (internal/fault) against the
# §3.1 output guarantee — aux panics, garbage speculative states, transient
# compute panics, delays; must not crash, must preserve outputs, and the
# failure counters must reconcile across Stats, the event log and a live
# /metrics scrape. The pinned seed keeps the injection schedule fixed.
chaos:
	$(GO) run ./cmd/statsexp -exp chaos -quick -seed 51966

# Fuzzing. Front end: FuzzParse checks accepted inputs round-trip through
# a canonical re-rendering; FuzzTranslate checks translation invariants.
# Analysis: FuzzVerify drives random programs through the pipeline — the
# passes must never panic, pipeline output must verify, and
# verifier-accepted modules must be accepted by the back-end. Go runs one
# fuzz target per invocation, so three runs. Override the budget with
# FUZZTIME=1m etc.
FUZZTIME ?= 10s

fuzz:
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzTranslate$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/analysis -run '^$$' -fuzz '^FuzzVerify$$' -fuzztime $(FUZZTIME)

# Observability-layer benchmarks: the disabled fast path (must stay under
# a handful of ns) and the enabled emit/observe costs.
bench-obs:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/obs
