# STATS reproduction — build/verify entry points.
#
# `make test` is the tier-1 verify (ROADMAP.md). `make race` is the
# concurrency tier: the whole suite under the race detector, including the
# scheduler's Submit/SubmitBatch/Go-vs-Close stress tests in
# internal/pool/race_test.go.

GO ?= go

.PHONY: build test race bench-pool bench fuzz bench-obs

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Scheduler benchmarks: sharded work-stealing pool vs the single-channel
# baseline, plus the engine's group fan-out across worker counts.
bench-pool:
	$(GO) test -run '^$$' -bench 'Submit|Fanout' -benchmem ./internal/pool ./internal/core

# Full evaluation benchmarks (paper tables/figures). STATS_QUICK=1 scales
# budgets down for smoke runs.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Front-end parser fuzzing: FuzzParse checks accepted inputs round-trip
# through a canonical re-rendering; FuzzTranslate checks translation
# invariants. Go runs one fuzz target per invocation, so two runs.
# Override the budget with FUZZTIME=1m etc.
FUZZTIME ?= 10s

fuzz:
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/frontend -run '^$$' -fuzz '^FuzzTranslate$$' -fuzztime $(FUZZTIME)

# Observability-layer benchmarks: the disabled fast path (must stay under
# a handful of ns) and the enabled emit/observe costs.
bench-obs:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/obs
