package stats

import (
	"math"
	"testing"
)

// counter is a toy state: a value accumulated across invocations.
type counter struct{ V float64 }

func computeDouble(r *Rand, in int, s counter) (int, counter) {
	s.V += float64(in)
	return in * 2, s
}

func exactAux(inputs []int) AuxFunc[int, counter] {
	prefix := make([]float64, len(inputs)+1)
	for i, v := range inputs {
		prefix[i+1] = prefix[i] + float64(v)
	}
	return func(r *Rand, init counter, recent []int) counter {
		// Reconstruct the chain position from the recent window (tests
		// only; a real aux would use domain knowledge).
		for start := 0; start <= len(inputs); start++ {
			lo := start - len(recent)
			if lo < 0 {
				continue
			}
			ok := true
			for i, v := range inputs[lo:start] {
				if recent[i] != v {
					ok = false
					break
				}
			}
			if ok {
				return counter{V: init.V + prefix[start]}
			}
		}
		return counter{V: math.NaN()}
	}
}

func inputsN(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i + 1
	}
	return in
}

func TestStartJoin(t *testing.T) {
	inputs := inputsN(12)
	sd := NewStateDependence(inputs, counter{}, computeDouble)
	sd.SetAuxiliary(exactAux(inputs))
	sd.SetStateOps(nil, func(spec counter, originals []counter) bool {
		for _, o := range originals {
			if math.Abs(spec.V-o.V) < 1e-9 {
				return true
			}
		}
		return false
	})
	sd.Configure(Options{UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 1})
	if err := sd.Start(); err != nil {
		t.Fatal(err)
	}
	outs, final, st := sd.Join()
	if len(outs) != 12 {
		t.Fatalf("outputs: %d", len(outs))
	}
	for i, o := range outs {
		if o != (i+1)*2 {
			t.Fatalf("output %d = %d", i, o)
		}
	}
	if final.V != 78 {
		t.Fatalf("final: %v", final.V)
	}
	if st.Matches != 3 || st.Aborts != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	sd := NewStateDependence(inputsN(3), counter{}, computeDouble)
	if err := sd.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sd.Start(); err != ErrAlreadyStarted {
		t.Fatalf("second Start: %v", err)
	}
	sd.Join()
}

func TestJoinWithoutStartRunsSynchronously(t *testing.T) {
	sd := NewStateDependence(inputsN(5), counter{}, computeDouble)
	outs, final, _ := sd.Join()
	if len(outs) != 5 || final.V != 15 {
		t.Fatalf("sync run: %d outputs, final %v", len(outs), final.V)
	}
}

func TestNilComputePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewStateDependence[int, counter, int](nil, counter{}, nil)
}

func TestNewTradeoffAndOptions(t *testing.T) {
	tr := NewTradeoff("AnnealingLayers", ConstantTradeoff, IntRangeOptions(1, 10, 4))
	if tr.Default().(int64) != 5 {
		t.Fatalf("default: %v", tr.Default())
	}
	e := EnumOptions(1, "a", "b", "c")
	if e.MaxIndex() != 3 || e.Value(1).(string) != "b" {
		t.Fatal("enum options")
	}
	p := PrecisionOptions()
	if p.Value(p.DefaultIndex()).(Precision) != Double {
		t.Fatal("precision default")
	}
}

func TestTuneFindsSpeculation(t *testing.T) {
	// A synthetic benchmark where speculation with a wide-enough window
	// is strictly faster: cost model evaluated analytically so the test
	// is instant and deterministic.
	bench := func(o Options, idx []int64) float64 {
		n := 64.0
		if !o.UseAux || o.GroupSize < 1 || o.GroupSize >= 64 {
			return n // sequential
		}
		groups := math.Ceil(n / float64(o.GroupSize))
		workers := float64(o.Workers)
		if workers < 1 {
			workers = 1
		}
		// Parallel groups plus aux overhead; small windows mismatch.
		perGroup := float64(o.GroupSize) + float64(o.Window)
		wall := perGroup * math.Ceil(groups/workers)
		if o.Window < 2 {
			wall += n / 2 // abort-and-fallback penalty
		}
		return wall
	}
	res := Tune(TuneSpace{}, bench, 200, 7)
	if !res.Options.UseAux {
		t.Fatal("tuner should enable speculation")
	}
	if res.Options.Window < 2 {
		t.Fatalf("tuner kept a mismatching window: %+v", res.Options)
	}
	if res.Speedup() <= 1 {
		t.Fatalf("speedup: %v", res.Speedup())
	}
	if res.Evaluations != 200 {
		t.Fatalf("evaluations: %d", res.Evaluations)
	}
}

func TestTuneWithTradeoffs(t *testing.T) {
	layers := NewTradeoff("Layers", ConstantTradeoff, IntRangeOptions(1, 10, 9))
	bench := func(o Options, idx []int64) float64 {
		// Cheaper aux tradeoff is better as long as it's >= index 2.
		cost := 10 + float64(idx[0])
		if idx[0] < 2 {
			cost += 100
		}
		return cost
	}
	res := Tune(TuneSpace{Tradeoffs: []Tradeoff{layers}}, bench, 150, 3)
	if res.TradeoffIdx[0] != 2 {
		t.Fatalf("tradeoff index: %d", res.TradeoffIdx[0])
	}
}

func TestTimedBenchmark(t *testing.T) {
	b := TimedBenchmark(func(o Options, idx []int64) {})
	if v := b(Options{}, nil); v < 0 {
		t.Fatalf("negative time: %v", v)
	}
}

func TestSimulationFacade(t *testing.T) {
	m := Haswell28(false)
	g := &TaskGraph{}
	for i := 0; i < 28; i++ {
		g.Add(1)
	}
	r := Simulate(m, g, 28)
	if r.Makespan != 1 {
		t.Fatalf("makespan: %v", r.Makespan)
	}
	if e := DefaultEnergyModel().Energy(r); e <= 0 {
		t.Fatalf("energy: %v", e)
	}
}

// TestReservationsProtocolThroughFacade runs a slotted dependence through
// the public API under ProtocolReservations with the footprint oracle on,
// and requires byte-identical results to the sequential formulation plus
// actual speculative commits.
func TestReservationsProtocolThroughFacade(t *testing.T) {
	const slots = 4
	compute := func(r *Rand, in int, s []float64) (int, []float64) {
		s[in%slots] += float64(in)
		return in * 3, s
	}
	build := func() *StateDependence[int, []float64, int] {
		sd := NewStateDependence(inputsN(32), make([]float64, slots), compute)
		sd.SetStateOps(func(s []float64) []float64 {
			return append([]float64(nil), s...)
		}, nil)
		sd.SetReserve(ReserveOps[int, []float64]{
			NumSlots:  func(initial []float64) int { return len(initial) },
			Footprint: func(in int, _ []float64) []int { return []int{in % slots} },
			Merge: func(dst, src []float64, touched []int) []float64 {
				for _, sl := range touched {
					dst[sl] = src[sl]
				}
				return dst
			},
			Touched: func(before, after []float64) []int {
				var out []int
				for i := range before {
					if before[i] != after[i] {
						out = append(out, i)
					}
				}
				return out
			},
		})
		return sd
	}

	seq := build().Configure(Options{Protocol: ProtocolReservations, Seed: 7})
	seqOuts, seqFinal, _ := seq.Run()

	spec := build().Configure(Options{
		UseAux: true, Protocol: ProtocolReservations, FootprintCheck: true,
		GroupSize: 8, Workers: 4, Seed: 7,
	})
	outs, final, st := spec.Run()

	for i := range seqOuts {
		if outs[i] != seqOuts[i] {
			t.Fatalf("output %d: got %d, want %d", i, outs[i], seqOuts[i])
		}
	}
	for i := range seqFinal {
		if final[i] != seqFinal[i] {
			t.Fatalf("final slot %d: got %v, want %v", i, final[i], seqFinal[i])
		}
	}
	if st.SpeculativeCommits == 0 {
		t.Fatalf("no speculative commits under reservations: %+v", st)
	}
	if st.FootprintViolations != 0 {
		t.Fatalf("oracle flagged a sound footprint: %+v", st)
	}
}

// TestParseProtocol round-trips the protocol names.
func TestParseProtocol(t *testing.T) {
	if p, ok := ParseProtocol("reservations"); !ok || p != ProtocolReservations {
		t.Fatalf("ParseProtocol(reservations) = %v, %v", p, ok)
	}
	if p, ok := ParseProtocol("aux"); !ok || p != ProtocolAux {
		t.Fatalf("ParseProtocol(aux) = %v, %v", p, ok)
	}
	if _, ok := ParseProtocol("bogus"); ok {
		t.Fatal("ParseProtocol accepted an unknown name")
	}
}
