package stats

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/ir"
)

// brokenAuxModule builds the canonical contract violation: a dependence
// whose auxiliary clone writes a state variable other than its own
// speculative start state (through a shared helper, so the clone is still
// congruent with the original and only the effect analysis can see it).
func brokenAuxModule() *ir.Module {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "flushStats", Instrs: []ir.Instr{
		{Op: ir.StateWrite, Name: "GlobalStats"},
	}})
	body := []ir.Instr{
		{Op: ir.InputRead},
		{Op: ir.StateRead, Name: "Model"},
		{Op: ir.Call, Callee: "flushStats"},
		{Op: ir.StateWrite, Name: "Model"},
	}
	m.AddFunction(&ir.Function{Name: "update", Instrs: body})
	m.AddFunction(&ir.Function{Name: "update$aux$track", Instrs: body})
	m.Deps = append(m.Deps, ir.DepMeta{
		Name: "track", Input: "Frame", State: "Model", Output: "Pose",
		Compute: "update", AuxCompute: "update$aux$track", Window: 2,
	})
	return m
}

// TestInstallProgramGate is the static half of the regression pair: a
// program whose aux writes a non-speculative state variable is refused by
// the runtime's verification gate, and accepted only after the explicit
// AllowUnverified opt-out.
func TestInstallProgramGate(t *testing.T) {
	prog, err := backend.Compile(brokenAuxModule(), backend.Config{}, 0)
	if err != nil {
		t.Fatalf("backend alone does not police effects, Compile must succeed: %v", err)
	}

	rt := NewRuntime(2)
	defer rt.Close()
	err = rt.InstallProgram(prog)
	if err == nil {
		t.Fatal("InstallProgram accepted a program whose aux writes foreign state")
	}
	if !strings.Contains(err.Error(), "GlobalStats") {
		t.Fatalf("rejection does not name the offending state variable: %v", err)
	}
	if got := len(rt.Programs()); got != 0 {
		t.Fatalf("rejected program was still installed (%d programs)", got)
	}

	rt.AllowUnverified()
	if err := rt.InstallProgram(prog); err != nil {
		t.Fatalf("InstallProgram after AllowUnverified: %v", err)
	}
	if got := len(rt.Programs()); got != 1 {
		t.Fatalf("want 1 installed program after opt-out, got %d", got)
	}
}

// TestUnverifiedAuxCaughtByRuntimeValidation is the dynamic half: with
// the static gate opted out, an auxiliary function that produces garbage
// speculative start states is caught by the runtime's validation — the
// mismatch path aborts the speculation — and the outputs still match the
// sequential reference because aborted groups re-execute conventionally.
func TestUnverifiedAuxCaughtByRuntimeValidation(t *testing.T) {
	inputs := make([]int, 64)
	for i := range inputs {
		inputs[i] = i + 1
	}
	compute := func(r *Rand, in, sum int) (int, int) {
		return sum + in, sum + in
	}
	reference := func() []int {
		out := make([]int, len(inputs))
		sum := 0
		for i, in := range inputs {
			sum += in
			out[i] = sum
		}
		return out
	}()

	sd := NewStateDependence(inputs, 0, compute)
	// The corrupting aux: instead of predicting the running sum from the
	// recent inputs, it invents a state no original run can match.
	sd.SetAuxiliary(func(r *Rand, init int, recent []int) int {
		return -1 << 20
	})
	sd.SetStateOps(func(s int) int { return s }, func(spec int, originals []int) bool {
		for _, o := range originals {
			if spec == o {
				return true
			}
		}
		return false
	})
	sd.Configure(Options{
		UseAux: true, GroupSize: 8, Window: 2, RedoMax: 1, Rollback: 2, Workers: 4, Seed: 1,
	})
	outs, final, st := sd.Run()

	if st.Aborts == 0 {
		t.Fatalf("corrupting aux was never caught: stats %+v", st)
	}
	if st.Matches != 0 {
		t.Fatalf("garbage speculative states matched %d times: stats %+v", st.Matches, st)
	}
	if final != reference[len(reference)-1] {
		t.Fatalf("final state %d, want %d", final, reference[len(reference)-1])
	}
	for i := range reference {
		if outs[i] != reference[i] {
			t.Fatalf("output[%d] = %d, want %d (aborted groups must re-execute conventionally)", i, outs[i], reference[i])
		}
	}
}
