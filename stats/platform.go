package stats

import (
	"repro/internal/energy"
	"repro/internal/platform"
)

// The platform and energy types are re-exported so downstream users can
// run the same simulated thread-sweep studies the evaluation harness uses
// (e.g. to predict how their own state dependences would scale on a
// machine they do not have).

// Machine is a simulated multicore platform (sockets, cores, optional
// Hyper-Threading, NUMA penalty).
type Machine = platform.Machine

// TaskGraph is a dependence graph of abstract work units schedulable on a
// Machine.
type TaskGraph = platform.Graph

// SimResult reports a simulation: makespan and occupancy trace.
type SimResult = platform.Result

// EnergyModel integrates an affine power model over an occupancy trace.
type EnergyModel = energy.Model

// Haswell28 returns the paper's evaluation platform: two sockets with 14
// cores each (§4.1), Hyper-Threading optional.
func Haswell28(hyperThreading bool) Machine { return platform.Haswell28(hyperThreading) }

// Simulate schedules the graph on the first `threads` hardware threads of
// the machine and returns the makespan and occupancy trace.
func Simulate(m Machine, g *TaskGraph, threads int) SimResult {
	return platform.Simulate(m, g, threads)
}

// DefaultEnergyModel returns the power model calibrated to the paper's
// platform (two 120 W packages plus system overhead).
func DefaultEnergyModel() EnergyModel { return energy.Default() }
