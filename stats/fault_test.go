package stats

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

func matchCounter(spec counter, originals []counter) bool {
	for _, o := range originals {
		if math.Abs(spec.V-o.V) < 1e-9 {
			return true
		}
	}
	return false
}

func TestStartStreamPanicClosesChannelAndJoinReports(t *testing.T) {
	// A deterministic user-code panic reaches the sequential fallback,
	// where no containment is possible — but the committed-output channel
	// must still close and join must report the failure instead of the
	// process crashing with a reader blocked on the channel.
	inputs := inputsN(16)
	compute := func(r *Rand, in int, s counter) (int, counter) {
		if in == 6 {
			panic("stream bug")
		}
		return computeDouble(r, in, s)
	}
	sd := NewStateDependence(inputs, counter{}, compute)
	sd.SetAuxiliary(exactAux(inputs))
	sd.SetStateOps(nil, matchCounter)
	sd.Configure(Options{UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 9})

	ch, join := sd.StartStream()
	drained := make(chan int, 1)
	go func() {
		n := 0
		for range ch {
			n++
		}
		drained <- n
	}()
	select {
	case n := <-drained:
		if n >= 16 {
			t.Fatalf("drained %d outputs despite the panic", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("channel never closed after user-code panic")
	}
	_, _, _, err := join()
	if err == nil {
		t.Fatal("join returned nil error after user-code panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error type %T, want *PanicError", err)
	}
	if pe.Value != "stream bug" {
		t.Fatalf("panic value %v", pe.Value)
	}
}

func TestStartStreamTransientPanicContained(t *testing.T) {
	// A panic that fires only on the speculative lane is contained by the
	// engine; the stream completes and join reports success.
	inputs := inputsN(16)
	var tripped atomic.Bool
	compute := func(r *Rand, in int, s counter) (int, counter) {
		if in == 10 && tripped.CompareAndSwap(false, true) {
			panic("transient")
		}
		return computeDouble(r, in, s)
	}
	sd := NewStateDependence(inputs, counter{}, compute)
	sd.SetAuxiliary(exactAux(inputs))
	sd.SetStateOps(nil, matchCounter)
	sd.Configure(Options{UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 9})

	ch, join := sd.StartStream()
	n := 0
	for c := range ch {
		if c.Index != n {
			t.Fatalf("order: got %d want %d", c.Index, n)
		}
		n++
	}
	if n != 16 {
		t.Fatalf("streamed %d/16", n)
	}
	outs, _, st, err := join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if len(outs) != 16 {
		t.Fatalf("outputs: %d", len(outs))
	}
	if st.PanickedGroups < 1 {
		t.Fatalf("PanickedGroups = %d, want >= 1", st.PanickedGroups)
	}
}

func TestRunCheckedPublicAPI(t *testing.T) {
	inputs := inputsN(8)
	compute := func(r *Rand, in int, s counter) (int, counter) {
		panic("api bug")
	}
	sd := NewStateDependence(inputs, counter{}, compute)
	_, _, _, err := sd.RunChecked()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RunChecked error %v (%T), want *PanicError", err, err)
	}
}

func TestOptionsBreakerAndTimeoutPlumbed(t *testing.T) {
	// The SDI-level Options fields must reach the engine: a pre-tripped
	// breaker suppresses speculation, and GroupTimeout squashes slow
	// speculative lanes.
	clk := time.Unix(1700000000, 0)
	b := NewBreaker(BreakerConfig{Now: func() time.Time { return clk }})
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker not tripped")
	}
	inputs := inputsN(16)
	sd := NewStateDependence(inputs, counter{}, computeDouble)
	sd.SetAuxiliary(exactAux(inputs))
	sd.SetStateOps(nil, matchCounter)
	sd.Configure(Options{
		UseAux: true, GroupSize: 4, Window: 16, Workers: 2, Seed: 1,
		Breaker: b,
	})
	_, _, st := sd.Run()
	if st.BreakerDenied != 1 || st.Groups != 1 {
		t.Fatalf("breaker not plumbed: denied=%d groups=%d", st.BreakerDenied, st.Groups)
	}

	slow := func(r *Rand, in int, s counter) (int, counter) {
		if in > 4 {
			time.Sleep(15 * time.Millisecond)
		}
		return computeDouble(r, in, s)
	}
	sd2 := NewStateDependence(inputs, counter{}, slow)
	sd2.SetAuxiliary(exactAux(inputs))
	sd2.SetStateOps(nil, matchCounter)
	sd2.Configure(Options{
		UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 1,
		GroupTimeout: time.Millisecond,
	})
	_, _, st2 := sd2.Run()
	if st2.TimedOutGroups < 1 {
		t.Fatalf("GroupTimeout not plumbed: TimedOutGroups=%d", st2.TimedOutGroups)
	}
}

func TestJoinAfterSynchronousRunReturnsCachedResults(t *testing.T) {
	// A second Join (or Run) after a synchronous first run must return the
	// completed run's results, not block on the never-created done channel.
	inputs := inputsN(8)
	sd := NewStateDependence(inputs, counter{}, computeDouble)
	outs1, _, _ := sd.Run()
	done := make(chan []int, 1)
	go func() {
		outs2, _, _ := sd.Run()
		done <- outs2
	}()
	select {
	case outs2 := <-done:
		if len(outs2) != len(outs1) {
			t.Fatalf("second Run returned %d outputs, first %d", len(outs2), len(outs1))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second Run blocked after a synchronous first run")
	}
}
