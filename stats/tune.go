package stats

import (
	"time"

	"repro/internal/autotune"
	"repro/internal/space"
)

// TuneSpace describes the dimensions Tune explores. Zero values select the
// defaults the paper's state space uses.
type TuneSpace struct {
	// GroupSizes, Windows, Redos and Rollbacks enumerate the engine
	// dimensions.
	GroupSizes []int64
	Windows    []int64
	Redos      []int64
	Rollbacks  []int64
	// Tradeoffs are the auxiliary-code tradeoffs to tune; the chosen
	// indices are reported in TuneResult.TradeoffIdx aligned with this
	// slice.
	Tradeoffs []Tradeoff
	// MaxWorkers bounds the runtime worker pool (defaults to 8).
	MaxWorkers int64
}

func (ts TuneSpace) withDefaults() TuneSpace {
	if ts.GroupSizes == nil {
		ts.GroupSizes = []int64{2, 4, 8, 16}
	}
	if ts.Windows == nil {
		ts.Windows = []int64{0, 1, 2, 4, 8}
	}
	if ts.Redos == nil {
		ts.Redos = []int64{0, 1, 2, 3}
	}
	if ts.Rollbacks == nil {
		ts.Rollbacks = []int64{1, 2, 4}
	}
	if ts.MaxWorkers < 1 {
		ts.MaxWorkers = 8
	}
	return ts
}

// TuneResult is the autotuner's outcome for a state dependence.
type TuneResult struct {
	// Options is the best configuration found.
	Options Options
	// TradeoffIdx are the chosen auxiliary tradeoff indices, aligned
	// with TuneSpace.Tradeoffs.
	TradeoffIdx []int64
	// BestSeconds is the best measured wall-clock time.
	BestSeconds float64
	// BaselineSeconds is the conventional execution's time.
	BaselineSeconds float64
	// Evaluations is the number of configurations profiled.
	Evaluations int
}

// Speedup returns baseline/best.
func (r TuneResult) Speedup() float64 {
	if r.BestSeconds == 0 {
		return 0
	}
	return r.BaselineSeconds / r.BestSeconds
}

// Benchmark runs a candidate configuration on training inputs and returns
// its wall-clock seconds. Tune calls it for every configuration it probes;
// implementations typically construct a StateDependence over the training
// inputs, Run it, and time it.
type Benchmark func(o Options, tradeoffIdx []int64) float64

// Tune explores the state space for the fastest configuration of a state
// dependence, in the spirit of §3.5 but against *real* executions: the
// caller supplies a Benchmark closure over its training inputs. budget is
// the number of configurations to profile.
func Tune(ts TuneSpace, bench Benchmark, budget int, seed uint64) TuneResult {
	ts = ts.withDefaults()
	s := space.New()
	for _, t := range ts.Tradeoffs {
		s.Add(space.Dimension{
			Name:    "aux." + t.Name,
			Kind:    space.TradeoffDim,
			Size:    t.Opts.MaxIndex(),
			Default: t.Opts.DefaultIndex(),
		})
	}
	s.AddDependence("dep", ts.Windows, ts.Redos, ts.Rollbacks, ts.GroupSizes)
	s.AddThreadSplit(ts.MaxWorkers)

	decode := func(c space.Config) (Options, []int64) {
		o := Options{Seed: seed}
		idx := make([]int64, len(ts.Tradeoffs))
		for i, t := range ts.Tradeoffs {
			v, _ := s.Lookup(c, "aux."+t.Name)
			idx[i] = v
		}
		if v, ok := s.Lookup(c, "dep.aux"); ok {
			o.UseAux = v == 1
		}
		if v, ok := s.Lookup(c, "dep.window"); ok {
			o.Window = int(v)
		}
		if v, ok := s.Lookup(c, "dep.redo"); ok {
			o.RedoMax = int(v)
		}
		if v, ok := s.Lookup(c, "dep.rollback"); ok {
			o.Rollback = int(v)
		}
		if v, ok := s.Lookup(c, "dep.group"); ok {
			o.GroupSize = int(v)
		}
		if v, ok := s.Lookup(c, "threads.original"); ok {
			o.Workers = int(v)
		}
		return o, idx
	}

	res := autotune.Tune(s, func(c space.Config) float64 {
		o, idx := decode(c)
		return bench(o, idx)
	}, autotune.Options{Budget: budget, Seed: seed})

	bestOpts, bestIdx := decode(res.Best)
	baseOpts, baseIdx := decode(s.Default())
	return TuneResult{
		Options:         bestOpts,
		TradeoffIdx:     bestIdx,
		BestSeconds:     res.BestVal,
		BaselineSeconds: bench(baseOpts, baseIdx),
		Evaluations:     len(res.Trace.Evaluations),
	}
}

// TimedBenchmark adapts a plain run closure into a Benchmark by measuring
// its wall-clock time.
func TimedBenchmark(run func(o Options, tradeoffIdx []int64)) Benchmark {
	return func(o Options, idx []int64) float64 {
		start := time.Now()
		run(o, idx)
		return time.Since(start).Seconds()
	}
}
