package stats

import (
	"math"
	"sync"
	"testing"
)

func TestSharedRuntimeAcrossDependences(t *testing.T) {
	rt := NewRuntime(4)
	defer rt.Close()
	if rt.Workers() != 4 {
		t.Fatalf("workers: %d", rt.Workers())
	}

	inputs := inputsN(12)
	match := func(spec counter, originals []counter) bool {
		for _, o := range originals {
			if math.Abs(spec.V-o.V) < 1e-9 {
				return true
			}
		}
		return false
	}

	build := func(seed uint64) *StateDependence[int, counter, int] {
		sd := NewStateDependence(inputs, counter{}, computeDouble)
		sd.SetAuxiliary(exactAux(inputs))
		sd.SetStateOps(nil, match)
		sd.Configure(Options{UseAux: true, GroupSize: 3, Window: 12, Seed: seed})
		return Attach(rt, sd)
	}

	// Two dependences run concurrently on the same pool (the paper's
	// shared-pool design).
	a, b := build(1), build(2)
	var wg sync.WaitGroup
	for _, sd := range []*StateDependence[int, counter, int]{a, b} {
		sd := sd
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs, final, st := sd.Run()
			if len(outs) != 12 || final.V != 78 {
				t.Errorf("bad result: %d outputs, final %v", len(outs), final.V)
			}
			if st.Matches != 3 {
				t.Errorf("matches: %d", st.Matches)
			}
		}()
	}
	wg.Wait()
	if rt.TasksExecuted() == 0 {
		t.Fatal("shared pool never used")
	}
	m := rt.Scheduler()
	if m.Executed != rt.TasksExecuted() {
		t.Fatalf("Scheduler().Executed %d != TasksExecuted %d", m.Executed, rt.TasksExecuted())
	}
	if m.Steals+m.LocalHits != m.Executed {
		t.Fatalf("dispatch split %d+%d != executed %d", m.Steals, m.LocalHits, m.Executed)
	}
	if m.Submitted != m.Executed {
		t.Fatalf("submitted %d != executed %d after both runs joined", m.Submitted, m.Executed)
	}
	if m.QueueDepthPeak < 1 {
		t.Fatalf("queue depth peak %d", m.QueueDepthPeak)
	}
	if len(m.QueueDepths) != rt.Workers() {
		t.Fatalf("queue depth gauges: %d, want %d", len(m.QueueDepths), rt.Workers())
	}
	for i, d := range m.QueueDepths {
		if d != 0 {
			t.Fatalf("worker %d deque not drained: depth %d", i, d)
		}
	}
}

func TestClosedRuntimeFallsBackInline(t *testing.T) {
	rt := NewRuntime(2)
	rt.Close()
	inputs := inputsN(6)
	sd := Attach(rt, NewStateDependence(inputs, counter{}, computeDouble))
	sd.SetAuxiliary(exactAux(inputs))
	sd.Configure(Options{UseAux: true, GroupSize: 2, Window: 6, Seed: 3})
	outs, final, _ := sd.Run()
	if len(outs) != 6 || final.V != 21 {
		t.Fatalf("inline fallback broken: %d outputs, final %v", len(outs), final.V)
	}
}

func TestRuntimeCloseIdempotent(t *testing.T) {
	rt := NewRuntime(1)
	rt.Close()
	rt.Close()
}
