package stats_test

import (
	"fmt"
	"math"

	"repro/stats"
)

// The running example: a one-dimensional tracker. Each reading nudges the
// estimate (the state); the auxiliary code rebuilds the estimate from the
// last few readings.

func exampleInputs() []float64 {
	in := make([]float64, 32)
	for i := range in {
		in[i] = math.Sin(0.2 * float64(i))
	}
	return in
}

func exampleCompute(r *stats.Rand, in float64, s float64) (float64, float64) {
	gain := 0.5 + 0.05*r.Norm()
	s += gain * (in - s)
	return s, s
}

func exampleAux(_ *stats.Rand, init float64, recent []float64) float64 {
	s := init
	if len(recent) > 0 {
		s = recent[0]
	}
	for _, in := range recent {
		s += 0.5 * (in - s)
	}
	return s
}

func exampleMatch(spec float64, originals []float64) bool {
	for _, o := range originals {
		if math.Abs(spec-o) < 0.1 {
			return true
		}
	}
	return false
}

// ExampleStateDependence shows the Figure 8 workflow: declare the
// dependence, attach auxiliary code and state methods, configure, start,
// join.
func ExampleStateDependence() {
	sd := stats.NewStateDependence(exampleInputs(), 0.0, exampleCompute)
	sd.SetAuxiliary(exampleAux)
	sd.SetStateOps(nil, exampleMatch)
	sd.Configure(stats.Options{
		UseAux: true, GroupSize: 8, Window: 4, RedoMax: 2, Rollback: 2,
		Workers: 4, Seed: 42,
	})
	sd.Start()
	outputs, _, runStats := sd.Join()

	fmt.Printf("outputs: %d\n", len(outputs))
	fmt.Printf("groups: %d, aborts: %d\n", runStats.Groups, runStats.Aborts)
	// Output:
	// outputs: 32
	// groups: 4, aborts: 0
}

// ExampleStateDependence_RunStream shows streaming commit: outputs arrive
// in input order as they stop being speculative.
func ExampleStateDependence_RunStream() {
	sd := stats.NewStateDependence(exampleInputs(), 0.0, exampleCompute)
	sd.SetAuxiliary(exampleAux)
	sd.SetStateOps(nil, exampleMatch)
	sd.Configure(stats.Options{
		UseAux: true, GroupSize: 8, Window: 4, RedoMax: 2, Rollback: 2,
		Workers: 4, Seed: 42,
	})
	count := 0
	sd.RunStream(func(index int, output float64) { count++ })
	fmt.Printf("streamed: %d\n", count)
	// Output:
	// streamed: 32
}

// ExampleNewTradeoff shows the Tradeoff Interface of Figure 10: the number
// of annealing layers, with values 1..10 and a default of 5.
func ExampleNewTradeoff() {
	layers := stats.NewTradeoff("AnnealingLayers", stats.ConstantTradeoff,
		stats.IntRangeOptions(1, 10, 4))
	fmt.Printf("values: %d, default: %v\n", layers.Opts.MaxIndex(), layers.Default())
	// Output:
	// values: 10, default: 5
}

// ExampleSimulate predicts scaling on the paper's 28-core platform without
// the hardware: an embarrassingly parallel graph speeds up linearly.
func ExampleSimulate() {
	g := &stats.TaskGraph{}
	for i := 0; i < 28; i++ {
		g.Add(1)
	}
	m := stats.Haswell28(false)
	fmt.Printf("1 thread: %.0f, 28 threads: %.0f\n",
		stats.Simulate(m, g, 1).Makespan, stats.Simulate(m, g, 28).Makespan)
	// Output:
	// 1 thread: 28, 28 threads: 1
}
