package stats

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/backend"
)

// Program is a compiled STATS program — the back-end's specialized
// "binary": the instantiated module plus its resolved constants, type
// bindings, callees and per-dependence runtime options.
type Program = backend.Program

// InstallProgram registers a compiled program with the runtime. Before
// accepting it, the runtime re-runs the statsvet analysis passes (the IR
// verifier, the effect/purity dataflow and the tradeoff lints) over the
// program's module and rejects it if any pass reports an error: a module
// whose auxiliary code escapes its declared effect footprint would only
// be caught later, one validation mismatch at a time, as aborts and
// squashed work. Callers that must load a failing module anyway — for
// example to reproduce a miscompile under the runtime's own validation —
// can opt out first with AllowUnverified.
func (rt *Runtime) InstallProgram(p *Program) error {
	if p == nil || p.Module == nil {
		return fmt.Errorf("stats: InstallProgram: nil program")
	}
	rt.mu.Lock()
	skip := rt.allowUnverified
	rt.mu.Unlock()
	if !skip {
		if err := analysis.Check(p.Module); err != nil {
			return fmt.Errorf("stats: refusing unverified program (AllowUnverified to override): %w", err)
		}
	}
	rt.mu.Lock()
	rt.programs = append(rt.programs, p)
	rt.mu.Unlock()
	return nil
}

// AllowUnverified disables InstallProgram's analysis gate for this
// runtime: subsequently installed programs are accepted without static
// verification and any contract violation is left to the runtime's
// speculative validation (mismatch → redo → abort) to absorb.
func (rt *Runtime) AllowUnverified() {
	rt.mu.Lock()
	rt.allowUnverified = true
	rt.mu.Unlock()
}

// Programs returns a snapshot of the installed programs, in installation
// order.
func (rt *Runtime) Programs() []*Program {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Program, len(rt.programs))
	copy(out, rt.programs)
	return out
}
