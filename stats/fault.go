package stats

// Fault tolerance surface of the SDI: panic-checked execution, the
// per-group deadline (Options.GroupTimeout), and the abort-rate circuit
// breaker. The engine guarantees a panic in user code on a speculative
// lane never crashes the process — the group squashes and its inputs
// replay sequentially — so the only unrecoverable site is the sequential
// path itself, which RunChecked converts to an error.

import "repro/internal/core"

// Breaker is a sliding-window abort/panic-rate circuit breaker gating
// speculation. Share one across runs via Options.Breaker: once the failure
// rate over its window crosses the trip threshold, speculation is disabled
// for a cooldown (runs execute conventionally at zero extra cost), then
// re-probed with a few speculative runs before being trusted again.
type Breaker = core.Breaker

// BreakerConfig configures a Breaker's window, trip threshold and recovery
// behaviour; zero fields pick documented defaults. The Now field injects
// the clock for tests.
type BreakerConfig = core.BreakerConfig

// BreakerState is a breaker's position: closed, half-open or open.
type BreakerState = core.BreakerState

// The breaker positions, re-exported for callers inspecting State().
const (
	BreakerClosed   = core.BreakerClosed
	BreakerHalfOpen = core.BreakerHalfOpen
	BreakerOpen     = core.BreakerOpen
)

// BreakerSnapshot is a breaker's exported state: position, trip/denial
// counts and the current windowed failure rate.
type BreakerSnapshot = core.BreakerSnapshot

// NewBreaker returns a closed circuit breaker with the given
// configuration, ready to attach to Options.Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return core.NewBreaker(cfg) }

// PanicError is the error RunChecked (and StartStream's join) reports when
// user code panicked with no safe fallback left: the original panic value
// plus the stack captured during the unwind, preserving the panic site.
type PanicError = core.PanicError

// RunChecked executes synchronously like Run, but converts a user-code
// panic on the sequential path into a *PanicError instead of letting it
// propagate. Speculative-lane panics are contained either way and counted
// in RunStats.PanickedGroups.
func (sd *StateDependence[I, S, O]) RunChecked() ([]O, S, RunStats, error) {
	return sd.dep().RunChecked(sd.inputs, sd.initial, sd.coreOptions())
}
