package stats

import (
	"math"
	"testing"
)

func TestRunAdaptive(t *testing.T) {
	inputs := inputsN(60)
	sd := NewStateDependence(inputs, counter{}, computeDouble)
	sd.SetAuxiliary(func(r *Rand, init counter, recent []int) counter {
		s := init
		for _, v := range recent {
			s.V += float64(v)
		}
		return s
	})
	sd.SetStateOps(nil, func(spec counter, originals []counter) bool {
		for _, o := range originals {
			if math.Abs(spec.V-o.V) < 1e-9 {
				return true
			}
		}
		return false
	})
	outs, final, ast := sd.RunAdaptive(AdaptiveOptions{
		Options:  Options{UseAux: true, GroupSize: 2, Window: 8, RedoMax: 1, Rollback: 2, Workers: 4, Seed: 5},
		MinGroup: 2, MaxGroup: 8, ChunkGroups: 2,
	})
	if len(outs) != 60 {
		t.Fatalf("outputs: %d", len(outs))
	}
	if final.V != 1830 {
		t.Fatalf("final: %v", final.V)
	}
	if ast.Chunks < 2 || len(ast.GroupSizes) != ast.Chunks {
		t.Fatalf("trajectory: %+v", ast)
	}
}

func TestRunAdaptiveWithSharedRuntime(t *testing.T) {
	rt := NewRuntime(4)
	defer rt.Close()
	inputs := inputsN(24)
	sd := Attach(rt, NewStateDependence(inputs, counter{}, computeDouble))
	sd.SetAuxiliary(func(r *Rand, init counter, recent []int) counter {
		s := init
		for _, v := range recent {
			s.V += float64(v)
		}
		return s
	})
	outs, _, _ := sd.RunAdaptive(AdaptiveOptions{
		Options: Options{UseAux: true, GroupSize: 2, Window: 8, Workers: 4, Seed: 1},
	})
	if len(outs) != 24 {
		t.Fatalf("outputs: %d", len(outs))
	}
	if rt.TasksExecuted() == 0 {
		t.Fatal("shared pool unused")
	}
}
