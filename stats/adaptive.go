package stats

import "repro/internal/core"

// AdaptiveOptions configures RunAdaptive: the base Options plus the online
// group-size controller's bounds.
type AdaptiveOptions struct {
	Options
	// MinGroup and MaxGroup bound the controller (defaults 2 and 64).
	MinGroup int
	MaxGroup int
	// ChunkGroups is how many groups form one adaptation chunk
	// (default 4).
	ChunkGroups int
}

// AdaptiveStats extends RunStats with the controller's group-size
// trajectory.
type AdaptiveStats = core.AdaptiveStats

// RunAdaptive executes the dependence with an online group-size
// controller: groups widen while speculation keeps succeeding and narrow
// after aborts. This extends the paper along its stated future-work axis —
// the group cardinality becomes a run-time decision instead of an
// autotuned constant — while preserving the §3.1 validation semantics
// within every chunk.
func (sd *StateDependence[I, S, O]) RunAdaptive(o AdaptiveOptions) ([]O, S, AdaptiveStats) {
	dep := core.New(core.Compute[I, S, O](sd.compute), core.Aux[I, S](sd.aux), core.StateOps[S]{
		Clone:    sd.clone,
		MatchAny: sd.match,
	})
	return dep.RunAdaptive(sd.inputs, sd.initial, core.AdaptiveOptions{
		Options: core.Options{
			UseAux:       o.UseAux,
			GroupSize:    o.GroupSize,
			Window:       o.Window,
			RedoMax:      o.RedoMax,
			Rollback:     o.Rollback,
			Workers:      o.Workers,
			Seed:         o.Seed,
			GroupTimeout: o.GroupTimeout,
			Breaker:      o.Breaker,
			Pool:         sd.sharedPool,
			Obs:          sd.observer,
		},
		MinGroup:    o.MinGroup,
		MaxGroup:    o.MaxGroup,
		ChunkGroups: o.ChunkGroups,
	})
}
