package stats

import "repro/internal/core"

// AdaptiveOptions configures RunAdaptive: the base Options plus the online
// group-size controller's bounds.
type AdaptiveOptions struct {
	Options
	// MinGroup and MaxGroup bound the controller (defaults 2 and 64).
	MinGroup int
	MaxGroup int
	// ChunkGroups is how many groups form one adaptation chunk
	// (default 4).
	ChunkGroups int
}

// AdaptiveStats extends RunStats with the controller's group-size
// trajectory.
type AdaptiveStats = core.AdaptiveStats

// RunAdaptive executes the dependence with an online group-size
// controller: groups widen while speculation keeps succeeding and narrow
// after aborts. This extends the paper along its stated future-work axis —
// the group cardinality becomes a run-time decision instead of an
// autotuned constant — while preserving the §3.1 validation semantics
// within every chunk.
func (sd *StateDependence[I, S, O]) RunAdaptive(o AdaptiveOptions) ([]O, S, AdaptiveStats) {
	return sd.dep().RunAdaptive(sd.inputs, sd.initial, core.AdaptiveOptions{
		Options:     sd.coreOptionsFrom(o.Options),
		MinGroup:    o.MinGroup,
		MaxGroup:    o.MaxGroup,
		ChunkGroups: o.ChunkGroups,
	})
}
