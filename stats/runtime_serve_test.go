package stats_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/stats"
)

// serveDep runs a small chain through rt so the telemetry has content.
func serveDep(t *testing.T, rt *stats.Runtime) {
	t.Helper()
	inputs := make([]int, 32)
	for i := range inputs {
		inputs[i] = i
	}
	sd := stats.NewStateDependence(inputs, 0,
		func(r *stats.Rand, in, s int) (int, int) { return s + in, s + in })
	sd.SetAuxiliary(func(r *stats.Rand, init int, recent []int) int { return init })
	sd.Configure(stats.Options{UseAux: true, GroupSize: 4, Window: 2, RedoMax: 1, Rollback: 1, Workers: 2})
	stats.Attach(rt, sd)
	sd.Run()
}

// TestRuntimeServe boots the runtime's telemetry server on an ephemeral
// port, runs a dependence, scrapes /metrics and /spans, and checks
// Runtime.Close tears the server down.
func TestRuntimeServe(t *testing.T) {
	rt := stats.NewRuntime(2)
	srv, err := rt.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDep(t, rt)

	for _, path := range []string{"/metrics", "/healthz", "/spans", "/trace"} {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Errorf("GET %s: empty body", path)
		}
	}

	url := srv.URL()
	rt.Close() // must also shut the telemetry server down
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Error("telemetry server still up after Runtime.Close")
	}
}

// TestRuntimeServeHandler embeds the telemetry surface in a caller-owned
// mux, without starting a listener.
func TestRuntimeServeHandler(t *testing.T) {
	rt := stats.NewRuntime(2)
	defer rt.Close()
	serveDep(t, rt)

	mux := http.NewServeMux()
	mux.Handle("/telemetry/", http.StripPrefix("/telemetry", rt.ServeHandler()))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/telemetry/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "stats_groups_started_total") {
		t.Errorf("embedded handler scrape failed: status %d body %q", resp.StatusCode, body)
	}
}
