// Package stats is the public API of this STATS reproduction: the State
// Dependence Interface (SDI) and Tradeoff Interface (TI) of §3.3, backed by
// the speculative runtime of §3.1 and the autotuner of §3.5.
//
// A state dependence is the code pattern of Figure 4: a chain of
// invocations (O_i, S_{i+1}) = computeOutput(I_i, S_i) serialized by the
// state S. If the computation is nondeterministic and an alternative
// producer ("auxiliary code") can rebuild an acceptable S from the initial
// state plus a few recent inputs, the runtime overlaps groups of
// invocations, validates the auxiliary states against (possibly
// re-executed) original states, and falls back to conventional execution
// when validation fails — preserving output quality by construction.
//
// Minimal use, mirroring Figure 8:
//
//	sd := stats.NewStateDependence(inputs, initialState, computeOutput)
//	sd.SetAuxiliary(auxCode)
//	sd.SetStateOps(cloneState, matchAny)
//	sd.Configure(stats.Options{UseAux: true, GroupSize: 8, Window: 2, RedoMax: 2, Rollback: 2, Workers: 8})
//	sd.Start()
//	outputs, final, runStats := sd.Join()
package stats

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
)

// Rand is the per-invocation randomness source handed to compute and
// auxiliary functions. Re-executions after a rollback receive fresh
// sources; that is what gives the runtime multiple original states to
// validate against.
type Rand = rng.Source

// ComputeFunc is the state-dependence target (computeOutput in Figure 8).
type ComputeFunc[I, S, O any] func(r *Rand, input I, state S) (O, S)

// AuxFunc is auxiliary code: an alternative producer of the state from the
// initial state and a window of recent inputs.
type AuxFunc[I, S any] func(r *Rand, initial S, recent []I) S

// CloneFunc is the state privatization method (operator= in Figure 9).
type CloneFunc[S any] func(S) S

// MatchFunc is doesSpecStateMatchAny: whether a speculative state is
// acceptable given the set of original states produced so far.
type MatchFunc[S any] func(speculative S, originals []S) bool

// FingerprintFunc is the optional hash-first acceptance prefilter: a
// cheap digest of the state features MatchFunc compares. The contract is
// one-sided — Fingerprint(a) == Fingerprint(b) whenever MatchFunc would
// accept a against {b} — so a fingerprint mismatch rejects without the
// deep comparison and a collision merely falls through to it. A wrong
// fingerprint costs time, never correctness.
type FingerprintFunc[S any] func(S) uint64

// Protocol selects how the runtime satisfies a state dependence
// speculatively; see the core engine's protocols.
type Protocol = core.Protocol

// The available speculation protocols: the paper's auxiliary-code
// validation (the zero value) and deterministic slot reservations for
// dependences whose invocations touch declared disjoint state slots.
const (
	ProtocolAux          = core.ProtocolAux
	ProtocolReservations = core.ProtocolReservations
)

// ParseProtocol maps a protocol name ("aux", "reservations") to its
// Protocol value; ok is false for an unknown name.
func ParseProtocol(s string) (p Protocol, ok bool) { return core.ParseProtocol(s) }

// ReserveOps is the slot-reservation contract a dependence attaches with
// SetReserve: slot count, per-invocation footprint, slot-wise merge, and
// the optional Touched oracle hook used by Options.FootprintCheck.
type ReserveOps[I, S any] struct {
	// NumSlots is the number of state slots given the initial state.
	NumSlots func(initial S) int
	// Footprint returns the slots one invocation may read or write; it
	// must over-approximate the compute's accesses (statsvet -footprints
	// proves this for DSL-declared dependences).
	Footprint func(in I, initial S) []int
	// Merge copies the given slots from src into dst and returns dst.
	// It must not mutate src.
	Merge func(dst, src S, slots []int) S
	// Touched optionally reports the slots that differ between two
	// states — the runtime footprint oracle of Options.FootprintCheck.
	Touched func(before, after S) []int
}

// Options configures one execution; every field is a state-space dimension
// the autotuner can set (§3.3).
type Options struct {
	// UseAux enables speculation; false is the conventional baseline.
	UseAux bool
	// Protocol selects the speculation protocol; the zero value is the
	// paper's auxiliary-code validation. ProtocolReservations requires
	// SetReserve.
	Protocol Protocol
	// FootprintCheck enables the runtime footprint oracle under
	// ProtocolReservations: state slots the compute actually touched are
	// cross-checked against the declared footprint before commit, and a
	// lying footprint squashes the group and falls back sequentially.
	FootprintCheck bool
	// GroupSize is the input-group cardinality the runtime overlaps.
	GroupSize int
	// Window is how many previous inputs the auxiliary code consumes.
	Window int
	// RedoMax bounds re-executions of the original producer per
	// validation.
	RedoMax int
	// Rollback is how many inputs a re-execution goes back.
	Rollback int
	// Workers is the runtime's worker-pool width (defaults to 1).
	Workers int
	// Seed fixes the run's randomness; runs with equal seeds and
	// options are reproducible.
	Seed uint64
	// GroupTimeout bounds one speculative group's wall-clock execution;
	// a lane exceeding it is squashed like a validation mismatch and its
	// inputs reprocessed sequentially. Zero disables the deadline.
	GroupTimeout time.Duration
	// Breaker, when non-nil, gates speculation with a sliding-window
	// abort-rate circuit breaker shared across runs (see NewBreaker).
	Breaker *Breaker
}

// RunStats reports what the runtime did: group counts, speculative commits,
// re-executions, aborts, and work accounting.
type RunStats = core.Stats

// StateDependence makes the Figure 4 pattern explicit to the runtime
// (Figure 9). Create one with NewStateDependence, optionally attach
// auxiliary code and state methods, Configure it, then Start and Join.
type StateDependence[I, S, O any] struct {
	inputs      []I
	initial     S
	compute     ComputeFunc[I, S, O]
	aux         AuxFunc[I, S]
	clone       CloneFunc[S]
	match       MatchFunc[S]
	fingerprint FingerprintFunc[S]
	reserve     *ReserveOps[I, S]
	opts        Options
	// coreDep is the lowered engine dependence, built lazily and cached so
	// repeated runs through one SDI reuse the engine's recycled run state
	// (its sync.Pool scratch lives on the Dependence). Setters invalidate
	// it.
	coreDep *core.Dependence[I, S, O]
	// sharedPool, when set by Attach, supplies the Runtime's worker pool
	// instead of a per-run private pool; observer is the Runtime's
	// observability sink, set alongside it.
	sharedPool *pool.Pool
	observer   *obs.Observer

	done    chan struct{}
	outputs []O
	final   S
	stats   RunStats
	started bool
}

// NewStateDependence builds a state dependence over the given inputs,
// initial state, and compute target. By default states are copied by value
// (suitable for value-type states); attach a deep clone with SetStateOps
// when the state contains references.
func NewStateDependence[I, S, O any](inputs []I, initial S, compute ComputeFunc[I, S, O]) *StateDependence[I, S, O] {
	if compute == nil {
		panic("stats: nil compute function")
	}
	return &StateDependence[I, S, O]{
		inputs:  inputs,
		initial: initial,
		compute: compute,
		clone:   func(s S) S { return s },
	}
}

// SetAuxiliary attaches the auxiliary code. Without it, the dependence is
// always satisfied conventionally.
func (sd *StateDependence[I, S, O]) SetAuxiliary(aux AuxFunc[I, S]) *StateDependence[I, S, O] {
	sd.aux = aux
	sd.coreDep = nil
	return sd
}

// SetStateOps attaches the state privatization method and the acceptance
// method. A nil match accepts speculative states by construction (the
// paper's swaptions/streamcluster/streamclassifier cases).
func (sd *StateDependence[I, S, O]) SetStateOps(clone CloneFunc[S], match MatchFunc[S]) *StateDependence[I, S, O] {
	if clone != nil {
		sd.clone = clone
	}
	sd.match = match
	sd.coreDep = nil
	return sd
}

// SetFingerprint attaches the hash-first acceptance prefilter consulted
// before the deep MatchFunc comparison at group boundaries (see
// FingerprintFunc for the contract). It is ignored for dependences
// without a MatchFunc — their speculative states are accepted by
// construction and never compared.
func (sd *StateDependence[I, S, O]) SetFingerprint(fp FingerprintFunc[S]) *StateDependence[I, S, O] {
	sd.fingerprint = fp
	sd.coreDep = nil
	return sd
}

// SetReserve attaches the slot-reservation contract used under
// Options.Protocol == ProtocolReservations. Without it, reservations
// treat the whole state as a single slot (fully serialized commits).
func (sd *StateDependence[I, S, O]) SetReserve(r ReserveOps[I, S]) *StateDependence[I, S, O] {
	sd.reserve = &r
	sd.coreDep = nil
	return sd
}

// Configure sets the execution options.
func (sd *StateDependence[I, S, O]) Configure(o Options) *StateDependence[I, S, O] {
	sd.opts = o
	return sd
}

// ErrAlreadyStarted is returned by Start when called twice.
var ErrAlreadyStarted = errors.New("stats: state dependence already started")

// Start begins the execution model of §3.1 in parallel with the invoking
// goroutine (the start() of Figure 9).
func (sd *StateDependence[I, S, O]) Start() error {
	if sd.started {
		return ErrAlreadyStarted
	}
	sd.started = true
	sd.done = make(chan struct{})
	go func() {
		defer close(sd.done)
		sd.outputs, sd.final, sd.stats = sd.run()
	}()
	return nil
}

// Join waits until all inputs are correctly processed (the join() of
// Figure 9) and returns the outputs in input order, the final state, and
// the run statistics. Calling Join without Start runs synchronously.
// Further Join/Run calls return the completed run's results; a dependence
// executes its inputs once.
func (sd *StateDependence[I, S, O]) Join() ([]O, S, RunStats) {
	if !sd.started {
		sd.outputs, sd.final, sd.stats = sd.run()
		sd.started = true
		return sd.outputs, sd.final, sd.stats
	}
	// done is nil when the first Join ran synchronously (no Start);
	// receiving from it would block forever instead of returning the
	// already-computed results.
	if sd.done != nil {
		<-sd.done
	}
	return sd.outputs, sd.final, sd.stats
}

// Run executes synchronously: Start + Join.
func (sd *StateDependence[I, S, O]) Run() ([]O, S, RunStats) {
	return sd.Join()
}

func (sd *StateDependence[I, S, O]) run() ([]O, S, RunStats) {
	return sd.dep().Run(sd.inputs, sd.initial, sd.coreOptions())
}

// dep lowers the SDI's functions to an engine dependence. The result is
// cached (setters invalidate) so every run through this SDI hits the same
// Dependence and with it the engine's recycled run-scoped scratch state —
// the warm, allocation-free path.
func (sd *StateDependence[I, S, O]) dep() *core.Dependence[I, S, O] {
	if sd.coreDep != nil {
		return sd.coreDep
	}
	d := core.New(core.Compute[I, S, O](sd.compute), core.Aux[I, S](sd.aux), core.StateOps[S]{
		Clone:       sd.clone,
		MatchAny:    sd.match,
		Fingerprint: sd.fingerprint,
	})
	if sd.reserve != nil {
		d = d.WithReserve(core.ReserveOps[I, S]{
			NumSlots:  sd.reserve.NumSlots,
			Footprint: sd.reserve.Footprint,
			Merge:     sd.reserve.Merge,
			Touched:   sd.reserve.Touched,
		})
	}
	sd.coreDep = d
	return d
}

// coreOptions lowers the configured Options plus the Runtime attachment to
// engine options — the single SDI→engine mapping, so every run entry point
// (Run, RunStream, StartStream, RunChecked, RunAdaptive) threads new
// fields identically.
func (sd *StateDependence[I, S, O]) coreOptions() core.Options {
	return sd.coreOptionsFrom(sd.opts)
}

// coreOptionsFrom lowers an explicit Options value (RunAdaptive carries
// its own rather than the configured one).
func (sd *StateDependence[I, S, O]) coreOptionsFrom(o Options) core.Options {
	return core.Options{
		UseAux:         o.UseAux,
		Protocol:       o.Protocol,
		FootprintCheck: o.FootprintCheck,
		GroupSize:      o.GroupSize,
		Window:         o.Window,
		RedoMax:        o.RedoMax,
		Rollback:       o.Rollback,
		Workers:        o.Workers,
		Seed:           o.Seed,
		GroupTimeout:   o.GroupTimeout,
		Breaker:        o.Breaker,
		Pool:           sd.sharedPool,
		Obs:            sd.observer,
	}
}
