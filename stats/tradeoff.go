package stats

import "repro/internal/tradeoff"

// Tradeoff is the TI of §3.3: a piece of program text (constant, data
// type, function) whose value is chosen from a developer-supplied range,
// sorted by index. Auxiliary code receives private clones of the tradeoffs
// it uses, so their indices can be tuned independently of the rest of the
// program.
type Tradeoff = tradeoff.T

// TradeoffKind classifies a tradeoff's program text.
type TradeoffKind = tradeoff.Kind

// Tradeoff kinds.
const (
	ConstantTradeoff = tradeoff.Constant
	TypeTradeoff     = tradeoff.Type
	FunctionTradeoff = tradeoff.Function
)

// TradeoffOptions enumerates a tradeoff's legal values (Figure 10's
// Tradeoff_options: getMaxIndex, getValue, getDefaultIndex).
type TradeoffOptions = tradeoff.Options

// IntRangeOptions is a TradeoffOptions over lo..hi with a default index.
func IntRangeOptions(lo, hi, defaultIdx int64) TradeoffOptions {
	return tradeoff.IntRange{Lo: lo, Hi: hi, Default: defaultIdx}
}

// EnumOptions is a TradeoffOptions over an explicit value list.
func EnumOptions(defaultIdx int64, values ...any) TradeoffOptions {
	return tradeoff.Enum{Values: values, Default: defaultIdx}
}

// NewTradeoff declares a tradeoff. It panics on malformed options, since a
// tradeoff is developer-authored program text.
func NewTradeoff(name string, kind TradeoffKind, opts TradeoffOptions) Tradeoff {
	return tradeoff.New(name, kind, opts)
}

// Precision is the value domain for TypeTradeoff in this reproduction
// (half/single/double), with quantization and cost helpers.
type Precision = tradeoff.Precision

// Precision levels.
const (
	Half   = tradeoff.Half
	Single = tradeoff.Single
	Double = tradeoff.Double
)

// PrecisionOptions returns the standard type-tradeoff options with double
// as the default.
func PrecisionOptions() TradeoffOptions { return tradeoff.PrecisionEnum() }
