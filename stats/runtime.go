package stats

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/pool"
)

// Runtime owns the worker pool the paper's runtime shares across all state
// dependences ("an efficient thread pool implementation (shared with all
// state dependences) to minimize thread creation overhead", §3.4), plus
// the always-on observability layer: a lock-free speculation event tracer
// and a metrics registry that every attached dependence reports into.
// Attach binds a StateDependence to it; unattached dependences create a
// private pool per run and report nowhere.
type Runtime struct {
	pool *pool.Pool
	obs  *obs.Observer

	mu              sync.Mutex
	allowUnverified bool
	programs        []*Program
}

// TraceEvent is one record of the runtime's speculation event log (see
// repro/internal/obs for the kinds and field semantics).
type TraceEvent = obs.Event

// Metrics is the runtime's metrics registry: atomically-updated counters,
// gauges and log-scale histograms with a plain-text exposition
// (WriteText/Text).
type Metrics = obs.Registry

// NewRuntime starts a shared runtime with the given worker width. Tracing
// and metrics are always on — the tracer's bounded rings and atomic
// instruments are cheap enough to leave enabled (see internal/obs) — and
// cover every dependence attached with Attach.
func NewRuntime(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	o := obs.NewObserver(workers+1, 0)
	p := pool.New(workers)
	p.SetObserver(o)
	return &Runtime{pool: p, obs: o}
}

// Workers returns the pool width.
func (rt *Runtime) Workers() int { return rt.pool.Workers() }

// TasksExecuted returns the number of tasks the pool has completed, across
// every attached dependence.
func (rt *Runtime) TasksExecuted() int64 { return rt.pool.Executed() }

// Trace returns a time-ordered snapshot of the runtime's speculation event
// log: group lifecycles, auxiliary-state production, validation outcomes,
// redos, aborts, squashes, and the scheduler's steal/local dispatches.
// Safe to call while runs are in flight; the log is bounded, so a
// long-lived runtime retains the most recent events per lane.
func (rt *Runtime) Trace() []TraceEvent { return rt.obs.Tracer.Snapshot() }

// Metrics returns the runtime's live metrics registry.
func (rt *Runtime) Metrics() *Metrics { return rt.obs.Reg }

// MetricsText returns the registry's plain-text exposition — the
// scrape-format view of everything the runtime has done.
func (rt *Runtime) MetricsText() string { return rt.obs.Reg.Text() }

// Observer returns the runtime's observability sink, for callers that
// need the typed instruments (histogram quantiles, dropped-event counts)
// rather than the rendered views.
func (rt *Runtime) Observer() *obs.Observer { return rt.obs }

// SchedulerMetrics is a snapshot of the shared pool's work-stealing
// dispatch counters, aggregated across every attached dependence.
type SchedulerMetrics struct {
	// Submitted counts tasks accepted by the scheduler; Executed counts
	// completed tasks (InlineRuns of them ran on the caller because the
	// pool was closed).
	Submitted, Executed, InlineRuns int64
	// Steals counts cross-worker dispatches; LocalHits counts tasks taken
	// from the owning worker's local deque (the contention-free path).
	Steals, LocalHits int64
	// QueueDepthPeak is the highest per-worker queue depth observed;
	// QueueDepths is the instantaneous depth of each worker's deque.
	QueueDepthPeak int64
	QueueDepths    []int
}

// Scheduler returns the runtime's current scheduler metrics.
func (rt *Runtime) Scheduler() SchedulerMetrics {
	m := rt.pool.Metrics()
	return SchedulerMetrics{
		Submitted:      m.Submitted,
		Executed:       m.Executed,
		InlineRuns:     m.InlineRuns,
		Steals:         m.Steals,
		LocalHits:      m.LocalHits,
		QueueDepthPeak: m.QueueDepthPeak,
		QueueDepths:    rt.pool.QueueDepths(),
	}
}

// Close drains and stops the pool. Dependences attached to a closed
// runtime fall back to inline execution.
func (rt *Runtime) Close() { rt.pool.Close() }

// Attach binds sd to the runtime's shared pool and observability layer
// for its next run. It returns sd for chaining.
func Attach[I, S, O any](rt *Runtime, sd *StateDependence[I, S, O]) *StateDependence[I, S, O] {
	sd.sharedPool = rt.pool
	sd.observer = rt.obs
	return sd
}
