package stats

import (
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/telemetry"
)

// Runtime owns the worker pool the paper's runtime shares across all state
// dependences ("an efficient thread pool implementation (shared with all
// state dependences) to minimize thread creation overhead", §3.4), plus
// the always-on observability layer: a lock-free speculation event tracer
// and a metrics registry that every attached dependence reports into.
// Attach binds a StateDependence to it; unattached dependences create a
// private pool per run and report nowhere.
type Runtime struct {
	pool *pool.Pool
	obs  *obs.Observer

	mu              sync.Mutex
	allowUnverified bool
	programs        []*Program
	telemetry       *telemetry.Server
	signals         *telemetry.Signals
}

// TraceEvent is one record of the runtime's speculation event log (see
// repro/internal/obs for the kinds and field semantics).
type TraceEvent = obs.Event

// Metrics is the runtime's metrics registry: atomically-updated counters,
// gauges and log-scale histograms with a plain-text exposition
// (WriteText/Text).
type Metrics = obs.Registry

// NewRuntime starts a shared runtime with the given worker width. Tracing
// and metrics are always on — the tracer's bounded rings and atomic
// instruments are cheap enough to leave enabled (see internal/obs) — and
// cover every dependence attached with Attach.
func NewRuntime(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	o := obs.NewObserver(workers+1, 0)
	p := pool.New(workers)
	p.SetObserver(o)
	sig := telemetry.NewSignals(o, telemetry.SignalsConfig{})
	sig.Report() // baseline sample: the first report covers activity since here
	return &Runtime{pool: p, obs: o, signals: sig}
}

// Workers returns the pool width.
func (rt *Runtime) Workers() int { return rt.pool.Workers() }

// TasksExecuted returns the number of tasks the pool has completed, across
// every attached dependence.
func (rt *Runtime) TasksExecuted() int64 { return rt.pool.Executed() }

// Trace returns a time-ordered snapshot of the runtime's speculation event
// log: group lifecycles, auxiliary-state production, validation outcomes,
// redos, aborts, squashes, and the scheduler's steal/local dispatches.
// Safe to call while runs are in flight; the log is bounded, so a
// long-lived runtime retains the most recent events per lane.
func (rt *Runtime) Trace() []TraceEvent { return rt.obs.Tracer.Snapshot() }

// Metrics returns the runtime's live metrics registry.
func (rt *Runtime) Metrics() *Metrics { return rt.obs.Reg }

// MetricsText returns the registry's plain-text exposition — the
// scrape-format view of everything the runtime has done.
func (rt *Runtime) MetricsText() string { return rt.obs.Reg.Text() }

// Observer returns the runtime's observability sink, for callers that
// need the typed instruments (histogram quantiles, dropped-event counts)
// rather than the rendered views.
func (rt *Runtime) Observer() *obs.Observer { return rt.obs }

// SchedulerMetrics is a snapshot of the shared pool's work-stealing
// dispatch counters, aggregated across every attached dependence.
type SchedulerMetrics struct {
	// Submitted counts tasks accepted by the scheduler; Executed counts
	// completed tasks (InlineRuns of them ran on the caller because the
	// pool was closed).
	Submitted, Executed, InlineRuns int64
	// Steals counts cross-worker dispatches; LocalHits counts tasks taken
	// from the owning worker's local deque (the contention-free path).
	Steals, LocalHits int64
	// QueueDepthPeak is the highest per-worker queue depth observed;
	// QueueDepths is the instantaneous depth of each worker's deque.
	QueueDepthPeak int64
	QueueDepths    []int
}

// Scheduler returns the runtime's current scheduler metrics.
func (rt *Runtime) Scheduler() SchedulerMetrics {
	m := rt.pool.Metrics()
	return SchedulerMetrics{
		Submitted:      m.Submitted,
		Executed:       m.Executed,
		InlineRuns:     m.InlineRuns,
		Steals:         m.Steals,
		LocalHits:      m.LocalHits,
		QueueDepthPeak: m.QueueDepthPeak,
		QueueDepths:    rt.pool.QueueDepths(),
	}
}

// SignalsReport is one windowed view of the runtime's speculation
// control signals: abort/mismatch/redo rates, fallback and failure
// rates, steal fraction, commits per round, the wasted-work ratio and
// windowed validation-latency quantiles. See
// repro/internal/telemetry.SignalsReport for field semantics.
type SignalsReport = telemetry.SignalsReport

// Signals returns a rolling control-signals report over the runtime's
// recent activity. The aggregator's baseline is the runtime's creation,
// and each call advances the same sliding window, so rates reflect what
// happened since older samples aged out — not lifetime totals. Safe to
// call while runs are in flight.
func (rt *Runtime) Signals() SignalsReport {
	return rt.signals.Report()
}

// Telemetry is the runtime's HTTP telemetry server: /metrics (Prometheus
// text), /healthz (windowed speculation health), /signals (rolling
// control signals, SSE-streamable), /events (live SSE stream), /trace
// (Chrome trace_event JSON) and /spans (causal span trees). See
// repro/internal/telemetry.
type Telemetry = telemetry.Server

// TelemetryConfig configures Serve/ServeHandler beyond the defaults
// (health window and thresholds, SSE cadence, pprof).
type TelemetryConfig = telemetry.Config

// Serve starts the runtime's telemetry server on addr (e.g. ":8080", or
// "127.0.0.1:0" for an ephemeral port — read the bound address from the
// returned server). The server stays up until Close is called on it or on
// the runtime; every endpoint reads through the observability layer's
// lock-free snapshot paths, so serving never slows an attached
// dependence's run.
func (rt *Runtime) Serve(addr string) (*Telemetry, error) {
	return rt.ServeConfigured(addr, TelemetryConfig{})
}

// ServeConfigured is Serve with explicit telemetry configuration; the
// Observer field is overridden with the runtime's own.
func (rt *Runtime) ServeConfigured(addr string, cfg TelemetryConfig) (*Telemetry, error) {
	cfg.Observer = rt.obs
	srv := telemetry.NewServer(cfg)
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	rt.mu.Lock()
	if rt.telemetry != nil {
		rt.telemetry.Close()
	}
	rt.telemetry = srv
	rt.mu.Unlock()
	return srv, nil
}

// ServeHandler returns the telemetry surface as an http.Handler for
// embedding into an existing server or mux (no listener is started; the
// handler lives as long as the runtime).
func (rt *Runtime) ServeHandler() http.Handler {
	return telemetry.NewServer(TelemetryConfig{Observer: rt.obs}).Handler()
}

// Close drains and stops the pool, and shuts down the telemetry server if
// Serve started one. Dependences attached to a closed runtime fall back
// to inline execution.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	srv := rt.telemetry
	rt.telemetry = nil
	rt.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	rt.pool.Close()
}

// Attach binds sd to the runtime's shared pool and observability layer
// for its next run. It returns sd for chaining.
func Attach[I, S, O any](rt *Runtime, sd *StateDependence[I, S, O]) *StateDependence[I, S, O] {
	sd.sharedPool = rt.pool
	sd.observer = rt.obs
	return sd
}
