package stats

import "repro/internal/pool"

// Runtime owns the worker pool the paper's runtime shares across all state
// dependences ("an efficient thread pool implementation (shared with all
// state dependences) to minimize thread creation overhead", §3.4). Attach
// binds a StateDependence to it; unattached dependences create a private
// pool per run.
type Runtime struct {
	pool *pool.Pool
}

// NewRuntime starts a shared runtime with the given worker width.
func NewRuntime(workers int) *Runtime {
	return &Runtime{pool: pool.New(workers)}
}

// Workers returns the pool width.
func (rt *Runtime) Workers() int { return rt.pool.Workers() }

// TasksExecuted returns the number of tasks the pool has completed, across
// every attached dependence.
func (rt *Runtime) TasksExecuted() int64 { return rt.pool.Executed() }

// SchedulerMetrics is a snapshot of the shared pool's work-stealing
// dispatch counters, aggregated across every attached dependence.
type SchedulerMetrics struct {
	// Submitted counts tasks accepted by the scheduler; Executed counts
	// completed tasks (InlineRuns of them ran on the caller because the
	// pool was closed).
	Submitted, Executed, InlineRuns int64
	// Steals counts cross-worker dispatches; LocalHits counts tasks taken
	// from the owning worker's local deque (the contention-free path).
	Steals, LocalHits int64
	// QueueDepthPeak is the highest per-worker queue depth observed;
	// QueueDepths is the instantaneous depth of each worker's deque.
	QueueDepthPeak int64
	QueueDepths    []int
}

// Scheduler returns the runtime's current scheduler metrics.
func (rt *Runtime) Scheduler() SchedulerMetrics {
	m := rt.pool.Metrics()
	return SchedulerMetrics{
		Submitted:      m.Submitted,
		Executed:       m.Executed,
		InlineRuns:     m.InlineRuns,
		Steals:         m.Steals,
		LocalHits:      m.LocalHits,
		QueueDepthPeak: m.QueueDepthPeak,
		QueueDepths:    rt.pool.QueueDepths(),
	}
}

// Close drains and stops the pool. Dependences attached to a closed
// runtime fall back to inline execution.
func (rt *Runtime) Close() { rt.pool.Close() }

// Attach binds sd to the runtime's shared pool for its next run. It
// returns sd for chaining.
func Attach[I, S, O any](rt *Runtime, sd *StateDependence[I, S, O]) *StateDependence[I, S, O] {
	sd.sharedPool = rt.pool
	return sd
}
