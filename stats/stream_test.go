package stats

import (
	"math"
	"testing"
)

func streamingSD(n int) *StateDependence[int, counter, int] {
	inputs := inputsN(n)
	sd := NewStateDependence(inputs, counter{}, computeDouble)
	sd.SetAuxiliary(exactAux(inputs))
	sd.SetStateOps(nil, func(spec counter, originals []counter) bool {
		for _, o := range originals {
			if math.Abs(spec.V-o.V) < 1e-9 {
				return true
			}
		}
		return false
	})
	sd.Configure(Options{UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 9})
	return sd
}

func TestRunStreamCallback(t *testing.T) {
	var got []int
	outs, _, st := streamingSD(16).RunStream(func(i int, o int) {
		if i != len(got) {
			t.Fatalf("out-of-order emission: %d at position %d", i, len(got))
		}
		got = append(got, o)
	})
	if len(got) != 16 {
		t.Fatalf("emitted: %d", len(got))
	}
	for i := range got {
		if got[i] != outs[i] {
			t.Fatalf("emitted %d != returned %d at %d", got[i], outs[i], i)
		}
	}
	if st.Matches != 3 {
		t.Fatalf("matches: %d", st.Matches)
	}
}

func TestStartStreamChannel(t *testing.T) {
	ch, join := streamingSD(20).StartStream()
	n := 0
	for c := range ch {
		if c.Index != n {
			t.Fatalf("order: got %d want %d", c.Index, n)
		}
		if c.Output != (n+1)*2 {
			t.Fatalf("value: %d at %d", c.Output, n)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("received: %d", n)
	}
	outs, final, _, err := join()
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if len(outs) != 20 || final.V != 210 {
		t.Fatalf("join: %d outputs, final %v", len(outs), final.V)
	}
}

func TestStartStreamSlowConsumer(t *testing.T) {
	// The channel buffers the full input count: the runtime must finish
	// even if the consumer only drains afterwards.
	ch, join := streamingSD(32).StartStream()
	outs, _, _, err := join() // finish first
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if len(outs) != 32 {
		t.Fatalf("outputs: %d", len(outs))
	}
	n := 0
	for range ch {
		n++
	}
	if n != 32 {
		t.Fatalf("drained: %d", n)
	}
}
