package stats

import (
	"runtime/debug"

	"repro/internal/core"
)

// Committed is one streamed output: its input index and value.
type Committed[O any] struct {
	Index  int
	Output O
}

// RunStream executes the dependence and calls emit, in input order, the
// moment each output stops being speculative (§3.1's commit points): a
// group's outputs when the next boundary's validation resolves, the last
// group's at completion, fallback outputs as they compute. emit runs on
// the coordinating goroutine — keep it light or hand off to a channel.
func (sd *StateDependence[I, S, O]) RunStream(emit func(index int, output O)) ([]O, S, RunStats) {
	return sd.dep().RunStream(sd.inputs, sd.initial, sd.coreOptions(), core.Emit[O](emit))
}

// StartStream begins execution in the background and returns a channel of
// committed outputs (closed when the run finishes) plus a join function
// returning the final results. The channel is buffered to the input
// count, so the runtime never blocks on a slow consumer.
//
// Fault isolation: speculative-lane panics in user code are contained by
// the engine (RunStats.PanickedGroups); a panic with no safe fallback left
// — the sequential path, or the consumer's own code reached through the
// commit channel — is recovered here rather than crashing the process with
// the channel open. The channel always closes, and join reports the
// failure as a *PanicError.
func (sd *StateDependence[I, S, O]) StartStream() (<-chan Committed[O], func() ([]O, S, RunStats, error)) {
	ch := make(chan Committed[O], len(sd.inputs))
	type result struct {
		outs  []O
		final S
		st    RunStats
		err   error
	}
	done := make(chan result, 1)
	go func() {
		var r result
		defer func() { done <- r }()
		defer close(ch)
		defer func() {
			if rec := recover(); rec != nil {
				r.err = &core.PanicError{Value: rec, Stack: debug.Stack()}
			}
		}()
		r.outs, r.final, r.st = sd.RunStream(func(i int, o O) {
			ch <- Committed[O]{Index: i, Output: o}
		})
	}()
	return ch, func() ([]O, S, RunStats, error) {
		r := <-done
		return r.outs, r.final, r.st, r.err
	}
}
