package stats

import "repro/internal/core"

// Committed is one streamed output: its input index and value.
type Committed[O any] struct {
	Index  int
	Output O
}

// RunStream executes the dependence and calls emit, in input order, the
// moment each output stops being speculative (§3.1's commit points): a
// group's outputs when the next boundary's validation resolves, the last
// group's at completion, fallback outputs as they compute. emit runs on
// the coordinating goroutine — keep it light or hand off to a channel.
func (sd *StateDependence[I, S, O]) RunStream(emit func(index int, output O)) ([]O, S, RunStats) {
	dep := core.New(core.Compute[I, S, O](sd.compute), core.Aux[I, S](sd.aux), core.StateOps[S]{
		Clone:    sd.clone,
		MatchAny: sd.match,
	})
	return dep.RunStream(sd.inputs, sd.initial, core.Options{
		UseAux:    sd.opts.UseAux,
		GroupSize: sd.opts.GroupSize,
		Window:    sd.opts.Window,
		RedoMax:   sd.opts.RedoMax,
		Rollback:  sd.opts.Rollback,
		Workers:   sd.opts.Workers,
		Seed:      sd.opts.Seed,
		Pool:      sd.sharedPool,
		Obs:       sd.observer,
	}, core.Emit[O](emit))
}

// StartStream begins execution in the background and returns a channel of
// committed outputs (closed when the run finishes) plus a join function
// returning the final results. The channel is buffered to the input
// count, so the runtime never blocks on a slow consumer.
func (sd *StateDependence[I, S, O]) StartStream() (<-chan Committed[O], func() ([]O, S, RunStats)) {
	ch := make(chan Committed[O], len(sd.inputs))
	type result struct {
		outs  []O
		final S
		st    RunStats
	}
	done := make(chan result, 1)
	go func() {
		outs, final, st := sd.RunStream(func(i int, o O) {
			ch <- Committed[O]{Index: i, Output: o}
		})
		close(ch)
		done <- result{outs, final, st}
	}()
	return ch, func() ([]O, S, RunStats) {
		r := <-done
		return r.outs, r.final, r.st
	}
}
