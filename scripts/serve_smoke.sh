#!/bin/sh
# serve-smoke: boot a statsrun with the telemetry server up, curl every
# endpoint, and assert the expected status codes. Run via `make serve-smoke`.
set -eu

PORT="${PORT:-18417}"
BASE="http://127.0.0.1:$PORT"
TMP=$(mktemp -d)

go build -o "$TMP/statsrun" ./cmd/statsrun
"$TMP/statsrun" -workload swaptions -aux -size 16 -workers 4 \
    -serve "127.0.0.1:$PORT" -repeat 0 -pprof >"$TMP/log" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; wait "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

# Wait for the server to come up.
up=0
i=0
while [ "$i" -lt 100 ]; do
    if curl -fsS -o /dev/null "$BASE/" 2>/dev/null; then
        up=1
        break
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ "$up" -ne 1 ]; then
    echo "serve-smoke: server never came up; statsrun log:" >&2
    cat "$TMP/log" >&2
    exit 1
fi

fail=0
check() {
    ep=$1
    want=$2
    code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE$ep")
    case ",$want," in
    *",$code,"*) echo "ok   $ep ($code)" ;;
    *)
        echo "FAIL $ep (got $code, want $want)"
        fail=1
        ;;
    esac
}

check /                     200
check /metrics              200
check /healthz              200,503  # 503 is the aborting verdict, still a served answer
check /signals              200
check '/events?once=1'      200
check /trace                200
check /spans                200
check /debug/pprof/cmdline  200

# The exposition must carry the engine's counters (including the
# hash-first acceptance hit/miss pair) and the tracer totals.
metrics=$(curl -s "$BASE/metrics")
for series in stats_groups_started_total stats_fingerprint_hits_total stats_fingerprint_misses_total trace_events_emitted_total telemetry_scrapes_total; do
    if printf '%s\n' "$metrics" | grep -q "^$series "; then
        echo "ok   /metrics has $series"
    else
        echo "FAIL /metrics missing $series"
        fail=1
    fi
done

# /signals must be a rolling report with the control rates and the
# wasted-work attribution, and the gauges must reach /metrics.
signals=$(curl -s "$BASE/signals")
for field in '"abort_rate"' '"wasted_work_ratio"' '"validation_p99_ns"'; do
    if printf '%s\n' "$signals" | grep -q "$field"; then
        echo "ok   /signals has $field"
    else
        echo "FAIL /signals missing $field"
        fail=1
    fi
done
if printf '%s\n' "$metrics" | grep -q '^signals_abort_rate_ppm '; then
    echo "ok   /metrics has signals_abort_rate_ppm"
else
    echo "FAIL /metrics missing signals_abort_rate_ppm"
    fail=1
fi

# One SSE frame from the signals stream.
if curl -s --max-time 3 "$BASE/signals?stream=1" | head -1 | grep -q '^data: '; then
    echo "ok   /signals?stream=1 streams frames"
else
    echo "FAIL /signals?stream=1 produced no SSE frame"
    fail=1
fi

# /spans must be a span document with at least one group.
if curl -s "$BASE/spans" | grep -q '"groups"'; then
    echo "ok   /spans is a span document"
else
    echo "FAIL /spans is not a span document"
    fail=1
fi

exit "$fail"
