// Package repro is a Go reproduction of "Unconventional Parallelization of
// Nondeterministic Applications" (Deiana, St-Amour, Dinda, Hardavellas,
// Campanoni — ASPLOS 2018): the STATS system, which satisfies *state
// dependences* of nondeterministic programs with compiler-generated
// auxiliary code, validated at run time against (possibly re-executed)
// original states.
//
// The public API lives in package repro/stats (the SDI/TI of §3.3 plus an
// autotuner and the simulated evaluation platform). The internal packages
// implement the full system: the speculation runtime (internal/core), the
// three compilers (internal/frontend, internal/midend, internal/backend
// over internal/ir), the autotuner (internal/autotune), the profiler and
// energy model, the seven benchmark reproductions (internal/workload/...),
// the related-work comparators, and the evaluation harness that regenerates
// every table and figure of §4 (internal/harness; see bench_test.go and
// cmd/statsexp).
package repro
