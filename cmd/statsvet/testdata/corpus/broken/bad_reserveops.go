// Package broken seeds every reserveops finding: a Footprint returning a
// slice captured from the enclosing scope, a constant slot index at and
// beyond NumSlots, and a Merge writing through its src argument.
package broken

import "repro/internal/core"

type cell struct{ Shard int }

func badReserveOps() core.ReserveOps[cell, []int] {
	shared := []int{0}
	return core.ReserveOps[cell, []int]{
		NumSlots: func(initial []int) int { return 4 },
		Footprint: func(in cell, _ []int) []int {
			if in.Shard == 0 {
				return []int{4, -1}
			}
			shared[0] = in.Shard
			return shared
		},
		Merge: func(dst, src []int, slots []int) []int {
			for _, sl := range slots {
				src[sl] = dst[sl]
			}
			return dst
		},
	}
}
