// A user program making the three runtime-API mistakes the Go analyzers
// catch: a silently clamped negative option, discarded dependence
// results, and a speculated closure mutating a captured variable.
package demo

import "repro/stats"

func run(inputs []int, initial state) {
	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.Configure(stats.Options{GroupSize: 4, RedoMax: -1})
	sd.Start()
	sd.Run()
}

func auxDemo(inputs []int, initial state) {
	sd := stats.NewStateDependence(inputs, initial, compute)
	seen := 0
	sd.SetAuxiliary(func(r *stats.Rand, init state, recent []int) state {
		seen++
		return init
	})
	_ = seen
}
