package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestFootprintsSlotMapMatchesWorkloads ties the static inference to the
// Go formulations: each good-corpus program's inferred slot map must
// match the slot shape its workload's ReserveOps actually uses
// (swaptions: 6 per-instrument slots; streamcluster, fluidanimate,
// streamclassifier: 4 shard/fluid/member slots), and the two whole-state
// workloads must widen to ⊤.
func TestFootprintsSlotMapMatchesWorkloads(t *testing.T) {
	want := map[string]struct {
		slots   int
		precise bool
		expr    string
	}{
		"swaptions.stats":        {6, true, "inst"},
		"streamcluster.stats":    {4, true, "shard"},
		"fluidanimate.stats":     {4, true, "fluid"},
		"streamclassifier.stats": {4, true, "member"},
		"bodytrack.stats":        {0, false, "*"},
		"facedet.stats":          {0, false, "*"},
	}
	paths := globAll(t, "testdata/corpus/good", "*.stats")
	var out, errb bytes.Buffer
	if code := runFootprints(paths, true, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	var maps []slotMap
	if err := json.Unmarshal(out.Bytes(), &maps); err != nil {
		t.Fatalf("decoding slot map: %v", err)
	}
	if len(maps) != len(want) {
		t.Fatalf("got %d files, want %d", len(maps), len(want))
	}
	for _, m := range maps {
		w, ok := want[filepath.Base(m.File)]
		if !ok {
			t.Errorf("%s: unexpected file in slot map", m.File)
			continue
		}
		if len(m.Deps) != 1 {
			t.Errorf("%s: %d deps, want 1", m.File, len(m.Deps))
			continue
		}
		d := m.Deps[0]
		if d.Slots != w.slots || d.Precise != w.precise {
			t.Errorf("%s: slots=%d precise=%v, want slots=%d precise=%v",
				m.File, d.Slots, d.Precise, w.slots, w.precise)
		}
		if len(d.Inferred) != 1 || d.Inferred[0] != w.expr {
			t.Errorf("%s: inferred %v, want [%s]", m.File, d.Inferred, w.expr)
		}
		if w.precise {
			if len(d.Declared) != 1 || d.Declared[0] != w.expr {
				t.Errorf("%s: declared %v, want [%s]", m.File, d.Declared, w.expr)
			}
		}
	}
}

// TestFootprintsRejectsGoInput locks the usage error: Go sources have no
// IR to infer over.
func TestFootprintsRejectsGoInput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := runFootprints([]string{"testdata/corpus/broken/dropped_stats.go"}, false, &out, &errb); code != 2 {
		t.Fatalf("exit %d on a .go input, want 2; stderr: %s", code, errb.String())
	}
}
