package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// globAll gathers corpus files under dir in sorted order.
func globAll(t *testing.T, dir string, patterns ...string) []string {
	t.Helper()
	var out []string
	for _, p := range patterns {
		matches, err := filepath.Glob(filepath.Join(dir, p))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, matches...)
	}
	sort.Strings(out)
	if len(out) == 0 {
		t.Fatalf("no corpus files under %s", dir)
	}
	return out
}

// checkGolden compares got with the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (re-run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update after verifying):\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestGoodCorpusIsClean is the false-positive acceptance bar: the six
// workload-shaped programs must produce zero findings and a zero exit.
func TestGoodCorpusIsClean(t *testing.T) {
	paths := globAll(t, "testdata/corpus/good", "*.stats")
	if len(paths) != 6 {
		t.Fatalf("want the 6 workload programs, got %d: %v", len(paths), paths)
	}
	var out, errb bytes.Buffer
	if code := run(paths, &out, &errb); code != 0 {
		t.Fatalf("exit %d on the good corpus; stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Fatalf("findings on the good corpus:\n%s", out.String())
	}
}

// brokenCorpus returns every deliberately broken case.
func brokenCorpus(t *testing.T) []string {
	t.Helper()
	return globAll(t, "testdata/corpus/broken", "*.stats", "*.ir.json", "*.go")
}

// TestBrokenCorpusEachDetected requires at least one finding per broken
// case — no seeded bug slips through.
func TestBrokenCorpusEachDetected(t *testing.T) {
	for _, path := range brokenCorpus(t) {
		var out, errb bytes.Buffer
		code := run([]string{path}, &out, &errb)
		if code == 2 {
			t.Errorf("%s: statsvet failed to process the case: %s", path, errb.String())
			continue
		}
		if out.Len() == 0 {
			t.Errorf("%s: no findings on a deliberately broken case", path)
		}
	}
}

// TestGoldenText locks the findings-per-file text output over the broken
// corpus.
func TestGoldenText(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(brokenCorpus(t), &out, &errb)
	if code == 2 {
		t.Fatalf("statsvet failed: %s", errb.String())
	}
	if code != 1 {
		t.Fatalf("want exit 1 (error findings present), got %d", code)
	}
	checkGolden(t, "testdata/golden/broken.txt", out.Bytes())
}

// TestGoldenJSON locks the -json rendering of the same findings.
func TestGoldenJSON(t *testing.T) {
	var out, errb bytes.Buffer
	args := append([]string{"-json"}, brokenCorpus(t)...)
	code := run(args, &out, &errb)
	if code == 2 {
		t.Fatalf("statsvet failed: %s", errb.String())
	}
	checkGolden(t, "testdata/golden/broken.json", out.Bytes())
}

// TestPassCoverage requires the broken corpus to exercise every analysis
// pass and every Go analyzer, so a pass can't silently go dark.
func TestPassCoverage(t *testing.T) {
	var out, errb bytes.Buffer
	run(brokenCorpus(t), &out, &errb)
	text := out.String()
	for _, pass := range []string{
		"frontend", "srclint", "verify", "effects", "footprints", "lints",
		"negopts", "droppedstats", "specclosure", "reserveops",
	} {
		if !strings.Contains(text, " "+pass+": ") {
			t.Errorf("broken corpus never triggers pass %s", pass)
		}
	}
}

// TestPassesFlag smoke-tests the -passes listing.
func TestPassesFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-passes"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, name := range []string{"verify", "effects", "footprints", "lints", "negopts", "droppedstats", "specclosure", "reserveops"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-passes listing missing %s:\n%s", name, out.String())
		}
	}
}
