// Command statsvet runs the STATS static-analysis suite: the IR verifier,
// the effect/purity dataflow, and the tradeoff lints over SDI/TI programs,
// plus the runtime-API analyzers over user Go code. It is the standalone
// face of the same passes the statsc -vet gate and stats.Runtime's module
// verification run.
//
// Inputs are classified by suffix:
//
//   - file.stats    — compiled through the front- and mid-end, then all
//     source lints and IR passes run over the result;
//   - file.ir.json  — decoded directly as an IR module (the form used for
//     corpus cases the well-formed pipeline cannot produce) and run
//     through the IR passes;
//   - file.go / dir — parsed with the stdlib parser and run through the
//     runtime-API misuse analyzers (negopts, droppedstats, specclosure);
//     directories are walked recursively, skipping testdata and _test.go.
//
// Usage:
//
//	statsvet testdata/bodytrack.stats        # findings-per-file text
//	statsvet -json corpus/broken/*.ir.json   # machine-readable findings
//	statsvet ./examples ./internal/workload  # Go runtime-API analyzers
//
// Exit status: 0 when no error-severity findings, 1 when any finding is
// an error, 2 on usage or I/O problems. Warnings never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/apivet"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/midend"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the unified output record for IR and Go findings.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Severity string `json:"severity"`
	Pass     string `json:"pass"`
	Msg      string `json:"msg"`
	Func     string `json:"func,omitempty"`
	Instr    int    `json:"instr,omitempty"`
	Var      string `json:"var,omitempty"`
}

// text renders the conventional file:line:col diagnostic line.
func (f finding) text() string {
	var b strings.Builder
	b.WriteString(f.File)
	if f.Line > 0 {
		fmt.Fprintf(&b, ":%d", f.Line)
		if f.Col > 0 {
			fmt.Fprintf(&b, ":%d", f.Col)
		}
	}
	fmt.Fprintf(&b, ": %s: %s: %s", f.Severity, f.Pass, f.Msg)
	var loc []string
	if f.Func != "" {
		loc = append(loc, "func "+f.Func)
	}
	if f.Var != "" {
		loc = append(loc, "var "+f.Var)
	}
	if len(loc) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(loc, ", "))
	}
	return b.String()
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	listPasses := fs.Bool("passes", false, "list the analysis passes and exit")
	footMode := fs.Bool("footprints", false, "emit the inferred slot-level footprint map instead of findings")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: statsvet [-json] [-passes] [-footprints] path...")
		fmt.Fprintln(stderr, "paths: .stats sources, .ir.json modules, .go files or directories")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listPasses {
		for _, p := range analysis.Passes() {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name, p.Doc)
		}
		for _, a := range apivet.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s (Go)\n", a.Name, a.Doc)
		}
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	if *footMode {
		return runFootprints(fs.Args(), *jsonOut, stdout, stderr)
	}

	var all []finding
	var goPaths []string
	for _, path := range fs.Args() {
		switch {
		case strings.HasSuffix(path, ".stats"):
			fsnd, err := vetStats(path)
			if err != nil {
				fmt.Fprintln(stderr, "statsvet:", err)
				return 2
			}
			all = append(all, fsnd...)
		case strings.HasSuffix(path, ".ir.json"):
			fsnd, err := vetIRJSON(path)
			if err != nil {
				fmt.Fprintln(stderr, "statsvet:", err)
				return 2
			}
			all = append(all, fsnd...)
		default:
			goPaths = append(goPaths, path)
		}
	}
	if len(goPaths) > 0 {
		ds, err := apivet.AnalyzePaths(goPaths)
		if err != nil {
			fmt.Fprintln(stderr, "statsvet:", err)
			return 2
		}
		for _, d := range ds {
			all = append(all, finding{
				File: d.File, Line: d.Line, Col: d.Col,
				Severity: "error", Pass: d.Analyzer, Msg: d.Msg,
			})
		}
	}

	errs, warns := 0, 0
	for _, f := range all {
		if f.Severity == "error" {
			errs++
		} else {
			warns++
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []finding{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "statsvet:", err)
			return 2
		}
	} else {
		for _, f := range all {
			fmt.Fprintln(stdout, f.text())
		}
		if len(all) > 0 {
			fmt.Fprintf(stdout, "statsvet: %d error(s), %d warning(s)\n", errs, warns)
		}
	}
	if errs > 0 {
		return 1
	}
	return 0
}

// slotDep is one dependence's entry in the -footprints export: the
// inferred and declared index expressions in their canonical renderings
// ("*", "3", "f", "2*f+1"), the form internal/workload re-parses when it
// builds slotted ReserveOps from the inference.
type slotDep struct {
	Dep      string   `json:"dep"`
	State    string   `json:"state"`
	Slots    int      `json:"slots,omitempty"`
	Precise  bool     `json:"precise"`
	Inferred []string `json:"inferred,omitempty"`
	Declared []string `json:"declared,omitempty"`
}

// slotMap is the per-file -footprints export document.
type slotMap struct {
	File string    `json:"file"`
	Deps []slotDep `json:"deps"`
}

// runFootprints handles -footprints mode: load each module, run the
// inference, and emit the slot map (JSON array or text). Go paths have no
// IR to infer over and are a usage error.
func runFootprints(paths []string, jsonOut bool, stdout, stderr io.Writer) int {
	var maps []slotMap
	for _, path := range paths {
		m, fsnd, err := loadModule(path)
		if err != nil {
			fmt.Fprintln(stderr, "statsvet:", err)
			return 2
		}
		if m == nil {
			fmt.Fprintf(stderr, "statsvet: %s: %s\n", path, fsnd[0].Msg)
			return 1
		}
		sm := slotMap{File: path}
		for _, fp := range analysis.InferFootprints(m) {
			sd := slotDep{Dep: fp.Dep, State: fp.State, Slots: fp.Slots, Precise: fp.Precise()}
			for _, e := range fp.Exprs() {
				sd.Inferred = append(sd.Inferred, e.String())
			}
			for _, e := range fp.Reserve {
				sd.Declared = append(sd.Declared, e.String())
			}
			sm.Deps = append(sm.Deps, sd)
		}
		maps = append(maps, sm)
	}
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if maps == nil {
			maps = []slotMap{}
		}
		if err := enc.Encode(maps); err != nil {
			fmt.Fprintln(stderr, "statsvet:", err)
			return 2
		}
		return 0
	}
	for _, sm := range maps {
		for _, sd := range sm.Deps {
			precise := "widened"
			if sd.Precise {
				precise = "precise"
			}
			fmt.Fprintf(stdout, "%s: dep %s: state %s slots %d %s inferred [%s] declared [%s]\n",
				sm.File, sd.Dep, sd.State, sd.Slots, precise,
				strings.Join(sd.Inferred, " "), strings.Join(sd.Declared, " "))
		}
	}
	return 0
}

// loadModule loads one .stats or .ir.json path as an IR module. A nil
// module with findings means the input itself was rejected.
func loadModule(path string) (*ir.Module, []finding, error) {
	switch {
	case strings.HasSuffix(path, ".stats"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		fo, err := frontend.Translate(string(src))
		if err != nil {
			return nil, []finding{{File: path, Severity: "error", Pass: "frontend", Msg: err.Error()}}, nil
		}
		m, err := midend.Lower(fo)
		if err != nil {
			return nil, []finding{{File: path, Severity: "error", Pass: "midend", Msg: err.Error()}}, nil
		}
		return m, nil, nil
	case strings.HasSuffix(path, ".ir.json"):
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		m, err := ir.DecodeJSON(f)
		if err != nil {
			return nil, []finding{{File: path, Severity: "error", Pass: "decode", Msg: err.Error()}}, nil
		}
		return m, nil, nil
	default:
		return nil, nil, fmt.Errorf("%s: -footprints wants .stats or .ir.json inputs", path)
	}
}

// vetStats compiles one SDI/TI source through the front- and mid-end and
// runs the full pass suite. Front-end and mid-end rejections are findings
// too — positioned ones when the error carries a line.
func vetStats(path string) ([]finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fo, err := frontend.Translate(string(src))
	if err != nil {
		if fe, ok := err.(*frontend.Error); ok {
			return []finding{{File: path, Line: fe.Line, Severity: "error", Pass: "frontend", Msg: fe.Msg}}, nil
		}
		return []finding{{File: path, Severity: "error", Pass: "frontend", Msg: err.Error()}}, nil
	}
	m, err := midend.Lower(fo)
	if err != nil {
		return []finding{{File: path, Severity: "error", Pass: "midend", Msg: err.Error()}}, nil
	}
	return toFindings(path, analysis.AnalyzeProgram(fo, m)), nil
}

// vetIRJSON decodes one IR module document and runs the IR passes.
func vetIRJSON(path string) ([]finding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := ir.DecodeJSON(f)
	if err != nil {
		return []finding{{File: path, Severity: "error", Pass: "decode", Msg: err.Error()}}, nil
	}
	return toFindings(path, analysis.Analyze(m)), nil
}

// toFindings converts analysis diagnostics to the unified record.
func toFindings(file string, ds []analysis.Diagnostic) []finding {
	out := make([]finding, 0, len(ds))
	for _, d := range ds {
		out = append(out, finding{
			File: file, Line: d.Pos.Line, Col: d.Pos.Col,
			Severity: d.Severity.String(), Pass: d.Pass, Msg: d.Msg,
			Func: d.Fn, Instr: d.Instr, Var: d.Var,
		})
	}
	return out
}
