// Command statsrun executes one benchmark reproduction, conventionally or
// through the STATS runtime, and reports its speculation statistics and
// output quality (distance from the §4.2 oracle).
//
// Usage:
//
//	statsrun -workload bodytrack -size 32 -aux -group 8 -window 3 -redo 2 -rollback 2 -workers 8
//	statsrun -workload swaptions -aux -protocol reservations   # deterministic reservations
//	statsrun -workload canneal            # the statically rejected benchmark
//	statsrun -workload swaptions -aux -serve :8080 -repeat 0   # serve telemetry, run forever
//	statsrun -list
//
// With -serve the run executes with the observability layer attached and
// an HTTP telemetry server up at the given address: /metrics (Prometheus
// text), /healthz (windowed speculation health), /signals (rolling
// control signals; ?stream=1 for SSE), /events (live SSE stream),
// /trace (Chrome trace_event JSON), /spans (causal span trees), and
// with -pprof the net/http/pprof profiles. -repeat re-runs the
// workload N times (0 = until interrupted) so there is a live run to
// watch.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	list := flag.Bool("list", false, "list benchmarks and exit")
	size := flag.Int("size", workload.NativeSize, "input size (workload units)")
	seed := flag.Uint64("seed", 1, "run seed (the nondeterminism)")
	aux := flag.Bool("aux", false, "satisfy the state dependence with auxiliary code")
	group := flag.Int("group", 8, "input group cardinality")
	window := flag.Int("window", 2, "auxiliary-code input window")
	redo := flag.Int("redo", 2, "max original-producer re-executions")
	rollback := flag.Int("rollback", 2, "inputs to go back per re-execution")
	workers := flag.Int("workers", 8, "runtime worker-pool width")
	protocol := flag.String("protocol", "aux", "speculation protocol: aux (auxiliary code + validation) or reservations (deterministic reserve/check/commit rounds)")
	serve := flag.String("serve", "", "serve HTTP telemetry at this address (e.g. :8080) during the run")
	repeat := flag.Int("repeat", 1, "with -serve, how many times to run the workload (0 = until interrupted)")
	pprofFlag := flag.Bool("pprof", false, "with -serve, also mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(registry.Names(), "\n"))
		return
	}

	w, err := registry.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsrun:", err)
		os.Exit(2)
	}
	d := w.Desc()
	fmt.Printf("benchmark: %s (state dependences: %d)\n", d.Name, d.NumDeps)
	if !d.SupportsSTATS && *aux {
		fmt.Printf("STATS statically rejects this benchmark: %s\n", d.RejectReason)
		fmt.Println("falling back to conventional execution")
	}

	proto, ok := core.ParseProtocol(*protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "statsrun: unknown protocol %q (want aux or reservations)\n", *protocol)
		os.Exit(2)
	}

	so := workload.SpecOptions{
		UseAux:    *aux,
		Protocol:  proto,
		GroupSize: *group,
		Window:    *window,
		RedoMax:   *redo,
		Rollback:  *rollback,
		Workers:   *workers,
	}
	if *serve != "" {
		serveMain(w, *size, *seed, so, *serve, *repeat, *pprofFlag)
		return
	}

	oracle := w.RunOracle(*size)

	start := time.Now()
	res, st := w.RunSTATS(*seed, *size, so)
	elapsed := time.Since(start)

	fmt.Printf("wall time:            %v\n", elapsed)
	fmt.Printf("inputs:               %d (groups: %d)\n", st.Inputs, st.Groups)
	fmt.Printf("speculative commits:  %d inputs\n", st.SpeculativeCommits)
	fmt.Printf("matches / redos:      %d / %d\n", st.Matches, st.Redos)
	fmt.Printf("aborts / squashed:    %d / %d inputs\n", st.Aborts, st.SquashedInputs)
	if proto == core.ProtocolReservations {
		fmt.Printf("rounds / conflicts:   %d / %d\n", st.Rounds, st.ReservationConflicts)
	}
	fmt.Printf("invocations (useful): %d (%d)\n", st.Invocations, st.UsefulInvocations)
	fmt.Printf("aux calls / inputs:   %d / %d\n", st.AuxCalls, st.AuxInputs)
	fmt.Printf("output distance from oracle (%s metric): %.6g\n", d.Name, res.Distance(oracle))

	// Reference: conventional run quality band.
	conv := w.RunOriginal(*seed, *size)
	fmt.Printf("conventional run distance (same seed):    %.6g\n", conv.Distance(oracle))
}

// serveMain runs the workload with the observability layer attached and a
// telemetry server up, re-running it repeat times (0 = forever) so the
// live endpoints have a run to expose. It exits on interrupt or when the
// repeats are done.
func serveMain(w workload.Workload, size int, seed uint64, so workload.SpecOptions, addr string, repeat int, withPprof bool) {
	ob := obs.NewObserver(so.Workers+1, 1<<14)
	so.Obs = ob
	srv := telemetry.NewServer(telemetry.Config{Observer: ob, EnablePprof: withPprof})
	if err := srv.Start(addr); err != nil {
		fmt.Fprintln(os.Stderr, "statsrun:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("telemetry at %s (endpoints: /metrics /healthz /signals /events /trace /spans)\n", srv.URL())

	interrupted := make(chan os.Signal, 1)
	signal.Notify(interrupted, os.Interrupt)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		for i := 0; repeat == 0 || i < repeat; i++ {
			start := time.Now()
			_, st := w.RunSTATS(seed+uint64(i), size, so)
			fmt.Printf("run %d: %v, %d inputs, %d speculative commits, %d aborts\n",
				i+1, time.Since(start).Round(time.Millisecond),
				st.Inputs, st.SpeculativeCommits, st.Aborts)
			select {
			case <-interrupted:
				return
			default:
			}
		}
	}()
	select {
	case <-runDone:
	case <-interrupted:
		fmt.Println("interrupted")
	}
}
