// Command statsrun executes one benchmark reproduction, conventionally or
// through the STATS runtime, and reports its speculation statistics and
// output quality (distance from the §4.2 oracle).
//
// Usage:
//
//	statsrun -workload bodytrack -size 32 -aux -group 8 -window 3 -redo 2 -rollback 2 -workers 8
//	statsrun -workload canneal            # the statically rejected benchmark
//	statsrun -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/workload"
	"repro/internal/workload/registry"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	list := flag.Bool("list", false, "list benchmarks and exit")
	size := flag.Int("size", workload.NativeSize, "input size (workload units)")
	seed := flag.Uint64("seed", 1, "run seed (the nondeterminism)")
	aux := flag.Bool("aux", false, "satisfy the state dependence with auxiliary code")
	group := flag.Int("group", 8, "input group cardinality")
	window := flag.Int("window", 2, "auxiliary-code input window")
	redo := flag.Int("redo", 2, "max original-producer re-executions")
	rollback := flag.Int("rollback", 2, "inputs to go back per re-execution")
	workers := flag.Int("workers", 8, "runtime worker-pool width")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(registry.Names(), "\n"))
		return
	}

	w, err := registry.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsrun:", err)
		os.Exit(2)
	}
	d := w.Desc()
	fmt.Printf("benchmark: %s (state dependences: %d)\n", d.Name, d.NumDeps)
	if !d.SupportsSTATS && *aux {
		fmt.Printf("STATS statically rejects this benchmark: %s\n", d.RejectReason)
		fmt.Println("falling back to conventional execution")
	}

	oracle := w.RunOracle(*size)

	start := time.Now()
	res, st := w.RunSTATS(*seed, *size, workload.SpecOptions{
		UseAux:    *aux,
		GroupSize: *group,
		Window:    *window,
		RedoMax:   *redo,
		Rollback:  *rollback,
		Workers:   *workers,
	})
	elapsed := time.Since(start)

	fmt.Printf("wall time:            %v\n", elapsed)
	fmt.Printf("inputs:               %d (groups: %d)\n", st.Inputs, st.Groups)
	fmt.Printf("speculative commits:  %d inputs\n", st.SpeculativeCommits)
	fmt.Printf("matches / redos:      %d / %d\n", st.Matches, st.Redos)
	fmt.Printf("aborts / squashed:    %d / %d inputs\n", st.Aborts, st.SquashedInputs)
	fmt.Printf("invocations (useful): %d (%d)\n", st.Invocations, st.UsefulInvocations)
	fmt.Printf("aux calls / inputs:   %d / %d\n", st.AuxCalls, st.AuxInputs)
	fmt.Printf("output distance from oracle (%s metric): %.6g\n", d.Name, res.Distance(oracle))

	// Reference: conventional run quality band.
	conv := w.RunOriginal(*seed, *size)
	fmt.Printf("conventional run distance (same seed):    %.6g\n", conv.Distance(oracle))
}
