// Command statsexp regenerates the paper's tables and figures (§4). Each
// experiment prints the same rows/series the paper reports, produced by the
// evaluation harness.
//
// Usage:
//
//	statsexp -exp all            # every experiment
//	statsexp -exp fig12          # one experiment
//	statsexp -exp fig12 -quick   # scaled-down budgets (for smoke tests)
//
// Experiments: fig02, fig03, table1, fig12, fig13, fig14, fig15, fig16,
// fig17, fig18, fig19, fig20, scrape (live-telemetry self-scrape
// reconciliation), chaos (seeded fault injection vs the §3.1 output
// guarantee), explore (systematic schedule exploration under controlled
// scheduling; -schedules sizes the per-row sweep), ablation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig02..fig20, table1, ablation, or 'all')")
	quick := flag.Bool("quick", false, "use scaled-down budgets")
	seed := flag.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	schedules := flag.Int("schedules", 0, "explore: controlled schedules per row (0 keeps the default)")
	format := flag.String("format", "text", "output format: text, json, csv")
	flag.Parse()

	e := harness.NewEnv(*quick)
	if *seed != 0 {
		e.Seed = *seed
	}
	render := func(t *harness.Table) error { return t.Write(os.Stdout, *format) }

	runners := map[string]func() error{
		"fig02": func() error { return render(harness.Fig02Table(e)) },
		"fig03": func() error { return render(harness.Fig03Table(e)) },
		"table1": func() error {
			t, err := harness.Table1Table(e)
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig12": func() error {
			for _, t := range harness.Fig12Table(e) {
				if err := render(t); err != nil {
					return err
				}
			}
			return nil
		},
		"fig13": func() error { return render(harness.Fig13Table(e)) },
		"fig14": func() error { return render(harness.Fig14Table(e)) },
		"fig15": func() error { return render(harness.Fig15Table(e)) },
		"fig16": func() error { return render(harness.Fig16Table(e)) },
		"fig17": func() error { return render(harness.Fig17Table(e)) },
		"fig18": func() error { return render(harness.Fig18Table(e)) },
		"fig19": func() error { return render(harness.Fig19Table(e)) },
		"fig20": func() error { return render(harness.Fig20Table(e)) },
		"scrape": func() error {
			t, err := harness.ScrapeTable(e)
			if err != nil {
				return err
			}
			return render(t)
		},
		"chaos": func() error {
			t, err := harness.ChaosTable(e)
			if err != nil {
				return err
			}
			return render(t)
		},
		"explore": func() error {
			t, err := harness.ExploreTable(e, harness.ExploreConfig{SchedulesPerRow: *schedules})
			if t != nil {
				if rerr := render(t); rerr != nil && err == nil {
					err = rerr
				}
			}
			return err
		},
		"ablation": func() error {
			for _, w := range e.Targets() {
				for _, dim := range []harness.AblationDim{
					harness.AblateGroup, harness.AblateWindow,
					harness.AblateRedo, harness.AblateRollback,
				} {
					if err := render(harness.AblationTable(e, w, dim)); err != nil {
						return err
					}
				}
				if w.Desc().SupportsSTATS {
					if err := render(harness.SpecBehaviorTable(e, w)); err != nil {
						return err
					}
				}
			}
			return render(harness.SchedulerAblation(e))
		},
	}
	order := []string{"fig02", "fig03", "table1", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "scrape", "chaos",
		"explore", "ablation"}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[strings.ToLower(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "statsexp: unknown experiment %q (want one of %s)\n",
				id, strings.Join(order, ", "))
			os.Exit(2)
		}
		if err := run(); err != nil {
			fmt.Fprintf(os.Stderr, "statsexp: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
