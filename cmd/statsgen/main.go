// Command statsgen exports a benchmark's native inputs as JSON: the
// synthetic substitutes for the paper's PARSEC inputs, fixed per
// (workload, size, variant) so exports are reproducible artifacts.
//
// Usage:
//
//	statsgen -workload bodytrack -size 32                # native inputs
//	statsgen -workload facedet -size 32 -bad             # §4.6 variant
//	statsgen -workload swaptions -size 34 -summary       # one-line summary
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/inputgen"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	size := flag.Int("size", 32, "input size (workload units)")
	bad := flag.Bool("bad", false, "export the non-representative (§4.6) variant")
	summary := flag.Bool("summary", false, "print a one-line summary instead of JSON")
	flag.Parse()

	d, err := inputgen.Export(*name, *size, *bad)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statsgen:", err)
		os.Exit(2)
	}
	if *summary {
		fmt.Println(d.Summary())
		return
	}
	if err := d.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "statsgen:", err)
		os.Exit(1)
	}
}
