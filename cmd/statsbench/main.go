// Command statsbench runs the repository's hot-path microbenchmarks
// through `go test -bench` and writes the parsed results as a JSON
// document — the checked-in BENCH_pr10.json snapshot (continuing
// BENCH_pr9.json) that records the telemetry scrape/Emit costs, the
// always-on profiler's warm paths (incremental span folding and the
// windowed signals report), the engine's speculative path with the
// controlled scheduler disabled and enabled, the
// deterministic-reservations protocol in its whole-state and slotted
// shapes, and the engine's recycled hot path: warm vs cold run
// allocations, grouping-dominant runs, and the hash-first acceptance
// probe (hit and miss).
//
// With -budget it also acts as the regression gate: the budget file
// maps benchmark names (GOMAXPROCS -N suffix stripped) to allocs/op
// ceilings, and any measured result above its ceiling fails the run.
//
// Usage:
//
//	statsbench                     # write BENCH_pr10.json in the cwd
//	statsbench -out results.json   # elsewhere
//	statsbench -out ""             # measure without writing a snapshot
//	statsbench -benchtime 100x     # quicker smoke run
//	statsbench -pkgs telemetry,core  # only suites matching a comma-separated term
//	statsbench -budget BENCH_budget.json   # enforce allocs/op ceilings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the benchmark's name with the -N GOMAXPROCS suffix kept.
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -benchmem numbers (0 when absent).
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// MBPerSec is throughput when the benchmark reports SetBytes.
	MBPerSec float64 `json:"mb_per_sec,omitempty"`
}

// BenchDoc is the JSON document statsbench writes.
type BenchDoc struct {
	// GoVersion and Timestamp identify the run.
	GoVersion string `json:"go_version"`
	Timestamp string `json:"timestamp"`
	// Benchtime is the -benchtime used.
	Benchtime string `json:"benchtime"`
	// Results are the parsed benchmark lines in run order.
	Results []BenchResult `json:"results"`
}

// suites are the (package, bench regexp) pairs the snapshot covers: the
// telemetry server under load plus the profiler's warm paths, the
// tracer's emit paths, and the engine's speculative run with the
// controlled scheduler off (nil fast path) and on (gate-serialized
// systematic-testing mode).
var suites = []struct{ pkg, pattern string }{
	{"./internal/telemetry", "BenchmarkMetricsScrapeUnderLoad|BenchmarkEmitWithSSEClient|BenchmarkEmitDisabledObserver|BenchmarkBuildSpans|BenchmarkSpanFolderWarm|BenchmarkSignalsReport"},
	{"./internal/obs", "BenchmarkEmitDisabled$|BenchmarkEmitEnabled|BenchmarkObserverDisabledGroupPath"},
	{"./internal/core", "BenchmarkEngineSpeculative$|BenchmarkEngineControlledSched$|BenchmarkEngineReservations$|BenchmarkEngineWarmRun|BenchmarkEngineColdRun$|BenchmarkEngineGrouping$|BenchmarkMatchAnyFingerprint"},
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output JSON path (empty: don't write)")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	budgetPath := flag.String("budget", "", "allocs/op budget JSON; violations fail the run")
	pkgs := flag.String("pkgs", "", "only run suites whose package path contains one of these comma-separated substrings")
	flag.Parse()

	doc := BenchDoc{
		GoVersion: strings.TrimSpace(goVersion()),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Benchtime: *benchtime,
	}
	for _, s := range suites {
		if !pkgSelected(s.pkg, *pkgs) {
			continue
		}
		lines, err := runBench(s.pkg, s.pattern, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "statsbench: %s: %v\n", s.pkg, err)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, lines...)
	}
	if len(doc.Results) == 0 {
		fmt.Fprintln(os.Stderr, "statsbench: no benchmark lines parsed")
		os.Exit(1)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "statsbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "statsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d benchmark results to %s\n", len(doc.Results), *out)
	} else {
		fmt.Printf("measured %d benchmark results (no snapshot written)\n", len(doc.Results))
	}
	for _, r := range doc.Results {
		fmt.Printf("  %-45s %12.1f ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}

	if *budgetPath != "" {
		if err := enforceBudget(*budgetPath, doc.Results); err != nil {
			fmt.Fprintln(os.Stderr, "statsbench:", err)
			os.Exit(1)
		}
	}
}

// pkgSelected reports whether the suite package passes the -pkgs filter:
// empty selects everything, otherwise the path must contain one of the
// comma-separated substrings (blank terms are ignored).
func pkgSelected(pkg, filter string) bool {
	if filter == "" {
		return true
	}
	for _, term := range strings.Split(filter, ",") {
		term = strings.TrimSpace(term)
		if term != "" && strings.Contains(pkg, term) {
			return true
		}
	}
	return false
}

// enforceBudget fails when any measured benchmark exceeds its allocs/op
// ceiling. The budget file maps bare benchmark names (no -N GOMAXPROCS
// suffix) to ceilings; benchmarks without an entry pass unchecked, and
// budget entries the run never measured are an error so a renamed
// benchmark cannot silently void its gate.
func enforceBudget(path string, results []BenchResult) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var budget map[string]int64
	if err := json.Unmarshal(blob, &budget); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	checked := map[string]bool{}
	var violations []string
	for _, r := range results {
		name := stripProcSuffix(r.Name)
		ceiling, ok := budget[name]
		if !ok {
			continue
		}
		checked[name] = true
		if r.AllocsPerOp > ceiling {
			violations = append(violations, fmt.Sprintf(
				"%s: %d allocs/op exceeds the %d budget", name, r.AllocsPerOp, ceiling))
		}
	}
	for name := range budget {
		if !checked[name] {
			violations = append(violations, fmt.Sprintf(
				"%s: budgeted but never measured (renamed or filtered out?)", name))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("allocation budget violations:\n  %s",
			strings.Join(violations, "\n  "))
	}
	fmt.Printf("allocation budget OK (%d benchmarks within %s)\n", len(checked), path)
	return nil
}

// stripProcSuffix removes the trailing -N GOMAXPROCS decoration go test
// appends to benchmark names, so budgets are stable across machines.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// goVersion returns `go env GOVERSION`.
func goVersion() string {
	out, err := exec.Command("go", "env", "GOVERSION").Output()
	if err != nil {
		return "unknown"
	}
	return string(out)
}

// runBench executes one `go test -bench` invocation and parses its output.
func runBench(pkg, pattern, benchtime string) ([]BenchResult, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%w\n%s", err, out)
	}
	return parseBenchOutput(pkg, string(out)), nil
}

// parseBenchOutput extracts Benchmark… lines from go test output.
func parseBenchOutput(pkg, out string) []BenchResult {
	var res []BenchResult
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: f[0], Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			case "MB/s":
				r.MBPerSec = v
			}
		}
		res = append(res, r)
	}
	return res
}
