// Command statstune runs the STATS autotuner (§3.5) for one benchmark on
// the simulated evaluation platform and prints the best configuration it
// finds, the convergence trace, and the resulting speedup.
//
// Usage:
//
//	statstune -workload bodytrack -threads 28 -mode par -goal time -budget 120
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autotune"
	"repro/internal/energy"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	threads := flag.Int("threads", 28, "hardware threads")
	modeFlag := flag.String("mode", "par", "STATS source program: seq or par")
	goalFlag := flag.String("goal", "time", "optimization goal: time or energy")
	budget := flag.Int("budget", 120, "autotuner evaluation budget")
	seed := flag.Uint64("seed", 0x57A75, "tuner seed")
	flag.Parse()

	w, err := registry.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statstune:", err)
		os.Exit(2)
	}
	mode := taskgen.ParSTATS
	if *modeFlag == "seq" {
		mode = taskgen.SeqSTATS
	}
	goal := profiler.Time
	if *goalFlag == "energy" {
		goal = profiler.Energy
	}

	p := &profiler.P{
		Machine:   platform.Haswell28(false),
		Threads:   *threads,
		Energy:    energy.Default(),
		W:         w,
		Size:      workload.NativeSize,
		Mode:      mode,
		GraphSeed: *seed,
	}
	s := profiler.BuildSpace(w, int64(*threads))
	fmt.Printf("state space: %d dimensions, %.3g points\n", s.Len(), s.Cardinality())

	res := autotune.Tune(s, p.Objective(s, goal, false), autotune.Options{Budget: *budget, Seed: *seed})
	opts, th := profiler.Decode(s, res.Best, w)

	baseline := p.Measure(workload.SpecOptions{}, *threads)
	best := p.Measure(opts, th)

	fmt.Printf("evaluations: %d (to within 1%% of best: %d)\n",
		len(res.Trace.Evaluations), res.Trace.EvaluationsToReach(1.01))
	fmt.Printf("best configuration:\n")
	fmt.Printf("  auxiliary code: %v\n", opts.UseAux)
	fmt.Printf("  group size:     %d\n", opts.GroupSize)
	fmt.Printf("  window:         %d\n", opts.Window)
	fmt.Printf("  redo budget:    %d\n", opts.RedoMax)
	fmt.Printf("  rollback:       %d\n", opts.Rollback)
	fmt.Printf("  original TLP threads: %d\n", th)
	fmt.Printf("  aux tradeoff indices: %v\n", opts.TradeoffIdx)
	switch goal {
	case profiler.Energy:
		fmt.Printf("baseline energy: %.1f J, tuned: %.1f J (%.1f%% saved)\n",
			baseline.EnergyJ, best.EnergyJ, 100*(1-best.EnergyJ/baseline.EnergyJ))
	default:
		fmt.Printf("baseline time: %.2f, tuned: %.2f (speedup %.2fx over the parallel baseline)\n",
			baseline.TimeSeconds, best.TimeSeconds, baseline.TimeSeconds/best.TimeSeconds)
	}
}
