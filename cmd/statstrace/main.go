// Command statstrace renders the simulated schedule of a benchmark as an
// ASCII Gantt chart — the Figure 5 view: the serialized chain of the
// conventional execution versus the overlapped groups, auxiliary tasks and
// validations of the speculative one.
//
// Usage:
//
//	statstrace -workload bodytrack -mode seq -threads 8            # Fig. 5a
//	statstrace -workload bodytrack -mode parstats -threads 8 -aux  # Fig. 5b
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/platform"
	"repro/internal/taskgen"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	modeFlag := flag.String("mode", "parstats", "program shape: seq, original, seqstats, parstats")
	threads := flag.Int("threads", 8, "hardware threads")
	size := flag.Int("size", 32, "input chain length")
	aux := flag.Bool("aux", true, "satisfy the state dependence with auxiliary code")
	group := flag.Int("group", 8, "group cardinality")
	window := flag.Int("window", 2, "auxiliary input window")
	redo := flag.Int("redo", 2, "redo budget")
	rollback := flag.Int("rollback", 2, "rollback width")
	width := flag.Int("width", 100, "chart width in columns")
	rows := flag.Int("rows", 16, "max thread rows")
	power := flag.Bool("power", false, "also render the modeled power timeline")
	seed := flag.Uint64("seed", 7, "speculation-outcome seed")
	flag.Parse()

	w, err := registry.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statstrace:", err)
		os.Exit(2)
	}
	var mode taskgen.Mode
	switch *modeFlag {
	case "seq":
		mode = taskgen.Sequential
	case "original":
		mode = taskgen.Original
	case "seqstats":
		mode = taskgen.SeqSTATS
	case "parstats":
		mode = taskgen.ParSTATS
	default:
		fmt.Fprintf(os.Stderr, "statstrace: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	o := workload.SpecOptions{
		UseAux: *aux, GroupSize: *group, Window: *window,
		RedoMax: *redo, Rollback: *rollback,
	}
	m := w.CostModel(*size, o)
	g := taskgen.Build(mode, m, o, *seed)
	res := platform.Simulate(platform.Haswell28(false), g, *threads)

	fmt.Printf("%s, %s, %d inputs, %d threads\n", w.Desc().Name, mode, *size, *threads)
	trace.Render(os.Stdout, res, trace.Options{Width: *width, MaxThreads: *rows})
	if *power {
		trace.RenderPower(os.Stdout, res, energy.Default(), trace.PowerOptions{Width: *width})
	}
	fmt.Println(trace.Summary(res))
	th, busy := trace.CriticalThread(res)
	fmt.Printf("critical thread t%02d busy %.2f of %.2f\n", th, busy, res.Makespan)

	// The comparison baseline.
	seq := platform.Simulate(platform.Haswell28(false),
		taskgen.Build(taskgen.Sequential, m, workload.SpecOptions{}, *seed), 1)
	fmt.Printf("speedup vs single-threaded original: %.2fx\n", seq.Makespan/res.Makespan)
}
