// Command statstrace renders the simulated schedule of a benchmark as an
// ASCII Gantt chart — the Figure 5 view: the serialized chain of the
// conventional execution versus the overlapped groups, auxiliary tasks and
// validations of the speculative one.
//
// Usage:
//
//	statstrace -workload bodytrack -mode seq -threads 8            # Fig. 5a
//	statstrace -workload bodytrack -mode parstats -threads 8 -aux  # Fig. 5b
//	statstrace -workload bodytrack -live                           # observed run
//	statstrace -workload bodytrack -live -chrome out.json          # + Chrome trace
//	statstrace -workload bodytrack -live -spans                    # + causal span trees
//	statstrace -workload bodytrack -live -waterfall                # + wasted-work waterfall
//	statstrace -from-spans spans.json                              # render a saved /spans doc
//
// By default the chart comes from the platform simulator. With -live the
// workload actually executes through the core engine with the
// observability layer attached, and the chart is rebuilt from the
// recorded speculation event log; -chrome additionally exports that log
// as Chrome trace_event JSON (load it in chrome://tracing), and -spans
// additionally renders the reconstructed causal span trees (one tree per
// speculation group: aux production, execution, validation with every
// redo, abort/squash/fallback marks). -from-spans renders the span view
// from a JSON document saved from a telemetry server's /spans endpoint,
// with no execution at all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/energy"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/taskgen"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

func main() {
	name := flag.String("workload", "bodytrack", "benchmark name")
	modeFlag := flag.String("mode", "parstats", "program shape: seq, original, seqstats, parstats")
	threads := flag.Int("threads", 8, "hardware threads")
	size := flag.Int("size", 32, "input chain length")
	aux := flag.Bool("aux", true, "satisfy the state dependence with auxiliary code")
	group := flag.Int("group", 8, "group cardinality")
	window := flag.Int("window", 2, "auxiliary input window")
	redo := flag.Int("redo", 2, "redo budget")
	rollback := flag.Int("rollback", 2, "rollback width")
	width := flag.Int("width", 100, "chart width in columns")
	rows := flag.Int("rows", 16, "max thread rows")
	power := flag.Bool("power", false, "also render the modeled power timeline")
	seed := flag.Uint64("seed", 7, "speculation-outcome seed")
	live := flag.Bool("live", false, "execute the workload for real and render the observed event log")
	chrome := flag.String("chrome", "", "with -live, also write the event log as Chrome trace_event JSON to this file")
	spans := flag.Bool("spans", false, "with -live, also render the reconstructed causal span trees")
	waterfall := flag.Bool("waterfall", false, "with -live or -from-spans, also render the wasted-work waterfall with the critical path")
	fromSpans := flag.String("from-spans", "", "render the span view from a /spans JSON document (no execution)")
	flag.Parse()

	if *fromSpans != "" {
		if err := renderSpanFile(*fromSpans, *waterfall); err != nil {
			fmt.Fprintln(os.Stderr, "statstrace:", err)
			os.Exit(1)
		}
		return
	}

	w, err := registry.ByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statstrace:", err)
		os.Exit(2)
	}
	if *live {
		liveMain(w, *threads, *size, workload.SpecOptions{
			UseAux: *aux, GroupSize: *group, Window: *window,
			RedoMax: *redo, Rollback: *rollback, Workers: *threads,
		}, *seed, *width, *rows, *chrome, *spans, *waterfall)
		return
	}
	var mode taskgen.Mode
	switch *modeFlag {
	case "seq":
		mode = taskgen.Sequential
	case "original":
		mode = taskgen.Original
	case "seqstats":
		mode = taskgen.SeqSTATS
	case "parstats":
		mode = taskgen.ParSTATS
	default:
		fmt.Fprintf(os.Stderr, "statstrace: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	o := workload.SpecOptions{
		UseAux: *aux, GroupSize: *group, Window: *window,
		RedoMax: *redo, Rollback: *rollback,
	}
	m := w.CostModel(*size, o)
	g := taskgen.Build(mode, m, o, *seed)
	res := platform.Simulate(platform.Haswell28(false), g, *threads)

	fmt.Printf("%s, %s, %d inputs, %d threads\n", w.Desc().Name, mode, *size, *threads)
	trace.Render(os.Stdout, res, trace.Options{Width: *width, MaxThreads: *rows})
	if *power {
		trace.RenderPower(os.Stdout, res, energy.Default(), trace.PowerOptions{Width: *width})
	}
	fmt.Println(trace.Summary(res))
	th, busy := trace.CriticalThread(res)
	fmt.Printf("critical thread t%02d busy %.2f of %.2f\n", th, busy, res.Makespan)

	// The comparison baseline.
	seq := platform.Simulate(platform.Haswell28(false),
		taskgen.Build(taskgen.Sequential, m, workload.SpecOptions{}, *seed), 1)
	fmt.Printf("speedup vs single-threaded original: %.2fx\n", seq.Makespan/res.Makespan)
}

// liveMain runs the workload for real with the observability layer
// attached and renders the recorded event log instead of a simulation.
func liveMain(w workload.Workload, threads, size int, o workload.SpecOptions, seed uint64, width, rows int, chromePath string, spans, waterfall bool) {
	d := w.Desc()
	if !d.SupportsSTATS {
		fmt.Fprintf(os.Stderr, "statstrace: %s does not support STATS: %s\n", d.Name, d.RejectReason)
		os.Exit(2)
	}
	ob := obs.NewObserver(threads+1, 1<<14)
	o.Obs = ob
	_, st := w.RunSTATS(seed, size, o)
	events := ob.Tracer.Snapshot()

	fmt.Printf("%s, live, %d inputs, %d workers\n", d.Name, size, threads)
	trace.RenderEvents(os.Stdout, events, trace.EventOptions{Width: width, MaxRows: rows})
	if dropped := ob.Tracer.Dropped(); dropped > 0 {
		fmt.Printf("(%d events evicted by the bounded rings)\n", dropped)
	}
	fmt.Printf("groups %d, speculative commits %d, redos %d, aborts %d\n",
		st.Groups, st.SpeculativeCommits, st.Redos, st.Aborts)
	fmt.Printf("validation latency p50 %dns p99 %dns over %d validations\n",
		ob.ValidationLatencyNS.Quantile(0.5), ob.ValidationLatencyNS.Quantile(0.99),
		ob.ValidationLatencyNS.Count())
	if spans || waterfall {
		doc := telemetry.BuildSpans(events)
		doc.Emitted = ob.Tracer.Emitted()
		doc.Dropped = ob.Tracer.Dropped()
		if spans {
			fmt.Println()
			telemetry.RenderSpans(os.Stdout, doc)
		}
		if waterfall {
			fmt.Println()
			telemetry.RenderWaterfall(os.Stdout, doc)
		}
	}
	fmt.Println()
	fmt.Print(ob.Reg.Text())

	if chromePath != "" {
		if err := writeChromeTrace(chromePath, events); err != nil {
			fmt.Fprintln(os.Stderr, "statstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s (load in chrome://tracing)\n", chromePath)
	}
}

// renderSpanFile renders the span view of a saved /spans JSON document.
func renderSpanFile(path string, waterfall bool) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc telemetry.SpanDoc
	if err := json.Unmarshal(blob, &doc); err != nil {
		return fmt.Errorf("%s is not a /spans document: %w", path, err)
	}
	telemetry.RenderSpans(os.Stdout, &doc)
	if waterfall {
		fmt.Println()
		telemetry.RenderWaterfall(os.Stdout, &doc)
	}
	return nil
}

// writeChromeTrace exports events as Chrome trace_event JSON at path.
func writeChromeTrace(path string, events []obs.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.ChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
