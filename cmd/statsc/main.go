// Command statsc drives the STATS compiler pipeline (§3.4) over a source
// file written with the SDI/TI extensions: the front-end lowers the
// extension blocks to standard source plus the generated tradeoff header;
// the middle-end emits IR with auxiliary code; the back-end instantiates a
// configuration into a "binary" (the specialized program description).
//
// Usage:
//
//	statsc -in testdata/bodytrack.stats -emit std      # standard source
//	statsc -in testdata/bodytrack.stats -emit header   # Figure 11 header
//	statsc -in testdata/bodytrack.stats -emit ir       # IR summary
//	statsc -in testdata/bodytrack.stats -emit binary \
//	       -set TO_numAnnealingLayers$aux$track=2 \
//	       -runtime track=aux,group=8,window=2,redo=2,rollback=2
//
// The statsvet analysis suite gates emission by default: any
// error-severity finding (IR verifier, effect/purity dataflow, tradeoff
// lints) makes statsc refuse to emit. Disable with -vet=false — the
// runtime's speculative validation then becomes the only safety net.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/midend"
)

// stringsFlag collects repeatable flags.
type stringsFlag []string

func (s *stringsFlag) String() string { return strings.Join(*s, ",") }
func (s *stringsFlag) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	in := flag.String("in", "", "input source file with STATS extensions ('-' for stdin)")
	emit := flag.String("emit", "binary", "what to emit: std, header, ir, binary")
	vet := flag.Bool("vet", true, "run the statsvet analysis suite and refuse to emit a failing module")
	var sets, runtimes stringsFlag
	flag.Var(&sets, "set", "tradeoff index assignment name=idx (repeatable)")
	flag.Var(&runtimes, "runtime", "runtime options dep=aux,group=G,window=K,redo=R,rollback=W (repeatable)")
	flag.Parse()

	src, err := readInput(*in)
	if err != nil {
		fatal(err)
	}

	fo, err := frontend.Translate(src)
	if err != nil {
		fatal(err)
	}
	switch *emit {
	case "std":
		fmt.Print(fo.StandardSource)
		return
	case "header":
		fmt.Print(fo.Header)
		return
	}

	mod, err := midend.Lower(fo)
	if err != nil {
		fatal(err)
	}
	// The vet gate: the same passes cmd/statsvet runs. Warnings are
	// advisory; any error-severity finding means the module is refused
	// before anything is emitted (opt out with -vet=false).
	if *vet {
		ds := analysis.AnalyzeProgram(fo, mod)
		for _, d := range ds {
			fmt.Fprintf(os.Stderr, "statsc: vet: %s\n", d)
		}
		if analysis.HasErrors(ds) {
			fatal(fmt.Errorf("statsc: vet found errors; refusing to emit (use -vet=false to override)"))
		}
	}
	if *emit == "ir" {
		printIR(mod)
		return
	}
	if *emit != "binary" {
		fatal(fmt.Errorf("statsc: unknown -emit %q", *emit))
	}

	cfg := backend.Config{TradeoffIdx: map[string]int64{}, Runtime: map[string]backend.RuntimeOptions{}}
	for _, s := range sets {
		name, idxStr, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("statsc: malformed -set %q", s))
		}
		idx, err := strconv.ParseInt(idxStr, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("statsc: -set %q: %w", s, err))
		}
		cfg.TradeoffIdx[name] = idx
	}
	for _, s := range runtimes {
		dep, opts, ok := strings.Cut(s, "=")
		if !ok {
			fatal(fmt.Errorf("statsc: malformed -runtime %q", s))
		}
		ro, err := parseRuntime(opts)
		if err != nil {
			fatal(fmt.Errorf("statsc: -runtime %q: %w", s, err))
		}
		cfg.Runtime[dep] = ro
	}

	baseline := 0
	for name, f := range mod.Functions {
		if !strings.Contains(name, "$aux$") {
			baseline += len(f.Instrs)
		}
	}
	prog, err := backend.Compile(mod, cfg, baseline)
	if err != nil {
		fatal(err)
	}
	if err := prog.Validate(); err != nil {
		fatal(err)
	}
	printProgram(prog)
}

func readInput(path string) (string, error) {
	if path == "" {
		return "", fmt.Errorf("statsc: -in is required")
	}
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func parseRuntime(s string) (backend.RuntimeOptions, error) {
	var ro backend.RuntimeOptions
	for _, part := range strings.Split(s, ",") {
		if part == "aux" {
			ro.UseAux = true
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return ro, fmt.Errorf("malformed option %q", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return ro, err
		}
		switch k {
		case "group":
			ro.GroupSize = n
		case "window":
			ro.Window = n
		case "redo":
			ro.RedoMax = n
		case "rollback":
			ro.Rollback = n
		default:
			return ro, fmt.Errorf("unknown option %q", k)
		}
	}
	return ro, nil
}

func printIR(mod *ir.Module) {
	fmt.Printf("functions: %d, instructions: %d\n", len(mod.Functions), mod.InstrCount())
	var names []string
	for n := range mod.Functions {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := mod.Functions[n]
		fmt.Printf("  func %-40s %4d instrs", n, len(f.Instrs))
		if refs := f.TradeoffRefs(); len(refs) > 0 {
			fmt.Printf("  tradeoffs: %s", strings.Join(refs, ", "))
		}
		if callees := f.Callees(); len(callees) > 0 {
			fmt.Printf("  calls: %s", strings.Join(callees, ", "))
		}
		fmt.Println()
	}
	fmt.Printf("tradeoffs (auxiliary clones only survive the middle-end):\n")
	for _, t := range mod.Tradeoffs {
		fmt.Printf("  %-45s size %2d default %d cloned-from %s\n", t.Name, t.Size, t.Default, t.ClonedFrom)
	}
	fmt.Printf("state dependences:\n")
	for _, d := range mod.Deps {
		fmt.Printf("  %-12s compute %-14s aux %-28s compare %q\n", d.Name, d.Compute, d.AuxCompute, d.Compare)
	}
}

func printProgram(p *backend.Program) {
	fmt.Printf("binary: %d functions, %d instructions (size increase %.0f%%)\n",
		len(p.Module.Functions), p.Module.InstrCount(), 100*p.SizeIncrease)
	printSorted := func(title string, m map[string]string) {
		if len(m) == 0 {
			return
		}
		fmt.Println(title)
		var keys []string
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-45s -> %s\n", k, m[k])
		}
	}
	consts := map[string]string{}
	for k, v := range p.Constants {
		consts[k] = strconv.FormatInt(v, 10)
	}
	printSorted("resolved constants:", consts)
	printSorted("re-typed variables:", p.TypeBindings)
	printSorted("resolved callees:", p.Callees)
	fmt.Println("specialized runtime:")
	var deps []string
	for d := range p.Runtime {
		deps = append(deps, d)
	}
	sort.Strings(deps)
	for _, d := range deps {
		ro := p.Runtime[d]
		fmt.Printf("  %-12s aux=%v group=%d window=%d redo=%d rollback=%d\n",
			d, ro.UseAux, ro.GroupSize, ro.Window, ro.RedoMax, ro.Rollback)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
