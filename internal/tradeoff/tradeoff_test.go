package tradeoff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntRange(t *testing.T) {
	r := IntRange{Lo: 1, Hi: 10, Default: 4}
	if r.MaxIndex() != 10 {
		t.Fatalf("MaxIndex: %d", r.MaxIndex())
	}
	if r.Value(0).(int64) != 1 || r.Value(9).(int64) != 10 {
		t.Fatal("Value endpoints")
	}
	if r.DefaultIndex() != 4 {
		t.Fatal("DefaultIndex")
	}
}

func TestIntRangePanicsOutOfRange(t *testing.T) {
	r := IntRange{Lo: 0, Hi: 3}
	for _, i := range []int64{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Value(%d) did not panic", i)
				}
			}()
			r.Value(i)
		}()
	}
}

func TestEnum(t *testing.T) {
	e := Enum{Values: []any{"a", "b", "c"}, Default: 1}
	if e.MaxIndex() != 3 {
		t.Fatal("MaxIndex")
	}
	if e.Value(2).(string) != "c" {
		t.Fatal("Value")
	}
	if e.DefaultIndex() != 1 {
		t.Fatal("DefaultIndex")
	}
}

func TestNewValidates(t *testing.T) {
	cases := []Options{
		nil,
		Enum{},                              // no values
		Enum{Values: []any{1}, Default: 1},  // default out of range
		IntRange{Lo: 5, Hi: 4},              // empty range
		IntRange{Lo: 0, Hi: 2, Default: -1}, // negative default
	}
	for i, opts := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: New did not panic", i)
				}
			}()
			New("bad", Constant, opts)
		}()
	}
}

func TestDefaultAndClone(t *testing.T) {
	tr := New("AnnealingLayers", Constant, IntRange{Lo: 1, Hi: 10, Default: 4})
	if tr.Default().(int64) != 5 {
		t.Fatalf("Default: %v", tr.Default())
	}
	c := tr.Clone("AnnealingLayers$aux")
	if c.Name != "AnnealingLayers$aux" || c.Kind != Constant {
		t.Fatal("Clone metadata")
	}
	if c.Default().(int64) != tr.Default().(int64) {
		t.Fatal("Clone options should be shared")
	}
}

func TestKindString(t *testing.T) {
	if Constant.String() != "constant" || Type.String() != "type" || Function.String() != "function" {
		t.Fatal("Kind strings")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string")
	}
}

func TestPrecisionEnum(t *testing.T) {
	e := PrecisionEnum()
	if e.MaxIndex() != 3 {
		t.Fatal("precision count")
	}
	if e.Value(e.DefaultIndex()).(Precision) != Double {
		t.Fatal("default precision should be double")
	}
}

func TestPrecisionCostMonotone(t *testing.T) {
	if !(Half.CostFactor() < Single.CostFactor() && Single.CostFactor() < Double.CostFactor()) {
		t.Fatal("cost factors must be monotone in precision")
	}
}

func TestPrecisionQuantize(t *testing.T) {
	if Double.Quantize(math.Pi) != math.Pi {
		t.Fatal("double must be exact")
	}
	if got := Single.Quantize(math.Pi); got == math.Pi || math.Abs(got-math.Pi) > 1e-6 {
		t.Fatalf("single quantization: %v", got)
	}
	if got := Half.Quantize(math.Pi); math.Abs(got-math.Pi) > 1.0/256 {
		t.Fatalf("half quantization too coarse: %v", got)
	}
}

func TestQuantizeErrorOrderedProperty(t *testing.T) {
	f := func(v int16) bool {
		x := float64(v) / 100
		eh := math.Abs(Half.Quantize(x) - x)
		es := math.Abs(Single.Quantize(x) - x)
		ed := math.Abs(Double.Quantize(x) - x)
		return ed == 0 && es <= eh+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionString(t *testing.T) {
	if Half.String() != "half" || Single.String() != "single" || Double.String() != "double" {
		t.Fatal("precision strings")
	}
	if Precision(7).String() != "Precision(7)" {
		t.Fatal("unknown precision string")
	}
}
