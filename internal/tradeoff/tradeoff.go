// Package tradeoff implements the paper's Tradeoff Interface (TI, §3.3): a
// tradeoff is "a piece of program text (constant, data type, function) whose
// value is chosen from a range supplied by developers", sorted by index.
//
// A tradeoff exposes exactly the three methods of Figure 10:
//
//	getMaxIndex()      -> MaxIndex
//	getValue(i)        -> Value
//	getDefaultIndex()  -> DefaultIndex
//
// The middle-end clones tradeoffs into auxiliary code so their indices can
// be set independently from the rest of the program; the back-end resolves
// an index to a value and substitutes it (constant replacement, variable
// re-typing, or callee replacement) according to the tradeoff's kind.
package tradeoff

import "fmt"

// Kind classifies what program text a tradeoff stands for, which determines
// how the back-end substitutes a chosen value (§3.4, "Setting a tradeoff").
type Kind int

const (
	// Constant tradeoffs replace a placeholder call with a constant value
	// (e.g. bodytrack's number of annealing layers).
	Constant Kind = iota
	// Type tradeoffs change the declared type — in this reproduction, the
	// arithmetic precision — of a variable (e.g. float vs double).
	Type
	// Function tradeoffs replace a placeholder callee with a specific
	// implementation (e.g. one of several sqrt versions).
	Function
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Constant:
		return "constant"
	case Type:
		return "type"
	case Function:
		return "function"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options enumerates the legal values of a tradeoff, mirroring the
// Tradeoff_options class of Figure 10.
type Options interface {
	// MaxIndex returns the number of possible values.
	MaxIndex() int64
	// Value returns the i-th possible value; i must be in [0, MaxIndex).
	Value(i int64) any
	// DefaultIndex returns the index used when the tradeoff appears
	// outside auxiliary code.
	DefaultIndex() int64
}

// T is a named tradeoff: a kind plus its options. The paper's baseline
// ("original version") is obtained by pinning every tradeoff to its default
// index and satisfying all state dependences conventionally.
type T struct {
	Name string
	Kind Kind
	Opts Options
}

// New returns a tradeoff with the given name, kind, and options. It panics
// if the options are malformed (no values, or default out of range), since
// a tradeoff is developer-supplied program text and a bad one is a bug.
func New(name string, kind Kind, opts Options) T {
	if opts == nil || opts.MaxIndex() <= 0 {
		panic("tradeoff: options must enumerate at least one value")
	}
	if d := opts.DefaultIndex(); d < 0 || d >= opts.MaxIndex() {
		panic(fmt.Sprintf("tradeoff %s: default index %d out of [0,%d)", name, d, opts.MaxIndex()))
	}
	return T{Name: name, Kind: kind, Opts: opts}
}

// Default returns the value at the default index.
func (t T) Default() any { return t.Opts.Value(t.Opts.DefaultIndex()) }

// Clone returns a copy of the tradeoff under a new name. The middle-end
// uses this to give auxiliary code private tradeoff copies (§3.4,
// "Generating IR with auxiliary code").
func (t T) Clone(name string) T { return T{Name: name, Kind: t.Kind, Opts: t.Opts} }

// IntRange is an Options over the integers lo..hi (inclusive), with a
// configurable default. It covers constant tradeoffs like annealing-layer
// or particle counts.
type IntRange struct {
	Lo, Hi  int64
	Default int64 // an index into the range, not a value
}

// MaxIndex implements Options.
func (r IntRange) MaxIndex() int64 { return r.Hi - r.Lo + 1 }

// Value implements Options.
func (r IntRange) Value(i int64) any {
	if i < 0 || i >= r.MaxIndex() {
		panic(fmt.Sprintf("tradeoff: index %d out of [0,%d)", i, r.MaxIndex()))
	}
	return r.Lo + i
}

// DefaultIndex implements Options.
func (r IntRange) DefaultIndex() int64 { return r.Default }

// Enum is an Options over an explicit value list. It covers type tradeoffs
// (precision names) and function tradeoffs (implementation names).
type Enum struct {
	Values  []any
	Default int64
}

// MaxIndex implements Options.
func (e Enum) MaxIndex() int64 { return int64(len(e.Values)) }

// Value implements Options.
func (e Enum) Value(i int64) any {
	if i < 0 || i >= e.MaxIndex() {
		panic(fmt.Sprintf("tradeoff: index %d out of [0,%d)", i, e.MaxIndex()))
	}
	return e.Values[i]
}

// DefaultIndex implements Options.
func (e Enum) DefaultIndex() int64 { return e.Default }

// Precision is the value domain of Type tradeoffs in this reproduction: the
// paper re-types variables between float and double; we model the same
// quality/cost effect as a quantization level applied by the workload.
type Precision int

const (
	// Half quantizes intermediate values aggressively (cheapest, least
	// accurate).
	Half Precision = iota
	// Single behaves like IEEE float32.
	Single
	// Double is full float64 arithmetic (the default in the originals).
	Double
)

// String returns the precision's name.
func (p Precision) String() string {
	switch p {
	case Half:
		return "half"
	case Single:
		return "single"
	case Double:
		return "double"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// PrecisionEnum returns the standard Type-tradeoff options (half, single,
// double) with double as the default, matching the originals' behaviour.
func PrecisionEnum() Enum {
	return Enum{Values: []any{Half, Single, Double}, Default: 2}
}

// CostFactor returns the relative compute cost of arithmetic at this
// precision, used by the workloads' cost models: lower precision is cheaper.
func (p Precision) CostFactor() float64 {
	switch p {
	case Half:
		return 0.55
	case Single:
		return 0.75
	default:
		return 1.0
	}
}

// Quantize rounds x to the precision's granularity, modeling the accuracy
// loss of narrower types.
func (p Precision) Quantize(x float64) float64 {
	switch p {
	case Half:
		return float64(int64(x*256)) / 256
	case Single:
		return float64(float32(x))
	default:
		return x
	}
}
