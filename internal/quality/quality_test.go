package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestRelativeMSE(t *testing.T) {
	if got := RelativeMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("identical vectors: %v", got)
	}
	// err = (1)^2 = 1, ref = 1^2+2^2 = 5.
	if got := RelativeMSE([]float64{1, 3}, []float64{1, 2}); got != 0.2 {
		t.Fatalf("RelativeMSE: %v", got)
	}
	if got := RelativeMSE(nil, nil); got != 0 {
		t.Fatalf("empty: %v", got)
	}
	if got := RelativeMSE([]float64{1}, []float64{0}); !math.IsInf(got, 1) {
		t.Fatalf("zero reference with error should be +Inf: %v", got)
	}
	if got := RelativeMSE([]float64{0}, []float64{0}); got != 0 {
		t.Fatalf("zero reference, zero error: %v", got)
	}
}

func TestRelativeMSENonNegativeProperty(t *testing.T) {
	f := func(a, b []int8) bool {
		ga := make([]float64, len(a))
		gb := make([]float64, len(b))
		for i, v := range a {
			ga[i] = float64(v)
		}
		for i, v := range b {
			gb[i] = float64(v)
		}
		return RelativeMSE(ga, gb) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvgRelativePriceDiff(t *testing.T) {
	if got := AvgRelativePriceDiff([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("identical prices: %v", got)
	}
	// |1.1-1|/1 = 0.1 ; |3-2|/2 = 0.5 ; avg = 0.3
	got := AvgRelativePriceDiff([]float64{1.1, 3}, []float64{1, 2})
	if math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("AvgRelativePriceDiff: %v", got)
	}
	// Zero reference falls back to absolute difference.
	if got := AvgRelativePriceDiff([]float64{0.5}, []float64{0}); got != 0.5 {
		t.Fatalf("zero ref: %v", got)
	}
	if AvgRelativePriceDiff(nil, nil) != 0 {
		t.Fatal("empty prices")
	}
}

func TestAvgFaceBoxDistance(t *testing.T) {
	a := FaceBox{Corners: [4]mathx.Vec2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}}
	b := FaceBox{Corners: [4]mathx.Vec2{{X: 3, Y: 4}, {X: 4, Y: 4}, {X: 3, Y: 5}, {X: 4, Y: 5}}}
	// Every corner moved by (3,4): distance 5.
	if got := AvgFaceBoxDistance([]FaceBox{a}, []FaceBox{b}); got != 5 {
		t.Fatalf("AvgFaceBoxDistance: %v", got)
	}
	if got := AvgFaceBoxDistance([]FaceBox{a}, []FaceBox{a}); got != 0 {
		t.Fatalf("identical boxes: %v", got)
	}
	if AvgFaceBoxDistance(nil, nil) != 0 {
		t.Fatal("empty boxes")
	}
}

func TestDaviesBouldinSeparatedVsOverlapping(t *testing.T) {
	// Two well-separated, tight clusters -> low DB.
	tight := Clustering{
		Points: [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}},
		Assign: []int{0, 0, 1, 1},
	}
	// Two overlapping, spread clusters -> higher DB.
	loose := Clustering{
		Points: [][]float64{{0, 0}, {6, 6}, {4, 4}, {10, 10}},
		Assign: []int{0, 0, 1, 1},
	}
	dbTight, dbLoose := DaviesBouldin(tight), DaviesBouldin(loose)
	if dbTight >= dbLoose {
		t.Fatalf("tight %v should beat loose %v", dbTight, dbLoose)
	}
	if dbTight < 0 || dbLoose < 0 {
		t.Fatal("DB must be non-negative")
	}
}

func TestDaviesBouldinDegenerate(t *testing.T) {
	if got := DaviesBouldin(Clustering{}); got != 0 {
		t.Fatalf("empty clustering: %v", got)
	}
	single := Clustering{Points: [][]float64{{1}, {2}}, Assign: []int{0, 0}}
	if got := DaviesBouldin(single); got != 0 {
		t.Fatalf("single cluster: %v", got)
	}
}

func TestDaviesBouldinDiffSymmetric(t *testing.T) {
	a := Clustering{Points: [][]float64{{0}, {1}, {5}, {6}}, Assign: []int{0, 0, 1, 1}}
	b := Clustering{Points: [][]float64{{0}, {1}, {5}, {6}}, Assign: []int{0, 1, 0, 1}}
	if DaviesBouldinDiff(a, b) != DaviesBouldinDiff(b, a) {
		t.Fatal("DaviesBouldinDiff not symmetric")
	}
	if DaviesBouldinDiff(a, a) != 0 {
		t.Fatal("self-diff should be zero")
	}
}

func TestBCubedPerfect(t *testing.T) {
	gold := []int{0, 0, 1, 1, 2}
	if got := BCubed(gold, gold); got != 1 {
		t.Fatalf("perfect B3: %v", got)
	}
	if got := BCubedDiff(gold, gold); got != 0 {
		t.Fatalf("perfect diff: %v", got)
	}
	// Relabeled but identical partition is still perfect.
	relabel := []int{7, 7, 3, 3, 9}
	if got := BCubed(relabel, gold); got != 1 {
		t.Fatalf("relabeling should not matter: %v", got)
	}
}

func TestBCubedDegraded(t *testing.T) {
	gold := []int{0, 0, 0, 1, 1, 1}
	allOne := []int{0, 0, 0, 0, 0, 0}
	allSingle := []int{0, 1, 2, 3, 4, 5}
	f1 := BCubed(allOne, gold)
	f2 := BCubed(allSingle, gold)
	if f1 >= 1 || f2 >= 1 {
		t.Fatalf("degraded clusterings should score < 1: %v %v", f1, f2)
	}
	if f1 <= 0 || f2 <= 0 {
		t.Fatalf("scores should stay positive: %v %v", f1, f2)
	}
}

func TestBCubedEmpty(t *testing.T) {
	if got := BCubed(nil, nil); got != 1 {
		t.Fatalf("empty B3 should be 1 (vacuously perfect): %v", got)
	}
}

func TestBCubedRangeProperty(t *testing.T) {
	f := func(pred, gold []uint8) bool {
		n := len(pred)
		if len(gold) < n {
			n = len(gold)
		}
		if n == 0 {
			return true
		}
		p := make([]int, n)
		g := make([]int, n)
		for i := 0; i < n; i++ {
			p[i] = int(pred[i]) % 4
			g[i] = int(gold[i]) % 4
		}
		v := BCubed(p, g)
		return v >= 0 && v <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
