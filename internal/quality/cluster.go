package quality

import (
	"math"
	"sort"
)

// Clustering is an assignment of points to clusters: Assign[i] is the
// cluster id of point i, and Points[i] is the point itself (any
// dimensionality, but all points must share one).
type Clustering struct {
	Points [][]float64
	Assign []int
}

func euclid(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// DaviesBouldin returns the Davies-Bouldin index of the clustering: the
// average, over clusters, of the worst-case ratio of intra-cluster scatter
// to inter-centroid separation. Lower is better. Singleton and empty
// clusterings return 0. It is the streamcluster metric (via the difference
// of two indices, see DaviesBouldinDiff).
func DaviesBouldin(c Clustering) float64 {
	ids := map[int][]int{}
	for i, a := range c.Assign {
		ids[a] = append(ids[a], i)
	}
	if len(ids) < 2 {
		return 0
	}
	// Centroids and scatters, visiting clusters in sorted-id order so the
	// floating-point accumulation (and hence the index) is deterministic.
	order := make([]int, 0, len(ids))
	for id := range ids {
		order = append(order, id)
	}
	sort.Ints(order)
	type cluster struct {
		centroid []float64
		scatter  float64
	}
	var clusters []cluster
	for _, id := range order {
		members := ids[id]
		dim := len(c.Points[members[0]])
		centroid := make([]float64, dim)
		for _, m := range members {
			for d := 0; d < dim; d++ {
				centroid[d] += c.Points[m][d]
			}
		}
		for d := range centroid {
			centroid[d] /= float64(len(members))
		}
		scatter := 0.0
		for _, m := range members {
			scatter += euclid(c.Points[m], centroid)
		}
		scatter /= float64(len(members))
		clusters = append(clusters, cluster{centroid, scatter})
	}
	// DB index.
	sum := 0.0
	for i := range clusters {
		worst := 0.0
		for j := range clusters {
			if i == j {
				continue
			}
			sep := euclid(clusters[i].centroid, clusters[j].centroid)
			if sep == 0 {
				continue
			}
			r := (clusters[i].scatter + clusters[j].scatter) / sep
			if r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(len(clusters))
}

// DaviesBouldinDiff returns |DB(got) - DB(want)|, the streamcluster output
// metric.
func DaviesBouldinDiff(got, want Clustering) float64 {
	return math.Abs(DaviesBouldin(got) - DaviesBouldin(want))
}

// BCubed returns the B³ F-score of a predicted assignment against a gold
// assignment over the same points: the harmonic mean of B³ precision and
// recall, each averaged per element. 1 means a perfect match. It is the
// streamclassifier metric (via BCubedDiff).
func BCubed(pred, gold []int) float64 {
	n := len(pred)
	if len(gold) < n {
		n = len(gold)
	}
	if n == 0 {
		return 1
	}
	var precSum, recSum float64
	for i := 0; i < n; i++ {
		var samePred, sameGold, sameBoth float64
		for j := 0; j < n; j++ {
			p := pred[i] == pred[j]
			g := gold[i] == gold[j]
			if p {
				samePred++
			}
			if g {
				sameGold++
			}
			if p && g {
				sameBoth++
			}
		}
		precSum += sameBoth / samePred
		recSum += sameBoth / sameGold
	}
	prec := precSum / float64(n)
	rec := recSum / float64(n)
	if prec+rec == 0 {
		return 0
	}
	return 2 * prec * rec / (prec + rec)
}

// BCubedDiff returns 1 - B³(pred vs gold): 0 for a perfect classification,
// growing with disagreement. The streamclassifier output metric.
func BCubedDiff(pred, gold []int) float64 {
	return 1 - BCubed(pred, gold)
}
