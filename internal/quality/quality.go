// Package quality implements the domain-specific output-quality metrics of
// §4.2 ("Output quality"). Each benchmark's output variability and quality
// are measured against an oracle with its own well-known metric:
//
//   - bodytrack: relative mean square error of the body-part vectors
//   - fluidanimate: average Euclidean distance between particle positions
//   - streamcluster: difference of Davies-Bouldin indices of the clusterings
//   - streamclassifier: difference in B³ metrics
//   - swaptions: average relative difference between the generated prices
//   - facedet: average Euclidean distance between the detected face boxes
//
// All metrics are oriented so that 0 means "identical to the oracle" and
// larger values mean worse output.
package quality

import (
	"math"

	"repro/internal/mathx"
)

// RelativeMSE returns the mean square error of got relative to want,
// normalized by the mean square of want. It is the bodytrack metric.
// Vectors are compared over their common prefix; two empty vectors have
// zero error.
func RelativeMSE(got, want []float64) float64 {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	if n == 0 {
		return 0
	}
	var errSum, refSum float64
	for i := 0; i < n; i++ {
		d := got[i] - want[i]
		errSum += d * d
		refSum += want[i] * want[i]
	}
	if refSum == 0 {
		if errSum == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return errSum / refSum
}

// AvgParticleDistance returns the average Euclidean distance between
// corresponding particle positions. It is the fluidanimate metric.
func AvgParticleDistance(got, want []mathx.Vec3) float64 {
	return mathx.AvgEuclidean3(got, want)
}

// AvgRelativePriceDiff returns the average relative difference between two
// price vectors. It is the swaptions metric. Prices of zero in the reference
// contribute the absolute difference instead, to stay finite.
func AvgRelativePriceDiff(got, want []float64) float64 {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := math.Abs(got[i] - want[i])
		if want[i] != 0 {
			d /= math.Abs(want[i])
		}
		sum += d
	}
	return sum / float64(n)
}

// FaceBox is an axis-aligned box around a detected face, identified by its
// four corner points in frame coordinates.
type FaceBox struct {
	Corners [4]mathx.Vec2
}

// AvgFaceBoxDistance returns the average Euclidean distance of the four
// corner points between corresponding face boxes. It is the facedet metric.
func AvgFaceBoxDistance(got, want []FaceBox) float64 {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for c := 0; c < 4; c++ {
			sum += got[i].Corners[c].Dist(want[i].Corners[c])
		}
	}
	return sum / float64(4*n)
}
