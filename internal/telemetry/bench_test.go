package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// BenchmarkMetricsScrapeUnderLoad measures a /metrics scrape while
// background goroutines (one per available CPU, yielding each iteration
// so a single-core machine still makes scrape progress) hammer the
// registry and tracer at full rate — the scrape-under-load number
// BENCH_pr4.json records.
func BenchmarkMetricsScrapeUnderLoad(b *testing.B) {
	o := obs.NewObserver(8, 1<<12)
	s := NewServer(Config{Observer: o})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	var stop atomic.Bool
	loaders := runtime.GOMAXPROCS(0)
	for i := 0; i < loaders; i++ {
		lane := i % 8
		go func() {
			for !stop.Load() {
				o.Matches.Inc()
				o.ValidationLatencyNS.Observe(int64(lane)*100 + 40)
				o.Tracer.Emit(lane, obs.EvValidateMatch, int32(lane), 1)
				runtime.Gosched()
			}
		}()
	}
	defer stop.Store(true)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		b.SetBytes(n)
	}
}

// BenchmarkEmitWithSSEClient measures Tracer.Emit while an SSE client
// streams /events — the acceptance bound that an attached scraper never
// blocks the engine's hot path.
func BenchmarkEmitWithSSEClient(b *testing.B) {
	o := obs.NewObserver(2, 1<<12)
	s := NewServer(Config{Observer: o, SSEInterval: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	go io.Copy(io.Discard, resp.Body)

	tr := o.Tracer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, obs.EvValidateMatch, int32(i), 1)
	}
}

// BenchmarkEmitDisabledObserver re-measures the nil-observer fast path in
// this package's context: the ≤5ns budget the telemetry layer must not
// disturb.
func BenchmarkEmitDisabledObserver(b *testing.B) {
	var tr *obs.Tracer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, obs.EvValidateMatch, int32(i), 1)
	}
}

// BenchmarkSpanFolderWarm measures the always-on profiler's steady
// state: the folder already holds a full ring's worth of groups, and
// each iteration folds one new group's events and rereads the document.
// This is the warm /spans path; its allocs/op must stay O(new events),
// not O(ring) like the one-shot BuildSpans above — the BENCH_budget.json
// ceiling enforces the gap (the budget is 10% of the BuildSpans
// baseline's 27036 allocs/op).
func BenchmarkSpanFolderWarm(b *testing.B) {
	o := obs.NewObserver(4, 1<<12)
	f := NewSpanFolder(o.Tracer)
	for g := int32(0); g < 1<<12; g++ {
		lane := int(g) % 4
		o.Tracer.Emit(lane, obs.EvGroupStart, g, 0)
		o.Tracer.Emit(lane, obs.EvGroupFinish, g, 8)
		o.Tracer.Emit(0, obs.EvValidateMatch, g, 0)
	}
	f.Doc() // warm: fold the backlog once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := int32(1<<12 + i)
		lane := int(g) % 4
		o.Tracer.Emit(lane, obs.EvGroupStart, g, 0)
		o.Tracer.Emit(lane, obs.EvGroupFinish, g, 8)
		o.Tracer.Emit(0, obs.EvValidateMatch, g, 0)
		f.Doc()
	}
}

// BenchmarkSignalsReport measures one windowed report against a live
// observer — the /signals and gauge-sampling hot path. Like the warm
// folder it carries an allocs/op ceiling in BENCH_budget.json.
func BenchmarkSignalsReport(b *testing.B) {
	o := obs.NewObserver(4, 1<<12)
	sig := NewSignals(o, SignalsConfig{Window: 5 * time.Second})
	sig.Report()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Matches.Inc()
		o.ValidationLatencyNS.Observe(int64(i)&1023 + 1)
		sig.Report()
	}
}

// BenchmarkBuildSpans measures span reconstruction over a full ring.
func BenchmarkBuildSpans(b *testing.B) {
	o := obs.NewObserver(4, 1<<12)
	for g := int32(0); g < 1<<12; g++ {
		lane := int(g) % 4
		o.Tracer.Emit(lane, obs.EvGroupStart, g, 0)
		o.Tracer.Emit(lane, obs.EvGroupFinish, g, 8)
		o.Tracer.Emit(0, obs.EvValidateMatch, g, 0)
	}
	snap := o.Tracer.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildSpans(snap)
	}
}
