// Package telemetry is the serving surface of the observability layer: an
// embeddable HTTP server exposing the runtime's metrics registry
// (Prometheus text exposition), a windowed health model over the
// speculation counters, a live event stream (SSE), on-demand Chrome-trace
// dumps, and a causal span model reconstructed from the speculation event
// log.
//
// The span model turns internal/obs's flat, per-lane event rings into the
// structure the paper's evaluation reasons about: one span tree per
// speculation group, connecting the group's auxiliary-state production to
// its execution, its boundary validation (with every redo), and its abort,
// squash or fallback outcome. Reconstruction is tolerant of the tracer's
// bounded rings: a group whose records were partially overwritten is
// flagged partial, never fabricated.
//
// Everything here reads the tracer and registry through their lock-free
// snapshot paths, so a live scrape or an attached stream client never
// blocks Tracer.Emit — the engine's hot path stays hot while the system
// is observed.
package telemetry

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// Span kinds, the node types of a group's span tree.
const (
	// SpanGroup is a tree root: one speculation group's whole lifecycle.
	SpanGroup = "group"
	// SpanExec is the group's execution on a worker (EvGroupStart →
	// EvGroupFinish).
	SpanExec = "exec"
	// SpanAux is the auxiliary-code production of the group's
	// speculative start state (instant; Arg is the window consumed).
	SpanAux = "aux"
	// SpanValidate is the group boundary's resolution: from the first
	// rejection (or the acceptance itself) to the final match or abort.
	// Its children are the redo spans the resolution consumed.
	SpanValidate = "validate"
	// SpanRedo is one original-producer re-execution (instant; Arg is
	// the attempt number).
	SpanRedo = "redo"
	// SpanSquash marks the group's in-flight work being squashed by an
	// abort (instant; Arg is the number of inputs discarded).
	SpanSquash = "squash"
	// SpanFallback marks the sequential fallback starting at this group
	// after an abort (instant; Arg is the number of inputs reprocessed).
	SpanFallback = "fallback"
)

// Group outcomes, derived from the terminal event observed for the group.
const (
	// OutcomeValidated: the group's speculative start state was accepted.
	OutcomeValidated = "validated"
	// OutcomeAborted: the group's boundary exhausted its redo budget.
	OutcomeAborted = "aborted"
	// OutcomeSquashed: the group was squashed by an earlier abort.
	OutcomeSquashed = "squashed"
	// OutcomeUnvalidated: no validation event was observed — group 0
	// (which never speculates), a run still in flight, or a log whose
	// validation records were evicted.
	OutcomeUnvalidated = "unvalidated"
)

// Span is one node of a group's reconstructed span tree. Timestamps are
// nanoseconds since the tracer's epoch, as recorded in the event log.
type Span struct {
	// Kind is the node type (SpanGroup, SpanExec, ...).
	Kind string `json:"kind"`
	// Group is the speculation group the span concerns.
	Group int32 `json:"group"`
	// StartNS and EndNS bound the span; instants have StartNS == EndNS.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// DurNS is EndNS - StartNS, precomputed for consumers.
	DurNS int64 `json:"dur_ns"`
	// Outcome annotates group roots (OutcomeValidated, ...) and validate
	// spans ("match", "match-after-redo", "abort", "unresolved").
	Outcome string `json:"outcome,omitempty"`
	// Arg is the kind-specific argument of the underlying event (outputs
	// produced, window consumed, redo attempt, inputs squashed).
	Arg int64 `json:"arg,omitempty"`
	// Redos is the number of re-executions a validate span consumed.
	Redos int `json:"redos,omitempty"`
	// Partial marks a span whose bounding events were partially evicted
	// by the tracer's bounded rings: its timestamps cover only what was
	// observed, nothing is fabricated.
	Partial bool `json:"partial,omitempty"`
	// CPUCommittedNS and CPUWastedNS carry a group root's wasted-work
	// attribution — lane CPU nanoseconds whose results were committed vs
	// discarded (EvLaneCPUCommitted/EvLaneCPUWasted) — zero on logs that
	// predate attribution or groups that burned none.
	CPUCommittedNS int64 `json:"cpu_committed_ns,omitempty"`
	CPUWastedNS    int64 `json:"cpu_wasted_ns,omitempty"`
	// Children are the span's sub-spans, in start order.
	Children []*Span `json:"children,omitempty"`
}

// SpanDoc is the reconstructed span forest for one event-log snapshot —
// the payload of the server's /spans endpoint.
type SpanDoc struct {
	// Events is the number of events the reconstruction consumed
	// (engine events; scheduler dispatch events are counted separately).
	Events int `json:"events"`
	// SchedulerEvents is the number of steal/local-hit/task-finish
	// events in the snapshot, which the span model does not consume.
	SchedulerEvents int `json:"scheduler_events"`
	// Emitted and Dropped are the tracer's lifetime totals at snapshot
	// time; Dropped > 0 explains Partial spans.
	Emitted int64 `json:"emitted"`
	Dropped int64 `json:"dropped"`
	// PartialGroups counts group roots flagged Partial.
	PartialGroups int `json:"partial_groups"`
	// Groups are the span trees, ordered by group index.
	Groups []*Span `json:"groups"`
}

// BuildSpans folds a tracer snapshot into per-group span trees. The input
// may be unordered; scheduler lane events are ignored (they belong to the
// flat /events and /trace views). Equal inputs yield identical output.
//
// BuildSpans is the one-shot form of SpanFolder (folder.go): it folds the
// whole snapshot as a single batch with generation splitting off, so a
// group id keeps one accumulator for the whole log, exactly as the
// original whole-snapshot fold did. Long-lived consumers (the telemetry
// server's /spans) hold a SpanFolder instead and pay only for new events.
func BuildSpans(events []obs.Event) *SpanDoc {
	sorted := make([]obs.Event, len(events))
	copy(sorted, events)
	f := &SpanFolder{live: map[int32]*spanAcc{}, docDirty: true}
	f.foldBatchLocked(sorted)
	return f.Doc()
}

// RenderSpans writes the span forest as an indented text tree — the view
// statstrace presents for a live run or a /spans JSON document.
func RenderSpans(w io.Writer, doc *SpanDoc) {
	fmt.Fprintf(w, "spans: %d groups (%d partial), %d engine events, %d scheduler events",
		len(doc.Groups), doc.PartialGroups, doc.Events, doc.SchedulerEvents)
	if doc.Dropped > 0 {
		fmt.Fprintf(w, ", %d/%d events dropped by the bounded rings", doc.Dropped, doc.Emitted)
	}
	fmt.Fprintln(w)
	for _, g := range doc.Groups {
		renderSpan(w, g, 0)
	}
}

// renderSpan writes one span node and recurses into its children.
func renderSpan(w io.Writer, s *Span, depth int) {
	indent := strings.Repeat("  ", depth)
	switch s.Kind {
	case SpanGroup:
		cpu := ""
		if s.CPUCommittedNS > 0 || s.CPUWastedNS > 0 {
			cpu = fmt.Sprintf(" cpu committed=%s wasted=%s",
				fmtNS(s.CPUCommittedNS), fmtNS(s.CPUWastedNS))
		}
		fmt.Fprintf(w, "%sg%03d [t+%s %s] %s%s%s\n", indent, s.Group,
			fmtNS(s.StartNS), fmtNS(s.DurNS), s.Outcome, cpu, partialMark(s))
	case SpanExec:
		fmt.Fprintf(w, "%sexec     %s outputs=%d%s\n", indent, fmtNS(s.DurNS), s.Arg, partialMark(s))
	case SpanAux:
		fmt.Fprintf(w, "%saux      @t+%s window=%d\n", indent, fmtNS(s.StartNS), s.Arg)
	case SpanValidate:
		fmt.Fprintf(w, "%svalidate %s %s redos=%d%s\n", indent, fmtNS(s.DurNS), s.Outcome, s.Redos, partialMark(s))
	case SpanRedo:
		fmt.Fprintf(w, "%sredo #%d @t+%s\n", indent, s.Arg, fmtNS(s.StartNS))
	case SpanSquash:
		fmt.Fprintf(w, "%ssquash   @t+%s inputs=%d\n", indent, fmtNS(s.StartNS), s.Arg)
	case SpanFallback:
		fmt.Fprintf(w, "%sfallback @t+%s inputs=%d\n", indent, fmtNS(s.StartNS), s.Arg)
	default:
		fmt.Fprintf(w, "%s%s [t+%s %s]%s\n", indent, s.Kind, fmtNS(s.StartNS), fmtNS(s.DurNS), partialMark(s))
	}
	for _, c := range s.Children {
		renderSpan(w, c, depth+1)
	}
}

// partialMark renders the partial flag as a suffix.
func partialMark(s *Span) string {
	if s.Partial {
		return " (partial)"
	}
	return ""
}

// fmtNS renders a nanosecond quantity compactly.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// SpanString renders doc to a string.
func SpanString(doc *SpanDoc) string {
	var b strings.Builder
	RenderSpans(&b, doc)
	return b.String()
}
