package telemetry

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/obs"
)

// foldChunked feeds a time-sorted log through a live folder in sequential
// chunks of the given sizes and returns its document.
func foldChunked(events []obs.Event, sizes []int) *SpanDoc {
	f := NewSpanFolder(nil)
	i := 0
	for _, n := range sizes {
		if i+n > len(events) {
			n = len(events) - i
		}
		chunk := make([]obs.Event, n)
		copy(chunk, events[i:i+n])
		f.FoldBatch(chunk)
		i += n
	}
	if i < len(events) {
		rest := make([]obs.Event, len(events)-i)
		copy(rest, events[i:])
		f.FoldBatch(rest)
	}
	return f.Doc()
}

// TestSpanFolderMatchesBuildSpans: folding the golden log incrementally —
// in chunks of every random size — must produce byte-for-byte the same
// span forest as the one-shot BuildSpans. This is the refactor's core
// contract: /spans served from the live folder is indistinguishable from
// the whole-snapshot rebuild it replaced.
func TestSpanFolderMatchesBuildSpans(t *testing.T) {
	log := goldenLog()
	sort.SliceStable(log, func(i, j int) bool { return log[i].TS < log[j].TS })
	want, _ := json.Marshal(BuildSpans(log).Groups)

	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var sizes []int
		remaining := len(log)
		for remaining > 0 {
			n := 1 + rng.Intn(remaining)
			sizes = append(sizes, n)
			remaining -= n
		}
		doc := foldChunked(log, sizes)
		got, _ := json.Marshal(doc.Groups)
		if string(got) != string(want) {
			t.Fatalf("chunking %v diverged from BuildSpans:\n--- got ---\n%s\n--- want ---\n%s",
				sizes, got, want)
		}
		if doc.Events != 18 || doc.SchedulerEvents != 2 {
			t.Fatalf("chunking %v counted Events=%d SchedulerEvents=%d, want 18/2",
				sizes, doc.Events, doc.SchedulerEvents)
		}
	}
}

// TestSpanFolderGenerationSplit: when a later run reuses a group id, a
// live folder retires the finished generation instead of merging the two
// lifecycles into one corrupt tree (the bug a naive incremental fold
// would have).
func TestSpanFolderGenerationSplit(t *testing.T) {
	f := NewSpanFolder(nil)
	f.FoldBatch([]obs.Event{
		{TS: 100, Lane: 1, Kind: obs.EvGroupStart, Group: 1},
		{TS: 200, Lane: 1, Kind: obs.EvGroupFinish, Group: 1, Arg: 4},
		{TS: 250, Lane: obs.LaneCoord, Kind: obs.EvValidateMatch, Group: 1},
	})
	f.FoldBatch([]obs.Event{
		{TS: 1100, Lane: 1, Kind: obs.EvGroupStart, Group: 1},
		{TS: 1200, Lane: 1, Kind: obs.EvGroupFinish, Group: 1, Arg: 6},
	})
	doc := f.Doc()
	if len(doc.Groups) != 2 {
		t.Fatalf("got %d trees for the reused id, want 2 generations", len(doc.Groups))
	}
	if doc.Groups[0].Outcome != OutcomeValidated || doc.Groups[0].StartNS != 100 {
		t.Errorf("first generation = %+v, want validated starting at 100", doc.Groups[0])
	}
	if doc.Groups[1].Outcome != OutcomeUnvalidated || doc.Groups[1].StartNS != 1100 {
		t.Errorf("second generation = %+v, want unvalidated starting at 1100", doc.Groups[1])
	}
}

// TestSpanFolderBoundedMemory: a folder fed an unbounded stream of
// distinct never-finishing groups must stay bounded — live accumulators
// capped at maxLiveGroups (stalest force-finalized), finished trees
// capped at the completed ring.
func TestSpanFolderBoundedMemory(t *testing.T) {
	f := NewSpanFolder(nil)
	total := maxLiveGroups + 3*completedRingCap
	for g := 0; g < total; g++ {
		f.FoldBatch([]obs.Event{
			{TS: int64(g + 1), Lane: 0, Kind: obs.EvGroupFinish, Group: int32(g), Arg: 1},
		})
	}
	f.mu.Lock()
	nLive, nComp := len(f.live), f.compLen
	f.mu.Unlock()
	if nLive > maxLiveGroups {
		t.Errorf("live accumulators grew to %d, bound is %d", nLive, maxLiveGroups)
	}
	if nComp > completedRingCap {
		t.Errorf("completed ring grew to %d, bound is %d", nComp, completedRingCap)
	}
	doc := f.Doc()
	if len(doc.Groups) > maxLiveGroups+completedRingCap {
		t.Errorf("document carries %d trees, bound is %d",
			len(doc.Groups), maxLiveGroups+completedRingCap)
	}
}

// TestSpanFolderLiveTracer: a folder polling a real tracer across
// interleaved emission sees exactly what a full-snapshot rebuild sees.
func TestSpanFolderLiveTracer(t *testing.T) {
	tr := obs.NewTracer(2, 1<<10)
	f := NewSpanFolder(tr)
	for g := int32(0); g < 8; g++ {
		tr.Emit(int(g%2), obs.EvGroupStart, g, 0)
		if g%3 == 0 {
			f.Poll() // interleave polls with emission
		}
		tr.Emit(int(g%2), obs.EvGroupFinish, g, int64(g))
		tr.Emit(obs.LaneCoord, obs.EvValidateMatch, g, 0)
	}
	got, _ := json.Marshal(f.Doc().Groups)
	want, _ := json.Marshal(BuildSpans(tr.Snapshot()).Groups)
	if string(got) != string(want) {
		t.Errorf("live folder diverged from snapshot rebuild:\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}

// TestSpanFolderWarmAllocs enforces the PR's alloc budget: once the
// folder is warm, serving /spans after a handful of new events must cost
// a fraction of the whole-snapshot rebuild (27036 allocs/op at the PR 4
// baseline; the acceptance bar is 10% of that).
func TestSpanFolderWarmAllocs(t *testing.T) {
	tr := obs.NewTracer(4, 1<<12)
	f := NewSpanFolder(tr)
	for g := int32(0); g < 4096; g++ {
		lane := int(g % 4)
		tr.Emit(lane, obs.EvGroupStart, g, 0)
		tr.Emit(lane, obs.EvGroupFinish, g, 1)
		tr.Emit(obs.LaneCoord, obs.EvValidateMatch, g, 0)
	}
	f.Doc() // warm: the backlog folds once

	g := int32(4096)
	allocs := testing.AllocsPerRun(50, func() {
		lane := int(g % 4)
		tr.Emit(lane, obs.EvGroupStart, g, 0)
		tr.Emit(lane, obs.EvGroupFinish, g, 1)
		tr.Emit(obs.LaneCoord, obs.EvValidateMatch, g, 0)
		f.Doc()
		g++
	})
	if allocs > 2700 {
		t.Errorf("warm Doc costs %.0f allocs/op, budget is 2700 (10%% of the BuildSpans baseline)", allocs)
	}
	t.Logf("warm Doc: %.1f allocs/op", allocs)
}
