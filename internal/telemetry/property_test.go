package telemetry

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
)

// The signals aggregator is supposed to be a faithful windowed view of
// the engine's own accounting: over a window that covers an entire run,
// every raw delta in a SignalsReport must equal the corresponding
// core.Stats field. This file checks that property over randomized
// option vectors for both protocols, with fault injection supplying the
// panics and garbage states that make the unhappy-path counters move.

// propState is a prefix-sum dependence state, exact enough that the
// auxiliary code can be made right or wrong on demand via the window.
type propState struct{ Sum float64 }

func propOps() core.StateOps[propState] {
	return core.StateOps[propState]{
		Clone: func(s propState) propState { return s },
		MatchAny: func(spec propState, originals []propState) bool {
			for _, o := range originals {
				if spec.Sum == o.Sum {
					return true
				}
			}
			return false
		},
	}
}

func propCompute(_ *rng.Source, in int, s propState) (int, propState) {
	s.Sum += float64(in)
	return in*2 + int(s.Sum), s
}

// propAux is exact only when the engine's window covers the whole
// prefix; short windows make it guess wrong, driving mismatches, redos
// and aborts without any injected fault.
func propAux(_ *rng.Source, init propState, recent []int) propState {
	for _, v := range recent {
		init.Sum += float64(v)
	}
	return init
}

func propGarbage(s propState) propState { return propState{Sum: s.Sum - 1e12} }

// TestSignalsReconcileWithEngineStats: for >=200 random option vectors
// under both protocols, an hour-window Signals built on a fresh observer
// reports deltas byte-for-byte equal to the run's core.Stats.
func TestSignalsReconcileWithEngineStats(t *testing.T) {
	r := rng.New(0x51675)
	const cases = 208
	protocols := []core.Protocol{core.ProtocolAux, core.ProtocolReservations}
	sawAbort, sawPanic, sawRounds, sawWaste := false, false, false, false
	for c := 0; c < cases; c++ {
		proto := protocols[c%2]
		n := 1 + r.Intn(48)
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = 1 + r.Intn(9)
		}

		ob := obs.NewObserver(1+r.Intn(6), 1<<13)
		sig := NewSignals(ob, SignalsConfig{Window: time.Hour})
		sig.Report() // baseline sample: the observer is fresh, all zeros

		in := fault.New(fault.Config{
			Seed:         r.Uint64(),
			AuxPanicRate: r.Range(0, 0.2),
			GarbageRate:  r.Range(0, 0.3),
		})
		aux := fault.WrapAux(in, propAux, propGarbage)
		window := n
		if r.Bool(0.4) {
			window = r.Intn(8) // short window: aux guesses wrong
		}
		d := core.New(propCompute, aux, propOps())
		_, _, st := d.Run(inputs, propState{}, core.Options{
			UseAux:    true,
			Protocol:  proto,
			GroupSize: 1 + r.Intn(12),
			Window:    window,
			RedoMax:   r.Intn(3),
			Rollback:  1 + r.Intn(4),
			Workers:   1 + r.Intn(4),
			Seed:      r.Uint64(),
			Obs:       ob,
		})
		rep := sig.Report()
		name := fmt.Sprintf("case %d (proto=%v n=%d window=%d)", c, proto, n, window)

		for _, chk := range []struct {
			what string
			got  int64
			want int64
		}{
			{"validations", rep.Validations, int64(st.Matches + st.Aborts)},
			{"matches", rep.Matches, int64(st.Matches)},
			{"aborts", rep.Aborts, int64(st.Aborts)},
			{"redos", rep.Redos, int64(st.Redos)},
			{"fallback inputs", rep.FallbackInputs, int64(st.FallbackInputs)},
			{"spec-committed inputs", rep.SpecCommittedInputs, int64(st.SpeculativeCommits)},
			{"panicked groups", rep.PanickedGroups, int64(st.PanickedGroups)},
			{"timed-out groups", rep.TimedOutGroups, int64(st.TimedOutGroups)},
			{"breaker-denied runs", rep.BreakerDeniedRuns, int64(st.BreakerDenied)},
			{"reservation rounds", rep.ReservationRounds, int64(st.Rounds)},
			{"steals", rep.Steals, st.Steals},
			{"local hits", rep.LocalHits, st.LocalHits},
			{"committed lane CPU", rep.LaneCPUCommittedNS, st.LaneCPUCommittedNS},
			{"wasted lane CPU", rep.LaneCPUWastedNS, st.LaneCPUWastedNS},
		} {
			if chk.got != chk.want {
				t.Fatalf("%s: windowed %s = %d, engine stats say %d",
					name, chk.what, chk.got, chk.want)
			}
		}

		sawAbort = sawAbort || st.Aborts > 0
		sawPanic = sawPanic || st.PanickedGroups > 0
		sawRounds = sawRounds || st.Rounds > 0
		sawWaste = sawWaste || st.LaneCPUWastedNS > 0
	}
	if !sawAbort || !sawPanic || !sawRounds || !sawWaste {
		t.Fatalf("sample did not exercise all paths: abort=%v panic=%v rounds=%v waste=%v",
			sawAbort, sawPanic, sawRounds, sawWaste)
	}
}
