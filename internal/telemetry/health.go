package telemetry

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// HealthState is the health model's verdict over the sliding window.
type HealthState int

// The three health states: Ok (speculation behaving), Degraded (elevated
// mismatch pressure or any abort activity), Aborting (an abort storm —
// the failure mode where misspeculation clusters and the runtime spends
// its time squashing and falling back).
const (
	HealthOk HealthState = iota
	HealthDegraded
	HealthAborting
)

// String returns the state's wire name.
func (s HealthState) String() string {
	switch s {
	case HealthOk:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthAborting:
		return "aborting"
	}
	return "unknown"
}

// HealthConfig sets the sliding window and the rate thresholds of the
// health model. Zero values pick the defaults noted per field.
type HealthConfig struct {
	// Window is the sliding window rates are computed over (default 5s).
	Window time.Duration
	// MinValidations is the minimum number of boundary resolutions in
	// the window before mismatch/abort rates are judged at all — below
	// it the model will not leave Ok on validation rates (default 1).
	MinValidations int64
	// DegradedMismatchRate is the first-try rejection fraction
	// (mismatches / validations) at which the state degrades
	// (default 0.5).
	DegradedMismatchRate float64
	// DegradedFallbackRate is the fallback input fraction
	// (fallback / (fallback + speculative commits)) at which the state
	// degrades (default 0.05).
	DegradedFallbackRate float64
	// AbortingAbortRate is the aborted-boundary fraction
	// (aborts / validations) at which the state becomes Aborting
	// (default 0.25).
	AbortingAbortRate float64
	// AbortingFallbackRate is the fallback input fraction at which the
	// state becomes Aborting (default 0.5).
	AbortingFallbackRate float64
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.MinValidations <= 0 {
		c.MinValidations = 1
	}
	if c.DegradedMismatchRate <= 0 {
		c.DegradedMismatchRate = 0.5
	}
	if c.DegradedFallbackRate <= 0 {
		c.DegradedFallbackRate = 0.05
	}
	if c.AbortingAbortRate <= 0 {
		c.AbortingAbortRate = 0.25
	}
	if c.AbortingFallbackRate <= 0 {
		c.AbortingFallbackRate = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// healthSample is one counter reading.
type healthSample struct {
	t                           time.Time
	matches, mismatches, aborts int64
	fallback, specCommits       int64
}

// maxHealthSamples bounds the sample ring; beyond it the oldest in-window
// samples are collapsed pairwise (halving resolution, keeping coverage).
const maxHealthSamples = 512

// Health evaluates the speculation counters of an Observer over a sliding
// window into an ok/degraded/aborting verdict. Each Eval call takes a
// fresh counter sample, prunes samples older than the window, and judges
// the deltas between the oldest retained sample and now — so the model
// recovers to Ok once a storm ages out of the window. Eval is cheap
// (atomic counter reads) and safe for concurrent use.
type Health struct {
	cfg HealthConfig
	o   *obs.Observer

	mu      sync.Mutex
	samples []healthSample
}

// NewHealth builds a health model over o's counters.
func NewHealth(o *obs.Observer, cfg HealthConfig) *Health {
	return &Health{cfg: cfg.withDefaults(), o: o}
}

// HealthReport is one Eval verdict with the rates that produced it — the
// payload of the server's /healthz endpoint.
type HealthReport struct {
	// State is the verdict's wire name ("ok", "degraded", "aborting").
	State string `json:"state"`
	// WindowSeconds is the sliding window the rates cover.
	WindowSeconds float64 `json:"window_seconds"`
	// Validations is the number of boundary resolutions in the window.
	Validations int64 `json:"validations"`
	// MismatchRate, AbortRate and FallbackRate are the windowed rates
	// judged against the thresholds (see HealthConfig).
	MismatchRate float64 `json:"mismatch_rate"`
	AbortRate    float64 `json:"abort_rate"`
	FallbackRate float64 `json:"fallback_rate"`
	// TracerDropped is the tracer's lifetime ring-eviction total, a
	// companion signal: a storm that also overruns the rings loses
	// events.
	TracerDropped int64 `json:"tracer_dropped"`
	// Breaker is the speculation circuit breaker's snapshot, present
	// when the serving Config attached one.
	Breaker *core.BreakerSnapshot `json:"breaker,omitempty"`
}

// state parses the report's verdict back into a HealthState.
func (r HealthReport) state() HealthState {
	switch r.State {
	case "degraded":
		return HealthDegraded
	case "aborting":
		return HealthAborting
	}
	return HealthOk
}

// Eval takes a counter sample and returns the current verdict.
func (h *Health) Eval() HealthReport {
	now := h.cfg.Now()
	cur := healthSample{
		t:           now,
		matches:     h.o.Matches.Value(),
		mismatches:  h.o.Mismatches.Value(),
		aborts:      h.o.Aborts.Value(),
		fallback:    h.o.FallbackInputs.Value(),
		specCommits: h.o.SpecCommittedInputs.Value(),
	}

	h.mu.Lock()
	// Prune to the window: keep every sample inside it plus the newest
	// sample at or before its left edge, which becomes the baseline —
	// so the deltas cover the whole window, and a storm ages out once
	// no retained sample straddles it.
	cutoff := now.Add(-h.cfg.Window)
	first := 0
	for first < len(h.samples)-1 && !h.samples[first+1].t.After(cutoff) {
		first++
	}
	if first > 0 {
		h.samples = append(h.samples[:0], h.samples[first:]...)
	}
	var base healthSample
	if len(h.samples) > 0 {
		base = h.samples[0]
	} else {
		base = cur
	}
	h.samples = append(h.samples, cur)
	if len(h.samples) > maxHealthSamples {
		// Collapse pairwise: keep every second sample.
		kept := h.samples[:0]
		for i := 0; i < len(h.samples); i += 2 {
			kept = append(kept, h.samples[i])
		}
		h.samples = kept
	}
	h.mu.Unlock()

	d := func(a, b int64) int64 {
		if b < a {
			return 0 // counter reset (new observer behind the same model)
		}
		return b - a
	}
	validations := d(base.matches, cur.matches) + d(base.aborts, cur.aborts)
	rep := HealthReport{
		WindowSeconds: h.cfg.Window.Seconds(),
		Validations:   validations,
		TracerDropped: h.o.Tracer.Dropped(),
	}
	if validations > 0 {
		rep.MismatchRate = float64(d(base.mismatches, cur.mismatches)) / float64(validations)
		rep.AbortRate = float64(d(base.aborts, cur.aborts)) / float64(validations)
	}
	fb := d(base.fallback, cur.fallback)
	sc := d(base.specCommits, cur.specCommits)
	if fb+sc > 0 {
		rep.FallbackRate = float64(fb) / float64(fb+sc)
	}

	state := HealthOk
	enoughVals := validations >= h.cfg.MinValidations
	switch {
	case (enoughVals && rep.AbortRate >= h.cfg.AbortingAbortRate) ||
		(fb+sc > 0 && rep.FallbackRate >= h.cfg.AbortingFallbackRate):
		state = HealthAborting
	case (enoughVals && (rep.MismatchRate >= h.cfg.DegradedMismatchRate || rep.AbortRate > 0)) ||
		(fb+sc > 0 && rep.FallbackRate >= h.cfg.DegradedFallbackRate):
		state = HealthDegraded
	}
	rep.State = state.String()
	return rep
}
