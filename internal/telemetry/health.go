package telemetry

import (
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// HealthState is the health model's verdict over the sliding window.
type HealthState int

// The three health states: Ok (speculation behaving), Degraded (elevated
// mismatch pressure or any abort activity), Aborting (an abort storm —
// the failure mode where misspeculation clusters and the runtime spends
// its time squashing and falling back).
const (
	HealthOk HealthState = iota
	HealthDegraded
	HealthAborting
)

// String returns the state's wire name.
func (s HealthState) String() string {
	switch s {
	case HealthOk:
		return "ok"
	case HealthDegraded:
		return "degraded"
	case HealthAborting:
		return "aborting"
	}
	return "unknown"
}

// HealthConfig sets the sliding window and the rate thresholds of the
// health model. Zero values pick the defaults noted per field.
type HealthConfig struct {
	// Window is the sliding window rates are computed over (default 5s).
	Window time.Duration
	// MinValidations is the minimum number of boundary resolutions in
	// the window before mismatch/abort rates are judged at all — below
	// it the model will not leave Ok on validation rates (default 1).
	MinValidations int64
	// DegradedMismatchRate is the first-try rejection fraction
	// (mismatches / validations) at which the state degrades
	// (default 0.5).
	DegradedMismatchRate float64
	// DegradedFallbackRate is the fallback input fraction
	// (fallback / (fallback + speculative commits)) at which the state
	// degrades (default 0.05).
	DegradedFallbackRate float64
	// AbortingAbortRate is the aborted-boundary fraction
	// (aborts / validations) at which the state becomes Aborting
	// (default 0.25).
	AbortingAbortRate float64
	// AbortingFallbackRate is the fallback input fraction at which the
	// state becomes Aborting (default 0.5).
	AbortingFallbackRate float64
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c HealthConfig) withDefaults() HealthConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.MinValidations <= 0 {
		c.MinValidations = 1
	}
	if c.DegradedMismatchRate <= 0 {
		c.DegradedMismatchRate = 0.5
	}
	if c.DegradedFallbackRate <= 0 {
		c.DegradedFallbackRate = 0.05
	}
	if c.AbortingAbortRate <= 0 {
		c.AbortingAbortRate = 0.25
	}
	if c.AbortingFallbackRate <= 0 {
		c.AbortingFallbackRate = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Health judges an ok/degraded/aborting verdict from the windowed
// control signals a Signals aggregator computes. It owns no sampling of
// its own: Eval takes (or shares) one Signals report and applies the
// configured thresholds to its rates, so /healthz and /signals always
// describe the same window — one source of truth. The verdict recovers
// to Ok once a storm ages out of the signals window. Eval is cheap and
// safe for concurrent use.
type Health struct {
	cfg HealthConfig
	sig *Signals
}

// NewHealth builds a health model over o's counters, with a private
// signals aggregator carrying the config's window and clock. To share
// one aggregator between /healthz and /signals, use NewHealthOver.
func NewHealth(o *obs.Observer, cfg HealthConfig) *Health {
	cfg = cfg.withDefaults()
	return NewHealthOver(NewSignals(o, SignalsConfig{Window: cfg.Window, Now: cfg.Now}), cfg)
}

// NewHealthOver builds a health model judging an existing signals
// aggregator. The aggregator's window (not cfg.Window) is what the
// verdict covers.
func NewHealthOver(sig *Signals, cfg HealthConfig) *Health {
	return &Health{cfg: cfg.withDefaults(), sig: sig}
}

// Signals returns the aggregator the verdict reads.
func (h *Health) Signals() *Signals { return h.sig }

// HealthReport is one Eval verdict with the rates that produced it — the
// payload of the server's /healthz endpoint.
type HealthReport struct {
	// State is the verdict's wire name ("ok", "degraded", "aborting").
	State string `json:"state"`
	// WindowSeconds is the sliding window the rates cover.
	WindowSeconds float64 `json:"window_seconds"`
	// Validations is the number of boundary resolutions in the window.
	Validations int64 `json:"validations"`
	// MismatchRate, AbortRate and FallbackRate are the windowed rates
	// judged against the thresholds (see HealthConfig).
	MismatchRate float64 `json:"mismatch_rate"`
	AbortRate    float64 `json:"abort_rate"`
	FallbackRate float64 `json:"fallback_rate"`
	// TracerDropped is the tracer's lifetime ring-eviction total, a
	// companion signal: a storm that also overruns the rings loses
	// events.
	TracerDropped int64 `json:"tracer_dropped"`
	// Breaker is the speculation circuit breaker's snapshot, present
	// when the serving Config attached one.
	Breaker *core.BreakerSnapshot `json:"breaker,omitempty"`
}

// state parses the report's verdict back into a HealthState.
func (r HealthReport) state() HealthState {
	switch r.State {
	case "degraded":
		return HealthDegraded
	case "aborting":
		return HealthAborting
	}
	return HealthOk
}

// Eval takes a signals reading and returns the current verdict.
func (h *Health) Eval() HealthReport {
	return h.Judge(h.sig.Report())
}

// Judge applies the configured thresholds to an already-computed signals
// report — the path for callers who have just read the shared aggregator
// and must not advance its window twice.
func (h *Health) Judge(r SignalsReport) HealthReport {
	rep := HealthReport{
		WindowSeconds: r.WindowSeconds,
		Validations:   r.Validations,
		MismatchRate:  r.MismatchRate,
		AbortRate:     r.AbortRate,
		FallbackRate:  r.FallbackRate,
		TracerDropped: r.TracerDropped,
		Breaker:       r.Breaker,
	}

	state := HealthOk
	enoughVals := r.Validations >= h.cfg.MinValidations
	anyInputs := r.FallbackInputs+r.SpecCommittedInputs > 0
	switch {
	case (enoughVals && rep.AbortRate >= h.cfg.AbortingAbortRate) ||
		(anyInputs && rep.FallbackRate >= h.cfg.AbortingFallbackRate):
		state = HealthAborting
	case (enoughVals && (rep.MismatchRate >= h.cfg.DegradedMismatchRate || rep.AbortRate > 0)) ||
		(anyInputs && rep.FallbackRate >= h.cfg.DegradedFallbackRate):
		state = HealthDegraded
	}
	rep.State = state.String()
	return rep
}
