package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

// startEngine runs a real workload through the core engine in a loop at
// full rate, emitting into o, until the returned stop function is called
// (which waits for the run goroutine to drain).
func startEngine(t *testing.T, o *obs.Observer) (stop func()) {
	t.Helper()
	w, err := registry.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seed := uint64(1)
		for {
			select {
			case <-done:
				return
			default:
			}
			w.RunSTATS(seed, workload.SmallSize, workload.SpecOptions{
				UseAux: true, GroupSize: 4, Window: 2,
				RedoMax: 2, Rollback: 2, Workers: 4, Obs: o,
			})
			seed++
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// newTestServer builds a Server (fast SSE cadence for tests) and an
// httptest front end over its Handler.
func newTestServer(t *testing.T, o *obs.Observer) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Observer:    o,
		SSEInterval: 10 * time.Millisecond,
		EnablePprof: true,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// TestServerUnderEngineLoad scrapes /metrics, streams /events, and pulls
// /trace and /spans concurrently while a real engine run emits at full
// rate — the race detector guards the lock-free snapshot paths.
func TestServerUnderEngineLoad(t *testing.T) {
	o := obs.NewObserver(8, 1<<12)
	stopEngine := startEngine(t, o)
	defer stopEngine()
	_, ts := newTestServer(t, o)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	get := func(path string) (*http.Response, error) {
		return http.Get(ts.URL + path)
	}

	// Concurrent /metrics scrapers, each response must parse.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := get("/metrics")
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- errStatus("/metrics", resp.StatusCode)
					return
				}
				if _, err := ParsePromText(string(body)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// /trace and /spans pullers: valid JSON every time.
	for _, path := range []string{"/trace", "/spans"} {
		path := path
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := get(path)
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errs <- errStatus(path, resp.StatusCode)
					return
				}
				var v any
				if err := json.Unmarshal(body, &v); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	// /healthz: must answer (state content depends on the run).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			resp, err := get("/healthz")
			if err != nil {
				errs <- err
				return
			}
			var rep HealthReport
			err = json.NewDecoder(resp.Body).Decode(&rep)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if rep.State == "" {
				errs <- errStatus("/healthz empty state", resp.StatusCode)
				return
			}
		}
	}()

	// An SSE client streaming live batches during the run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := get("/events")
		if err != nil {
			errs <- err
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			errs <- errStatus("/events content-type "+ct, resp.StatusCode)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		batches := 0
		for sc.Scan() && batches < 3 {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var b sseBatch
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &b); err != nil {
				errs <- err
				return
			}
			if len(b.Events) == 0 && b.Dropped == 0 {
				errs <- errStatus("/events empty batch", 0)
				return
			}
			batches++
		}
		if batches < 3 {
			errs <- errStatus("/events stream ended early", 0)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// errStatus builds an error for an unexpected response.
func errStatus(what string, code int) error {
	return fmt.Errorf("%s: unexpected response (status %d)", what, code)
}

// TestServerSpansRoundTrip runs a quickstart-scale workload to completion,
// fetches /spans, and checks the JSON document reconstructs a coherent
// forest: groups present, every complete group carrying an exec span, and
// the rendered tree mentioning each group.
func TestServerSpansRoundTrip(t *testing.T) {
	o := obs.NewObserver(8, 1<<14)
	w, err := registry.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	_, st := w.RunSTATS(1, workload.NativeSize, workload.SpecOptions{
		UseAux: true, GroupSize: 8, Window: 2,
		RedoMax: 2, Rollback: 2, Workers: 4, Obs: o,
	})
	if st.Groups == 0 {
		t.Fatal("engine run produced no groups")
	}
	_, ts := newTestServer(t, o)

	resp, err := http.Get(ts.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc SpanDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Groups) == 0 {
		t.Fatal("/spans returned no groups for a completed run")
	}
	if doc.Emitted == 0 {
		t.Error("/spans did not carry the tracer's emitted total")
	}
	complete := 0
	for _, g := range doc.Groups {
		if g.Partial {
			continue
		}
		complete++
		hasExec := false
		for _, c := range g.Children {
			if c.Kind == SpanExec && c.DurNS >= 0 && c.EndNS >= c.StartNS {
				hasExec = true
			}
		}
		if !hasExec {
			t.Errorf("complete group %d has no exec span", g.Group)
		}
	}
	if doc.Dropped == 0 && complete != len(doc.Groups) {
		t.Errorf("no ring loss but %d/%d groups partial", len(doc.Groups)-complete, len(doc.Groups))
	}
	rendered := SpanString(&doc)
	if !strings.Contains(rendered, "g000") || !strings.Contains(rendered, "validate") {
		t.Errorf("rendered span view missing expected structure:\n%s", rendered)
	}
}

// TestServerMetricsParseCompliance scrapes a populated registry and runs
// the exposition through the structural parser: TYPE-before-samples,
// cumulative complete buckets, +Inf == _count.
func TestServerMetricsParseCompliance(t *testing.T) {
	o := obs.NewObserver(2, 256)
	o.Matches.Add(7)
	o.ValidationLatencyNS.Observe(100)
	o.ValidationLatencyNS.Observe(90000)
	o.Tracer.Emit(0, obs.EvGroupStart, 0, 0)
	_, ts := newTestServer(t, o)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", got)
	}
	body, _ := io.ReadAll(resp.Body)
	m, err := ParsePromText(string(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	if v, ok := m.Value("stats_validation_match_total"); !ok || v != 7 {
		t.Errorf("stats_validation_match_total = %v (present=%v), want 7", v, ok)
	}
	if v, ok := m.Value("trace_events_emitted_total"); !ok || v < 1 {
		t.Errorf("trace_events_emitted_total = %v (present=%v), want >= 1", v, ok)
	}
	if typ := m.Types["stats_validation_latency_ns"]; typ != "histogram" {
		t.Errorf("stats_validation_latency_ns TYPE = %q, want histogram", typ)
	}
	if m.Help["stats_aborts_total"] == "" {
		t.Error("stats_aborts_total has no HELP line")
	}
	// The server counts its own scrapes.
	if _, err := http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	m2, err := ParsePromText(string(body2))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m2.Value("telemetry_scrapes_total"); v < 3 {
		t.Errorf("telemetry_scrapes_total = %v, want >= 3", v)
	}
}

// TestServerEventsOnce exercises the curl-friendly single-batch mode used
// by the serve-smoke target: one data message, then the handler returns.
func TestServerEventsOnce(t *testing.T) {
	o := obs.NewObserver(2, 256)
	o.Tracer.Emit(0, obs.EvGroupStart, 0, 0)
	o.Tracer.Emit(0, obs.EvGroupFinish, 0, 5)
	_, ts := newTestServer(t, o)

	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(ts.URL + "/events?once=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body) // must terminate without the timeout
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasPrefix(text, "data: ") {
		t.Fatalf("once-mode response is not one SSE message: %q", text)
	}
	var b sseBatch
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(text), "data: ")), &b); err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 2 || b.Events[0].Kind != obs.EvGroupStart.String() {
		t.Errorf("once batch = %+v, want the two emitted events", b)
	}
}

// TestServerStartClose exercises the standalone listener lifecycle: bind
// an ephemeral port, serve a scrape, shut down (an attached SSE stream
// must be released), and tolerate double Close.
func TestServerStartClose(t *testing.T) {
	o := obs.NewObserver(2, 256)
	s := NewServer(Config{Observer: o, SSEInterval: 10 * time.Millisecond})
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" || s.URL() == "" {
		t.Fatal("started server reports no address")
	}
	if err := s.Start("127.0.0.1:0"); err == nil {
		t.Error("double Start did not fail")
	}

	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Attach a streaming client, then Close: the stream must end.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get(s.URL() + "/events")
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	time.Sleep(50 * time.Millisecond) // let the stream attach
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-streamDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream not released by Close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServerHealthzStatusCodes: aborting is 503, ok is 200.
func TestServerHealthzStatusCodes(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s := NewServer(Config{Observer: o, Health: HealthConfig{Window: 10 * time.Second, Now: clk.now}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("ok health served %d, want 200", resp.StatusCode)
	}

	s.Health().Eval() // baseline sample
	clk.advance(time.Second)
	o.Matches.Add(10)
	o.Aborts.Add(10) // 50% abort rate: aborting
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var rep HealthReport
	json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || rep.State != "aborting" {
		t.Errorf("abort storm served %d/%q, want 503/aborting", resp.StatusCode, rep.State)
	}
}

// TestServerPprofGate: the profile endpoints exist only behind the flag.
func TestServerPprofGate(t *testing.T) {
	o := obs.NewObserver(1, 64)
	on := NewServer(Config{Observer: o, EnablePprof: true})
	off := NewServer(Config{Observer: obs.NewObserver(1, 64)})
	tsOn := httptest.NewServer(on.Handler())
	tsOff := httptest.NewServer(off.Handler())
	defer tsOn.Close()
	defer tsOff.Close()
	defer on.Close()
	defer off.Close()

	resp, err := http.Get(tsOn.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof enabled served %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(tsOff.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled served %d, want 404", resp.StatusCode)
	}
}

func TestEventsStalledClientDisconnected(t *testing.T) {
	// A client that opens /events and then stops reading must be cut off
	// by the per-write deadline, not pin the handler goroutine forever on
	// a blocked write.
	o := obs.NewObserver(4, 1<<14)
	s := NewServer(Config{
		Observer:        o,
		SSEInterval:     2 * time.Millisecond,
		SSEWriteTimeout: 250 * time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// Keep the tracer full so every poll ships a near-max batch and the
	// stalled connection's buffers fill fast.
	stopEmit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stopEmit:
				return
			default:
			}
			o.Tracer.Emit(i&3, obs.EvGroupStart, int32(i), int64(i))
		}
	}()
	defer func() { close(stopEmit); wg.Wait() }()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /events HTTP/1.1\r\nHost: stall\r\n\r\n")
	// Read just the response header, then stall without ever draining
	// the body. The server keeps writing batches until the socket
	// buffers fill and its writes block on our unread window.
	hdr := make([]byte, 512)
	if _, err := conn.Read(hdr); err != nil {
		t.Fatal(err)
	}

	disconnects := o.Reg.Counter("telemetry_sse_disconnects_total")
	deadlineHit := time.Now().Add(30 * time.Second)
	for disconnects.Value() == 0 {
		if time.Now().After(deadlineHit) {
			t.Fatalf("stalled client never disconnected (clients=%d)",
				o.Reg.Gauge("telemetry_sse_clients").Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The handler returned: its client gauge must drain back to zero.
	for o.Reg.Gauge("telemetry_sse_clients").Value() != 0 {
		if time.Now().After(deadlineHit) {
			t.Fatal("sse client gauge never drained after disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthzReportsBreaker(t *testing.T) {
	o := obs.NewObserver(1, 64)
	b := core.NewBreaker(core.BreakerConfig{})
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	s := NewServer(Config{Observer: o, Breaker: b})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Breaker == nil {
		t.Fatal("healthz missing breaker section")
	}
	if rep.Breaker.State != "open" || rep.Breaker.Trips != 1 {
		t.Fatalf("breaker section %+v", rep.Breaker)
	}

	// The breaker's instruments are registered: /metrics must expose them.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(body), "breaker_trips_total 1") {
		t.Fatalf("metrics missing breaker_trips_total:\n%s", body)
	}
}
