package telemetry

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestServerConcurrentStress hammers every concurrent surface of the
// profiler at once, under both protocols with fault injection on: a
// live engine loop emits events and bumps counters while goroutines
// call Signals().Report()/Last() directly, SSE clients stream
// /signals?stream=1, and plain HTTP clients poll /signals, /spans,
// /healthz and /metrics. Run under -race this is the data-race proof
// for the always-on profiler; without -race it is still a liveness
// smoke (nothing deadlocks, every reader sees well-formed output).
func TestServerConcurrentStress(t *testing.T) {
	for _, tc := range []struct {
		name  string
		proto core.Protocol
	}{
		{"aux", core.ProtocolAux},
		{"reservations", core.ProtocolReservations},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ob := obs.NewObserver(5, 1<<12)
			br := core.NewBreaker(core.BreakerConfig{
				Window: time.Hour, MinRuns: 8, TripRate: 0.95, Cooldown: time.Millisecond,
			})
			srv := NewServer(Config{
				Observer:       ob,
				Breaker:        br,
				SSEInterval:    5 * time.Millisecond,
				SampleInterval: 5 * time.Millisecond,
			})
			if err := srv.Start("127.0.0.1:0"); err != nil {
				t.Fatalf("start: %v", err)
			}
			defer srv.Close()

			const dur = 600 * time.Millisecond
			deadline := time.Now().Add(dur)
			stop := make(chan struct{})
			var wg sync.WaitGroup

			// Engine loop: real runs with injected aux panics and garbage
			// speculative states, so the unhappy-path counters and lane-CPU
			// attribution are all moving while the readers read.
			wg.Add(1)
			go func() {
				defer wg.Done()
				in := fault.New(fault.Config{
					Seed: 7, AuxPanicRate: 0.1, GarbageRate: 0.2,
				})
				aux := fault.WrapAux(in, propAux, propGarbage)
				inputs := make([]int, 40)
				for i := range inputs {
					inputs[i] = i%7 + 1
				}
				for seed := uint64(0); time.Now().Before(deadline); seed++ {
					d := core.New(propCompute, aux, propOps())
					d.Run(inputs, propState{}, core.Options{
						UseAux: true, Protocol: tc.proto,
						GroupSize: 5, Window: 3, // short window: real mismatches
						RedoMax: 1, Rollback: 2, Workers: 4,
						Seed: seed, Obs: ob, Breaker: br,
					})
				}
				close(stop)
			}()

			// Direct API readers: concurrent Report() (advances the window)
			// and Last() (the gauge read path) against the live engine.
			sig := srv.Signals()
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						rep := sig.Report()
						if rep.Aborts < 0 || rep.WastedWorkRatio < 0 || rep.WastedWorkRatio > 1 {
							t.Errorf("torn report: %+v", rep)
							return
						}
						sig.Last()
					}
				}()
			}

			// SSE clients: stream /signals?stream=1 and check each frame is
			// a well-formed data line.
			ctx, cancel := context.WithDeadline(context.Background(), deadline)
			defer cancel()
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL()+"/signals?stream=1", nil)
					resp, err := http.DefaultClient.Do(req)
					if err != nil {
						return // deadline raced the dial; fine
					}
					defer resp.Body.Close()
					sc := bufio.NewScanner(resp.Body)
					frames := 0
					for sc.Scan() {
						line := sc.Text()
						if line == "" {
							continue
						}
						if !strings.HasPrefix(line, "data: ") ||
							!strings.Contains(line, `"window_seconds"`) {
							t.Errorf("malformed SSE frame: %q", line)
							return
						}
						frames++
					}
					if frames == 0 {
						t.Error("SSE client saw no frames before the deadline")
					}
				}()
			}

			// Plain HTTP pollers across the other live endpoints.
			for _, path := range []string{"/signals", "/spans", "/healthz", "/metrics"} {
				path := path
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := http.Get(srv.URL() + path)
						if err != nil {
							t.Errorf("GET %s: %v", path, err)
							return
						}
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						// /healthz legitimately serves 503 while the fault
						// storm keeps the verdict degraded or aborting.
						ok := resp.StatusCode == http.StatusOK ||
							(path == "/healthz" && resp.StatusCode == http.StatusServiceUnavailable)
						if !ok || len(body) == 0 {
							t.Errorf("GET %s: status %d, %d bytes", path, resp.StatusCode, len(body))
							return
						}
					}
				}()
			}

			wg.Wait()

			// The campaign must have actually exercised speculation.
			if rep := sig.Report(); rep.Validations == 0 && rep.ReservationRounds == 0 {
				t.Errorf("stress run drove no speculation at all: %+v", rep)
			}
		})
	}
}
