package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// waterfallBarWidth is the bar chart's width in character cells.
const waterfallBarWidth = 40

// RenderWaterfall writes a span document as a waterfall: one bar per
// speculation group on a shared time axis, each overlaid with its phases
// ('=' executing, 'a' aux, 'v' validating, 'r' redo, 'S' squash,
// 'F' fallback), followed by the group's phase chain in start order and
// its wasted-work share. The footer names the run's critical path — the
// longest group lifecycle — phase by phase: the chain an engineer
// shortens first when the profile says speculation is not paying.
// Deterministic for a given document.
func RenderWaterfall(w io.Writer, doc *SpanDoc) {
	if len(doc.Groups) == 0 {
		fmt.Fprintln(w, "waterfall: no groups")
		return
	}

	lo, hi := doc.Groups[0].StartNS, doc.Groups[0].EndNS
	var committed, wasted int64
	for _, g := range doc.Groups {
		if g.StartNS < lo {
			lo = g.StartNS
		}
		if g.EndNS > hi {
			hi = g.EndNS
		}
		committed += g.CPUCommittedNS
		wasted += g.CPUWastedNS
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	col := func(ts int64) int {
		c := int((ts - lo) * int64(waterfallBarWidth) / span)
		if c >= waterfallBarWidth {
			c = waterfallBarWidth - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}

	fmt.Fprintf(w, "waterfall: %d groups (%d partial), span %s",
		len(doc.Groups), doc.PartialGroups, fmtNS(span))
	if committed+wasted > 0 {
		fmt.Fprintf(w, ", lane cpu committed=%s wasted=%s (waste %.0f%%)",
			fmtNS(committed), fmtNS(wasted),
			100*float64(wasted)/float64(committed+wasted))
	}
	fmt.Fprintln(w)

	var critical *Span
	for _, g := range doc.Groups {
		if critical == nil || g.DurNS > critical.DurNS {
			critical = g
		}
		row := make([]byte, waterfallBarWidth)
		for i := range row {
			row[i] = '.'
		}
		// Duration-bearing phases first, instants on top so they stay
		// visible inside a long bar.
		for _, c := range g.Children {
			switch c.Kind {
			case SpanExec:
				for i := col(c.StartNS); i <= col(c.EndNS); i++ {
					row[i] = '='
				}
			case SpanValidate:
				for i := col(c.StartNS); i <= col(c.EndNS); i++ {
					row[i] = 'v'
				}
			}
		}
		for _, c := range g.Children {
			switch c.Kind {
			case SpanAux:
				row[col(c.StartNS)] = 'a'
			case SpanValidate:
				for _, r := range c.Children {
					if r.Kind == SpanRedo {
						row[col(r.StartNS)] = 'r'
					}
				}
			case SpanSquash:
				row[col(c.StartNS)] = 'S'
			case SpanFallback:
				row[col(c.StartNS)] = 'F'
			}
		}
		waste := ""
		if g.CPUCommittedNS+g.CPUWastedNS > 0 {
			waste = fmt.Sprintf(" waste=%.0f%%",
				100*float64(g.CPUWastedNS)/float64(g.CPUCommittedNS+g.CPUWastedNS))
		}
		fmt.Fprintf(w, "g%03d |%s| %s %s%s%s\n", g.Group, row,
			fmtNS(g.DurNS), g.Outcome, waste, partialMark(g))
		fmt.Fprintf(w, "     %s\n", chainString(g))
	}

	fmt.Fprintf(w, "critical path: g%03d %s (total %s)\n",
		critical.Group, chainString(critical), fmtNS(critical.DurNS))
}

// chainString renders a group's phase chain in start order.
func chainString(g *Span) string {
	var parts []string
	for _, c := range g.Children {
		switch c.Kind {
		case SpanAux:
			parts = append(parts, fmt.Sprintf("aux@t+%s", fmtNS(c.StartNS)))
		case SpanExec:
			parts = append(parts, fmt.Sprintf("exec %s", fmtNS(c.DurNS)))
		case SpanValidate:
			p := fmt.Sprintf("validate %s %s", fmtNS(c.DurNS), c.Outcome)
			if c.Redos > 0 {
				p += fmt.Sprintf(" redos=%d", c.Redos)
			}
			parts = append(parts, p)
		case SpanSquash:
			parts = append(parts, fmt.Sprintf("squash inputs=%d", c.Arg))
		case SpanFallback:
			parts = append(parts, fmt.Sprintf("fallback inputs=%d", c.Arg))
		}
	}
	if len(parts) == 0 {
		return "(no observed phases)"
	}
	return strings.Join(parts, " -> ")
}

// WaterfallString renders doc's waterfall to a string.
func WaterfallString(doc *SpanDoc) string {
	var b strings.Builder
	RenderWaterfall(&b, doc)
	return b.String()
}
