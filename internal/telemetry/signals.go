// Rolling control signals: the windowed view of the speculation counters
// that the /signals endpoint, the Prometheus signal gauges, the /healthz
// verdict and the planned online adaptive controller all read. One
// Signals instance is one source of truth — Health is a thin judgment
// layered on top of it (NewHealthOver), and the chaos campaign reconciles
// the raw window deltas byte-for-byte against core.Stats.
package telemetry

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// SignalsConfig sets the sliding window of the aggregator. Zero values
// pick the noted defaults.
type SignalsConfig struct {
	// Window is the sliding window deltas are computed over (default 5s).
	Window time.Duration
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// Breaker, when set, has its snapshot attached to every report.
	Breaker *core.Breaker
}

// withDefaults fills zero fields.
func (c SignalsConfig) withDefaults() SignalsConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// signalCounters is one atomic reading of every instrument the signals
// cover. Histograms are carried as full bucket snapshots so the window's
// quantiles come from bucket deltas, not lifetime totals.
type signalCounters struct {
	matches, mismatches, aborts, redos int64
	fallback, specCommits              int64
	panicked, timedOut, breakerDenied  int64
	groupsFinished                     int64
	steals, localHits                  int64
	resvCommits, roundsSum             int64
	laneCommitted, laneWasted          int64
	valLat                             obs.HistogramSnapshot
}

// readSignalCounters samples the observer.
func readSignalCounters(o *obs.Observer) signalCounters {
	return signalCounters{
		matches:        o.Matches.Value(),
		mismatches:     o.Mismatches.Value(),
		aborts:         o.Aborts.Value(),
		redos:          o.Redos.Value(),
		fallback:       o.FallbackInputs.Value(),
		specCommits:    o.SpecCommittedInputs.Value(),
		panicked:       o.PanickedGroups.Value(),
		timedOut:       o.GroupTimeouts.Value(),
		breakerDenied:  o.BreakerDenied.Value(),
		groupsFinished: o.GroupsFinished.Value(),
		steals:         o.Steals.Value(),
		localHits:      o.LocalHits.Value(),
		resvCommits:    o.Commits.Value(),
		roundsSum:      o.RoundsPerGroup.Sum(),
		laneCommitted:  o.LaneCPUCommitted.Value(),
		laneWasted:     o.LaneCPUWasted.Value(),
		valLat:         o.ValidationLatencyNS.Snapshot(),
	}
}

// signalSample is one timestamped reading.
type signalSample struct {
	t time.Time
	c signalCounters
}

// maxSignalSamples bounds the sample ring; beyond it the samples are
// collapsed pairwise (halving resolution, keeping window coverage).
const maxSignalSamples = 512

// SignalsReport is one windowed reading: the raw counter deltas over the
// window (reconcilable against core.Stats sums), the derived control
// rates, and the windowed validation-latency quantiles. It is the
// payload of the /signals endpoint and the stable input surface of the
// future adaptive controller.
type SignalsReport struct {
	// WindowSeconds is the sliding window the deltas cover.
	WindowSeconds float64 `json:"window_seconds"`

	// Raw deltas over the window. Validations is Matches + Aborts (every
	// boundary resolves one way or the other).
	Validations         int64 `json:"validations"`
	Matches             int64 `json:"matches"`
	Mismatches          int64 `json:"mismatches"`
	Aborts              int64 `json:"aborts"`
	Redos               int64 `json:"redos"`
	FallbackInputs      int64 `json:"fallback_inputs"`
	SpecCommittedInputs int64 `json:"spec_committed_inputs"`
	PanickedGroups      int64 `json:"panicked_groups"`
	TimedOutGroups      int64 `json:"timed_out_groups"`
	BreakerDeniedRuns   int64 `json:"breaker_denied_runs"`
	GroupsFinished      int64 `json:"groups_finished"`
	Steals              int64 `json:"steals"`
	LocalHits           int64 `json:"local_hits"`
	ReservationCommits  int64 `json:"reservation_commits"`
	ReservationRounds   int64 `json:"reservation_rounds"`
	LaneCPUCommittedNS  int64 `json:"lane_cpu_committed_ns"`
	LaneCPUWastedNS     int64 `json:"lane_cpu_wasted_ns"`

	// Derived control rates (zero when their denominator is empty).
	// MismatchRate, AbortRate and RedoRate are per validation;
	// FailureRate is contained panics + deadline squashes per finished
	// group; FallbackRate is fallback inputs per resolved input;
	// StealFraction is steals per scheduler dispatch; CommitsPerRound is
	// the reservations protocol's commit throughput; WastedWorkRatio is
	// wasted lane CPU over all lane CPU — the price of speculation.
	MismatchRate    float64 `json:"mismatch_rate"`
	AbortRate       float64 `json:"abort_rate"`
	RedoRate        float64 `json:"redo_rate"`
	FailureRate     float64 `json:"failure_rate"`
	FallbackRate    float64 `json:"fallback_rate"`
	StealFraction   float64 `json:"steal_fraction"`
	CommitsPerRound float64 `json:"commits_per_round"`
	WastedWorkRatio float64 `json:"wasted_work_ratio"`

	// Windowed validation-latency quantile estimates (log-bucket upper
	// bounds, nanoseconds).
	ValidationP50NS int64 `json:"validation_p50_ns"`
	ValidationP99NS int64 `json:"validation_p99_ns"`

	// TracerDropped is the tracer's lifetime ring-eviction total, a
	// companion signal for trusting (or not) event-derived views.
	TracerDropped int64 `json:"tracer_dropped"`
	// Breaker is the speculation circuit breaker's snapshot, present
	// when the config attached one.
	Breaker *core.BreakerSnapshot `json:"breaker,omitempty"`
}

// Signals computes windowed control signals over an Observer's
// instruments. Each Report call takes a fresh counter sample, prunes
// samples older than the window, and reports the deltas between the
// oldest retained sample and now — so every rate recovers once a storm
// ages out of the window. Report is cheap (atomic counter reads plus one
// histogram copy) and safe for concurrent use.
type Signals struct {
	cfg SignalsConfig
	o   *obs.Observer

	mu      sync.Mutex
	samples []signalSample
	last    SignalsReport
}

// NewSignals builds a signals aggregator over o's instruments.
func NewSignals(o *obs.Observer, cfg SignalsConfig) *Signals {
	return &Signals{cfg: cfg.withDefaults(), o: o}
}

// Window returns the configured sliding window.
func (s *Signals) Window() time.Duration { return s.cfg.Window }

// Report samples the counters and returns the current windowed signals.
func (s *Signals) Report() SignalsReport {
	now := s.cfg.Now()
	cur := signalSample{t: now, c: readSignalCounters(s.o)}
	dropped := s.o.Tracer.Dropped()

	s.mu.Lock()
	defer s.mu.Unlock()
	// Prune to the window: keep every sample inside it plus the newest
	// sample at or before its left edge, which becomes the baseline — so
	// the deltas cover the whole window, and a storm ages out once no
	// retained sample straddles it.
	cutoff := now.Add(-s.cfg.Window)
	first := 0
	for first < len(s.samples)-1 && !s.samples[first+1].t.After(cutoff) {
		first++
	}
	if first > 0 {
		s.samples = append(s.samples[:0], s.samples[first:]...)
	}
	base := cur
	if len(s.samples) > 0 {
		base = s.samples[0]
	}
	s.samples = append(s.samples, cur)
	if len(s.samples) > maxSignalSamples {
		// Collapse pairwise: keep every second sample.
		kept := s.samples[:0]
		for i := 0; i < len(s.samples); i += 2 {
			kept = append(kept, s.samples[i])
		}
		s.samples = kept
	}

	rep := computeSignals(s.cfg.Window, base.c, cur.c)
	rep.TracerDropped = dropped
	if s.cfg.Breaker != nil {
		snap := s.cfg.Breaker.Snapshot()
		rep.Breaker = &snap
	}
	s.last = rep
	return rep
}

// Last returns the most recent report without taking a new sample — the
// read path of the Prometheus signal gauges, which must not advance the
// window on every scrape line.
func (s *Signals) Last() SignalsReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// computeSignals derives a report from two counter readings.
func computeSignals(window time.Duration, base, cur signalCounters) SignalsReport {
	d := func(a, b int64) int64 {
		if b < a {
			return 0 // counter reset (new observer behind the same model)
		}
		return b - a
	}
	rep := SignalsReport{
		WindowSeconds:       window.Seconds(),
		Matches:             d(base.matches, cur.matches),
		Mismatches:          d(base.mismatches, cur.mismatches),
		Aborts:              d(base.aborts, cur.aborts),
		Redos:               d(base.redos, cur.redos),
		FallbackInputs:      d(base.fallback, cur.fallback),
		SpecCommittedInputs: d(base.specCommits, cur.specCommits),
		PanickedGroups:      d(base.panicked, cur.panicked),
		TimedOutGroups:      d(base.timedOut, cur.timedOut),
		BreakerDeniedRuns:   d(base.breakerDenied, cur.breakerDenied),
		GroupsFinished:      d(base.groupsFinished, cur.groupsFinished),
		Steals:              d(base.steals, cur.steals),
		LocalHits:           d(base.localHits, cur.localHits),
		ReservationCommits:  d(base.resvCommits, cur.resvCommits),
		ReservationRounds:   d(base.roundsSum, cur.roundsSum),
		LaneCPUCommittedNS:  d(base.laneCommitted, cur.laneCommitted),
		LaneCPUWastedNS:     d(base.laneWasted, cur.laneWasted),
	}
	rep.Validations = rep.Matches + rep.Aborts
	if rep.Validations > 0 {
		rep.MismatchRate = float64(rep.Mismatches) / float64(rep.Validations)
		rep.AbortRate = float64(rep.Aborts) / float64(rep.Validations)
		rep.RedoRate = float64(rep.Redos) / float64(rep.Validations)
	}
	if rep.GroupsFinished > 0 {
		rep.FailureRate = float64(rep.PanickedGroups+rep.TimedOutGroups) / float64(rep.GroupsFinished)
	}
	if den := rep.FallbackInputs + rep.SpecCommittedInputs; den > 0 {
		rep.FallbackRate = float64(rep.FallbackInputs) / float64(den)
	}
	if den := rep.Steals + rep.LocalHits; den > 0 {
		rep.StealFraction = float64(rep.Steals) / float64(den)
	}
	if rep.ReservationRounds > 0 {
		rep.CommitsPerRound = float64(rep.ReservationCommits) / float64(rep.ReservationRounds)
	}
	if den := rep.LaneCPUCommittedNS + rep.LaneCPUWastedNS; den > 0 {
		rep.WastedWorkRatio = float64(rep.LaneCPUWastedNS) / float64(den)
	}
	lat := cur.valLat.Sub(base.valLat)
	rep.ValidationP50NS = lat.Quantile(0.5)
	rep.ValidationP99NS = lat.Quantile(0.99)
	return rep
}

// ppm scales a fraction to parts per million, the integer encoding the
// registry's int64-only gauges use for rates.
func ppm(f float64) int64 {
	return int64(f*1e6 + 0.5)
}

// Register exposes the signal rates as function-backed Prometheus gauges
// reading the last computed report (the server's sampling loop keeps it
// fresh; gauges never advance the window themselves). Fractions are
// scaled to parts per million, commits/round to thousandths.
func (s *Signals) Register(reg *obs.Registry) {
	g := func(name, help string, fn func(SignalsReport) int64) {
		reg.GaugeFunc(name, func() int64 { return fn(s.Last()) })
		reg.SetHelp(name, help)
	}
	g("signals_window_validations", "boundary resolutions in the signals window",
		func(r SignalsReport) int64 { return r.Validations })
	g("signals_abort_rate_ppm", "windowed aborts per validation (ppm)",
		func(r SignalsReport) int64 { return ppm(r.AbortRate) })
	g("signals_mismatch_rate_ppm", "windowed first-try rejections per validation (ppm)",
		func(r SignalsReport) int64 { return ppm(r.MismatchRate) })
	g("signals_redo_rate_ppm", "windowed re-executions per validation (ppm)",
		func(r SignalsReport) int64 { return ppm(r.RedoRate) })
	g("signals_failure_rate_ppm", "windowed contained panics + deadline squashes per finished group (ppm)",
		func(r SignalsReport) int64 { return ppm(r.FailureRate) })
	g("signals_fallback_rate_ppm", "windowed fallback inputs per resolved input (ppm)",
		func(r SignalsReport) int64 { return ppm(r.FallbackRate) })
	g("signals_steal_fraction_ppm", "windowed cross-worker steals per scheduler dispatch (ppm)",
		func(r SignalsReport) int64 { return ppm(r.StealFraction) })
	g("signals_commits_per_round_milli", "windowed reservation commits per round (thousandths)",
		func(r SignalsReport) int64 { return int64(r.CommitsPerRound*1e3 + 0.5) })
	g("signals_wasted_work_ratio_ppm", "windowed wasted lane CPU over all lane CPU (ppm)",
		func(r SignalsReport) int64 { return ppm(r.WastedWorkRatio) })
	g("signals_validation_p50_ns", "windowed validation-latency p50 estimate (ns)",
		func(r SignalsReport) int64 { return r.ValidationP50NS })
	g("signals_validation_p99_ns", "windowed validation-latency p99 estimate (ns)",
		func(r SignalsReport) int64 { return r.ValidationP99NS })
	g("signals_lane_cpu_committed_ns", "windowed committed lane CPU (ns)",
		func(r SignalsReport) int64 { return r.LaneCPUCommittedNS })
	g("signals_lane_cpu_wasted_ns", "windowed wasted lane CPU (ns)",
		func(r SignalsReport) int64 { return r.LaneCPUWastedNS })
}
