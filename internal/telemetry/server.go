package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config configures a telemetry Server.
type Config struct {
	// Observer is the observability sink the server exposes. Required.
	Observer *obs.Observer
	// Health sets the /healthz window and thresholds (zero: defaults).
	Health HealthConfig
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// SSEInterval is the /events poll interval (default 200ms).
	SSEInterval time.Duration
	// SSEMaxBatch bounds the events sent per SSE message; when a poll
	// finds more, the oldest are dropped and counted (default 4096).
	SSEMaxBatch int
	// SSEWriteTimeout bounds each /events write (default 5s): a client
	// that stops reading is disconnected once the deadline passes,
	// instead of pinning its handler goroutine forever on a blocked
	// write. Disconnects are counted in
	// telemetry_sse_disconnects_total.
	SSEWriteTimeout time.Duration
	// Breaker, when non-nil, is the speculation circuit breaker to
	// surface: its instruments register in the observer's registry (so
	// /metrics exposes them) and /healthz reports its snapshot.
	Breaker *core.Breaker
	// SampleInterval is the background health-sampling cadence, which
	// keeps the /healthz window populated even under sparse scraping
	// (default Window/8, floored at 100ms). Background sampling starts
	// with Start and stops with Close; a handler obtained from a server
	// that was never started samples only on request.
	SampleInterval time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.SSEInterval <= 0 {
		c.SSEInterval = 200 * time.Millisecond
	}
	if c.SSEMaxBatch <= 0 {
		c.SSEMaxBatch = 4096
	}
	if c.SSEWriteTimeout <= 0 {
		c.SSEWriteTimeout = 5 * time.Second
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = c.Health.withDefaults().Window / 8
		if c.SampleInterval < 100*time.Millisecond {
			c.SampleInterval = 100 * time.Millisecond
		}
	}
	return c
}

// Server is the embeddable HTTP telemetry surface over one Observer:
//
//	GET /metrics  Prometheus text exposition of the metrics registry
//	GET /healthz  windowed speculation health (200 ok/degraded, 503 aborting)
//	GET /signals  rolling control signals (JSON; ?stream=1 for SSE)
//	GET /events   live SSE stream of the speculation event log
//	GET /trace    Chrome trace_event JSON flight-recorder dump
//	GET /spans    causal span trees reconstructed from the event log
//	GET /debug/pprof/...  (when Config.EnablePprof)
//
// Every endpoint reads the tracer and registry through their lock-free
// snapshot paths; a scrape or an attached stream client never blocks
// Tracer.Emit. Use Start/Close for a standalone listener, or Handler to
// embed the surface in an existing mux.
type Server struct {
	cfg     Config
	signals *Signals
	health  *Health
	folder  *SpanFolder

	// scrapes counts /metrics requests; sseDropped counts events
	// dropped on the way to slow SSE clients; sseDisconnects counts
	// clients cut off by the per-write deadline. All are registered in
	// the observer's registry so the surface observes itself.
	scrapes        *obs.Counter
	sseDropped     *obs.Counter
	sseDisconnects *obs.Counter
	sseClients     *obs.Gauge

	mu   sync.Mutex
	srv  *http.Server
	ln   net.Listener
	done chan struct{} // closed on Close; unblocks SSE loops and the sampler
}

// NewServer builds a Server over cfg.Observer. It panics on a nil
// observer — an unobserved server has nothing to serve.
func NewServer(cfg Config) *Server {
	if cfg.Observer == nil {
		panic("telemetry: Config.Observer is nil")
	}
	cfg = cfg.withDefaults()
	reg := cfg.Observer.Reg
	// One signals aggregator backs /signals, the signal gauges and the
	// /healthz verdict — a single windowed source of truth.
	hc := cfg.Health.withDefaults()
	sig := NewSignals(cfg.Observer, SignalsConfig{
		Window:  hc.Window,
		Now:     hc.Now,
		Breaker: cfg.Breaker,
	})
	s := &Server{
		cfg:            cfg,
		signals:        sig,
		health:         NewHealthOver(sig, cfg.Health),
		folder:         NewSpanFolder(cfg.Observer.Tracer),
		scrapes:        reg.Counter("telemetry_scrapes_total"),
		sseDropped:     reg.Counter("telemetry_sse_dropped_events_total"),
		sseDisconnects: reg.Counter("telemetry_sse_disconnects_total"),
		sseClients:     reg.Gauge("telemetry_sse_clients"),
		done:           make(chan struct{}),
	}
	reg.SetHelp("telemetry_scrapes_total", "GET /metrics requests served")
	reg.SetHelp("telemetry_sse_dropped_events_total", "events dropped before reaching slow /events clients")
	reg.SetHelp("telemetry_sse_disconnects_total", "/events clients disconnected by the per-write deadline")
	reg.SetHelp("telemetry_sse_clients", "currently attached /events clients")
	if cfg.Breaker != nil {
		cfg.Breaker.Register(reg)
	}
	sig.Register(reg)
	return s
}

// Health returns the server's health model (the one /healthz evaluates).
func (s *Server) Health() *Health { return s.health }

// Signals returns the server's shared signals aggregator (the one
// /signals serves and /healthz judges).
func (s *Server) Signals() *Signals { return s.signals }

// Handler returns the telemetry surface as an http.Handler, for embedding
// into an existing server or mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/signals", s.handleSignals)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/spans", s.handleSpans)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves the
// telemetry surface until Close. It also starts the background health
// sampler. Start returns once the listener is bound; use Addr for the
// bound address.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	s.mu.Lock()
	if s.srv != nil {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("telemetry: server already started")
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	s.mu.Unlock()
	go s.srv.Serve(ln)
	go s.sampleLoop()
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://<addr>" ("" before Start).
func (s *Server) URL() string {
	a := s.Addr()
	if a == "" {
		return ""
	}
	return "http://" + a
}

// Close gracefully shuts the server down: the health sampler and attached
// SSE streams stop, in-flight requests get a short drain window, then the
// listener closes. Safe to call multiple times and on a never-started
// server.
func (s *Server) Close() error {
	s.mu.Lock()
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return srv.Close()
	}
	return nil
}

// sampleLoop keeps the health window populated between scrapes.
func (s *Server) sampleLoop() {
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			// One Report advances the shared window for both /signals
			// and /healthz, and keeps the signal gauges' Last fresh; the
			// folder poll keeps /spans O(new events) on the next request.
			s.signals.Report()
			s.folder.Poll()
		}
	}
}

// handleIndex lists the endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `STATS runtime telemetry
  /metrics  Prometheus text exposition
  /healthz  windowed speculation health
  /signals  rolling control signals (?stream=1 for SSE)
  /events   live event stream (SSE; ?once=1 for a single snapshot)
  /trace    Chrome trace_event JSON (chrome://tracing, ui.perfetto.dev)
  /spans    causal span trees of the speculation lifecycle
`)
	if s.cfg.EnablePprof {
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
	}
}

// handleMetrics serves the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Observer.Reg.WriteText(w)
}

// handleHealthz serves the health verdict: HTTP 200 for ok and degraded
// (degraded is a warning, not an outage), 503 for aborting.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// The shared signals aggregator carries the breaker snapshot, so the
	// verdict's Breaker field arrives through Judge.
	rep := s.health.Eval()
	w.Header().Set("Content-Type", "application/json")
	if rep.state() == HealthAborting {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

// handleSignals serves the rolling control signals. Without parameters it
// returns one JSON SignalsReport; with ?stream=1 it becomes an SSE stream
// sending a fresh report every poll interval — the feed an external
// controller or dashboard tails instead of scraping /metrics.
func (s *Server) handleSignals(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "" {
		rep := s.signals.Report()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
		return
	}

	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	s.sseClients.Add(1)
	defer s.sseClients.Add(-1)

	// Same per-write deadline discipline as /events: a stalled client is
	// disconnected, never allowed to pin its handler goroutine.
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	tick := time.NewTicker(s.cfg.SSEInterval)
	defer tick.Stop()
	for {
		rep := s.signals.Report()
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.SSEWriteTimeout))
		if _, err := fmt.Fprint(w, "data: "); err != nil {
			s.sseDisconnects.Inc()
			return
		}
		if err := enc.Encode(rep); err != nil {
			s.sseDisconnects.Inc()
			return
		}
		if _, err := fmt.Fprint(w, "\n"); err != nil {
			s.sseDisconnects.Inc()
			return
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-tick.C:
		}
	}
}

// sseEvent is the wire form of one event on the /events stream.
type sseEvent struct {
	// TS is nanoseconds since the tracer epoch; Lane, Group and Arg are
	// the event's raw fields; Kind is the event kind's stable name.
	TS    int64  `json:"ts"`
	Lane  int16  `json:"lane"`
	Kind  string `json:"kind"`
	Group int32  `json:"group"`
	Arg   int64  `json:"arg"`
}

// sseBatch is one SSE data message: the new events since the last message
// and how many were dropped to keep the batch bounded.
type sseBatch struct {
	// Events are the batch's events in time order.
	Events []sseEvent `json:"events"`
	// Dropped counts events discarded because the client fell behind
	// the emission rate (bounded batch), for this batch only.
	Dropped int64 `json:"dropped,omitempty"`
}

// handleEvents streams the speculation event log as server-sent events:
// one JSON batch per poll interval containing the events newer than the
// previous batch. The stream is built from incremental lock-free
// snapshots, so attached clients never block the emitting engine; a
// client slower than the event rate loses oldest-first (counted in the
// batch's dropped field and the telemetry_sse_dropped_events_total
// counter). Query parameters: once=1 sends a single batch and closes;
// since=<ns> starts the cursor at the given timestamp instead of
// streaming the whole retained log.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	// Flush the headers now: a client attaching before the first event
	// must see the stream open immediately, not when a batch happens by.
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	once := r.URL.Query().Get("once") != ""
	var cursor int64 = -1 << 62
	if since := r.URL.Query().Get("since"); since != "" {
		fmt.Sscanf(since, "%d", &cursor)
	}

	s.sseClients.Add(1)
	defer s.sseClients.Add(-1)

	// Per-write deadline: a client that stops reading eventually blocks
	// our writes on its full TCP window; without a deadline that pins
	// this handler goroutine (and its poll loop) until the process exits.
	// SetWriteDeadline is best-effort — httptest recorders and exotic
	// wrappers don't support it, and an unsupported deadline just means
	// the old unbounded behaviour for that transport.
	rc := http.NewResponseController(w)
	deadline := func() { _ = rc.SetWriteDeadline(time.Now().Add(s.cfg.SSEWriteTimeout)) }
	disconnected := func() {
		s.sseDisconnects.Inc()
	}

	enc := json.NewEncoder(w)
	tick := time.NewTicker(s.cfg.SSEInterval)
	defer tick.Stop()
	for {
		snap := s.cfg.Observer.Tracer.Snapshot()
		batch := sseBatch{}
		for _, e := range snap {
			if e.TS > cursor {
				batch.Events = append(batch.Events, sseEvent{
					TS: e.TS, Lane: e.Lane, Kind: e.Kind.String(),
					Group: e.Group, Arg: e.Arg,
				})
			}
		}
		if n := len(batch.Events); n > s.cfg.SSEMaxBatch {
			batch.Dropped = int64(n - s.cfg.SSEMaxBatch)
			s.sseDropped.Add(batch.Dropped)
			batch.Events = batch.Events[n-s.cfg.SSEMaxBatch:]
		}
		if len(batch.Events) > 0 {
			cursor = batch.Events[len(batch.Events)-1].TS
		}
		if len(batch.Events) > 0 || once {
			deadline()
			if _, err := fmt.Fprint(w, "data: "); err != nil {
				disconnected()
				return
			}
			if err := enc.Encode(batch); err != nil {
				disconnected()
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				disconnected()
				return
			}
			flusher.Flush()
		}
		if once {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-tick.C:
		}
	}
}

// handleTrace serves the current event log as Chrome trace_event JSON —
// an on-demand flight-recorder dump of the retained rings.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="stats-trace.json"`)
	_ = trace.ChromeTrace(w, s.cfg.Observer.Tracer.Snapshot())
}

// handleSpans serves the reconstructed span trees as JSON. The server's
// incremental SpanFolder backs the view: each request folds only the
// events emitted since the last one, instead of re-deriving the whole
// forest from a full ring snapshot.
func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	doc := s.folder.Doc()
	doc.Emitted = s.cfg.Observer.Tracer.Emitted()
	doc.Dropped = s.cfg.Observer.Tracer.Dropped()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
