// Incremental span folding: the streaming counterpart of BuildSpans.
//
// BuildSpans refolds a whole tracer snapshot on every call — ~2.5 MB and
// 27k allocations per call on a loaded server (BENCH_pr4.json), paid by
// every /spans scrape. SpanFolder instead consumes the tracer's rings
// incrementally through obs.Tracer.Poll and maintains the per-group span
// trees in place: a warm Doc() call folds only the events emitted since
// the previous call, and a call with nothing new returns a cached
// document. Group accumulators are recycled through a sync.Pool and
// finished generations retire into a bounded ring of completed trees, so
// a folder's memory stays bounded no matter how long the engine runs —
// the same flight-recorder discipline as the tracer itself.
package telemetry

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// Folder bounds: a live folder keeps at most maxLiveGroups in-flight
// accumulators (the oldest is force-finalized past that) and retains the
// last completedRingCap finalized generation trees.
const (
	maxLiveGroups    = 4096
	completedRingCap = 256
)

// mark is one recorded instant of a group's lifecycle.
type mark struct {
	ts, arg int64
	ok      bool
}

// set records the event, overwriting an earlier mark (BuildSpans
// semantics: on time-sorted input the latest record wins).
func (m *mark) set(e *obs.Event) {
	m.ts, m.arg, m.ok = e.TS, e.Arg, true
}

// spanAcc accumulates one group generation's events until it is folded
// into a Span tree. Accumulators are recycled through spanAccPool.
type spanAcc struct {
	group              int32
	execStart, execEnd mark
	aux                mark
	valFirst, valEnd   mark
	squash, fallback   mark
	redos              []obs.Event
	matched, aborted   bool
	cpuCommitted       int64
	cpuWasted          int64
	firstTS, lastTS    int64
	seen               bool
	// span caches the generation's folded tree; nil means dirty. Trees
	// handed out in a SpanDoc are never mutated afterwards, so cached
	// pointers are safe to share across documents.
	span *Span
}

var spanAccPool = sync.Pool{New: func() any { return new(spanAcc) }}

// reset clears the accumulator for reuse, keeping the redo slice's
// backing array.
func (a *spanAcc) reset(group int32) {
	redos := a.redos[:0]
	*a = spanAcc{group: group, redos: redos}
}

// SpanFolder folds tracer events into per-group span trees incrementally.
// All methods are safe for concurrent use; the folder serializes on one
// mutex and never blocks Tracer.Emit (Poll reads the lock-free rings).
type SpanFolder struct {
	mu  sync.Mutex
	tr  *obs.Tracer
	cur obs.Cursor
	buf []obs.Event

	// split closes a group's generation out when its id is reused by a
	// later run (live folders); BuildSpans disables it to preserve the
	// one-accumulator-per-id semantics of whole-snapshot folding.
	split bool

	live      map[int32]*spanAcc
	completed []*Span // circular: oldest at compHead, compLen valid
	compHead  int
	compLen   int

	events      int
	schedEvents int
	dropped     int64

	// cached is the last assembled document, reused verbatim (modulo a
	// shallow copy) while no new event arrives; docDirty invalidates it.
	cached   *SpanDoc
	docDirty bool
}

// NewSpanFolder returns a live folder over the tracer (which may be nil:
// the folder then only folds what FoldBatch is fed).
func NewSpanFolder(tr *obs.Tracer) *SpanFolder {
	return &SpanFolder{
		tr:        tr,
		split:     true,
		live:      map[int32]*spanAcc{},
		completed: make([]*Span, completedRingCap),
		docDirty:  true,
	}
}

// Poll drains the tracer's newly published events into the folder. It is
// cheap when nothing happened and O(new events) otherwise.
func (f *SpanFolder) Poll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pollLocked()
}

// Dropped returns the events the folder knows it lost to ring
// wrap-around between polls.
func (f *SpanFolder) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

func (f *SpanFolder) pollLocked() {
	if f.tr == nil {
		return
	}
	f.buf = f.buf[:0]
	var d int64
	f.buf, d = f.tr.Poll(&f.cur, f.buf)
	f.dropped += d
	if len(f.buf) == 0 {
		return
	}
	f.foldBatchLocked(f.buf)
}

// FoldBatch folds a batch of events directly (no tracer involved), used
// by BuildSpans and tests. The batch is sorted by timestamp in place.
func (f *SpanFolder) FoldBatch(events []obs.Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.foldBatchLocked(events)
}

func (f *SpanFolder) foldBatchLocked(events []obs.Event) {
	// Poll delivers ring by ring; folding wants (stable) time order, the
	// order BuildSpans always established, so the within-batch fold is
	// insensitive to lane interleaving.
	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	for i := range events {
		f.fold(&events[i])
	}
}

// fold consumes one event.
func (f *SpanFolder) fold(e *obs.Event) {
	switch e.Kind {
	case obs.EvSteal, obs.EvLocalHit, obs.EvTaskFinish:
		f.schedEvents++
		f.docDirty = true
		return
	}
	f.events++
	f.docDirty = true

	switch e.Kind {
	case obs.EvLaneCPUCommitted, obs.EvLaneCPUWasted:
		// Attribution summaries are filed against the group but do not
		// stretch its span: they are emitted at resolution time, far
		// from the work they account for.
		a := f.acc(e.Group)
		if e.Kind == obs.EvLaneCPUCommitted {
			a.cpuCommitted += e.Arg
		} else {
			a.cpuWasted += e.Arg
		}
		a.span = nil
		return
	}

	a := f.acc(e.Group)
	if f.split {
		// A group id starting over means a new run reused it: the old
		// generation is complete — retire its tree and start fresh.
		switch e.Kind {
		case obs.EvGroupStart:
			if a.execStart.ok {
				f.finalize(a)
				a = f.acc(e.Group)
			}
		case obs.EvAuxProduced:
			if a.aux.ok || a.execStart.ok {
				f.finalize(a)
				a = f.acc(e.Group)
			}
		}
	}

	a.span = nil
	if !a.seen {
		a.firstTS, a.lastTS, a.seen = e.TS, e.TS, true
	} else {
		if e.TS < a.firstTS {
			a.firstTS = e.TS
		}
		if e.TS > a.lastTS {
			a.lastTS = e.TS
		}
	}

	switch e.Kind {
	case obs.EvGroupStart:
		a.execStart.set(e)
	case obs.EvGroupFinish:
		a.execEnd.set(e)
	case obs.EvAuxProduced:
		a.aux.set(e)
	case obs.EvValidateMismatch:
		if !a.valFirst.ok {
			a.valFirst.set(e)
		}
	case obs.EvRedo:
		a.redos = append(a.redos, *e)
		if !a.valFirst.ok {
			a.valFirst.set(e)
		}
	case obs.EvValidateMatch:
		a.matched = true
		if !a.valFirst.ok {
			a.valFirst.set(e)
		}
		a.valEnd.set(e)
	case obs.EvAbort:
		a.aborted = true
		if !a.valFirst.ok {
			a.valFirst.set(e)
		}
		a.valEnd.set(e)
	case obs.EvSquash:
		a.squash.set(e)
	case obs.EvFallback:
		a.fallback.set(e)
	}
}

// acc returns the live accumulator for the group, creating (and, past
// the live bound, evicting the stalest) as needed.
func (f *SpanFolder) acc(g int32) *spanAcc {
	a := f.live[g]
	if a == nil {
		a = spanAccPool.Get().(*spanAcc)
		a.reset(g)
		f.live[g] = a
		if f.split && len(f.live) > maxLiveGroups {
			f.evictStalest()
		}
	}
	return a
}

// evictStalest force-finalizes the live accumulator with the oldest last
// event — necessarily a stale partial (a healthy run's groups retire via
// generation close-out long before the bound bites).
func (f *SpanFolder) evictStalest() {
	var victim *spanAcc
	for _, a := range f.live {
		if !a.seen {
			continue
		}
		if victim == nil || a.lastTS < victim.lastTS {
			victim = a
		}
	}
	if victim != nil {
		f.finalize(victim)
	}
}

// finalize retires a generation: its tree (cached or freshly folded)
// enters the completed ring — evicting the oldest tree when full, which
// is never refolded again — and the accumulator returns to the pool.
func (f *SpanFolder) finalize(a *spanAcc) {
	sp := a.span
	if sp == nil {
		sp = a.fold()
	}
	if f.compLen < len(f.completed) {
		f.completed[(f.compHead+f.compLen)%len(f.completed)] = sp
		f.compLen++
	} else {
		f.completed[f.compHead] = sp
		f.compHead = (f.compHead + 1) % len(f.completed)
	}
	delete(f.live, a.group)
	spanAccPool.Put(a)
}

// Doc polls the tracer and returns the current span document. While no
// new event arrives the groups are not re-assembled: the previous
// document is returned (shallow-copied so callers may stamp the tracer
// totals without racing each other). Span trees are immutable once
// handed out.
func (f *SpanFolder) Doc() *SpanDoc {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pollLocked()
	if !f.docDirty && f.cached != nil {
		cp := *f.cached
		return &cp
	}
	doc := &SpanDoc{Events: f.events, SchedulerEvents: f.schedEvents}
	groups := make([]*Span, 0, f.compLen+len(f.live))
	for i := 0; i < f.compLen; i++ {
		groups = append(groups, f.completed[(f.compHead+i)%len(f.completed)])
	}
	for _, a := range f.live {
		if a.span == nil {
			a.span = a.fold()
		}
		groups = append(groups, a.span)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Group != groups[j].Group {
			return groups[i].Group < groups[j].Group
		}
		return groups[i].StartNS < groups[j].StartNS
	})
	for _, g := range groups {
		if g.Partial {
			doc.PartialGroups++
		}
	}
	doc.Groups = groups
	f.cached = doc
	f.docDirty = false
	cp := *doc
	return &cp
}

// fold builds the accumulator's Span tree — the per-group construction
// BuildSpans always performed, now run once per generation instead of
// once per snapshot per call.
func (a *spanAcc) fold() *Span {
	g := a.group
	root := &Span{
		Kind: SpanGroup, Group: g,
		StartNS: a.firstTS, EndNS: a.lastTS,
		CPUCommittedNS: a.cpuCommitted, CPUWastedNS: a.cpuWasted,
	}
	instant := func(kind string, m mark) *Span {
		return &Span{Kind: kind, Group: g, StartNS: m.ts, EndNS: m.ts, Arg: m.arg}
	}
	if a.aux.ok {
		root.Children = append(root.Children, instant(SpanAux, a.aux))
	}
	switch {
	case a.execStart.ok && a.execEnd.ok:
		root.Children = append(root.Children, &Span{
			Kind: SpanExec, Group: g,
			StartNS: a.execStart.ts, EndNS: a.execEnd.ts,
			DurNS: a.execEnd.ts - a.execStart.ts,
			Arg:   a.execEnd.arg,
		})
	case a.execStart.ok:
		// Finish evicted or still running: the span covers only the
		// observed start.
		sp := instant(SpanExec, a.execStart)
		sp.Partial = true
		root.Children = append(root.Children, sp)
		root.Partial = true
	case a.execEnd.ok:
		// Start evicted by ring wrap-around.
		sp := instant(SpanExec, a.execEnd)
		sp.Partial = true
		root.Children = append(root.Children, sp)
		root.Partial = true
	default:
		// No execution records at all: only marks survive.
		root.Partial = true
	}
	if a.valFirst.ok {
		sort.SliceStable(a.redos, func(i, j int) bool { return a.redos[i].TS < a.redos[j].TS })
		v := &Span{
			Kind: SpanValidate, Group: g,
			StartNS: a.valFirst.ts,
			Redos:   len(a.redos),
		}
		switch {
		case a.matched && len(a.redos) > 0:
			v.Outcome = "match-after-redo"
		case a.matched:
			v.Outcome = "match"
		case a.aborted:
			v.Outcome = "abort"
		default:
			v.Outcome = "unresolved"
			v.Partial = true
			root.Partial = true
		}
		if a.valEnd.ok {
			v.EndNS = a.valEnd.ts
			v.Arg = a.valEnd.arg
		} else {
			last := a.valFirst.ts
			if n := len(a.redos); n > 0 && a.redos[n-1].TS > last {
				last = a.redos[n-1].TS
			}
			v.EndNS = last
		}
		v.DurNS = v.EndNS - v.StartNS
		for i := range a.redos {
			v.Children = append(v.Children, &Span{
				Kind: SpanRedo, Group: g,
				StartNS: a.redos[i].TS, EndNS: a.redos[i].TS,
				Arg: a.redos[i].Arg,
			})
		}
		root.Children = append(root.Children, v)
	}
	if a.squash.ok {
		root.Children = append(root.Children, instant(SpanSquash, a.squash))
	}
	if a.fallback.ok {
		root.Children = append(root.Children, instant(SpanFallback, a.fallback))
	}
	switch {
	case a.aborted:
		root.Outcome = OutcomeAborted
	case a.squash.ok:
		root.Outcome = OutcomeSquashed
	case a.matched:
		root.Outcome = OutcomeValidated
	default:
		root.Outcome = OutcomeUnvalidated
	}
	root.DurNS = root.EndNS - root.StartNS
	sort.SliceStable(root.Children, func(i, j int) bool {
		return root.Children[i].StartNS < root.Children[j].StartNS
	})
	return root
}
