package telemetry

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// goldenLog is a hand-written speculation event log covering the span
// model's whole surface: a non-speculative group 0, a validated group with
// one redo, an aborted group with squash and fallback marks, and a group
// whose start record was evicted by ring wrap-around (truncated). Events
// are deliberately out of time order to exercise the sort.
func goldenLog() []obs.Event {
	return []obs.Event{
		// Group 2: aborted after two redos, then squash + fallback marks.
		{TS: 6100, Lane: obs.LaneCoord, Kind: obs.EvAbort, Group: 2},
		{TS: 600, Lane: 2, Kind: obs.EvAuxProduced, Group: 2, Arg: 4},
		{TS: 1400, Lane: 2, Kind: obs.EvGroupStart, Group: 2},
		{TS: 5400, Lane: 2, Kind: obs.EvGroupFinish, Group: 2, Arg: 0},
		{TS: 5800, Lane: obs.LaneCoord, Kind: obs.EvValidateMismatch, Group: 2},
		{TS: 5900, Lane: obs.LaneCoord, Kind: obs.EvRedo, Group: 2, Arg: 1},
		{TS: 6000, Lane: obs.LaneCoord, Kind: obs.EvRedo, Group: 2, Arg: 2},
		{TS: 6150, Lane: obs.LaneCoord, Kind: obs.EvSquash, Group: 2, Arg: 7},
		{TS: 6200, Lane: obs.LaneCoord, Kind: obs.EvFallback, Group: 2, Arg: 12},

		// Group 0: plain execution, never validated (group 0 never
		// speculates).
		{TS: 5000, Lane: 0, Kind: obs.EvGroupFinish, Group: 0, Arg: 10},
		{TS: 1000, Lane: 0, Kind: obs.EvGroupStart, Group: 0},

		// Group 1: validated on the second try.
		{TS: 500, Lane: 1, Kind: obs.EvAuxProduced, Group: 1, Arg: 4},
		{TS: 1200, Lane: 1, Kind: obs.EvGroupStart, Group: 1},
		{TS: 5200, Lane: 1, Kind: obs.EvGroupFinish, Group: 1, Arg: 8},
		{TS: 5300, Lane: obs.LaneCoord, Kind: obs.EvValidateMismatch, Group: 1},
		{TS: 5400, Lane: obs.LaneCoord, Kind: obs.EvRedo, Group: 1, Arg: 1},
		{TS: 5600, Lane: obs.LaneCoord, Kind: obs.EvValidateMatch, Group: 1},

		// Group 3: truncated by ring overwrite — only the finish survives.
		{TS: 7000, Lane: 3, Kind: obs.EvGroupFinish, Group: 3, Arg: 3},

		// Scheduler lane events: not part of the span model.
		{TS: 2000, Lane: 2, Kind: obs.EvSteal, Group: -1, Arg: 1},
		{TS: 2100, Lane: 2, Kind: obs.EvTaskFinish, Group: -1},
	}
}

const goldenRender = `spans: 4 groups (1 partial), 18 engine events, 2 scheduler events
g000 [t+1.00µs 4.00µs] unvalidated
  exec     4.00µs outputs=10
g001 [t+500ns 5.10µs] validated
  aux      @t+500ns window=4
  exec     4.00µs outputs=8
  validate 300ns match-after-redo redos=1
    redo #1 @t+5.40µs
g002 [t+600ns 5.60µs] aborted
  aux      @t+600ns window=4
  exec     4.00µs outputs=0
  validate 300ns abort redos=2
    redo #1 @t+5.90µs
    redo #2 @t+6.00µs
  squash   @t+6.15µs inputs=7
  fallback @t+6.20µs inputs=12
g003 [t+7.00µs 0ns] unvalidated (partial)
  exec     0ns outputs=3 (partial)
`

// TestBuildSpansGolden reconstructs the golden log and compares the
// rendered span forest against the expected tree, including the truncated
// (ring-overwritten) group 3 flagged partial.
func TestBuildSpansGolden(t *testing.T) {
	doc := BuildSpans(goldenLog())
	if got := SpanString(doc); got != goldenRender {
		t.Errorf("rendered spans mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenRender)
	}
	if doc.PartialGroups != 1 {
		t.Errorf("PartialGroups = %d, want 1", doc.PartialGroups)
	}
	if doc.Events != 18 || doc.SchedulerEvents != 2 {
		t.Errorf("Events=%d SchedulerEvents=%d, want 18/2", doc.Events, doc.SchedulerEvents)
	}
	outcomes := map[int32]string{0: OutcomeUnvalidated, 1: OutcomeValidated, 2: OutcomeAborted, 3: OutcomeUnvalidated}
	for _, g := range doc.Groups {
		if g.Outcome != outcomes[g.Group] {
			t.Errorf("group %d outcome = %q, want %q", g.Group, g.Outcome, outcomes[g.Group])
		}
	}
}

// TestBuildSpansDeterministic checks that reconstruction is insensitive to
// the snapshot's event order (the tracer merges lanes, but callers may
// feed saved logs in any order).
func TestBuildSpansDeterministic(t *testing.T) {
	log := goldenLog()
	rev := make([]obs.Event, len(log))
	for i, e := range log {
		rev[len(log)-1-i] = e
	}
	a, _ := json.Marshal(BuildSpans(log))
	b, _ := json.Marshal(BuildSpans(rev))
	if string(a) != string(b) {
		t.Errorf("reconstruction depends on input order:\n%s\nvs\n%s", a, b)
	}
}

// TestBuildSpansJSONRoundTrip ensures the /spans JSON document carries
// everything statstrace needs: unmarshalling it and rendering reproduces
// the live rendering exactly.
func TestBuildSpansJSONRoundTrip(t *testing.T) {
	doc := BuildSpans(goldenLog())
	blob, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanDoc
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if got := SpanString(&back); got != goldenRender {
		t.Errorf("round-tripped rendering mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenRender)
	}
}

// TestBuildSpansUnresolvedValidation covers a log cut off mid-validation:
// the boundary saw a mismatch and a redo but no terminal event, so the
// validate span is unresolved and partial, with timestamps covering only
// what was observed.
func TestBuildSpansUnresolvedValidation(t *testing.T) {
	doc := BuildSpans([]obs.Event{
		{TS: 100, Lane: 1, Kind: obs.EvGroupStart, Group: 1},
		{TS: 900, Lane: 1, Kind: obs.EvGroupFinish, Group: 1, Arg: 5},
		{TS: 1000, Lane: obs.LaneCoord, Kind: obs.EvValidateMismatch, Group: 1},
		{TS: 1100, Lane: obs.LaneCoord, Kind: obs.EvRedo, Group: 1, Arg: 1},
	})
	if len(doc.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(doc.Groups))
	}
	g := doc.Groups[0]
	if !g.Partial || g.Outcome != OutcomeUnvalidated {
		t.Errorf("group partial=%v outcome=%q, want partial unvalidated", g.Partial, g.Outcome)
	}
	var v *Span
	for _, c := range g.Children {
		if c.Kind == SpanValidate {
			v = c
		}
	}
	if v == nil {
		t.Fatal("no validate span")
	}
	if v.Outcome != "unresolved" || !v.Partial {
		t.Errorf("validate outcome=%q partial=%v, want unresolved partial", v.Outcome, v.Partial)
	}
	if v.StartNS != 1000 || v.EndNS != 1100 {
		t.Errorf("validate bounds [%d,%d], want [1000,1100] (observed events only)", v.StartNS, v.EndNS)
	}
	if doc.PartialGroups != 1 {
		t.Errorf("PartialGroups = %d, want 1", doc.PartialGroups)
	}
}

// TestBuildSpansEmpty keeps the degenerate cases stable.
func TestBuildSpansEmpty(t *testing.T) {
	doc := BuildSpans(nil)
	if len(doc.Groups) != 0 || doc.Events != 0 || doc.PartialGroups != 0 {
		t.Errorf("empty log produced %+v", doc)
	}
}
