package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/telemetry -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the golden file at path, or rewrites
// the file under -update.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestWaterfallGolden pins the waterfall rendering: the golden event log
// plus wasted-work attribution events, rendered as per-group bars, phase
// chains, waste shares and the critical-path footer.
func TestWaterfallGolden(t *testing.T) {
	log := append(goldenLog(),
		obs.Event{TS: 6300, Lane: obs.LaneCoord, Kind: obs.EvLaneCPUCommitted, Group: 1, Arg: 4000},
		obs.Event{TS: 6300, Lane: obs.LaneCoord, Kind: obs.EvLaneCPUWasted, Group: 2, Arg: 4600},
	)
	checkGolden(t, "testdata/waterfall.golden", WaterfallString(BuildSpans(log)))
}

// TestSignalsJSONGolden pins the /signals JSON shape: field names, the
// derived rates and the windowed quantiles, computed from a hand-built
// counter history under an injected clock.
func TestSignalsJSONGolden(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 10 * time.Second, Now: clk.now})
	sig.Report() // baseline sample at t=0

	clk.advance(2 * time.Second)
	o.Matches.Add(90)
	o.Mismatches.Add(10)
	o.Aborts.Add(10)
	o.Redos.Add(15)
	o.FallbackInputs.Add(40)
	o.SpecCommittedInputs.Add(760)
	o.GroupsFinished.Add(100)
	o.PanickedGroups.Add(2)
	o.GroupTimeouts.Add(1)
	o.BreakerDenied.Add(1)
	o.Steals.Add(25)
	o.LocalHits.Add(75)
	o.Commits.Add(300)
	for i := 0; i < 50; i++ {
		o.RoundsPerGroup.Observe(3)
	}
	o.LaneCPUCommitted.Add(9_000_000)
	o.LaneCPUWasted.Add(1_000_000)
	for i := 0; i < 95; i++ {
		o.ValidationLatencyNS.Observe(900)
	}
	for i := 0; i < 5; i++ {
		o.ValidationLatencyNS.Observe(60_000)
	}

	rep := sig.Report()
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/signals.golden", string(blob)+"\n")
}
