package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line of a Prometheus text exposition.
type PromSample struct {
	// Name is the sample's metric name (including _bucket/_sum/_count
	// suffixes for histogram series).
	Name string
	// Labels are the sample's label pairs (for this repository's
	// expositions, at most the histogram "le" label).
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// PromMetrics is a parsed exposition: samples in document order plus the
// per-metric TYPE and HELP metadata.
type PromMetrics struct {
	// Samples are every sample line, in order.
	Samples []PromSample
	// Types maps metric name to its declared TYPE.
	Types map[string]string
	// Help maps metric name to its HELP string.
	Help map[string]string
}

// Value returns the value of the unlabelled sample with the given name
// (0, false when absent).
func (m *PromMetrics) Value(name string) (float64, bool) {
	for _, s := range m.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// Buckets returns the cumulative histogram buckets of the metric as
// (le, count) pairs in document order, excluding +Inf.
func (m *PromMetrics) Buckets(name string) (les []float64, counts []float64) {
	for _, s := range m.Samples {
		if s.Name != name+"_bucket" {
			continue
		}
		le := s.Labels["le"]
		if le == "+Inf" {
			continue
		}
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			continue
		}
		les = append(les, v)
		counts = append(counts, s.Value)
	}
	return les, counts
}

// ParsePromText parses a Prometheus text exposition (version 0.0.4, the
// subset this repository emits: no escaping inside label values, integer
// and float sample values). It enforces the structural rules a scraper
// relies on — a TYPE line precedes its samples, histogram buckets are
// cumulative and ordered with a +Inf bucket equal to _count — and returns
// an error describing the first violation.
func ParsePromText(text string) (*PromMetrics, error) {
	m := &PromMetrics{Types: map[string]string{}, Help: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without metric name", ln+1)
			}
			m.Help[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := m.Types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			m.Types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		base := promBaseName(sample.Name)
		if _, ok := m.Types[base]; !ok {
			return nil, fmt.Errorf("line %d: sample %q precedes its TYPE line", ln+1, sample.Name)
		}
		m.Samples = append(m.Samples, sample)
	}
	if err := m.checkHistograms(); err != nil {
		return nil, err
	}
	return m, nil
}

// parsePromSample parses one `name{labels} value` line.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return s, fmt.Errorf("malformed labels in %q", line)
		}
		for _, pair := range strings.Split(rest[i+1:j], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			s.Labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("malformed value in %q: %w", line, err)
	}
	s.Value = v
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	return s, nil
}

// promBaseName strips the histogram series suffixes so a sample can be
// matched to its TYPE line.
func promBaseName(name string) string {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			return base
		}
	}
	return name
}

// checkHistograms verifies every declared histogram: buckets present,
// le values strictly increasing, cumulative counts non-decreasing, +Inf
// bucket present and equal to _count.
func (m *PromMetrics) checkHistograms() error {
	names := make([]string, 0, len(m.Types))
	for n, t := range m.Types {
		if t == "histogram" {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		var les []float64
		var counts []float64
		infCount, haveInf := 0.0, false
		for _, s := range m.Samples {
			if s.Name != n+"_bucket" {
				continue
			}
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", n)
			}
			if le == "+Inf" {
				infCount, haveInf = s.Value, true
				continue
			}
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %s: bad le %q", n, le)
			}
			les = append(les, v)
			counts = append(counts, s.Value)
		}
		if !haveInf {
			return fmt.Errorf("histogram %s: no +Inf bucket", n)
		}
		for i := 1; i < len(les); i++ {
			if les[i] <= les[i-1] {
				return fmt.Errorf("histogram %s: le not increasing (%v after %v)", n, les[i], les[i-1])
			}
			if counts[i] < counts[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative (%v after %v)", n, counts[i], counts[i-1])
			}
		}
		if len(counts) > 0 && counts[len(counts)-1] > infCount {
			return fmt.Errorf("histogram %s: last bucket %v exceeds +Inf %v", n, counts[len(counts)-1], infCount)
		}
		count, ok := m.Value(n + "_count")
		if !ok {
			return fmt.Errorf("histogram %s: missing _count", n)
		}
		if count != infCount {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", n, infCount, count)
		}
		if _, ok := m.Value(n + "_sum"); !ok {
			return fmt.Errorf("histogram %s: missing _sum", n)
		}
	}
	return nil
}
