package telemetry

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock drives Health deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestHealthFlipsAndRecovers walks the /healthz model through the
// acceptance scenario: healthy speculation, then a fault-injected
// mismatch/abort storm flips ok → aborting, and once the storm ages out
// of the sliding window the verdict recovers to ok.
func TestHealthFlipsAndRecovers(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: 10 * time.Second, Now: clk.now})

	// Healthy traffic: matches and speculative commits only.
	o.Matches.Add(100)
	o.SpecCommittedInputs.Add(1000)
	rep := h.Eval()
	if rep.State != "ok" {
		t.Fatalf("healthy traffic judged %q, want ok: %+v", rep.State, rep)
	}

	// Storm: most boundaries mismatch, many abort, fallback kicks in.
	clk.advance(2 * time.Second)
	o.Matches.Add(20)
	o.Mismatches.Add(80)
	o.Aborts.Add(30)
	o.FallbackInputs.Add(500)
	rep = h.Eval()
	if rep.State != "aborting" {
		t.Fatalf("storm judged %q, want aborting: %+v", rep.State, rep)
	}
	if rep.AbortRate < 0.25 {
		t.Errorf("storm abort rate %.2f, want >= 0.25", rep.AbortRate)
	}

	// Quiet traffic resumes; the storm sample must age out of the window
	// and the verdict return to ok (passing through degraded while the
	// storm still straddles the window is fine).
	sawOK := false
	for i := 0; i < 15; i++ {
		clk.advance(1 * time.Second)
		o.Matches.Add(10)
		o.SpecCommittedInputs.Add(100)
		rep = h.Eval()
		if rep.State == "ok" {
			sawOK = true
		}
	}
	if !sawOK || rep.State != "ok" {
		t.Fatalf("never recovered: final state %q (%+v)", rep.State, rep)
	}
}

// TestHealthDegradedOnMismatchPressure: high first-try rejection without
// aborts is a warning, not an outage — degraded, not aborting.
func TestHealthDegradedOnMismatchPressure(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: 10 * time.Second, Now: clk.now})

	h.Eval() // baseline
	clk.advance(time.Second)
	o.Matches.Add(10)
	o.Mismatches.Add(8)
	rep := h.Eval()
	if rep.State != "degraded" {
		t.Fatalf("mismatch pressure judged %q, want degraded: %+v", rep.State, rep)
	}
	if rep.MismatchRate < 0.5 {
		t.Errorf("mismatch rate %.2f, want >= 0.5", rep.MismatchRate)
	}
}

// TestHealthDegradedOnFallbackTrickle: a small fallback share degrades
// even when every observed validation matches.
func TestHealthDegradedOnFallbackTrickle(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: 10 * time.Second, Now: clk.now})

	h.Eval()
	clk.advance(time.Second)
	o.Matches.Add(100)
	o.SpecCommittedInputs.Add(900)
	o.FallbackInputs.Add(100) // 10% of committed inputs came from fallback
	rep := h.Eval()
	if rep.State != "degraded" {
		t.Fatalf("fallback trickle judged %q, want degraded: %+v", rep.State, rep)
	}
}

// TestHealthMinValidations: below the validation floor the model never
// judges rates (a single unlucky boundary must not page anyone).
func TestHealthMinValidations(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: 10 * time.Second, MinValidations: 50, Now: clk.now})

	h.Eval()
	clk.advance(time.Second)
	o.Matches.Add(1)
	o.Mismatches.Add(1)
	o.Aborts.Add(1)
	rep := h.Eval()
	if rep.State != "ok" {
		t.Fatalf("2 validations judged %q with MinValidations=50, want ok: %+v", rep.State, rep)
	}
}

// TestHealthCounterReset: a fresh observer behind the same model (counter
// regression) must clamp deltas to zero, not panic or go negative.
func TestHealthCounterReset(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: 10 * time.Second, Now: clk.now})

	o.Matches.Add(100)
	h.Eval()
	clk.advance(time.Second)
	// Swap in a fresh observer's counters by building a new Health over a
	// new observer but replaying the old samples is not possible from
	// outside; instead simulate regression via a second model sharing the
	// first sample. The guard lives in Eval's delta closure: feed a
	// sample where counters went backwards by evaluating against the
	// original baseline after only smaller increments on a new observer.
	o2 := obs.NewObserver(1, 64)
	h.sig.o = o2 // counters all below the baseline sample now
	rep := h.Eval()
	if rep.State != "ok" || rep.Validations != 0 {
		t.Fatalf("counter reset judged %q with %d validations, want ok/0: %+v",
			rep.State, rep.Validations, rep)
	}
}

// TestHealthSampleBound: pounding Eval far past maxSignalSamples must keep
// the ring bounded (pairwise collapse) without losing window coverage.
func TestHealthSampleBound(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h := NewHealth(o, HealthConfig{Window: time.Hour, Now: clk.now})

	for i := 0; i < 4*maxSignalSamples; i++ {
		clk.advance(time.Millisecond)
		o.Matches.Inc()
		h.Eval()
	}
	h.sig.mu.Lock()
	n := len(h.sig.samples)
	h.sig.mu.Unlock()
	if n > maxSignalSamples+1 {
		t.Fatalf("sample ring grew to %d, bound is %d", n, maxSignalSamples)
	}
	rep := h.Eval()
	if rep.Validations == 0 {
		t.Fatal("collapse lost the window's validations")
	}
}
