package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TestSignalsWindowedRates: the report's rates come from window deltas,
// not lifetime totals — pre-window history must not leak in.
func TestSignalsWindowedRates(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 10 * time.Second, Now: clk.now})

	// Ancient history: a storm that must age out.
	o.Aborts.Add(1000)
	o.Matches.Add(1000)
	sig.Report()

	// Move past the window, then record healthy traffic only.
	clk.advance(30 * time.Second)
	sig.Report() // baseline inside the new window
	clk.advance(2 * time.Second)
	o.Matches.Add(80)
	o.Mismatches.Add(20)
	o.Redos.Add(30)
	o.LaneCPUCommitted.Add(900)
	o.LaneCPUWasted.Add(100)
	rep := sig.Report()

	if rep.Validations != 80 {
		t.Errorf("windowed validations = %d, want 80 (lifetime history leaked)", rep.Validations)
	}
	if rep.AbortRate != 0 {
		t.Errorf("abort rate = %v, want 0 — the old storm is outside the window", rep.AbortRate)
	}
	if rep.MismatchRate != 0.25 {
		t.Errorf("mismatch rate = %v, want 0.25", rep.MismatchRate)
	}
	if rep.RedoRate != 0.375 {
		t.Errorf("redo rate = %v, want 0.375", rep.RedoRate)
	}
	if rep.WastedWorkRatio != 0.1 {
		t.Errorf("wasted-work ratio = %v, want 0.1", rep.WastedWorkRatio)
	}
}

// TestSignalsQuantilesAreWindowed: validation latency quantiles must come
// from the window's bucket deltas — a slow pre-window tail cannot poison
// the current p99.
func TestSignalsQuantilesAreWindowed(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 10 * time.Second, Now: clk.now})

	for i := 0; i < 100; i++ {
		o.ValidationLatencyNS.Observe(1 << 20) // ~1ms tail, old
	}
	sig.Report()
	clk.advance(30 * time.Second) // tail ages out
	sig.Report()
	clk.advance(time.Second)
	for i := 0; i < 100; i++ {
		o.ValidationLatencyNS.Observe(1000)
	}
	rep := sig.Report()
	if rep.ValidationP99NS >= 1<<20 {
		t.Errorf("windowed p99 = %dns still reflects the aged-out tail", rep.ValidationP99NS)
	}
	if rep.ValidationP50NS > 2047 {
		t.Errorf("windowed p50 = %dns, want within the 1µs bucket", rep.ValidationP50NS)
	}

	// Lifetime quantile still sees the tail — proving the report's number
	// is genuinely windowed, not the histogram's own.
	if o.ValidationLatencyNS.Quantile(0.99) < 1<<20 {
		t.Fatal("lifetime p99 lost the tail; test premise broken")
	}
}

// TestSignalsRecovery: after a storm, every derived rate must return to
// zero once the storm's samples age out of the window.
func TestSignalsRecovery(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 5 * time.Second, Now: clk.now})

	sig.Report()
	clk.advance(time.Second)
	o.Aborts.Add(50)
	o.Matches.Add(50)
	o.FallbackInputs.Add(500)
	o.LaneCPUWasted.Add(1e6)
	if rep := sig.Report(); rep.AbortRate != 0.5 {
		t.Fatalf("storm abort rate = %v, want 0.5", rep.AbortRate)
	}

	var rep SignalsReport
	for i := 0; i < 10; i++ {
		clk.advance(time.Second)
		o.Matches.Add(10)
		rep = sig.Report()
	}
	if rep.AbortRate != 0 || rep.FallbackRate != 0 || rep.WastedWorkRatio != 0 {
		t.Errorf("rates did not recover after the storm aged out: %+v", rep)
	}
	if rep.Validations == 0 {
		t.Error("recovered window lost its healthy validations")
	}
}

// TestSignalsBreakerSnapshot: a configured breaker's state rides along on
// every report.
func TestSignalsBreakerSnapshot(t *testing.T) {
	o := obs.NewObserver(1, 64)
	br := core.NewBreaker(core.BreakerConfig{})
	sig := NewSignals(o, SignalsConfig{Window: time.Second, Breaker: br})
	rep := sig.Report()
	if rep.Breaker == nil {
		t.Fatal("report carries no breaker snapshot")
	}
}

// TestSignalsGauges: Register exposes the last report's rates through the
// registry without advancing the window.
func TestSignalsGauges(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 10 * time.Second, Now: clk.now})
	sig.Register(o.Reg)

	sig.Report()
	clk.advance(time.Second)
	o.Matches.Add(3)
	o.Aborts.Add(1)
	sig.Report()

	text := o.Reg.Text()
	for _, want := range []string{
		"signals_abort_rate_ppm 250000",
		"signals_window_validations 4",
		"signals_wasted_work_ratio_ppm 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHealthOverSharedSignals: /healthz built over a shared aggregator
// judges the same window /signals reports — and Judge does not advance
// the window a second time.
func TestHealthOverSharedSignals(t *testing.T) {
	o := obs.NewObserver(1, 64)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	sig := NewSignals(o, SignalsConfig{Window: 10 * time.Second, Now: clk.now})
	h := NewHealthOver(sig, HealthConfig{Window: 10 * time.Second, Now: clk.now})

	sig.Report()
	clk.advance(time.Second)
	o.Matches.Add(10)
	o.Aborts.Add(10)
	rep := sig.Report()
	hr := h.Judge(rep)
	if hr.State != "aborting" {
		t.Fatalf("judged %q over 50%% aborts, want aborting: %+v", hr.State, hr)
	}
	if hr.Validations != rep.Validations || hr.AbortRate != rep.AbortRate {
		t.Errorf("verdict (%+v) diverged from the signals report (%+v)", hr, rep)
	}
}
