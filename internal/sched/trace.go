package sched

// The trace format: a recorded schedule is a header plus one line per
// admission, compact enough to check into testdata/schedules/ and diff by
// eye. Any failing exploration run serializes to this format and replays
// byte-for-byte with NewReplay, so a discovered interleaving bug becomes a
// permanent deterministic regression test.
//
//	# stats schedule trace v1
//	seed 51966
//	controller random
//	note squash races group 3 mid-step
//	y aux 0
//	c steal-victim -2 4 1
//
// `y <point> <lane>` is a yield admission; `c <point> <lane> <n> <choice>`
// is a decision admission with its domain size and recorded outcome.

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"strings"
)

// Kind distinguishes trace entries.
type Kind uint8

// The two entry kinds: serialization-only yields and n-way decisions.
const (
	KindYield Kind = iota
	KindChoose
)

// Entry is one recorded admission.
type Entry struct {
	Kind  Kind
	Point Point
	Lane  int
	// N and Choice are the decision domain size and outcome (KindChoose
	// only; zero for yields).
	N      int
	Choice int
}

// String renders the entry in the trace format's line syntax.
func (e Entry) String() string {
	if e.Kind == KindChoose {
		return fmt.Sprintf("c %s %d %d %d", e.Point, e.Lane, e.N, e.Choice)
	}
	return fmt.Sprintf("y %s %d", e.Point, e.Lane)
}

// Trace is a recorded schedule: every admission the controller made, in
// order, plus the provenance needed to regenerate or label it.
type Trace struct {
	// Seed is the recording controller's seed.
	Seed uint64
	// Controller names the controller that produced the recording
	// ("random", "pct", "replay").
	Controller string
	// Note is a free-form label (the failing workload and mix, say).
	Note string
	// Entries are the admissions in schedule order.
	Entries []Entry
}

// Hash returns a stable 64-bit fingerprint of the decision sequence, used
// by the exploration harness to count distinct interleavings.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range t.Entries {
		buf[0] = byte(e.Kind)
		buf[1] = byte(e.Point)
		buf[2] = byte(e.Lane)
		buf[3] = byte(e.Lane >> 8)
		buf[4] = byte(e.N)
		buf[5] = byte(e.Choice)
		buf[6] = byte(e.Choice >> 8)
		buf[7] = byte(int8(e.Lane >> 16))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Equal reports whether two traces record the same decision sequence
// (provenance fields are ignored).
func (t *Trace) Equal(o *Trace) bool {
	if len(t.Entries) != len(o.Entries) {
		return false
	}
	for i := range t.Entries {
		if t.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return true
}

// Encode writes the trace in the textual schedule format.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# stats schedule trace v1")
	fmt.Fprintf(bw, "seed %d\n", t.Seed)
	if t.Controller != "" {
		fmt.Fprintf(bw, "controller %s\n", t.Controller)
	}
	if t.Note != "" {
		fmt.Fprintf(bw, "note %s\n", t.Note)
	}
	for _, e := range t.Entries {
		fmt.Fprintln(bw, e.String())
	}
	return bw.Flush()
}

// Decode parses a trace in the textual schedule format.
func Decode(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		f := strings.Fields(s)
		switch f[0] {
		case "seed":
			if len(f) != 2 {
				return nil, fmt.Errorf("sched: line %d: malformed seed", line)
			}
			v, err := strconv.ParseUint(f[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %v", line, err)
			}
			t.Seed = v
		case "controller":
			if len(f) == 2 {
				t.Controller = f[1]
			}
		case "note":
			t.Note = strings.TrimSpace(strings.TrimPrefix(s, "note"))
		case "y":
			if len(f) != 3 {
				return nil, fmt.Errorf("sched: line %d: malformed yield", line)
			}
			p, ok := ParsePoint(f[1])
			if !ok {
				return nil, fmt.Errorf("sched: line %d: unknown point %q", line, f[1])
			}
			lane, err := strconv.Atoi(f[2])
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: %v", line, err)
			}
			t.Entries = append(t.Entries, Entry{Kind: KindYield, Point: p, Lane: lane})
		case "c":
			if len(f) != 5 {
				return nil, fmt.Errorf("sched: line %d: malformed choice", line)
			}
			p, ok := ParsePoint(f[1])
			if !ok {
				return nil, fmt.Errorf("sched: line %d: unknown point %q", line, f[1])
			}
			lane, err1 := strconv.Atoi(f[2])
			n, err2 := strconv.Atoi(f[3])
			choice, err3 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("sched: line %d: malformed choice operands", line)
			}
			t.Entries = append(t.Entries, Entry{Kind: KindChoose, Point: p, Lane: lane, N: n, Choice: choice})
		default:
			return nil, fmt.Errorf("sched: line %d: unknown directive %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile serializes the trace to path (0644).
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
