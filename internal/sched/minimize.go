package sched

// Minimize is the schedule-shrinking unit: given a failing trace and a
// predicate that replays a candidate trace and reports whether the original
// failure still reproduces, it delta-debugs (ddmin) the entry sequence down
// to a locally minimal schedule. Replay semantics make deletion sound —
// entries removed from the trace simply relax ordering constraints (the
// affected admissions run unconstrained) rather than wedging the run — so
// the minimized trace is a strictly weaker schedule that still provokes
// the bug, which is what a human wants to read when debugging.

// Minimize returns a 1-minimal subsequence of t.Entries that still
// satisfies fails. fails must be deterministic (replay-driven); it is
// never called on the empty candidate unless t itself is empty, and the
// original trace is returned unchanged if it does not fail. The result
// shares no entry storage with t.
func Minimize(t *Trace, fails func(*Trace) bool) *Trace {
	cur := append([]Entry(nil), t.Entries...)
	mk := func(es []Entry) *Trace {
		return &Trace{
			Seed:       t.Seed,
			Controller: t.Controller,
			Note:       t.Note,
			Entries:    append([]Entry(nil), es...),
		}
	}
	if len(cur) == 0 || !fails(mk(cur)) {
		return mk(cur)
	}

	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false

		// Try removing each chunk (complement test first: keeping the
		// complement is the reduction ddmin cares about at n=2 too).
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Entry, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && fails(mk(cand)) {
				cur = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if reduced {
			continue
		}
		if n >= len(cur) {
			break // 1-minimal: no single entry can be removed
		}
		n = min(2*n, len(cur))
	}
	return mk(cur)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
