package sched

// Replay drives execution from a recorded decision trace: admissions are
// granted in exactly the recorded order, and Choose points return the
// recorded outcomes, so a run whose behaviour is a function of its
// admission sequence (which the gate's serialization guarantees at yield
// granularity) reproduces the recording decision-for-decision.
//
// Robustness over strictness: a replay must never hang even when the code
// under test has drifted from the recording. Three escape hatches apply,
// each observable so tests can assert a replay was exact:
//
//   - Unconstrained admission: a lane whose (kind, point, lane) has no
//     remaining entries in the trace is admitted immediately, outside the
//     forced order. This is what makes trace minimization meaningful —
//     deleting entries relaxes ordering constraints instead of wedging
//     the run — and is not counted as a divergence.
//   - Stall resynchronization: when the next recorded entry's lane never
//     arrives (the execution diverged), parked lanes force-admit after
//     the stall timeout and the replay skips the entry it was stuck on.
//     Counted in Divergences.
//   - Fallback decisions: a Choose admitted out of order (or with a
//     different domain size) returns a deterministic seeded value rather
//     than the recorded one. Counted in Divergences.

// Replay is a Controller that forces a recorded schedule. Build with
// NewReplay; retrieve fidelity counters from Divergences and Remaining.
type Replay struct {
	*Gate
}

// replayPicker admits waiters in recorded order.
type replayPicker struct {
	entries   []Entry
	pos       int
	remaining map[entryKey]int
	diverged  int
	fallback  *splitmix
}

// NewReplay returns a controller that replays t. Options (recording, the
// stall timeout) apply as for the generative controllers; recording a
// replay and comparing the re-recorded trace to the original is the
// standard way to assert a replay was exact.
func NewReplay(t *Trace, opts ...Option) *Replay {
	p := &replayPicker{
		entries:   append([]Entry(nil), t.Entries...),
		remaining: make(map[entryKey]int),
		fallback:  newSplitmix(t.Seed ^ 0x5EED),
	}
	for _, e := range p.entries {
		p.remaining[entryKey{kind: e.Kind, point: e.Point, lane: e.Lane}]++
	}
	g := newGate(p, t.Seed, opts)
	if g.trace != nil {
		g.trace.Controller = "replay"
	}
	return &Replay{Gate: g}
}

// Divergences reports how many admissions departed from the recorded
// schedule (stall resynchronizations plus fallback decisions). Zero means
// the replay was exact.
func (r *Replay) Divergences() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.p.(*replayPicker)
	return p.diverged + r.stalled
}

// Remaining reports how many recorded entries were never consumed — zero
// when the replayed execution exercised the whole schedule.
func (r *Replay) Remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.p.(*replayPicker)
	return len(p.entries) - p.pos
}

func (*replayPicker) name() string { return "replay" }

// pick admits the waiter matching the next recorded entry, or holds until
// it arrives.
func (p *replayPicker) pick(g *Gate) int {
	if p.pos >= len(p.entries) {
		// Past the recording: admit in arrival order.
		if len(g.waiting) > 0 {
			return 0
		}
		return -1
	}
	e := p.entries[p.pos]
	for i, w := range g.waiting {
		if w.kind == e.Kind && w.point == e.Point && w.lane == e.Lane {
			p.consume()
			return i
		}
	}
	return -1 // hold for the recorded lane's arrival
}

// consume advances past the current entry.
func (p *replayPicker) consume() {
	e := p.entries[p.pos]
	p.remaining[entryKey{kind: e.Kind, point: e.Point, lane: e.Lane}]--
	p.pos++
}

// choice returns the recorded outcome when this admission consumed its
// entry in order; otherwise a deterministic fallback. An unconstrained
// admission (no remaining entries for the key — a minimized trace) takes
// the fallback without counting as a divergence.
func (p *replayPicker) choice(g *Gate, w *waiter) int {
	// The entry consumed immediately before this admission is at pos-1
	// when pick matched it; verify it describes this waiter.
	if p.pos > 0 {
		e := p.entries[p.pos-1]
		if e.Kind == KindChoose && e.Point == w.point && e.Lane == w.lane {
			if e.N == w.n {
				return e.Choice
			}
			p.diverged++
			return int(p.fallback.next() % uint64(w.n))
		}
	}
	if p.remaining[w.key()] > 0 {
		p.diverged++ // out-of-order admission of a constrained choice
	}
	return int(p.fallback.next() % uint64(w.n))
}

// admitFreely grants immediate admission to waiters the trace has no
// remaining constraint for.
func (p *replayPicker) admitFreely(_ *Gate, w *waiter) bool {
	return p.remaining[w.key()] == 0
}

// onStall resynchronizes after a forced admission: skip the entry the
// schedule was stuck on (the diverged execution will never produce it in
// order) and consume one matching entry for the force-admitted waiter so
// its remaining-count stays aligned.
func (p *replayPicker) onStall(_ *Gate, w *waiter) {
	if p.pos < len(p.entries) {
		p.consume()
	}
	if k := w.key(); p.remaining[k] > 0 {
		p.remaining[k]--
	}
}
