// Package sched is the engine's controlled scheduler: it makes every
// nondeterministic decision point in internal/core and internal/pool
// injectable, so adversarial interleavings of aux production, validation,
// redo, abort, squash, fallback and work-stealing can be explored
// systematically (dejafu-style) instead of waiting for the OS to produce
// them under -race.
//
// The model is cooperative serialization. Participants — the engine
// coordinator, each speculative group lane, and (for decision points only)
// the pool's workers — announce themselves at yield points. A Controller
// admits one participant at a time: the admitted lane runs to its next
// yield point, parks, and the controller picks the next runnable lane.
// Because cross-lane-visible writes happen before the writer's next yield
// and reads happen after the reader's admission, the gate's mutex orders
// them, and a run's behaviour at yield granularity is a pure function of
// the admission sequence. That sequence is the schedule: recording it
// yields a trace (see Trace) and replaying the trace reproduces the run
// decision-for-decision.
//
// Three controllers are provided:
//
//   - Random: a seeded random walk over the serialized schedule space —
//     each admission picks uniformly among the parked lanes.
//   - PCT: priority-based exploration in the style of probabilistic
//     concurrency testing — lanes get seeded priorities, the
//     highest-priority parked lane always runs, and a configurable number
//     of priority-change points demote the front-runner at seeded steps.
//   - Replay: drives execution from a recorded decision trace, admitting
//     each yield in exactly the recorded order, so any failing exploration
//     run becomes a permanent deterministic regression test.
//
// A nil Controller disables everything: the engine's yield points cost a
// single branch (the same discipline as core.Options.Obs), so shipping
// code pays nothing for being explorable.
package sched

import (
	"sync"
	"time"
)

// Point identifies a yield or decision point in the engine or scheduler.
type Point uint8

// The instrumented decision points. Yield points serialize control flow;
// Choose points additionally pick one of n alternatives.
const (
	// PointGroupStart is a speculative group lane beginning execution.
	PointGroupStart Point = iota
	// PointGroupStep is a group lane about to process its next input
	// (and then inspect the abort flag).
	PointGroupStep
	// PointGroupFinish is a group lane publishing its execution results.
	PointGroupFinish
	// PointAux is the coordinator about to produce one group's
	// speculative start state.
	PointAux
	// PointValidate is the coordinator about to validate one boundary.
	PointValidate
	// PointRedo is the coordinator about to re-execute a group suffix.
	PointRedo
	// PointSquash is the coordinator having just squashed a group range
	// (the abort flags are already set when this yield is reached).
	PointSquash
	// PointFallback is the coordinator entering the sequential fallback.
	PointFallback
	// PointResume is a lane re-entering the schedule after a real
	// blocking operation (Controller.Unblock).
	PointResume
	// PointBreakerAllow is the coordinator about to ask the circuit
	// breaker for speculation admission.
	PointBreakerAllow
	// PointBreakerRecord is the coordinator about to record a run
	// outcome with the circuit breaker.
	PointBreakerRecord
	// PointTimeoutCheck is a Choose point (n=2) a deadlined group lane
	// consults each step: 1 forces the deadline expired, 0 defers to the
	// real clock. Controllers return 0 unless configured to force
	// timeouts (WithForcedTimeouts) or replaying a trace that did.
	PointTimeoutCheck
	// PointStealVictim is a Choose point (n = shard count) a pool worker
	// consults for the victim-sweep start offset.
	PointStealVictim
	// PointPopOrSteal is a Choose point (n=2) a pool worker consults
	// before dispatch: 1 attempts a steal before its own deque's pop.
	PointPopOrSteal
	// PointReserve is a reservation lane about to write-min its input's
	// slot footprint into the round's reservation table
	// (core.ProtocolReservations).
	PointReserve
	// PointReserveCheck is a reservation lane about to check whether its
	// input still holds every slot it reserved — and, on success, run the
	// compute from the round's snapshot.
	PointReserveCheck
	// PointCommit is the reservations coordinator about to merge a
	// round's winners into the committed state in input order.
	PointCommit

	numPoints // sentinel, keep last
)

// pointNames are the stable wire names used by the trace format.
var pointNames = [numPoints]string{
	PointGroupStart:    "group-start",
	PointGroupStep:     "group-step",
	PointGroupFinish:   "group-finish",
	PointAux:           "aux",
	PointValidate:      "validate",
	PointRedo:          "redo",
	PointSquash:        "squash",
	PointFallback:      "fallback",
	PointResume:        "resume",
	PointBreakerAllow:  "breaker-allow",
	PointBreakerRecord: "breaker-record",
	PointTimeoutCheck:  "timeout-check",
	PointStealVictim:   "steal-victim",
	PointPopOrSteal:    "pop-or-steal",
	PointReserve:       "reserve",
	PointReserveCheck:  "reserve-check",
	PointCommit:        "commit",
}

// String returns the point's stable wire name.
func (p Point) String() string {
	if int(p) < len(pointNames) {
		return pointNames[p]
	}
	return "unknown"
}

// ParsePoint inverts String.
func ParsePoint(s string) (Point, bool) {
	for i, n := range pointNames {
		if n == s {
			return Point(i), true
		}
	}
	return 0, false
}

// Controller makes the engine's nondeterministic decisions. All methods
// are safe for concurrent use; Yield and Choose may block the caller to
// force an interleaving. Lane identifiers partition the participants:
// the engine coordinator uses its run's lane base, group j uses base+1+j,
// and pool workers use negative lanes (worker i is lane -(i+1)), so the
// namespaces never collide.
type Controller interface {
	// Yield parks the calling lane until the controller schedules it.
	Yield(p Point, lane int)
	// Choose parks like Yield and then picks one of n alternatives
	// (0 <= result < n). n must be >= 1.
	Choose(p Point, lane, n int) int
	// Block announces that the lane is about to block on a real
	// synchronization (channel receive, WaitGroup) and must not be
	// waited for; Unblock re-enters the schedule afterwards.
	Block(lane int)
	// Unblock re-admits a lane after Block. It may block the caller.
	Unblock(lane int)
	// Done retires the lane from the schedule. Done is idempotent; a
	// retired lane may re-register by yielding again.
	Done(lane int)
}

// waiter is one parked lane.
type waiter struct {
	kind  Kind
	point Point
	lane  int
	n     int
	ch    chan int // admission delivers the Choose value (0 for yields)
}

// key is the identity replay matches admissions by.
func (w *waiter) key() entryKey {
	return entryKey{kind: w.kind, point: w.point, lane: w.lane}
}

type entryKey struct {
	kind  Kind
	point Point
	lane  int
}

// picker selects the next waiter to admit: an index into g.waiting, or -1
// to hold the schedule until another arrival (Replay waiting for the next
// recorded lane). Called with g.mu held.
type picker interface {
	pick(g *Gate) int
	// choice resolves a Choose admission's value. Called with g.mu held.
	choice(g *Gate, w *waiter) int
	name() string
}

// Gate is the serializing scheduler core shared by the Random, PCT and
// Replay controllers: at most one participant is admitted ("active") at a
// time, everyone else parks, and the picker chooses who runs next.
type Gate struct {
	mu       sync.Mutex
	p        picker
	active   int          // admitted participants not yet back at the gate
	lanes    map[int]bool // lane -> currently active
	expected map[int]bool // announced lanes not yet seen at the gate
	waiting  []*waiter
	seq      int // admissions so far

	record  bool
	trace   *Trace
	stall   time.Duration
	stalled int // force-admissions after a stall timeout

	seed uint64
	prng *splitmix

	// forceTimeoutRate is the probability a PointTimeoutCheck choice
	// returns 1 (deadline forced expired) under Random/PCT.
	forceTimeoutRate float64
}

// Option configures a controller.
type Option func(*Gate)

// WithRecording makes the controller record every admission into a Trace
// retrievable via TraceCopy.
func WithRecording() Option {
	return func(g *Gate) { g.record = true }
}

// WithStallTimeout bounds how long a parked lane waits before force-
// admitting itself (counted in Stalls). The default is 2s; raise it for
// heavily loaded CI machines, lower it for fast divergence detection.
func WithStallTimeout(d time.Duration) Option {
	return func(g *Gate) {
		if d > 0 {
			g.stall = d
		}
	}
}

// WithForcedTimeouts makes Random and PCT controllers answer the
// PointTimeoutCheck choice with "expired" at the given per-step rate,
// so group-deadline interleavings are explorable without real clocks.
func WithForcedTimeouts(rate float64) Option {
	return func(g *Gate) { g.forceTimeoutRate = rate }
}

// newGate builds the shared core.
func newGate(p picker, seed uint64, opts []Option) *Gate {
	g := &Gate{
		p:        p,
		lanes:    make(map[int]bool),
		expected: make(map[int]bool),
		stall:    2 * time.Second,
		seed:     seed,
		prng:     newSplitmix(seed),
	}
	for _, o := range opts {
		o(g)
	}
	if g.record {
		g.trace = &Trace{Seed: seed, Controller: p.name()}
	}
	return g
}

// NewRandom returns a seeded random-walk controller: every admission
// picks uniformly among the parked lanes.
func NewRandom(seed uint64, opts ...Option) *Gate {
	return newGate(&randomPicker{}, seed, opts)
}

// NewPCT returns a PCT-style priority controller: lanes receive seeded
// priorities on first sight, the highest-priority parked lane is always
// admitted, and depth-1 priority-change points (at seeded admission
// indices below horizon) demote the current front-runner. depth < 2
// degenerates to strict priority scheduling.
func NewPCT(seed uint64, depth, horizon int, opts ...Option) *Gate {
	if horizon < 1 {
		horizon = 1024
	}
	p := &pctPicker{prio: make(map[int]int64), change: make(map[int]bool)}
	ps := newSplitmix(seed ^ 0x9C700C7)
	for i := 1; i < depth; i++ {
		p.change[int(ps.next()%uint64(horizon))] = true
	}
	return newGate(p, seed, opts)
}

// TraceCopy returns a copy of the recording so far (nil when the
// controller was built without WithRecording).
func (g *Gate) TraceCopy() *Trace {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.trace == nil {
		return nil
	}
	t := &Trace{Seed: g.trace.Seed, Controller: g.trace.Controller, Note: g.trace.Note}
	t.Entries = append([]Entry(nil), g.trace.Entries...)
	return t
}

// Stalls reports how many parked lanes force-admitted themselves after
// the stall timeout — nonzero means the schedule lost control somewhere
// (a blocking operation not wrapped in Block, or a divergent replay).
func (g *Gate) Stalls() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stalled
}

// Admissions returns the number of admissions made so far.
func (g *Gate) Admissions() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seq
}

// Expect announces that lane is about to join the schedule (its goroutine
// has been or is being spawned): dispatch holds until every expected lane
// reaches the gate, so admission decisions always see the complete set of
// runnable lanes and the schedule is a pure function of the seed rather
// than of goroutine start-up timing. An expected lane that never arrives
// is reaped by Done (the engine's panic paths) or, as a last resort, by
// the parked lanes' stall timeout.
func (g *Gate) Expect(lane int) {
	g.mu.Lock()
	if _, ok := g.lanes[lane]; !ok {
		g.expected[lane] = true
	}
	g.mu.Unlock()
}

// Yield implements Controller.
func (g *Gate) Yield(p Point, lane int) {
	g.gatecall(&waiter{kind: KindYield, point: p, lane: lane, ch: make(chan int, 1)})
}

// Choose implements Controller.
func (g *Gate) Choose(p Point, lane, n int) int {
	if n <= 1 {
		// A one-armed choice is a plain yield with a forced outcome.
		g.Yield(p, lane)
		return 0
	}
	return g.gatecall(&waiter{kind: KindChoose, point: p, lane: lane, n: n, ch: make(chan int, 1)})
}

// Block implements Controller.
func (g *Gate) Block(lane int) {
	g.mu.Lock()
	if g.lanes[lane] {
		g.lanes[lane] = false
		g.active--
	}
	g.dispatchLocked()
	g.mu.Unlock()
}

// Unblock implements Controller.
func (g *Gate) Unblock(lane int) { g.Yield(PointResume, lane) }

// Done implements Controller.
func (g *Gate) Done(lane int) {
	g.mu.Lock()
	delete(g.expected, lane)
	if active, ok := g.lanes[lane]; ok {
		if active {
			g.active--
		}
		delete(g.lanes, lane)
	}
	g.dispatchLocked()
	g.mu.Unlock()
}

// gatecall parks the waiter, waits for admission (or the stall timeout),
// and returns the admission value.
func (g *Gate) gatecall(w *waiter) int {
	g.mu.Lock()
	delete(g.expected, w.lane)
	if active, ok := g.lanes[w.lane]; ok && active {
		// The lane held the token; parking releases it.
		g.lanes[w.lane] = false
		g.active--
	} else if !ok {
		g.lanes[w.lane] = false
	}
	if g.admitFreely(w) {
		// Unconstrained under replay: this (kind, point, lane) has no
		// remaining trace entries, so it runs outside the forced order.
		v := g.admitLocked(w)
		g.mu.Unlock()
		return v
	}
	g.waiting = append(g.waiting, w)
	g.dispatchLocked()
	g.mu.Unlock()

	timer := time.NewTimer(g.stall)
	defer timer.Stop()
	select {
	case v := <-w.ch:
		return v
	case <-timer.C:
	}

	// Stall: force-admit ourselves so the run cannot hang. The picker is
	// told (via onStall) so a replay can resynchronize.
	g.mu.Lock()
	for i, q := range g.waiting {
		if q == w {
			g.waiting = append(g.waiting[:i], g.waiting[i+1:]...)
			g.stalled++
			if s, ok := g.p.(stallAware); ok {
				s.onStall(g, w)
			}
			v := g.admitLocked(w)
			g.dispatchLocked()
			g.mu.Unlock()
			return v
		}
	}
	g.mu.Unlock()
	// Admitted concurrently with the timeout: the value is in the channel.
	return <-w.ch
}

// stallAware lets a picker react to a forced admission (Replay skips the
// entry it was stuck on).
type stallAware interface {
	onStall(g *Gate, w *waiter)
}

// freeAdmitter lets a picker bypass the queue for waiters it has no
// ordering constraint for (Replay with a minimized trace).
type freeAdmitter interface {
	admitFreely(g *Gate, w *waiter) bool
}

func (g *Gate) admitFreely(w *waiter) bool {
	if f, ok := g.p.(freeAdmitter); ok {
		return f.admitFreely(g, w)
	}
	return false
}

// admitLocked records and activates one admission and returns its value;
// dispatchLocked additionally delivers it on the waiter's channel.
func (g *Gate) admitLocked(w *waiter) int {
	v := 0
	if w.kind == KindChoose {
		v = g.p.choice(g, w)
		if v < 0 || v >= w.n {
			v = 0
		}
	}
	if g.trace != nil {
		g.trace.Entries = append(g.trace.Entries, Entry{
			Kind: w.kind, Point: w.point, Lane: w.lane, N: w.n, Choice: v,
		})
	}
	g.seq++
	g.lanes[w.lane] = true
	g.active++
	return v
}

// dispatchLocked admits parked lanes while no participant is active and
// no expected lane has yet to reach the gate.
func (g *Gate) dispatchLocked() {
	for g.active == 0 && len(g.expected) == 0 && len(g.waiting) > 0 {
		i := g.p.pick(g)
		if i < 0 || i >= len(g.waiting) {
			return // hold: the picker is waiting for a specific arrival
		}
		w := g.waiting[i]
		g.waiting = append(g.waiting[:i], g.waiting[i+1:]...)
		w.ch <- g.admitLocked(w)
	}
}

// choiceValue is the shared Choose policy for the generative controllers:
// timeout checks are biased by forceTimeoutRate, everything else is
// uniform.
func (g *Gate) choiceValue(w *waiter) int {
	if w.point == PointTimeoutCheck {
		if g.forceTimeoutRate > 0 && g.prng.float() < g.forceTimeoutRate {
			return 1
		}
		return 0
	}
	return int(g.prng.next() % uint64(w.n))
}

// randomPicker admits a uniformly random parked lane. The pick is keyed
// by lane identity, not queue position, so it depends only on the set of
// parked lanes — never on the order they happened to arrive in (which is
// OS scheduling, not schedule).
type randomPicker struct{}

func (randomPicker) name() string { return "random" }

func (randomPicker) pick(g *Gate) int {
	r := g.prng.next()
	best, bestKey := -1, uint64(0)
	for i, w := range g.waiting {
		k := mix64(r, uint64(int64(w.lane))^uint64(w.point)<<48)
		if best < 0 || k > bestKey {
			best, bestKey = i, k
		}
	}
	return best
}

func (randomPicker) choice(g *Gate, w *waiter) int { return g.choiceValue(w) }

// pctPicker admits the highest-priority parked lane, demoting the current
// front-runner at seeded change points.
type pctPicker struct {
	prio   map[int]int64
	change map[int]bool
	demote int64 // next demotion priority, strictly decreasing
}

func (*pctPicker) name() string { return "pct" }

func (p *pctPicker) priority(g *Gate, lane int) int64 {
	if v, ok := p.prio[lane]; ok {
		return v
	}
	// First sight: a seeded, lane-keyed priority. Positive so demotions
	// (negative) always rank below fresh lanes.
	v := int64(mix64(g.seed, uint64(lane)+0x51) >> 1)
	p.prio[lane] = v
	return v
}

func (p *pctPicker) pick(g *Gate) int {
	best, bestPrio := -1, int64(0)
	for i, w := range g.waiting {
		if pr := p.priority(g, w.lane); best < 0 || pr > bestPrio {
			best, bestPrio = i, pr
		}
	}
	if p.change[g.seq] && best >= 0 {
		// Priority-change point: demote the would-be winner and repick.
		p.demote--
		p.prio[g.waiting[best].lane] = p.demote
		best, bestPrio = -1, 0
		for i, w := range g.waiting {
			if pr := p.priority(g, w.lane); best < 0 || pr > bestPrio {
				best, bestPrio = i, pr
			}
		}
	}
	return best
}

func (p *pctPicker) choice(g *Gate, w *waiter) int { return g.choiceValue(w) }

// splitmix is the controllers' internal PRNG (decisions must not consume
// the engine's rng streams, which belong to the program under test).
type splitmix struct{ s uint64 }

func newSplitmix(seed uint64) *splitmix { return &splitmix{s: seed} }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitmix) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// mix64 is a stateless splitmix-style hash of two words.
func mix64(a, b uint64) uint64 {
	x := a ^ b*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}
