package sched

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// runLanes drives nlanes concurrent participants through the controller,
// each performing steps yields (plus one Choose at every third step) and
// appending its admissions to a shared log whose order is therefore the
// schedule the controller chose. Returns the log.
func runLanes(c Controller, nlanes, steps int) []string {
	var mu sync.Mutex
	var log []string
	var wg sync.WaitGroup
	if e, ok := c.(interface{ Expect(int) }); ok {
		for l := 0; l < nlanes; l++ {
			e.Expect(l)
		}
	}
	for l := 0; l < nlanes; l++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer c.Done(lane)
			for s := 0; s < steps; s++ {
				if s%3 == 2 {
					v := c.Choose(PointStealVictim, lane, 4)
					mu.Lock()
					log = append(log, fmt.Sprintf("c%d.%d=%d", lane, s, v))
					mu.Unlock()
				} else {
					c.Yield(PointGroupStep, lane)
					mu.Lock()
					log = append(log, fmt.Sprintf("y%d.%d", lane, s))
					mu.Unlock()
				}
			}
		}(l)
	}
	wg.Wait()
	return log
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	runOnce := func(seed uint64) ([]string, *Trace) {
		g := NewRandom(seed, WithRecording())
		log := runLanes(g, 4, 9)
		return log, g.TraceCopy()
	}
	log1, tr1 := runOnce(42)
	log2, tr2 := runOnce(42)
	if strings.Join(log1, " ") != strings.Join(log2, " ") {
		t.Fatalf("same seed, different schedules:\n%v\n%v", log1, log2)
	}
	if !tr1.Equal(tr2) {
		t.Fatalf("same seed, different traces")
	}
	log3, _ := runOnce(43)
	if strings.Join(log1, " ") == strings.Join(log3, " ") {
		t.Fatalf("different seeds produced identical schedule (possible, but suspicious for 4x9 lanes)")
	}
}

func TestGateSerializesAdmissions(t *testing.T) {
	// With instrumentation between yields, at most one lane may be inside
	// a critical step at a time.
	g := NewRandom(7)
	var inside, maxInside, violations int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for l := 0; l < 6; l++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer g.Done(lane)
			for s := 0; s < 20; s++ {
				g.Yield(PointGroupStep, lane)
				mu.Lock()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				if inside > 1 {
					violations++
				}
				mu.Unlock()
				// The critical section: everything up to the next yield
				// runs under the admission token.
				mu.Lock()
				inside--
				mu.Unlock()
			}
		}(l)
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d admissions overlapped (max concurrent %d)", violations, maxInside)
	}
	if g.Stalls() != 0 {
		t.Fatalf("unexpected stalls: %d", g.Stalls())
	}
}

func TestBlockReleasesToken(t *testing.T) {
	// A lane that Blocks must not hold the schedule hostage: the other
	// lane gets admitted while the first waits on a real channel.
	g := NewRandom(1)
	ch := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer g.Done(1)
		g.Yield(PointGroupStart, 1)
		g.Block(1)
		<-ch // real blocking operation
		g.Unblock(1)
		close(done)
	}()
	go func() {
		defer g.Done(2)
		g.Yield(PointGroupStart, 2)
		close(ch) // unblocks lane 1
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("schedule deadlocked across Block/Unblock")
	}
	if g.Stalls() != 0 {
		t.Fatalf("unexpected stalls: %d", g.Stalls())
	}
}

func TestPCTDeterministicAndPrioritized(t *testing.T) {
	run := func(seed uint64, depth int) []string {
		return runLanes(NewPCT(seed, depth, 64), 4, 6)
	}
	a, b := run(9, 3), run(9, 3)
	if strings.Join(a, " ") != strings.Join(b, " ") {
		t.Fatalf("PCT not deterministic per seed:\n%v\n%v", a, b)
	}
	// Depth-1 (no change points) must also be deterministic and, ignoring
	// arrival racing at the very first admissions, strictly prioritized:
	// once all lanes are parked the same lane keeps winning until done.
	c, d := run(11, 1), run(11, 1)
	if strings.Join(c, " ") != strings.Join(d, " ") {
		t.Fatalf("depth-1 PCT not deterministic")
	}
}

func TestChooseDomainAndDegenerate(t *testing.T) {
	g := NewRandom(5)
	defer g.Done(0)
	for i := 0; i < 50; i++ {
		if v := g.Choose(PointStealVictim, 0, 3); v < 0 || v > 2 {
			t.Fatalf("choice %d out of [0,3)", v)
		}
	}
	if v := g.Choose(PointPopOrSteal, 0, 1); v != 0 {
		t.Fatalf("n=1 choice = %d, want 0", v)
	}
	if v := g.Choose(PointPopOrSteal, 0, 0); v != 0 {
		t.Fatalf("n=0 choice = %d, want 0", v)
	}
}

func TestTimeoutCheckPolicy(t *testing.T) {
	g := NewRandom(3)
	defer g.Done(0)
	for i := 0; i < 30; i++ {
		if v := g.Choose(PointTimeoutCheck, 0, 2); v != 0 {
			t.Fatalf("unforced timeout check returned %d, want 0", v)
		}
	}
	f := NewRandom(3, WithForcedTimeouts(1.0))
	defer f.Done(0)
	for i := 0; i < 10; i++ {
		if v := f.Choose(PointTimeoutCheck, 0, 2); v != 1 {
			t.Fatalf("rate-1.0 forced timeout check returned %d, want 1", v)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Seed:       51966,
		Controller: "random",
		Note:       "squash races group 3 mid-step",
		Entries: []Entry{
			{Kind: KindYield, Point: PointAux, Lane: 0},
			{Kind: KindChoose, Point: PointStealVictim, Lane: -2, N: 4, Choice: 1},
			{Kind: KindYield, Point: PointSquash, Lane: 0},
			{Kind: KindChoose, Point: PointTimeoutCheck, Lane: 3, N: 2, Choice: 1},
		},
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if got.Seed != tr.Seed || got.Controller != tr.Controller || got.Note != tr.Note {
		t.Fatalf("header mismatch: %+v vs %+v", got, tr)
	}
	if !got.Equal(tr) {
		t.Fatalf("entries mismatch:\n%v\n%v", got.Entries, tr.Entries)
	}
	if got.Hash() != tr.Hash() {
		t.Fatalf("hash mismatch after round trip")
	}
}

func TestTraceDecodeErrors(t *testing.T) {
	for _, bad := range []string{
		"y nosuchpoint 0\n",
		"c aux 0 2\n",
		"seed notanumber\n",
		"frobnicate 1 2\n",
		"y aux notalane\n",
	} {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Fatalf("Decode(%q) succeeded, want error", bad)
		}
	}
}

func TestParsePointRoundTrip(t *testing.T) {
	for p := Point(0); p < numPoints; p++ {
		got, ok := ParsePoint(p.String())
		if !ok || got != p {
			t.Fatalf("ParsePoint(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePoint("bogus"); ok {
		t.Fatal("ParsePoint accepted bogus name")
	}
}

func TestReplayReproducesSchedule(t *testing.T) {
	// Record a random schedule, replay it, and require the identical
	// admission log and an exact (divergence-free) replay.
	g := NewRandom(0xC0FFEE, WithRecording())
	want := runLanes(g, 4, 9)
	tr := g.TraceCopy()
	if len(tr.Entries) == 0 {
		t.Fatal("recording produced no entries")
	}

	r := NewReplay(tr, WithRecording())
	got := runLanes(r, 4, 9)
	if strings.Join(want, " ") != strings.Join(got, " ") {
		t.Fatalf("replayed schedule differs:\nrec: %v\nrep: %v", want, got)
	}
	if d := r.Divergences(); d != 0 {
		t.Fatalf("exact replay reported %d divergences", d)
	}
	if rem := r.Remaining(); rem != 0 {
		t.Fatalf("exact replay left %d entries unconsumed", rem)
	}
	// The re-recording must match entry-for-entry.
	if re := r.TraceCopy(); !re.Equal(tr) {
		t.Fatalf("re-recorded trace differs from original")
	}
}

func TestReplayToleratesDivergence(t *testing.T) {
	// Replay a trace recorded from a 4-lane run against a 3-lane run:
	// entries for the missing lane can never be admitted in order. The
	// run must still complete (stall resync) and report divergence.
	g := NewRandom(77, WithRecording())
	runLanes(g, 4, 6)
	tr := g.TraceCopy()

	r := NewReplay(tr, WithStallTimeout(50*time.Millisecond))
	done := make(chan struct{})
	go func() {
		runLanes(r, 3, 6)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("divergent replay hung")
	}
	// Depending on where the recording placed lane 3's entries, the
	// mismatch shows up as stall resyncs (Divergences) or as trailing
	// never-consumed entries (Remaining); either way the replay must
	// report it was inexact.
	if r.Divergences() == 0 && r.Remaining() == 0 {
		t.Fatal("divergent replay reported an exact replay")
	}
}

func TestReplayUnconstrainedAdmission(t *testing.T) {
	// A trace mentioning none of the run's decision points admits
	// everything freely: the run completes fast with no stalls.
	tr := &Trace{Seed: 1}
	r := NewReplay(tr)
	start := time.Now()
	runLanes(r, 3, 6)
	if el := time.Since(start); el > time.Second {
		t.Fatalf("unconstrained replay took %v", el)
	}
	if s := r.Stalls(); s != 0 {
		t.Fatalf("unconstrained replay stalled %d times", s)
	}
}

func TestMinimizeShrinksAndPreservesFailure(t *testing.T) {
	// Build a synthetic 40-entry trace where the "failure" is the
	// presence of two specific ordered entries. Minimize must shrink to
	// exactly those two, and the result must still fail.
	var es []Entry
	for i := 0; i < 40; i++ {
		es = append(es, Entry{Kind: KindYield, Point: PointGroupStep, Lane: i % 5})
	}
	es[13] = Entry{Kind: KindYield, Point: PointSquash, Lane: 0}
	es[29] = Entry{Kind: KindChoose, Point: PointTimeoutCheck, Lane: 2, N: 2, Choice: 1}
	tr := &Trace{Seed: 9, Entries: es}

	calls := 0
	fails := func(t *Trace) bool {
		calls++
		sq, to := -1, -1
		for i, e := range t.Entries {
			if e.Point == PointSquash {
				sq = i
			}
			if e.Point == PointTimeoutCheck && e.Choice == 1 {
				to = i
			}
		}
		return sq >= 0 && to > sq
	}
	m := Minimize(tr, fails)
	if len(m.Entries) != 2 {
		t.Fatalf("minimized to %d entries, want 2: %v", len(m.Entries), m.Entries)
	}
	if !fails(m) {
		t.Fatal("minimized trace no longer fails")
	}
	if m.Seed != tr.Seed {
		t.Fatal("minimization dropped provenance")
	}
	if calls == 0 {
		t.Fatal("predicate never called")
	}
	// Idempotent on an already-minimal trace.
	m2 := Minimize(m, fails)
	if !m2.Equal(m) {
		t.Fatal("minimizing a minimal trace changed it")
	}
}

func TestMinimizeNonFailingTraceUnchanged(t *testing.T) {
	tr := &Trace{Entries: []Entry{{Kind: KindYield, Point: PointAux, Lane: 0}}}
	m := Minimize(tr, func(*Trace) bool { return false })
	if !m.Equal(tr) {
		t.Fatal("non-failing trace was altered")
	}
}

func TestMinimizedTraceReplays(t *testing.T) {
	// End-to-end satellite requirement: record a real schedule, define the
	// "failure" as lane 1's step-2 decision returning its recorded value,
	// minimize via actual replays, and prove the minimized trace still
	// reproduces the failure under Replay. A choose-value property is
	// replay-deterministic (the recorded outcome is forced whenever the
	// entry is consumed in order) even when minimization has freed other
	// lanes to run unconstrained.
	g := NewRandom(0xD1CE, WithRecording())
	log := runLanes(g, 3, 6)
	tr := g.TraceCopy()
	var target string
	for _, s := range log {
		if strings.HasPrefix(s, "c1.2=") {
			target = s
		}
	}
	if target == "" {
		t.Fatalf("recording produced no lane-1 step-2 decision: %v", log)
	}
	has := func(log []string, want string) bool {
		for _, s := range log {
			if s == want {
				return true
			}
		}
		return false
	}
	// Two consecutive replays must agree, so schedules that only
	// sometimes produce the value (stall-timing artifacts on heavily
	// minimized candidates) are treated as non-failing.
	fails := func(cand *Trace) bool {
		for i := 0; i < 2; i++ {
			r := NewReplay(cand, WithStallTimeout(50*time.Millisecond))
			if !has(runLanes(r, 3, 6), target) {
				return false
			}
		}
		return true
	}
	if !fails(tr) {
		t.Fatal("recorded trace does not reproduce under replay")
	}
	m := Minimize(tr, fails)
	if len(m.Entries) >= len(tr.Entries) {
		t.Fatalf("minimization did not shrink: %d -> %d", len(tr.Entries), len(m.Entries))
	}
	if !fails(m) {
		t.Fatal("minimized trace does not reproduce the failure")
	}
}

func TestWriteReadFile(t *testing.T) {
	tr := &Trace{Seed: 5, Controller: "pct", Note: "x", Entries: []Entry{
		{Kind: KindYield, Point: PointValidate, Lane: 1},
	}}
	path := t.TempDir() + "/t.trace"
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tr) || got.Seed != 5 {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
}
