package pool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// singleChanPool is the pre-sharding pool implementation (one buffered
// channel behind an RWMutex), kept test-only as the benchmark baseline the
// sharded scheduler is measured against.
type singleChanPool struct {
	tasks   chan Task
	wg      sync.WaitGroup
	workers int

	mu     sync.RWMutex
	closed bool

	executed atomic.Int64
}

func newSingleChan(workers int) *singleChanPool {
	if workers < 1 {
		workers = 1
	}
	p := &singleChanPool{
		tasks:   make(chan Task, 4*workers),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t()
				p.executed.Add(1)
			}
		}()
	}
	return p
}

var errClosedBaseline = errors.New("pool: closed (baseline)")

func (p *singleChanPool) Submit(t Task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return errClosedBaseline
	}
	p.tasks <- t
	return nil
}

func (p *singleChanPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}

// submitter abstracts the two pools for the comparative benchmarks.
type submitter interface {
	Submit(Task) error
	Close()
}

var workerCounts = []int{1, 2, 4, 8}

// benchSubmitThroughput measures contended submission: GOMAXPROCS
// submitters pushing no-op tasks as fast as the pool accepts them. This is
// the paper's §3.4 hot path — every attached dependence's group fan-out
// goes through Submit.
func benchSubmitThroughput(b *testing.B, mk func(int) submitter) {
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := mk(w)
			var done sync.WaitGroup
			done.Add(b.N)
			task := func() { done.Done() }
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := p.Submit(task); err != nil {
						b.Error(err)
						return
					}
				}
			})
			done.Wait()
			b.StopTimer()
			p.Close()
		})
	}
}

func BenchmarkSubmitSharded(b *testing.B) {
	benchSubmitThroughput(b, func(w int) submitter { return New(w) })
}

func BenchmarkSubmitSingleChan(b *testing.B) {
	benchSubmitThroughput(b, func(w int) submitter { return newSingleChan(w) })
}

// spin is a tiny compute kernel standing in for one group invocation.
func spin(n int) float64 {
	s := 1.0
	for i := 0; i < n; i++ {
		s += 1.0 / s
	}
	return s
}

var spinSink atomic.Int64

// benchGroupFanout measures the engine-shaped pattern: enqueue a
// 32-task speculation group, wait for it to drain, repeat — the group
// throughput the ISSUE's acceptance criterion names.
func benchGroupFanout(b *testing.B, mk func(int) submitter, batch func(submitter, []Task) error) {
	const groupSize = 32
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			p := mk(w)
			var wg sync.WaitGroup
			tasks := make([]Task, groupSize)
			for i := range tasks {
				tasks[i] = func() {
					spinSink.Store(int64(spin(200)))
					wg.Done()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wg.Add(groupSize)
				if err := batch(p, tasks); err != nil {
					b.Fatal(err)
				}
				wg.Wait()
			}
			b.StopTimer()
			p.Close()
		})
	}
}

// submitLoop is the pre-SubmitBatch fan-out: one Submit per group member.
func submitLoop(p submitter, tasks []Task) error {
	for _, t := range tasks {
		if err := p.Submit(t); err != nil {
			return err
		}
	}
	return nil
}

func BenchmarkGroupFanoutSharded(b *testing.B) {
	benchGroupFanout(b, func(w int) submitter { return New(w) },
		func(p submitter, tasks []Task) error {
			_, err := p.(*Pool).SubmitBatch(tasks)
			return err
		})
}

func BenchmarkGroupFanoutShardedSubmitLoop(b *testing.B) {
	benchGroupFanout(b, func(w int) submitter { return New(w) }, submitLoop)
}

func BenchmarkGroupFanoutSingleChan(b *testing.B) {
	benchGroupFanout(b, func(w int) submitter { return newSingleChan(w) }, submitLoop)
}
