package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSubmitCloseStress hammers Submit, SubmitBatch and Go from many
// goroutines while Close lands concurrently. Run under `go test -race`
// (the `make race` tier) it proves the scheduler's claimed safety: no
// send-on-closed-channel panic, no data race, and the accepted-implies-
// executed contract — every task accepted before Close is executed by the
// time Close returns.
func TestSubmitCloseStress(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 5
	}
	for it := 0; it < iters; it++ {
		p := New(1 + it%5)
		var accepted, ran, goCalls, goRan atomic.Int64
		task := func() { ran.Add(1) }

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for k := 0; ; k++ {
					switch (g + k) % 3 {
					case 0:
						if p.Submit(task) != nil {
							return
						}
						accepted.Add(1)
					case 1:
						batch := make([]Task, 1+k%7)
						for i := range batch {
							batch[i] = task
						}
						n, err := p.SubmitBatch(batch)
						accepted.Add(int64(n))
						if err != nil {
							return
						}
					case 2:
						goCalls.Add(1)
						// Go never loses the task: it runs on the pool
						// or inline on us after a rejection.
						<-p.Go(func() { goRan.Add(1) })
					}
				}
			}()
		}
		close(start)
		time.Sleep(time.Duration(it%4) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()

		if ran.Load() != accepted.Load() {
			t.Fatalf("iter %d: accepted %d tasks but %d ran", it, accepted.Load(), ran.Load())
		}
		if goRan.Load() != goCalls.Load() {
			t.Fatalf("iter %d: %d Go calls but %d ran", it, goCalls.Load(), goRan.Load())
		}
		m := p.Metrics()
		if m.Executed != accepted.Load()+goCalls.Load() {
			t.Fatalf("iter %d: Executed %d, want %d accepted + %d Go",
				it, m.Executed, accepted.Load(), goCalls.Load())
		}
		if m.Submitted != m.Executed-m.InlineRuns {
			t.Fatalf("iter %d: Submitted %d, Executed %d, InlineRuns %d",
				it, m.Submitted, m.Executed, m.InlineRuns)
		}
	}
}

// TestConcurrentCloseIsSafe races several Close calls against submitters;
// Close must stay idempotent and the accepted-implies-executed contract
// must survive.
func TestConcurrentCloseIsSafe(t *testing.T) {
	for it := 0; it < 20; it++ {
		p := New(3)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if p.Submit(func() { ran.Add(1) }) != nil {
						return
					}
					accepted.Add(1)
				}
			}()
		}
		var cwg sync.WaitGroup
		for c := 0; c < 3; c++ {
			cwg.Add(1)
			go func() {
				defer cwg.Done()
				p.Close()
			}()
		}
		cwg.Wait()
		wg.Wait()
		// All Close calls returned; the first one waited for the drain,
		// but late-accepted tasks may still race the no-op Closes, so
		// settle via one more Close (idempotent, returns immediately).
		p.Close()
		if got, want := p.Executed(), accepted.Load(); got != want {
			t.Fatalf("iter %d: executed %d, accepted %d", it, got, want)
		}
	}
}

// TestGoOnClosedPoolCountsExecuted is the regression test for the old
// pool's accounting bug: a task rejected by Submit ran inline on the
// caller but was never counted in Executed, skewing profiler overhead
// attribution.
func TestGoOnClosedPoolCountsExecuted(t *testing.T) {
	p := New(2)
	p.Close()
	before := p.Executed()
	var ran atomic.Bool
	<-p.Go(func() { ran.Store(true) })
	if !ran.Load() {
		t.Fatal("fn did not run inline on closed pool")
	}
	if got := p.Executed(); got != before+1 {
		t.Fatalf("Executed %d after inline fallback, want %d", got, before+1)
	}
	m := p.Metrics()
	if m.InlineRuns != 1 {
		t.Fatalf("InlineRuns %d, want 1", m.InlineRuns)
	}
}

// TestSubmitBatchDeliversAll checks the batch path end to end, including a
// batch larger than the pool's total deque capacity (which must block and
// spill rather than drop).
func TestSubmitBatchDeliversAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	const total = 4*shardCap + 57 // deliberately beyond total capacity
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(total)
	tasks := make([]Task, total)
	for i := range tasks {
		tasks[i] = func() {
			ran.Add(1)
			wg.Done()
		}
	}
	n, err := p.SubmitBatch(tasks)
	if err != nil || n != total {
		t.Fatalf("SubmitBatch = %d, %v; want %d, nil", n, err, total)
	}
	wg.Wait()
	if ran.Load() != total {
		t.Fatalf("ran %d/%d", ran.Load(), total)
	}
}

// TestSubmitBatchOnClosedPool checks the suffix contract: a closed pool
// returns how many tasks were enqueued so the caller can run the rest.
func TestSubmitBatchOnClosedPool(t *testing.T) {
	p := New(2)
	p.Close()
	tasks := []Task{func() {}, func() {}}
	n, err := p.SubmitBatch(tasks)
	if err != ErrClosed || n != 0 {
		t.Fatalf("SubmitBatch on closed pool = %d, %v; want 0, ErrClosed", n, err)
	}
	if n, err := p.SubmitBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch = %d, %v; want 0, nil", n, err)
	}
}

// TestStealsHappen forces an imbalanced load (every task submitted while
// one worker sleeps on a long task) and checks that the other workers
// steal: the pool must not serialize behind one deque.
func TestStealsHappen(t *testing.T) {
	p := New(4)
	defer p.Close()
	var wg sync.WaitGroup
	// A burst much wider than one deque's share; with 4 workers pulling,
	// some dispatches must cross shards over enough iterations.
	for round := 0; round < 50; round++ {
		wg.Add(32)
		for i := 0; i < 32; i++ {
			p.Submit(func() {
				time.Sleep(10 * time.Microsecond)
				wg.Done()
			})
		}
		wg.Wait()
	}
	m := p.Metrics()
	if m.Steals == 0 && m.LocalHits == 0 {
		t.Fatal("no dispatches recorded")
	}
	if m.Steals+m.LocalHits != m.Executed {
		t.Fatalf("dispatch split %d+%d != executed %d", m.Steals, m.LocalHits, m.Executed)
	}
	if m.QueueDepthPeak < 1 {
		t.Fatalf("queue depth peak %d", m.QueueDepthPeak)
	}
}

// TestTracedSubmitCloseStress repeats the Submit/Close hammer with the
// observability layer attached and snapshots/scrapes racing the workers.
// Under `go test -race` it proves the tracer's claim: Emit from every
// worker concurrent with Snapshot and the metric scrape is race-free, and
// the scheduler's dispatch counters agree with the pool's own metrics
// once the pool has drained.
func TestTracedSubmitCloseStress(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 4
	}
	for it := 0; it < iters; it++ {
		workers := 1 + it%5
		p := New(workers)
		ob := obs.NewObserver(workers, 128)
		p.SetObserver(ob)

		var accepted, ran atomic.Int64
		task := func() { ran.Add(1) }
		stop := make(chan struct{})

		// Readers: one snapshotting the event log, one scraping the
		// registry, both racing the emitting workers.
		var rwg sync.WaitGroup
		rwg.Add(2)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, e := range ob.Tracer.Snapshot() {
						if e.Kind != obs.EvSteal && e.Kind != obs.EvLocalHit && e.Kind != obs.EvTaskFinish {
							t.Errorf("iter %d: unexpected kind %v in scheduler-only trace", it, e.Kind)
							return
						}
					}
				}
			}
		}()
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = ob.Reg.Text()
				}
			}
		}()

		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; ; k++ {
					if k%4 == 3 {
						batch := make([]Task, 1+k%5)
						for i := range batch {
							batch[i] = task
						}
						n, err := p.SubmitBatch(batch)
						accepted.Add(int64(n))
						if err != nil {
							return
						}
					} else {
						if p.Submit(task) != nil {
							return
						}
						accepted.Add(1)
					}
				}
			}()
		}
		time.Sleep(time.Duration(it%4) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()
		close(stop)
		rwg.Wait()

		if ran.Load() != accepted.Load() {
			t.Fatalf("iter %d: accepted %d but %d ran", it, accepted.Load(), ran.Load())
		}
		m := p.Metrics()
		if got := ob.Steals.Value() + ob.LocalHits.Value(); got != m.Executed-m.InlineRuns {
			t.Fatalf("iter %d: observer dispatches %d, pool executed %d (inline %d)",
				it, got, m.Executed, m.InlineRuns)
		}
		if got := ob.TasksDone.Value(); got != m.Executed-m.InlineRuns {
			t.Fatalf("iter %d: observer TasksDone %d, pool executed %d (inline %d)",
				it, got, m.Executed, m.InlineRuns)
		}
		if ob.Tracer.Emitted() < ob.TasksDone.Value() {
			t.Fatalf("iter %d: emitted %d below task count %d",
				it, ob.Tracer.Emitted(), ob.TasksDone.Value())
		}
	}
}
