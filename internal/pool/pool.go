// Package pool implements the STATS runtime's shared worker scheduler (§3.4,
// "Runtime"): "an efficient thread pool implementation (shared with all state
// dependences) to minimize thread creation overhead".
//
// The scheduler is sharded: every worker owns a bounded local deque, and a
// task submitted to the pool is pushed onto one deque chosen by an atomic
// round-robin cursor, so concurrent submitters from different attached
// dependences spread across shards instead of contending on a single lock
// and channel. A worker dispatches from the front of its own deque (the
// local fast path); when its deque is empty it steals from the back of a
// randomly chosen victim's deque, which keeps every worker busy while a
// burst of submissions lands on few shards. SubmitBatch enqueues a whole
// speculation group in one pass — one lock acquisition per shard touched
// rather than one per task — which is how internal/core fans out a group.
//
// The pool supports bounded width so the evaluation harness can constrain
// the number of "hardware threads" available to the runtime, mirroring the
// paper's thread sweeps. Dispatch counters (steals, local hits, peak queue
// depth) are exposed through Metrics for overhead attribution by the
// profiler and harness.
package pool

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/sched"
)

// ErrClosed is returned by Submit and SubmitBatch after Close has been
// called.
var ErrClosed = errors.New("pool: closed")

// Task is a unit of work executed by a pool worker.
type Task func()

// shardCap bounds each worker's local deque. A full deque spills the
// submission to the other shards, and a fully saturated pool blocks the
// submitter until a worker frees capacity — the same backpressure the old
// single-channel pool applied, now per shard.
const shardCap = 64

// shard is one worker's bounded local deque: a fixed ring buffer guarded by
// a mutex. The owner pops from the front (oldest first, preserving rough
// global FIFO under round-robin submission); thieves steal from the back,
// so a steal rarely collides with the owner's next dispatch.
type shard struct {
	mu   sync.Mutex
	buf  [shardCap]Task
	head int // index of the oldest task
	size int // number of queued tasks
}

// tryPush appends t to the deque tail. It reports whether the task was
// enqueued, the resulting depth, and whether the pool was observed closed.
// Both the closed check and the pending increment happen under the shard
// lock: a successful push (and its pending count) therefore strictly
// precedes Close's shard barrier, so the workers' final drain can neither
// miss the task nor observe a stale zero pending count.
func (s *shard) tryPush(t Task, closed *atomic.Bool, pending *atomic.Int64) (pushed bool, depth int, poolClosed bool) {
	s.mu.Lock()
	if closed.Load() {
		s.mu.Unlock()
		return false, 0, true
	}
	if s.size == shardCap {
		s.mu.Unlock()
		return false, 0, false
	}
	s.buf[(s.head+s.size)%shardCap] = t
	s.size++
	pending.Add(1)
	depth = s.size
	s.mu.Unlock()
	return true, depth, false
}

// pushMany appends up to max tasks from ts under a single lock acquisition,
// returning how many were enqueued, the resulting depth, and whether the
// pool was observed closed. The same under-lock ordering rules as tryPush
// apply.
func (s *shard) pushMany(ts []Task, max int, closed *atomic.Bool, pending *atomic.Int64) (n, depth int, poolClosed bool) {
	s.mu.Lock()
	if closed.Load() {
		s.mu.Unlock()
		return 0, 0, true
	}
	for n < len(ts) && n < max && s.size < shardCap {
		s.buf[(s.head+s.size)%shardCap] = ts[n]
		s.size++
		n++
	}
	if n > 0 {
		pending.Add(int64(n))
	}
	depth = s.size
	s.mu.Unlock()
	return n, depth, false
}

// popFront removes the oldest task (owner dispatch). wasFull reports
// whether the deque was at capacity before the pop, so the caller can wake
// a submitter blocked on backpressure.
func (s *shard) popFront() (t Task, wasFull bool) {
	s.mu.Lock()
	if s.size == 0 {
		s.mu.Unlock()
		return nil, false
	}
	wasFull = s.size == shardCap
	t = s.buf[s.head]
	s.buf[s.head] = nil
	s.head = (s.head + 1) % shardCap
	s.size--
	s.mu.Unlock()
	return t, wasFull
}

// popBack removes the newest task (thief dispatch).
func (s *shard) popBack() (t Task, wasFull bool) {
	s.mu.Lock()
	if s.size == 0 {
		s.mu.Unlock()
		return nil, false
	}
	wasFull = s.size == shardCap
	i := (s.head + s.size - 1) % shardCap
	t = s.buf[i]
	s.buf[i] = nil
	s.size--
	s.mu.Unlock()
	return t, wasFull
}

// depth returns the instantaneous queue depth.
func (s *shard) depth() int {
	s.mu.Lock()
	d := s.size
	s.mu.Unlock()
	return d
}

// Metrics is a snapshot of the scheduler's dispatch counters, used by the
// profiler and harness to attribute runtime overhead (a steal is a
// cross-worker dispatch; a local hit is the contention-free fast path).
type Metrics struct {
	// Submitted counts tasks accepted by Submit and SubmitBatch.
	Submitted int64
	// Executed counts completed tasks, including closed-pool Go fallbacks
	// run inline on the caller.
	Executed int64
	// InlineRuns counts closed-pool Go fallbacks (a subset of Executed).
	InlineRuns int64
	// Steals counts tasks a worker took from another worker's deque.
	Steals int64
	// LocalHits counts tasks a worker took from its own deque.
	LocalHits int64
	// PanickedTasks counts tasks whose panic was recovered by the worker.
	// The worker survives and keeps dispatching; the task's submitter is
	// responsible for noticing the lost result (internal/core marks the
	// group failed before its panic reaches the scheduler).
	PanickedTasks int64
	// QueueDepthPeak is the highest single-deque depth observed over the
	// pool's lifetime.
	QueueDepthPeak int64
}

// Pool is a fixed-width sharded work-stealing worker pool. The zero value
// is not usable; call New.
type Pool struct {
	shards  []*shard
	workers int
	seed    uint64        // run seed the worker PRNGs derive from
	rr      atomic.Uint64 // round-robin submission cursor
	closed  atomic.Bool

	// notify wakes parked workers on task arrival; its capacity equals the
	// worker count, so a dropped (non-blocking) signal implies every worker
	// already has a pending wakeup and will re-sweep all shards.
	notify chan struct{}
	// space wakes submitters blocked on a fully saturated pool; workers
	// signal it after popping from a deque that was at capacity.
	space chan struct{}
	// done is closed by Close after every shard has been marked closed;
	// workers then drain all deques and exit, and blocked submitters give
	// up with ErrClosed.
	done chan struct{}
	wg   sync.WaitGroup

	// pending counts queued-but-undispatched tasks across all deques; a
	// worker with an empty local deque parks without sweeping victims
	// when it reads zero, so an idle pool costs no lock traffic.
	pending atomic.Int64
	// idlers counts parked (or parking) workers; submitters skip the
	// wakeup channel entirely while it reads zero. The
	// pending-then-idlers / idlers-then-pending ordering on the two sides
	// is a Dekker handshake: at least one side always observes the other,
	// so no wakeup is lost.
	idlers atomic.Int64

	submitted     atomic.Int64
	executed      atomic.Int64
	inlineRuns    atomic.Int64
	steals        atomic.Int64
	localHits     atomic.Int64
	panickedTasks atomic.Int64
	maxDepth      atomic.Int64

	// obsv, when set, receives per-dispatch trace events (steal,
	// local-hit, task-finish on the worker's lane) and queue-depth
	// metrics. Loaded once per dispatch; nil costs one atomic load and
	// a branch.
	obsv atomic.Pointer[obs.Observer]
	// ctl, when set, is the controlled scheduler the workers consult for
	// their dispatch decisions (pop-vs-steal order, victim sweep start) —
	// see SetController. Same load discipline as obsv.
	ctl atomic.Pointer[ctlBox]
}

// ctlBox wraps the controller interface so it can live in an
// atomic.Pointer (which needs a concrete type).
type ctlBox struct{ c sched.Controller }

// New returns a running pool with the given number of workers. A
// non-positive width is treated as 1. Worker PRNGs are seeded by index
// only; use NewSeeded to tie them to a run seed.
func New(workers int) *Pool {
	return NewSeeded(workers, 0)
}

// NewSeeded is New with the worker PRNGs (randomized victim selection)
// derived from seed via WorkerSeed, so pool-level nondeterminism is
// reproducible per run seed instead of depending only on worker index.
func NewSeeded(workers int, seed uint64) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		shards:  make([]*shard, workers),
		workers: workers,
		seed:    seed,
		notify:  make(chan struct{}, workers),
		space:   make(chan struct{}, workers),
		done:    make(chan struct{}),
	}
	for i := range p.shards {
		p.shards[i] = &shard{}
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker(i)
	}
	return p
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Seed returns the run seed the worker PRNGs derive from (0 for pools
// built with New).
func (p *Pool) Seed() uint64 { return p.seed }

// WorkerSeed derives worker i's dispatch-PRNG seed from the pool seed.
// It is never zero (a zero state would wedge the xorshift generator),
// and WorkerSeed(0, i) reproduces the historical index-only seeding.
func WorkerSeed(poolSeed uint64, i int) uint64 {
	s := (uint64(i)+1)*0x9E3779B97F4A7C15 ^ poolSeed*0xBF58476D1CE4E5B9
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return s
}

// SetController attaches (or, with nil, detaches) the controlled
// scheduler: every subsequent dispatch decision with real alternatives —
// pop-vs-steal order and the victim sweep's starting shard — is asked of
// the controller on the worker's (negative) lane instead of the local
// xorshift PRNG, so schedule exploration reaches the pool's
// nondeterminism too. Safe to call concurrently with running work; a nil
// controller costs one atomic load per dispatch.
func (p *Pool) SetController(c sched.Controller) {
	if c == nil {
		p.ctl.Store(nil)
		return
	}
	p.ctl.Store(&ctlBox{c: c})
}

// controller returns the attached controller, or nil.
func (p *Pool) controller() sched.Controller {
	if b := p.ctl.Load(); b != nil {
		return b.c
	}
	return nil
}

// SetObserver attaches (or, with nil, detaches) the observability sink:
// every subsequent dispatch emits a steal/local-hit event and a
// task-finish event on the executing worker's lane, and every push
// observes the resulting deque depth. Safe to call concurrently with
// running work.
func (p *Pool) SetObserver(o *obs.Observer) { p.obsv.Store(o) }

// Executed returns the number of tasks completed so far (including
// closed-pool Go fallbacks run inline on the caller).
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Metrics returns a snapshot of the scheduler's dispatch counters.
func (p *Pool) Metrics() Metrics {
	return Metrics{
		Submitted:      p.submitted.Load(),
		Executed:       p.executed.Load(),
		InlineRuns:     p.inlineRuns.Load(),
		Steals:         p.steals.Load(),
		LocalHits:      p.localHits.Load(),
		PanickedTasks:  p.panickedTasks.Load(),
		QueueDepthPeak: p.maxDepth.Load(),
	}
}

// QueueDepths returns the instantaneous depth of every worker's deque.
func (p *Pool) QueueDepths() []int {
	out := make([]int, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.depth()
	}
	return out
}

// noteDepth folds a post-push depth into the lifetime peak gauge and, when
// an observer is attached, into its queue-depth histogram.
func (p *Pool) noteDepth(depth int) {
	d := int64(depth)
	for {
		old := p.maxDepth.Load()
		if d <= old || p.maxDepth.CompareAndSwap(old, d) {
			break
		}
	}
	if o := p.obsv.Load(); o != nil {
		o.QueueDepth.Observe(d)
		o.QueueDepthPeak.SetMax(d)
	}
}

// wake signals up to n parked workers without blocking. The caller must
// have made the new work visible (pending incremented) first; the idlers
// gate then keeps the busy-pool fast path free of channel operations.
func (p *Pool) wake(n int) {
	if p.idlers.Load() == 0 {
		return
	}
	for i := 0; i < n; i++ {
		select {
		case p.notify <- struct{}{}:
		default:
			return
		}
	}
}

// signalSpace wakes one submitter blocked on a saturated pool.
func (p *Pool) signalSpace() {
	select {
	case p.space <- struct{}{}:
	default:
	}
}

// Submit enqueues t for execution. The fast path is one atomic cursor
// bump plus one shard push; a full shard spills to its neighbours. Submit
// blocks while every deque is at capacity and returns ErrClosed if the pool
// has been closed. A nil error guarantees the task will be executed.
func (p *Pool) Submit(t Task) error {
	h := p.rr.Add(1)
	n := uint64(len(p.shards))
	for {
		for i := uint64(0); i < n; i++ {
			pushed, depth, closed := p.shards[(h+i)%n].tryPush(t, &p.closed, &p.pending)
			if closed {
				return ErrClosed
			}
			if pushed {
				p.submitted.Add(1)
				p.noteDepth(depth)
				p.wake(1)
				return nil
			}
		}
		// Every deque is at capacity: wait for a worker to free space.
		select {
		case <-p.space:
		case <-p.done:
			return ErrClosed
		}
	}
}

// SubmitBatch enqueues a batch of tasks — internal/core uses it to fan out
// an entire speculation group in one operation. Tasks are spread across the
// shards in near-even chunks with one lock acquisition per shard touched,
// instead of len(tasks) serialized Submit calls. It returns the number of
// tasks enqueued, which is len(tasks) unless the pool is closed: on
// ErrClosed the suffix tasks[n:] was not enqueued and is the caller's to
// run. Enqueued tasks are always executed. SubmitBatch blocks while the
// pool is saturated.
func (p *Pool) SubmitBatch(tasks []Task) (int, error) {
	if len(tasks) == 0 {
		return 0, nil
	}
	h := p.rr.Add(uint64(len(tasks)))
	ns := uint64(len(p.shards))
	enq := 0
	for enq < len(tasks) {
		remaining := len(tasks) - enq
		// Near-even quota per shard this sweep, so a group lands spread
		// across the workers' local deques.
		quota := (remaining + int(ns) - 1) / int(ns)
		pushedThisSweep := 0
		for i := uint64(0); i < ns && enq < len(tasks); i++ {
			s := p.shards[(h+i)%ns]
			k, depth, closed := s.pushMany(tasks[enq:], quota, &p.closed, &p.pending)
			if closed {
				return enq, ErrClosed
			}
			if k > 0 {
				enq += k
				pushedThisSweep += k
				p.noteDepth(depth)
			}
		}
		if pushedThisSweep > 0 {
			p.submitted.Add(int64(pushedThisSweep))
			p.wake(pushedThisSweep)
		}
		if enq < len(tasks) && pushedThisSweep == 0 {
			select {
			case <-p.space:
			case <-p.done:
				return enq, ErrClosed
			}
		}
	}
	return enq, nil
}

// Go runs fn on the pool and returns a channel that is closed when fn has
// finished. If the pool is closed, fn runs synchronously on the caller and
// is still counted in Executed (as an inline run), so profiler overhead
// accounting sees every task exactly once.
func (p *Pool) Go(fn func()) <-chan struct{} {
	done := make(chan struct{})
	if err := p.Submit(func() {
		defer close(done)
		fn()
	}); err != nil {
		fn()
		p.executed.Add(1)
		p.inlineRuns.Add(1)
		close(done)
	}
	return done
}

// Close stops accepting tasks, waits for queued tasks to finish, and
// releases the workers. Close is idempotent. Submissions that were
// accepted before Close are guaranteed to execute before Close returns.
func (p *Pool) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		return
	}
	// Barrier: acquiring every shard's lock after setting closed
	// guarantees any push that observed the pool open has fully landed in
	// its deque, so the workers' final drain cannot miss it.
	for _, s := range p.shards {
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	}
	close(p.done)
	p.wg.Wait()
}

// xorshift is a cheap per-worker PRNG for randomized victim selection.
func xorshift(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// worker is the dispatch loop for worker i: local pop, then randomized
// steal sweep, then park until new work arrives or the pool closes.
func (p *Pool) worker(i int) {
	defer p.wg.Done()
	seed := WorkerSeed(p.seed, i)
	for {
		if t, stolen, ok := p.next(i, &seed); ok {
			p.run(i, t, stolen)
			continue
		}
		// Park. Declaring idleness before re-checking pending pairs with
		// the submitters' publish-then-check-idlers order, so a task
		// enqueued concurrently is either seen here or wakes us.
		p.idlers.Add(1)
		if p.pending.Load() > 0 {
			p.idlers.Add(-1)
			continue
		}
		select {
		case <-p.notify:
			p.idlers.Add(-1)
		case <-p.done:
			p.idlers.Add(-1)
			// Drain: every task accepted before Close is in some deque
			// by now (Close's shard barrier); sweep until empty.
			for {
				t, stolen, ok := p.next(i, &seed)
				if !ok {
					return
				}
				p.run(i, t, stolen)
			}
		}
	}
}

// run executes one dispatched task on worker i and accounts it. With an
// observer attached, the dispatch emits a steal/local-hit event and the
// completion a task-finish event, all on the worker's lane — the pairs the
// live Gantt view turns into per-worker occupancy spans.
//
// A panicking task must not kill its worker: an escaped panic would tear
// down the process, and even a hypothetically survivable one would shrink
// the pool and wedge Close behind the dead worker's deque. run recovers,
// counts the event in Metrics.PanickedTasks, and keeps the worker in its
// dispatch loop.
func (p *Pool) run(i int, t Task, stolen bool) {
	o := p.obsv.Load()
	if stolen {
		p.steals.Add(1)
		if o != nil {
			o.Steals.Inc()
			o.Tracer.Emit(i, obs.EvSteal, -1, 0)
		}
	} else {
		p.localHits.Add(1)
		if o != nil {
			o.LocalHits.Inc()
			o.Tracer.Emit(i, obs.EvLocalHit, -1, 0)
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				p.panickedTasks.Add(1)
			}
		}()
		t()
	}()
	p.executed.Add(1)
	if o != nil {
		o.TasksDone.Inc()
		o.Tracer.Emit(i, obs.EvTaskFinish, -1, 0)
	}
}

// next dispatches one task for worker i: the front of its own deque, or a
// steal from the back of another worker's, scanning victims from a random
// starting point so thieves spread out. With a controller attached and a
// decision that has real alternatives (multiple shards, work pending),
// dispatch routes through nextControlled instead.
func (p *Pool) next(i int, seed *uint64) (t Task, stolen, ok bool) {
	if len(p.shards) > 1 && p.pending.Load() > 0 {
		if c := p.controller(); c != nil {
			return p.nextControlled(i, c)
		}
	}
	if t, wasFull := p.shards[i].popFront(); t != nil {
		p.pending.Add(-1)
		if wasFull {
			p.signalSpace()
		}
		return t, false, true
	}
	// Nothing local: only pay for a victim sweep if some deque has work.
	if len(p.shards) == 1 || p.pending.Load() == 0 {
		return nil, false, false
	}
	off := int(xorshift(seed) % uint64(len(p.shards)))
	if t, wasFull := p.sweep(i, off); t != nil {
		p.pending.Add(-1)
		if wasFull {
			p.signalSpace()
		}
		return t, true, true
	}
	return nil, false, false
}

// nextControlled is the dispatch path with a controller attached: the
// pop-vs-steal order and the victim sweep's starting shard become Choose
// points on the worker's negative lane. The worker releases its schedule
// token immediately after each decision (Choose then Done) — workers are
// long-lived, so holding the token across task execution would wedge the
// gate.
func (p *Pool) nextControlled(i int, c sched.Controller) (t Task, stolen, ok bool) {
	lane := -(i + 1)
	stealFirst := c.Choose(sched.PointPopOrSteal, lane, 2)
	c.Done(lane)
	pop := func() (Task, bool) {
		t, wasFull := p.shards[i].popFront()
		return t, wasFull
	}
	steal := func() (Task, bool) {
		off := c.Choose(sched.PointStealVictim, lane, len(p.shards))
		c.Done(lane)
		return p.sweep(i, off)
	}
	order := [2]func() (Task, bool){pop, steal}
	fromSteal := [2]bool{false, true}
	if stealFirst == 1 {
		order[0], order[1] = steal, pop
		fromSteal[0], fromSteal[1] = true, false
	}
	for k, try := range order {
		if t, wasFull := try(); t != nil {
			p.pending.Add(-1)
			if wasFull {
				p.signalSpace()
			}
			return t, fromSteal[k], true
		}
	}
	return nil, false, false
}

// sweep scans every shard but i for a stealable task, starting at off.
func (p *Pool) sweep(i, off int) (t Task, wasFull bool) {
	n := len(p.shards)
	for k := 0; k < n; k++ {
		j := (off + k) % n
		if j == i {
			continue
		}
		if t, wasFull := p.shards[j].popBack(); t != nil {
			return t, wasFull
		}
	}
	return nil, false
}
