// Package pool implements the STATS runtime's shared worker pool (§3.4,
// "Runtime"): "an efficient thread pool implementation (shared with all state
// dependences) to minimize thread creation overhead".
//
// Workers are goroutines started once per pool; tasks are submitted to a
// channel and executed FIFO per worker. The pool supports bounded width so
// the evaluation harness can constrain the number of "hardware threads"
// available to the runtime, mirroring the paper's thread sweeps.
package pool

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrClosed is returned by Submit after Close has been called.
var ErrClosed = errors.New("pool: closed")

// Task is a unit of work executed by a pool worker.
type Task func()

// Pool is a fixed-width worker pool. The zero value is not usable; call New.
type Pool struct {
	tasks   chan Task
	wg      sync.WaitGroup
	workers int

	// mu is held for reading across every send on tasks and for writing
	// while Close closes the channel, so a Submit can never race a Close
	// into a send-on-closed-channel panic. Workers keep draining the
	// channel until it is closed, so readers holding mu.RLock on a full
	// queue always make progress and cannot deadlock Close.
	mu     sync.RWMutex
	closed bool

	// executed counts completed tasks, used by tests and the profiler to
	// account runtime overhead.
	executed atomic.Int64
}

// New returns a running pool with the given number of workers. A
// non-positive width is treated as 1.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		tasks:   make(chan Task, 4*workers),
		workers: workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		t()
		p.executed.Add(1)
	}
}

// Workers returns the pool width.
func (p *Pool) Workers() int { return p.workers }

// Executed returns the number of tasks completed so far.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Submit enqueues t for execution. It blocks if the queue is full and
// returns ErrClosed if the pool has been closed.
func (p *Pool) Submit(t Task) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	p.tasks <- t
	return nil
}

// Go runs fn on the pool and returns a channel that is closed when fn has
// finished. If the pool is closed, fn runs synchronously on the caller.
func (p *Pool) Go(fn func()) <-chan struct{} {
	done := make(chan struct{})
	if err := p.Submit(func() {
		defer close(done)
		fn()
	}); err != nil {
		fn()
		close(done)
	}
	return done
}

// Close stops accepting tasks, waits for queued tasks to finish, and
// releases the workers. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.tasks)
	p.mu.Unlock()
	p.wg.Wait()
}
