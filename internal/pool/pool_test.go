package pool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutesAllTasks(t *testing.T) {
	p := New(4)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if err := p.Submit(func() {
			n.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("executed %d/100", n.Load())
	}
}

func TestWidthClamped(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("width %d", p.Workers())
	}
}

func TestParallelism(t *testing.T) {
	p := New(4)
	defer p.Close()
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inFlight.Add(-1)
		})
	}
	wg.Wait()
	if peak.Load() < 2 {
		t.Fatalf("no observed parallelism (peak %d)", peak.Load())
	}
	if peak.Load() > 4 {
		t.Fatalf("parallelism exceeded pool width: %d", peak.Load())
	}
}

func TestCloseIdempotentAndRejects(t *testing.T) {
	p := New(2)
	p.Close()
	p.Close() // must not panic
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestCloseWaitsForQueued(t *testing.T) {
	p := New(1)
	var done atomic.Bool
	p.Submit(func() { time.Sleep(20 * time.Millisecond) })
	p.Submit(func() { done.Store(true) })
	p.Close()
	if !done.Load() {
		t.Fatal("Close returned before queued task ran")
	}
}

func TestGoSignalsCompletion(t *testing.T) {
	p := New(2)
	defer p.Close()
	var ran atomic.Bool
	done := p.Go(func() { ran.Store(true) })
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Go never signalled")
	}
	if !ran.Load() {
		t.Fatal("fn did not run")
	}
}

func TestGoOnClosedPoolRunsInline(t *testing.T) {
	p := New(1)
	p.Close()
	var ran atomic.Bool
	done := p.Go(func() { ran.Store(true) })
	<-done
	if !ran.Load() {
		t.Fatal("fn did not run inline on closed pool")
	}
}

func TestExecutedCounter(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	p.Close()
	if p.Executed() != 10 {
		t.Fatalf("executed counter %d", p.Executed())
	}
}

func TestPanickingTaskKeepsWorkerAlive(t *testing.T) {
	// Every worker's first task panics; the pool must recover all of
	// them, count them, and still execute a full follow-up load at full
	// width — a dead worker would strand its deque and hang Close.
	p := New(4)
	var boom sync.WaitGroup
	for i := 0; i < 8; i++ {
		boom.Add(1)
		if err := p.Submit(func() {
			defer boom.Done()
			panic("task bug")
		}); err != nil {
			t.Fatal(err)
		}
	}
	boom.Wait()
	if got := p.Metrics().PanickedTasks; got != 8 {
		t.Fatalf("PanickedTasks = %d, want 8", got)
	}

	// Throughput after the panics: enough concurrent barrier tasks that
	// completion requires all four workers to still be dispatching.
	var gate sync.WaitGroup
	gate.Add(4)
	release := make(chan struct{})
	var done sync.WaitGroup
	for i := 0; i < 4; i++ {
		done.Add(1)
		if err := p.Submit(func() {
			defer done.Done()
			gate.Done()
			<-release
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitOK := make(chan struct{})
	go func() { gate.Wait(); close(waitOK) }()
	select {
	case <-waitOK:
	case <-time.After(5 * time.Second):
		t.Fatal("pool lost workers after panics: 4-way barrier never filled")
	}
	close(release)
	done.Wait()

	// Close must not hang on a worker killed by a panic.
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung after panicking tasks")
	}
	if got := p.Metrics().Executed; got != 12 {
		t.Fatalf("Executed = %d, want 12 (panicked tasks count too)", got)
	}
}
