package pool

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// Satellite regression: worker PRNGs must derive from the pool seed, not
// just the worker index, so two pools with different seeds explore
// different steal orders while the same seed reproduces the same ones.

func TestWorkerSeedDerivation(t *testing.T) {
	// Never zero (xorshift fixpoint), distinct across workers, and
	// sensitive to the pool seed.
	seen := map[uint64]bool{}
	for _, poolSeed := range []uint64{0, 1, 42, ^uint64(0)} {
		for i := 0; i < 16; i++ {
			s := WorkerSeed(poolSeed, i)
			if s == 0 {
				t.Fatalf("WorkerSeed(%d, %d) = 0", poolSeed, i)
			}
			if seen[s] {
				t.Fatalf("WorkerSeed(%d, %d) = %#x collides", poolSeed, i, s)
			}
			seen[s] = true
		}
	}
	if WorkerSeed(7, 3) != WorkerSeed(7, 3) {
		t.Fatal("WorkerSeed not deterministic")
	}
}

func TestWorkerSeedLegacyCompat(t *testing.T) {
	// New(w) is NewSeeded(w, 0); seed-0 derivation must stay the
	// historical index-only stream so existing behavior is unchanged.
	for i := 0; i < 8; i++ {
		want := (uint64(i) + 1) * 0x9E3779B97F4A7C15
		if got := WorkerSeed(0, i); got != want {
			t.Fatalf("WorkerSeed(0, %d) = %#x, want legacy %#x", i, got, want)
		}
	}
}

func TestSeedAccessor(t *testing.T) {
	p := NewSeeded(2, 1234)
	defer p.Close()
	if p.Seed() != 1234 {
		t.Fatalf("Seed() = %d, want 1234", p.Seed())
	}
	q := New(2)
	defer q.Close()
	if q.Seed() != 0 {
		t.Fatalf("New pool Seed() = %d, want 0", q.Seed())
	}
}

func TestControllerAttachedPoolExecutesAll(t *testing.T) {
	// With a controller attached, multi-shard dispatch routes pop/steal
	// decisions through Choose; every task must still run exactly once
	// and the pool must stay live (workers release the token immediately,
	// so no stall force-admissions).
	ctl := sched.NewRandom(77)
	p := NewSeeded(4, 9)
	p.SetController(ctl)
	const n = 200
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(n)
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = func() { ran.Add(1); wg.Done() }
	}
	p.SubmitBatch(tasks)
	wg.Wait()
	p.Close()
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
	if ctl.Stalls() != 0 {
		t.Fatalf("pool dispatch stalled %d times under controller", ctl.Stalls())
	}
	if ctl.Admissions() == 0 {
		t.Fatal("controller saw no pool decision points on a 4-shard pool")
	}
	if p.SetController(nil); p.controller() != nil {
		t.Fatal("SetController(nil) did not detach")
	}
}
