package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// The chaos experiment turns the paper's correctness claim (§3.1: a failed
// speculation never changes the program's output) adversarial. A seeded
// fault injector (internal/fault) manufactures failures the validation
// layer was never told about — auxiliary code that panics, speculative
// states that are garbage, compute lanes that die or stall — and each
// scenario checks three things: the process never crashes, the outputs are
// identical to an uninjected sequential baseline, and the failure
// accounting reconciles exactly across the engine's Stats, the observer's
// event log, and a live /metrics scrape of a telemetry server running over
// the same runs.

// chaosState is the synthetic dependence's state: an exact prefix sum, so
// the auxiliary code can be made exact and every corruption is detectable.
type chaosState struct{ Sum float64 }

// chaosOps supplies clone and exact-match acceptance for chaosState.
func chaosOps() core.StateOps[chaosState] {
	return core.StateOps[chaosState]{
		Clone: func(s chaosState) chaosState { return s },
		MatchAny: func(spec chaosState, originals []chaosState) bool {
			for _, o := range originals {
				if spec.Sum == o.Sum {
					return true
				}
			}
			return false
		},
	}
}

// chaosCompute is deterministic and state-coupled: the output embeds the
// running sum, so a wrong state chain corrupts outputs detectably.
func chaosCompute(_ *rng.Source, in int, s chaosState) (int, chaosState) {
	s.Sum += float64(in)
	return in*2 + int(s.Sum), s
}

// chaosAux is exact when the engine's window covers the whole prefix
// (the scenarios set Window = len(inputs)): initial state plus the sum of
// everything before the group is the true state.
func chaosAux(_ *rng.Source, init chaosState, recent []int) chaosState {
	for _, v := range recent {
		init.Sum += float64(v)
	}
	return init
}

// chaosGarbage corrupts a speculative state so no original can match it.
func chaosGarbage(s chaosState) chaosState {
	return chaosState{Sum: s.Sum - 1e12}
}

// ChaosScenario is one injection campaign.
type ChaosScenario struct {
	// Name labels the scenario's table row.
	Name string
	// Cfg is the injector configuration (rates are per call site).
	Cfg fault.Config
	// ComputeOnce arms transient compute panics (fault.WrapComputeOnce,
	// one fresh wrapper per engine run).
	ComputeOnce bool
	// Protocol selects the speculation protocol the scenario runs under
	// (the zero value is the default aux protocol).
	Protocol core.Protocol
	// FootprintLie switches the scenario to the slotted dependence whose
	// compute touches a state slot its declared footprint omits, with the
	// runtime footprint oracle armed (Options.FootprintCheck).
	FootprintLie bool
	// GroupTimeout is passed to the engine (0 disables deadlines).
	GroupTimeout time.Duration
	// Breaker attaches a fresh circuit breaker across the scenario's runs.
	Breaker bool
	// Runs is how many engine runs the scenario performs over the same
	// input block (chunked, so the breaker sees a run sequence).
	Runs int
}

// ChaosResult is one scenario's outcome.
type ChaosResult struct {
	Name string
	Runs int
	// Injected faults, per site, as counted by the injector.
	AuxPanics, Garbage, ComputePanics, Delays uint64
	// Engine accounting summed over the runs.
	PanickedGroups, TimedOutGroups, Aborts, BreakerDenied int
	// Rounds sums reservation rounds over the runs (0 under the aux
	// protocol); nonzero proves a reservations scenario actually engaged
	// the reserve/check/commit machinery before its faults landed.
	Rounds int
	// FootprintViolations sums the runtime footprint oracle's catches
	// (undeclared slot touches) over the runs; EventFootprints is the
	// event-log total of the same occurrences.
	FootprintViolations int
	EventFootprints     int64
	// BreakerTrips is the breaker's lifetime trip count (0 without one).
	BreakerTrips int64
	// EventPanics and EventTimeouts are the event-log totals (EvPanic /
	// EvGroupTimeout occurrences in the tracer).
	EventPanics, EventTimeouts int64
	// LaneCPUCommittedNS and LaneCPUWastedNS sum the engine's wasted-work
	// attribution over the runs; EventLaneCommittedNS and
	// EventLaneWastedNS are the event-log totals of the same nanoseconds.
	LaneCPUCommittedNS, LaneCPUWastedNS     int64
	EventLaneCommittedNS, EventLaneWastedNS int64
	// MidScrapes counts /metrics expositions parsed between runs.
	MidScrapes int
	// OutputsIdentical is true when every run's outputs and final state
	// equal the uninjected sequential baseline's.
	OutputsIdentical bool
	// Reconciled is true when Stats, the event log and the final scrape
	// agree on the failure counters.
	Reconciled bool
}

// chaosScenarios returns the standard campaign. The acceptance bar is the
// 10% aux-panic and garbage scenarios; the others cross the remaining
// fault sites with the runtime's defenses (deadlines, the breaker).
func chaosScenarios(seed uint64) []ChaosScenario {
	return []ChaosScenario{
		{Name: "aux-panic 10%", Cfg: fault.Config{Seed: seed, AuxPanicRate: 0.10}, Runs: 3},
		{Name: "garbage 10%", Cfg: fault.Config{Seed: seed + 1, GarbageRate: 0.10}, Runs: 3},
		{Name: "aux+garbage 10%", Cfg: fault.Config{Seed: seed + 2, AuxPanicRate: 0.10, GarbageRate: 0.10}, Runs: 3},
		{Name: "compute transient", Cfg: fault.Config{Seed: seed + 3, ComputePanicRate: 0.25}, ComputeOnce: true, Runs: 3},
		{Name: "mixed + breaker", Cfg: fault.Config{Seed: seed + 4, AuxPanicRate: 0.3, GarbageRate: 0.3}, Breaker: true, Runs: 8},
		{Name: "delay + deadline", Cfg: fault.Config{Seed: seed + 5, DelayRate: 0.3, Delay: 3 * time.Millisecond}, GroupTimeout: time.Millisecond, Runs: 2},
		// The same transient-compute-panic campaign under deterministic
		// reservations: the panic lands on a reservation lane mid-round, the
		// round is squashed and the group falls back sequentially — outputs
		// must still be byte-identical to the uninjected baseline.
		{Name: "reservations transient", Cfg: fault.Config{Seed: seed + 6, ComputePanicRate: 0.25}, ComputeOnce: true, Protocol: core.ProtocolReservations, Runs: 3},
		// A dependence that lies about its reservation footprint: the
		// compute touches a neighbor slot the footprint never declared.
		// The runtime oracle must catch the undeclared touch before it
		// commits, squash the group, and fall back sequentially — so
		// outputs still match the uninjected baseline exactly.
		{Name: "lying footprint", Cfg: fault.Config{Seed: seed + 7}, Protocol: core.ProtocolReservations, FootprintLie: true, Runs: 3},
	}
}

// ChaosRun executes the chaos campaign and returns per-scenario results.
// Any crash, output divergence or reconciliation failure is reported in
// the result row; injector or infrastructure errors abort the experiment.
func ChaosRun(e *Env) ([]ChaosResult, error) {
	const (
		n         = 256
		workers   = 4
		groupSize = 8
	)
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i + 1
	}
	dep := core.New(chaosCompute, chaosAux, chaosOps())
	// The uninjected sequential baseline: the output contract every
	// injected run must reproduce byte for byte.
	baseOuts, baseFinal, _ := dep.Run(inputs, chaosState{}, core.Options{})

	var out []ChaosResult
	for _, sc := range chaosScenarios(e.Seed) {
		var r ChaosResult
		var err error
		if sc.FootprintLie {
			r, err = chaosFootprintRun(sc, inputs, workers, groupSize)
		} else {
			r, err = chaosScenarioRun(sc, inputs, baseOuts, baseFinal, workers, groupSize)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", sc.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// chaosLieSlots is the slot count of the lying-footprint dependence.
const chaosLieSlots = 4

// chaosLieCompute is the slotted dependence with the seeded footprint
// bug: every input updates its own slot, but every seventh input also
// bumps the neighbor slot — a touch the declared footprint omits.
func chaosLieCompute(_ *rng.Source, in int, st []float64) (int, []float64) {
	st[in%chaosLieSlots] += float64(in)
	if in%7 == 3 {
		st[(in+1)%chaosLieSlots]++ // the lie: undeclared neighbor write
	}
	return in*2 + int(st[in%chaosLieSlots]), st
}

// chaosLieDep builds the dependence whose ReserveOps declare only the
// input's own slot, with the Touched hook the oracle needs.
func chaosLieDep() *core.Dependence[int, []float64, int] {
	ops := core.StateOps[[]float64]{
		Clone: func(s []float64) []float64 { return append([]float64(nil), s...) },
	}
	return core.New(chaosLieCompute, nil, ops).WithReserve(core.ReserveOps[int, []float64]{
		NumSlots:  func(initial []float64) int { return len(initial) },
		Footprint: func(in int, _ []float64) []int { return []int{in % chaosLieSlots} },
		Merge: func(dst, src []float64, slots []int) []float64 {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
		Touched: func(before, after []float64) []int {
			var out []int
			for i := range before {
				if before[i] != after[i] {
					out = append(out, i)
				}
			}
			return out
		},
	})
}

// chaosFootprintRun executes the lying-footprint scenario: reservations
// with the footprint oracle armed over a compute whose declared footprint
// under-approximates its touches. The oracle must fire, the poisoned
// rounds must be squashed before commit, and the sequential fallback must
// keep the outputs byte-identical to the uninjected baseline.
func chaosFootprintRun(sc ChaosScenario, inputs []int, workers, groupSize int) (ChaosResult, error) {
	ob := obs.NewObserver(workers+1, 1<<14)
	srv := telemetry.NewServer(telemetry.Config{Observer: ob})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return ChaosResult{}, err
	}
	defer srv.Close()

	baseOuts, baseFinal, _ := chaosLieDep().Run(inputs, make([]float64, chaosLieSlots), core.Options{})

	res := ChaosResult{Name: sc.Name, Runs: sc.Runs, OutputsIdentical: true}
	for run := 0; run < sc.Runs; run++ {
		outs, final, st, err := chaosLieDep().RunChecked(inputs, make([]float64, chaosLieSlots), core.Options{
			UseAux: true, Protocol: core.ProtocolReservations, FootprintCheck: true,
			GroupSize: groupSize, Workers: workers,
			Seed: sc.Cfg.Seed + uint64(run), Obs: ob,
		})
		if err != nil {
			return res, fmt.Errorf("run %d escaped containment: %w", run, err)
		}
		if len(final) != len(baseFinal) || !equalInts(outs, baseOuts) {
			res.OutputsIdentical = false
		} else {
			for i := range final {
				if final[i] != baseFinal[i] {
					res.OutputsIdentical = false
				}
			}
		}
		res.PanickedGroups += st.PanickedGroups
		res.TimedOutGroups += st.TimedOutGroups
		res.Aborts += st.Aborts
		res.Rounds += st.Rounds
		res.FootprintViolations += st.FootprintViolations

		if _, err := scrapeOnce(srv.URL()); err != nil {
			return res, fmt.Errorf("mid-run scrape: %w", err)
		}
		res.MidScrapes++
	}

	for _, ev := range ob.Tracer.Snapshot() {
		if ev.Kind == obs.EvFootprintViolation {
			res.EventFootprints++
		}
	}
	final, err := scrapeOnce(srv.URL())
	if err != nil {
		return res, fmt.Errorf("final scrape: %w", err)
	}
	v, _ := final.Value("stats_footprint_violations_total")
	res.Reconciled = int64(res.FootprintViolations) == ob.FootprintViolations.Value() &&
		int64(res.FootprintViolations) == int64(v)
	if ob.Tracer.Dropped() == 0 {
		res.Reconciled = res.Reconciled && res.EventFootprints == int64(res.FootprintViolations)
	}
	return res, nil
}

// chaosScenarioRun executes one scenario under a live telemetry server.
func chaosScenarioRun(sc ChaosScenario, inputs []int, baseOuts []int, baseFinal chaosState, workers, groupSize int) (ChaosResult, error) {
	in := fault.New(sc.Cfg)
	ob := obs.NewObserver(workers+1, 1<<14)

	var b *core.Breaker
	if sc.Breaker {
		// Long window and cooldown: once tripped the breaker stays open
		// for the rest of the scenario, so the denial count is exact.
		b = core.NewBreaker(core.BreakerConfig{
			Window: time.Hour, MinRuns: 4, TripRate: 0.5, Cooldown: time.Hour,
		})
	}
	srv := telemetry.NewServer(telemetry.Config{Observer: ob, Breaker: b})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return ChaosResult{}, err
	}
	defer srv.Close()

	// A fourth account of the campaign: an hour-window signals aggregator
	// whose start-to-end deltas must equal the summed engine Stats.
	sig := telemetry.NewSignals(ob, telemetry.SignalsConfig{Window: time.Hour, Breaker: b})
	sig.Report() // baseline sample before any run

	aux := fault.WrapAux(in, chaosAux, chaosGarbage)
	res := ChaosResult{Name: sc.Name, Runs: sc.Runs, OutputsIdentical: true}
	for run := 0; run < sc.Runs; run++ {
		compute := core.Compute[int, chaosState, int](chaosCompute)
		if sc.ComputeOnce {
			// One fresh wrapper per run: at most one transient compute
			// fault per run, guaranteed to land on a containable lane.
			compute = fault.WrapComputeOnce(in, chaosCompute,
				func(i int) uint64 { return uint64(i) })
		} else if sc.Cfg.DelayRate > 0 {
			compute = fault.WrapCompute(in, chaosCompute)
		}
		dep := core.New(compute, aux, chaosOps())
		outs, final, st, err := dep.RunChecked(inputs, chaosState{}, core.Options{
			UseAux: true, Protocol: sc.Protocol,
			GroupSize: groupSize, Window: len(inputs),
			RedoMax: 1, Rollback: 4, Workers: workers,
			Seed: sc.Cfg.Seed + uint64(run),
			Obs:  ob, GroupTimeout: sc.GroupTimeout, Breaker: b,
		})
		if err != nil {
			// The no-crash guarantee failed: a fault escaped containment.
			return res, fmt.Errorf("run %d escaped containment: %w", run, err)
		}
		if final != baseFinal || !equalInts(outs, baseOuts) {
			res.OutputsIdentical = false
		}
		res.PanickedGroups += st.PanickedGroups
		res.TimedOutGroups += st.TimedOutGroups
		res.Aborts += st.Aborts
		res.BreakerDenied += st.BreakerDenied
		res.Rounds += st.Rounds
		res.LaneCPUCommittedNS += st.LaneCPUCommittedNS
		res.LaneCPUWastedNS += st.LaneCPUWastedNS

		// A live scrape between runs: every exposition must parse and
		// satisfy the registry's structural invariants.
		if _, err := scrapeOnce(srv.URL()); err != nil {
			return res, fmt.Errorf("mid-run scrape: %w", err)
		}
		res.MidScrapes++
	}

	res.AuxPanics = in.Fired(fault.SiteAux)
	res.Garbage = in.Fired(fault.SiteGarbage)
	res.ComputePanics = in.Fired(fault.SiteCompute)
	res.Delays = in.Fired(fault.SiteDelay)
	if b != nil {
		res.BreakerTrips = b.Snapshot().Trips
	}
	for _, ev := range ob.Tracer.Snapshot() {
		switch ev.Kind {
		case obs.EvPanic:
			res.EventPanics++
		case obs.EvGroupTimeout:
			res.EventTimeouts++
		case obs.EvLaneCPUCommitted:
			res.EventLaneCommittedNS += ev.Arg
		case obs.EvLaneCPUWasted:
			res.EventLaneWastedNS += ev.Arg
		}
	}

	final, err := scrapeOnce(srv.URL())
	if err != nil {
		return res, fmt.Errorf("final scrape: %w", err)
	}
	res.Reconciled = chaosReconciled(res, ob, b, final, sig.Report())
	return res, nil
}

// chaosReconciled checks the failure accounting across every account the
// runtime keeps: engine Stats sums, observer instruments, the event log
// (when no events were dropped), the final /metrics exposition, and the
// signals window's start-to-end deltas must agree exactly.
func chaosReconciled(r ChaosResult, ob *obs.Observer, b *core.Breaker, m *telemetry.PromMetrics, rep telemetry.SignalsReport) bool {
	v := func(name string) int64 {
		f, _ := m.Value(name)
		return int64(f)
	}
	ok := int64(r.PanickedGroups) == ob.PanickedGroups.Value() &&
		int64(r.PanickedGroups) == v("stats_panicked_groups_total") &&
		int64(r.TimedOutGroups) == ob.GroupTimeouts.Value() &&
		int64(r.TimedOutGroups) == v("stats_group_timeouts_total") &&
		int64(r.Aborts) == ob.Aborts.Value() &&
		int64(r.Aborts) == v("stats_aborts_total") &&
		r.LaneCPUCommittedNS == ob.LaneCPUCommitted.Value() &&
		r.LaneCPUCommittedNS == v("stats_lane_cpu_committed_ns_total") &&
		r.LaneCPUWastedNS == ob.LaneCPUWasted.Value() &&
		r.LaneCPUWastedNS == v("stats_lane_cpu_wasted_ns_total")
	// The signals window opened before the first run, so its deltas are
	// the whole campaign.
	ok = ok && rep.PanickedGroups == int64(r.PanickedGroups) &&
		rep.TimedOutGroups == int64(r.TimedOutGroups) &&
		rep.Aborts == int64(r.Aborts) &&
		rep.LaneCPUCommittedNS == r.LaneCPUCommittedNS &&
		rep.LaneCPUWastedNS == r.LaneCPUWastedNS
	if ob.Tracer.Dropped() == 0 {
		ok = ok && r.EventPanics == int64(r.PanickedGroups) &&
			r.EventTimeouts == int64(r.TimedOutGroups) &&
			r.EventLaneCommittedNS == r.LaneCPUCommittedNS &&
			r.EventLaneWastedNS == r.LaneCPUWastedNS
	}
	if b != nil {
		snap := b.Snapshot()
		ok = ok && r.BreakerTrips == v("breaker_trips_total") &&
			int64(r.BreakerDenied) == snap.Denied &&
			int64(r.BreakerDenied) == v("breaker_denied_runs_total")
	}
	return ok
}

// equalInts compares two output slices element-wise.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ChaosTable renders the chaos campaign as an experiment table.
func ChaosTable(e *Env) (*Table, error) {
	res, err := ChaosRun(e)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Chaos — injected faults vs the §3.1 output guarantee",
		Columns: []string{
			"runs", "injected", "panicked", "timed out", "aborts",
			"denied", "trips", "fpviol", "output ok", "reconciled",
		},
	}
	for _, r := range res {
		injected := fmt.Sprintf("%d", r.AuxPanics+r.Garbage+r.ComputePanics+r.Delays)
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Runs),
			injected,
			fmt.Sprintf("%d", r.PanickedGroups),
			fmt.Sprintf("%d", r.TimedOutGroups),
			fmt.Sprintf("%d", r.Aborts),
			fmt.Sprintf("%d", r.BreakerDenied),
			fmt.Sprintf("%d", r.BreakerTrips),
			fmt.Sprintf("%d", r.FootprintViolations),
			fmt.Sprintf("%v", r.OutputsIdentical),
			fmt.Sprintf("%v", r.Reconciled),
		)
	}
	t.AddNote("each scenario injects seeded faults (aux panics, garbage speculative states, transient compute panics, delays, a lying reservation footprint) into a deterministic dependence and requires: no crash, outputs byte-identical to the uninjected sequential baseline, and failure counters reconciling across engine Stats, the event log, and a live /metrics scrape")
	return t, nil
}
