package harness

import "repro/internal/mathx"

// Fig03Result is one benchmark's best out-of-the-box speedup.
type Fig03Result struct {
	Name      string
	Speedup   float64
	AtThreads int
}

// Fig03 measures the highest speedup the original (traditionally
// parallelized) benchmarks reach on the 28-core platform (Fig. 3). The
// distance from the ideal 28x is the paper's motivation: the need for
// scavenging additional TLP.
func Fig03(e *Env) []Fig03Result {
	var out []Fig03Result
	for _, w := range e.Targets() {
		best, at := e.BestOriginal(w)
		out = append(out, Fig03Result{Name: w.Desc().Name, Speedup: best, AtThreads: at})
	}
	return out
}

// Fig03Table renders Fig. 3 with the paper's geometric-mean bar.
func Fig03Table(e *Env) *Table {
	t := &Table{
		Title:   "Fig. 3 — Highest speedup of original benchmarks (28-core platform)",
		Columns: []string{"speedup", "at threads"},
	}
	var speedups []float64
	for _, r := range Fig03(e) {
		t.AddRow(r.Name, F(r.Speedup), F(float64(r.AtThreads)))
		speedups = append(speedups, r.Speedup)
	}
	t.AddRow("geo. mean", F(mathx.GeoMean(speedups)), "")
	t.AddNote("ideal is 28x; the gap shows the need for scavenging additional TLP (paper geomean: 7.75x)")
	return t
}
