package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/workload"
)

// The explore experiment is the systematic-testing counterpart of chaos:
// instead of injecting faults under the OS scheduler's one arbitrary
// interleaving, it pins every nondeterministic decision point of the
// engine (group dispatch, aux-vs-compute ordering, validate/squash races,
// pool steal choices) to a seeded controller and sweeps schedules. Every
// row runs its target under N controlled schedules — alternating a seeded
// random walk and PCT-style priority exploration — records each decision
// trace, and checks the run's output contract:
//
//   - workload rows: the result must be identical (Distance == 0) to a
//     controller-free reference run with the same engine seed, because
//     every engine random stream is pre-split in group order and
//     validation outcomes are schedule-independent;
//   - synthetic fault rows: outputs must stay byte-identical to the
//     uninjected sequential baseline (the §3.1 guarantee) while seeded aux
//     panics and garbage speculative states land under every schedule.
//
// A sample of recorded traces is replayed through sched.Replay to verify
// a trace pins its run; any divergence is delta-debugged down to a
// minimal failing schedule and dumped for offline replay.

// ExploreConfig sizes the exploration campaign.
type ExploreConfig struct {
	// SchedulesPerRow is how many controlled schedules each row runs
	// (half random-walk, half PCT). 0 picks 25 (4 in quick mode).
	SchedulesPerRow int
	// ReplayEvery replays every k-th recorded schedule to verify trace
	// fidelity. 0 picks 8.
	ReplayEvery int
	// DumpDir receives minimized failing schedules ("" = testdata/schedules).
	DumpDir string
}

// ExploreRow is one exploration target's outcome.
type ExploreRow struct {
	Name string
	// Schedules is how many controlled schedules ran; Distinct counts
	// distinct decision traces among them (by trace hash).
	Schedules, Distinct int
	// Replays counts trace-replay verifications; ReplayDivergences sums
	// fallback decisions and stall force-admissions across them.
	Replays, ReplayDivergences int
	// Stalls sums stall force-admissions across the exploration runs
	// (nonzero means a blocking operation is not wrapped for the gate).
	Stalls int
	// Failures counts schedules whose run broke the row's output
	// contract; each one is minimized and dumped.
	Failures int
}

type exploreTarget struct {
	name string
	// run executes the target under the controller (nil = reference) and
	// reports whether the output contract held.
	run func(ctl sched.Controller) bool
}

// exploreTargets assembles the row set: the six STATS workloads plus
// synthetic fault-injection mixes. Fault sites are limited to the
// coordinator-ordered ones (aux panics, garbage states): their injection
// pattern depends only on the boundary order, so the same fault seed
// lands the same faults under every schedule.
func exploreTargets(e *Env) []exploreTarget {
	var ts []exploreTarget
	for _, w := range e.Targets() {
		if !w.Desc().SupportsSTATS {
			continue
		}
		w := w
		opts := workload.SpecOptions{
			UseAux: true, GroupSize: 4, Window: 2,
			RedoMax: 2, Rollback: 2, Workers: 2,
		}
		ref, _ := w.RunSTATS(e.Seed, e.RealSize, opts)
		ts = append(ts, exploreTarget{
			name: w.Desc().Name,
			run: func(ctl sched.Controller) bool {
				o := opts
				o.Sched = ctl
				got, _ := w.RunSTATS(e.Seed, e.RealSize, o)
				return got.Distance(ref) == 0
			},
		})

		// The same workload under the reservations protocol: schedules now
		// drive the reserve/check/commit yield points, and the contract is
		// stronger — the output must equal the engine's own sequential run
		// of the same shape (the protocol's by-construction guarantee), not
		// just a controller-free reference.
		resvOpts := workload.SpecOptions{
			UseAux: true, Protocol: core.ProtocolReservations,
			GroupSize: 4, Workers: 2,
		}
		seqOpts := resvOpts
		seqOpts.UseAux = false
		resvRef, _ := w.RunSTATS(e.Seed, e.RealSize, seqOpts)
		ts = append(ts, exploreTarget{
			name: w.Desc().Name + " (resv)",
			run: func(ctl sched.Controller) bool {
				o := resvOpts
				o.Sched = ctl
				got, st := w.RunSTATS(e.Seed, e.RealSize, o)
				return got.Distance(resvRef) == 0 && st.Rounds > 0
			},
		})
	}

	inputs := make([]int, 96)
	for i := range inputs {
		inputs[i] = i + 1
	}
	dep := core.New(chaosCompute, chaosAux, chaosOps())
	baseOuts, baseFinal, _ := dep.Run(inputs, chaosState{}, core.Options{})
	mixes := []struct {
		name string
		cfg  fault.Config
	}{
		{"synthetic aux-panic 10%", fault.Config{Seed: e.Seed + 10, AuxPanicRate: 0.10}},
		{"synthetic garbage 10%", fault.Config{Seed: e.Seed + 11, GarbageRate: 0.10}},
		{"synthetic aux+garbage 20%", fault.Config{Seed: e.Seed + 12, AuxPanicRate: 0.20, GarbageRate: 0.20}},
	}
	for _, mix := range mixes {
		cfg := mix.cfg
		ts = append(ts, exploreTarget{
			name: mix.name,
			run: func(ctl sched.Controller) bool {
				in := fault.New(cfg)
				aux := fault.WrapAux(in, chaosAux, chaosGarbage)
				d := core.New(chaosCompute, aux, chaosOps())
				outs, final, _, err := d.RunChecked(inputs, chaosState{}, core.Options{
					UseAux: true, GroupSize: 8, Window: len(inputs),
					RedoMax: 1, Rollback: 4, Workers: 2,
					Seed: cfg.Seed, Sched: ctl,
				})
				return err == nil && final == baseFinal && equalInts(outs, baseOuts)
			},
		})
	}

	// Reservation synthetics: schedules sweep the reserve/check/commit
	// yield points, clean and with one transient compute panic landing
	// mid-round (squashing the round into the sequential fallback). Both
	// must stay byte-identical to the uninjected sequential baseline.
	resvRun := func(ctl sched.Controller, in *fault.Injector) bool {
		compute := chaosCompute
		if in != nil {
			compute = fault.WrapComputeOnce(in, chaosCompute,
				func(v int) uint64 { return uint64(v) })
		}
		d := core.New(compute, nil, chaosOps())
		outs, final, st, err := d.RunChecked(inputs, chaosState{}, core.Options{
			UseAux: true, Protocol: core.ProtocolReservations,
			GroupSize: 8, Workers: 2, Seed: e.Seed + 13, Sched: ctl,
		})
		return err == nil && final == baseFinal && equalInts(outs, baseOuts) && st.Rounds > 0
	}
	ts = append(ts,
		exploreTarget{
			name: "synthetic reservations",
			run:  func(ctl sched.Controller) bool { return resvRun(ctl, nil) },
		},
		exploreTarget{
			name: "synthetic reservations compute-once 30%",
			run: func(ctl sched.Controller) bool {
				return resvRun(ctl, fault.New(fault.Config{
					Seed: e.Seed + 14, ComputePanicRate: 0.30,
				}))
			},
		},
	)
	return ts
}

// ExploreRun executes the exploration campaign.
func ExploreRun(e *Env, cfg ExploreConfig) ([]ExploreRow, error) {
	n := cfg.SchedulesPerRow
	if n <= 0 {
		n = 25
		if len(e.Threads) < 10 { // quick env
			n = 4
		}
	}
	replayEvery := cfg.ReplayEvery
	if replayEvery <= 0 {
		replayEvery = 8
	}
	dumpDir := cfg.DumpDir
	if dumpDir == "" {
		dumpDir = filepath.Join("testdata", "schedules")
	}

	var rows []ExploreRow
	for _, tgt := range exploreTargets(e) {
		row := ExploreRow{Name: tgt.name}
		hashes := map[uint64]bool{}
		for i := 0; i < n; i++ {
			ctlSeed := e.Seed ^ uint64(i)*0x9E3779B97F4A7C15
			var ctl *sched.Gate
			if i%2 == 0 {
				ctl = sched.NewRandom(ctlSeed, sched.WithRecording())
			} else {
				ctl = sched.NewPCT(ctlSeed, 3, 512, sched.WithRecording())
			}
			ok := tgt.run(ctl)
			row.Schedules++
			row.Stalls += ctl.Stalls()
			tr := ctl.TraceCopy()
			hashes[tr.Hash()] = true

			if !ok {
				row.Failures++
				if err := dumpMinimized(dumpDir, tgt, tr, i); err != nil {
					return rows, err
				}
				continue
			}
			if i%replayEvery == 0 {
				rep := newExploreReplay(tr)
				if !tgt.run(rep) {
					// The live run held the contract but its recorded
					// schedule does not reproduce it: a replay failure.
					row.Failures++
					if err := dumpMinimized(dumpDir, tgt, tr, i); err != nil {
						return rows, err
					}
				}
				row.Replays++
				row.ReplayDivergences += rep.Divergences()
			}
		}
		row.Distinct = len(hashes)
		rows = append(rows, row)
	}
	return rows, nil
}

// newExploreReplay builds a replay controller for exploration-scale runs:
// at Workers > 1 the pool's decision-point counts are timing-dependent,
// so a replay may need to resynchronize past recorded pool entries that
// never recur — a short stall timeout keeps each skip cheap (it is
// counted in Divergences(), not hidden).
func newExploreReplay(tr *sched.Trace) *sched.Replay {
	return sched.NewReplay(tr, sched.WithStallTimeout(100*time.Millisecond))
}

// dumpMinimized delta-debugs a failing schedule down to a 1-minimal trace
// still breaking the contract and writes it for offline replay.
func dumpMinimized(dir string, tgt exploreTarget, tr *sched.Trace, i int) error {
	min := sched.Minimize(tr, func(c *sched.Trace) bool {
		return !tgt.run(newExploreReplay(c))
	})
	min.Note = fmt.Sprintf("minimized failing schedule: %s (schedule %d)", tgt.name, i)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("explore: dump dir: %w", err)
	}
	name := filepath.Join(dir, fmt.Sprintf("failure-%s-%d.trace", sanitize(tgt.name), i))
	if err := min.WriteFile(name); err != nil {
		return fmt.Errorf("explore: dump %s: %w", name, err)
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// ExploreTable renders the campaign with the exploration counters.
func ExploreTable(e *Env, cfg ExploreConfig) (*Table, error) {
	rows, err := ExploreRun(e, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Explore — systematic schedule exploration under controlled scheduling",
		Columns: []string{
			"schedules", "distinct", "replays", "replay div", "stalls", "failures",
		},
	}
	var schedules, distinct, failures int
	for _, r := range rows {
		schedules += r.Schedules
		distinct += r.Distinct
		failures += r.Failures
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.Schedules),
			fmt.Sprintf("%d", r.Distinct),
			fmt.Sprintf("%d", r.Replays),
			fmt.Sprintf("%d", r.ReplayDivergences),
			fmt.Sprintf("%d", r.Stalls),
			fmt.Sprintf("%d", r.Failures),
		)
	}
	t.AddNote("%d schedules explored (%d distinct interleavings), %d contract failures; every run's nondeterministic decision points were driven by a seeded controller (alternating random walk and PCT), recorded traces sampled for replay fidelity, failures minimized to testdata/schedules/", schedules, distinct, failures)
	if failures != 0 {
		return t, fmt.Errorf("explore: %d schedule(s) broke the output contract (minimized traces dumped)", failures)
	}
	return t, nil
}
