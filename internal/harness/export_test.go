package harness

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{Title: "Sample", Columns: []string{"a", "b"}}
	t.AddRow("row1", "1", "2")
	t.AddRow("row2", "3") // short row: missing cell padded in CSV
	t.AddNote("a note")
	return t
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Label string   `json:"label"`
			Cells []string `json:"cells"`
		} `json:"rows"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Title != "Sample" || len(decoded.Rows) != 2 || decoded.Rows[0].Cells[1] != "2" {
		t.Fatalf("decoded: %+v", decoded)
	}
	if len(decoded.Notes) != 1 {
		t.Fatalf("notes: %v", decoded.Notes)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("records: %v", records)
	}
	if records[0][0] != "benchmark" || records[0][2] != "b" {
		t.Fatalf("header: %v", records[0])
	}
	if records[2][0] != "row2" || records[2][2] != "" {
		t.Fatalf("padded row: %v", records[2])
	}
}

func TestWriteDispatch(t *testing.T) {
	for _, format := range []string{"", "text", "json", "csv"} {
		var buf bytes.Buffer
		if err := sampleTable().Write(&buf, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced nothing", format)
		}
	}
	if err := sampleTable().Write(&bytes.Buffer{}, "yaml"); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown format error: %v", err)
	}
}
