package harness

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ScrapeCounters is the speculation-counter set the reconciliation
// compares across its three sources: the live /metrics exposition, the
// observer's instruments, and the engine's own run statistics.
type ScrapeCounters struct {
	Matches, Redos, Aborts, SpecCommits int64
}

// ScrapeResult is one benchmark's self-scrape reconciliation: the harness
// boots a telemetry server over the run's observer, scrapes its own
// /metrics endpoint while the engine is mid-run, and checks that the
// final exposition agrees exactly with the observer's instruments and the
// engine's Stats — the same numbers Table 1's runtime columns are built
// from.
type ScrapeResult struct {
	Name string
	// MidScrapes counts /metrics responses parsed while the run was in
	// flight (each must be a valid, internally-consistent exposition).
	MidScrapes int
	// Scraped, Observed and Engine are the counter set from the final
	// scrape, the observer, and core.Stats respectively.
	Scraped, Observed, Engine ScrapeCounters
	// P50ScrapedNS is the validation-latency median from the exposition's
	// quantile gauge; P50DirectNS the same read straight off the
	// histogram (Table 1's source).
	P50ScrapedNS, P50DirectNS int64
	// Reconciled is true when all three counter sources agree and the
	// scraped quantile equals the direct read.
	Reconciled bool
}

// reconciled checks the three-way agreement.
func (r ScrapeResult) reconciled() bool {
	return r.Scraped == r.Observed && r.Scraped == r.Engine &&
		r.P50ScrapedNS == r.P50DirectNS
}

// scrapeOnce fetches and structurally parses one /metrics exposition.
func scrapeOnce(url string) (*telemetry.PromMetrics, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	return telemetry.ParsePromText(string(body))
}

// counterSet extracts the reconciliation counters from a parsed scrape.
func counterSet(m *telemetry.PromMetrics) ScrapeCounters {
	v := func(name string) int64 {
		f, _ := m.Value(name)
		return int64(f)
	}
	return ScrapeCounters{
		Matches:     v("stats_validation_match_total"),
		Redos:       v("stats_redos_total"),
		Aborts:      v("stats_aborts_total"),
		SpecCommits: v("stats_speculative_commit_inputs_total"),
	}
}

// ScrapeReconcile runs every STATS target once with a telemetry server up
// over the run's observer, scraping its own /metrics mid-run, and
// reconciles the live exposition against the observer and the engine
// statistics.
func ScrapeReconcile(e *Env) ([]ScrapeResult, error) {
	var out []ScrapeResult
	for _, w := range e.Targets() {
		d := w.Desc()
		if !d.SupportsSTATS {
			continue
		}
		r, err := scrapeReconcileOne(e, w)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", d.Name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// scrapeReconcileOne runs one workload under a live telemetry server.
func scrapeReconcileOne(e *Env, w workload.Workload) (ScrapeResult, error) {
	const workers = 4
	ob := obs.NewObserver(workers+1, 1<<14)
	srv := telemetry.NewServer(telemetry.Config{Observer: ob})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return ScrapeResult{}, err
	}
	defer srv.Close()

	opts := workload.SpecOptions{
		UseAux: true, GroupSize: 4, Window: 2,
		RedoMax: 2, Rollback: 2, Workers: workers, Obs: ob,
	}
	done := make(chan ScrapeCounters, 1)
	go func() {
		_, st := w.RunSTATS(e.Seed, e.RealSize, opts)
		done <- ScrapeCounters{
			Matches:     int64(st.Matches),
			Redos:       int64(st.Redos),
			Aborts:      int64(st.Aborts),
			SpecCommits: int64(st.SpeculativeCommits),
		}
	}()

	// Scrape our own endpoint while the engine runs: every mid-run
	// exposition must parse and satisfy the histogram invariants (the
	// parser enforces them); values may lag the instruments, which is the
	// point — the final scrape below is the one that must agree.
	res := ScrapeResult{Name: w.Desc().Name}
	var engine ScrapeCounters
	running := true
	for running {
		select {
		case engine = <-done:
			running = false
		default:
			if _, err := scrapeOnce(srv.URL()); err != nil {
				return res, fmt.Errorf("mid-run scrape %d: %w", res.MidScrapes, err)
			}
			res.MidScrapes++
			time.Sleep(2 * time.Millisecond)
		}
	}

	final, err := scrapeOnce(srv.URL())
	if err != nil {
		return res, fmt.Errorf("final scrape: %w", err)
	}
	res.Scraped = counterSet(final)
	res.Observed = ScrapeCounters{
		Matches:     ob.Matches.Value(),
		Redos:       ob.Redos.Value(),
		Aborts:      ob.Aborts.Value(),
		SpecCommits: ob.SpecCommittedInputs.Value(),
	}
	res.Engine = engine
	if p50, ok := final.Value("stats_validation_latency_ns_p50"); ok {
		res.P50ScrapedNS = int64(p50)
	}
	res.P50DirectNS = ob.ValidationLatencyNS.Quantile(0.5)
	res.Reconciled = res.reconciled()
	return res, nil
}

// ScrapeTable renders the reconciliation as an experiment table.
func ScrapeTable(e *Env) (*Table, error) {
	res, err := ScrapeReconcile(e)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: "Self-scrape — live /metrics vs engine statistics",
		Columns: []string{
			"mid scrapes", "matches", "redos", "aborts", "spec commits",
			"val p50", "reconciled",
		},
	}
	for _, r := range res {
		t.AddRow(r.Name,
			fmt.Sprintf("%d", r.MidScrapes),
			fmt.Sprintf("%d", r.Scraped.Matches),
			fmt.Sprintf("%d", r.Scraped.Redos),
			fmt.Sprintf("%d", r.Scraped.Aborts),
			fmt.Sprintf("%d", r.Scraped.SpecCommits),
			fmtLatencyNS(r.P50ScrapedNS),
			fmt.Sprintf("%v", r.Reconciled),
		)
	}
	t.AddNote("each benchmark ran once under a live telemetry server scraping its own /metrics; counters shown are from the final scrape and must equal both the observer's instruments and the engine's Stats (Table 1's runtime columns draw from the same sources)")
	return t, nil
}
