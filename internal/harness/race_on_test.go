//go:build race

package harness

// raceEnabled scales the exploration tests down under the race detector:
// gate-serialized schedules magnify race-instrumentation overhead, and
// the full sweep belongs to the normal-mode suite and `make explore`.
const raceEnabled = true
