package harness

import (
	"strings"
	"testing"
)

// TestScrapeReconcile runs the self-scrape experiment at quick scale: for
// every STATS target, mid-run scrapes must parse, and the final live
// exposition must agree exactly with the observer's instruments and the
// engine's own statistics — the Table 1 runtime columns and the served
// /metrics view are the same numbers.
func TestScrapeReconcile(t *testing.T) {
	e := NewEnv(true)
	res, err := ScrapeReconcile(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no STATS targets reconciled")
	}
	committed := 0
	for _, r := range res {
		if !r.Reconciled {
			t.Errorf("%s: scrape %+v, observer %+v, engine %+v, p50 %d vs %d — sources disagree",
				r.Name, r.Scraped, r.Observed, r.Engine, r.P50ScrapedNS, r.P50DirectNS)
		}
		if r.Scraped.SpecCommits > 0 {
			committed++
		}
	}
	// Some targets legitimately speculate nothing at these fixed options
	// (fluidanimate's validations reject); the reconciliation must still
	// be exercised by real speculative traffic somewhere.
	if committed == 0 {
		t.Error("no target committed speculatively; reconciliation is vacuous")
	}
}

// TestScrapeTable keeps the statsexp rendering stable.
func TestScrapeTable(t *testing.T) {
	e := NewEnv(true)
	tab, err := ScrapeTable(e)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	if !strings.Contains(out, "reconciled") || !strings.Contains(out, "swaptions") {
		t.Errorf("scrape table missing expected content:\n%s", out)
	}
	if strings.Contains(out, "false") {
		t.Errorf("scrape table reports an unreconciled benchmark:\n%s", out)
	}
}
