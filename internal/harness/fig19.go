package harness

import (
	"repro/internal/autotune"
	"repro/internal/mathx"
	"repro/internal/profiler"
	"repro/internal/taskgen"
)

// Fig19Result is one benchmark's speedup when the autotuner trained on
// non-representative inputs (§4.6), evaluated on the real inputs.
type Fig19Result struct {
	Name        string
	Original    float64
	ParSTATS    float64
	BadTraining float64
}

// Fig19 trains each benchmark on the least-representative inputs (static
// subject, overlapping points, unrealistic swaptions, immobile face) and
// evaluates the resulting binary on the normal evaluation inputs. The
// runtime's checks keep correctness; only performance can suffer — and
// only a little.
func Fig19(e *Env) []Fig19Result {
	var out []Fig19Result
	for _, w := range e.Targets() {
		seq := e.SequentialTime(w)
		origBest, _ := e.BestOriginal(w)

		// Honest tuning for reference.
		honest := e.STATSSpeedup(w, taskgen.ParSTATS, 28)

		// Misled tuning: the profiler sees bad training inputs.
		train := e.profilerFor(w, taskgen.ParSTATS, 28)
		train.Training = true
		s := profiler.BuildSpace(w, 28)
		res := autotune.Tune(s, train.Objective(s, profiler.Time, true), autotune.Options{
			Budget: e.Budget, Seed: e.Seed ^ 0xBAD, Seeds: profiler.SeedConfigs(s),
		})
		opts, th := profiler.Decode(s, res.Best, w)
		// Evaluate the chosen configuration on the real inputs.
		opts.BadTraining = false
		eval := e.profilerFor(w, taskgen.ParSTATS, 28)
		bad := seq / eval.Measure(opts, th).TimeSeconds

		out = append(out, Fig19Result{
			Name:        w.Desc().Name,
			Original:    origBest,
			ParSTATS:    honest,
			BadTraining: bad,
		})
	}
	return out
}

// Fig19Table renders Fig. 19.
func Fig19Table(e *Env) *Table {
	res := Fig19(e)
	t := &Table{
		Title:   "Fig. 19 — Performance with non-representative training inputs",
		Columns: []string{"Original", "Par. STATS", "Par. STATS w/ bad training"},
	}
	var o, p, b []float64
	for _, r := range res {
		t.AddRow(r.Name, F(r.Original), F(r.ParSTATS), F(r.BadTraining))
		o = append(o, r.Original)
		p = append(p, r.ParSTATS)
		b = append(b, r.BadTraining)
	}
	gmP, gmB := mathx.GeoMean(p), mathx.GeoMean(b)
	t.AddRow("geo. mean", F(mathx.GeoMean(o)), F(gmP), F(gmB))
	t.AddNote("bad training loses %.1f%% of the tuned speedup (the paper reports only a small loss)", 100*(1-gmB/gmP))
	return t
}
