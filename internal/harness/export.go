package harness

import (
	"encoding/csv"
	"encoding/json"
	"io"
)

// jsonTable is the serialized form of a Table.
type jsonTable struct {
	Title   string    `json:"title"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
}

type jsonRow struct {
	Label string   `json:"label"`
	Cells []string `json:"cells"`
}

// WriteJSON serializes the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	jt := jsonTable{Title: t.Title, Columns: t.Columns, Notes: t.Notes}
	for _, r := range t.Rows {
		jt.Rows = append(jt.Rows, jsonRow{Label: r.Label, Cells: r.Cells})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// WriteCSV serializes the table as CSV: a header row ("benchmark" plus the
// columns) followed by one record per row. Notes are omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"benchmark"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		record := make([]string, len(header))
		record[0] = r.Label
		for i := range t.Columns {
			if i < len(r.Cells) {
				record[i+1] = r.Cells[i]
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Write renders the table in the given format: "text" (default), "json",
// or "csv".
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		t.Render(w)
		return nil
	case "json":
		return t.WriteJSON(w)
	case "csv":
		return t.WriteCSV(w)
	default:
		return errUnknownFormat(format)
	}
}

type errUnknownFormat string

func (e errUnknownFormat) Error() string { return "harness: unknown format " + string(e) }
