package harness

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/taskgen"
)

// Fig12Series is one benchmark's speedup-vs-threads curves.
type Fig12Series struct {
	Name     string
	Threads  []int
	Original []float64
	SeqSTATS []float64
	ParSTATS []float64
}

// Max returns the series' maximum values (the bar graph next to each plot
// in Fig. 12).
func (s Fig12Series) Max() (orig, seq, par float64) {
	return mathx.Max(s.Original), mathx.Max(s.SeqSTATS), mathx.Max(s.ParSTATS)
}

// Fig12 sweeps hardware threads for the three parallelization approaches.
// "Original" is the out-of-the-box parallelization; "Seq. STATS" uses only
// state-dependence TLP (autotuned); "Par. STATS" combines both (autotuned —
// the default mode of STATS). All speedups are against the single-threaded
// out-of-the-box benchmark.
func Fig12(e *Env) []Fig12Series {
	var out []Fig12Series
	for _, w := range e.Targets() {
		s := Fig12Series{Name: w.Desc().Name, Threads: e.Threads}
		for _, th := range e.Threads {
			s.Original = append(s.Original, e.OriginalSpeedup(w, th))
			s.SeqSTATS = append(s.SeqSTATS, e.STATSSpeedup(w, taskgen.SeqSTATS, th))
			s.ParSTATS = append(s.ParSTATS, e.STATSSpeedup(w, taskgen.ParSTATS, th))
		}
		out = append(out, s)
	}
	return out
}

// Fig12Table renders every benchmark's curve plus the max-speedup bars.
func Fig12Table(e *Env) []*Table {
	var tables []*Table
	for _, s := range Fig12(e) {
		t := &Table{
			Title:   fmt.Sprintf("Fig. 12 — %s: speedup vs hardware threads", s.Name),
			Columns: []string{"Original", "Seq. STATS", "Par. STATS"},
		}
		for i, th := range s.Threads {
			t.AddRow(fmt.Sprintf("%d threads", th), F(s.Original[i]), F(s.SeqSTATS[i]), F(s.ParSTATS[i]))
		}
		o, q, p := s.Max()
		t.AddRow("max", F(o), F(q), F(p))
		tables = append(tables, t)
	}
	return tables
}

// Fig13 returns the geometric means of the Fig. 12 curves (Fig. 13).
func Fig13(e *Env) Fig12Series {
	series := Fig12(e)
	out := Fig12Series{Name: "geo. mean", Threads: e.Threads}
	for i := range e.Threads {
		var o, q, p []float64
		for _, s := range series {
			o = append(o, s.Original[i])
			q = append(q, s.SeqSTATS[i])
			p = append(p, s.ParSTATS[i])
		}
		out.Original = append(out.Original, mathx.GeoMean(o))
		out.SeqSTATS = append(out.SeqSTATS, mathx.GeoMean(q))
		out.ParSTATS = append(out.ParSTATS, mathx.GeoMean(p))
	}
	return out
}

// Fig13Table renders Fig. 13.
func Fig13Table(e *Env) *Table {
	s := Fig13(e)
	t := &Table{
		Title:   "Fig. 13 — Geometric mean of Fig. 12 speedups",
		Columns: []string{"Original", "Par. STATS"},
	}
	for i, th := range s.Threads {
		t.AddRow(fmt.Sprintf("%d threads", th), F(s.Original[i]), F(s.ParSTATS[i]))
	}
	last := len(s.Threads) - 1
	t.AddNote("paper at 28 threads: Original 7.75x -> Par. STATS 20.01x (+158.2%%); here: %sx -> %sx (+%.1f%%)",
		F(s.Original[last]), F(s.ParSTATS[last]),
		100*(s.ParSTATS[last]/s.Original[last]-1))
	return t
}
