package harness

import (
	"repro/internal/mathx"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// Fig14Result is one benchmark's single-socket Hyper-Threading study.
type Fig14Result struct {
	Name       string
	Original   float64 // 14 threads, HT off
	OriginalHT float64 // 28 hardware threads on 14 cores
	ParSTATS   float64
	ParSTATSHT float64
}

// Fig14 constrains execution to a single socket and measures the extra
// performance Hyper-Threading provides (Fig. 14). The paper's reading: the
// +32% STATS gains from HT ≈ Intel's guidance for a successful HT use, so
// STATS is constrained by hardware resources, not by a lack of TLP.
func Fig14(e *Env) []Fig14Result {
	noHT := platform.SingleSocket14(false)
	withHT := platform.SingleSocket14(true)
	var out []Fig14Result
	for _, w := range e.Targets() {
		r := Fig14Result{Name: w.Desc().Name}
		seq := e.SequentialTime(w)
		measureOriginal := func(mach platform.Machine, threads int) float64 {
			p := &profiler.P{
				Machine: mach, Threads: threads, Energy: e.Energy,
				W: w, Size: e.Size, Mode: taskgen.Original, GraphSeed: e.Seed,
			}
			return seq / p.Measure(workload.SpecOptions{}, threads).TimeSeconds
		}
		// STATS performs its state-space search per machine ("the
		// default mode of operation for STATS" is a search for a number
		// of cores, §4.3).
		tuned := func(mach platform.Machine, key string, threads int) float64 {
			meas, _, _ := e.TunedSTATSOn(mach, key, w, taskgen.ParSTATS, threads, profiler.Time)
			return seq / meas.TimeSeconds
		}
		r.Original = measureOriginal(noHT, 14)
		r.OriginalHT = measureOriginal(withHT, 28)
		r.ParSTATS = tuned(noHT, "1s", 14)
		r.ParSTATSHT = tuned(withHT, "1sHT", 28)
		out = append(out, r)
	}
	return out
}

// Fig14Table renders Fig. 14 with the paper's headline percentages.
func Fig14Table(e *Env) *Table {
	res := Fig14(e)
	t := &Table{
		Title:   "Fig. 14 — Single-socket Hyper-Threading study",
		Columns: []string{"Original", "Original w/ HT", "Par. STATS", "Par. STATS w/ HT"},
	}
	var o, oht, p, pht []float64
	for _, r := range res {
		t.AddRow(r.Name, F(r.Original), F(r.OriginalHT), F(r.ParSTATS), F(r.ParSTATSHT))
		o = append(o, r.Original)
		oht = append(oht, r.OriginalHT)
		p = append(p, r.ParSTATS)
		pht = append(pht, r.ParSTATSHT)
	}
	gmO, gmOHT := mathx.GeoMean(o), mathx.GeoMean(oht)
	gmP, gmPHT := mathx.GeoMean(p), mathx.GeoMean(pht)
	t.AddRow("geo. mean", F(gmO), F(gmOHT), F(gmP), F(gmPHT))
	t.AddNote("HT gain: Original +%.0f%%, Par. STATS +%.0f%% (paper: +13%%, +32%%; Intel guidance ~30%%)",
		100*(gmOHT/gmO-1), 100*(gmPHT/gmP-1))
	return t
}
