package harness

import "testing"

// TestChaosCampaign is the acceptance test for fault-tolerant speculation:
// every scenario must complete without a crash, preserve the sequential
// baseline's outputs exactly, and reconcile its failure accounting across
// engine Stats, the event log and the live /metrics scrape.
func TestChaosCampaign(t *testing.T) {
	e := NewEnv(true)
	res, err := ChaosRun(e)
	if err != nil {
		t.Fatalf("chaos campaign: %v", err)
	}
	if len(res) < 7 {
		t.Fatalf("scenarios run: %d", len(res))
	}
	byName := map[string]ChaosResult{}
	for _, r := range res {
		byName[r.Name] = r
		if !r.OutputsIdentical {
			t.Errorf("%s: outputs diverged from the sequential baseline", r.Name)
		}
		if !r.Reconciled {
			t.Errorf("%s: failure counters did not reconcile (stats/events/scrape)", r.Name)
		}
		if r.MidScrapes != r.Runs {
			t.Errorf("%s: %d mid-run scrapes for %d runs", r.Name, r.MidScrapes, r.Runs)
		}
	}

	if r := byName["aux-panic 10%"]; r.AuxPanics == 0 || r.PanickedGroups == 0 {
		t.Errorf("aux-panic: injected %d, panicked groups %d; want both > 0", r.AuxPanics, r.PanickedGroups)
	}
	if r := byName["garbage 10%"]; r.Garbage == 0 || r.Aborts == 0 {
		t.Errorf("garbage: injected %d, aborts %d; want both > 0", r.Garbage, r.Aborts)
	}
	if r := byName["compute transient"]; r.ComputePanics == 0 || r.PanickedGroups < int(r.ComputePanics) {
		t.Errorf("compute transient: injected %d, panicked groups %d", r.ComputePanics, r.PanickedGroups)
	}
	if r := byName["mixed + breaker"]; r.BreakerTrips < 1 || r.BreakerDenied < 1 {
		t.Errorf("mixed + breaker: trips %d denied %d; want breaker engaged", r.BreakerTrips, r.BreakerDenied)
	}
	if r := byName["delay + deadline"]; r.Delays == 0 || r.TimedOutGroups == 0 {
		t.Errorf("delay + deadline: injected %d delays, timed-out groups %d", r.Delays, r.TimedOutGroups)
	}
	if r := byName["reservations transient"]; r.ComputePanics == 0 || r.PanickedGroups < int(r.ComputePanics) || r.Rounds == 0 {
		t.Errorf("reservations transient: injected %d, panicked groups %d, rounds %d; want the panic landing mid-round", r.ComputePanics, r.PanickedGroups, r.Rounds)
	}
	if r := byName["lying footprint"]; r.FootprintViolations == 0 || r.Rounds == 0 {
		t.Errorf("lying footprint: %d violations caught over %d rounds; want the oracle firing", r.FootprintViolations, r.Rounds)
	}
}

// TestChaosDeterministicInjection re-runs one scenario and requires the
// coordinator-sequential sites to inject identically under equal seeds.
func TestChaosDeterministicInjection(t *testing.T) {
	e := NewEnv(true)
	a, err := ChaosRun(e)
	if err != nil {
		t.Fatalf("first campaign: %v", err)
	}
	b, err := ChaosRun(e)
	if err != nil {
		t.Fatalf("second campaign: %v", err)
	}
	for i := range a {
		if a[i].AuxPanics != b[i].AuxPanics || a[i].Garbage != b[i].Garbage {
			t.Errorf("%s: coordinator-site injections differ across identical campaigns: %d/%d vs %d/%d",
				a[i].Name, a[i].AuxPanics, a[i].Garbage, b[i].AuxPanics, b[i].Garbage)
		}
	}
}
