// Package harness drives the paper's evaluation (§4): one experiment per
// table and figure, each producing a text table with the same rows/series
// the paper reports. The benches in the repository root and the statsexp
// CLI are thin wrappers over these drivers.
//
// Absolute numbers differ from the paper's (the substrate is a simulator,
// not the authors' Haswell testbed); the shapes are the reproduction
// target: who wins, by roughly what factor, and where the crossovers fall.
package harness

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/autotune"
	"repro/internal/energy"
	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

// Env is the shared experimental setup.
type Env struct {
	// Machine is the simulated platform (the paper's dual-socket,
	// 14-cores-per-socket Haswell).
	Machine platform.Machine
	// Energy is the system power model.
	Energy energy.Model
	// Size is the input size fed to cost models and real runs.
	Size int
	// RealSize is the (smaller) size used where many real executions
	// are needed.
	RealSize int
	// Budget is the autotuner evaluation budget per (workload, threads,
	// mode) point.
	Budget int
	// Runs is the number of repeated real runs for variability studies.
	Runs int
	// Threads is the sweep of hardware-thread counts.
	Threads []int
	// Seed roots every random stream.
	Seed uint64

	seqTimes map[string]float64
	tuned    map[string]tunedEntry
}

type tunedEntry struct {
	meas profiler.Measurement
	opts workload.SpecOptions
	res  autotune.Result
}

// NewEnv returns the full-scale environment; quick scales everything down
// for unit tests.
func NewEnv(quick bool) *Env {
	e := &Env{
		Machine:  platform.Haswell28(false),
		Energy:   energy.Default(),
		Size:     2 * workload.NativeSize,
		RealSize: workload.SmallSize,
		Budget:   200,
		Runs:     30,
		Threads:  []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28},
		Seed:     0x57A75,
		seqTimes: map[string]float64{},
		tuned:    map[string]tunedEntry{},
	}
	if quick {
		e.Size = workload.NativeSize
		e.Budget = 60
		e.Runs = 8
		e.Threads = []int{2, 14, 28}
	}
	return e
}

// Targets returns the six STATS targets.
func (e *Env) Targets() []workload.Workload { return registry.Targets() }

// SequentialTime returns (and caches) the workload's single-thread
// makespan — the paper's speedup baseline ("the single-threaded version of
// the out-of-the-box benchmark").
func (e *Env) SequentialTime(w workload.Workload) float64 {
	name := w.Desc().Name
	if t, ok := e.seqTimes[name]; ok {
		return t
	}
	m := w.CostModel(e.Size, workload.SpecOptions{})
	g := taskgen.Build(taskgen.Sequential, m, workload.SpecOptions{}, e.Seed)
	t := platform.Simulate(e.Machine, g, 1).Makespan
	e.seqTimes[name] = t
	return t
}

// OriginalMeasure simulates the out-of-the-box parallelization at the given
// thread count.
func (e *Env) OriginalMeasure(w workload.Workload, threads int) profiler.Measurement {
	p := e.profilerFor(w, taskgen.Original, threads)
	return p.Measure(workload.SpecOptions{}, threads)
}

// OriginalSpeedup returns the original parallelization's speedup at the
// given thread count.
func (e *Env) OriginalSpeedup(w workload.Workload, threads int) float64 {
	return e.SequentialTime(w) / e.OriginalMeasure(w, threads).TimeSeconds
}

// BestOriginal returns the original's best speedup over the thread sweep.
func (e *Env) BestOriginal(w workload.Workload) (best float64, atThreads int) {
	for _, th := range e.Threads {
		if s := e.OriginalSpeedup(w, th); s > best {
			best, atThreads = s, th
		}
	}
	return best, atThreads
}

func (e *Env) profilerFor(w workload.Workload, mode taskgen.Mode, threads int) *profiler.P {
	return &profiler.P{
		Machine:   e.Machine,
		Threads:   threads,
		Energy:    e.Energy,
		W:         w,
		Size:      e.Size,
		Mode:      mode,
		GraphSeed: e.Seed,
	}
}

// TunedSTATS autotunes the workload for the mode, thread count and goal on
// the environment's machine, returning the best measurement, the decoded
// options, and the tuning trace. Results are memoized per (workload, mode,
// threads, goal).
func (e *Env) TunedSTATS(w workload.Workload, mode taskgen.Mode, threads int, goal profiler.Goal) (profiler.Measurement, workload.SpecOptions, autotune.Result) {
	return e.TunedSTATSOn(e.Machine, "", w, mode, threads, goal)
}

// TunedSTATSOn is TunedSTATS on an explicit machine (the Fig. 14 single-
// socket/Hyper-Threading studies); machineKey disambiguates the memo.
func (e *Env) TunedSTATSOn(mach platform.Machine, machineKey string, w workload.Workload, mode taskgen.Mode, threads int, goal profiler.Goal) (profiler.Measurement, workload.SpecOptions, autotune.Result) {
	key := fmt.Sprintf("%s/%s/%d/%d/%d", w.Desc().Name, machineKey, mode, threads, goal)
	if ent, ok := e.tuned[key]; ok {
		return ent.meas, ent.opts, ent.res
	}
	p := e.profilerFor(w, mode, threads)
	p.Machine = mach
	s := profiler.BuildSpace(w, int64(threads))
	res := autotune.Tune(s, p.Objective(s, goal, false), autotune.Options{
		Budget: e.Budget, Seed: e.Seed, Seeds: profiler.SeedConfigs(s),
	})
	opts, th := profiler.Decode(s, res.Best, w)
	meas := p.Measure(opts, th)
	ent := tunedEntry{meas: meas, opts: opts, res: res}
	e.tuned[key] = ent
	return ent.meas, ent.opts, ent.res
}

// STATSSpeedup returns the tuned STATS speedup for the mode at the given
// thread count.
func (e *Env) STATSSpeedup(w workload.Workload, mode taskgen.Mode, threads int) float64 {
	meas, _, _ := e.TunedSTATS(w, mode, threads, profiler.Time)
	return e.SequentialTime(w) / meas.TimeSeconds
}

// Table is a renderable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one table line.
type Row struct {
	Label string
	Cells []string
}

// AddRow appends a row of formatted cells.
func (t *Table) AddRow(label string, cells ...string) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// AddNote appends a note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("benchmark")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) && len(r.Cells[i]) > widths[i+1] {
				widths[i+1] = len(r.Cells[i])
			}
		}
	}
	header := fmt.Sprintf("%-*s", widths[0], "benchmark")
	for i, c := range t.Columns {
		header += fmt.Sprintf("  %*s", widths[i+1], c)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	for _, r := range t.Rows {
		line := fmt.Sprintf("%-*s", widths[0], r.Label)
		for i := range t.Columns {
			cell := ""
			if i < len(r.Cells) {
				cell = r.Cells[i]
			}
			line += fmt.Sprintf("  %*s", widths[i+1], cell)
		}
		fmt.Fprintln(w, line)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}
