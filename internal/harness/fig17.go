package harness

import (
	"repro/internal/mathx"
	"repro/internal/platform"
	"repro/internal/related"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// Fig17Result is one benchmark's best speedup per approach, for the
// sequential-based and parallel-based variants.
type Fig17Result struct {
	Name string
	Seq  map[related.Approach]float64
	Par  map[related.Approach]float64
}

// Fig17 compares STATS against the related approaches on the same state
// dependences (Fig. 17), keeping each approach's best admissible
// configuration ("without exceeding the original output variability").
func Fig17(e *Env) []Fig17Result {
	var out []Fig17Result
	for _, w := range e.Targets() {
		d := w.Desc()
		seqTime := e.SequentialTime(w)
		r := Fig17Result{
			Name: d.Name,
			Seq:  map[related.Approach]float64{},
			Par:  map[related.Approach]float64{},
		}
		for _, a := range related.Approaches {
			for _, mode := range []taskgen.Mode{taskgen.SeqSTATS, taskgen.ParSTATS} {
				var opts workload.SpecOptions
				if a == related.STATS {
					_, opts, _ = e.TunedSTATS(w, mode, 28, 0)
				} else {
					opts = workload.SpecOptions{UseAux: true, GroupSize: 4, Window: 2, RedoMax: 2, Rollback: 2}
				}
				m := w.CostModel(e.Size, opts)
				g := related.Graph(a, mode, d, m, opts, e.Seed)
				speedup := seqTime / platform.Simulate(e.Machine, g, 28).Makespan
				if mode == taskgen.SeqSTATS {
					r.Seq[a] = speedup
				} else {
					r.Par[a] = speedup
				}
			}
		}
		out = append(out, r)
	}
	return out
}

// Fig17Table renders Fig. 17.
func Fig17Table(e *Env) *Table {
	res := Fig17(e)
	var cols []string
	for _, a := range related.Approaches {
		cols = append(cols, "Seq. "+a.String())
	}
	for _, a := range related.Approaches {
		cols = append(cols, "Par. "+a.String())
	}
	t := &Table{Title: "Fig. 17 — STATS vs related approaches (speedup at 28 threads)", Columns: cols}
	perApproach := map[string][]float64{}
	for _, r := range res {
		var cells []string
		for _, a := range related.Approaches {
			cells = append(cells, F(r.Seq[a]))
			perApproach["Seq. "+a.String()] = append(perApproach["Seq. "+a.String()], r.Seq[a])
		}
		for _, a := range related.Approaches {
			cells = append(cells, F(r.Par[a]))
			perApproach["Par. "+a.String()] = append(perApproach["Par. "+a.String()], r.Par[a])
		}
		t.AddRow(r.Name, cells...)
	}
	var geo []string
	for _, c := range cols {
		geo = append(geo, F(mathx.GeoMean(perApproach[c])))
	}
	t.AddRow("geo. mean", geo...)
	t.AddNote("only STATS exploits non-trivial state dependences; ALTER/QuickStep/HELIX-UP break only swaptions' scalar reduction; Fast Track always aborts")
	return t
}
