package harness

import (
	"repro/internal/mathx"
	"repro/internal/taskgen"
)

// Fig16Result is one benchmark's output-quality improvement when the STATS
// version runs for the same wall-clock time as the original, spending the
// saved time iterating more over the same dataset.
type Fig16Result struct {
	Name string
	// Improvement is distance(original, oracle) / distance(boosted,
	// oracle) — >1 means better output.
	Improvement float64
	// Factor is the extra-iteration budget (the STATS speedup over the
	// best original).
	Factor float64
}

// Fig16 runs the real workloads with a quality budget scaled by the tuned
// STATS speedup (Fig. 16). The paper reports three benchmarks improving
// 6.84x-33.27x.
func Fig16(e *Env) []Fig16Result {
	var out []Fig16Result
	for _, w := range e.Targets() {
		bestOrig, _ := e.BestOriginal(w)
		stats := e.STATSSpeedup(w, taskgen.ParSTATS, 28)
		factor := stats / bestOrig
		if factor < 1 {
			factor = 1
		}
		oracle := w.RunOracle(e.RealSize)
		var base, boosted []float64
		for run := 0; run < e.Runs/2+1; run++ {
			seed := e.Seed + uint64(run)*131 + 7
			base = append(base, w.RunOriginal(seed, e.RealSize).Distance(oracle))
			boosted = append(boosted, w.RunBoosted(seed, e.RealSize, factor).Distance(oracle))
		}
		mb, mB := mathx.Mean(base), mathx.Mean(boosted)
		// Floor the boosted distance at a sliver of the original's so a
		// boosted run that exactly reproduces the oracle reports a
		// large-but-finite improvement (the paper's largest is 33.27x).
		if floor := mb / 50; mB < floor {
			mB = floor
		}
		improvement := 1.0
		if mB > 0 {
			improvement = mb / mB
		}
		out = append(out, Fig16Result{Name: w.Desc().Name, Improvement: improvement, Factor: factor})
	}
	return out
}

// Fig16Table renders Fig. 16.
func Fig16Table(e *Env) *Table {
	t := &Table{
		Title:   "Fig. 16 — Output improvement at equal wall-clock time",
		Columns: []string{"improvement (x)", "iteration budget (x)"},
	}
	for _, r := range Fig16(e) {
		t.AddRow(r.Name, F(r.Improvement), F(r.Factor))
	}
	t.AddNote("improvement = distance-to-oracle ratio original/boosted; paper: three benchmarks improve 6.84x-33.27x")
	return t
}
