package harness

import (
	"fmt"

	"repro/internal/platform"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// AblationDim names a state-space dimension the ablation sweeps while the
// rest of the (autotuned) configuration is held fixed.
type AblationDim string

// Ablation dimensions.
const (
	AblateGroup    AblationDim = "group"
	AblateWindow   AblationDim = "window"
	AblateRedo     AblationDim = "redo"
	AblateRollback AblationDim = "rollback"
)

// AblationPoint is one swept value and its resulting speedup.
type AblationPoint struct {
	Value   int
	Speedup float64
}

// Ablation sweeps one engine dimension for one workload at 28 threads,
// holding everything else at the autotuned configuration. It quantifies
// the design choices of §3.1: group cardinality (how much TLP is
// liberated), the auxiliary input window (speculation accuracy vs aux
// cost), the redo budget (exploiting nondeterminism for extra original
// states), and the rollback width (how much of the previous group each
// re-execution recomputes).
func Ablation(e *Env, w workload.Workload, dim AblationDim) []AblationPoint {
	_, tuned, _ := e.TunedSTATS(w, taskgen.ParSTATS, 28, profiler.Time)
	tuned.UseAux = true
	p := e.profilerFor(w, taskgen.ParSTATS, 28)
	seq := e.SequentialTime(w)

	var values []int
	switch dim {
	case AblateGroup:
		values = []int{2, 4, 8, 16, 32, 64}
	case AblateWindow:
		values = []int{0, 1, 2, 3, 4, 6, 8}
	case AblateRedo:
		values = []int{0, 1, 2, 3, 4}
	case AblateRollback:
		values = []int{1, 2, 4, 8}
	default:
		panic(fmt.Sprintf("harness: unknown ablation dimension %q", dim))
	}

	var out []AblationPoint
	for _, v := range values {
		o := tuned
		switch dim {
		case AblateGroup:
			o.GroupSize = v
		case AblateWindow:
			o.Window = v
		case AblateRedo:
			o.RedoMax = v
		case AblateRollback:
			o.Rollback = v
		}
		meas := p.Measure(o, 28)
		out = append(out, AblationPoint{Value: v, Speedup: seq / meas.TimeSeconds})
	}
	return out
}

// AblationTable renders one dimension's sweep for one workload.
func AblationTable(e *Env, w workload.Workload, dim AblationDim) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation — %s: %s sweep (Par. STATS, 28 threads)", w.Desc().Name, dim),
		Columns: []string{"speedup"},
	}
	best := 0.0
	for _, pt := range Ablation(e, w, dim) {
		t.AddRow(fmt.Sprintf("%s=%d", dim, pt.Value), F(pt.Speedup))
		if pt.Speedup > best {
			best = pt.Speedup
		}
	}
	t.AddNote("all other dimensions held at the autotuned configuration; best %s", F(best))
	return t
}

// SpecBehaviorPoint is one window value and the real engine's speculation
// and scheduler statistics there.
type SpecBehaviorPoint struct {
	Window  int
	Matches int
	Redos   int
	Aborts  int
	// Steals and LocalHits are the work-stealing scheduler's dispatch
	// counters over the same runs: how much of the group fan-out crossed
	// workers versus hitting the local-deque fast path.
	Steals    int64
	LocalHits int64
}

// SpecBehavior runs the real engine across auxiliary-window sizes and
// reports what actually happened — the ground truth behind the cost
// models' acceptance curves. Statistics are deterministic given the seed.
func SpecBehavior(e *Env, w workload.Workload) []SpecBehaviorPoint {
	_, tuned, _ := e.TunedSTATS(w, taskgen.ParSTATS, 28, profiler.Time)
	tuned.UseAux = true
	tuned.Workers = 4
	var out []SpecBehaviorPoint
	for _, win := range []int{0, 1, 2, 4, 8} {
		o := tuned
		o.Window = win
		var agg SpecBehaviorPoint
		agg.Window = win
		for seed := uint64(0); seed < 3; seed++ {
			_, st := w.RunSTATS(e.Seed+seed, e.RealSize, o)
			agg.Matches += st.Matches
			agg.Redos += st.Redos
			agg.Aborts += st.Aborts
			agg.Steals += st.Steals
			agg.LocalHits += st.LocalHits
		}
		out = append(out, agg)
	}
	return out
}

// SpecBehaviorTable renders the real-engine window sweep.
func SpecBehaviorTable(e *Env, w workload.Workload) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Ablation — %s: real-engine speculation behaviour vs window", w.Desc().Name),
		Columns: []string{"matches", "redos", "aborts", "steals", "local hits"},
	}
	for _, pt := range SpecBehavior(e, w) {
		t.AddRow(fmt.Sprintf("window=%d", pt.Window),
			fmt.Sprintf("%d", pt.Matches), fmt.Sprintf("%d", pt.Redos), fmt.Sprintf("%d", pt.Aborts),
			fmt.Sprintf("%d", pt.Steals), fmt.Sprintf("%d", pt.LocalHits))
	}
	t.AddNote("3 real runs per point at the autotuned configuration; wider windows buy acceptance at auxiliary-work cost; steals/local hits are the sharded scheduler's dispatch split")
	return t
}

// SchedulerAblation compares the simulator's list-scheduling policies on
// every benchmark's tuned Par. STATS configuration: FIFO (creation order)
// versus critical-path-first. STATS task graphs have pronounced critical
// chains (the groups' serial interiors), so the policy choice is a real
// system knob worth quantifying.
func SchedulerAblation(e *Env) *Table {
	t := &Table{
		Title:   "Ablation — list-scheduling policy (Par. STATS, 28 threads)",
		Columns: []string{"FIFO", "critical-path-first"},
	}
	for _, w := range e.Targets() {
		_, opts, _ := e.TunedSTATS(w, taskgen.ParSTATS, 28, profiler.Time)
		m := w.CostModel(e.Size, opts)
		g := taskgen.Build(taskgen.ParSTATS, m, opts, e.Seed)
		seq := e.SequentialTime(w)
		fifo := seq / platform.SimulateWithPolicy(e.Machine, g, 28, platform.FIFO).Makespan
		cp := seq / platform.SimulateWithPolicy(e.Machine, g, 28, platform.CriticalPathFirst).Makespan
		t.AddRow(w.Desc().Name, F(fifo), F(cp))
	}
	t.AddNote("same graphs and configurations; only the ready-queue order differs")
	return t
}
