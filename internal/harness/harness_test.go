package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mathx"
	"repro/internal/related"
	"repro/internal/taskgen"
)

func quickEnv() *Env { return NewEnv(true) }

func TestFig02AllBenchmarksVary(t *testing.T) {
	e := quickEnv()
	res := Fig02(e)
	if len(res) != 7 {
		t.Fatalf("benchmarks: %d", len(res))
	}
	for _, r := range res {
		if r.Variability <= 0 {
			t.Fatalf("%s shows no output variability", r.Name)
		}
		if r.Source != "race" && r.Source != "prvg" {
			t.Fatalf("%s: bad variability source %q", r.Name, r.Source)
		}
	}
}

func TestFig03OriginalsUnderIdeal(t *testing.T) {
	e := quickEnv()
	for _, r := range Fig03(e) {
		if r.Speedup <= 1 {
			t.Fatalf("%s original speedup %v not above sequential", r.Name, r.Speedup)
		}
		if r.Speedup > 28 {
			t.Fatalf("%s original speedup %v above ideal", r.Name, r.Speedup)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	e := quickEnv()
	res, err := Table1(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("rows: %d", len(res))
	}
	for _, r := range res {
		// Developer LOC is small; generated code dwarfs it (the
		// paper's headline for this table).
		devLOC := r.ComparisonLOC
		for _, la := range r.TradeoffLOC {
			devLOC += la[0] + la[1]
		}
		if r.GeneratedLOC <= devLOC {
			t.Fatalf("%s: generated %d not above developer %d", r.Name, r.GeneratedLOC, devLOC)
		}
		if r.SizeIncrease <= 0 {
			t.Fatalf("%s: size increase %v", r.Name, r.SizeIncrease)
		}
		if r.ExtraCommitted < 0 || r.ExtraCommitted > 1.5 {
			t.Fatalf("%s: extra committed %v out of plausible range", r.Name, r.ExtraCommitted)
		}
		if r.AuxWallNS <= 0 || r.ResvWallNS <= 0 {
			t.Fatalf("%s: protocol race not timed: aux %d resv %d", r.Name, r.AuxWallNS, r.ResvWallNS)
		}
	}
	// The slotted formulations (swaptions per-instrument, streamcluster
	// shards, fluidanimate sub-fluids, streamclassifier ensemble) must
	// actually overlap commits under reservations: more than one input
	// committed per round on average, not the single-slot serialized
	// fallback.
	slotted := map[string]bool{
		"swaptions": true, "streamcluster": true,
		"fluidanimate": true, "streamclassifier": true,
	}
	for _, r := range res {
		if !slotted[r.Name] {
			continue
		}
		if r.ResvRounds == 0 {
			t.Fatalf("%s: no reservation rounds formed", r.Name)
		}
		if r.ResvCommitsPerRound <= 1 {
			t.Fatalf("%s: %.2f commits/round under reservations; slots are not overlapping commits", r.Name, r.ResvCommitsPerRound)
		}
	}
}

func TestFig12And13Shapes(t *testing.T) {
	e := quickEnv()
	series := Fig12(e)
	byName := map[string]Fig12Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	last := len(e.Threads) - 1

	// Headline: Par. STATS beats the original overall at 28 threads.
	gm := Fig13(e)
	if gm.ParSTATS[last] <= gm.Original[last] {
		t.Fatalf("Par. STATS geomean %v not above original %v", gm.ParSTATS[last], gm.Original[last])
	}
	boost := gm.ParSTATS[last] / gm.Original[last]
	if boost < 1.5 {
		t.Fatalf("STATS boost only %vx; paper's shape is >2x", boost)
	}

	// fluidanimate: STATS matches the original (aux always aborts and
	// the tuner falls back to the original TLP).
	fl := byName["fluidanimate"]
	if fl.ParSTATS[last] < fl.Original[last]*0.9 {
		t.Fatalf("fluidanimate Par. STATS %v fell below original %v", fl.ParSTATS[last], fl.Original[last])
	}
	if fl.ParSTATS[last] > fl.Original[last]*1.3 {
		t.Fatalf("fluidanimate gained %v -> %v; the paper shows little/no improvement",
			fl.Original[last], fl.ParSTATS[last])
	}

	// swaptions: Seq. STATS underperforms the original at low core
	// counts, Par. STATS wins at the top end.
	sw := byName["swaptions"]
	if sw.SeqSTATS[0] >= sw.Original[0] {
		t.Fatalf("swaptions Seq. STATS %v should trail original %v at %d threads",
			sw.SeqSTATS[0], sw.Original[0], e.Threads[0])
	}
	if sw.ParSTATS[last] <= sw.Original[last] {
		t.Fatalf("swaptions Par. STATS %v should beat original %v at 28 threads",
			sw.ParSTATS[last], sw.Original[last])
	}

	// bodytrack: state-dependence TLP alone beats the sync-heavy
	// original parallelization.
	bt := byName["bodytrack"]
	if bt.SeqSTATS[last] <= bt.Original[last] {
		t.Fatalf("bodytrack Seq. STATS %v should beat original %v", bt.SeqSTATS[last], bt.Original[last])
	}

	// facedet: almost all TLP comes from STATS.
	fd := byName["facedet"]
	if fd.ParSTATS[last] < 2*fd.Original[last] {
		t.Fatalf("facedet STATS %v should dwarf original %v", fd.ParSTATS[last], fd.Original[last])
	}
}

func TestFig14HTGains(t *testing.T) {
	e := quickEnv()
	res := Fig14(e)
	var anyGain bool
	for _, r := range res {
		if r.ParSTATSHT > r.ParSTATS {
			anyGain = true
		}
		if r.ParSTATSHT < r.ParSTATS*0.95 {
			t.Fatalf("%s: HT hurt STATS: %v -> %v", r.Name, r.ParSTATS, r.ParSTATSHT)
		}
	}
	if !anyGain {
		t.Fatal("Hyper-Threading never helped STATS")
	}
}

func TestFig15EnergySavings(t *testing.T) {
	e := quickEnv()
	for _, r := range Fig15(e) {
		if r.TimeModePct >= 110 {
			t.Fatalf("%s: time mode used %v%% of baseline energy", r.Name, r.TimeModePct)
		}
		if r.EnergyModePct > r.TimeModePct+1e-9 {
			t.Fatalf("%s: energy mode (%v%%) worse than time mode (%v%%)", r.Name, r.EnergyModePct, r.TimeModePct)
		}
	}
}

func TestFig16QualityImprovements(t *testing.T) {
	e := quickEnv()
	res := Fig16(e)
	improved := 0
	for _, r := range res {
		if r.Improvement > 1.2 {
			improved++
		}
		if r.Factor < 1 {
			t.Fatalf("%s: factor %v", r.Name, r.Factor)
		}
	}
	// The paper reports three benchmarks with substantial improvements.
	if improved < 2 {
		t.Fatalf("only %d benchmarks improved output quality", improved)
	}
}

func TestFig17OnlySTATSGeneralizes(t *testing.T) {
	e := quickEnv()
	for _, r := range Fig17(e) {
		stats := r.Par[related.STATS]
		for _, a := range []related.Approach{related.QuickStepLike, related.HelixUpLike, related.FastTrack} {
			if r.Name == "swaptions" {
				continue // breakers legitimately match STATS there
			}
			if r.Par[a] > stats*1.05 {
				t.Fatalf("%s: %s (%v) beat STATS (%v)", r.Name, a, r.Par[a], stats)
			}
		}
	}
}

func TestFig18PayoffCurve(t *testing.T) {
	e := quickEnv()
	pts := Fig18(e)
	if len(pts) < 3 {
		t.Fatalf("points: %d", len(pts))
	}
	last := pts[len(pts)-1]
	if last.RelativeSpeedup < 95 {
		t.Fatalf("encoding all tradeoffs reaches only %v%%", last.RelativeSpeedup)
	}
	if pts[0].RelativeSpeedup > last.RelativeSpeedup {
		t.Fatalf("zero tradeoffs (%v%%) should not beat all (%v%%)", pts[0].RelativeSpeedup, last.RelativeSpeedup)
	}
	// Two tradeoffs recover most of the benefit.
	if pts[2].RelativeSpeedup < 60 {
		t.Fatalf("two tradeoffs recover only %v%%; paper's shape is ~95%%", pts[2].RelativeSpeedup)
	}
}

func TestFig19BadTrainingSmallLoss(t *testing.T) {
	e := quickEnv()
	var honest, bad []float64
	for _, r := range Fig19(e) {
		honest = append(honest, r.ParSTATS)
		bad = append(bad, r.BadTraining)
		// Correctness is guaranteed by the runtime; performance must
		// stay at least near the conventional level.
		if r.BadTraining < 0.5*r.Original {
			t.Fatalf("%s: bad training %v collapsed below original %v", r.Name, r.BadTraining, r.Original)
		}
	}
	// The paper's claim is aggregate: bad training loses only a small
	// fraction of the tuned performance (per-benchmark results are noisy
	// at the quick tuning budget).
	gmH, gmB := mathx.GeoMean(honest), mathx.GeoMean(bad)
	if gmB > gmH*1.25 {
		t.Fatalf("bad training geomean %v suspiciously above honest %v", gmB, gmH)
	}
	if gmB < gmH*0.5 {
		t.Fatalf("bad training geomean %v lost too much vs honest %v", gmB, gmH)
	}
}

func TestFig20Converges(t *testing.T) {
	e := quickEnv()
	sum := Fig20(e)
	lastPt := sum.Points[len(sum.Points)-1]
	if lastPt.RelativePct < 99 {
		t.Fatalf("tuner not converged at the end: %v%%", lastPt.RelativePct)
	}
	// Variance shrinks as evaluations accumulate.
	if sum.Points[0].SeedStdDev < lastPt.SeedStdDev-1e-9 {
		t.Fatalf("seed variance grew: %v -> %v", sum.Points[0].SeedStdDev, lastPt.SeedStdDev)
	}
	if sum.EvalsToBest <= 1 {
		t.Fatalf("evaluations to best: %v", sum.EvalsToBest)
	}
}

func TestTablesRender(t *testing.T) {
	e := quickEnv()
	var buf bytes.Buffer
	Fig02Table(e).Render(&buf)
	Fig03Table(e).Render(&buf)
	t1, err := Table1Table(e)
	if err != nil {
		t.Fatal(err)
	}
	t1.Render(&buf)
	for _, tb := range Fig12Table(e) {
		tb.Render(&buf)
	}
	Fig13Table(e).Render(&buf)
	Fig14Table(e).Render(&buf)
	Fig15Table(e).Render(&buf)
	Fig16Table(e).Render(&buf)
	Fig17Table(e).Render(&buf)
	Fig18Table(e).Render(&buf)
	Fig19Table(e).Render(&buf)
	Fig20Table(e).Render(&buf)
	out := buf.String()
	for _, want := range []string{"Fig. 2", "Fig. 3", "Table 1", "Fig. 12", "Fig. 13", "Fig. 14",
		"Fig. 15", "Fig. 16", "Fig. 17", "Fig. 18", "Fig. 19", "Fig. 20", "geo. mean", "bodytrack"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q", want)
		}
	}
}

func TestModeConstantUsage(t *testing.T) {
	// Guard: the harness relies on taskgen mode ordering.
	if taskgen.Sequential != 0 || taskgen.ParSTATS != 3 {
		t.Fatal("taskgen mode constants moved")
	}
}
