package harness

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/mathx"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload"
)

// Fig18Point is the mean relative speedup after encoding the first k
// tradeoffs of every benchmark (Table 1's column order = the expected-
// payoff order a developer would follow).
type Fig18Point struct {
	Encoded int
	// RelativeSpeedup is the geometric-mean percentage of each
	// benchmark's full-STATS speedup.
	RelativeSpeedup float64
}

// Fig18 sweeps the number of encoded tradeoffs (Fig. 18). Un-encoded
// tradeoffs are frozen at their defaults in the autotuner's space;
// un-encoded thread tradeoffs freeze the thread-split and group-size
// dimensions (the two thread counts every benchmark naturally has). The
// paper's result: one tradeoff gives ~55% of the full benefit, two ~95%.
func Fig18(e *Env) []Fig18Point {
	maxCols := 0
	for _, w := range e.Targets() {
		if n := len(w.Desc().TradeoffLOC); n > maxCols {
			maxCols = n
		}
	}
	var out []Fig18Point
	for k := 0; k <= maxCols; k++ {
		var rel []float64
		for _, w := range e.Targets() {
			full := e.STATSSpeedup(w, taskgen.ParSTATS, 28)
			limited := e.limitedSpeedup(w, k)
			rel = append(rel, 100*limited/full)
		}
		out = append(out, Fig18Point{Encoded: k, RelativeSpeedup: mathx.GeoMean(rel)})
	}
	return out
}

// limitedSpeedup tunes the workload with only the first k Table 1 columns
// encoded.
func (e *Env) limitedSpeedup(w workload.Workload, k int) float64 {
	d := w.Desc()
	if k > len(d.TradeoffLOC) {
		k = len(d.TradeoffLOC)
	}
	algo := len(d.Tradeoffs)
	p := e.profilerFor(w, taskgen.ParSTATS, 28)
	s := profiler.BuildSpace(w, 28)

	frozen := map[int]int64{}
	freeze := func(name string) {
		if i, ok := s.Find(name); ok {
			frozen[i] = s.Dims()[i].Default
		}
	}
	// Algorithmic tradeoffs beyond k freeze at their defaults.
	for ti := k; ti < algo; ti++ {
		freeze("aux." + d.Tradeoffs[ti].Name)
	}
	// The two trailing Table 1 columns are the thread tradeoffs: the
	// original-TLP thread count, then the state-dependence thread count
	// (whose lever in this runtime is the group size).
	if k < algo+1 {
		freeze("threads.original")
	}
	if k < algo+2 {
		freeze("dep.group")
	}
	// With zero tradeoffs encoded there is no auxiliary code to tune at
	// all: speculation stays available (the SDI is already in place) but
	// every knob sits at its default.
	res := autotune.Tune(s, p.Objective(s, profiler.Time, false), autotune.Options{
		Budget: e.Budget, Seed: e.Seed, Frozen: frozen, Seeds: profiler.SeedConfigs(s),
	})
	opts, th := profiler.Decode(s, res.Best, w)
	return e.SequentialTime(w) / p.Measure(opts, th).TimeSeconds
}

// Fig18Table renders Fig. 18.
func Fig18Table(e *Env) *Table {
	t := &Table{
		Title:   "Fig. 18 — Relative speedup vs number of tradeoffs encoded",
		Columns: []string{"% of full STATS speedup"},
	}
	for _, pt := range Fig18(e) {
		t.AddRow(fmt.Sprintf("%d tradeoffs", pt.Encoded), F(pt.RelativeSpeedup))
	}
	t.AddNote("paper: ~55%% with one tradeoff, ~95%% with two")
	return t
}
