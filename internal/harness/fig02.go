package harness

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/workload/registry"
)

// Fig02Result is one workload's output-variability measurement.
type Fig02Result struct {
	Name string
	// Variability is the mean domain-metric distance from the oracle
	// over repeated runs with random seeds, and Spread its standard
	// deviation — together the Fig. 2 quantity.
	Variability float64
	Spread      float64
	Source      string // "race" or "prvg" (Fig. 2's two bar colors)
}

// Fig02 measures the output variability of the nondeterministic benchmarks
// over e.Runs runs with random seeds (Fig. 2). All seven benchmarks appear,
// including canneal.
func Fig02(e *Env) []Fig02Result {
	var out []Fig02Result
	for _, w := range registry.All() {
		d := w.Desc()
		oracle := w.RunOracle(e.RealSize)
		// §4.1 methodology: repeat until 95% of the measurements are
		// within 5% of the mean (bounded by the environment's budget).
		res := measure.Repeat(func(run int) float64 {
			seed := e.Seed + uint64(run)*0x9E3779B9 + 1
			return w.RunOriginal(seed, e.RealSize).Distance(oracle)
		}, measure.Options{MinRuns: e.Runs / 2, MaxRuns: e.Runs})
		out = append(out, Fig02Result{
			Name:        d.Name,
			Variability: res.Mean,
			Spread:      res.StdDev,
			Source:      d.VariabilitySource,
		})
	}
	return out
}

// Fig02Table renders Fig. 2.
func Fig02Table(e *Env) *Table {
	t := &Table{
		Title:   "Fig. 2 — Output variability of nondeterministic benchmarks",
		Columns: []string{"variability", "stddev", "source"},
	}
	for _, r := range Fig02(e) {
		t.AddRow(r.Name, fmtSci(r.Variability), fmtSci(r.Spread), r.Source)
	}
	t.AddNote("variability = mean domain-metric distance from the oracle over %d runs (log-scale quantity in the paper)", e.Runs)
	return t
}

// fmtSci formats a variability value compactly (the paper plots these on a
// log scale).
func fmtSci(v float64) string {
	if v == 0 {
		return "0"
	}
	return fmt.Sprintf("%.3g", v)
}
