package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload/bodytrack"
	"repro/internal/workload/fluidanimate"
	"repro/internal/workload/swaptions"
)

func TestAblationGroupSweep(t *testing.T) {
	e := quickEnv()
	pts := Ablation(e, bodytrack.New(), AblateGroup)
	if len(pts) != 6 {
		t.Fatalf("points: %d", len(pts))
	}
	// Some group size must beat the degenerate extremes: tiny groups pay
	// validation per input, giant groups serialize.
	best, worst := 0.0, 1e18
	for _, p := range pts {
		if p.Speedup <= 0 {
			t.Fatalf("speedup %v at group %d", p.Speedup, p.Value)
		}
		if p.Speedup > best {
			best = p.Speedup
		}
		if p.Speedup < worst {
			worst = p.Speedup
		}
	}
	if best < worst*1.1 {
		t.Fatalf("group size made no difference: best %v worst %v", best, worst)
	}
}

func TestAblationWindowMonotoneCost(t *testing.T) {
	e := quickEnv()
	pts := Ablation(e, swaptions.New(), AblateWindow)
	// swaptions accepts by construction: wider windows only add aux
	// work, so speedup must not improve with window width.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup > pts[0].Speedup*1.05 {
			t.Fatalf("window %d beat window %d: %v vs %v",
				pts[i].Value, pts[0].Value, pts[i].Speedup, pts[0].Speedup)
		}
	}
}

func TestAblationRedoOnDoomedWorkload(t *testing.T) {
	e := quickEnv()
	pts := Ablation(e, fluidanimate.New(), AblateRedo)
	// fluidanimate's speculation never matches: more redos only waste
	// work, so speedup must be non-increasing in the redo budget.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup > pts[i-1].Speedup+1e-9 {
			t.Fatalf("redo %d beat redo %d: %v vs %v",
				pts[i].Value, pts[i-1].Value, pts[i].Speedup, pts[i-1].Speedup)
		}
	}
}

func TestSpecBehaviorWindowSweep(t *testing.T) {
	e := quickEnv()
	pts := SpecBehavior(e, bodytrack.New())
	if len(pts) != 5 {
		t.Fatalf("points: %d", len(pts))
	}
	// The real engine must match more with a window than without one.
	if pts[0].Matches >= pts[len(pts)-1].Matches && pts[len(pts)-1].Matches > 0 {
		t.Fatalf("window did not help real acceptance: %+v", pts)
	}
}

func TestAblationTablesRender(t *testing.T) {
	e := quickEnv()
	var buf bytes.Buffer
	AblationTable(e, bodytrack.New(), AblateGroup).Render(&buf)
	AblationTable(e, bodytrack.New(), AblateRollback).Render(&buf)
	SpecBehaviorTable(e, bodytrack.New()).Render(&buf)
	out := buf.String()
	for _, want := range []string{"group sweep", "rollback sweep", "speculation behaviour", "matches"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSchedulerAblation(t *testing.T) {
	e := quickEnv()
	tb := SchedulerAblation(e)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows: %d", len(tb.Rows))
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "critical-path-first") {
		t.Fatal("render")
	}
}

func TestAblationUnknownDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Ablation(quickEnv(), bodytrack.New(), AblationDim("bogus"))
}
