package harness

import (
	"repro/internal/mathx"
	"repro/internal/profiler"
	"repro/internal/taskgen"
)

// Fig15Result is one benchmark's energy comparison: STATS tuned for time
// and tuned for energy, relative to the peak-performing original version's
// energy (= 100).
type Fig15Result struct {
	Name          string
	TimeModePct   float64
	EnergyModePct float64
}

// Fig15 compares system-wide energy in the two STATS operating modes
// (Fig. 15), both on two sockets. Time mode saves energy by finishing
// earlier; energy mode saves more by also avoiding cores whose extra
// performance is not significant.
func Fig15(e *Env) []Fig15Result {
	var out []Fig15Result
	for _, w := range e.Targets() {
		// Baseline: the original version at its peak-performing thread
		// count.
		_, bestAt := e.BestOriginal(w)
		baseEnergy := e.OriginalMeasure(w, bestAt).EnergyJ
		timeMeas, _, _ := e.TunedSTATS(w, taskgen.ParSTATS, 28, profiler.Time)
		energyMeas, energyOpts, _ := e.TunedSTATS(w, taskgen.ParSTATS, 28, profiler.Energy)
		// The autotuner stores its exploration results so they can be
		// reused when the objective changes (§3.2); energy mode
		// therefore never does worse than the time-mode binary it has
		// already profiled. It additionally "avoids using extra cores
		// if the additional performance obtained by them is not
		// significant": sweep the core count for the energy-tuned
		// binary and keep the cheapest point.
		energyJ := energyMeas.EnergyJ
		if timeMeas.EnergyJ < energyJ {
			energyJ = timeMeas.EnergyJ
		}
		for _, th := range e.Threads {
			p := e.profilerFor(w, taskgen.ParSTATS, th)
			if meas := p.Measure(energyOpts, th); meas.EnergyJ < energyJ {
				energyJ = meas.EnergyJ
			}
		}
		out = append(out, Fig15Result{
			Name:          w.Desc().Name,
			TimeModePct:   100 * timeMeas.EnergyJ / baseEnergy,
			EnergyModePct: 100 * energyJ / baseEnergy,
		})
	}
	return out
}

// Fig15Table renders Fig. 15.
func Fig15Table(e *Env) *Table {
	res := Fig15(e)
	t := &Table{
		Title:   "Fig. 15 — Energy consumption relative to peak-performing original (=100)",
		Columns: []string{"time mode", "energy mode"},
	}
	var tm, em []float64
	for _, r := range res {
		t.AddRow(r.Name, F(r.TimeModePct), F(r.EnergyModePct))
		tm = append(tm, r.TimeModePct)
		em = append(em, r.EnergyModePct)
	}
	gmT, gmE := mathx.GeoMean(tm), mathx.GeoMean(em)
	t.AddRow("geo. mean", F(gmT), F(gmE))
	t.AddNote("savings: time mode %.1f%%, energy mode %.1f%% (paper: 61.98%% and 71.35%%)", 100-gmT, 100-gmE)
	return t
}
