package harness

import (
	"fmt"

	"repro/internal/autotune"
	"repro/internal/mathx"
	"repro/internal/profiler"
	"repro/internal/taskgen"
	"repro/internal/workload/registry"
)

// Fig20Point is the autotuner-convergence curve at one evaluation count:
// the mean (over benchmarks and search seeds) relative speedup of the best
// binary found so far, plus its variance across seeds.
type Fig20Point struct {
	Evaluations int
	// RelativePct is the percentage of the final best speedup attained.
	RelativePct float64
	// SeedStdDev is the standard deviation across tuner seeds (the
	// paper: "the variance in best speedups disappears after exploring
	// 46 configurations").
	SeedStdDev float64
}

// Fig20Summary is the convergence headline.
type Fig20Summary struct {
	Points []Fig20Point
	// EvalsToBest is the mean number of evaluations to reach within 1%
	// of the final best (paper: 88 were always enough).
	EvalsToBest float64
}

// Fig20 runs the autotuner with several search seeds per benchmark and
// reports the convergence curve (Fig. 20).
func Fig20(e *Env) Fig20Summary {
	checkpoints := []int{5, 10, 20, 30, 46, 60, 88, 120}
	seeds := 5
	if e.Budget < 60 {
		seeds = 3
	}
	budget := e.Budget * 2
	// relCurves[seed*nW + w][checkpoint]
	var curves [][]float64
	var toBest []float64
	for _, w := range registry.Targets() {
		p := e.profilerFor(w, taskgen.ParSTATS, 28)
		s := profiler.BuildSpace(w, 28)
		obj := p.Objective(s, profiler.Time, false)
		for seed := 0; seed < seeds; seed++ {
			res := autotune.Tune(s, obj, autotune.Options{Budget: budget, Seed: e.Seed + uint64(seed)*977})
			final := res.BestVal
			var curve []float64
			for _, c := range checkpoints {
				if c > budget {
					c = budget
				}
				// Relative speedup: final/current (current >= final
				// since lower time is better), as a percentage.
				curve = append(curve, 100*final/res.Trace.BestAfter(c))
			}
			curves = append(curves, curve)
			toBest = append(toBest, float64(res.Trace.EvaluationsToReach(1.01)))
		}
	}
	sum := Fig20Summary{EvalsToBest: mathx.Mean(toBest)}
	for ci, c := range checkpoints {
		var vals []float64
		for _, curve := range curves {
			vals = append(vals, curve[ci])
		}
		sum.Points = append(sum.Points, Fig20Point{
			Evaluations: c,
			RelativePct: mathx.Mean(vals),
			SeedStdDev:  mathx.StdDev(vals),
		})
	}
	return sum
}

// Fig20Table renders Fig. 20.
func Fig20Table(e *Env) *Table {
	sum := Fig20(e)
	t := &Table{
		Title:   "Fig. 20 — Autotuner convergence",
		Columns: []string{"% of best speedup", "stddev across seeds"},
	}
	for _, p := range sum.Points {
		t.AddRow(fmt.Sprintf("%d configs", p.Evaluations), F(p.RelativePct), F(p.SeedStdDev))
	}
	t.AddNote("mean evaluations to reach within 1%% of best: %.0f (paper: 88 configurations were always enough; variance gone by ~46)", sum.EvalsToBest)
	return t
}
