package harness

import (
	"strings"
	"testing"
)

func TestExploreQuick(t *testing.T) {
	schedules, replayEvery := 2, 1
	if raceEnabled {
		// Gate-serialized runs magnify race instrumentation; one schedule
		// per row keeps the package inside the test timeout while still
		// exercising every row end to end.
		schedules, replayEvery = 1, 2
	}
	e := NewEnv(true)
	rows, err := ExploreRun(e, ExploreConfig{
		SchedulesPerRow: schedules, ReplayEvery: replayEvery, DumpDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 14 {
		t.Fatalf("expected six workloads under both protocols plus synthetic fault rows, got %d", len(rows))
	}
	sawSynthetic, sawResv, sawSynthResv := false, false, false
	for _, r := range rows {
		if r.Failures != 0 {
			t.Errorf("%s: %d schedules broke the output contract", r.Name, r.Failures)
		}
		if r.Schedules != schedules {
			t.Errorf("%s: ran %d schedules, want %d", r.Name, r.Schedules, schedules)
		}
		if want := (schedules + replayEvery - 1) / replayEvery; r.Replays != want {
			t.Errorf("%s: verified %d replays, want %d", r.Name, r.Replays, want)
		}
		if r.Stalls != 0 {
			t.Errorf("%s: %d stall force-admissions (unwrapped blocking op)", r.Name, r.Stalls)
		}
		if r.Distinct < 1 || r.Distinct > r.Schedules {
			t.Errorf("%s: distinct=%d out of range", r.Name, r.Distinct)
		}
		if strings.HasPrefix(r.Name, "synthetic ") {
			sawSynthetic = true
		}
		if strings.HasSuffix(r.Name, "(resv)") {
			sawResv = true
		}
		if strings.HasPrefix(r.Name, "synthetic reservations") {
			sawSynthResv = true
		}
	}
	if !sawSynthetic {
		t.Error("no synthetic fault-injection rows")
	}
	if !sawResv || !sawSynthResv {
		t.Errorf("missing reservation rows: workload=%v synthetic=%v", sawResv, sawSynthResv)
	}
}

func TestExploreTableRenders(t *testing.T) {
	if raceEnabled {
		t.Skip("rendering is covered without the race detector; the campaign itself runs in TestExploreQuick")
	}
	e := NewEnv(true)
	tb, err := ExploreTable(e, ExploreConfig{
		SchedulesPerRow: 2, ReplayEvery: 2, DumpDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Explore", "schedules", "failures", "distinct interleavings"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
