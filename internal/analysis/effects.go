package analysis

import (
	"sort"
	"strconv"

	"repro/internal/ir"
)

// EffectsPass is the effect/purity dataflow: it computes, for every
// function, the transitive set of state variables read and written and
// the deepest input-window offset touched, then proves each dependence's
// auxiliary code stays inside the STATS contract — auxiliary code may
// read only the recent inputs inside its declared statedep window and
// its own dependence's state, and may write nothing but the speculative
// start state (its own dependence's state variable). A violation here is
// exactly the bug the runtime would otherwise discover as a validation
// mismatch and pay for with aborts and squashed work.
var EffectsPass = &Pass{
	Name: "effects",
	Doc:  "per-function state read/write sets; aux code confined to window + speculative start state",
	Run:  runEffects,
}

// Site locates one effect occurrence: the function and instruction that
// performs the access, with its source position.
type Site struct {
	Fn    string
	Instr int
	Pos   ir.Pos
}

// EffectSet is one function's transitive effect summary. Map values are
// the first site (in call-graph discovery order) performing the access,
// so diagnostics can name a concrete offending instruction.
type EffectSet struct {
	// StateReads and StateWrites map state variable names to an
	// access site, including accesses performed by transitive callees.
	StateReads  map[string]Site
	StateWrites map[string]Site
	// MaxInput is the deepest InputRead offset reachable (-1 when the
	// function never reads an input); InputSite locates it.
	MaxInput  int
	InputSite Site
}

// newEffectSet returns an empty summary.
func newEffectSet() *EffectSet {
	return &EffectSet{StateReads: map[string]Site{}, StateWrites: map[string]Site{}, MaxInput: -1}
}

// ReadVars returns the sorted state variables read.
func (e *EffectSet) ReadVars() []string { return sortedKeys(e.StateReads) }

// WriteVars returns the sorted state variables written.
func (e *EffectSet) WriteVars() []string { return sortedKeys(e.StateWrites) }

func sortedKeys(m map[string]Site) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EffectSets computes the transitive effect summary of every function by
// iterating direct effects plus callee summaries to a fixpoint. The
// iteration converges because summaries only grow and the lattice
// (subsets of state variables × max offset) is finite; cycles in a
// malformed call graph are therefore handled without special cases.
func EffectSets(m *ir.Module) map[string]*EffectSet {
	sets := map[string]*EffectSet{}
	for name, f := range m.Functions {
		s := newEffectSet()
		for i, in := range f.Instrs {
			site := Site{Fn: name, Instr: i, Pos: in.Pos}
			switch in.Op {
			case ir.StateRead, ir.StateReadIdx:
				if _, ok := s.StateReads[in.Name]; !ok {
					s.StateReads[in.Name] = site
				}
			case ir.StateWrite, ir.StateWriteIdx:
				if _, ok := s.StateWrites[in.Name]; !ok {
					s.StateWrites[in.Name] = site
				}
			case ir.InputRead:
				if in.Index > s.MaxInput {
					s.MaxInput, s.InputSite = in.Index, site
				}
			case ir.InputField:
				// A field projection of the current input: offset 0.
				if s.MaxInput < 0 {
					s.MaxInput, s.InputSite = 0, site
				}
			}
		}
		sets[name] = s
	}

	for changed := true; changed; {
		changed = false
		for name, f := range m.Functions {
			s := sets[name]
			for _, callee := range f.Callees() {
				cs, ok := sets[callee]
				if !ok {
					continue // dangling callee: the verifier reports it
				}
				for v, site := range cs.StateReads {
					if _, have := s.StateReads[v]; !have {
						s.StateReads[v] = site
						changed = true
					}
				}
				for v, site := range cs.StateWrites {
					if _, have := s.StateWrites[v]; !have {
						s.StateWrites[v] = site
						changed = true
					}
				}
				if cs.MaxInput > s.MaxInput {
					s.MaxInput, s.InputSite = cs.MaxInput, cs.InputSite
					changed = true
				}
			}
		}
	}
	return sets
}

func runEffects(m *ir.Module) []Diagnostic {
	var ds []Diagnostic
	sets := EffectSets(m)
	for _, d := range m.Deps {
		if d.AuxCompute == "" {
			continue // no auxiliary code: nothing speculates
		}
		eff, ok := sets[d.AuxCompute]
		if !ok {
			continue // dangling aux function: the verifier reports it
		}
		for _, v := range eff.ReadVars() {
			if v == d.State {
				continue // the speculative start state: the aux input
			}
			site := eff.StateReads[v]
			ds = append(ds, Diagnostic{
				Pass: "effects", Severity: Error, Pos: site.Pos,
				Fn: site.Fn, Instr: site.Instr, Var: v,
				Msg: "auxiliary code for dependence " + d.Name + " reads foreign state " + v +
					"; aux may read only its own dependence's state and the recent-input window",
			})
		}
		for _, v := range eff.WriteVars() {
			if v == d.State {
				continue // the speculative start state: the one legal write
			}
			site := eff.StateWrites[v]
			ds = append(ds, Diagnostic{
				Pass: "effects", Severity: Error, Pos: site.Pos,
				Fn: site.Fn, Instr: site.Instr, Var: v,
				Msg: "auxiliary code for dependence " + d.Name + " writes state " + v +
					"; aux may write nothing but the speculative start state (" + d.State + ")",
			})
		}
		if d.Window > 0 && eff.MaxInput >= d.Window {
			site := eff.InputSite
			ds = append(ds, Diagnostic{
				Pass: "effects", Severity: Error, Pos: site.Pos,
				Fn: site.Fn, Instr: site.Instr, Var: d.Input,
				Msg: "auxiliary code for dependence " + d.Name + " reads input " +
					strconv.Itoa(eff.MaxInput) + " positions back, outside its declared window of " + strconv.Itoa(d.Window),
			})
		}
	}
	return ds
}
