package apivet

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// analyzeSrc runs every analyzer over one source string.
func analyzeSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return AnalyzeFile(fset, file)
}

// want asserts a finding from the named analyzer mentioning every fragment.
func want(t *testing.T, ds []Diagnostic, analyzer string, fragments ...string) {
	t.Helper()
outer:
	for _, d := range ds {
		if d.Analyzer != analyzer {
			continue
		}
		for _, f := range fragments {
			if !strings.Contains(d.String(), f) {
				continue outer
			}
		}
		return
	}
	t.Fatalf("no %s finding containing %q; got: %v", analyzer, fragments, ds)
}

// wantNone asserts the analyzer stays silent.
func wantNone(t *testing.T, ds []Diagnostic, analyzer string) {
	t.Helper()
	for _, d := range ds {
		if d.Analyzer == analyzer {
			t.Fatalf("unexpected %s finding: %s", analyzer, d)
		}
	}
}

func TestNegOpts(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	o := core.Options{GroupSize: 8, RedoMax: -1, Window: -2}
	s := workload.SpecOptions{Rollback: -3}
	_ = o
	_ = s
}`)
	want(t, ds, "negopts", "RedoMax is negative", "every mismatch aborts", "3:34")
	want(t, ds, "negopts", "Window is negative")
	want(t, ds, "negopts", "Rollback is negative")
}

func TestNegOptsIgnoresLegitimateValues(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	o := core.Options{GroupSize: 8, RedoMax: 0, Window: w}
	n := notOptions{RedoMax: -1}
	_ = o
	_ = n
}`)
	wantNone(t, ds, "negopts")
}

func TestDroppedStats(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f(w workload.Workload) {
	w.RunSTATS(1, 64, o)
	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.Start()
	sd.Run()
}`)
	want(t, ds, "droppedstats", "result of RunSTATS discarded")
	want(t, ds, "droppedstats", "sd.Start() as a bare statement discards the error")
	want(t, ds, "droppedstats", "sd.Run() as a bare statement discards the outputs")
}

func TestDroppedStatsIgnoresConsumedResults(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f(w workload.Workload) {
	res, st := w.RunSTATS(1, 64, o)
	sd := stats.NewStateDependence(inputs, initial, compute)
	if err := sd.Start(); err != nil {
		panic(err)
	}
	outs, _, _ := sd.Run()
	other.Run() // not a dependence: no finding
	_, _, _ = res, st, outs
}`)
	wantNone(t, ds, "droppedstats")
}

func TestSpecClosureInlineLiteral(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f(inputs []int) {
	total := 0
	sd := core.New(func(r *rng.Source, in int, s state) (int, state) {
		total += in // captured write: race + squash corruption
		s.sum += in // fine: state parameter
		return in, s
	}, nil, ops)
	_ = sd
	_ = total
}`)
	want(t, ds, "specclosure", "mutates captured variable total")
	// Exactly one finding: the state-parameter write must not be flagged.
	n := 0
	for _, d := range ds {
		if d.Analyzer == "specclosure" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("want exactly 1 specclosure finding, got %d: %v", n, ds)
	}
}

func TestSpecClosureBoundAuxiliary(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	calls := 0
	aux := func(r *rng.Source, init state, recent []int) state {
		calls++
		local := init
		local.n = len(recent)
		return local
	}
	sd.SetAuxiliary(aux)
	_ = calls
}`)
	want(t, ds, "specclosure", "mutates captured variable calls")
}

func TestSpecClosureCleanClosuresPass(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	scale := 2.0 // captured read: fine
	aux := func(r *rng.Source, init state, recent []float64) state {
		s := init
		for _, v := range recent {
			s.mean += v * scale
		}
		return s
	}
	sd.SetAuxiliary(aux)
	helper := func() { counter++ } // not speculated: not checked
	helper()
}`)
	wantNone(t, ds, "specclosure")
}

func TestAnalyzePathsWalksRepo(t *testing.T) {
	// The repository's own examples and workloads must be clean — the
	// acceptance bar for the analyzers' false-positive rate.
	ds, err := AnalyzePaths([]string{"../../../examples", "../../workload"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("analyzers flag the repository's own code:\n%v", ds)
	}
}

func TestFingerprintStateOpsLiteral(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	ops := core.StateOps[walk]{
		Clone:    func(s walk) walk { return s },
		MatchAny: func(spec walk, originals []walk) bool { return true },
	}
	_ = ops
}`)
	want(t, ds, "fingerprint", "MatchAny without Fingerprint", "deep comparison")
}

func TestFingerprintStateOpsWithDigestPasses(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	ops := core.StateOps[walk]{
		Clone:       func(s walk) walk { return s },
		MatchAny:    func(spec walk, originals []walk) bool { return true },
		Fingerprint: func(s walk) uint64 { return uint64(s.n) },
	}
	nilMatch := core.StateOps[walk]{Clone: func(s walk) walk { return s }, MatchAny: nil}
	_, _ = ops, nilMatch
}`)
	wantNone(t, ds, "fingerprint")
}

func TestFingerprintSetStateOps(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.SetStateOps(clone, match)
}`)
	want(t, ds, "fingerprint", "sd.SetStateOps", "SetFingerprint")
}

func TestFingerprintSetStateOpsCoveredPasses(t *testing.T) {
	ds := analyzeSrc(t, `package p
func f() {
	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.SetStateOps(clone, match)
	sd.SetFingerprint(func(s walk) uint64 { return uint64(s.n) })
}
func g() {
	sd := stats.NewStateDependence(inputs, initial, compute)
	sd.SetStateOps(clone, nil) // by-construction acceptance: no digest to take
}`)
	wantNone(t, ds, "fingerprint")
}
