// Package apivet holds the statsvet analyzers for runtime-API misuse in
// user Go code — the mistakes that compile fine, run fine, and quietly
// disable or corrupt speculation (or leave easy speed on the table). Five
// analyzers ship:
//
//   - negopts: a negative GroupSize/Window/RedoMax/Rollback/Workers in an
//     engine options literal. The engine clamps negatives to their floor,
//     so `RedoMax: -1` silently means "never redo" — almost always a bug.
//   - droppedstats: discarding a state dependence's results — calling
//     RunSTATS, Run or Join as a bare statement (dropping the outputs and
//     the speculation Stats the caller needs to notice aborts), or Start
//     as a bare statement (dropping its error).
//   - specclosure: a compute or auxiliary closure that assigns to a
//     variable captured from the enclosing scope. Speculated closures run
//     concurrently and may be re-executed or squashed; state must flow
//     through the state parameter, not shared captures.
//   - reserveops: misuse inside a ReserveOps literal — a Footprint that
//     returns a slice captured from the enclosing scope (footprints are
//     held across the round, so invocations would alias one slice), a
//     constant slot index outside [0, NumSlots), or a Merge that mutates
//     its src argument (the committed winner's state).
//   - fingerprint: a dependence defining MatchAny (literal StateOps or
//     SetStateOps with a non-nil match) without a Fingerprint — every
//     acceptance attempt pays the deep state comparison where a hash-first
//     prefilter would reject most mismatches in one probe.
//
// The analyzers are deliberately syntactic (stdlib go/ast only, no
// golang.org/x/tools dependency, which keeps them usable in hermetic
// builds) and tuned for zero false positives over this repository:
// negopts only fires on literal negative constants, droppedstats and
// specclosure only on receivers provably created by the STATS
// constructors in the same function.
package apivet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one Go-source finding.
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Msg)
}

// Analyzer is one Go-source check.
type Analyzer struct {
	// Name keys the analyzer in diagnostics.
	Name string
	// Doc is the one-line description.
	Doc string
	// Run inspects one parsed file.
	Run func(fset *token.FileSet, file *ast.File) []Diagnostic
}

// Analyzers returns the runtime-API analyzers in execution order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NegOpts, DroppedStats, SpecClosure, ReserveOpsLit, FingerprintLit}
}

// AnalyzeFile runs every analyzer over one parsed file.
func AnalyzeFile(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	for _, a := range Analyzers() {
		out = append(out, a.Run(fset, file)...)
	}
	return out
}

// AnalyzePaths parses and analyzes the given paths: a .go file is
// analyzed directly; a directory is walked recursively for non-test .go
// files (skipping testdata and hidden directories). Findings are sorted
// by file position.
func AnalyzePaths(paths []string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var out []Diagnostic
	analyze := func(path string) error {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		out = append(out, AnalyzeFile(fset, file)...)
		return nil
	}
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			if err := analyze(p); err != nil {
				return nil, err
			}
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || (strings.HasPrefix(d.Name(), ".") && len(d.Name()) > 1) {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			return analyze(path)
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return out, nil
}

// diag builds a positioned finding.
func diag(fset *token.FileSet, pos token.Pos, analyzer, format string, args ...any) Diagnostic {
	p := fset.Position(pos)
	return Diagnostic{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: analyzer, Msg: fmt.Sprintf(format, args...)}
}
