package apivet

import (
	"go/ast"
	"go/token"
)

// optionTypes are the engine-option struct names whose literals negopts
// inspects; optionFields are the count-valued fields the engines clamp at
// a floor, making negative literals silent no-ops.
var (
	optionTypes  = map[string]bool{"Options": true, "SpecOptions": true, "RuntimeOptions": true}
	optionFields = map[string]string{
		"GroupSize": "treats values below 1 as 1",
		"Window":    "treats negative values as 0 (auxiliary code sees no inputs)",
		"RedoMax":   "treats negative values as 0 (no re-executions, so every mismatch aborts)",
		"Rollback":  "clamps it to [1, group length]",
		"Workers":   "treats values below 1 as 1",
	}
)

// NegOpts flags negative literals in engine-option struct fields.
var NegOpts = &Analyzer{
	Name: "negopts",
	Doc:  "negative engine option literal the runtime silently clamps",
	Run:  runNegOpts,
}

func runNegOpts(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isOptionsType(lit.Type) {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			clamp, tracked := optionFields[key.Name]
			if !tracked || !isNegativeLiteral(kv.Value) {
				continue
			}
			out = append(out, diag(fset, kv.Pos(), "negopts",
				"%s is negative; the engine %s — use 0 or a positive value", key.Name, clamp))
		}
		return true
	})
	return out
}

// isOptionsType reports whether a composite literal's type is one of the
// engine option structs (qualified like core.Options, or bare after a
// dot-import).
func isOptionsType(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.SelectorExpr:
		return optionTypes[tt.Sel.Name]
	case *ast.Ident:
		return optionTypes[tt.Name]
	}
	return false
}

// isNegativeLiteral matches a unary minus on a constant literal.
func isNegativeLiteral(e ast.Expr) bool {
	u, ok := e.(*ast.UnaryExpr)
	if !ok || u.Op != token.SUB {
		return false
	}
	_, lit := u.X.(*ast.BasicLit)
	return lit
}

// DroppedStats flags bare-statement calls that discard a state
// dependence's results: RunSTATS anywhere (it always returns the
// speculation Stats), and Run/Join/Start on receivers created by the
// STATS constructors in the same function.
var DroppedStats = &Analyzer{
	Name: "droppedstats",
	Doc:  "state-dependence results (outputs, Stats, or Start error) discarded",
	Run:  runDroppedStats,
}

// depMethodMsg names what each bare-statement dependence method discards.
var depMethodMsg = map[string]string{
	"Run":   "discards the outputs, final state and speculation stats",
	"Join":  "discards the outputs, final state and speculation stats",
	"Start": "discards the error; a rejected dependence would fail silently",
}

func runDroppedStats(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	forEachFuncBody(file, func(body *ast.BlockStmt) {
		deps := dependenceVars(body)
		ast.Inspect(body, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "RunSTATS" {
				out = append(out, diag(fset, es.Pos(), "droppedstats",
					"result of RunSTATS discarded; the Stats return is how callers notice aborts and wasted work"))
				return true
			}
			msg, tracked := depMethodMsg[sel.Sel.Name]
			recv, isIdent := sel.X.(*ast.Ident)
			if tracked && isIdent && deps[recv.Name] {
				out = append(out, diag(fset, es.Pos(), "droppedstats",
					"%s.%s() as a bare statement %s", recv.Name, sel.Sel.Name, msg))
			}
			return true
		})
	})
	return out
}

// depConstructors are the call names whose results droppedstats and
// specclosure treat as state dependences.
var depConstructors = map[string]bool{"NewStateDependence": true, "New": true, "Attach": true}

// dependenceVars returns the names assigned from a STATS constructor
// (stats.NewStateDependence, core.New, stats.Attach) inside the body.
func dependenceVars(body *ast.BlockStmt) map[string]bool {
	deps := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isDepConstructor(call.Fun) {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				deps[id.Name] = true
			}
		}
		return true
	})
	return deps
}

// isDepConstructor matches stats.NewStateDependence / core.New / their
// dot-imported spellings.
func isDepConstructor(fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		return depConstructors[f.Sel.Name]
	case *ast.Ident:
		return depConstructors[f.Name]
	case *ast.IndexExpr: // explicit instantiation: core.New[I, S, O](...)
		return isDepConstructor(f.X)
	case *ast.IndexListExpr:
		return isDepConstructor(f.X)
	}
	return false
}

// SpecClosure flags compute/auxiliary closures that assign to variables
// captured from the enclosing scope. The engine runs these closures
// concurrently across groups and may re-execute or squash them, so a
// captured write is a data race and corrupts squashed-work isolation:
// state must flow through the state parameter and return value.
var SpecClosure = &Analyzer{
	Name: "specclosure",
	Doc:  "speculated closure mutates captured shared state",
	Run:  runSpecClosure,
}

// speculatedArgSites names the calls whose closure arguments the engine
// speculates: the compute argument of NewStateDependence/New, and the
// auxiliary argument of SetAuxiliary/New.
var speculatedArgSites = map[string]bool{"NewStateDependence": true, "New": true, "SetAuxiliary": true}

func runSpecClosure(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	forEachFuncBody(file, func(body *ast.BlockStmt) {
		// Func literals bound to locals, so SetAuxiliary(aux) can be
		// traced back to `aux := func(...) {...}`.
		bound := map[string]*ast.FuncLit{}
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
					bound[id.Name] = fl
				}
			}
			return true
		})

		seen := map[*ast.FuncLit]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := callName(call.Fun)
			if !ok || !speculatedArgSites[name] {
				return true
			}
			for _, arg := range call.Args {
				var fl *ast.FuncLit
				switch a := arg.(type) {
				case *ast.FuncLit:
					fl = a
				case *ast.Ident:
					fl = bound[a.Name]
				}
				if fl == nil || seen[fl] {
					continue
				}
				seen[fl] = true
				out = append(out, capturedWrites(fset, fl)...)
			}
			return true
		})
	})
	return out
}

// callName extracts the called function's bare name.
func callName(fun ast.Expr) (string, bool) {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	case *ast.Ident:
		return f.Name, true
	case *ast.IndexExpr:
		return callName(f.X)
	case *ast.IndexListExpr:
		return callName(f.X)
	}
	return "", false
}

// capturedWrites reports assignments inside fl whose target's base
// identifier is captured from the enclosing scope (not a parameter and
// not declared inside the literal).
func capturedWrites(fset *token.FileSet, fl *ast.FuncLit) []Diagnostic {
	local := localNames(fl)

	var out []Diagnostic
	report := func(target ast.Expr) {
		base, ok := baseIdent(target)
		if !ok || local[base.Name] {
			return
		}
		out = append(out, diag(fset, target.Pos(), "specclosure",
			"speculated closure mutates captured variable %s; the engine may run, re-execute or squash it concurrently — thread state through the state parameter instead", base.Name))
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				for _, lhs := range s.Lhs {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			report(s.X)
		}
		return true
	})
	return out
}

// localNames collects every identifier a func literal declares —
// parameters, named results, and any name introduced anywhere inside the
// body (:=, var, range, nested literal params). Collecting them up front
// over-approximates scoping, which can only suppress findings — the safe
// direction for a syntactic checker.
func localNames(fl *ast.FuncLit) map[string]bool {
	local := map[string]bool{"_": true, "nil": true}
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			local[name.Name] = true
		}
	}
	if fl.Type.Results != nil {
		for _, field := range fl.Type.Results.List {
			for _, name := range field.Names {
				local[name.Name] = true
			}
		}
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok == token.DEFINE {
				for _, lhs := range d.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range d.Names {
				local[name.Name] = true
			}
		case *ast.RangeStmt:
			if d.Tok == token.DEFINE {
				for _, e := range []ast.Expr{d.Key, d.Value} {
					if id, ok := e.(*ast.Ident); ok {
						local[id.Name] = true
					}
				}
			}
		case *ast.FuncLit:
			for _, field := range d.Type.Params.List {
				for _, name := range field.Names {
					local[name.Name] = true
				}
			}
		}
		return true
	})
	return local
}

// ReserveOpsLit flags reservation-protocol misuse inside ReserveOps
// composite literals: a Footprint that returns a slice captured from the
// enclosing scope (the engine holds footprints across the round, so a
// shared slice aliases every invocation's reservation), a constant slot
// index outside [0, NumSlots), and a Merge that mutates its src argument
// (the committed winner's state, which other attempts still read).
var ReserveOpsLit = &Analyzer{
	Name: "reserveops",
	Doc:  "ReserveOps misuse: aliased Footprint slice, out-of-range slot constant, Merge mutating src",
	Run:  runReserveOps,
}

func runReserveOps(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isReserveOpsType(lit.Type) {
			return true
		}
		fields := map[string]*ast.FuncLit{}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if fl, ok := kv.Value.(*ast.FuncLit); ok {
				fields[key.Name] = fl
			}
		}
		numSlots := constSlotCount(fields["NumSlots"])
		if fp := fields["Footprint"]; fp != nil {
			out = append(out, checkFootprintLit(fset, fp, numSlots)...)
		}
		if m := fields["Merge"]; m != nil {
			out = append(out, checkMergeLit(fset, m)...)
		}
		return true
	})
	return out
}

// isReserveOpsType matches core.ReserveOps / ReserveOps, possibly wrapped
// in an explicit instantiation (ReserveOps[I, S]{...} parses as an
// IndexListExpr around the type name).
func isReserveOpsType(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.SelectorExpr:
		return tt.Sel.Name == "ReserveOps"
	case *ast.Ident:
		return tt.Name == "ReserveOps"
	case *ast.IndexExpr:
		return isReserveOpsType(tt.X)
	case *ast.IndexListExpr:
		return isReserveOpsType(tt.X)
	}
	return false
}

// constSlotCount extracts N from a NumSlots literal of the form
// func(...) int { return N }; -1 means the count is not a syntactic
// constant.
func constSlotCount(fl *ast.FuncLit) int {
	if fl == nil || len(fl.Body.List) != 1 {
		return -1
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return -1
	}
	return intLitValue(ret.Results[0])
}

// intLitValue evaluates a non-negative integer literal; -1 otherwise.
func intLitValue(e ast.Expr) int {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return -1
	}
	n := 0
	for _, c := range lit.Value {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// checkFootprintLit inspects a Footprint literal for captured-slice
// returns and out-of-range constant indices.
func checkFootprintLit(fset *token.FileSet, fl *ast.FuncLit, numSlots int) []Diagnostic {
	local := localNames(fl)
	var out []Diagnostic
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if id, ok := res.(*ast.Ident); ok && !local[id.Name] {
					out = append(out, diag(fset, res.Pos(), "reserveops",
						"Footprint returns captured slice %s; the engine holds footprints across the round, so every invocation would alias one slice — return a fresh slice per call", id.Name))
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				v := intLitValue(el)
				if u, ok := el.(*ast.UnaryExpr); ok && u.Op == token.SUB && intLitValue(u.X) >= 0 {
					out = append(out, diag(fset, el.Pos(), "reserveops",
						"negative slot index in Footprint; reservation slots are [0, NumSlots)"))
					continue
				}
				if v >= 0 && numSlots >= 0 && v >= numSlots {
					out = append(out, diag(fset, el.Pos(), "reserveops",
						"constant slot index %d with NumSlots %d; reservation slots are [0, NumSlots)", v, numSlots))
				}
			}
		}
		return true
	})
	return out
}

// checkMergeLit flags assignments through Merge's second parameter (src,
// the committed winner's state — attempts merging later still read it).
func checkMergeLit(fset *token.FileSet, fl *ast.FuncLit) []Diagnostic {
	var params []string
	for _, field := range fl.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, name.Name)
		}
	}
	if len(params) < 2 {
		return nil
	}
	src := params[1]
	var out []Diagnostic
	report := func(target ast.Expr) {
		base, ok := baseIdent(target)
		if !ok || base.Name != src {
			return
		}
		if _, isBare := target.(*ast.Ident); isBare {
			return // rebinding the local src variable, not mutating through it
		}
		out = append(out, diag(fset, target.Pos(), "reserveops",
			"Merge mutates its src argument %s; src is the committed winner's state and later merges still read it — write into dst only", src))
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				for _, lhs := range s.Lhs {
					report(lhs)
				}
			}
		case *ast.IncDecStmt:
			report(s.X)
		}
		return true
	})
	return out
}

// baseIdent resolves an assignment target to its base identifier
// (x, x.f, x[i], *x all resolve to x).
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t, true
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil, false
		}
	}
}

// forEachFuncBody visits every function body in the file, including
// methods and top-level function literals.
func forEachFuncBody(file *ast.File, fn func(*ast.BlockStmt)) {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd.Body)
		}
	}
}

// FingerprintLit nudges hash-first acceptance: a dependence that defines
// MatchAny but no Fingerprint runs the deep state comparison on every
// acceptance attempt, where a cheap digest of the compared features would
// reject most mismatches in one table probe. Two forms are checked: a
// StateOps composite literal with a non-nil MatchAny key and no
// Fingerprint key, and a SetStateOps call with a non-nil match argument
// on a receiver that never gets a SetFingerprint call in the same file.
// The fingerprint contract is one-sided (equal whenever MatchAny would
// accept), so a structural digest is always available.
var FingerprintLit = &Analyzer{
	Name: "fingerprint",
	Doc:  "MatchAny without Fingerprint: every acceptance attempt pays the deep comparison; attach a hash-first prefilter",
	Run:  runFingerprint,
}

func runFingerprint(fset *token.FileSet, file *ast.File) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isStateOpsType(lit.Type) {
			return true
		}
		var matchPos token.Pos
		hasMatch, hasFP := false, false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "MatchAny":
				if !isNilIdent(kv.Value) {
					hasMatch = true
					matchPos = kv.Pos()
				}
			case "Fingerprint":
				hasFP = true
			}
		}
		if hasMatch && !hasFP {
			out = append(out, diag(fset, matchPos, "fingerprint",
				"StateOps sets MatchAny without Fingerprint; every acceptance attempt pays the deep comparison — attach a digest of the compared features (equal whenever MatchAny would accept) to reject mismatches in one probe"))
		}
		return true
	})

	// SetStateOps(_, match) with a non-nil match, on a receiver never
	// given a SetFingerprint in this file.
	type setCall struct {
		recv string
		pos  token.Pos
	}
	var setOps []setCall
	fingerprinted := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := baseIdent(sel.X)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "SetStateOps":
			if len(call.Args) == 2 && !isNilIdent(call.Args[1]) {
				setOps = append(setOps, setCall{recv.Name, call.Pos()})
			}
		case "SetFingerprint":
			fingerprinted[recv.Name] = true
		}
		return true
	})
	for _, c := range setOps {
		if !fingerprinted[c.recv] {
			out = append(out, diag(fset, c.pos, "fingerprint",
				"%s.SetStateOps attaches a match function but %s never gets a SetFingerprint; every acceptance attempt pays the deep comparison — attach a digest of the compared features (equal whenever the match would accept)", c.recv, c.recv))
		}
	}
	return out
}

// isStateOpsType matches core.StateOps / StateOps, possibly explicitly
// instantiated.
func isStateOpsType(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.SelectorExpr:
		return tt.Sel.Name == "StateOps"
	case *ast.Ident:
		return tt.Name == "StateOps"
	case *ast.IndexExpr:
		return isStateOpsType(tt.X)
	case *ast.IndexListExpr:
		return isStateOpsType(tt.X)
	}
	return false
}

// isNilIdent reports whether e is the literal nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
