package analysis

import (
	"sort"

	"repro/internal/ir"
)

// FootprintsPass extends the effect dataflow from state-variable to slot
// granularity: for each dependence it infers, per indexed state access in
// the compute function's reachable call graph, an affine index expression
// over the current input (a constant, an input field, or stride*field+
// offset), widening to ⊤ (whole state) only when the index is genuinely
// dynamic. The pass then proves any declared reservation footprint
// (DepMeta.Reserve, the slots WithReserve claims an input touches) is a
// sound over-approximation of the inferred one: an access the declared
// footprint does not cover is an Error — exactly the bug that silently
// breaks the reservations protocol's byte-identical-to-sequential
// guarantee — while a whole-state declaration over fully precise inferred
// accesses is a Warning for lost parallelism.
var FootprintsPass = &Pass{
	Name: "footprints",
	Doc:  "slot-level footprint inference; declared reservations must over-approximate inferred accesses",
	Run:  runFootprints,
}

// Access is one inferred slot-level state access: the abstract index
// expression (Whole when the index is dynamic or the access is a plain
// whole-state read/write) and the site performing it.
type Access struct {
	Expr  ir.IndexExpr
	Write bool
	Site  Site
}

// Footprint is the inferred slot-level footprint of one dependence —
// the slot-map statsvet -footprints exports for internal/workload.
type Footprint struct {
	Dep     string
	State   string
	Slots   int            // declared slot count (0 = unslotted)
	Reserve []ir.IndexExpr // declared footprint (empty = whole-state fallback)
	Reads   []Access
	Writes  []Access
}

// Precise reports whether every inferred access is a precise slot
// expression (no ⊤-widening) — the condition under which a slotted
// ReserveOps can be generated from the inference alone.
func (fp *Footprint) Precise() bool {
	for _, a := range fp.Reads {
		if a.Expr.Whole {
			return false
		}
	}
	for _, a := range fp.Writes {
		if a.Expr.Whole {
			return false
		}
	}
	return true
}

// Exprs returns the deduplicated inferred index expressions (reads and
// writes merged), in deterministic order.
func (fp *Footprint) Exprs() []ir.IndexExpr {
	var out []ir.IndexExpr
	add := func(e ir.IndexExpr) {
		for _, have := range out {
			if have.Same(e) {
				return
			}
		}
		out = append(out, e)
	}
	for _, a := range fp.Reads {
		add(a.Expr)
	}
	for _, a := range fp.Writes {
		add(a.Expr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// absIdx is the abstract value of one instruction in the index domain:
// ⊥ is not needed (every instruction has a value), ⊤ is "genuinely
// dynamic", and everything else is the affine form stride*field+offset
// (field=="" means the constant offset).
type absIdx struct {
	top    bool
	field  string
	stride int64
	offset int64
}

var absTop = absIdx{top: true}

func (a absIdx) expr(pos ir.Pos) ir.IndexExpr {
	return ir.IndexExpr{Whole: a.top, Field: a.field, Stride: a.stride, Offset: a.offset, Pos: pos}
}

// absEval abstractly evaluates every instruction of f bottom-up. Operands
// that are not defined before use (malformed IR the verifier reports)
// evaluate to ⊤ rather than faulting.
func absEval(f *ir.Function) []absIdx {
	vals := make([]absIdx, len(f.Instrs))
	get := func(i, a int) absIdx {
		if a < 0 || a >= i {
			return absTop
		}
		return vals[a]
	}
	for i, in := range f.Instrs {
		switch in.Op {
		case ir.Const:
			vals[i] = absIdx{offset: in.Value}
		case ir.InputField:
			vals[i] = absIdx{field: in.Name, stride: 1}
		case ir.Add:
			if len(in.Args) != 2 {
				vals[i] = absTop
				break
			}
			vals[i] = absAdd(get(i, in.Args[0]), get(i, in.Args[1]))
		case ir.Mul:
			if len(in.Args) != 2 {
				vals[i] = absTop
				break
			}
			vals[i] = absMul(get(i, in.Args[0]), get(i, in.Args[1]))
		default:
			vals[i] = absTop
		}
	}
	return vals
}

// absAdd folds addition: const+const stays const, const+affine shifts the
// offset, affine+affine (two different dynamic terms) widens to ⊤.
func absAdd(a, b absIdx) absIdx {
	switch {
	case a.top || b.top:
		return absTop
	case a.field == "":
		if b.field == "" {
			return absIdx{offset: a.offset + b.offset}
		}
		return absIdx{field: b.field, stride: b.stride, offset: b.offset + a.offset}
	case b.field == "":
		return absIdx{field: a.field, stride: a.stride, offset: a.offset + b.offset}
	default:
		return absTop
	}
}

// absMul folds multiplication: const*const stays const, const*affine
// scales stride and offset, affine*affine widens to ⊤.
func absMul(a, b absIdx) absIdx {
	switch {
	case a.top || b.top:
		return absTop
	case a.field == "" && b.field == "":
		return absIdx{offset: a.offset * b.offset}
	case a.field == "":
		return absIdx{field: b.field, stride: b.stride * a.offset, offset: b.offset * a.offset}
	case b.field == "":
		return absIdx{field: a.field, stride: a.stride * b.offset, offset: a.offset * b.offset}
	default:
		return absTop
	}
}

// slotAccess is one entry of a function's transitive slot-access summary.
type slotAccess struct {
	state string
	expr  ir.IndexExpr
	write bool
	site  Site
}

func (a slotAccess) key() string {
	k := a.state + "|" + a.expr.String()
	if a.write {
		return k + "|w"
	}
	return k + "|r"
}

// slotSummaries computes, for every function, the transitive set of
// slot-level state accesses: direct StateRead/StateWrite (⊤ access) and
// StateReadIdx/StateWriteIdx (abstractly evaluated index) plus everything
// reachable through Call edges, iterated to a fixpoint over sorted
// function names so summaries are deterministic.
func slotSummaries(m *ir.Module) map[string][]slotAccess {
	sums := map[string][]slotAccess{}
	have := map[string]map[string]bool{}
	names := make([]string, 0, len(m.Functions))
	for name := range m.Functions {
		names = append(names, name)
	}
	sort.Strings(names)

	add := func(name string, a slotAccess) bool {
		if have[name] == nil {
			have[name] = map[string]bool{}
		}
		if have[name][a.key()] {
			return false
		}
		have[name][a.key()] = true
		sums[name] = append(sums[name], a)
		return true
	}

	for _, name := range names {
		f := m.Functions[name]
		if f == nil {
			continue
		}
		vals := absEval(f)
		for i, in := range f.Instrs {
			site := Site{Fn: name, Instr: i, Pos: in.Pos}
			switch in.Op {
			case ir.StateRead, ir.StateWrite:
				add(name, slotAccess{
					state: in.Name, expr: ir.IndexExpr{Whole: true, Pos: in.Pos},
					write: in.Op == ir.StateWrite, site: site,
				})
			case ir.StateReadIdx, ir.StateWriteIdx:
				v := absTop
				if len(in.Args) == 1 {
					v = vals[in.Args[0]]
				}
				add(name, slotAccess{
					state: in.Name, expr: v.expr(in.Pos),
					write: in.Op == ir.StateWriteIdx, site: site,
				})
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, name := range names {
			f := m.Functions[name]
			if f == nil {
				continue
			}
			for _, callee := range f.Callees() {
				for _, a := range sums[callee] {
					if add(name, a) {
						changed = true
					}
				}
			}
		}
	}
	return sums
}

// InferFootprints computes the slot-level footprint of every dependence's
// compute function (accesses to foreign state are the effects pass's
// problem and excluded here), sorted by dependence name.
func InferFootprints(m *ir.Module) []Footprint {
	sums := slotSummaries(m)
	var out []Footprint
	for _, d := range m.Deps {
		fp := Footprint{Dep: d.Name, State: d.State, Slots: d.Slots, Reserve: d.Reserve}
		for _, a := range sums[d.Compute] {
			if a.state != d.State {
				continue
			}
			acc := Access{Expr: a.expr, Write: a.write, Site: a.site}
			if a.write {
				fp.Writes = append(fp.Writes, acc)
			} else {
				fp.Reads = append(fp.Reads, acc)
			}
		}
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dep < out[j].Dep })
	return out
}

// covered reports whether declared (a reservation footprint) soundly
// covers the inferred access expression: a Whole declaration covers
// everything; a ⊤ access is covered only by a Whole declaration;
// otherwise coverage is syntactic slot-set equality with some entry.
func covered(declared []ir.IndexExpr, e ir.IndexExpr) bool {
	for _, r := range declared {
		if r.Whole {
			return true
		}
		if !e.Whole && r.Same(e) {
			return true
		}
	}
	return false
}

func runFootprints(m *ir.Module) []Diagnostic {
	var ds []Diagnostic
	for _, fp := range InferFootprints(m) {
		dep, state, slots := fp.Dep, fp.State, fp.Slots

		// Declared-footprint integrity: range and shape of each entry.
		declaredWhole := false
		for _, r := range fp.Reserve {
			switch {
			case r.Whole:
				declaredWhole = true
			case r.Field == "":
				if r.Offset < 0 || (slots > 0 && r.Offset >= int64(slots)) {
					ds = append(ds, metaDiag("footprints", Error, r.Pos, dep,
						"dependence %s reserves constant slot %d, outside [0,%d)", dep, r.Offset, slots))
				}
			case r.Stride < 1:
				ds = append(ds, metaDiag("footprints", Error, r.Pos, dep,
					"dependence %s reserve entry %s has non-positive stride %d", dep, r, r.Stride))
			}
		}

		if len(fp.Reserve) == 0 {
			continue // whole-state fallback: trivially sound, nothing declared to check
		}

		// Soundness: every inferred access must be covered.
		all := append(append([]Access{}, fp.Reads...), fp.Writes...)
		used := make([]bool, len(fp.Reserve))
		allPrecise := len(all) > 0
		for _, a := range all {
			if a.Expr.Whole {
				allPrecise = false
			} else if a.Expr.Field == "" && (a.Expr.Offset < 0 || (slots > 0 && a.Expr.Offset >= int64(slots))) {
				ds = append(ds, Diagnostic{
					Pass: "footprints", Severity: Error, Pos: a.Site.Pos,
					Fn: a.Site.Fn, Instr: a.Site.Instr, Var: dep,
					Msg: "dependence " + dep + " compute accesses constant slot " +
						a.Expr.String() + " of " + state + ", outside the declared slot range",
				})
			}
			kind := "reads"
			if a.Write {
				kind = "writes"
			}
			if !covered(fp.Reserve, a.Expr) {
				ds = append(ds, Diagnostic{
					Pass: "footprints", Severity: Error, Pos: a.Site.Pos,
					Fn: a.Site.Fn, Instr: a.Site.Instr, Var: dep,
					Msg: "dependence " + dep + " " + kind + " slot " + a.Expr.String() + " of " + state +
						", which its declared reservation footprint under-approximates" +
						" — the reservations protocol would commit conflicting inputs",
				})
			}
			for i, r := range fp.Reserve {
				if r.Whole || (!a.Expr.Whole && r.Same(a.Expr)) {
					used[i] = true
				}
			}
		}

		// Over-approximation lints: lost parallelism, never unsoundness.
		if declaredWhole && allPrecise {
			ds = append(ds, metaDiag("footprints", Warning, fp.Reserve[0].Pos, dep,
				"dependence %s reserves the whole state but every inferred access is a precise slot — whole-state reservation serializes commits (lost parallelism)", dep))
		}
		for i, r := range fp.Reserve {
			if !used[i] && !r.Whole {
				ds = append(ds, metaDiag("footprints", Warning, r.Pos, dep,
					"dependence %s reserve entry %s matches no inferred access (over-approximation costs parallelism)", dep, r))
			}
		}
	}
	return ds
}
