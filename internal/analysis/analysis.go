// Package analysis is the STATS static-analysis suite (statsvet): a pass
// framework over the typed internal/ir module that proves auxiliary code
// safe *before* it ever speculates. The runtime discovers invariant
// violations as validation mismatches and aborts — the expensive path
// Figure 4 exists to avoid; these passes catch malformed SDI/TI programs
// at compile time instead, in the spirit of synergistic static+speculative
// optimization (prove statically what you can, pay speculation only for
// what you can't).
//
// Four IR passes ship today:
//
//   - verify: IR well-formedness — operand arity per opcode,
//     def-before-use, call-graph consistency, metadata integrity, and
//     structural congruence between the mid-end's deep-cloned auxiliary
//     code and its original compute functions.
//   - effects: an interprocedural effect/purity dataflow that computes
//     per-function state read/write sets and input-window footprints,
//     then flags auxiliary code that reads inputs outside its declared
//     statedep window, reads foreign state, or writes anything but the
//     speculative start state.
//   - footprints: the same dataflow at slot granularity — affine index
//     expressions over the current input, widened to ⊤ only when
//     genuinely dynamic — proving every declared reservation footprint
//     is a sound over-approximation of the inferred one.
//   - lints: tradeoff hygiene — unused/unreachable tradeoffs, knobs whose
//     declared range can never be exercised, and function tradeoffs whose
//     variants disagree in signature.
//
// Source-level lints over the front-end declarations (before the mid-end
// pins and deletes unused tradeoffs, which would hide them) live in
// AnalyzeSource. Go-source analyzers for runtime-API misuse live in the
// apivet subpackage.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/frontend"
	"repro/internal/ir"
)

// Severity classifies a diagnostic: Error findings make a module unsafe
// to emit (statsc -vet refuses, stats.Runtime rejects); Warning findings
// are hygiene problems that cannot corrupt a run.
type Severity int

const (
	// Warning marks a finding that is suspicious but not unsound.
	Warning Severity = iota
	// Error marks a finding that makes the module unsafe to run.
	Error
)

// String returns "warning" or "error".
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding. Pos is the source position threaded from the
// front-end (zero when the construct has no source anchor); Fn and Instr
// locate the offending IR instruction (Instr is -1 for metadata-level
// findings); Var names the offending variable, tradeoff or function.
type Diagnostic struct {
	Pass     string
	Severity Severity
	Pos      ir.Pos
	Fn       string
	Instr    int
	Var      string
	Msg      string
}

// String renders the diagnostic in the statsvet single-line format:
//
//	line:col: severity: pass: message (func F instr N, var V)
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s: %s: %s", d.Pos, d.Severity, d.Pass, d.Msg)
	var loc []string
	if d.Fn != "" {
		if d.Instr >= 0 {
			loc = append(loc, fmt.Sprintf("func %s instr %d", d.Fn, d.Instr))
		} else {
			loc = append(loc, "func "+d.Fn)
		}
	}
	if d.Var != "" {
		loc = append(loc, "var "+d.Var)
	}
	if len(loc) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(loc, ", "))
	}
	return b.String()
}

// Pass is one analysis over a module. Run must not mutate the module and
// must never panic on malformed input — rejecting garbage gracefully is
// the whole point.
type Pass struct {
	// Name keys the pass in diagnostics and CLI filters.
	Name string
	// Doc is the one-line description statsvet -help prints.
	Doc string
	// Run executes the pass.
	Run func(m *ir.Module) []Diagnostic
}

// Passes returns the IR passes in execution order.
func Passes() []*Pass {
	return []*Pass{VerifyPass, EffectsPass, FootprintsPass, LintsPass}
}

// Analyze runs every IR pass over m and returns the findings in a
// deterministic order (position, then function, then instruction).
func Analyze(m *ir.Module) []Diagnostic {
	var out []Diagnostic
	for _, p := range Passes() {
		out = append(out, p.Run(m)...)
	}
	Sort(out)
	return out
}

// AnalyzeSource runs the source-level lints over the front-end output.
// These must run before the mid-end: pinning deletes unused tradeoffs
// from the module, which would hide exactly the declarations the lints
// exist to flag.
func AnalyzeSource(fo *frontend.Output) []Diagnostic {
	out := sourceLints(fo)
	Sort(out)
	return out
}

// AnalyzeProgram is the full statsvet front door for one compiled
// program: source lints plus every IR pass, merged and sorted.
func AnalyzeProgram(fo *frontend.Output, m *ir.Module) []Diagnostic {
	out := append(sourceLints(fo), Analyze(m)...)
	Sort(out)
	return out
}

// Sort orders diagnostics by source position, then function, instruction,
// pass and message, so output is stable across map-iteration orders.
func Sort(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Instr != b.Instr {
			return a.Instr < b.Instr
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
}

// HasErrors reports whether any finding is Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Check runs every IR pass and returns a non-nil error listing the Error
// findings, if any — the form the statsc -vet gate and stats.Runtime's
// module verification consume. Warnings never fail Check.
func Check(m *ir.Module) error {
	var errs []string
	for _, d := range Analyze(m) {
		if d.Severity == Error {
			errs = append(errs, d.String())
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("analysis: module failed verification with %d error(s):\n  %s",
		len(errs), strings.Join(errs, "\n  "))
}

// errAt builds an instruction-anchored Error diagnostic.
func errAt(pass string, f *ir.Function, i int, variable, format string, args ...any) Diagnostic {
	d := Diagnostic{Pass: pass, Severity: Error, Fn: f.Name, Instr: i, Var: variable, Msg: fmt.Sprintf(format, args...)}
	if i >= 0 && i < len(f.Instrs) {
		d.Pos = f.Instrs[i].Pos
	}
	return d
}

// metaDiag builds a metadata-level diagnostic (no instruction anchor).
func metaDiag(pass string, sev Severity, pos ir.Pos, variable, format string, args ...any) Diagnostic {
	return Diagnostic{Pass: pass, Severity: sev, Pos: pos, Instr: -1, Var: variable, Msg: fmt.Sprintf(format, args...)}
}
