package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// LintsPass is the tradeoff-hygiene lint set over the IR: tradeoffs that
// no instruction references (dead metadata the back-end would silently
// drag along), tradeoffs referenced only from code unreachable from any
// dependence or getValue root (the knob exists but no execution path can
// exercise its values), knobs whose declared range collapses to a single
// value, and function tradeoffs whose variant implementations disagree in
// signature (substituting them is unsound).
var LintsPass = &Pass{
	Name: "lints",
	Doc:  "unused/unreachable tradeoffs, degenerate value ranges, variant signature mismatches",
	Run:  runLints,
}

func runLints(m *ir.Module) []Diagnostic {
	var ds []Diagnostic

	// Which functions reference each tradeoff, and which functions any
	// execution can reach.
	refs := map[string][]string{}
	for name, f := range m.Functions {
		for _, t := range f.TradeoffRefs() {
			refs[t] = append(refs[t], name)
		}
	}
	live := reachable(m, callGraphRoots(m))

	for _, t := range m.Tradeoffs {
		fns := refs[t.Name]
		switch {
		case len(fns) == 0:
			ds = append(ds, metaDiag("lints", Warning, t.Pos, t.Name,
				"tradeoff %s is never referenced by any placeholder or type use", t.Name))
		default:
			anyLive := false
			for _, fn := range fns {
				if live[fn] {
					anyLive = true
					break
				}
			}
			if !anyLive {
				ds = append(ds, metaDiag("lints", Warning, t.Pos, t.Name,
					"tradeoff %s is referenced only from unreachable code (%s)", t.Name, describeRefs(fns)))
			}
		}
		if t.Size == 1 {
			ds = append(ds, metaDiag("lints", Warning, t.Pos, t.Name,
				"tradeoff %s has a single value; its range can never be exercised by any use site", t.Name))
		}
		if t.Kind == ir.FunctionKind {
			ds = append(ds, lintVariantSignatures(m, t)...)
		}
		if len(t.ValueNames) > 0 {
			seen := map[string]bool{}
			for _, v := range t.ValueNames {
				if seen[v] {
					ds = append(ds, metaDiag("lints", Warning, t.Pos, t.Name,
						"tradeoff %s lists variant %s more than once", t.Name, v))
				}
				seen[v] = true
			}
		}
	}
	return ds
}

// signature is a function's inferred interface: its arity (one past the
// highest parameter index read) and whether it produces a value. The IR
// has no declared signatures, so this is the strongest congruence the
// lint can demand of a function tradeoff's interchangeable variants.
type signature struct {
	arity   int
	returns bool
}

func (s signature) String() string {
	r := "void"
	if s.returns {
		r = "value"
	}
	return fmt.Sprintf("%d params -> %s", s.arity, r)
}

// inferSignature derives a function's signature from its body.
func inferSignature(f *ir.Function) signature {
	var s signature
	for _, in := range f.Instrs {
		switch in.Op {
		case ir.Param:
			if in.Index+1 > s.arity {
				s.arity = in.Index + 1
			}
		case ir.Ret:
			s.returns = true
		}
	}
	return s
}

// lintVariantSignatures flags function tradeoffs whose variants are not
// interchangeable: the back-end substitutes any variant into the same
// call sites, so a signature disagreement is unsound, not just untidy.
func lintVariantSignatures(m *ir.Module, t ir.TradeoffMeta) []Diagnostic {
	var ds []Diagnostic
	first := -1
	var want signature
	for i, v := range t.ValueNames {
		f, ok := m.Functions[v]
		if !ok {
			continue // the verifier reports missing variants
		}
		got := inferSignature(f)
		if first < 0 {
			first, want = i, got
			continue
		}
		if got != want {
			ds = append(ds, metaDiag("lints", Error, t.Pos, t.Name,
				"function tradeoff %s variants disagree in signature: %s is (%s) but %s is (%s)",
				t.Name, t.ValueNames[first], want, v, got))
		}
	}
	return ds
}
