package analysis

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// VerifyPass is the IR verifier: structural well-formedness of every
// function (operand arity per opcode, def-before-use, field requirements),
// call-graph consistency (every callee and getValue function resolves and
// getValue stays inside the evaluable subset), metadata integrity
// (tradeoff and dependence tables), and clone/original congruence for the
// mid-end's deep-cloned auxiliary code and its bottom-up tradeoff clones.
var VerifyPass = &Pass{
	Name: "verify",
	Doc:  "IR well-formedness, def-before-use, call-graph and clone congruence",
	Run:  runVerify,
}

// evalOps is the opcode subset the IR interpreter supports; getValue
// functions must stay inside it because the back-end executes them.
var evalOps = map[ir.Opcode]bool{
	ir.Const: true, ir.Param: true, ir.Add: true, ir.Mul: true, ir.Ret: true,
}

func runVerify(m *ir.Module) []Diagnostic {
	var ds []Diagnostic

	tradeoffAt := map[string]int{}
	for i, t := range m.Tradeoffs {
		if prev, dup := tradeoffAt[t.Name]; dup {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"tradeoff %s declared twice (rows %d and %d)", t.Name, prev, i))
			continue
		}
		tradeoffAt[t.Name] = i
	}

	for name, f := range m.Functions {
		if f == nil {
			ds = append(ds, metaDiag("verify", Error, ir.Pos{}, name, "function table entry %s is nil", name))
			continue
		}
		if f.Name != name {
			ds = append(ds, metaDiag("verify", Error, ir.Pos{}, name,
				"function table key %s does not match function name %s", name, f.Name))
		}
		ds = append(ds, verifyFunction(m, f, tradeoffAt)...)
	}

	ds = append(ds, verifyTradeoffs(m)...)
	ds = append(ds, verifyDeps(m)...)
	return ds
}

// verifyFunction checks one function's instructions: defined opcodes,
// per-opcode operand arity and required fields, def-before-use (operands
// must name strictly earlier instructions), resolvable callees and
// tradeoff references, and unreachable code after a return.
func verifyFunction(m *ir.Module, f *ir.Function, tradeoffAt map[string]int) []Diagnostic {
	var ds []Diagnostic
	retAt := -1
	for i, in := range f.Instrs {
		if !in.Op.Valid() {
			ds = append(ds, errAt("verify", f, i, "", "undefined opcode %d", int(in.Op)))
			continue
		}

		// Operand arity per opcode, and def-before-use for every operand.
		wantArgs, checkArity := map[ir.Opcode]int{
			ir.Const: 0, ir.Param: 0, ir.Add: 2, ir.Mul: 2, ir.Ret: 1,
			ir.Call: 0, ir.Placeholder: 0, ir.TypeUse: 0,
			ir.StateRead: 0, ir.InputRead: 0, ir.InputField: 0,
			ir.StateReadIdx: 1, ir.StateWriteIdx: 1,
		}[in.Op], in.Op != ir.Extern && in.Op != ir.StateWrite
		if checkArity && len(in.Args) != wantArgs {
			ds = append(ds, errAt("verify", f, i, "",
				"%s takes %d operand(s), got %d", in.Op, wantArgs, len(in.Args)))
		}
		for _, a := range in.Args {
			if a < 0 || a >= i {
				ds = append(ds, errAt("verify", f, i, "",
					"%s operand %d is not defined before use (must be in [0,%d))", in.Op, a, i))
			}
		}

		switch in.Op {
		case ir.Param:
			if in.Index < 0 {
				ds = append(ds, errAt("verify", f, i, "", "param index %d is negative", in.Index))
			}
		case ir.InputRead:
			if in.Index < 0 {
				ds = append(ds, errAt("verify", f, i, "", "input offset %d is negative", in.Index))
			}
		case ir.Call:
			if in.Callee == "" {
				ds = append(ds, errAt("verify", f, i, "", "call with empty callee"))
			} else if _, ok := m.Functions[in.Callee]; !ok {
				ds = append(ds, errAt("verify", f, i, in.Callee, "call to undefined function %s", in.Callee))
			}
		case ir.Placeholder, ir.TypeUse:
			if in.Tradeoff == "" {
				ds = append(ds, errAt("verify", f, i, "", "%s with empty tradeoff reference", in.Op))
			} else if _, ok := tradeoffAt[in.Tradeoff]; !ok {
				ds = append(ds, errAt("verify", f, i, in.Tradeoff,
					"%s references undeclared tradeoff %s", in.Op, in.Tradeoff))
			}
			if in.Op == ir.TypeUse && in.Name == "" {
				ds = append(ds, errAt("verify", f, i, "", "typeuse without a variable name"))
			}
		case ir.StateRead, ir.StateWrite, ir.StateReadIdx, ir.StateWriteIdx:
			if in.Name == "" {
				ds = append(ds, errAt("verify", f, i, "", "%s without a state variable name", in.Op))
			}
		case ir.InputField:
			if in.Name == "" {
				ds = append(ds, errAt("verify", f, i, "", "inputfield without a field name"))
			}
		}

		if retAt >= 0 {
			d := errAt("verify", f, i, "", "unreachable instruction after return at instr %d", retAt)
			d.Severity = Warning
			ds = append(ds, d)
			retAt = -2 // report the first unreachable instruction only
		}
		if in.Op == ir.Ret && retAt == -1 {
			retAt = i
		}
	}
	return ds
}

// verifyTradeoffs checks the tradeoff metadata table: sizes, default
// indices, value-name tables, getValue resolvability and evaluability,
// and aux-clone bookkeeping (congruence with the original row when the
// original still exists, i.e. before the mid-end pins and deletes it).
func verifyTradeoffs(m *ir.Module) []Diagnostic {
	var ds []Diagnostic
	for _, t := range m.Tradeoffs {
		if t.Name == "" {
			ds = append(ds, metaDiag("verify", Error, t.Pos, "", "tradeoff row with empty name"))
			continue
		}
		if t.Size <= 0 {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name, "tradeoff %s has no values (size %d)", t.Name, t.Size))
		}
		if t.Default < 0 || (t.Size > 0 && t.Default >= t.Size) {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"tradeoff %s default index %d out of [0,%d)", t.Name, t.Default, t.Size))
		}
		switch t.Kind {
		case ir.ConstantKind:
			if len(t.ValueNames) != 0 {
				ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
					"constant tradeoff %s carries %d value names", t.Name, len(t.ValueNames)))
			}
		case ir.TypeKind, ir.FunctionKind:
			if int64(len(t.ValueNames)) != t.Size {
				ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
					"tradeoff %s declares size %d but %d value names", t.Name, t.Size, len(t.ValueNames)))
			}
			if t.Kind == ir.FunctionKind {
				for _, v := range t.ValueNames {
					if _, ok := m.Functions[v]; !ok {
						ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
							"function tradeoff %s variant %s is not defined", t.Name, v))
					}
				}
			}
		default:
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"tradeoff %s has undefined kind %d", t.Name, int(t.Kind)))
		}

		// getValue must resolve, stay evaluable, and actually return.
		if gv, ok := m.Functions[t.GetValue]; !ok {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"tradeoff %s getValue function %s is not defined", t.Name, t.GetValue))
		} else {
			returns := false
			for i, in := range gv.Instrs {
				if !evalOps[in.Op] {
					ds = append(ds, errAt("verify", gv, i, t.Name,
						"getValue function %s contains non-evaluable opcode %s", gv.Name, in.Op))
					break
				}
				if in.Op == ir.Ret {
					returns = true
				}
			}
			if !returns {
				ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
					"getValue function %s never returns", gv.Name))
			}
		}

		// Aux bookkeeping and tradeoff-clone congruence.
		if t.Aux && t.ClonedFrom == "" {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"aux tradeoff %s does not record its original (ClonedFrom)", t.Name))
		}
		if !t.Aux && t.ClonedFrom != "" {
			ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
				"non-aux tradeoff %s claims to be cloned from %s", t.Name, t.ClonedFrom))
		}
		if t.Aux && t.ClonedFrom != "" {
			if orig, ok := m.Tradeoff(t.ClonedFrom); ok {
				if orig.Kind != t.Kind || orig.Size != t.Size || orig.Default != t.Default {
					ds = append(ds, metaDiag("verify", Error, t.Pos, t.Name,
						"aux tradeoff %s diverges from original %s (kind/size/default %d/%d/%d vs %d/%d/%d)",
						t.Name, orig.Name, int(t.Kind), t.Size, t.Default, int(orig.Kind), orig.Size, orig.Default))
				}
			}
		}
	}
	return ds
}

// verifyDeps checks the state-dependence table and, for each dependence
// with auxiliary code, the structural congruence of the deep clone with
// its original compute function.
func verifyDeps(m *ir.Module) []Diagnostic {
	var ds []Diagnostic
	seen := map[string]bool{}
	for _, d := range m.Deps {
		if d.Name == "" {
			ds = append(ds, metaDiag("verify", Error, d.Pos, "", "state dependence with empty name"))
			continue
		}
		if seen[d.Name] {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name, "state dependence %s declared twice", d.Name))
			continue
		}
		seen[d.Name] = true
		if d.Window < 0 {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name,
				"state dependence %s has negative window %d", d.Name, d.Window))
		}
		if d.Slots < 0 {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name,
				"state dependence %s has negative slot count %d", d.Name, d.Slots))
		}
		if len(d.Reserve) > 0 && d.Slots == 0 {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name,
				"state dependence %s declares a reservation footprint without a slot count", d.Name))
		}
		orig, ok := m.Functions[d.Compute]
		if !ok {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name,
				"state dependence %s compute function %s is not defined", d.Name, d.Compute))
			continue
		}
		if d.AuxCompute == "" || d.AuxCompute == d.Compute {
			continue // no clone (conventional-only, or clone budget exhausted)
		}
		aux, ok := m.Functions[d.AuxCompute]
		if !ok {
			ds = append(ds, metaDiag("verify", Error, d.Pos, d.Name,
				"state dependence %s auxiliary function %s is not defined", d.Name, d.AuxCompute))
			continue
		}
		ds = append(ds, verifyCongruence(m, d, orig, aux)...)
	}
	return ds
}

// verifyCongruence checks that an auxiliary clone is instruction-for-
// instruction congruent with its original: identical opcodes and fields,
// except (a) callees may be rewritten to their "$aux$dep" clones, (b)
// tradeoff references may be rewritten to aux tradeoff clones, and (c)
// where the mid-end pinned the original's tradeoff to its default, the
// aux side keeps the live reference (Placeholder vs pinned Const/Call,
// TypeUse vs pinned Extern). Anything else means the clone diverged.
func verifyCongruence(m *ir.Module, d ir.DepMeta, orig, aux *ir.Function) []Diagnostic {
	var ds []Diagnostic
	suffix := "$aux$" + d.Name
	if len(orig.Instrs) != len(aux.Instrs) {
		return append(ds, metaDiag("verify", Error, d.Pos, d.Name,
			"aux clone %s has %d instrs, original %s has %d",
			aux.Name, len(aux.Instrs), orig.Name, len(orig.Instrs)))
	}
	auxTradeoffOK := func(name string) bool {
		t, ok := m.Tradeoff(name)
		return ok && t.Aux
	}
	for i := range orig.Instrs {
		o, a := orig.Instrs[i], aux.Instrs[i]
		if o.Op == a.Op {
			same := o.Value == a.Value && o.Index == a.Index && o.Name == a.Name &&
				argsEqual(o.Args, a.Args)
			switch o.Op {
			case ir.Call:
				same = same && (a.Callee == o.Callee || a.Callee == o.Callee+suffix)
			case ir.Placeholder, ir.TypeUse:
				same = same && (a.Tradeoff == o.Tradeoff || a.Tradeoff == o.Tradeoff+suffix)
			default:
				same = same && o.Callee == a.Callee && o.Tradeoff == a.Tradeoff
			}
			if !same {
				ds = append(ds, errAt("verify", aux, i, d.Name,
					"aux clone diverges from original %s at instr %d (%s)", orig.Name, i, o.Op))
			}
			continue
		}
		// Pinned-original pairs: the original lost its tradeoff reference
		// to default-pinning while the clone kept a live aux reference.
		pinnedOK := false
		switch {
		case a.Op == ir.Placeholder && (o.Op == ir.Const || o.Op == ir.Call):
			pinnedOK = auxTradeoffOK(a.Tradeoff)
		case a.Op == ir.TypeUse && o.Op == ir.Extern:
			pinnedOK = auxTradeoffOK(a.Tradeoff) && o.Name == a.Name
		}
		if !pinnedOK {
			ds = append(ds, errAt("verify", aux, i, d.Name,
				"aux clone diverges from original %s at instr %d (%s vs %s)", orig.Name, i, a.Op, o.Op))
		}
	}
	return ds
}

// argsEqual compares operand slices.
func argsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// callGraphRoots returns the names analysis treats as entry points: every
// dependence's compute and auxiliary function plus every tradeoff's
// getValue; reachability-based passes start here.
func callGraphRoots(m *ir.Module) []string {
	var roots []string
	for _, d := range m.Deps {
		if d.Compute != "" {
			roots = append(roots, d.Compute)
		}
		if d.AuxCompute != "" && d.AuxCompute != d.Compute {
			roots = append(roots, d.AuxCompute)
		}
	}
	for _, t := range m.Tradeoffs {
		if t.GetValue != "" {
			roots = append(roots, t.GetValue)
		}
		// Function-tradeoff variants are potential callees once the
		// back-end substitutes the placeholder.
		if t.Kind == ir.FunctionKind {
			roots = append(roots, t.ValueNames...)
		}
	}
	return roots
}

// reachable returns the set of function names reachable from the roots
// through Call edges.
func reachable(m *ir.Module, roots []string) map[string]bool {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(name string) {
		if seen[name] {
			return
		}
		f, ok := m.Functions[name]
		if !ok {
			return
		}
		seen[name] = true
		for _, c := range f.Callees() {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

// describeRefs renders a function list for diagnostics, capped for
// readability.
func describeRefs(names []string) string {
	if len(names) > 3 {
		return strings.Join(names[:3], ", ") + fmt.Sprintf(", … (%d total)", len(names))
	}
	return strings.Join(names, ", ")
}
