package analysis

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/midend"
)

// FuzzVerify drives randomly generated frontend programs through the
// mid-end and asserts the analysis contract on whatever comes out:
//
//  1. the passes never panic, whatever the program shape;
//  2. the pipeline never produces a module the verifier rejects, with
//     one carve-out: footprints errors are user bugs expressible in
//     grammatical source (a declared reservation that under-approximates
//     the touches), so only non-footprints Check errors are compiler
//     bugs;
//  3. every verifier-accepted module is accepted by the back-end
//     (Compile + Validate), i.e. the static gate is not weaker than the
//     layer behind it;
//  4. the footprint inference satisfies its own soundness invariant on
//     every pipeline output: each inferred access is covered by the
//     footprint set inferred for its dependence.
//
// The raw fuzz bytes are also tried directly as a JSON IR document, so
// the verifier is additionally exercised on arbitrary well-typed but
// unconstrained modules the pipeline could never emit.
func FuzzVerify(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x7f, 0x80, 0x55, 0xaa, 0x12, 0x34, 0x56, 0x78})
	f.Add([]byte(`{"functions":[{"name":"f","instrs":[{"op":"ret","args":[0]}]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary modules via the JSON codec: decode errors are fine,
		// but a decodable module must analyze without panicking.
		if m, err := ir.DecodeJSON(bytes.NewReader(data)); err == nil {
			_ = Analyze(m)
		}

		src := genSource(data)
		fo, err := frontend.Translate(src)
		if err != nil {
			return // the generator strayed outside the grammar
		}
		m, err := midend.Lower(fo)
		if err != nil {
			return
		}
		ds := AnalyzeProgram(fo, m)
		userRejected := false
		for _, d := range Analyze(m) {
			if d.Severity != Error {
				continue
			}
			if d.Pass == "footprints" {
				userRejected = true // a lying declared footprint, legal source
				continue
			}
			t.Fatalf("pipeline output fails the verifier:\nsource:\n%s\nerror: %v\nall findings: %v", src, d, ds)
		}
		// The footprint inference must hold its own soundness invariant on
		// every pipeline output: each inferred access is covered by the
		// inferred footprint set it belongs to (and the pass itself ran
		// without panicking inside AnalyzeProgram above).
		for _, fp := range InferFootprints(m) {
			for _, acc := range append(append([]Access(nil), fp.Reads...), fp.Writes...) {
				if !covered(fp.Exprs(), acc.Expr) {
					t.Fatalf("inferred footprint does not cover its own access %s:\nsource:\n%s\nfootprint: %+v", acc.Expr.String(), src, fp)
				}
			}
		}
		if userRejected {
			return // the vet gate rejected the module; backend acceptance is moot
		}
		prog, err := backend.Compile(m, backend.Config{}, 0)
		if err != nil {
			t.Fatalf("verifier-accepted module rejected by backend.Compile:\nsource:\n%s\nerror: %v", src, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("verifier-accepted module rejected by Program.Validate:\nsource:\n%s\nerror: %v", src, err)
		}
	})
}

// genSource derives a structured SDI/TI program from fuzz bytes: a byte
// cursor picks tradeoff kinds, value ranges, dependence shapes and
// optional clauses, so most inputs map to grammatical programs while the
// raw-bytes path above keeps covering the rejection paths.
func genSource(data []byte) string {
	cur := 0
	next := func() int {
		if len(data) == 0 {
			return 0
		}
		b := data[cur%len(data)]
		cur++
		return int(b)
	}

	var b strings.Builder
	b.WriteString("#include \"fuzz.h\"\n\n")

	nTradeoffs := 1 + next()%3
	names := make([]string, 0, nTradeoffs)
	for i := 0; i < nTradeoffs; i++ {
		name := fmt.Sprintf("TO_f%d", i)
		names = append(names, name)
		fmt.Fprintf(&b, "tradeoff %s {\n", name)
		switch next() % 3 {
		case 0:
			lo := next() % 5
			size := 1 + next()%6
			fmt.Fprintf(&b, "    kind constant;\n    values %d..%d;\n", lo, lo+size-1)
			fmt.Fprintf(&b, "    default %d;\n", next()%size)
		case 1:
			n := 1 + next()%3
			vals := make([]string, n)
			for j := range vals {
				vals[j] = fmt.Sprintf("ty%d_%d", i, j)
			}
			fmt.Fprintf(&b, "    kind type;\n    values %s;\n", strings.Join(vals, ", "))
			fmt.Fprintf(&b, "    default %d;\n", next()%n)
		default:
			n := 1 + next()%3
			vals := make([]string, n)
			for j := range vals {
				vals[j] = fmt.Sprintf("impl%d_%d", i, j)
			}
			fmt.Fprintf(&b, "    kind function;\n    values %s;\n", strings.Join(vals, ", "))
			fmt.Fprintf(&b, "    default %d;\n", next()%n)
		}
		b.WriteString("}\n\n")
	}

	nDeps := 1 + next()%2
	for i := 0; i < nDeps; i++ {
		fmt.Fprintf(&b, "statedep dep%d {\n", i)
		fmt.Fprintf(&b, "    input In%d;\n    state St%d;\n    output Out%d;\n", i, i, i)
		var uses []string
		for _, n := range names {
			if next()%2 == 1 {
				uses = append(uses, n)
			}
		}
		if len(uses) > 0 {
			fmt.Fprintf(&b, "    compute comp%d uses %s;\n", i, strings.Join(uses, ", "))
		} else {
			fmt.Fprintf(&b, "    compute comp%d;\n", i)
		}
		if next()%2 == 1 {
			fmt.Fprintf(&b, "    compare cmp%d;\n", i)
		}
		if next()%2 == 1 {
			fmt.Fprintf(&b, "    window %d;\n", 1+next()%5)
		}
		if next()%2 == 1 {
			k := 2 + next()%5
			idx := func() string {
				switch next() % 4 {
				case 0:
					return fmt.Sprintf("%d", next()%(k+2)) // sometimes out of range
				case 1:
					return fmt.Sprintf("sl%d", i)
				case 2:
					return fmt.Sprintf("%d*sl%d", 2+next()%2, i)
				default:
					return fmt.Sprintf("sl%d+%d", i, 1+next()%3)
				}
			}
			fmt.Fprintf(&b, "    slots %d;\n", k)
			for j := 1 + next()%2; j > 0; j-- {
				fmt.Fprintf(&b, "    reserve %s;\n", idx())
			}
			for j := next() % 3; j > 0; j-- {
				fmt.Fprintf(&b, "    touches %s;\n", idx())
			}
		}
		b.WriteString("}\n\n")
	}

	b.WriteString("int main() { return 0; }\n")
	return b.String()
}
