package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/frontend"
	"repro/internal/ir"
	"repro/internal/midend"
)

// goodSource is a well-formed SDI/TI program: every pass must be clean.
const goodSource = `
tradeoff TO_layers {
    kind constant;
    values 1..10;
    default 4;
}
tradeoff TO_prec {
    kind type;
    values half, single, double;
    default 2;
}
statedep track {
    input Frame;
    state Model;
    output Pose;
    compute update uses TO_layers, TO_prec;
    compare cmp;
    window 2;
}
`

// lower runs the front half of the pipeline, failing the test on error.
func lower(t *testing.T, src string) (*frontend.Output, *ir.Module) {
	t.Helper()
	fo, err := frontend.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := midend.Lower(fo)
	if err != nil {
		t.Fatal(err)
	}
	return fo, m
}

// wantFinding asserts that some diagnostic from pass with severity sev
// mentions every fragment.
func wantFinding(t *testing.T, ds []Diagnostic, pass string, sev Severity, fragments ...string) {
	t.Helper()
outer:
	for _, d := range ds {
		if d.Pass != pass || d.Severity != sev {
			continue
		}
		for _, f := range fragments {
			if !strings.Contains(d.String(), f) {
				continue outer
			}
		}
		return
	}
	t.Fatalf("no %s %s diagnostic containing %q; got:\n%s", pass, sev, fragments, renderAll(ds))
}

func renderAll(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (no diagnostics)"
	}
	return b.String()
}

func TestPipelineOutputIsClean(t *testing.T) {
	fo, m := lower(t, goodSource)
	if ds := AnalyzeProgram(fo, m); len(ds) != 0 {
		t.Fatalf("well-formed program produced diagnostics:\n%s", renderAll(ds))
	}
	if err := Check(m); err != nil {
		t.Fatalf("Check rejected a well-formed module: %v", err)
	}
}

func TestVerifyOperandArityAndDefBeforeUse(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "f", Instrs: []ir.Instr{
		{Op: ir.Const, Value: 1},
		{Op: ir.Add, Args: []int{0}},                   // wrong arity
		{Op: ir.Mul, Args: []int{0, 5}},                // forward reference
		{Op: ir.Ret, Args: []int{3}},                   // self reference
		{Op: ir.Const, Value: 2, Pos: ir.Pos{Line: 9}}, // unreachable
	}})
	ds := VerifyPass.Run(m)
	wantFinding(t, ds, "verify", Error, "add takes 2 operand(s), got 1")
	wantFinding(t, ds, "verify", Error, "mul operand 5 is not defined before use")
	wantFinding(t, ds, "verify", Error, "ret operand 3 is not defined before use")
	wantFinding(t, ds, "verify", Warning, "unreachable instruction after return")
}

func TestVerifyCallGraphAndReferences(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "f", Instrs: []ir.Instr{
		{Op: ir.Call, Callee: "ghost"},
		{Op: ir.Placeholder, Tradeoff: "TO_missing"},
		{Op: ir.StateRead},
	}})
	ds := VerifyPass.Run(m)
	wantFinding(t, ds, "verify", Error, "call to undefined function ghost")
	wantFinding(t, ds, "verify", Error, "references undeclared tradeoff TO_missing")
	wantFinding(t, ds, "verify", Error, "stateread without a state variable name")
}

func TestVerifyMetadata(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "gv_bad", Instrs: []ir.Instr{{Op: ir.Extern}}})
	m.Tradeoffs = []ir.TradeoffMeta{
		{Name: "a", Kind: ir.ConstantKind, GetValue: "nope", Size: 3, Default: 5},
		{Name: "b", Kind: ir.ConstantKind, GetValue: "gv_bad", Size: 2, Default: 0},
		{Name: "c", Kind: ir.FunctionKind, GetValue: "gv_bad", Size: 2, Default: 0,
			ValueNames: []string{"impl1"}},
		{Name: "d", Kind: ir.ConstantKind, GetValue: "gv_bad", Size: 1, Default: 0, Aux: true},
	}
	m.Deps = []ir.DepMeta{
		{Name: "dep", Compute: "ghostCompute"},
		{Name: "dep", Compute: "ghostCompute"},
	}
	ds := VerifyPass.Run(m)
	wantFinding(t, ds, "verify", Error, "default index 5 out of [0,3)")
	wantFinding(t, ds, "verify", Error, "getValue function nope is not defined")
	wantFinding(t, ds, "verify", Error, "non-evaluable opcode extern")
	wantFinding(t, ds, "verify", Error, "declares size 2 but 1 value names")
	wantFinding(t, ds, "verify", Error, "variant impl1 is not defined")
	wantFinding(t, ds, "verify", Error, "aux tradeoff d does not record its original")
	wantFinding(t, ds, "verify", Error, "compute function ghostCompute is not defined")
	wantFinding(t, ds, "verify", Error, "state dependence dep declared twice")
}

func TestVerifyCloneCongruence(t *testing.T) {
	_, m := lower(t, goodSource)
	aux := m.Deps[0].AuxCompute
	if aux == "" || aux == m.Deps[0].Compute {
		t.Fatalf("expected a distinct aux clone, got %q", aux)
	}
	// Tamper with the clone: the congruence check must notice.
	f := m.Functions[aux]
	for i := range f.Instrs {
		if f.Instrs[i].Op == ir.StateWrite {
			f.Instrs[i].Name = "SomebodyElsesState"
		}
	}
	wantFinding(t, VerifyPass.Run(m), "verify", Error, "aux clone diverges from original")

	// A length mismatch is reported as a single congruence error.
	f.Instrs = f.Instrs[:len(f.Instrs)-1]
	wantFinding(t, VerifyPass.Run(m), "verify", Error, "instrs, original")
}

func TestEffectsAuxForeignWrite(t *testing.T) {
	_, m := lower(t, goodSource)
	aux := m.Functions[m.Deps[0].AuxCompute]
	aux.Instrs = append(aux.Instrs, ir.Instr{Op: ir.StateWrite, Name: "Global", Pos: ir.Pos{Line: 30}})
	ds := EffectsPass.Run(m)
	wantFinding(t, ds, "effects", Error, "writes state Global", "speculative start state")
}

func TestEffectsAuxForeignReadThroughCallee(t *testing.T) {
	_, m := lower(t, goodSource)
	// Bury the foreign read two calls deep: the dataflow must find it
	// transitively and name the actual offending instruction.
	m.AddFunction(&ir.Function{Name: "leaf", Instrs: []ir.Instr{
		{Op: ir.StateRead, Name: "OtherModel", Pos: ir.Pos{Line: 41, Col: 7}},
	}})
	m.AddFunction(&ir.Function{Name: "mid", Instrs: []ir.Instr{{Op: ir.Call, Callee: "leaf"}}})
	aux := m.Functions[m.Deps[0].AuxCompute]
	aux.Instrs = append(aux.Instrs, ir.Instr{Op: ir.Call, Callee: "mid"})
	ds := EffectsPass.Run(m)
	wantFinding(t, ds, "effects", Error, "reads foreign state OtherModel", "func leaf", "41:7")
}

func TestEffectsWindowViolation(t *testing.T) {
	_, m := lower(t, goodSource)
	aux := m.Functions[m.Deps[0].AuxCompute]
	aux.Instrs = append(aux.Instrs, ir.Instr{Op: ir.InputRead, Index: 5})
	ds := EffectsPass.Run(m)
	wantFinding(t, ds, "effects", Error, "reads input 5 positions back", "window of 2")
}

func TestEffectSetsFixpointOnCycle(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "a", Instrs: []ir.Instr{
		{Op: ir.Call, Callee: "b"},
		{Op: ir.StateRead, Name: "x"},
	}})
	m.AddFunction(&ir.Function{Name: "b", Instrs: []ir.Instr{
		{Op: ir.Call, Callee: "a"},
		{Op: ir.StateWrite, Name: "y"},
		{Op: ir.InputRead, Index: 3},
	}})
	sets := EffectSets(m)
	for _, fn := range []string{"a", "b"} {
		s := sets[fn]
		if got := s.ReadVars(); len(got) != 1 || got[0] != "x" {
			t.Fatalf("%s reads = %v, want [x]", fn, got)
		}
		if got := s.WriteVars(); len(got) != 1 || got[0] != "y" {
			t.Fatalf("%s writes = %v, want [y]", fn, got)
		}
		if s.MaxInput != 3 {
			t.Fatalf("%s max input = %d, want 3", fn, s.MaxInput)
		}
	}
}

func TestLints(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "gv", Instrs: []ir.Instr{
		{Op: ir.Param, Index: 0}, {Op: ir.Ret, Args: []int{0}},
	}})
	m.AddFunction(&ir.Function{Name: "variant0", Instrs: []ir.Instr{
		{Op: ir.Param, Index: 0}, {Op: ir.Ret, Args: []int{0}},
	}})
	m.AddFunction(&ir.Function{Name: "variant1", Instrs: []ir.Instr{{Op: ir.Extern}}})
	m.AddFunction(&ir.Function{Name: "orphan", Instrs: []ir.Instr{
		{Op: ir.Placeholder, Tradeoff: "t_orphaned"},
	}})
	m.AddFunction(&ir.Function{Name: "compute", Instrs: []ir.Instr{
		{Op: ir.Placeholder, Tradeoff: "t_funcs"},
	}})
	m.Tradeoffs = []ir.TradeoffMeta{
		{Name: "t_unused", Kind: ir.ConstantKind, GetValue: "gv", Size: 4, Default: 0, Aux: true, ClonedFrom: "x"},
		{Name: "t_orphaned", Kind: ir.ConstantKind, GetValue: "gv", Size: 4, Default: 0, Aux: true, ClonedFrom: "x"},
		{Name: "t_single", Kind: ir.ConstantKind, GetValue: "gv", Size: 1, Default: 0, Aux: true, ClonedFrom: "x"},
		{Name: "t_funcs", Kind: ir.FunctionKind, GetValue: "gv", Size: 2, Default: 0, Aux: true, ClonedFrom: "x",
			ValueNames: []string{"variant0", "variant1"}},
	}
	m.Deps = []ir.DepMeta{{Name: "d", Compute: "compute", State: "S"}}
	ds := LintsPass.Run(m)
	wantFinding(t, ds, "lints", Warning, "t_unused is never referenced")
	wantFinding(t, ds, "lints", Warning, "t_orphaned is referenced only from unreachable code", "orphan")
	wantFinding(t, ds, "lints", Warning, "t_single has a single value")
	wantFinding(t, ds, "lints", Error, "variants disagree in signature", "variant0", "variant1")
	// t_funcs is referenced from the reachable compute: no unused/
	// unreachable finding may name it.
	for _, d := range ds {
		if d.Var == "t_funcs" && strings.Contains(d.Msg, "referenced") {
			t.Fatalf("false positive on live tradeoff: %s", d)
		}
	}
}

func TestSourceLints(t *testing.T) {
	src := `
tradeoff TO_dead {
    kind constant;
    values 1..4;
    default 0;
}
tradeoff TO_one {
    kind constant;
    values 7..7;
    default 0;
}
statedep d {
    input I;
    state S;
    output O;
    compute f uses TO_one;
}
`
	fo, err := frontend.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	ds := AnalyzeSource(fo)
	wantFinding(t, ds, "srclint", Warning, "TO_dead is not used by any statedep")
	wantFinding(t, ds, "srclint", Warning, "TO_one declares a single value")
	wantFinding(t, ds, "srclint", Warning, "statedep d uses tradeoffs but declares no compare")
	// Positions must point at the declarations.
	for _, d := range ds {
		if d.Var == "TO_dead" && d.Pos.Line != 2 {
			t.Fatalf("TO_dead lint at line %d, want 2", d.Pos.Line)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, m := lower(t, goodSource)
	var buf bytes.Buffer
	if err := m.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ir.DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.InstrCount(), m.InstrCount(); got != want {
		t.Fatalf("instr count after round trip = %d, want %d", got, want)
	}
	if len(back.Tradeoffs) != len(m.Tradeoffs) || len(back.Deps) != len(m.Deps) {
		t.Fatalf("metadata lost in round trip")
	}
	// The decoded module must be just as clean under analysis.
	if ds := Analyze(back); len(ds) != 0 {
		t.Fatalf("round-tripped module produced diagnostics:\n%s", renderAll(ds))
	}
	// Positions survive the trip.
	if p := back.Deps[0].Pos; !p.IsValid() {
		t.Fatalf("dep position lost in round trip")
	}
}

func TestCheckReportsErrors(t *testing.T) {
	m := ir.NewModule()
	m.AddFunction(&ir.Function{Name: "f", Instrs: []ir.Instr{{Op: ir.Call, Callee: "ghost"}}})
	err := Check(m)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Check = %v, want error naming ghost", err)
	}
}
