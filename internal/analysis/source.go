package analysis

import (
	"repro/internal/frontend"
	"repro/internal/ir"
)

// sourceLints checks the front-end declarations before the mid-end runs.
// This ordering matters: the mid-end pins every tradeoff that auxiliary
// code cannot reach to its default and deletes its metadata row, so a
// declared-but-unused tradeoff is invisible in the final module — the
// source lints are the only place it can be reported.
func sourceLints(fo *frontend.Output) []Diagnostic {
	var ds []Diagnostic

	used := map[string]bool{}
	for _, d := range fo.Deps {
		for _, u := range d.Uses {
			used[u] = true
		}
	}

	seenT := map[string]frontend.TradeoffDecl{}
	for _, t := range fo.Tradeoffs {
		pos := ir.Pos{Line: t.Line, Col: t.Col}
		if prev, dup := seenT[t.Name]; dup {
			ds = append(ds, metaDiag("srclint", Error, pos, t.Name,
				"tradeoff %s already declared at line %d", t.Name, prev.Line))
		}
		seenT[t.Name] = t
		if !used[t.Name] {
			ds = append(ds, metaDiag("srclint", Warning, pos, t.Name,
				"tradeoff %s is not used by any statedep; the mid-end will pin it to its default and delete it", t.Name))
		}
		if t.Size() == 1 {
			ds = append(ds, metaDiag("srclint", Warning, pos, t.Name,
				"tradeoff %s declares a single value; the knob can never vary", t.Name))
		}
		seenV := map[string]bool{}
		for _, v := range t.Names {
			if seenV[v] {
				ds = append(ds, metaDiag("srclint", Warning, pos, t.Name,
					"tradeoff %s lists value %s more than once", t.Name, v))
			}
			seenV[v] = true
		}
	}

	seenD := map[string]frontend.DepDecl{}
	for _, d := range fo.Deps {
		pos := ir.Pos{Line: d.Line, Col: d.Col}
		if prev, dup := seenD[d.Name]; dup {
			ds = append(ds, metaDiag("srclint", Error, pos, d.Name,
				"statedep %s already declared at line %d", d.Name, prev.Line))
		}
		seenD[d.Name] = d
		if len(d.Uses) > 0 && d.Compare == "" {
			ds = append(ds, metaDiag("srclint", Warning, pos, d.Name,
				"statedep %s uses tradeoffs but declares no compare method; speculation cannot be validated at runtime", d.Name))
		}
		seenU := map[string]bool{}
		for _, u := range d.Uses {
			if seenU[u] {
				ds = append(ds, metaDiag("srclint", Warning, pos, d.Name,
					"statedep %s lists tradeoff %s more than once in uses", d.Name, u))
			}
			seenU[u] = true
		}
	}
	return ds
}
