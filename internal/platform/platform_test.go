package platform

import (
	"math"
	"testing"
	"testing/quick"
)

func chainGraph(n int, work float64) *Graph {
	g := &Graph{}
	prev := -1
	for i := 0; i < n; i++ {
		if prev < 0 {
			prev = g.Add(work)
		} else {
			prev = g.Add(work, prev)
		}
	}
	return g
}

func parallelGraph(n int, work float64) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Add(work)
	}
	return g
}

func TestMachineTopology(t *testing.T) {
	m := Haswell28(false)
	if m.TotalThreads() != 28 {
		t.Fatalf("threads: %d", m.TotalThreads())
	}
	if Haswell28(true).TotalThreads() != 56 {
		t.Fatal("HT threads")
	}
	if SingleSocket14(true).TotalThreads() != 28 {
		t.Fatal("single socket HT threads")
	}
}

func TestChainIsSequential(t *testing.T) {
	m := Haswell28(false)
	g := chainGraph(10, 1)
	r1 := Simulate(m, g, 1)
	r28 := Simulate(m, g, 28)
	if r1.Makespan != 10 || r28.Makespan != 10 {
		t.Fatalf("chain makespans: %v, %v", r1.Makespan, r28.Makespan)
	}
}

func TestEmbarrassinglyParallelScalesLinearly(t *testing.T) {
	m := Haswell28(false)
	g := parallelGraph(28, 1)
	if r := Simulate(m, g, 1); r.Makespan != 28 {
		t.Fatalf("1 thread: %v", r.Makespan)
	}
	if r := Simulate(m, g, 14); r.Makespan != 2 {
		t.Fatalf("14 threads: %v", r.Makespan)
	}
	// 28 threads spans two sockets; tasks have no home so no NUMA penalty.
	if r := Simulate(m, g, 28); r.Makespan != 1 {
		t.Fatalf("28 threads: %v", r.Makespan)
	}
}

func TestLoadImbalance(t *testing.T) {
	// 34 equal tasks on 28 threads need two waves: the swaptions effect.
	m := Haswell28(false)
	g := parallelGraph(34, 1)
	r := Simulate(m, g, 28)
	if r.Makespan != 2 {
		t.Fatalf("34 tasks on 28 threads: %v", r.Makespan)
	}
}

func TestHyperThreadingSharedCoreRate(t *testing.T) {
	m := SingleSocket14(true)
	// 2 tasks on 1 core (2 HT threads): both run at HTFactor.
	g := parallelGraph(2, 1)
	// Thread allocation order puts the first 14 threads on distinct
	// cores, so ask for exactly the sibling pair by restricting cores.
	m.CoresPerSocket = 1
	r := Simulate(m, g, 2)
	want := 1 / m.HTFactor
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Fatalf("HT shared-core makespan %v, want %v", r.Makespan, want)
	}
	// Combined throughput 2/1.538 = 1.3x one thread.
	solo := Simulate(m, g, 1)
	gain := solo.Makespan / r.Makespan
	if math.Abs(gain-2*m.HTFactor) > 1e-9 {
		t.Fatalf("HT gain %v, want %v", gain, 2*m.HTFactor)
	}
}

func TestHTSiblingsUsedLast(t *testing.T) {
	m := SingleSocket14(true)
	g := parallelGraph(14, 1)
	// 14 tasks on 14 threads: all on distinct cores, no HT sharing.
	r := Simulate(m, g, 14)
	if r.Makespan != 1 {
		t.Fatalf("14 tasks on 14 cores with HT available: %v", r.Makespan)
	}
}

func TestNUMAPenaltyApplied(t *testing.T) {
	m := Haswell28(false)
	g := &Graph{}
	g.AddHomed(1, 0) // data on socket 0
	// One thread (on socket 0): full speed.
	if r := Simulate(m, g, 1); r.Makespan != 1 {
		t.Fatalf("local: %v", r.Makespan)
	}
	// Force remote: single-socket-1 machine cannot be built directly, so
	// check via a 15-thread run with 15 homed tasks — the 15th lands on
	// socket 1 and runs slower, stretching the makespan.
	g2 := &Graph{}
	for i := 0; i < 15; i++ {
		g2.AddHomed(1, 0)
	}
	r := Simulate(m, g2, 15)
	want := 1 / m.NUMAPenalty
	if math.Abs(r.Makespan-want) > 1e-9 {
		t.Fatalf("remote task makespan %v, want %v", r.Makespan, want)
	}
}

func TestHomePreferencePlacesLocally(t *testing.T) {
	m := Haswell28(false)
	// A single homed task with threads spanning both sockets must still
	// run at full speed (placed on its home socket).
	g := &Graph{}
	g.AddHomed(1, 1)
	r := Simulate(m, g, 28)
	if r.Makespan != 1 {
		t.Fatalf("homed task not placed locally: %v", r.Makespan)
	}
}

func TestZeroWorkSyncTasks(t *testing.T) {
	m := Haswell28(false)
	g := &Graph{}
	a := g.Add(1)
	b := g.Add(1)
	barrier := g.Add(0, a, b)
	g.Add(1, barrier)
	r := Simulate(m, g, 4)
	if r.Makespan != 2 {
		t.Fatalf("barrier graph makespan: %v", r.Makespan)
	}
}

func TestDiamondGraph(t *testing.T) {
	m := Haswell28(false)
	g := &Graph{}
	src := g.Add(1)
	l := g.Add(2, src)
	rr := g.Add(3, src)
	g.Add(1, l, rr)
	r := Simulate(m, g, 4)
	// 1 + max(2,3) + 1 = 5.
	if r.Makespan != 5 {
		t.Fatalf("diamond makespan: %v", r.Makespan)
	}
	if got := g.CriticalPath(); got != 5 {
		t.Fatalf("critical path: %v", got)
	}
}

func TestCriticalPathAndTotalWork(t *testing.T) {
	g := chainGraph(5, 2)
	if g.CriticalPath() != 10 || g.TotalWork() != 10 {
		t.Fatal("chain metrics")
	}
	p := parallelGraph(5, 2)
	if p.CriticalPath() != 2 || p.TotalWork() != 10 {
		t.Fatal("parallel metrics")
	}
}

func TestIntervalsCoverMakespan(t *testing.T) {
	m := Haswell28(false)
	g := parallelGraph(10, 1.5)
	r := Simulate(m, g, 4)
	if len(r.Intervals) == 0 {
		t.Fatal("no intervals")
	}
	last := 0.0
	for _, iv := range r.Intervals {
		if math.Abs(iv.Start-last) > 1e-9 {
			t.Fatalf("gap in intervals at %v", iv.Start)
		}
		if iv.End < iv.Start {
			t.Fatalf("inverted interval %+v", iv)
		}
		if iv.BusyThreads < 1 || iv.BusyThreads > 4 {
			t.Fatalf("busy threads %d", iv.BusyThreads)
		}
		last = iv.End
	}
	if math.Abs(last-r.Makespan) > 1e-9 {
		t.Fatalf("intervals end at %v, makespan %v", last, r.Makespan)
	}
}

func TestBusyWorkConservedProperty(t *testing.T) {
	// The integral of busy threads over time equals total work when no
	// HT sharing or NUMA penalties apply.
	f := func(seedTasks, seedThreads uint8) bool {
		nTasks := int(seedTasks)%20 + 1
		threads := int(seedThreads)%14 + 1 // stay on socket 0
		m := Haswell28(false)
		g := parallelGraph(nTasks, 2)
		r := Simulate(m, g, threads)
		integral := 0.0
		for _, iv := range r.Intervals {
			integral += (iv.End - iv.Start) * float64(iv.BusyThreads)
		}
		return math.Abs(integral-g.TotalWork()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanMonotoneInThreadsProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := int(seed)%30 + 2
		m := Haswell28(false)
		g := parallelGraph(n, 1)
		prev := math.Inf(1)
		for th := 1; th <= 14; th += 3 {
			ms := Simulate(m, g, th).Makespan
			if ms > prev+1e-9 {
				return false
			}
			prev = ms
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatePanicsOnBadThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 threads")
		}
	}()
	Simulate(Haswell28(false), parallelGraph(1, 1), 0)
}

func TestAddHomedValidatesDeps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad dep")
		}
	}()
	g := &Graph{}
	g.Add(1, 5)
}

func TestThreadsClampedToMachine(t *testing.T) {
	m := Haswell28(false)
	g := parallelGraph(60, 1)
	r := Simulate(m, g, 100)
	if r.ThreadsUsed != 28 {
		t.Fatalf("threads used: %d", r.ThreadsUsed)
	}
}

func TestSpeedupHelper(t *testing.T) {
	m := Haswell28(false)
	g := parallelGraph(28, 1)
	s := Speedup(m, g, g, 28)
	if math.Abs(s-28) > 1e-9 {
		t.Fatalf("speedup: %v", s)
	}
}

func TestCriticalPathFirstBeatsFIFOOnSkewedGraph(t *testing.T) {
	// One long chain plus filler tasks: FIFO (creation order) starts the
	// filler first and delays the chain; CP-first starts the chain
	// immediately.
	g := &Graph{}
	var fillers []int
	for i := 0; i < 3; i++ {
		fillers = append(fillers, g.Add(2))
	}
	_ = fillers
	chain := g.Add(2)
	for i := 0; i < 5; i++ {
		chain = g.Add(2, chain)
	}
	m := Haswell28(false)
	fifo := SimulateWithPolicy(m, g, 2, FIFO)
	cp := SimulateWithPolicy(m, g, 2, CriticalPathFirst)
	if cp.Makespan > fifo.Makespan {
		t.Fatalf("CP-first (%v) worse than FIFO (%v)", cp.Makespan, fifo.Makespan)
	}
	if cp.Makespan >= 13 {
		t.Fatalf("CP-first should start the chain immediately: %v", cp.Makespan)
	}
}

func TestPoliciesAgreeOnUniformGraphs(t *testing.T) {
	m := Haswell28(false)
	g := parallelGraph(20, 1)
	fifo := SimulateWithPolicy(m, g, 7, FIFO)
	cp := SimulateWithPolicy(m, g, 7, CriticalPathFirst)
	if fifo.Makespan != cp.Makespan {
		t.Fatalf("uniform graph: %v vs %v", fifo.Makespan, cp.Makespan)
	}
}

func TestPolicyWorkConserved(t *testing.T) {
	g := &Graph{}
	src := g.Add(1)
	for i := 0; i < 9; i++ {
		g.Add(1.5, src)
	}
	for _, pol := range []Policy{FIFO, CriticalPathFirst} {
		res := SimulateWithPolicy(Haswell28(false), g, 4, pol)
		busy := 0.0
		for _, a := range res.Assignments {
			busy += a.End - a.Start
		}
		if busy < g.TotalWork()-1e-9 || busy > g.TotalWork()+1e-9 {
			t.Fatalf("policy %d: busy %v, want %v", pol, busy, g.TotalWork())
		}
	}
}
