// Package platform is a deterministic discrete-event simulator of the
// paper's evaluation machine: a dual-socket Intel Xeon E5-2695 v3 with 14
// cores per socket, 2-way Hyper-Threading, and a NUMA memory system (§4.1).
//
// The evaluation sweeps hardware-thread counts from 2 to 28 (Figs. 3,
// 12-14), which cannot be reproduced faithfully on an arbitrary host. The
// simulator substitutes for the testbed: workloads express their execution
// as task graphs (nodes with abstract work, edges for dependences), and the
// simulator schedules a graph onto a configurable number of hardware
// threads, modeling
//
//   - Hyper-Threading: two hardware threads sharing a core each run at a
//     fraction of full speed, so a fully HT-shared core yields ~1.3× a
//     single thread — the ~30% Intel guidance the paper cites (§4.3);
//   - NUMA: a task executing on a socket other than its data's home socket
//     runs at a penalty, producing the paper's sub-linear multi-socket
//     scaling ("The multi-socket effect");
//   - per-interval occupancy traces, from which the energy model integrates
//     power.
package platform

import (
	"fmt"
	"math"
)

// Policy selects the list-scheduling order.
type Policy int

const (
	// FIFO runs ready tasks in creation order (the default).
	FIFO Policy = iota
	// CriticalPathFirst prefers the ready task with the longest
	// work-weighted path to a sink, the classic HLF/CP list-scheduling
	// heuristic.
	CriticalPathFirst
)

// Machine describes the simulated platform.
type Machine struct {
	// Sockets and CoresPerSocket define the core topology.
	Sockets        int
	CoresPerSocket int
	// HyperThreads is the number of hardware threads per core (1 = HT
	// off, 2 = HT on).
	HyperThreads int
	// HTFactor is the per-thread execution rate when the core's sibling
	// thread is busy. 0.65 makes a shared core deliver 1.3× one thread.
	HTFactor float64
	// NUMAPenalty is the execution-rate multiplier for a task running on
	// a socket other than its home socket.
	NUMAPenalty float64
}

// Haswell28 returns the paper's platform: 2 sockets × 14 cores. Hyper-
// Threading is configured per-experiment ("Hyper-Threading is turned off
// for all experiments unless explicitly specified").
func Haswell28(ht bool) Machine {
	threads := 1
	if ht {
		threads = 2
	}
	return Machine{
		Sockets:        2,
		CoresPerSocket: 14,
		HyperThreads:   threads,
		HTFactor:       0.65,
		NUMAPenalty:    0.82,
	}
}

// SingleSocket14 returns one socket of the paper's platform, used by the
// Hyper-Threading study (Fig. 14).
func SingleSocket14(ht bool) Machine {
	m := Haswell28(ht)
	m.Sockets = 1
	return m
}

// TotalThreads returns the number of hardware threads the machine exposes.
func (m Machine) TotalThreads() int {
	return m.Sockets * m.CoresPerSocket * m.HyperThreads
}

// hwThread is the placement of one hardware thread.
type hwThread struct {
	socket  int
	core    int // global core index
	sibling int // index of the sibling hardware thread, -1 if none
}

// enumerate returns the machine's hardware threads in allocation order:
// all primary threads of socket 0's cores, then socket 1's, and only then
// the Hyper-Thread siblings. This mirrors the paper's thread pinning, where
// an application stays on one socket until it outgrows it and HT siblings
// are used last.
func (m Machine) enumerate() []hwThread {
	cores := m.Sockets * m.CoresPerSocket
	var threads []hwThread
	for s := 0; s < m.Sockets; s++ {
		for c := 0; c < m.CoresPerSocket; c++ {
			threads = append(threads, hwThread{socket: s, core: s*m.CoresPerSocket + c})
		}
	}
	if m.HyperThreads > 1 {
		for s := 0; s < m.Sockets; s++ {
			for c := 0; c < m.CoresPerSocket; c++ {
				core := s*m.CoresPerSocket + c
				threads = append(threads, hwThread{socket: s, core: core, sibling: core})
			}
		}
		// Fix up sibling links: primary i and secondary cores+i share core i.
		for i := 0; i < cores; i++ {
			threads[i].sibling = cores + i
			threads[cores+i].sibling = i
		}
	} else {
		for i := range threads {
			threads[i].sibling = -1
		}
	}
	return threads
}

// Task is a node of a task graph: an amount of abstract work plus the tasks
// that must complete before it starts.
type Task struct {
	Work float64
	Deps []int
	// Home is the socket holding the task's data; -1 means no affinity.
	Home int
}

// Graph is a dependence graph of tasks. Build it with Add.
type Graph struct {
	Tasks []Task
}

// Add appends a task and returns its id.
func (g *Graph) Add(work float64, deps ...int) int {
	return g.AddHomed(work, -1, deps...)
}

// AddHomed appends a task with a home socket and returns its id.
func (g *Graph) AddHomed(work float64, home int, deps ...int) int {
	for _, d := range deps {
		if d < 0 || d >= len(g.Tasks) {
			panic(fmt.Sprintf("platform: dep %d out of range", d))
		}
	}
	g.Tasks = append(g.Tasks, Task{Work: work, Deps: append([]int(nil), deps...), Home: home})
	return len(g.Tasks) - 1
}

// TotalWork returns the sum of all task work.
func (g *Graph) TotalWork() float64 {
	sum := 0.0
	for _, t := range g.Tasks {
		sum += t.Work
	}
	return sum
}

// CriticalPath returns the longest work-weighted path through the graph,
// the lower bound on makespan at infinite parallelism.
func (g *Graph) CriticalPath() float64 {
	longest := make([]float64, len(g.Tasks))
	best := 0.0
	// Tasks reference only earlier ids (Add validates), so one pass works.
	for i, t := range g.Tasks {
		start := 0.0
		for _, d := range t.Deps {
			if longest[d] > start {
				start = longest[d]
			}
		}
		longest[i] = start + t.Work
		if longest[i] > best {
			best = longest[i]
		}
	}
	return best
}

// Interval is a span of simulated time with constant occupancy, used by the
// energy model.
type Interval struct {
	Start, End float64
	// BusyThreads is the number of busy hardware threads during the span.
	BusyThreads int
	// BusyCores is the number of cores with at least one busy thread.
	BusyCores int
	// ActiveSockets is the number of sockets with at least one busy core.
	ActiveSockets int
}

// Assignment records where and when one task executed.
type Assignment struct {
	Task   int
	Thread int
	Start  float64
	End    float64
}

// Result reports a simulation.
type Result struct {
	// Makespan is the simulated wall-clock time to drain the graph.
	Makespan float64
	// BusyWork is the total work executed (equals the graph's TotalWork).
	BusyWork float64
	// Intervals is the occupancy trace for energy integration.
	Intervals []Interval
	// Assignments is the per-task schedule (zero-work tasks are omitted).
	Assignments []Assignment
	// ThreadsUsed is the number of hardware threads made available.
	ThreadsUsed int
}

const workEpsilon = 1e-9

// Simulate schedules g on the first `threads` hardware threads of m (in
// enumeration order) with greedy FIFO list scheduling and returns the
// resulting makespan and occupancy trace. It panics if threads is not
// positive or the graph has an unsatisfiable dependence.
func Simulate(m Machine, g *Graph, threads int) Result {
	return SimulateWithPolicy(m, g, threads, FIFO)
}

// SimulateWithPolicy is Simulate under an explicit scheduling policy.
func SimulateWithPolicy(m Machine, g *Graph, threads int, policy Policy) Result {
	if threads < 1 {
		panic("platform: threads must be positive")
	}
	if max := m.TotalThreads(); threads > max {
		threads = max
	}
	hw := m.enumerate()[:threads]

	n := len(g.Tasks)
	remaining := make([]float64, n)
	indegree := make([]int, n)
	children := make([][]int, n)
	for i, t := range g.Tasks {
		remaining[i] = t.Work
		indegree[i] = len(t.Deps)
		for _, d := range t.Deps {
			children[d] = append(children[d], i)
		}
	}

	// Bottom level (work-weighted longest path to a sink) per task, the
	// CriticalPathFirst priority. Tasks only reference earlier ids, so a
	// reverse pass suffices.
	var bottom []float64
	if policy == CriticalPathFirst {
		bottom = make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			best := 0.0
			for _, c := range children[i] {
				if bottom[c] > best {
					best = bottom[c]
				}
			}
			bottom[i] = best + g.Tasks[i].Work
		}
	}

	// ready is the runnable-task queue; runningOn[t] is the task a
	// hardware thread runs, or -1.
	var ready []int
	for i := range g.Tasks {
		if indegree[i] == 0 {
			ready = append(ready, i)
		}
	}
	// pop removes the next task per the policy.
	pop := func() int {
		best := 0
		if policy == CriticalPathFirst {
			for i := 1; i < len(ready); i++ {
				if bottom[ready[i]] > bottom[ready[best]] {
					best = i
				}
			}
		}
		task := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		return task
	}
	runningOn := make([]int, threads)
	startedAt := make([]float64, threads)
	for i := range runningOn {
		runningOn[i] = -1
	}

	res := Result{BusyWork: g.TotalWork(), ThreadsUsed: threads}
	now := 0.0
	completed := 0

	assign := func() {
		for len(ready) > 0 {
			// Peek per policy; only dequeue once a slot exists.
			slot := -1
			peek := 0
			if policy == CriticalPathFirst {
				for i := 1; i < len(ready); i++ {
					if bottom[ready[i]] > bottom[ready[peek]] {
						peek = i
					}
				}
			}
			task := ready[peek]
			// Prefer an idle thread on the task's home socket.
			home := g.Tasks[task].Home
			for ti := range runningOn {
				if runningOn[ti] != -1 {
					continue
				}
				if home >= 0 && hw[ti].socket == home {
					slot = ti
					break
				}
				if slot == -1 {
					slot = ti
				}
			}
			if slot == -1 {
				return
			}
			popped := pop()
			task = popped
			if remaining[task] <= workEpsilon {
				// Zero-work task (pure synchronization): complete
				// immediately and release children without
				// occupying the thread.
				completeTask(task, &ready, children, indegree)
				completed++
				continue
			}
			runningOn[slot] = task
			startedAt[slot] = now
		}
	}

	rate := func(ti int) float64 {
		r := 1.0
		t := hw[ti]
		if t.sibling >= 0 && t.sibling < threads && runningOn[t.sibling] != -1 {
			r *= m.HTFactor
		}
		task := g.Tasks[runningOn[ti]]
		if task.Home >= 0 && task.Home != t.socket {
			r *= m.NUMAPenalty
		}
		return r
	}

	for completed < n {
		assign()
		// Find the next completion.
		dt := math.Inf(1)
		anyRunning := false
		for ti := range runningOn {
			if runningOn[ti] == -1 {
				continue
			}
			anyRunning = true
			if d := remaining[runningOn[ti]] / rate(ti); d < dt {
				dt = d
			}
		}
		if !anyRunning {
			if completed < n {
				panic("platform: deadlock — graph has an unsatisfiable dependence")
			}
			break
		}
		// Record the occupancy interval.
		busyThreads := 0
		busyCores := map[int]bool{}
		busySockets := map[int]bool{}
		for ti := range runningOn {
			if runningOn[ti] != -1 {
				busyThreads++
				busyCores[hw[ti].core] = true
				busySockets[hw[ti].socket] = true
			}
		}
		res.Intervals = append(res.Intervals, Interval{
			Start: now, End: now + dt,
			BusyThreads:   busyThreads,
			BusyCores:     len(busyCores),
			ActiveSockets: len(busySockets),
		})
		// Advance time and drain work.
		now += dt
		for ti := range runningOn {
			task := runningOn[ti]
			if task == -1 {
				continue
			}
			remaining[task] -= dt * rate(ti)
			if remaining[task] <= workEpsilon {
				runningOn[ti] = -1
				res.Assignments = append(res.Assignments, Assignment{
					Task: task, Thread: ti, Start: startedAt[ti], End: now,
				})
				completeTask(task, &ready, children, indegree)
				completed++
			}
		}
	}
	res.Makespan = now
	return res
}

func completeTask(task int, ready *[]int, children [][]int, indegree []int) {
	for _, c := range children[task] {
		indegree[c]--
		if indegree[c] == 0 {
			*ready = append(*ready, c)
		}
	}
}

// Speedup returns the ratio of the graph's single-thread makespan to its
// makespan at the given thread count — the paper's speedup definition
// ("computed using the single-threaded version ... as baseline" is applied
// by callers that pass the baseline graph explicitly).
func Speedup(m Machine, baseline, parallel *Graph, threads int) float64 {
	t1 := Simulate(m, baseline, 1).Makespan
	tn := Simulate(m, parallel, threads).Makespan
	if tn == 0 {
		return math.Inf(1)
	}
	return t1 / tn
}
