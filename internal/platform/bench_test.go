package platform

import "testing"

// Simulator micro-benchmarks: the discrete-event scheduler's throughput,
// which bounds how many configurations the autotuner can profile per
// second.

func benchGraph(stages, width int) *Graph {
	g := &Graph{}
	prev := -1
	for s := 0; s < stages; s++ {
		forks := make([]int, width)
		for w := 0; w < width; w++ {
			if prev < 0 {
				forks[w] = g.Add(1)
			} else {
				forks[w] = g.Add(1, prev)
			}
		}
		prev = g.Add(0.1, forks...)
	}
	return g
}

func BenchmarkSimulateNarrow(b *testing.B) {
	m := Haswell28(false)
	g := benchGraph(64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(m, g, 8)
	}
}

func BenchmarkSimulateWide(b *testing.B) {
	m := Haswell28(false)
	g := benchGraph(64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(m, g, 28)
	}
}

func BenchmarkSimulateCriticalPathFirst(b *testing.B) {
	m := Haswell28(false)
	g := benchGraph(64, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimulateWithPolicy(m, g, 28, CriticalPathFirst)
	}
}
