package fault

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestDecideDeterministicAcrossInjectors(t *testing.T) {
	a := New(Config{Seed: 42, AuxPanicRate: 0.3})
	b := New(Config{Seed: 42, AuxPanicRate: 0.3})
	for i := 0; i < 500; i++ {
		_, fa := a.decide(SiteAux, 0.3)
		_, fb := b.decide(SiteAux, 0.3)
		if fa != fb {
			t.Fatalf("call %d: injectors with equal seeds disagree", i)
		}
	}
	if a.Fired(SiteAux) == 0 {
		t.Fatal("rate 0.3 over 500 calls never fired")
	}
}

func TestDecideSeedChangesDecisions(t *testing.T) {
	a := New(Config{Seed: 1})
	b := New(Config{Seed: 2})
	same := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, fa := a.decide(SiteAux, 0.5)
		_, fb := b.decide(SiteAux, 0.5)
		if fa == fb {
			same++
		}
	}
	if same == n {
		t.Fatal("distinct seeds produced identical decision streams")
	}
}

func TestDecideRateApproximatesConfig(t *testing.T) {
	in := New(Config{Seed: 7})
	const n = 20000
	for i := 0; i < n; i++ {
		in.decide(SiteGarbage, 0.1)
	}
	got := float64(in.Fired(SiteGarbage)) / n
	if math.Abs(got-0.1) > 0.02 {
		t.Fatalf("empirical rate %.4f, want ~0.10", got)
	}
	if c := in.Counts()[SiteGarbage]; c[0] != n {
		t.Fatalf("calls counted %d, want %d", c[0], n)
	}
}

func TestDecideZeroAndFullRates(t *testing.T) {
	in := New(Config{Seed: 3})
	for i := 0; i < 100; i++ {
		if _, fire := in.decide(SiteAux, 0); fire {
			t.Fatal("rate 0 fired")
		}
		if _, fire := in.decide(SiteDelay, 1); !fire {
			t.Fatal("rate 1 did not fire")
		}
	}
}

func TestWrapAuxPanicsAndGarbage(t *testing.T) {
	in := New(Config{Seed: 11, AuxPanicRate: 0.5, GarbageRate: 0.5})
	aux := WrapAux(in, func(r struct{}, init int, recent []int) int {
		return init + len(recent)
	}, func(int) int { return -1 })
	panics, garbage, clean := 0, 0, 0
	for i := 0; i < 200; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					ip, ok := r.(InjectedPanic)
					if !ok || ip.Site != SiteAux {
						t.Errorf("panic value %v, want InjectedPanic{SiteAux}", r)
					}
					panics++
				}
			}()
			switch aux(struct{}{}, 5, []int{1, 2}) {
			case -1:
				garbage++
			case 7:
				clean++
			default:
				t.Error("aux produced an unexpected value")
			}
		}()
	}
	if panics == 0 || garbage == 0 || clean == 0 {
		t.Fatalf("panics=%d garbage=%d clean=%d; want all three exercised", panics, garbage, clean)
	}
	if got := in.Fired(SiteAux); uint64(panics) != got {
		t.Fatalf("panics=%d but Fired(SiteAux)=%d", panics, got)
	}
}

func TestWrapComputeOnceFiresAtMostOnce(t *testing.T) {
	in := New(Config{Seed: 13, ComputePanicRate: 1}) // every input selected
	compute := WrapComputeOnce(in, func(r struct{}, input int, s int) (int, int) {
		return input * 2, s + input
	}, func(i int) uint64 { return uint64(i) })

	var mu sync.Mutex
	panics := 0
	call := func(input int) {
		defer func() {
			if r := recover(); r != nil {
				if ip, ok := r.(InjectedPanic); !ok || ip.Site != SiteCompute {
					t.Errorf("panic value %v, want InjectedPanic{SiteCompute}", r)
				}
				mu.Lock()
				panics++
				mu.Unlock()
			}
		}()
		compute(struct{}{}, input, 0)
	}
	// Concurrent first wave: even with every input selected, exactly one
	// panic total (per-wrapper once).
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); call(i) }(i)
	}
	wg.Wait()
	// Replays of every input: no further panics (per-input once).
	for i := 0; i < 32; i++ {
		call(i)
	}
	if panics != 1 {
		t.Fatalf("panics = %d, want exactly 1", panics)
	}
	if in.Fired(SiteCompute) != 1 {
		t.Fatalf("Fired(SiteCompute) = %d, want 1", in.Fired(SiteCompute))
	}
}

func TestWrapComputeDelay(t *testing.T) {
	in := New(Config{Seed: 17, DelayRate: 1, Delay: 2 * time.Millisecond})
	compute := WrapCompute(in, func(r struct{}, input int, s int) (int, int) {
		return input, s
	})
	start := time.Now()
	compute(struct{}{}, 1, 0)
	if time.Since(start) < 2*time.Millisecond {
		t.Fatal("delay injection did not stall the call")
	}
	if in.Fired(SiteDelay) != 1 {
		t.Fatalf("Fired(SiteDelay) = %d", in.Fired(SiteDelay))
	}
}

func TestInjectedPanicError(t *testing.T) {
	var err error = InjectedPanic{Site: SiteAux, Call: 3}
	if err.Error() != "fault: injected aux-panic at call 3" {
		t.Fatalf("Error() = %q", err.Error())
	}
}
