// Package fault is a deterministic fault injector for the STATS runtime's
// chaos experiments: seeded injection of auxiliary-code panics, garbage
// speculative states, compute panics and delays at configured rates.
//
// The point of chaos testing a speculative engine is the paper's own
// correctness claim turned adversarial: §3.1 promises that a failed
// speculation never changes the program's output, because validation
// squashes it and the inputs replay conventionally. The injector
// manufactures failures the validation layer was never told about —
// panics mid-group, speculative states that are pure garbage, lanes that
// stall past their deadline — and the chaos harness checks the promise
// holds: no crash, byte-identical output versus the sequential baseline,
// and failure counters that reconcile across stats, the event log and a
// live /metrics scrape.
//
// Determinism: every injection decision is a pure function of the
// injector's seed, the site, and that site's call ordinal, via a
// splitmix64-style hash. Sites that are called in a coordinator-fixed
// order (aux production, validation) therefore inject identically across
// runs with equal seeds and rates. Compute runs on pool workers whose
// interleaving varies run to run, so for compute sites the ordinal-hash
// guarantees a deterministic injection *rate* and set of decisions, but
// which group observes a given ordinal may vary — the chaos harness's
// assertions (no crash, output equality) are scheduling-independent by
// design.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Site identifies an injection point.
type Site int

// The injection sites the injector can arm.
const (
	// SiteAux is auxiliary-code execution: an injection panics instead
	// of producing a speculative state.
	SiteAux Site = iota
	// SiteGarbage is auxiliary-code output: an injection replaces the
	// speculative state with caller-supplied garbage, so validation must
	// reject it.
	SiteGarbage
	// SiteCompute is a compute invocation: an injection panics inside
	// user compute code on whatever lane runs it.
	SiteCompute
	// SiteDelay is a compute invocation stall: an injection sleeps the
	// lane, for exercising Options.GroupTimeout.
	SiteDelay

	numSites // sentinel, keep last
)

// String returns the site's stable name.
func (s Site) String() string {
	switch s {
	case SiteAux:
		return "aux-panic"
	case SiteGarbage:
		return "garbage-state"
	case SiteCompute:
		return "compute-panic"
	case SiteDelay:
		return "delay"
	}
	return "unknown"
}

// InjectedPanic is the value injected panics carry, so tests and recovery
// paths can tell manufactured faults from real bugs.
type InjectedPanic struct {
	// Site is the injection point that fired.
	Site Site
	// Call is the site's call ordinal (0-based) at which it fired.
	Call uint64
}

// Error renders the panic value; InjectedPanic intentionally implements
// error so a *core.PanicError wrapping it stays inspectable.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("fault: injected %s at call %d", p.Site, p.Call)
}

// Config sets the per-site injection rates, each the probability in [0, 1]
// that one call at that site is injected.
type Config struct {
	// Seed fixes every injection decision.
	Seed uint64
	// AuxPanicRate injects panics into auxiliary-code execution.
	AuxPanicRate float64
	// GarbageRate replaces speculative states with garbage.
	GarbageRate float64
	// ComputePanicRate injects panics into compute invocations.
	ComputePanicRate float64
	// DelayRate stalls compute invocations by Delay.
	DelayRate float64
	// Delay is the stall duration for SiteDelay injections
	// (default 5ms when DelayRate > 0).
	Delay time.Duration
}

// Injector makes seeded injection decisions and counts what it did. Safe
// for concurrent use; the per-site ordinals are atomics.
type Injector struct {
	cfg   Config
	calls [numSites]atomic.Uint64
	fired [numSites]atomic.Uint64
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// mix is a splitmix64-style finalizer: the decision hash for one
// (seed, site, ordinal) triple.
func mix(seed uint64, site Site, call uint64) uint64 {
	x := seed ^ (uint64(site)+1)*0x9E3779B97F4A7C15 ^ call*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// decide consumes one call ordinal at the site and reports whether it
// injects at the given rate, returning the ordinal used.
func (in *Injector) decide(site Site, rate float64) (uint64, bool) {
	call := in.calls[site].Add(1) - 1
	if rate <= 0 {
		return call, false
	}
	h := mix(in.cfg.Seed, site, call)
	// Top 53 bits → uniform float in [0, 1).
	u := float64(h>>11) / float64(1<<53)
	if u < rate {
		in.fired[site].Add(1)
		return call, true
	}
	return call, false
}

// Counts reports, per site, how many calls were seen and how many were
// injected.
func (in *Injector) Counts() map[Site][2]uint64 {
	out := make(map[Site][2]uint64, int(numSites))
	for s := Site(0); s < numSites; s++ {
		out[s] = [2]uint64{in.calls[s].Load(), in.fired[s].Load()}
	}
	return out
}

// Fired returns how many injections the site performed.
func (in *Injector) Fired(s Site) uint64 { return in.fired[s].Load() }

// WrapAux arms SiteAux and SiteGarbage around an auxiliary function:
// an aux-panic injection panics with InjectedPanic instead of running
// aux; a garbage injection runs aux and then discards its result for
// garbage(result). Aux runs on the coordinator in group order, so these
// decisions replay exactly under a fixed seed.
func WrapAux[R, S, I any](in *Injector, aux func(R, S, []I) S, garbage func(S) S) func(R, S, []I) S {
	return func(r R, init S, recent []I) S {
		if call, fire := in.decide(SiteAux, in.cfg.AuxPanicRate); fire {
			panic(InjectedPanic{Site: SiteAux, Call: call})
		}
		out := aux(r, init, recent)
		if call, fire := in.decide(SiteGarbage, in.cfg.GarbageRate); fire {
			_ = call
			return garbage(out)
		}
		return out
	}
}

// WrapCompute arms SiteCompute and SiteDelay around a compute function
// with per-call (ordinal) decisions: every invocation — speculative,
// redo or fallback — rolls the dice. Use WrapComputeOnce for chaos runs
// that must preserve output, since an ordinal-keyed panic can fire on the
// sequential path, where no containment is possible.
func WrapCompute[R, I, S, O any](in *Injector, compute func(R, I, S) (O, S)) func(R, I, S) (O, S) {
	return func(r R, input I, s S) (O, S) {
		if _, fire := in.decide(SiteDelay, in.cfg.DelayRate); fire {
			time.Sleep(in.cfg.Delay)
		}
		if call, fire := in.decide(SiteCompute, in.cfg.ComputePanicRate); fire {
			panic(InjectedPanic{Site: SiteCompute, Call: call})
		}
		return compute(r, input, s)
	}
}

// WrapComputeOnce arms SiteCompute with transient-fault semantics: the
// injection decision is keyed on the input (via key, at ComputePanicRate),
// and at most ONE selected input per wrapper panics, only the first time it
// is computed — the speculative lane dies, every replay of the same input
// succeeds. This is the mode chaos runs use to prove output preservation.
//
// Both "once" constraints are load-bearing for the no-crash guarantee, not
// just flavor. Per-input once: a fault that re-fires on the sequential
// replay is a deterministic application bug, which no runtime can mask.
// Per-wrapper once: the first fire is the run's first fault, so it is
// guaranteed to land on a speculative lane (where the engine contains it);
// a SECOND selected input could first be computed on the fallback path of
// the abort the first fault caused — its lane may have been squashed before
// reaching it — and a fallback-path panic has no containment left. Arm one
// fresh wrapper per engine run to get one transient fault per run.
// SiteDelay injections stay per-call and uncapped (delays are benign
// everywhere).
func WrapComputeOnce[R, I, S, O any](in *Injector, compute func(R, I, S) (O, S), key func(I) uint64) func(R, I, S) (O, S) {
	var spent atomic.Bool
	var once sync.Map // key(input) -> struct{}, set when its fault has fired
	return func(r R, input I, s S) (O, S) {
		if _, fire := in.decide(SiteDelay, in.cfg.DelayRate); fire {
			time.Sleep(in.cfg.Delay)
		}
		if rate := in.cfg.ComputePanicRate; rate > 0 {
			k := key(input)
			h := mix(in.cfg.Seed, SiteCompute, k)
			if float64(h>>11)/float64(1<<53) < rate {
				if _, fired := once.LoadOrStore(k, struct{}{}); !fired && spent.CompareAndSwap(false, true) {
					in.calls[SiteCompute].Add(1)
					in.fired[SiteCompute].Add(1)
					panic(InjectedPanic{Site: SiteCompute, Call: k})
				}
			}
		}
		return compute(r, input, s)
	}
}
