// Package space models the paper's state space (§3.3): the design space the
// autotuner explores. Its dimensions are, verbatim from the paper, "all
// tradeoffs, ... how often a state dependence is satisfied with auxiliary
// code, ... the number of previous inputs an auxiliary code will consider,
// ... the maximum number of times the STATS runtime can execute an original
// producer of a given state dependence, and ... the number of threads to
// dedicate to the TLP already available in the original program."
//
// A Config picks one index per dimension. The back-end instantiates a
// Config against the IR; the profiler measures it; the autotuner navigates
// between Configs.
package space

import (
	"fmt"
	"strings"

	"repro/internal/rng"
)

// DimKind identifies what a dimension controls, so the back-end and runtime
// know how to apply a chosen index.
type DimKind int

const (
	// TradeoffDim is the index of a (cloned, auxiliary-code) tradeoff.
	TradeoffDim DimKind = iota
	// AuxEnable decides whether a state dependence is satisfied with
	// auxiliary code (1) or conventionally (0).
	AuxEnable
	// AuxWindow is the number of previous inputs the auxiliary code
	// consumes to build its speculative state.
	AuxWindow
	// RedoMax is the maximum number of times the runtime may re-execute
	// the original producer before aborting speculation.
	RedoMax
	// Rollback is how many inputs a re-execution goes back.
	Rollback
	// GroupSize is the cardinality of the input groups the runtime
	// overlaps ("STATS automatically decides what is the most convenient
	// group cardinality", §3.1).
	GroupSize
	// ThreadSplit is the number of threads dedicated to the program's
	// original TLP; the remainder serve state dependences.
	ThreadSplit
)

// String returns the kind's name.
func (k DimKind) String() string {
	switch k {
	case TradeoffDim:
		return "tradeoff"
	case AuxEnable:
		return "aux-enable"
	case AuxWindow:
		return "aux-window"
	case RedoMax:
		return "redo-max"
	case Rollback:
		return "rollback"
	case GroupSize:
		return "group-size"
	case ThreadSplit:
		return "thread-split"
	default:
		return fmt.Sprintf("DimKind(%d)", int(k))
	}
}

// Dimension is one axis of the state space. Values are indices in
// [0, Size); Values, when non-nil, maps an index to the concrete integer the
// runtime consumes (e.g. a group size of 8 at index 2).
type Dimension struct {
	Name    string
	Kind    DimKind
	Size    int64
	Default int64
	// Dep is the state dependence this dimension belongs to, or "" for
	// global dimensions such as the thread split.
	Dep string
	// Values maps an index to a concrete value; nil means the identity.
	Values []int64
}

// Value returns the concrete value at index i.
func (d Dimension) Value(i int64) int64 {
	if i < 0 || i >= d.Size {
		panic(fmt.Sprintf("space: %s index %d out of [0,%d)", d.Name, i, d.Size))
	}
	if d.Values == nil {
		return i
	}
	return d.Values[i]
}

// Space is an ordered set of dimensions.
type Space struct {
	dims  []Dimension
	index map[string]int
}

// New returns an empty space.
func New() *Space {
	return &Space{index: map[string]int{}}
}

// Add appends a dimension. It panics on duplicate names, zero sizes, or
// defaults out of range — dimensions are authored by the middle-end and a
// malformed one is a compiler bug.
func (s *Space) Add(d Dimension) {
	if d.Size <= 0 {
		panic(fmt.Sprintf("space: dimension %s has size %d", d.Name, d.Size))
	}
	if d.Default < 0 || d.Default >= d.Size {
		panic(fmt.Sprintf("space: dimension %s default %d out of [0,%d)", d.Name, d.Default, d.Size))
	}
	if d.Values != nil && int64(len(d.Values)) != d.Size {
		panic(fmt.Sprintf("space: dimension %s has %d values for size %d", d.Name, len(d.Values), d.Size))
	}
	if _, dup := s.index[d.Name]; dup {
		panic(fmt.Sprintf("space: duplicate dimension %s", d.Name))
	}
	s.index[d.Name] = len(s.dims)
	s.dims = append(s.dims, d)
}

// Dims returns the dimensions in order.
func (s *Space) Dims() []Dimension { return s.dims }

// Len returns the number of dimensions.
func (s *Space) Len() int { return len(s.dims) }

// Find returns the position of the named dimension and whether it exists.
func (s *Space) Find(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Cardinality returns the number of points in the space as a float64 (the
// paper reports ~1.3 million points on average; exact integer arithmetic is
// unnecessary and can overflow).
func (s *Space) Cardinality() float64 {
	card := 1.0
	for _, d := range s.dims {
		card *= float64(d.Size)
	}
	return card
}

// Config is one point in a space: an index per dimension, in order.
type Config []int64

// Clone returns a copy of c.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Key returns a canonical string form of c, usable as a map key for
// memoizing profiler results.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Default returns the configuration with every dimension at its default
// index: the paper's baseline ("we set all tradeoffs to their default value
// and satisfy all state dependences conventionally").
func (s *Space) Default() Config {
	c := make(Config, len(s.dims))
	for i, d := range s.dims {
		c[i] = d.Default
	}
	return c
}

// Validate checks that c is a legal point of s.
func (s *Space) Validate(c Config) error {
	if len(c) != len(s.dims) {
		return fmt.Errorf("space: config has %d entries for %d dimensions", len(c), len(s.dims))
	}
	for i, v := range c {
		if v < 0 || v >= s.dims[i].Size {
			return fmt.Errorf("space: %s index %d out of [0,%d)", s.dims[i].Name, v, s.dims[i].Size)
		}
	}
	return nil
}

// Random returns a uniformly random configuration.
func (s *Space) Random(r *rng.Source) Config {
	c := make(Config, len(s.dims))
	for i, d := range s.dims {
		c[i] = int64(r.Intn(int(d.Size)))
	}
	return c
}

// Neighbor returns a copy of c with one random dimension nudged by at most
// radius steps (wrapping is not used; moves clamp at the edges). Dimensions
// of size 1 are skipped when possible.
func (s *Space) Neighbor(r *rng.Source, c Config, radius int64) Config {
	n := c.Clone()
	if len(s.dims) == 0 {
		return n
	}
	if radius < 1 {
		radius = 1
	}
	for attempt := 0; attempt < 8; attempt++ {
		i := r.Intn(len(s.dims))
		d := s.dims[i]
		if d.Size == 1 {
			continue
		}
		step := int64(r.Intn(int(2*radius+1))) - radius
		if step == 0 {
			step = 1
		}
		v := n[i] + step
		if v < 0 {
			v = 0
		}
		if v >= d.Size {
			v = d.Size - 1
		}
		n[i] = v
		return n
	}
	return n
}

// Crossover returns a uniform crossover of a and b.
func (s *Space) Crossover(r *rng.Source, a, b Config) Config {
	c := make(Config, len(s.dims))
	for i := range s.dims {
		if r.Bool(0.5) {
			c[i] = a[i]
		} else {
			c[i] = b[i]
		}
	}
	return c
}

// Lookup returns the concrete value of the named dimension under c, and
// whether the dimension exists.
func (s *Space) Lookup(c Config, name string) (int64, bool) {
	i, ok := s.index[name]
	if !ok {
		return 0, false
	}
	return s.dims[i].Value(c[i]), true
}

// Set assigns the named dimension's index in c (in place) and reports
// whether the dimension exists.
func (s *Space) Set(c Config, name string, idx int64) bool {
	i, ok := s.index[name]
	if !ok {
		return false
	}
	if idx < 0 || idx >= s.dims[i].Size {
		panic(fmt.Sprintf("space: Set(%s, %d) out of [0,%d)", name, idx, s.dims[i].Size))
	}
	c[i] = idx
	return true
}

// DepDims returns the dimensions belonging to the named state dependence.
func (s *Space) DepDims(dep string) []Dimension {
	var out []Dimension
	for _, d := range s.dims {
		if d.Dep == dep {
			out = append(out, d)
		}
	}
	return out
}

// AddDependence appends the standard per-dependence dimensions: aux
// enablement, the aux input window, the redo budget, the rollback window,
// and the group size. windows, redos, rollbacks and groups list the
// concrete values each dimension may take.
func (s *Space) AddDependence(dep string, windows, redos, rollbacks, groups []int64) {
	s.Add(Dimension{Name: dep + ".aux", Kind: AuxEnable, Size: 2, Default: 0, Dep: dep})
	s.Add(Dimension{Name: dep + ".window", Kind: AuxWindow, Size: int64(len(windows)), Values: windows, Dep: dep})
	s.Add(Dimension{Name: dep + ".redo", Kind: RedoMax, Size: int64(len(redos)), Values: redos, Dep: dep})
	s.Add(Dimension{Name: dep + ".rollback", Kind: Rollback, Size: int64(len(rollbacks)), Values: rollbacks, Dep: dep})
	s.Add(Dimension{Name: dep + ".group", Kind: GroupSize, Size: int64(len(groups)), Values: groups, Dep: dep})
}

// AddThreadSplit appends the global original-TLP thread dimension with
// values 1..maxThreads, defaulting to maxThreads (all threads to the
// original program, none to state dependences — the baseline).
func (s *Space) AddThreadSplit(maxThreads int64) {
	s.Add(Dimension{
		Name:    "threads.original",
		Kind:    ThreadSplit,
		Size:    maxThreads,
		Default: maxThreads - 1,
		Values:  seq(1, maxThreads),
	})
}

func seq(lo, hi int64) []int64 {
	out := make([]int64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}
