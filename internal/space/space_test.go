package space

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func demoSpace() *Space {
	s := New()
	s.Add(Dimension{Name: "layers", Kind: TradeoffDim, Size: 10, Default: 4})
	s.AddDependence("track", []int64{1, 2, 4}, []int64{0, 1, 2, 3}, []int64{1, 2, 4}, []int64{1, 2, 4, 8})
	s.AddThreadSplit(8)
	return s
}

func TestAddValidation(t *testing.T) {
	cases := []Dimension{
		{Name: "zero", Size: 0},
		{Name: "neg-default", Size: 3, Default: -1},
		{Name: "big-default", Size: 3, Default: 3},
		{Name: "bad-values", Size: 3, Values: []int64{1}},
	}
	for _, d := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Add(%s) did not panic", d.Name)
				}
			}()
			s := New()
			s.Add(d)
		}()
	}
	// Duplicate names panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Add did not panic")
			}
		}()
		s := New()
		s.Add(Dimension{Name: "x", Size: 2})
		s.Add(Dimension{Name: "x", Size: 2})
	}()
}

func TestCardinality(t *testing.T) {
	s := demoSpace()
	// 10 * (2*3*4*3*4) * 8 = 10 * 288 * 8 = 23040.
	if got := s.Cardinality(); got != 23040 {
		t.Fatalf("Cardinality: %v", got)
	}
}

func TestDefaultConfigValidates(t *testing.T) {
	s := demoSpace()
	c := s.Default()
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	// Default disables aux and gives all threads to the original program.
	if v, _ := s.Lookup(c, "track.aux"); v != 0 {
		t.Fatalf("default aux: %d", v)
	}
	if v, _ := s.Lookup(c, "threads.original"); v != 8 {
		t.Fatalf("default thread split: %d", v)
	}
}

func TestValidateRejects(t *testing.T) {
	s := demoSpace()
	if err := s.Validate(Config{0}); err == nil {
		t.Fatal("short config accepted")
	}
	c := s.Default()
	c[0] = 99
	if err := s.Validate(c); err == nil {
		t.Fatal("out-of-range config accepted")
	}
}

func TestRandomAlwaysValid(t *testing.T) {
	s := demoSpace()
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		if err := s.Validate(s.Random(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNeighborValidAndClose(t *testing.T) {
	s := demoSpace()
	r := rng.New(2)
	c := s.Default()
	for i := 0; i < 200; i++ {
		n := s.Neighbor(r, c, 2)
		if err := s.Validate(n); err != nil {
			t.Fatal(err)
		}
		diff := 0
		for j := range n {
			if n[j] != c[j] {
				diff++
			}
		}
		if diff > 1 {
			t.Fatalf("neighbor changed %d dimensions", diff)
		}
	}
}

func TestCrossoverTakesFromParents(t *testing.T) {
	s := demoSpace()
	r := rng.New(3)
	a := s.Default()
	b := s.Random(r)
	c := s.Crossover(r, a, b)
	if err := s.Validate(c); err != nil {
		t.Fatal(err)
	}
	for i := range c {
		if c[i] != a[i] && c[i] != b[i] {
			t.Fatalf("dimension %d value %d from neither parent", i, c[i])
		}
	}
}

func TestLookupAndSet(t *testing.T) {
	s := demoSpace()
	c := s.Default()
	if !s.Set(c, "track.group", 3) {
		t.Fatal("Set failed")
	}
	if v, ok := s.Lookup(c, "track.group"); !ok || v != 8 {
		t.Fatalf("Lookup after Set: %d %v", v, ok)
	}
	if _, ok := s.Lookup(c, "nope"); ok {
		t.Fatal("Lookup of missing dimension succeeded")
	}
	if s.Set(c, "nope", 0) {
		t.Fatal("Set of missing dimension succeeded")
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	s := demoSpace()
	c := s.Default()
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	s.Set(c, "layers", 10)
}

func TestDepDims(t *testing.T) {
	s := demoSpace()
	dims := s.DepDims("track")
	if len(dims) != 5 {
		t.Fatalf("expected 5 track dims, got %d", len(dims))
	}
	for _, d := range dims {
		if d.Dep != "track" {
			t.Fatalf("wrong dep on %s", d.Name)
		}
	}
}

func TestDimensionValueMapping(t *testing.T) {
	d := Dimension{Name: "g", Size: 3, Values: []int64{1, 4, 16}}
	if d.Value(1) != 4 {
		t.Fatal("mapped value")
	}
	id := Dimension{Name: "i", Size: 5}
	if id.Value(3) != 3 {
		t.Fatal("identity value")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Value out of range did not panic")
		}
	}()
	d.Value(3)
}

func TestConfigKeyRoundTrip(t *testing.T) {
	a := Config{1, 2, 3}
	b := Config{1, 2, 3}
	c := Config{1, 2, 4}
	if a.Key() != b.Key() {
		t.Fatal("equal configs, different keys")
	}
	if a.Key() == c.Key() {
		t.Fatal("different configs, same key")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Config{1, 2}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases parent")
	}
}

func TestFind(t *testing.T) {
	s := demoSpace()
	if i, ok := s.Find("layers"); !ok || s.Dims()[i].Name != "layers" {
		t.Fatal("Find layers")
	}
	if _, ok := s.Find("absent"); ok {
		t.Fatal("Find absent")
	}
}

func TestRandomCoversSpaceProperty(t *testing.T) {
	s := New()
	s.Add(Dimension{Name: "d", Size: 4})
	f := func(seed uint64) bool {
		c := s.Random(rng.New(seed))
		return c[0] >= 0 && c[0] < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
