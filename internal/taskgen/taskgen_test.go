package taskgen

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

func innerModel() workload.Model {
	return workload.Model{
		NumInputs:       16,
		InvocationWork:  1,
		AuxWork:         2,
		InnerWidth:      8,
		InnerSerialFrac: 0.1,
		SyncWork:        0.05,
		ValidateWork:    0.01,
		MatchProb:       1,
	}
}

func outerModel() workload.Model {
	m := innerModel()
	m.OuterParallel = true
	m.OuterTasks = 34
	m.InnerWidth = 1
	m.InnerSerialFrac = 1
	m.SyncWork = 0
	return m
}

func specOpts() workload.SpecOptions {
	return workload.SpecOptions{UseAux: true, GroupSize: 4, Window: 2, RedoMax: 2, Rollback: 2}
}

func TestSequentialChain(t *testing.T) {
	g := Build(Sequential, innerModel(), workload.SpecOptions{}, 1)
	if got := g.TotalWork(); got != 16 {
		t.Fatalf("total work: %v", got)
	}
	if got := g.CriticalPath(); got != 16 {
		t.Fatalf("critical path: %v (must be fully serial)", got)
	}
}

func TestSequentialOuterSerializesUnits(t *testing.T) {
	g := Build(Sequential, outerModel(), workload.SpecOptions{}, 1)
	if got := g.CriticalPath(); got != 34*16 {
		t.Fatalf("critical path: %v", got)
	}
}

func TestOriginalInnerParallelism(t *testing.T) {
	m := innerModel()
	g := Build(Original, m, workload.SpecOptions{}, 1)
	// Critical path per stage: parallel share / width + serial + sync.
	stage := 0.9/8 + 0.1 + 0.05
	want := 16 * stage
	if got := g.CriticalPath(); !close(got, want) {
		t.Fatalf("critical path: %v, want %v", got, want)
	}
	// Total work includes the sync overhead.
	if got := g.TotalWork(); !close(got, 16*1.05) {
		t.Fatalf("total work: %v", got)
	}
}

func TestOriginalOuterIndependentChains(t *testing.T) {
	g := Build(Original, outerModel(), workload.SpecOptions{}, 1)
	if got := g.CriticalPath(); got != 16 {
		t.Fatalf("critical path: %v (chains must be independent)", got)
	}
	mach := platform.Haswell28(false)
	// 34 chains on 28 threads: two waves.
	r := platform.Simulate(mach, g, 28)
	if !close(r.Makespan, 32) {
		t.Fatalf("makespan: %v, want 32 (two waves)", r.Makespan)
	}
}

func TestSeqSTATSBreaksTheChain(t *testing.T) {
	m := innerModel()
	g := Build(SeqSTATS, m, specOpts(), 1)
	// With all matches, the critical path is one group (4 inputs) plus
	// aux work and validations — far below the sequential 16.
	if cp := g.CriticalPath(); cp >= 10 {
		t.Fatalf("critical path %v not shortened", cp)
	}
	// Work: 16 invocations + 3 aux of 2 + validations.
	if tw := g.TotalWork(); tw < 16+6 || tw > 16+6+1 {
		t.Fatalf("total work: %v", tw)
	}
}

func TestSTATSWithoutAuxIsConventional(t *testing.T) {
	m := innerModel()
	o := specOpts()
	o.UseAux = false
	g := Build(SeqSTATS, m, o, 1)
	if cp := g.CriticalPath(); cp != 16 {
		t.Fatalf("critical path: %v", cp)
	}
}

func TestGroupLargerThanInputsIsConventional(t *testing.T) {
	m := innerModel()
	o := specOpts()
	o.GroupSize = 100
	g := Build(SeqSTATS, m, o, 1)
	if cp := g.CriticalPath(); cp != 16 {
		t.Fatalf("critical path: %v", cp)
	}
}

func TestAbortAddsFallbackChain(t *testing.T) {
	m := innerModel()
	m.MatchProb = 0 // every boundary fails
	m.RedoGain = 0
	o := specOpts()
	o.RedoMax = 0
	g := Build(SeqSTATS, m, o, 1)
	// First boundary aborts: 12 squashed inputs re-run sequentially
	// after group 0 (4) — critical path at least 16 plus validation.
	if cp := g.CriticalPath(); cp < 16 {
		t.Fatalf("critical path %v: fallback missing", cp)
	}
	// Wasted speculative work: total > 16 invocations.
	if tw := g.TotalWork(); tw <= 16+6 {
		t.Fatalf("total work %v: squashed work missing", tw)
	}
}

func TestRedosExtendPreviousGroup(t *testing.T) {
	m := innerModel()
	m.MatchProb = 0
	m.RedoGain = 1 // first redo always matches
	o := specOpts()
	base := Build(SeqSTATS, innerModel(), o, 1)
	redo := Build(SeqSTATS, m, o, 1)
	// Each of the 3 boundaries adds a rollback-2 re-execution.
	if diff := redo.TotalWork() - base.TotalWork(); !close(diff, 6) {
		t.Fatalf("redo work: %v", diff)
	}
}

func TestParSTATSUsesInnerAndGroupTLP(t *testing.T) {
	m := innerModel()
	seq := Build(SeqSTATS, m, specOpts(), 1)
	par := Build(ParSTATS, m, specOpts(), 1)
	if par.CriticalPath() >= seq.CriticalPath() {
		t.Fatalf("Par critical path %v not below Seq %v", par.CriticalPath(), seq.CriticalPath())
	}
}

func TestParSTATSOuterChainsIndependent(t *testing.T) {
	m := outerModel()
	o := specOpts()
	seqStats := Build(SeqSTATS, m, o, 1)
	parStats := Build(ParSTATS, m, o, 1)
	// Seq. STATS serializes the 34 units; Par. STATS overlaps them.
	if parStats.CriticalPath() >= seqStats.CriticalPath()/4 {
		t.Fatalf("Par %v vs Seq %v", parStats.CriticalPath(), seqStats.CriticalPath())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	m := innerModel()
	m.MatchProb = 0.5
	m.RedoGain = 0.5
	a := Build(SeqSTATS, m, specOpts(), 7)
	b := Build(SeqSTATS, m, specOpts(), 7)
	if a.TotalWork() != b.TotalWork() || len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestSpeculationSpeedsUpSimulatedMakespan(t *testing.T) {
	m := innerModel()
	m.NumInputs = 32
	mach := platform.Haswell28(false)
	seq := platform.Simulate(mach, Build(Sequential, m, workload.SpecOptions{}, 1), 1)
	o := specOpts()
	stats := platform.Simulate(mach, Build(SeqSTATS, m, o, 1), 28)
	if speedup := seq.Makespan / stats.Makespan; speedup < 3 {
		t.Fatalf("Seq. STATS speedup only %v", speedup)
	}
}

func TestModeString(t *testing.T) {
	if Sequential.String() != "Sequential" || Original.String() != "Original" ||
		SeqSTATS.String() != "Seq. STATS" || ParSTATS.String() != "Par. STATS" {
		t.Fatal("mode strings")
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}
