// Package taskgen lowers a workload's cost model (workload.Model) into a
// platform task graph for one of the four program shapes the evaluation
// compares (Figs. 3, 12-15):
//
//   - Sequential: the out-of-the-box single-threaded program — a chain of
//     invocations (times the outer units for outer-parallel workloads).
//   - Original: the out-of-the-box parallelization — inner fan-out per
//     invocation with synchronization overhead, or independent outer
//     chains (swaptions' per-instrument loop).
//   - SeqSTATS: the binary STATS generates from the sequential version —
//     only the TLP liberated by satisfying state dependences with
//     auxiliary code (§4.3, "Seq. STATS").
//   - ParSTATS: the combination of both TLP sources (§4.3, "Par. STATS"),
//     STATS's default mode.
//
// Speculation outcomes (match / redo / abort at each group boundary) are
// sampled from the model's acceptance probabilities with a seeded PRVG, so
// a graph is deterministic given (model, options, seed).
package taskgen

import (
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Mode selects the program shape.
type Mode int

const (
	// Sequential is the single-threaded out-of-the-box program.
	Sequential Mode = iota
	// Original is the out-of-the-box parallelization.
	Original
	// SeqSTATS uses only state-dependence TLP.
	SeqSTATS
	// ParSTATS combines both TLP sources.
	ParSTATS
)

// String returns the mode's name.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "Sequential"
	case Original:
		return "Original"
	case SeqSTATS:
		return "Seq. STATS"
	default:
		return "Par. STATS"
	}
}

// Build lowers the model into a task graph.
func Build(mode Mode, m workload.Model, o workload.SpecOptions, seed uint64) *platform.Graph {
	g := &platform.Graph{}
	r := rng.New(seed)
	outer := 1
	if m.OuterParallel && m.OuterTasks > 1 {
		outer = m.OuterTasks
	}
	switch mode {
	case Sequential:
		prev := -1
		for u := 0; u < outer; u++ {
			for i := 0; i < m.NumInputs; i++ {
				prev = addTask(g, m.InvocationWork, prev)
			}
		}
	case Original:
		if m.OuterParallel {
			// One task per outer unit: the original program statically
			// assigns whole units (swaptions) to threads, which is what
			// caps it at ceil(units/threads) waves.
			for u := 0; u < outer; u++ {
				g.Add(float64(m.NumInputs) * m.InvocationWork)
			}
		} else {
			// A chain of invocations, each parallelized inside.
			prev := -1
			for i := 0; i < m.NumInputs; i++ {
				prev = addInnerStage(g, m, prev)
			}
		}
	case SeqSTATS, ParSTATS:
		inner := mode == ParSTATS && !m.OuterParallel && m.InnerWidth > 1
		prev := -1
		for u := 0; u < outer; u++ {
			// In Seq. STATS the outer units serialize (the sequential
			// program's loop); in Par. STATS they are independent.
			start := prev
			if mode == ParSTATS {
				start = -1
			}
			prev = statsChain(g, m, o, r, inner, start)
		}
	}
	return g
}

// addTask appends one task, chaining it after prev when prev >= 0.
func addTask(g *platform.Graph, work float64, prev int) int {
	if prev >= 0 {
		return g.Add(work, prev)
	}
	return g.Add(work)
}

// addInnerStage appends one original-TLP invocation: an InnerWidth fan-out
// of the parallel share, then a serial join carrying the serial fraction
// and the synchronization overhead.
func addInnerStage(g *platform.Graph, m workload.Model, prev int) int {
	width := m.InnerWidth
	if width < 1 {
		width = 1
	}
	parallelShare := m.InvocationWork * (1 - m.InnerSerialFrac)
	forks := make([]int, width)
	for w := 0; w < width; w++ {
		forks[w] = addTask(g, parallelShare/float64(width), prev)
	}
	serial := m.InvocationWork*m.InnerSerialFrac + m.SyncWork
	return g.Add(serial, forks...)
}

// invocation appends one STATS-chain invocation: a plain task in Seq mode,
// an inner stage in Par mode.
func invocation(g *platform.Graph, m workload.Model, inner bool, prev int) int {
	if inner {
		return addInnerStage(g, m, prev)
	}
	return addTask(g, m.InvocationWork, prev)
}

// boundaryOutcome is the sampled result of one group-boundary validation.
type boundaryOutcome struct {
	redos   int
	aborted bool
}

// sampleBoundary draws a validation outcome from the model's acceptance
// probabilities.
func sampleBoundary(r *rng.Source, m workload.Model, redoMax int) boundaryOutcome {
	if r.Bool(m.MatchProb) {
		return boundaryOutcome{}
	}
	for t := 1; t <= redoMax; t++ {
		if r.Bool(m.RedoGain) {
			return boundaryOutcome{redos: t}
		}
	}
	return boundaryOutcome{redos: redoMax, aborted: true}
}

// statsChain appends the §3.1 execution model for one input chain:
// overlapped groups started from auxiliary states, validations with
// bounded re-execution, and the squash-and-fall-back path on abort.
// unitStart, when >= 0, serializes the chain after a previous unit
// (Seq. STATS over outer-parallel programs). It returns the chain's last
// task.
func statsChain(g *platform.Graph, m workload.Model, o workload.SpecOptions, r *rng.Source, inner bool, unitStart int) int {
	n := m.NumInputs
	if n == 0 {
		return unitStart
	}
	gs := o.GroupSize
	if gs < 1 {
		gs = 1
	}
	if !o.UseAux || gs >= n {
		// Conventional: sequential chain (with inner TLP in Par mode).
		prev := unitStart
		for i := 0; i < n; i++ {
			prev = invocation(g, m, inner, prev)
		}
		return prev
	}
	numGroups := (n + gs - 1) / gs
	rollback := o.Rollback
	if rollback < 1 {
		rollback = 1
	}

	// Per group: the aux task and the invocation chain it feeds.
	groupLast := make([]int, numGroups)
	auxTask := make([]int, numGroups)
	groupLen := make([]int, numGroups)
	for j := 0; j < numGroups; j++ {
		length := gs
		if j == numGroups-1 {
			length = n - j*gs
		}
		groupLen[j] = length
		start := unitStart
		auxTask[j] = -1
		if j > 0 {
			// Auxiliary code runs before the group, in parallel with
			// everything else (Fig. 5b).
			auxTask[j] = addTask(g, m.AuxWork, unitStart)
			start = auxTask[j]
		}
		prev := start
		for i := 0; i < length; i++ {
			prev = invocation(g, m, inner, prev)
		}
		groupLast[j] = prev
	}

	// Validations in input order; the first exhausted redo budget aborts
	// everything after it. A validation at boundary j needs the previous
	// group's final state (its chain end, after any re-executions) and
	// the speculative state (the aux task's output); it does not wait for
	// the speculative group itself.
	lastValidate := -1
	for j := 1; j < numGroups; j++ {
		out := sampleBoundary(r, m, o.RedoMax)
		// Re-executions: the previous group's last `rollback` inputs
		// re-run sequentially after its first execution.
		redoLast := groupLast[j-1]
		for t := 0; t < out.redos; t++ {
			w := rollback
			if w > groupLen[j-1] {
				w = groupLen[j-1]
			}
			for i := 0; i < w; i++ {
				redoLast = invocation(g, m, inner, redoLast)
			}
		}
		deps := []int{redoLast, auxTask[j]}
		if lastValidate >= 0 {
			deps = append(deps, lastValidate)
		}
		validate := g.Add(m.ValidateWork, deps...)
		if out.aborted {
			// Squash: subsequent groups' in-flight work is wasted
			// (it still drains machine time); the remaining inputs
			// re-run sequentially after the failed validation, with
			// no further speculation (§3.1).
			remaining := 0
			for k := j; k < numGroups; k++ {
				remaining += groupLen[k]
			}
			prev := validate
			for i := 0; i < remaining; i++ {
				prev = invocation(g, m, inner, prev)
			}
			return prev
		}
		lastValidate = validate
	}
	// The chain completes when the last group's execution and the last
	// validation have both finished.
	if lastValidate >= 0 {
		return g.Add(0, lastValidate, groupLast[numGroups-1])
	}
	return groupLast[numGroups-1]
}
