package mathx

import "math"

// Hash64 is an incremental FNV-1a 64-bit hash for building state
// fingerprints (core.StateOps.Fingerprint): fold words in with Word/Int/
// Float, read the digest with Sum. The zero value is NOT a valid hash;
// start from NewHash64.
type Hash64 uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewHash64 returns the FNV-1a offset basis.
func NewHash64() Hash64 { return fnvOffset64 }

// Word folds one 64-bit word into the hash, least-significant byte first.
func (h Hash64) Word(x uint64) Hash64 {
	for i := 0; i < 8; i++ {
		h = (h ^ Hash64(x&0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

// Int folds an int into the hash.
func (h Hash64) Int(n int) Hash64 { return h.Word(uint64(n)) }

// Float folds a float64's IEEE-754 bits into the hash. Note +0 and -0
// hash differently; canonicalize first if that distinction must not
// matter.
func (h Hash64) Float(f float64) Hash64 { return h.Word(math.Float64bits(f)) }

// Sum returns the digest.
func (h Hash64) Sum() uint64 { return uint64(h) }
