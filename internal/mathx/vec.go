// Package mathx provides the small vector and statistics helpers shared by
// the workloads, the quality metrics, and the evaluation harness: 2-D/3-D
// vectors with the usual operations, descriptive statistics, geometric means,
// and the confidence-interval rule the paper uses for convergence ("95% of
// the measurements are within 5% of the mean", §4.1).
package mathx

import "math"

// Vec2 is a point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Vec3 is a point or displacement in 3-D space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Lerp returns the linear interpolation v + t*(w-v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }

// Clamp returns v with each component clamped to [lo, hi].
func (v Vec3) Clamp(lo, hi float64) Vec3 {
	return Vec3{clamp(v.X, lo, hi), clamp(v.Y, lo, hi), clamp(v.Z, lo, hi)}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AbsDiffSum returns the sum of absolute component differences between a and
// b over their common prefix. This is the bodytrack state-comparison distance
// ("the sum of the absolute differences of every body part position").
func AbsDiffSum(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Abs(a[i] - b[i])
	}
	return sum
}

// AvgEuclidean3 returns the average Euclidean distance between corresponding
// points of a and b over their common prefix; 0 if either is empty. This is
// the fluidanimate and facedet state-comparison distance.
func AvgEuclidean3(a, b []Vec3) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += a[i].Dist(b[i])
	}
	return sum / float64(n)
}
