package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of xs. Non-positive entries are
// rejected by returning 0, since a geometric mean is undefined for them.
// The paper reports all aggregate speedups as geometric means.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// WithinFraction reports whether at least frac of the samples lie within
// tol (relative) of the sample mean. The paper's convergence rule (§4.1) is
// WithinFraction(samples, 0.95, 0.05): run until 95% of measurements are
// within 5% of the mean. An empty sample set is not converged.
func WithinFraction(xs []float64, frac, tol float64) bool {
	if len(xs) == 0 {
		return false
	}
	m := Mean(xs)
	if m == 0 {
		return false
	}
	in := 0
	for _, x := range xs {
		if math.Abs(x-m) <= tol*math.Abs(m) {
			in++
		}
	}
	return float64(in) >= frac*float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation, or 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
