package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVec2Ops(t *testing.T) {
	a, b := Vec2{1, 2}, Vec2{3, -1}
	if got := a.Add(b); got != (Vec2{4, 1}) {
		t.Fatalf("Add: %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 3}) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Fatalf("Scale: %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Fatalf("Dot: %v", got)
	}
	if got := (Vec2{3, 4}).Norm(); got != 5 {
		t.Fatalf("Norm: %v", got)
	}
	if got := (Vec2{0, 0}).Dist(Vec2{3, 4}); got != 5 {
		t.Fatalf("Dist: %v", got)
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if got := a.Add(b); got != (Vec3{5, 7, 9}) {
		t.Fatalf("Add: %v", got)
	}
	if got := b.Sub(a); got != (Vec3{3, 3, 3}) {
		t.Fatalf("Sub: %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Fatalf("Dot: %v", got)
	}
	if got := (Vec3{2, 3, 6}).Norm(); got != 7 {
		t.Fatalf("Norm: %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Fatalf("Lerp(0): %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Fatalf("Lerp(1): %v", got)
	}
	if got := (Vec3{-2, 0.5, 9}).Clamp(0, 1); got != (Vec3{0, 0.5, 1}) {
		t.Fatalf("Clamp: %v", got)
	}
}

func TestVec3LerpMidpointProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz int8) bool {
		a := Vec3{float64(ax), float64(ay), float64(az)}
		b := Vec3{float64(bx), float64(by), float64(bz)}
		mid := a.Lerp(b, 0.5)
		return almostEq(mid.Dist(a), mid.Dist(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAbsDiffSum(t *testing.T) {
	if got := AbsDiffSum([]float64{1, 2, 3}, []float64{1, 4, 1}); got != 4 {
		t.Fatalf("AbsDiffSum: %v", got)
	}
	// Common prefix only.
	if got := AbsDiffSum([]float64{1, 2}, []float64{2}); got != 1 {
		t.Fatalf("AbsDiffSum prefix: %v", got)
	}
	if got := AbsDiffSum(nil, []float64{1}); got != 0 {
		t.Fatalf("AbsDiffSum empty: %v", got)
	}
}

func TestAvgEuclidean3(t *testing.T) {
	a := []Vec3{{0, 0, 0}, {1, 0, 0}}
	b := []Vec3{{3, 4, 0}, {1, 0, 0}}
	if got := AvgEuclidean3(a, b); got != 2.5 {
		t.Fatalf("AvgEuclidean3: %v", got)
	}
	if got := AvgEuclidean3(nil, b); got != 0 {
		t.Fatalf("AvgEuclidean3 empty: %v", got)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean: %v", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("Variance: %v", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Fatalf("StdDev: %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate cases")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10) {
		t.Fatalf("GeoMean: %v", got)
	}
	if got := GeoMean([]float64{2, 8}); !almostEq(got, 4) {
		t.Fatalf("GeoMean: %v", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Fatal("GeoMean should reject non-positive")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean empty")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median odd: %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even: %v", got)
	}
	if Median(nil) != 0 {
		t.Fatal("Median empty")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("Min/Max empty")
	}
}

func TestWithinFraction(t *testing.T) {
	// All samples equal: trivially converged.
	if !WithinFraction([]float64{5, 5, 5}, 0.95, 0.05) {
		t.Fatal("identical samples should converge")
	}
	// One far outlier in twenty: 95% within tolerance still holds.
	xs := make([]float64, 20)
	for i := range xs {
		xs[i] = 100
	}
	xs[0] = 110 // mean 100.5; outlier at 9.45% off
	if !WithinFraction(xs, 0.95, 0.05) {
		t.Fatal("19/20 within 5% should pass at 95%")
	}
	// Wildly spread samples: not converged.
	if WithinFraction([]float64{1, 100, 1, 100}, 0.95, 0.05) {
		t.Fatal("spread samples should not converge")
	}
	if WithinFraction(nil, 0.95, 0.05) {
		t.Fatal("empty should not converge")
	}
	if WithinFraction([]float64{0, 0}, 0.95, 0.05) {
		t.Fatal("zero mean should not converge")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0: %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100: %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50: %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("P25: %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestMedianWithinMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip values whose pairwise sums overflow; Median's
			// interpolation is not defined for them.
			if math.IsNaN(x) || math.Abs(x) > math.MaxFloat64/2 {
				return true
			}
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHash64(t *testing.T) {
	// FNV-1a reference digests: empty input is the offset basis, and one
	// zero byte folds to offset^0 * prime repeated — checked here via the
	// canonical single-byte vector through Word's byte loop.
	if got := NewHash64().Sum(); got != 14695981039346656037 {
		t.Fatalf("offset basis = %d", got)
	}
	a := NewHash64().Int(42).Float(3.5).Word(7).Sum()
	b := NewHash64().Int(42).Float(3.5).Word(7).Sum()
	if a != b {
		t.Fatalf("hash not deterministic: %d vs %d", a, b)
	}
	if x, y := NewHash64().Int(1).Int(2).Sum(), NewHash64().Int(2).Int(1).Sum(); x == y {
		t.Fatalf("hash ignores order: %d", x)
	}
	if x, y := NewHash64().Float(1.0).Sum(), NewHash64().Float(1.5).Sum(); x == y {
		t.Fatalf("distinct floats collide: %d", x)
	}
}
