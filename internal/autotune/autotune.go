// Package autotune is the STATS autotuner (§3.5): it explores the state
// space to find a performant (or energy-efficient) configuration, using a
// set of search techniques coordinated by a multi-armed bandit — the
// architecture of OpenTuner, which the paper builds on. Tradeoffs are
// integer parameters ("the values of a tradeoff can always be enumerated"),
// so every technique works on index vectors.
//
// The tuner records an evaluation trace so the harness can reproduce
// Fig. 20 (convergence: ~88 configurations suffice; variance across search
// seeds disappears after ~46). The autotuner itself is nondeterministic in
// exactly the paper's sense: different seeds may find different best
// configurations early on.
package autotune

import (
	"math"

	"repro/internal/rng"
	"repro/internal/space"
)

// Objective evaluates a configuration; lower is better. The profiler
// supplies execution time or energy depending on the optimization goal.
type Objective func(space.Config) float64

// Options configures a search.
type Options struct {
	// Budget is the number of objective evaluations (distinct or not).
	Budget int
	// Seed drives the search's own randomness.
	Seed uint64
	// Frozen pins dimensions (by index) to fixed values, used by the
	// Fig. 18 sweep to leave tradeoffs "un-encoded".
	Frozen map[int]int64
	// Seeds are configurations evaluated right after the default — the
	// "seed configurations" practice of OpenTuner-style tuners, giving
	// the techniques reasonable starting points in rugged landscapes.
	Seeds []space.Config
}

// Evaluation is one profiled configuration.
type Evaluation struct {
	Config    space.Config
	Value     float64
	Technique string
	// BestSoFar is the best value after this evaluation.
	BestSoFar float64
}

// Trace is the search history consumed by Fig. 20.
type Trace struct {
	Evaluations []Evaluation
}

// BestAfter returns the best value found within the first n evaluations
// (+Inf if n is 0 or the trace is empty).
func (t Trace) BestAfter(n int) float64 {
	if n > len(t.Evaluations) {
		n = len(t.Evaluations)
	}
	if n <= 0 {
		return math.Inf(1)
	}
	return t.Evaluations[n-1].BestSoFar
}

// EvaluationsToReach returns the number of evaluations needed to get within
// factor of the final best (e.g. 1.01 for "within 1%"), or the trace length
// if never reached.
func (t Trace) EvaluationsToReach(factor float64) int {
	if len(t.Evaluations) == 0 {
		return 0
	}
	final := t.Evaluations[len(t.Evaluations)-1].BestSoFar
	for i, e := range t.Evaluations {
		if e.BestSoFar <= final*factor {
			return i + 1
		}
	}
	return len(t.Evaluations)
}

// technique is one search strategy proposing the next configuration.
type technique interface {
	name() string
	propose(r *rng.Source, s *space.Space, st *state) space.Config
}

// state is the shared search state techniques draw on.
type state struct {
	best     space.Config
	bestVal  float64
	elites   []Evaluation // best-first, capped
	lastEval Evaluation
}

func (st *state) noteElite(e Evaluation) {
	st.elites = append(st.elites, e)
	// Insertion-sort the tail; the list stays tiny.
	for i := len(st.elites) - 1; i > 0 && st.elites[i].Value < st.elites[i-1].Value; i-- {
		st.elites[i], st.elites[i-1] = st.elites[i-1], st.elites[i]
	}
	if len(st.elites) > 8 {
		st.elites = st.elites[:8]
	}
}

// randomSearch proposes uniform points — pure exploration.
type randomSearch struct{}

func (randomSearch) name() string { return "random" }
func (randomSearch) propose(r *rng.Source, s *space.Space, _ *state) space.Config {
	return s.Random(r)
}

// hillClimb nudges the best configuration by one step.
type hillClimb struct{}

func (hillClimb) name() string { return "hill-climb" }
func (hillClimb) propose(r *rng.Source, s *space.Space, st *state) space.Config {
	return s.Neighbor(r, st.best, 1)
}

// anneal nudges the best configuration with a radius that shrinks as the
// search progresses (tracked via the elite count as a cheap clock).
type anneal struct{ step int }

func (*anneal) name() string { return "anneal" }
func (a *anneal) propose(r *rng.Source, s *space.Space, st *state) space.Config {
	a.step++
	radius := int64(4 - min(3, a.step/20))
	base := st.best
	if len(st.elites) > 1 && r.Bool(0.3) {
		base = st.elites[r.Intn(len(st.elites))].Config
	}
	return s.Neighbor(r, base, radius)
}

// genetic crosses two elites.
type genetic struct{}

func (genetic) name() string { return "genetic" }
func (genetic) propose(r *rng.Source, s *space.Space, st *state) space.Config {
	if len(st.elites) < 2 {
		return s.Random(r)
	}
	a := st.elites[r.Intn(len(st.elites))].Config
	b := st.elites[r.Intn(len(st.elites))].Config
	c := s.Crossover(r, a, b)
	if r.Bool(0.3) {
		c = s.Neighbor(r, c, 1)
	}
	return c
}

// Result is the outcome of a search.
type Result struct {
	Best    space.Config
	BestVal float64
	Trace   Trace
}

// Tune searches s for a configuration minimizing obj. The paper's baseline
// (every dimension at its default) is always evaluated first, so the tuner
// can never return something worse than the untouched program.
func Tune(s *space.Space, obj Objective, o Options) Result {
	if o.Budget < 1 {
		o.Budget = 1
	}
	r := rng.New(o.Seed)
	techs := []technique{randomSearch{}, hillClimb{}, &anneal{}, genetic{}}
	credit := make([]float64, len(techs))
	for i := range credit {
		credit[i] = 1
	}

	apply := func(c space.Config) space.Config {
		for i, v := range o.Frozen {
			c[i] = v
		}
		return c
	}

	st := &state{bestVal: math.Inf(1)}
	var trace Trace
	seen := map[string]float64{}

	evaluate := func(c space.Config, tech string) {
		key := c.Key()
		val, ok := seen[key]
		if !ok {
			val = obj(c)
			seen[key] = val
		}
		e := Evaluation{Config: c.Clone(), Value: val, Technique: tech}
		if val < st.bestVal {
			st.bestVal = val
			st.best = c.Clone()
		}
		e.BestSoFar = st.bestVal
		st.lastEval = e
		st.noteElite(e)
		trace.Evaluations = append(trace.Evaluations, e)
	}

	// The default configuration is the paper's baseline.
	evaluate(apply(s.Default()), "default")
	for _, seed := range o.Seeds {
		if len(trace.Evaluations) >= o.Budget {
			break
		}
		c := seed.Clone()
		if err := s.Validate(c); err != nil {
			continue
		}
		evaluate(apply(c), "seed")
	}

	for len(trace.Evaluations) < o.Budget {
		// AUC-bandit technique selection: probability proportional to
		// exponentially-decayed improvement credit.
		ti := pickTechnique(r, credit)
		c := apply(techs[ti].propose(r, s, st))
		before := st.bestVal
		evaluate(c, techs[ti].name())
		// Credit decay and reward.
		for i := range credit {
			credit[i] *= 0.98
			if credit[i] < 0.05 {
				credit[i] = 0.05
			}
		}
		if st.bestVal < before {
			credit[ti] += 1
		}
	}
	return Result{Best: st.best, BestVal: st.bestVal, Trace: trace}
}

func pickTechnique(r *rng.Source, credit []float64) int {
	total := 0.0
	for _, c := range credit {
		total += c
	}
	x := r.Float64() * total
	for i, c := range credit {
		x -= c
		if x <= 0 {
			return i
		}
	}
	return len(credit) - 1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
