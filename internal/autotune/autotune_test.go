package autotune

import (
	"math"
	"testing"

	"repro/internal/space"
)

func quadSpace() *space.Space {
	s := space.New()
	s.Add(space.Dimension{Name: "x", Size: 21, Default: 0})
	s.Add(space.Dimension{Name: "y", Size: 21, Default: 0})
	return s
}

// quadObj has a unique optimum at (15, 5).
func quadObj(c space.Config) float64 {
	dx := float64(c[0] - 15)
	dy := float64(c[1] - 5)
	return dx*dx + dy*dy
}

func TestFindsOptimum(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 400, Seed: 1})
	if res.BestVal != 0 {
		t.Fatalf("best value: %v (config %v)", res.BestVal, res.Best)
	}
}

func TestBaselineEvaluatedFirst(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 5, Seed: 1})
	first := res.Trace.Evaluations[0]
	if first.Technique != "default" || first.Config[0] != 0 || first.Config[1] != 0 {
		t.Fatalf("first evaluation: %+v", first)
	}
}

func TestNeverWorseThanBaseline(t *testing.T) {
	baseline := quadObj(quadSpace().Default())
	for seed := uint64(0); seed < 10; seed++ {
		res := Tune(quadSpace(), quadObj, Options{Budget: 3, Seed: seed})
		if res.BestVal > baseline {
			t.Fatalf("seed %d: best %v worse than baseline %v", seed, res.BestVal, baseline)
		}
	}
}

func TestBestSoFarMonotone(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 200, Seed: 3})
	prev := math.Inf(1)
	for i, e := range res.Trace.Evaluations {
		if e.BestSoFar > prev {
			t.Fatalf("best-so-far increased at %d: %v > %v", i, e.BestSoFar, prev)
		}
		prev = e.BestSoFar
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := Tune(quadSpace(), quadObj, Options{Budget: 100, Seed: 9})
	b := Tune(quadSpace(), quadObj, Options{Budget: 100, Seed: 9})
	if a.BestVal != b.BestVal || len(a.Trace.Evaluations) != len(b.Trace.Evaluations) {
		t.Fatal("same seed diverged")
	}
}

func TestSeedsExploreDifferently(t *testing.T) {
	a := Tune(quadSpace(), quadObj, Options{Budget: 10, Seed: 1})
	b := Tune(quadSpace(), quadObj, Options{Budget: 10, Seed: 2})
	diff := false
	for i := range a.Trace.Evaluations {
		if a.Trace.Evaluations[i].Value != b.Trace.Evaluations[i].Value {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds explored identically")
	}
}

func TestFrozenDimensionsPinned(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 300, Seed: 1, Frozen: map[int]int64{0: 2}})
	for _, e := range res.Trace.Evaluations {
		if e.Config[0] != 2 {
			t.Fatalf("frozen dimension moved: %v", e.Config)
		}
	}
	// The best achievable with x pinned at 2 is (2-15)^2 = 169.
	if res.BestVal != 169 {
		t.Fatalf("best with frozen x: %v", res.BestVal)
	}
}

func TestMemoizationAvoidsRecomputation(t *testing.T) {
	calls := 0
	obj := func(c space.Config) float64 {
		calls++
		return quadObj(c)
	}
	res := Tune(quadSpace(), obj, Options{Budget: 500, Seed: 4})
	if calls >= len(res.Trace.Evaluations) {
		t.Fatalf("no memoization: %d calls for %d evaluations", calls, len(res.Trace.Evaluations))
	}
}

func TestTraceBestAfter(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 100, Seed: 5})
	if res.Trace.BestAfter(0) != math.Inf(1) {
		t.Fatal("BestAfter(0)")
	}
	if res.Trace.BestAfter(100) != res.BestVal {
		t.Fatal("BestAfter(end)")
	}
	if res.Trace.BestAfter(10) < res.Trace.BestAfter(100) {
		t.Fatal("BestAfter must be non-increasing in n")
	}
}

func TestEvaluationsToReach(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 300, Seed: 6})
	n := res.Trace.EvaluationsToReach(1.0)
	if n < 1 || n > 300 {
		t.Fatalf("evaluations to reach: %d", n)
	}
	if res.Trace.BestAfter(n) != res.BestVal {
		t.Fatal("inconsistent EvaluationsToReach")
	}
}

func TestConvergenceWithinBudget(t *testing.T) {
	// Across seeds the tuner should be close to optimal well before a
	// few hundred evaluations on this small space (the Fig. 20 shape).
	for seed := uint64(0); seed < 6; seed++ {
		res := Tune(quadSpace(), quadObj, Options{Budget: 300, Seed: seed})
		if res.Trace.BestAfter(150) > 4 {
			t.Fatalf("seed %d: best after 150 evals is %v", seed, res.Trace.BestAfter(150))
		}
	}
}

func TestTinyBudget(t *testing.T) {
	res := Tune(quadSpace(), quadObj, Options{Budget: 0, Seed: 1})
	if len(res.Trace.Evaluations) != 1 {
		t.Fatalf("evaluations: %d", len(res.Trace.Evaluations))
	}
}
