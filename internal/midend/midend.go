// Package midend is the STATS middle-end compiler (§3.4, "Generating IR
// with auxiliary code"): it lowers the front-end's standard source to IR
// with metadata, then, for each state dependence d,
//
//   - deep-clones d's computeOutput() as d's auxiliary code, cloning a
//     reachable callee only if it (or one of its callees) contains a
//     tradeoff — found with a bottom-up call-graph analysis — and stopping
//     at an instruction budget;
//   - clones the tradeoffs reachable from the auxiliary code so STATS can
//     control the auxiliary code's quality independently;
//   - pins every tradeoff *outside* auxiliary code to its default value
//     and deletes its metadata entry, so the emitted IR only describes the
//     state space that remains tunable.
package midend

import (
	"fmt"

	"repro/internal/frontend"
	"repro/internal/ir"
)

// CloneBudget is the maximum number of instructions the middle-end will
// clone per computeOutput (the paper's "maximum number of instructions per
// computeOutput()").
const CloneBudget = 4096

// externBulk is the number of opaque host instructions synthesized per
// compute function, standing in for the real computation's body.
const externBulk = 160

// Lower converts the front-end output into an IR module with auxiliary
// code, ready for the back-end.
func Lower(fo *frontend.Output) (*ir.Module, error) {
	m := ir.NewModule()

	// Tradeoff metadata + getValue functions (interpretable IR). Every
	// synthesized instruction and metadata row carries the declaration's
	// source position so analysis diagnostics point at real source.
	for _, t := range fo.Tradeoffs {
		pos := ir.Pos{Line: t.Line, Col: t.Col}
		gv := &ir.Function{Name: fmt.Sprintf("T_%d_getValue", t.ID)}
		switch t.Kind {
		case "constant":
			// return i + Lo
			gv.Instrs = []ir.Instr{
				{Op: ir.Param, Index: 0, Pos: pos},
				{Op: ir.Const, Value: t.Lo, Pos: pos},
				{Op: ir.Add, Args: []int{0, 1}, Pos: pos},
				{Op: ir.Ret, Args: []int{2}, Pos: pos},
			}
		default:
			// return i (an index into ValueNames)
			gv.Instrs = []ir.Instr{
				{Op: ir.Param, Index: 0, Pos: pos},
				{Op: ir.Ret, Args: []int{0}, Pos: pos},
			}
		}
		m.AddFunction(gv)
		meta := ir.TradeoffMeta{
			Name:     t.Name,
			GetValue: gv.Name,
			Size:     t.Size(),
			Default:  t.Default,
			Pos:      pos,
		}
		switch t.Kind {
		case "constant":
			meta.Kind = ir.ConstantKind
		case "type":
			meta.Kind = ir.TypeKind
			meta.ValueNames = t.Names
		case "function":
			meta.Kind = ir.FunctionKind
			meta.ValueNames = t.Names
		}
		m.Tradeoffs = append(m.Tradeoffs, meta)
	}

	// Synthesize compute functions. The first used tradeoff is referenced
	// directly; the rest live in a called kernel helper, so the deep-
	// cloning logic is exercised transitively. Function-kind tradeoffs
	// get their candidate callees declared as extern leaf functions.
	declared := map[string]bool{}
	for _, t := range fo.Tradeoffs {
		if t.Kind == "function" {
			for _, callee := range t.Names {
				if !declared[callee] {
					declared[callee] = true
					m.AddFunction(&ir.Function{Name: callee, Instrs: []ir.Instr{{Op: ir.Extern}}})
				}
			}
		}
	}
	kindOf := map[string]string{}
	for _, t := range fo.Tradeoffs {
		kindOf[t.Name] = t.Kind
	}
	for _, d := range fo.Deps {
		if _, dup := m.Functions[d.Compute]; dup {
			return nil, fmt.Errorf("midend: compute %s declared twice", d.Compute)
		}
		pos := ir.Pos{Line: d.Line, Col: d.Col}
		compute := &ir.Function{Name: d.Compute}
		// The compute function's effect skeleton (Figure 4's pattern):
		// read the current input, read the state, compute, write the
		// state back. The effect pass proves the auxiliary clone stays
		// inside exactly this footprint. When the dependence declares
		// which slots it touches, the whole-state read/write pair is
		// replaced by per-slot indexed accesses whose index expressions
		// the footprint pass can evaluate abstractly.
		compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.InputRead, Index: 0, Pos: pos})
		indexed := len(d.Touches) > 0
		for _, e := range d.Touches {
			if e.Whole {
				indexed = false // a whole-state touch subsumes the rest
				break
			}
		}
		var touchIdx []int
		if indexed {
			for _, e := range d.Touches {
				epos := ir.Pos{Line: e.Line, Col: d.Col}
				idx := lowerIndex(compute, e, epos)
				touchIdx = append(touchIdx, idx)
				compute.Instrs = append(compute.Instrs,
					ir.Instr{Op: ir.StateReadIdx, Name: d.State, Args: []int{idx}, Pos: epos})
			}
		} else {
			compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.StateRead, Name: d.State, Pos: pos})
		}
		addRef := func(f *ir.Function, name string) {
			switch kindOf[name] {
			case "type":
				f.Instrs = append(f.Instrs, ir.Instr{Op: ir.TypeUse, Tradeoff: name, Name: "v_" + name, Pos: pos})
			default:
				f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Placeholder, Tradeoff: name, Pos: pos})
			}
		}
		if len(d.Uses) > 0 {
			addRef(compute, d.Uses[0])
		}
		if len(d.Uses) > 1 {
			kernel := &ir.Function{Name: d.Compute + "$kernel"}
			for _, u := range d.Uses[1:] {
				addRef(kernel, u)
			}
			for i := 0; i < externBulk; i++ {
				kernel.Instrs = append(kernel.Instrs, ir.Instr{Op: ir.Extern, Pos: pos})
			}
			m.AddFunction(kernel)
			compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.Call, Callee: kernel.Name, Pos: pos})
		}
		// A tradeoff-free library helper: must NOT be cloned.
		lib := &ir.Function{Name: d.Compute + "$lib"}
		for i := 0; i < externBulk; i++ {
			lib.Instrs = append(lib.Instrs, ir.Instr{Op: ir.Extern, Pos: pos})
		}
		m.AddFunction(lib)
		compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.Call, Callee: lib.Name, Pos: pos})
		for i := 0; i < externBulk; i++ {
			compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.Extern, Pos: pos})
		}
		if indexed {
			for k, e := range d.Touches {
				epos := ir.Pos{Line: e.Line, Col: d.Col}
				compute.Instrs = append(compute.Instrs,
					ir.Instr{Op: ir.StateWriteIdx, Name: d.State, Args: []int{touchIdx[k]}, Pos: epos})
			}
		} else {
			compute.Instrs = append(compute.Instrs, ir.Instr{Op: ir.StateWrite, Name: d.State, Pos: pos})
		}
		m.AddFunction(compute)
		meta := ir.DepMeta{
			Name: d.Name, Input: d.Input, State: d.State, Output: d.Output,
			Compute: d.Compute, Compare: d.Compare,
			Window: int(d.Window), Slots: int(d.Slots), Pos: pos,
		}
		for _, e := range d.Reserve {
			meta.Reserve = append(meta.Reserve, ir.IndexExpr{
				Whole: e.Whole, Field: e.Field, Stride: e.Stride, Offset: e.Offset,
				Pos: ir.Pos{Line: e.Line, Col: d.Col},
			})
		}
		m.Deps = append(m.Deps, meta)
	}

	// Generate auxiliary code, then pin the originals.
	if err := generateAux(m); err != nil {
		return nil, err
	}
	if err := pinDefaults(m); err != nil {
		return nil, err
	}
	return m, nil
}

// lowerIndex appends the instructions computing the slot index declared by
// e — an affine expression stride*field+offset over the current input — and
// returns the index of the instruction holding the result.
func lowerIndex(f *ir.Function, e frontend.IndexDecl, pos ir.Pos) int {
	if e.Field == "" {
		f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Const, Value: e.Offset, Pos: pos})
		return len(f.Instrs) - 1
	}
	f.Instrs = append(f.Instrs, ir.Instr{Op: ir.InputField, Name: e.Field, Pos: pos})
	cur := len(f.Instrs) - 1
	if e.Stride != 1 {
		f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Const, Value: e.Stride, Pos: pos})
		f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Mul, Args: []int{cur, len(f.Instrs) - 1}, Pos: pos})
		cur = len(f.Instrs) - 1
	}
	if e.Offset != 0 {
		f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Const, Value: e.Offset, Pos: pos})
		f.Instrs = append(f.Instrs, ir.Instr{Op: ir.Add, Args: []int{cur, len(f.Instrs) - 1}, Pos: pos})
		cur = len(f.Instrs) - 1
	}
	return cur
}

// hasTradeoffs reports, per function, whether it or any transitive callee
// references a tradeoff — the bottom-up call-graph analysis driving deep
// cloning.
func hasTradeoffs(m *ir.Module) map[string]bool {
	memo := map[string]bool{}
	var visit func(name string, stack map[string]bool) bool
	visit = func(name string, stack map[string]bool) bool {
		if v, ok := memo[name]; ok {
			return v
		}
		if stack[name] {
			return false // break cycles conservatively
		}
		stack[name] = true
		defer delete(stack, name)
		f, ok := m.Functions[name]
		if !ok {
			return false
		}
		if len(f.TradeoffRefs()) > 0 {
			memo[name] = true
			return true
		}
		for _, c := range f.Callees() {
			if visit(c, stack) {
				memo[name] = true
				return true
			}
		}
		memo[name] = false
		return false
	}
	for name := range m.Functions {
		visit(name, map[string]bool{})
	}
	return memo
}

// generateAux clones each dependence's compute function (and the tradeoff-
// bearing part of its call graph) into auxiliary code with private
// tradeoff clones.
func generateAux(m *ir.Module) error {
	needsClone := hasTradeoffs(m)
	for di := range m.Deps {
		d := &m.Deps[di]
		suffix := "$aux$" + d.Name
		budget := CloneBudget

		var cloneFn func(name string) (string, error)
		cloned := map[string]string{}
		cloneFn = func(name string) (string, error) {
			if newName, ok := cloned[name]; ok {
				return newName, nil
			}
			f, ok := m.Functions[name]
			if !ok {
				return "", fmt.Errorf("midend: missing function %s", name)
			}
			if budget < len(f.Instrs) {
				// Budget exhausted: stop cloning; the aux code keeps
				// calling the shared original from here down.
				return name, nil
			}
			budget -= len(f.Instrs)
			newName := name + suffix
			cloned[name] = newName
			c := f.Clone(newName)
			for i := range c.Instrs {
				in := &c.Instrs[i]
				switch in.Op {
				case ir.Call:
					if needsClone[in.Callee] {
						nn, err := cloneFn(in.Callee)
						if err != nil {
							return "", err
						}
						in.Callee = nn
					}
				case ir.Placeholder, ir.TypeUse:
					auxName := in.Tradeoff + suffix
					if _, exists := m.Tradeoff(auxName); !exists {
						orig, ok := m.Tradeoff(in.Tradeoff)
						if !ok {
							return "", fmt.Errorf("midend: missing tradeoff %s", in.Tradeoff)
						}
						clone := *orig
						clone.Name = auxName
						clone.Aux = true
						clone.ClonedFrom = orig.Name
						m.Tradeoffs = append(m.Tradeoffs, clone)
					}
					in.Tradeoff = auxName
				}
			}
			m.AddFunction(c)
			return newName, nil
		}

		auxName, err := cloneFn(d.Compute)
		if err != nil {
			return err
		}
		d.AuxCompute = auxName
	}
	return nil
}

// pinDefaults sets every non-aux tradeoff reference to its default value
// and deletes the original metadata rows, leaving only auxiliary tradeoffs
// tunable.
func pinDefaults(m *ir.Module) error {
	var originals []string
	for _, t := range m.Tradeoffs {
		if !t.Aux {
			originals = append(originals, t.Name)
		}
	}
	for _, name := range originals {
		t, _ := m.Tradeoff(name)
		def, err := m.Eval(t.GetValue, t.Default)
		if err != nil {
			return fmt.Errorf("midend: pinning %s: %w", name, err)
		}
		for _, f := range m.Functions {
			for i := range f.Instrs {
				in := &f.Instrs[i]
				if in.Tradeoff != name {
					continue
				}
				switch in.Op {
				case ir.Placeholder:
					if t.Kind == ir.FunctionKind {
						// The placeholder call's callee becomes the
						// default implementation.
						*in = ir.Instr{Op: ir.Call, Callee: t.ValueNames[def]}
					} else {
						*in = ir.Instr{Op: ir.Const, Value: def}
					}
				case ir.TypeUse:
					// The variable keeps its default type: the
					// annotation disappears.
					*in = ir.Instr{Op: ir.Extern, Name: in.Name}
				}
			}
		}
		m.RemoveTradeoff(name)
	}
	return nil
}
