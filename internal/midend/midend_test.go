package midend

import (
	"strings"
	"testing"

	"repro/internal/frontend"
	"repro/internal/ir"
)

const fixture = `
tradeoff TO_layers {
    kind constant;
    values 1..10;
    default 4;
}

tradeoff TO_weightType {
    kind type;
    values half, single, double;
    default 2;
}

tradeoff TO_sqrt {
    kind function;
    values sqrt_exact, sqrt_newton2;
    default 0;
}

statedep track {
    input Frame;
    state Model;
    output Pos;
    compute updateModel uses TO_layers, TO_weightType, TO_sqrt;
    compare cmp;
}
`

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	fo, err := frontend.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Lower(fo)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAuxCloneCreated(t *testing.T) {
	m := lower(t, fixture)
	if len(m.Deps) != 1 {
		t.Fatalf("deps: %d", len(m.Deps))
	}
	d := m.Deps[0]
	if d.AuxCompute != "updateModel$aux$track" {
		t.Fatalf("aux compute: %q", d.AuxCompute)
	}
	if _, ok := m.Functions[d.AuxCompute]; !ok {
		t.Fatal("aux function missing")
	}
	// The original compute function survives.
	if _, ok := m.Functions["updateModel"]; !ok {
		t.Fatal("original compute missing")
	}
}

func TestTransitiveCloningThroughKernel(t *testing.T) {
	m := lower(t, fixture)
	// The kernel helper holds tradeoffs 2..n, so it must be cloned.
	if _, ok := m.Functions["updateModel$kernel$aux$track"]; !ok {
		t.Fatal("kernel not cloned")
	}
	// The tradeoff-free library helper must NOT be cloned.
	if _, ok := m.Functions["updateModel$lib$aux$track"]; ok {
		t.Fatal("tradeoff-free helper was cloned")
	}
	// The aux compute must call the cloned kernel and the shared lib.
	aux := m.Functions["updateModel$aux$track"]
	callees := aux.Callees()
	var hasKernelClone, hasSharedLib bool
	for _, c := range callees {
		if c == "updateModel$kernel$aux$track" {
			hasKernelClone = true
		}
		if c == "updateModel$lib" {
			hasSharedLib = true
		}
	}
	if !hasKernelClone || !hasSharedLib {
		t.Fatalf("aux callees: %v", callees)
	}
}

func TestTradeoffsClonedForAux(t *testing.T) {
	m := lower(t, fixture)
	for _, name := range []string{"TO_layers$aux$track", "TO_weightType$aux$track", "TO_sqrt$aux$track"} {
		tm, ok := m.Tradeoff(name)
		if !ok {
			t.Fatalf("missing aux tradeoff %s", name)
		}
		if !tm.Aux {
			t.Fatalf("%s not marked aux", name)
		}
		if tm.ClonedFrom == "" {
			t.Fatalf("%s missing provenance", name)
		}
	}
}

func TestOriginalTradeoffsPinnedAndDeleted(t *testing.T) {
	m := lower(t, fixture)
	// Original rows are gone; only aux rows remain.
	for _, tm := range m.Tradeoffs {
		if !tm.Aux {
			t.Fatalf("non-aux tradeoff %s survived", tm.Name)
		}
	}
	// The original compute's placeholder became the default constant
	// (layers default index 4 -> value 5).
	orig := m.Functions["updateModel"]
	foundConst := false
	for _, in := range orig.Instrs {
		if in.Op == ir.Placeholder || in.Op == ir.TypeUse {
			t.Fatalf("unpinned reference in original: %+v", in)
		}
		if in.Op == ir.Const && in.Value == 5 {
			foundConst = true
		}
	}
	if !foundConst {
		t.Fatal("pinned constant missing")
	}
	// The function tradeoff's placeholder in the original kernel became
	// a direct call to the default implementation.
	kernel := m.Functions["updateModel$kernel"]
	callsDefault := false
	for _, in := range kernel.Instrs {
		if in.Op == ir.Call && in.Callee == "sqrt_exact" {
			callsDefault = true
		}
	}
	if !callsDefault {
		t.Fatal("function tradeoff not pinned to default callee")
	}
}

func TestAuxRefsPointToClonedTradeoffs(t *testing.T) {
	m := lower(t, fixture)
	aux := m.Functions["updateModel$aux$track"]
	refs := aux.TradeoffRefs()
	for _, r := range refs {
		if !strings.HasSuffix(r, "$aux$track") {
			t.Fatalf("aux references original tradeoff %s", r)
		}
	}
	if len(refs) == 0 {
		t.Fatal("aux compute references no tradeoffs")
	}
}

func TestGetValueFunctionsEvaluable(t *testing.T) {
	m := lower(t, fixture)
	tm, _ := m.Tradeoff("TO_layers$aux$track")
	v, err := m.Eval(tm.GetValue, 0)
	if err != nil || v != 1 {
		t.Fatalf("getValue(0): %d, %v", v, err)
	}
	v, err = m.Eval(tm.GetValue, 9)
	if err != nil || v != 10 {
		t.Fatalf("getValue(9): %d, %v", v, err)
	}
}

func TestFunctionTradeoffCandidatesDeclared(t *testing.T) {
	m := lower(t, fixture)
	for _, fn := range []string{"sqrt_exact", "sqrt_newton2"} {
		if _, ok := m.Functions[fn]; !ok {
			t.Fatalf("candidate callee %s missing", fn)
		}
	}
}

func TestTwoDepsShareNothing(t *testing.T) {
	src := fixture + `
statedep second {
    input I2;
    state S2;
    output O2;
    compute other uses TO_layers;
}
`
	m := lower(t, src)
	if len(m.Deps) != 2 {
		t.Fatalf("deps: %d", len(m.Deps))
	}
	// Each dependence gets its own aux clone and tradeoff clones.
	if _, ok := m.Tradeoff("TO_layers$aux$second"); !ok {
		t.Fatal("second dep's tradeoff clone missing")
	}
	if _, ok := m.Functions["other$aux$second"]; !ok {
		t.Fatal("second dep's aux clone missing")
	}
}

func TestDuplicateComputeRejected(t *testing.T) {
	src := fixture + `
statedep dup {
    input I;
    state S;
    output O;
    compute updateModel;
}
`
	fo, err := frontend.Translate(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lower(fo); err == nil {
		t.Fatal("duplicate compute accepted")
	}
}

func TestInstrCountGrows(t *testing.T) {
	// Auxiliary code adds instructions: the Table 1 "binary size
	// increase" effect.
	fo, err := frontend.Translate(fixture)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Lower(fo)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: same program without aux generation is not directly
	// constructible here, but the clone functions must add bulk.
	aux := m.Functions["updateModel$aux$track"]
	if len(aux.Instrs) == 0 {
		t.Fatal("aux clone empty")
	}
	if m.InstrCount() <= 2*len(aux.Instrs) {
		t.Fatalf("module suspiciously small: %d instrs", m.InstrCount())
	}
}
