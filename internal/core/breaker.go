package core

// The circuit breaker bounds the cost of pathological input streams: §4.6
// already bounds one misspeculation's cost (squash + sequential fallback),
// but a stream that aborts every input vector keeps paying full speculation
// overhead (aux production, wasted group work, validation) for zero gain.
// The breaker watches the abort/panic/timeout rate over a sliding window
// and, when it crosses a threshold, disables speculation for a cooldown —
// the runs execute conventionally at zero extra cost — then half-opens to
// re-probe with a few speculative runs before trusting the stream again.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

// The three breaker states, in escalation order: Closed (speculation
// allowed, outcomes windowed), Open (speculation suppressed until the
// cooldown elapses), HalfOpen (a limited number of speculative probe runs
// decide whether to close again or re-open).
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String returns the state's wire name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig sets the sliding window, trip threshold and recovery
// behaviour. Zero values pick the defaults noted per field.
type BreakerConfig struct {
	// Window is the sliding window the failure rate is computed over
	// (default 10s).
	Window time.Duration
	// MinRuns is the minimum number of windowed run outcomes before the
	// rate is judged at all (default 5).
	MinRuns int
	// TripRate is the failure fraction (aborted, panicked or timed-out
	// runs / windowed runs) at which the breaker opens (default 0.5).
	TripRate float64
	// Cooldown is how long the breaker stays open before half-opening to
	// re-probe (default 30s).
	Cooldown time.Duration
	// HalfOpenProbes is the number of consecutive successful probe runs
	// required to close again (default 3). Any probe failure re-opens.
	HalfOpenProbes int
	// Now supplies the clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinRuns <= 0 {
		c.MinRuns = 5
	}
	if c.TripRate <= 0 {
		c.TripRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breakerSample is one run outcome.
type breakerSample struct {
	t      time.Time
	failed bool
}

// maxBreakerSamples bounds the outcome ring; beyond it the oldest
// in-window samples are dropped (the rate loses a little history, the
// memory stays bounded).
const maxBreakerSamples = 1024

// Breaker is a sliding-window abort-rate circuit breaker gating
// speculation. Attach one to Options.Breaker: before speculating the
// engine asks Allow, and after every speculative run it Records whether
// the run aborted, panicked or timed out. All methods are safe for
// concurrent use across runs sharing the breaker.
type Breaker struct {
	cfg BreakerConfig

	mu             sync.Mutex
	state          BreakerState
	openedAt       time.Time
	probeSuccesses int
	samples        []breakerSample

	trips  int64
	denied int64
	probes int64
}

// NewBreaker returns a closed breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a run may speculate now. Open → false until the
// cooldown elapses, at which point the breaker half-opens and admits
// probe runs. Each denial is counted (see Snapshot).
func (b *Breaker) Allow() bool {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probeSuccesses = 0
			b.probes++
			return true
		}
		b.denied++
		return false
	default: // BreakerHalfOpen
		b.probes++
		return true
	}
}

// Record feeds one speculative run's outcome: failed means the run
// aborted, panicked or timed out. In the closed state outcomes are
// windowed and the failure rate judged against TripRate; in the half-open
// state a single failure re-opens and HalfOpenProbes consecutive
// successes close.
func (b *Breaker) Record(failed bool) {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		if failed {
			b.trip(now)
			return
		}
		b.probeSuccesses++
		if b.probeSuccesses >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.samples = b.samples[:0]
		}
		return
	case BreakerOpen:
		// A run that started before the trip finishing late: ignore.
		return
	}

	// Closed: window the outcome and judge the rate.
	b.samples = append(b.samples, breakerSample{t: now, failed: failed})
	cutoff := now.Add(-b.cfg.Window)
	first := 0
	for first < len(b.samples) && b.samples[first].t.Before(cutoff) {
		first++
	}
	if first > 0 {
		b.samples = append(b.samples[:0], b.samples[first:]...)
	}
	if len(b.samples) > maxBreakerSamples {
		b.samples = append(b.samples[:0], b.samples[len(b.samples)-maxBreakerSamples:]...)
	}
	total, failures := len(b.samples), 0
	for _, s := range b.samples {
		if s.failed {
			failures++
		}
	}
	if total >= b.cfg.MinRuns && float64(failures)/float64(total) >= b.cfg.TripRate {
		b.trip(now)
	}
}

// trip opens the breaker (caller holds b.mu).
func (b *Breaker) trip(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.samples = b.samples[:0]
	b.trips++
}

// State returns the breaker's current position, advancing open → half-open
// when the cooldown has elapsed (so a scrape observes the same state a run
// would).
func (b *Breaker) State() BreakerState {
	now := b.cfg.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && now.Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// BreakerSnapshot is the breaker's exported state: the /healthz payload
// section and the source of the registry's function-backed instruments.
type BreakerSnapshot struct {
	// State is the wire name of the breaker's position.
	State string `json:"state"`
	// Trips counts closed/half-open → open transitions.
	Trips int64 `json:"trips"`
	// Denied counts Allow calls refused while open.
	Denied int64 `json:"denied_runs"`
	// Probes counts speculative runs admitted while half-open (plus the
	// one that half-opened the breaker).
	Probes int64 `json:"probe_runs"`
	// WindowedRuns and FailureRate describe the current closed-state
	// window: outcomes retained and the fraction that failed.
	WindowedRuns int   `json:"windowed_runs"`
	FailureRate  float64 `json:"failure_rate"`
}

// Snapshot returns the breaker's current exported state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	state := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := BreakerSnapshot{
		State:        state.String(),
		Trips:        b.trips,
		Denied:       b.denied,
		Probes:       b.probes,
		WindowedRuns: len(b.samples),
	}
	if len(b.samples) > 0 {
		failures := 0
		for _, s := range b.samples {
			if s.failed {
				failures++
			}
		}
		snap.FailureRate = float64(failures) / float64(len(b.samples))
	}
	return snap
}

// Register exposes the breaker through a metrics registry as
// function-backed instruments: breaker_state (0 closed, 1 half-open,
// 2 open), breaker_trips_total, breaker_denied_runs_total and
// breaker_probe_runs_total — the /metrics face of the breaker.
func (b *Breaker) Register(reg *obs.Registry) {
	reg.GaugeFunc("breaker_state", func() int64 { return int64(b.State()) })
	reg.CounterFunc("breaker_trips_total", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.trips
	})
	reg.CounterFunc("breaker_denied_runs_total", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.denied
	})
	reg.CounterFunc("breaker_probe_runs_total", func() int64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.probes
	})
	for name, help := range map[string]string{
		"breaker_state":             "circuit breaker position (0 closed, 1 half-open, 2 open)",
		"breaker_trips_total":       "circuit breaker closed/half-open to open transitions",
		"breaker_denied_runs_total": "runs refused speculation while the breaker was open",
		"breaker_probe_runs_total":  "speculative probe runs admitted while half-open",
	} {
		reg.SetHelp(name, help)
	}
}

// String renders the snapshot compactly for logs and experiment tables.
func (s BreakerSnapshot) String() string {
	return fmt.Sprintf("%s trips=%d denied=%d probes=%d rate=%.2f",
		s.State, s.Trips, s.Denied, s.Probes, s.FailureRate)
}
