package core

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func TestRunStreamEmitsAllInOrder(t *testing.T) {
	inputs := seqInputs(24)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	var idxs []int
	var vals []int
	outs, _, st := d.RunStream(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 6, Window: 24, Workers: 4, Seed: 1,
	}, func(i int, o int) {
		idxs = append(idxs, i)
		vals = append(vals, o)
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if len(idxs) != 24 {
		t.Fatalf("emitted %d outputs", len(idxs))
	}
	for i := range idxs {
		if idxs[i] != i {
			t.Fatalf("emission order broken at %d: %v", i, idxs[i])
		}
		if vals[i] != outs[i] {
			t.Fatalf("emitted value %d != returned %d at %d", vals[i], outs[i], i)
		}
	}
	if st.Matches != 3 {
		t.Fatalf("matches: %d", st.Matches)
	}
}

func TestRunStreamSequentialPath(t *testing.T) {
	inputs := seqInputs(8)
	d := New(deterministicCompute, nil, walkOps())
	var n int
	d.RunStream(inputs, walkState{}, Options{Seed: 1}, func(i int, o int) {
		if i != n {
			t.Fatalf("order: got %d want %d", i, n)
		}
		n++
	})
	if n != 8 {
		t.Fatalf("emitted: %d", n)
	}
}

func TestRunStreamAbortPathEmitsEverything(t *testing.T) {
	inputs := seqInputs(12)
	d := New(deterministicCompute, badAux, walkOps())
	var n int
	outs, _, st := d.RunStream(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 2, RedoMax: 1, Rollback: 1, Workers: 2, Seed: 3,
	}, func(i int, o int) {
		if i != n {
			t.Fatalf("order: got %d want %d", i, n)
		}
		n++
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if n != 12 {
		t.Fatalf("emitted: %d", n)
	}
	if st.Aborts != 1 {
		t.Fatalf("aborts: %d", st.Aborts)
	}
}

func TestRunStreamNilEmitEqualsRun(t *testing.T) {
	inputs := seqInputs(10)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	o := Options{UseAux: true, GroupSize: 5, Window: 10, Seed: 4}
	a, _, _ := d.RunStream(inputs, walkState{}, o, nil)
	b, _, _ := d.Run(inputs, walkState{}, o)
	checkOutputs(t, a, b)
}

func TestRunStreamOverlapsWithTail(t *testing.T) {
	// The last group is slow: early groups' outputs must commit well
	// before the run completes — the consumer can overlap.
	inputs := seqInputs(16)
	slowCompute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in > 12 { // last group of 4
			time.Sleep(20 * time.Millisecond)
		}
		return deterministicCompute(r, in, s)
	}
	d := New(slowCompute, exactAuxFor(inputs), walkOps())
	var firstEmit, lastEmit time.Time
	start := time.Now()
	d.RunStream(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 5,
	}, func(i int, o int) {
		if firstEmit.IsZero() {
			firstEmit = time.Now()
		}
		lastEmit = time.Now()
	})
	total := lastEmit.Sub(start)
	early := firstEmit.Sub(start)
	if early >= total/2 {
		t.Fatalf("first commit at %v of %v: no streaming overlap", early, total)
	}
}
