package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is an injectable breaker clock tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time              { return c.t }
func (c *fakeClock) advance(d time.Duration)     { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{t: time.Unix(1700000000, 0)} }
func testBreakerCfg(clk *fakeClock) BreakerConfig {
	return BreakerConfig{
		Window:         10 * time.Second,
		MinRuns:        5,
		TripRate:       0.5,
		Cooldown:       30 * time.Second,
		HalfOpenProbes: 3,
		Now:            clk.now,
	}
}

func TestBreakerTripCooldownRecover(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))

	// Closed: healthy runs keep it closed.
	for i := 0; i < 10; i++ {
		if !b.Allow() {
			t.Fatalf("run %d: closed breaker denied speculation", i)
		}
		b.Record(false)
		clk.advance(100 * time.Millisecond)
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("after healthy runs: state %v", s)
	}

	// Age the healthy samples out of the window, then trip with failures.
	clk.advance(11 * time.Second)
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
		clk.advance(100 * time.Millisecond)
	}
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("after failure burst: state %v", s)
	}
	snap := b.Snapshot()
	if snap.Trips != 1 {
		t.Fatalf("trips = %d, want 1", snap.Trips)
	}

	// Open: speculation denied until the cooldown elapses.
	for i := 0; i < 3; i++ {
		if b.Allow() {
			t.Fatal("open breaker allowed speculation inside cooldown")
		}
		clk.advance(time.Second)
	}
	if got := b.Snapshot().Denied; got != 3 {
		t.Fatalf("denied = %d, want 3", got)
	}

	// Cooldown elapsed: half-open, probes admitted.
	clk.advance(30 * time.Second)
	if s := b.State(); s != BreakerHalfOpen {
		t.Fatalf("after cooldown: state %v", s)
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d denied while half-open", i)
		}
		b.Record(false)
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("after %d good probes: state %v", 3, s)
	}
	if got := b.Snapshot().Probes; got != 3 {
		t.Fatalf("probes = %d, want 3", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("state %v, want open", s)
	}
	clk.advance(31 * time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.Record(true) // failed probe
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("after failed probe: state %v, want open", s)
	}
	if got := b.Snapshot().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}
	// The fresh open period denies again.
	if b.Allow() {
		t.Fatal("re-opened breaker allowed speculation")
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	// Failures older than the window must not count toward the rate.
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(true)
	}
	clk.advance(11 * time.Second) // all failures age out
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(false)
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state %v, want closed (stale failures aged out)", s)
	}
	snap := b.Snapshot()
	if snap.FailureRate != 0 {
		t.Fatalf("failure rate %.2f, want 0", snap.FailureRate)
	}
}

func TestBreakerMinRuns(t *testing.T) {
	// Below MinRuns the rate is never judged, even at 100% failures.
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(true)
	}
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state %v, want closed below MinRuns", s)
	}
}

func TestBreakerRegisterExposesMetrics(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	reg := obs.NewRegistry()
	b.Register(reg)
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	b.Allow() // denied
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"breaker_state 2",
		"breaker_trips_total 1",
		"breaker_denied_runs_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestBreakerGatesSpeculation(t *testing.T) {
	// An engine run consults Options.Breaker: a tripped breaker forces the
	// conventional path (BreakerDenied=1, Groups=1) and outputs stay
	// correct; after the cooldown a healthy probe run speculates again.
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	inputs := seqInputs(12)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	opts := Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 2, Seed: 7,
		Breaker: b,
	}

	// Healthy speculative run records success.
	outs, _, st := d.Run(inputs, walkState{}, opts)
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.BreakerDenied != 0 || st.Groups != 4 {
		t.Fatalf("healthy run: denied=%d groups=%d", st.BreakerDenied, st.Groups)
	}

	// Trip it by hand, then confirm the engine stops speculating.
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	outs, _, st = d.Run(inputs, walkState{}, opts)
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.BreakerDenied != 1 {
		t.Fatalf("tripped run: BreakerDenied = %d, want 1", st.BreakerDenied)
	}
	if st.Groups != 1 {
		t.Fatalf("tripped run formed %d groups, want 1 (conventional)", st.Groups)
	}

	// After the cooldown the engine probes speculatively again.
	clk.advance(31 * time.Second)
	outs, _, st = d.Run(inputs, walkState{}, opts)
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.BreakerDenied != 0 || st.Groups != 4 {
		t.Fatalf("probe run: denied=%d groups=%d", st.BreakerDenied, st.Groups)
	}
}
