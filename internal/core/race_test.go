package core

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestTracedAbortRaceStress runs the engine with tracing attached under
// conditions that force validation mismatches, redos and aborts — a tight
// acceptance tolerance against a noisy compute — while reader goroutines
// snapshot the event log and scrape the registry the whole time. Under
// `go test -race` (the `make race` tier) this is the observability
// layer's end-to-end safety proof: coordinator validation events race
// worker group-completion events and concurrent Snapshots, and nothing
// tears. The counters must still reconcile with the engine's own Stats
// once the run returns.
func TestTracedAbortRaceStress(t *testing.T) {
	inputs := seqInputs(48)
	seeds := uint64(30)
	if testing.Short() {
		seeds = 6
	}
	var aborts, mismatches int
	for seed := uint64(0); seed < seeds; seed++ {
		// Ample per-lane capacity: the reconciliation below assumes no
		// ring eviction.
		ob := obs.NewObserver(8, 4096)

		stop := make(chan struct{})
		var rwg sync.WaitGroup
		rwg.Add(2)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					for _, e := range ob.Tracer.Snapshot() {
						if e.Kind == obs.EvNone || e.Kind.String() == "unknown" {
							t.Errorf("seed %d: torn event %+v", seed, e)
							return
						}
					}
				}
			}
		}()
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = ob.Reg.Text()
				}
			}
		}()

		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(0.35))
		outs, _, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 8, Window: 48, Workers: 4,
			RedoMax: 1, Rollback: 2, Seed: seed, Obs: ob,
		})
		close(stop)
		rwg.Wait()

		checkOutputs(t, outs, wantOutputs(inputs))
		if ob.Tracer.Dropped() != 0 {
			t.Fatalf("seed %d: %d events evicted despite ample capacity", seed, ob.Tracer.Dropped())
		}
		if got := ob.Aborts.Value(); got != int64(st.Aborts) {
			t.Fatalf("seed %d: observer aborts %d, engine %d", seed, got, st.Aborts)
		}
		if got := ob.Redos.Value(); got != int64(st.Redos) {
			t.Fatalf("seed %d: observer redos %d, engine %d", seed, got, st.Redos)
		}
		if got := ob.Matches.Value(); got != int64(st.Matches) {
			t.Fatalf("seed %d: observer matches %d, engine %d", seed, got, st.Matches)
		}
		var evAborts int
		for _, e := range ob.Tracer.Snapshot() {
			if e.Kind == obs.EvAbort {
				evAborts++
			}
		}
		if evAborts != st.Aborts {
			t.Fatalf("seed %d: %d abort events, engine aborted %d times", seed, evAborts, st.Aborts)
		}
		aborts += st.Aborts
		mismatches += int(ob.Mismatches.Value())
	}
	// The stress is only meaningful if the contested paths actually ran.
	if mismatches == 0 {
		t.Fatal("no validation ever mismatched; tolerance model broken")
	}
	if aborts == 0 {
		t.Fatal("no abort ever happened; the abort/in-flight race went unexercised")
	}
}
