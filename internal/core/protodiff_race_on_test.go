//go:build race

package core_test

// The race detector slows the workload sweep by an order of magnitude;
// the differential contract is seed-uniform, so the race tier keeps full
// interleaving coverage with fewer seeds and one grid point.
const (
	protodiffSeeds         = 3
	protodiffWorkloadSeeds = 2
)

var protodiffWorkloadGrid = []struct {
	g, win, workers int
}{
	{8, 2, 4},
}
