package core

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// Property-style abort-path accounting: for randomized option vectors over
// a nondeterministic walk with a tolerance acceptance (so matches, redos
// and aborts all occur across the sample), the engine's counters must obey
// the conservation laws that the profiler's overhead attribution and the
// harness rely on:
//
//   - every input is committed exactly once: UsefulInvocations == Inputs,
//     and SpeculativeCommits + FallbackInputs + non-speculative commits
//     == Inputs (non-speculative commits are the first group when
//     speculating, the whole vector otherwise);
//   - squashed work is reprocessed: SquashedInputs == FallbackInputs;
//   - wasted work is bounded: 0 <= Invocations - UsefulInvocations <=
//     SquashedInputs + Redos * max(1, Rollback);
//   - at most one abort per run, and every inter-group boundary resolves
//     to a match or the single abort.
func TestAccountingInvariantsRandomized(t *testing.T) {
	r := rng.New(0xACC0)
	const cases = 400
	sawAbort, sawRedo, sawMatch := false, false, false
	for c := 0; c < cases; c++ {
		n := r.Intn(81)
		inputs := seqInputs(n)
		opts := Options{
			UseAux:    r.Bool(0.9),
			GroupSize: 1 + r.Intn(40),
			Window:    r.Intn(11),
			RedoMax:   r.Intn(5),
			Rollback:  r.Intn(7),
			Workers:   1 + r.Intn(6),
			Seed:      r.Uint64(),
		}
		// A tolerance below the walk's noise scale produces aborts; above
		// it, matches — sweeping it exercises every boundary outcome.
		tol := r.Range(0.05, 3.0)
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(tol))
		outs, _, st := d.Run(inputs, walkState{}, opts)
		name := fmt.Sprintf("case %d (n=%d opts=%+v tol=%.2f)", c, n, opts, tol)

		if len(outs) != n || st.Inputs != n {
			t.Fatalf("%s: outputs %d, Inputs %d, want %d", name, len(outs), st.Inputs, n)
		}
		checkOutputs(t, outs, wantOutputs(inputs))
		if st.UsefulInvocations != int64(n) {
			t.Fatalf("%s: UsefulInvocations %d, want %d", name, st.UsefulInvocations, n)
		}
		wasted := st.Invocations - st.UsefulInvocations
		if wasted < 0 {
			t.Fatalf("%s: negative wasted work %d", name, wasted)
		}
		rollback := opts.Rollback
		if rollback < 1 {
			rollback = 1
		}
		if max := int64(st.SquashedInputs) + int64(st.Redos*rollback); wasted > max {
			t.Fatalf("%s: wasted %d exceeds bound %d (%+v)", name, wasted, max, st)
		}
		if st.SquashedInputs != st.FallbackInputs {
			t.Fatalf("%s: squashed %d != fallback %d", name, st.SquashedInputs, st.FallbackInputs)
		}
		nonSpec := n - st.SpeculativeCommits - st.FallbackInputs
		if nonSpec < 0 {
			t.Fatalf("%s: commit accounting negative: %+v", name, st)
		}
		if st.Groups > 1 {
			// Speculating: the non-speculative share is exactly the first
			// group, and aux ran once per subsequent group.
			if nonSpec != opts.GroupSize {
				t.Fatalf("%s: non-speculative commits %d, want first group %d",
					name, nonSpec, opts.GroupSize)
			}
			if st.AuxCalls != st.Groups-1 {
				t.Fatalf("%s: aux calls %d, want %d", name, st.AuxCalls, st.Groups-1)
			}
			if st.AuxInputs > st.AuxCalls*opts.Window {
				t.Fatalf("%s: aux inputs %d exceed calls*window %d",
					name, st.AuxInputs, st.AuxCalls*opts.Window)
			}
		} else if nonSpec != n {
			t.Fatalf("%s: sequential run committed %d of %d non-speculatively", name, nonSpec, n)
		}
		if st.Aborts > 1 {
			t.Fatalf("%s: %d aborts in one run", name, st.Aborts)
		}
		if st.Groups > 1 && st.Matches+st.Aborts > st.Groups-1 {
			t.Fatalf("%s: boundary outcomes %d exceed boundaries %d",
				name, st.Matches+st.Aborts, st.Groups-1)
		}
		if st.Aborts == 0 && st.Groups > 1 && st.Matches != st.Groups-1 {
			t.Fatalf("%s: no abort but only %d/%d boundaries matched",
				name, st.Matches, st.Groups-1)
		}
		if st.Steals < 0 || st.LocalHits < 0 {
			t.Fatalf("%s: negative scheduler counters %+v", name, st)
		}
		if st.Groups > 1 && st.Steals+st.LocalHits < int64(st.Groups) {
			// Every group task is dispatched exactly once by the private
			// pool (no concurrent runs share it), as a local hit or steal.
			t.Fatalf("%s: %d dispatches for %d groups", name, st.Steals+st.LocalHits, st.Groups)
		}

		sawAbort = sawAbort || st.Aborts > 0
		sawRedo = sawRedo || st.Redos > 0
		sawMatch = sawMatch || st.Matches > 0
	}
	// The property sample must actually have exercised all three boundary
	// outcomes, or the invariants above were vacuous.
	if !sawAbort || !sawRedo || !sawMatch {
		t.Fatalf("sample did not exercise all outcomes: abort=%v redo=%v match=%v",
			sawAbort, sawRedo, sawMatch)
	}
}
