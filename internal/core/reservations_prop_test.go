// Property test of the reservations protocol's invariants over randomized
// conflict graphs. The event log is the witness: EvReserve, EvReserveLost
// and EvCommit all pack round<<32|input, so the per-round reserve, loss
// and commit sets can be reconstructed exactly regardless of lane or
// timestamp interleaving, and the protocol's claims become checkable:
//
//  1. priority: the lowest-indexed input reserving in a round always
//     commits in that round (guaranteed progress);
//  2. isolation: no input commits in a round where a lower-indexed
//     reserver shares a footprint slot with it;
//  3. termination: the carried-forward set strictly shrinks — round r+1's
//     reservers are exactly round r's losers;
//  4. accounting: Stats.Rounds, Stats.ReservationConflicts and the
//     observer counters reconcile with the event log.
package core_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
)

// mslotInput touches a random subset of slots, so rounds mix disjoint
// commits with multi-way conflicts.
type mslotInput struct {
	Slots []int
	Val   float64
}

func mslotDep() *core.Dependence[mslotInput, []float64, float64] {
	compute := func(_ *rng.Source, in mslotInput, s []float64) (float64, []float64) {
		out := 0.0
		for _, sl := range in.Slots {
			s[sl] += in.Val
			out += s[sl]
		}
		return out, s
	}
	return core.New(compute, nil, slottedOps()).WithReserve(core.ReserveOps[mslotInput, []float64]{
		NumSlots:  func(initial []float64) int { return len(initial) },
		Footprint: func(in mslotInput, _ []float64) []int { return in.Slots },
		Merge: func(dst, src []float64, slots []int) []float64 {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
	})
}

// randomConflictGraph deals n inputs over k slots with footprints of 1-3
// distinct slots.
func randomConflictGraph(n, k int, seed uint64) []mslotInput {
	r := rng.New(seed)
	ins := make([]mslotInput, n)
	for i := range ins {
		width := 1 + int(r.Uint64()%3)
		if width > k {
			width = k
		}
		seen := map[int]bool{}
		var slots []int
		for len(slots) < width {
			sl := int(r.Uint64() % uint64(k))
			if !seen[sl] {
				seen[sl] = true
				slots = append(slots, sl)
			}
		}
		sort.Ints(slots)
		ins[i] = mslotInput{Slots: slots, Val: float64(i) + 0.5}
	}
	return ins
}

// roundKey identifies one reserve/check/commit round of one group.
type roundKey struct {
	group int32
	round int
}

func intersects(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func TestReservationInvariantsProperty(t *testing.T) {
	for trial := 0; trial < 24; trial++ {
		seed := uint64(0x9E3779B97F4A7C15*uint64(trial) + 0x1CEB00DA)
		r := rng.New(seed)
		n := 16 + int(r.Uint64()%49) // 16..64
		k := 3 + int(r.Uint64()%6)   // 3..8
		g := 2 + int(r.Uint64()%8)   // 2..9, always < n so speculation engages
		workers := 1 + int(r.Uint64()%8)
		inputs := randomConflictGraph(n, k, seed^0xFEED)

		ob := obs.NewObserver(8, 4096)
		st := runPropTrial(t, inputs, k, g, workers, seed, ob)

		if got := ob.Tracer.Dropped(); got != 0 {
			t.Fatalf("trial %d: tracer dropped %d events; ring too small for the proof", trial, got)
		}
		reserves := map[roundKey][]int{}
		losses := map[roundKey][]int{}
		commits := map[roundKey][]int{}
		totalCommits, totalLosses, totalReserves := 0, 0, 0
		for _, ev := range ob.Tracer.Snapshot() {
			round, input := core.SplitReservationArg(ev.Arg)
			key := roundKey{ev.Group, round}
			switch ev.Kind {
			case obs.EvReserve:
				reserves[key] = append(reserves[key], input)
				totalReserves++
			case obs.EvReserveLost:
				losses[key] = append(losses[key], input)
				totalLosses++
			case obs.EvCommit:
				commits[key] = append(commits[key], input)
				totalCommits++
			}
		}
		for key := range reserves {
			sort.Ints(reserves[key])
			sort.Ints(losses[key])
			sort.Ints(commits[key])
		}

		if len(reserves) != st.Rounds {
			t.Fatalf("trial %d: %d distinct rounds in the log, Stats.Rounds %d",
				trial, len(reserves), st.Rounds)
		}
		if totalLosses != st.ReservationConflicts {
			t.Fatalf("trial %d: %d losses in the log, Stats.ReservationConflicts %d",
				trial, totalLosses, st.ReservationConflicts)
		}
		if totalCommits != n {
			t.Fatalf("trial %d: %d commits for %d inputs", trial, totalCommits, n)
		}
		if totalReserves != n+totalLosses {
			t.Fatalf("trial %d: %d reserves, want commits+losses = %d",
				trial, totalReserves, n+totalLosses)
		}
		if v := ob.Reserves.Value(); v != int64(totalReserves) {
			t.Fatalf("trial %d: Reserves counter %d, log %d", trial, v, totalReserves)
		}
		if v := ob.ReserveConflicts.Value(); v != int64(totalLosses) {
			t.Fatalf("trial %d: ReserveConflicts counter %d, log %d", trial, v, totalLosses)
		}
		if v := ob.Commits.Value(); v != int64(totalCommits) {
			t.Fatalf("trial %d: Commits counter %d, log %d", trial, v, totalCommits)
		}

		for key, res := range reserves {
			committed := commits[key]
			lost := losses[key]
			// Every reserver either commits or carries forward, exclusively.
			both := append(append([]int{}, committed...), lost...)
			sort.Ints(both)
			if !reflect.DeepEqual(both, res) {
				t.Fatalf("trial %d: group %d round %d: reservers %v != commits %v + losses %v",
					trial, key.group, key.round, res, committed, lost)
			}
			// 1. The lowest reserver always commits.
			if len(committed) == 0 || committed[0] != res[0] {
				t.Fatalf("trial %d: group %d round %d: lowest reserver %d did not commit (%v)",
					trial, key.group, key.round, res[0], committed)
			}
			// 2. A committed input shares no slot with any lower-indexed
			// reserver of the same round.
			for _, c := range committed {
				for _, o := range res {
					if o >= c {
						break
					}
					if intersects(inputs[c].Slots, inputs[o].Slots) {
						t.Fatalf("trial %d: group %d round %d: input %d committed over lower reserver %d sharing a slot",
							trial, key.group, key.round, c, o)
					}
				}
			}
			// 3. The next round's reservers are exactly this round's losers.
			next := roundKey{key.group, key.round + 1}
			if nr, ok := reserves[next]; ok {
				if !reflect.DeepEqual(nr, lost) {
					t.Fatalf("trial %d: group %d round %d: losers %v, next round reserves %v",
						trial, key.group, key.round, lost, nr)
				}
			} else if len(lost) != 0 {
				t.Fatalf("trial %d: group %d round %d: %d losers but no next round",
					trial, key.group, key.round, len(lost))
			}
			if len(res) > 0 && key.round > 0 {
				prev := reserves[roundKey{key.group, key.round - 1}]
				if len(res) >= len(prev) {
					t.Fatalf("trial %d: group %d round %d: pending grew %d -> %d",
						trial, key.group, key.round, len(prev), len(res))
				}
			}
		}
	}
}

// runPropTrial runs the reservations engine over the graph and asserts the
// output equals the sequential baseline before handing back the stats.
func runPropTrial(t *testing.T, inputs []mslotInput, k, g, workers int, seed uint64, ob *obs.Observer) core.Stats {
	t.Helper()
	seqOuts, seqFinal, _ := mslotDep().Run(inputs, make([]float64, k), core.Options{Seed: seed})
	outs, final, st := mslotDep().Run(inputs, make([]float64, k), core.Options{
		UseAux: true, Protocol: core.ProtocolReservations,
		GroupSize: g, Workers: workers, Seed: seed, Obs: ob,
	})
	if !reflect.DeepEqual(outs, seqOuts) || !reflect.DeepEqual(final, seqFinal) {
		t.Fatalf("reservations diverged from sequential (n=%d k=%d g=%d w=%d)",
			len(inputs), k, g, workers)
	}
	return st
}
