package core

import (
	"fmt"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Engine micro-benchmarks: overhead of the speculation machinery itself
// (grouping, cloning, validation bookkeeping) around a near-free compute.

func cheapCompute(r *rng.Source, in int, s walkState) (int, walkState) {
	s.V += float64(in)
	return in, s
}

func benchInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i + 1
	}
	return in
}

func BenchmarkEngineSequential(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, nil, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{Seed: uint64(i)})
	}
}

func BenchmarkEngineSpeculative(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 64, Window: 64, RedoMax: 1, Rollback: 4,
			Workers: 8, Seed: uint64(i),
		})
	}
}

func BenchmarkEngineAdaptive(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunAdaptive(inputs, walkState{}, AdaptiveOptions{
			Options: Options{
				UseAux: true, GroupSize: 16, Window: 64, RedoMax: 1, Rollback: 4,
				Workers: 8, Seed: uint64(i),
			},
			MaxGroup: 64,
		})
	}
}

// BenchmarkEngineGroupFanout mirrors the paper's thread sweeps on the
// engine's hottest path: one speculative run per iteration, fanning its
// groups out through the sharded scheduler at each worker count. Compare
// against internal/pool's single-channel baseline benchmarks for the
// scheduler's contribution.
func BenchmarkEngineGroupFanout(b *testing.B) {
	inputs := benchInputs(1024)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			p := pool.New(workers)
			defer p.Close()
			d := New(cheapCompute, sumAux, walkOps())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: 32, Window: 32, RedoMax: 1,
					Rollback: 4, Pool: p, Seed: uint64(i),
				})
			}
		})
	}
}

// BenchmarkEngineSubmitBatchVsLoop isolates the fan-out operation itself:
// the same speculative run shapes, shared pool, measured end to end — the
// batch path is what Run uses; the per-task loop is the pre-SubmitBatch
// behaviour approximated by tiny group sizes (more, smaller batches).
func BenchmarkEngineSubmitBatchVsLoop(b *testing.B) {
	inputs := benchInputs(1024)
	for _, g := range []int{8, 64} {
		b.Run(fmt.Sprintf("group=%d", g), func(b *testing.B) {
			p := pool.New(4)
			defer p.Close()
			d := New(cheapCompute, sumAux, walkOps())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: g, Window: g, Pool: p, Seed: uint64(i),
				})
			}
		})
	}
}

// BenchmarkEngineControlledSched prices the controlled scheduler against
// the nil fast path BenchmarkEngineSpeculative measures: with Sched nil
// every decision point costs one predictable branch; with a controller
// attached every admission serializes through the gate. The controlled
// number is the price of a systematic-testing run, not a production
// configuration.
func BenchmarkEngineControlledSched(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 64, Window: 64, RedoMax: 1, Rollback: 4,
			Workers: 8, Seed: uint64(i), Sched: sched.NewRandom(uint64(i)),
		})
	}
}

// BenchmarkEngineReservations prices the deterministic-reservations
// protocol on the same near-free compute as the aux benchmarks, in its
// two shapes: whole-state (nil ReserveOps — one winner per round, the
// protocol's overhead floor) and slotted (8 disjoint slots, so rounds
// commit many winners and the reservation table earns its keep).
func BenchmarkEngineReservations(b *testing.B) {
	inputs := benchInputs(1024)
	opts := Options{
		UseAux: true, Protocol: ProtocolReservations,
		GroupSize: 64, Workers: 8,
	}
	b.Run("whole-state", func(b *testing.B) {
		d := New(cheapCompute, nil, walkOps())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, walkState{}, o)
		}
	})
	b.Run("slotted", func(b *testing.B) {
		d := New(benchSlotCompute, nil, benchSlotOps()).WithReserve(ReserveOps[int, []float64]{
			NumSlots:  func(s []float64) int { return len(s) },
			Footprint: func(in int, _ []float64) []int { return []int{in % 8} },
			Merge: func(dst, src []float64, slots []int) []float64 {
				for _, sl := range slots {
					dst[sl] = src[sl]
				}
				return dst
			},
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, make([]float64, 8), o)
		}
	})
}

func benchSlotCompute(r *rng.Source, in int, s []float64) (int, []float64) {
	s[in%8] += float64(in)
	return in, s
}

func benchSlotOps() StateOps[[]float64] {
	return StateOps[[]float64]{
		Clone: func(s []float64) []float64 {
			c := make([]float64, len(s))
			copy(c, s)
			return c
		},
		MatchAny: func([]float64, [][]float64) bool { return false },
	}
}

func BenchmarkRNGSplit(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Split()
	}
}

func BenchmarkRNGNorm(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
