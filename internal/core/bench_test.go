package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Engine micro-benchmarks: overhead of the speculation machinery itself
// (grouping, cloning, validation bookkeeping) around a near-free compute.

func cheapCompute(r *rng.Source, in int, s walkState) (int, walkState) {
	s.V += float64(in)
	return in, s
}

func benchInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i + 1
	}
	return in
}

func BenchmarkEngineSequential(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, nil, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{Seed: uint64(i)})
	}
}

func BenchmarkEngineSpeculative(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 64, Window: 64, RedoMax: 1, Rollback: 4,
			Workers: 8, Seed: uint64(i),
		})
	}
}

func BenchmarkEngineAdaptive(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunAdaptive(inputs, walkState{}, AdaptiveOptions{
			Options: Options{
				UseAux: true, GroupSize: 16, Window: 64, RedoMax: 1, Rollback: 4,
				Workers: 8, Seed: uint64(i),
			},
			MaxGroup: 64,
		})
	}
}

// BenchmarkEngineGroupFanout mirrors the paper's thread sweeps on the
// engine's hottest path: one speculative run per iteration, fanning its
// groups out through the sharded scheduler at each worker count. Compare
// against internal/pool's single-channel baseline benchmarks for the
// scheduler's contribution.
func BenchmarkEngineGroupFanout(b *testing.B) {
	inputs := benchInputs(1024)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", workers), func(b *testing.B) {
			p := pool.New(workers)
			defer p.Close()
			d := New(cheapCompute, sumAux, walkOps())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: 32, Window: 32, RedoMax: 1,
					Rollback: 4, Pool: p, Seed: uint64(i),
				})
			}
		})
	}
}

// BenchmarkEngineSubmitBatchVsLoop isolates the fan-out operation itself:
// the same speculative run shapes, shared pool, measured end to end — the
// batch path is what Run uses; the per-task loop is the pre-SubmitBatch
// behaviour approximated by tiny group sizes (more, smaller batches).
func BenchmarkEngineSubmitBatchVsLoop(b *testing.B) {
	inputs := benchInputs(1024)
	for _, g := range []int{8, 64} {
		b.Run(fmt.Sprintf("group=%d", g), func(b *testing.B) {
			p := pool.New(4)
			defer p.Close()
			d := New(cheapCompute, sumAux, walkOps())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: g, Window: g, Pool: p, Seed: uint64(i),
				})
			}
		})
	}
}

// BenchmarkEngineControlledSched prices the controlled scheduler against
// the nil fast path BenchmarkEngineSpeculative measures: with Sched nil
// every decision point costs one predictable branch; with a controller
// attached every admission serializes through the gate. The controlled
// number is the price of a systematic-testing run, not a production
// configuration.
func BenchmarkEngineControlledSched(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 64, Window: 64, RedoMax: 1, Rollback: 4,
			Workers: 8, Seed: uint64(i), Sched: sched.NewRandom(uint64(i)),
		})
	}
}

// BenchmarkEngineReservations prices the deterministic-reservations
// protocol on the same near-free compute as the aux benchmarks, in its
// two shapes: whole-state (nil ReserveOps — one winner per round, the
// protocol's overhead floor) and slotted (8 disjoint slots, so rounds
// commit many winners and the reservation table earns its keep).
func BenchmarkEngineReservations(b *testing.B) {
	inputs := benchInputs(1024)
	opts := Options{
		UseAux: true, Protocol: ProtocolReservations,
		GroupSize: 64, Workers: 8,
	}
	b.Run("whole-state", func(b *testing.B) {
		d := New(cheapCompute, nil, walkOps())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, walkState{}, o)
		}
	})
	b.Run("slotted", func(b *testing.B) {
		d := New(benchSlotCompute, nil, benchSlotOps()).WithReserve(ReserveOps[int, []float64]{
			NumSlots:  func(s []float64) int { return len(s) },
			Footprint: func(in int, _ []float64) []int { return []int{in % 8} },
			Merge: func(dst, src []float64, slots []int) []float64 {
				for _, sl := range slots {
					dst[sl] = src[sl]
				}
				return dst
			},
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, make([]float64, 8), o)
		}
	})
}

func benchSlotCompute(r *rng.Source, in int, s []float64) (int, []float64) {
	s[in%8] += float64(in)
	return in, s
}

func benchSlotOps() StateOps[[]float64] {
	return StateOps[[]float64]{
		Clone: func(s []float64) []float64 {
			c := make([]float64, len(s))
			copy(c, s)
			return c
		},
		MatchAny: func([]float64, [][]float64) bool { return false },
	}
}

func BenchmarkRNGSplit(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Split()
	}
}

func BenchmarkRNGNorm(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

// fingerprintWalkOps is walkOps plus the hash-first prefilter: the walk
// benchmarks' compute is noise-free, so an accepted speculative state is
// bit-equal to an original and the value's bits are a contract-clean
// digest.
func fingerprintWalkOps() StateOps[walkState] {
	ops := walkOps()
	ops.Fingerprint = func(s walkState) uint64 { return math.Float64bits(s.V) }
	return ops
}

// BenchmarkEngineWarmRun is the allocation-gate shape: a reused
// Dependence on a shared pool — the warm path where every run-scoped
// buffer (group records, lane sources, originals, output staging) comes
// from the dependence's recycled scratch. Compare BenchmarkEngineColdRun
// (fresh Dependence per run, same work): warm must hold a small fraction
// of cold allocs/op (TestWarmRunAllocations enforces ≤20%).
func BenchmarkEngineWarmRun(b *testing.B) {
	inputs := benchInputs(32)
	base := Options{UseAux: true, GroupSize: 8, Window: 8, RedoMax: 1, Rollback: 4}
	b.Run("aux", func(b *testing.B) {
		p := pool.New(4)
		defer p.Close()
		d := New(cheapCompute, sumAux, fingerprintWalkOps())
		opts := base
		opts.Pool = p
		d.Run(inputs, walkState{}, opts) // prime the recycled scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, walkState{}, o)
		}
	})
	b.Run("reservations", func(b *testing.B) {
		p := pool.New(4)
		defer p.Close()
		d := New(benchSlotCompute, nil, benchSlotOps()).WithReserve(ReserveOps[int, []float64]{
			NumSlots:  func(s []float64) int { return len(s) },
			Footprint: func(in int, _ []float64) []int { return []int{in % 8} },
			Merge: func(dst, src []float64, slots []int) []float64 {
				for _, sl := range slots {
					dst[sl] = src[sl]
				}
				return dst
			},
		})
		opts := base
		opts.Protocol = ProtocolReservations
		opts.Pool = p
		d.Run(inputs, make([]float64, 8), opts)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Seed = uint64(i)
			d.Run(inputs, make([]float64, 8), o)
		}
	})
}

// BenchmarkEngineColdRun is BenchmarkEngineWarmRun/aux with a fresh
// Dependence every iteration: the seed path a one-shot caller pays, and
// the denominator of the warm-path allocation gate.
func BenchmarkEngineColdRun(b *testing.B) {
	inputs := benchInputs(32)
	p := pool.New(4)
	defer p.Close()
	opts := Options{UseAux: true, GroupSize: 8, Window: 8, RedoMax: 1, Rollback: 4, Pool: p}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(cheapCompute, sumAux, fingerprintWalkOps())
		o := opts
		o.Seed = uint64(i)
		d.Run(inputs, walkState{}, o)
	}
}

// BenchmarkEngineGrouping drives the grouping-dominant shape: 1024 inputs
// in 128 groups of 8 around a near-free compute, warm. Input groups are
// (start, end) index pairs into the caller's slice — never copied — so
// allocs/op here prices pure per-group machinery (recycled group records,
// latches and lane sources), not data movement.
func BenchmarkEngineGrouping(b *testing.B) {
	inputs := benchInputs(1024)
	p := pool.New(4)
	defer p.Close()
	d := New(cheapCompute, sumAux, fingerprintWalkOps())
	opts := Options{UseAux: true, GroupSize: 8, Window: 8, RedoMax: 1, Rollback: 4, Pool: p}
	d.Run(inputs, walkState{}, opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := opts
		o.Seed = uint64(i)
		d.Run(inputs, walkState{}, o)
	}
}

// BenchmarkMatchAnyFingerprint prices one acceptance attempt on the
// hash-first path: a fingerprint hit falls through to the deep MatchAny
// scan, a miss rejects on the prefilter probe alone. Both must be
// allocation-free — they run inside every boundary validation.
func BenchmarkMatchAnyFingerprint(b *testing.B) {
	d := New(cheapCompute, nil, fingerprintWalkOps())
	originals := make([]walkState, 8)
	origFPs := make([]uint64, 8)
	for i := range originals {
		originals[i] = walkState{V: float64(i)}
		origFPs[i] = math.Float64bits(originals[i].V)
	}
	var st Stats
	b.Run("hit", func(b *testing.B) {
		spec := walkState{V: 7}
		fp := math.Float64bits(spec.V)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.acceptAttempt(spec, fp, true, originals, origFPs, &st, nil)
		}
	})
	b.Run("miss", func(b *testing.B) {
		spec := walkState{V: 99.5}
		fp := math.Float64bits(spec.V)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.acceptAttempt(spec, fp, true, originals, origFPs, &st, nil)
		}
	})
}
