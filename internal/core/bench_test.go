package core

import (
	"testing"

	"repro/internal/rng"
)

// Engine micro-benchmarks: overhead of the speculation machinery itself
// (grouping, cloning, validation bookkeeping) around a near-free compute.

func cheapCompute(r *rng.Source, in int, s walkState) (int, walkState) {
	s.V += float64(in)
	return in, s
}

func benchInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i + 1
	}
	return in
}

func BenchmarkEngineSequential(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, nil, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{Seed: uint64(i)})
	}
}

func BenchmarkEngineSpeculative(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 64, Window: 64, RedoMax: 1, Rollback: 4,
			Workers: 8, Seed: uint64(i),
		})
	}
}

func BenchmarkEngineAdaptive(b *testing.B) {
	inputs := benchInputs(1024)
	d := New(cheapCompute, sumAux, walkOps())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.RunAdaptive(inputs, walkState{}, AdaptiveOptions{
			Options: Options{
				UseAux: true, GroupSize: 16, Window: 64, RedoMax: 1, Rollback: 4,
				Workers: 8, Seed: uint64(i),
			},
			MaxGroup: 64,
		})
	}
}

func BenchmarkRNGSplit(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Split()
	}
}

func BenchmarkRNGNorm(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
