package core

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/sched"
)

var updateSchedules = flag.Bool("update-schedules", false,
	"re-record the golden adversarial schedules in testdata/schedules")

// Golden adversarial schedules: interleavings random exploration rarely
// (or never) produces, committed as replayable traces. Each golden couples
// a fixed engine harness with a trace crafted from a recorded run by
// reordering entries within the feasibility rules (per-lane program order
// is preserved; cross-lane order is the schedule). `go test -run
// TestGoldenSchedules -update-schedules ./internal/core` re-records them.

const goldenDir = "../../testdata/schedules"

// goldenHarness runs the fixed Workers=1 engine configuration for a
// golden under the given controller and returns the run's rendering and
// stats. Workers=1 keeps every decision point engine-owned (a one-shard
// pool has no steal alternatives), so crafted traces stay exactly
// replayable.
func goldenHarness(aux Aux[int, walkState], timeout time.Duration) func(ctl sched.Controller) (string, Stats) {
	inputs := seqInputs(24)
	return func(ctl sched.Controller) (string, Stats) {
		d := New(deterministicCompute, aux, walkOps())
		outs, final, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 4, Window: 24, Workers: 1,
			RedoMax: 1, Rollback: 4, Seed: 77,
			GroupTimeout: timeout, Sched: ctl,
		})
		return renderRun(outs, final), st
	}
}

func goldenSequential(timeout time.Duration) string {
	inputs := seqInputs(24)
	d := New(deterministicCompute, nil, walkOps())
	outs, final, _ := d.Run(inputs, walkState{}, Options{Seed: 77})
	_ = timeout
	return renderRun(outs, final)
}

// craftAllFinishBeforeValidate reorders a recorded exact-aux run so every
// group-lane admission recorded after the coordinator's first validate is
// pulled ahead of it: maximal validation laziness, with the whole
// speculative window complete before any boundary is checked. Entries
// before the first validate keep their recorded positions (they include
// the coordinator waits the groups raced against), so per-lane program
// order — the feasibility invariant — is untouched.
func craftAllFinishBeforeValidate(rec *sched.Trace) *sched.Trace {
	out := &sched.Trace{Seed: rec.Seed, Controller: "crafted",
		Note: "all groups finish before the first validate"}
	firstValidate := -1
	for i, e := range rec.Entries {
		if e.Point == sched.PointValidate && e.Lane == 0 {
			firstValidate = i
			break
		}
	}
	if firstValidate < 0 {
		return out
	}
	out.Entries = append(out.Entries, rec.Entries[:firstValidate]...)
	for _, e := range rec.Entries[firstValidate:] {
		if e.Lane > 0 {
			out.Entries = append(out.Entries, e)
		}
	}
	for _, e := range rec.Entries[firstValidate:] {
		if e.Lane <= 0 {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// craftLateGroupsPastSquash holds every lane >= fromLane back until after
// the coordinator's squash: the squashed groups observe the abort before
// running a single step, so each one's admissions collapse to exactly
// group-start, one group-step (which sees the flag and breaks), and
// group-finish — the crafted trace substitutes that triple for whatever
// the lanes recorded. All held lanes move together because one worker
// executes their tasks in queue order: freeing lane L while holding lane
// L-1 would be infeasible.
func craftLateGroupsPastSquash(rec *sched.Trace, fromLane int) *sched.Trace {
	out := &sched.Trace{Seed: rec.Seed, Controller: "crafted",
		Note: "groups admitted only after the squash they must observe"}
	squash := -1
	lanes := map[int]bool{}
	for i, e := range rec.Entries {
		if squash < 0 && e.Point == sched.PointSquash {
			squash = i
		}
		if e.Lane >= fromLane {
			lanes[e.Lane] = true
		}
	}
	if squash < 0 {
		return out
	}
	ordered := make([]int, 0, len(lanes))
	for l := range lanes {
		ordered = append(ordered, l)
	}
	sort.Ints(ordered)
	for i, e := range rec.Entries {
		if e.Lane >= fromLane {
			continue
		}
		out.Entries = append(out.Entries, e)
		if i == squash {
			for _, l := range ordered {
				out.Entries = append(out.Entries,
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupStart, Lane: l},
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupStep, Lane: l},
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupFinish, Lane: l},
				)
			}
		}
	}
	return out
}

func TestGoldenSchedules(t *testing.T) {
	exactHarness := goldenHarness(exactAuxFor(seqInputs(24)), 0)
	badHarness := goldenHarness(badAux, 0)
	timeoutHarness := goldenHarness(exactAuxFor(seqInputs(24)), time.Millisecond)

	goldens := []struct {
		name   string
		record func(t *testing.T) *sched.Trace
		check  func(t *testing.T, tr *sched.Trace)
	}{
		{
			name: "all-finish-before-validate",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(3, sched.WithRecording())
				exactHarness(rec)
				return craftAllFinishBeforeValidate(rec.TraceCopy())
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := exactHarness(rep)
				if want := goldenSequential(0); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.Aborts != 0 || st.Matches != st.Groups-1 {
					t.Fatalf("lazy validation changed outcomes: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "squash-before-first-step",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(4, sched.WithRecording())
				_, st := badHarness(rec)
				if st.Aborts == 0 {
					t.Fatal("bad-aux recording did not abort")
				}
				return craftLateGroupsPastSquash(rec.TraceCopy(), 3)
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := badHarness(rep)
				if want := goldenSequential(0); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.Aborts == 0 || st.SquashedInputs == 0 || st.FallbackInputs == 0 {
					t.Fatalf("crafted squash did not exercise abort/fallback: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "forced-timeout-squash",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(5, sched.WithRecording(), sched.WithForcedTimeouts(1))
				_, st := timeoutHarness(rec)
				if st.TimedOutGroups == 0 {
					t.Fatal("forced-timeout recording timed out no groups")
				}
				tr := rec.TraceCopy()
				tr.Note = "every deadline check fires: timeout-vs-validate race, timeout wins"
				return tr
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := timeoutHarness(rep)
				if want := goldenSequential(time.Millisecond); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.TimedOutGroups == 0 || st.FallbackInputs == 0 {
					t.Fatalf("replay lost the forced timeout: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "breaker-halfopen-denied",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(1, sched.WithRecording())
				if halfOpenRace(t, rec) {
					t.Fatal("natural half-open recording denied the probe")
				}
				return craftDeniedTrace(rec.TraceCopy())
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				if !halfOpenRace(t, rep) {
					t.Fatal("crafted schedule did not deny the half-open probe")
				}
				if rep.Stalls() != 0 {
					t.Fatalf("crafted replay needed %d stall force-admissions", rep.Stalls())
				}
			},
		},
	}

	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			path := filepath.Join(goldenDir, g.name+".trace")
			if *updateSchedules {
				tr := g.record(t)
				if len(tr.Entries) == 0 {
					t.Fatalf("recorded empty trace for %s", g.name)
				}
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := tr.WriteFile(path); err != nil {
					t.Fatal(err)
				}
			}
			tr, err := sched.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (generate with -update-schedules)", err)
			}
			g.check(t, tr)
		})
	}
}

func assertExactReplay(t *testing.T, rep *sched.Replay) {
	t.Helper()
	if rep.Stalls() != 0 {
		t.Fatalf("replay needed %d stall force-admissions", rep.Stalls())
	}
	if rep.Divergences() != 0 || rep.Remaining() != 0 {
		t.Fatalf("replay not exact: %d divergences, %d entries unconsumed",
			rep.Divergences(), rep.Remaining())
	}
}
