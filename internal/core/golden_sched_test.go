package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/sched"
)

var updateSchedules = flag.Bool("update-schedules", false,
	"re-record the golden adversarial schedules in testdata/schedules")

// Golden adversarial schedules: interleavings random exploration rarely
// (or never) produces, committed as replayable traces. Each golden couples
// a fixed engine harness with a trace crafted from a recorded run by
// reordering entries within the feasibility rules (per-lane program order
// is preserved; cross-lane order is the schedule). `go test -run
// TestGoldenSchedules -update-schedules ./internal/core` re-records them.

const goldenDir = "../../testdata/schedules"

// goldenHarness runs the fixed Workers=1 engine configuration for a
// golden under the given controller and returns the run's rendering and
// stats. Workers=1 keeps every decision point engine-owned (a one-shard
// pool has no steal alternatives), so crafted traces stay exactly
// replayable.
func goldenHarness(aux Aux[int, walkState], timeout time.Duration) func(ctl sched.Controller) (string, Stats) {
	inputs := seqInputs(24)
	return func(ctl sched.Controller) (string, Stats) {
		d := New(deterministicCompute, aux, walkOps())
		outs, final, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 4, Window: 24, Workers: 1,
			RedoMax: 1, Rollback: 4, Seed: 77,
			GroupTimeout: timeout, Sched: ctl,
		})
		return renderRun(outs, final), st
	}
}

func goldenSequential(timeout time.Duration) string {
	inputs := seqInputs(24)
	d := New(deterministicCompute, nil, walkOps())
	outs, final, _ := d.Run(inputs, walkState{}, Options{Seed: 77})
	_ = timeout
	return renderRun(outs, final)
}

// craftAllFinishBeforeValidate reorders a recorded exact-aux run so every
// group-lane admission recorded after the coordinator's first validate is
// pulled ahead of it: maximal validation laziness, with the whole
// speculative window complete before any boundary is checked. Entries
// before the first validate keep their recorded positions (they include
// the coordinator waits the groups raced against), so per-lane program
// order — the feasibility invariant — is untouched.
func craftAllFinishBeforeValidate(rec *sched.Trace) *sched.Trace {
	out := &sched.Trace{Seed: rec.Seed, Controller: "crafted",
		Note: "all groups finish before the first validate"}
	firstValidate := -1
	for i, e := range rec.Entries {
		if e.Point == sched.PointValidate && e.Lane == 0 {
			firstValidate = i
			break
		}
	}
	if firstValidate < 0 {
		return out
	}
	out.Entries = append(out.Entries, rec.Entries[:firstValidate]...)
	for _, e := range rec.Entries[firstValidate:] {
		if e.Lane > 0 {
			out.Entries = append(out.Entries, e)
		}
	}
	for _, e := range rec.Entries[firstValidate:] {
		if e.Lane <= 0 {
			out.Entries = append(out.Entries, e)
		}
	}
	return out
}

// craftLateGroupsPastSquash holds every lane >= fromLane back until after
// the coordinator's squash: the squashed groups observe the abort before
// running a single step, so each one's admissions collapse to exactly
// group-start, one group-step (which sees the flag and breaks), and
// group-finish — the crafted trace substitutes that triple for whatever
// the lanes recorded. All held lanes move together because one worker
// executes their tasks in queue order: freeing lane L while holding lane
// L-1 would be infeasible.
func craftLateGroupsPastSquash(rec *sched.Trace, fromLane int) *sched.Trace {
	out := &sched.Trace{Seed: rec.Seed, Controller: "crafted",
		Note: "groups admitted only after the squash they must observe"}
	squash := -1
	lanes := map[int]bool{}
	for i, e := range rec.Entries {
		if squash < 0 && e.Point == sched.PointSquash {
			squash = i
		}
		if e.Lane >= fromLane {
			lanes[e.Lane] = true
		}
	}
	if squash < 0 {
		return out
	}
	ordered := make([]int, 0, len(lanes))
	for l := range lanes {
		ordered = append(ordered, l)
	}
	sort.Ints(ordered)
	for i, e := range rec.Entries {
		if e.Lane >= fromLane {
			continue
		}
		out.Entries = append(out.Entries, e)
		if i == squash {
			for _, l := range ordered {
				out.Entries = append(out.Entries,
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupStart, Lane: l},
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupStep, Lane: l},
					sched.Entry{Kind: sched.KindYield, Point: sched.PointGroupFinish, Lane: l},
				)
			}
		}
	}
	return out
}

// resvGoldenHarness runs the reservations protocol at Workers=2 over an
// external, uncontrolled pool: the recorded decision points are then only
// the engine's own reserve/check/commit yields, whose counts are
// schedule-independent (write-min is commutative, so the pending sets and
// round structure never depend on admission order) — which is what makes
// crafted traces exactly replayable at real parallelism. A nil footprint
// uses the built-in whole-state slot (every lane reserves slot 0).
func resvGoldenHarness(fp func(in int) []int) func(ctl sched.Controller) (string, Stats) {
	inputs := seqInputs(12)
	compute := func(_ *rng.Source, in int, s []float64) (int, []float64) {
		s[in%2] += float64(in)
		return in * 2, s
	}
	ops := StateOps[[]float64]{
		Clone: func(s []float64) []float64 {
			cp := make([]float64, len(s))
			copy(cp, s)
			return cp
		},
	}
	return func(ctl sched.Controller) (string, Stats) {
		p := pool.NewSeeded(2, 7)
		defer p.Close()
		d := New(compute, nil, ops)
		if fp != nil {
			d.WithReserve(ReserveOps[int, []float64]{
				NumSlots:  func(initial []float64) int { return len(initial) },
				Footprint: func(in int, _ []float64) []int { return fp(in) },
				Merge: func(dst, src []float64, slots []int) []float64 {
					for _, sl := range slots {
						dst[sl] = src[sl]
					}
					return dst
				},
			})
		}
		opts := Options{
			UseAux: true, Protocol: ProtocolReservations,
			GroupSize: 6, Workers: 2, Seed: 77, Pool: p, Sched: ctl,
		}
		if ctl == nil {
			opts.UseAux = false // sequential reference, same shape
		}
		outs, final, st := d.Run(inputs, make([]float64, 2), opts)
		return fmt.Sprintf("%v|%v", outs, final), st
	}
}

// craftWaveLanesDescending reorders every maximal consecutive run of
// entries at the given point so higher lanes are admitted first. Per-lane
// program order is untouched (the sort is stable and only crosses lanes),
// and a run of same-point entries is always one wave — waves are barriers,
// so two waves of the same point are separated by the other phase's
// entries — which keeps the crafted trace feasible.
func craftWaveLanesDescending(rec *sched.Trace, point sched.Point, note string) *sched.Trace {
	out := &sched.Trace{Seed: rec.Seed, Controller: "crafted", Note: note}
	i := 0
	for i < len(rec.Entries) {
		if rec.Entries[i].Point != point {
			out.Entries = append(out.Entries, rec.Entries[i])
			i++
			continue
		}
		j := i
		for j < len(rec.Entries) && rec.Entries[j].Point == point {
			j++
		}
		run := append([]sched.Entry{}, rec.Entries[i:j]...)
		sort.SliceStable(run, func(a, b int) bool { return run[a].Lane > run[b].Lane })
		out.Entries = append(out.Entries, run...)
		i = j
	}
	return out
}

func TestGoldenSchedules(t *testing.T) {
	exactHarness := goldenHarness(exactAuxFor(seqInputs(24)), 0)
	badHarness := goldenHarness(badAux, 0)
	timeoutHarness := goldenHarness(exactAuxFor(seqInputs(24)), time.Millisecond)

	goldens := []struct {
		name   string
		record func(t *testing.T) *sched.Trace
		check  func(t *testing.T, tr *sched.Trace)
	}{
		{
			name: "all-finish-before-validate",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(3, sched.WithRecording())
				exactHarness(rec)
				return craftAllFinishBeforeValidate(rec.TraceCopy())
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := exactHarness(rep)
				if want := goldenSequential(0); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.Aborts != 0 || st.Matches != st.Groups-1 {
					t.Fatalf("lazy validation changed outcomes: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "squash-before-first-step",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(4, sched.WithRecording())
				_, st := badHarness(rec)
				if st.Aborts == 0 {
					t.Fatal("bad-aux recording did not abort")
				}
				return craftLateGroupsPastSquash(rec.TraceCopy(), 3)
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := badHarness(rep)
				if want := goldenSequential(0); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.Aborts == 0 || st.SquashedInputs == 0 || st.FallbackInputs == 0 {
					t.Fatalf("crafted squash did not exercise abort/fallback: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "forced-timeout-squash",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(5, sched.WithRecording(), sched.WithForcedTimeouts(1))
				_, st := timeoutHarness(rec)
				if st.TimedOutGroups == 0 {
					t.Fatal("forced-timeout recording timed out no groups")
				}
				tr := rec.TraceCopy()
				tr.Note = "every deadline check fires: timeout-vs-validate race, timeout wins"
				return tr
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				got, st := timeoutHarness(rep)
				if want := goldenSequential(time.Millisecond); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				if st.TimedOutGroups == 0 || st.FallbackInputs == 0 {
					t.Fatalf("replay lost the forced timeout: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			// Every input reserves the same slot (the built-in whole-state
			// footprint): the crafted trace admits the higher lane's entire
			// reserve half before the lower lane writes a single cell, so
			// write-min sees the worst arrival order every round. The
			// winner set — and therefore the output — must not move.
			name: "resv-all-lanes-reserve-same-slot",
			record: func(t *testing.T) *sched.Trace {
				h := resvGoldenHarness(nil)
				rec := sched.NewRandom(6, sched.WithRecording())
				_, st := h(rec)
				if st.Rounds == 0 {
					t.Fatal("recording never entered the reservations protocol")
				}
				return craftWaveLanesDescending(rec.TraceCopy(), sched.PointReserve,
					"whole-state conflict: high lane reserves fully before low lane")
			},
			check: func(t *testing.T, tr *sched.Trace) {
				h := resvGoldenHarness(nil)
				rep := sched.NewReplay(tr)
				got, st := h(rep)
				if want, _ := h(nil); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				// Total conflict commits exactly one input per round: each
				// 6-input group needs 6 rounds and 5+4+3+2+1 carry-forwards.
				if st.Rounds != 12 || st.ReservationConflicts != 30 {
					t.Fatalf("adversarial reserve order changed the round structure: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			// Alternating two-slot footprints: every round commits one
			// winner per slot while the rest carry forward. The crafted
			// trace admits the losing lane's whole check half first, so
			// every carry-forward decision lands before the winners even
			// check their slots — the commit races the carry-forward and
			// must not see it.
			name: "resv-commit-racing-carry-forward",
			record: func(t *testing.T) *sched.Trace {
				h := resvGoldenHarness(func(in int) []int { return []int{in % 2} })
				rec := sched.NewRandom(8, sched.WithRecording())
				_, st := h(rec)
				if st.ReservationConflicts == 0 {
					t.Fatal("recording saw no reservation conflicts")
				}
				return craftWaveLanesDescending(rec.TraceCopy(), sched.PointReserveCheck,
					"losers' checks admitted before the winners' compute-and-commit")
			},
			check: func(t *testing.T, tr *sched.Trace) {
				h := resvGoldenHarness(func(in int) []int { return []int{in % 2} })
				rep := sched.NewReplay(tr)
				got, st := h(rep)
				if want, _ := h(nil); got != want {
					t.Fatalf("output diverged:\n got %s\nwant %s", got, want)
				}
				// Two winners per round (one per slot): each 6-input group
				// resolves in 3 rounds with 4+2 carry-forwards.
				if st.Rounds != 6 || st.ReservationConflicts != 12 {
					t.Fatalf("adversarial check order changed the round structure: %+v", st)
				}
				assertExactReplay(t, rep)
			},
		},
		{
			name: "breaker-halfopen-denied",
			record: func(t *testing.T) *sched.Trace {
				rec := sched.NewRandom(1, sched.WithRecording())
				if halfOpenRace(t, rec) {
					t.Fatal("natural half-open recording denied the probe")
				}
				return craftDeniedTrace(rec.TraceCopy())
			},
			check: func(t *testing.T, tr *sched.Trace) {
				rep := sched.NewReplay(tr)
				if !halfOpenRace(t, rep) {
					t.Fatal("crafted schedule did not deny the half-open probe")
				}
				if rep.Stalls() != 0 {
					t.Fatalf("crafted replay needed %d stall force-admissions", rep.Stalls())
				}
			},
		},
	}

	for _, g := range goldens {
		g := g
		t.Run(g.name, func(t *testing.T) {
			path := filepath.Join(goldenDir, g.name+".trace")
			if *updateSchedules {
				tr := g.record(t)
				if len(tr.Entries) == 0 {
					t.Fatalf("recorded empty trace for %s", g.name)
				}
				if err := os.MkdirAll(goldenDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := tr.WriteFile(path); err != nil {
					t.Fatal(err)
				}
			}
			tr, err := sched.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (generate with -update-schedules)", err)
			}
			g.check(t, tr)
		})
	}
}

func assertExactReplay(t *testing.T, rep *sched.Replay) {
	t.Helper()
	if rep.Stalls() != 0 {
		t.Fatalf("replay needed %d stall force-admissions", rep.Stalls())
	}
	if rep.Divergences() != 0 || rep.Remaining() != 0 {
		t.Fatalf("replay not exact: %d divergences, %d entries unconsumed",
			rep.Divergences(), rep.Remaining())
	}
}
