package core

// Adaptive execution extends the paper's model along its own future-work
// axis (§6: "this work is the first step in exploiting state dependences"):
// instead of a group cardinality fixed at compile time by the autotuner,
// the runtime adjusts it online from observed validation outcomes. The
// input vector is processed in chunks; each chunk runs under the §3.1
// model with the current group size, and the controller widens groups
// while speculation keeps succeeding (less validation overhead) and
// narrows them after failures (smaller squash windows).

// AdaptiveOptions configures RunAdaptive.
type AdaptiveOptions struct {
	// Options is the base configuration; its GroupSize seeds the
	// controller.
	Options
	// MinGroup and MaxGroup bound the controller (defaults 2 and 64).
	MinGroup int
	MaxGroup int
	// ChunkGroups is how many groups form one adaptation chunk
	// (default 4).
	ChunkGroups int
}

// AdaptiveStats extends Stats with the controller's trajectory.
type AdaptiveStats struct {
	Stats
	// GroupSizes is the group cardinality used by each chunk.
	GroupSizes []int
	// Chunks is the number of chunks processed.
	Chunks int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.MinGroup < 1 {
		o.MinGroup = 2
	}
	if o.MaxGroup < o.MinGroup {
		o.MaxGroup = 64
	}
	if o.ChunkGroups < 1 {
		o.ChunkGroups = 4
	}
	if o.GroupSize < o.MinGroup {
		o.GroupSize = o.MinGroup
	}
	if o.GroupSize > o.MaxGroup {
		o.GroupSize = o.MaxGroup
	}
	return o
}

// RunAdaptive processes inputs chunk by chunk, adapting the group size
// between chunks: after a chunk whose speculation fully succeeded the
// group doubles (capped), after any abort it halves (floored), and on
// partial success (redos but no abort) it holds. Outputs are identical in
// structure to Run's: in input order, quality-preserved.
func (d *Dependence[I, S, O]) RunAdaptive(inputs []I, initial S, opts AdaptiveOptions) ([]O, S, AdaptiveStats) {
	opts = opts.withDefaults()
	var ast AdaptiveStats
	state := d.ops.Clone(initial)
	outs := make([]O, 0, len(inputs))
	group := opts.GroupSize
	pos := 0
	chunkSeed := opts.Seed

	for pos < len(inputs) {
		chunkLen := group * opts.ChunkGroups
		if chunkLen > len(inputs)-pos {
			chunkLen = len(inputs) - pos
		}
		o := opts.Options
		o.GroupSize = group
		o.Seed = chunkSeed
		chunkSeed = chunkSeed*6364136223846793005 + 1442695040888963407

		chunkOuts, final, st := d.Run(inputs[pos:pos+chunkLen], state, o)
		outs = append(outs, chunkOuts...)
		state = final
		pos += chunkLen
		accumulate(&ast.Stats, st)
		ast.GroupSizes = append(ast.GroupSizes, group)
		ast.Chunks++

		// Adapt.
		switch {
		case st.Aborts > 0:
			group /= 2
			if group < opts.MinGroup {
				group = opts.MinGroup
			}
		case st.Matches > 0 && st.Redos == 0:
			group *= 2
			if group > opts.MaxGroup {
				group = opts.MaxGroup
			}
		}
	}
	ast.Inputs = len(inputs)
	return outs, state, ast
}

// accumulate folds one run's statistics into the aggregate (Inputs is set
// by the caller; Groups and the counters add).
func accumulate(agg *Stats, st Stats) {
	agg.Groups += st.Groups
	agg.Matches += st.Matches
	agg.FingerprintHits += st.FingerprintHits
	agg.FingerprintMisses += st.FingerprintMisses
	agg.Redos += st.Redos
	agg.Aborts += st.Aborts
	agg.SpeculativeCommits += st.SpeculativeCommits
	agg.SquashedInputs += st.SquashedInputs
	agg.FallbackInputs += st.FallbackInputs
	agg.Invocations += st.Invocations
	agg.UsefulInvocations += st.UsefulInvocations
	agg.AuxCalls += st.AuxCalls
	agg.AuxInputs += st.AuxInputs
	agg.PanickedGroups += st.PanickedGroups
	agg.Panics = append(agg.Panics, st.Panics...)
	agg.TimedOutGroups += st.TimedOutGroups
	agg.BreakerDenied += st.BreakerDenied
	agg.Steals += st.Steals
	agg.LocalHits += st.LocalHits
	if st.QueueDepthPeak > agg.QueueDepthPeak {
		agg.QueueDepthPeak = st.QueueDepthPeak
	}
}
