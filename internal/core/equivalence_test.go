package core

import (
	"fmt"
	"testing"
)

// Metamorphic speculation/sequential equivalence: with a perfectly-matching
// auxiliary function and RedoMax=0, a speculative run must commit outputs
// byte-identical to the sequential baseline for the same seed, across
// GroupSize/Window combinations and worker counts. This is the engine's
// quality-preservation contract in its purest form — when every validation
// succeeds, speculation must be observationally invisible.

// renderRun serializes a run's observable result (outputs and final state)
// to a byte string for exact comparison.
func renderRun(outs []int, final walkState) string {
	return fmt.Sprintf("%v|%.17g", outs, final.V)
}

func TestSpeculativeEquivalentToSequential(t *testing.T) {
	inputs := seqInputs(96)
	for _, g := range []int{2, 3, 4, 8, 16, 32} {
		for _, win := range []int{1, 2, 4, 8, 16} {
			for _, workers := range []int{1, 2, 4, 8} {
				seed := uint64(g*1000 + win*10 + workers)

				seq := New(deterministicCompute, nil, walkOps())
				seqOuts, seqFinal, seqSt := seq.Run(inputs, walkState{}, Options{Seed: seed})
				if seqSt.Groups != 1 {
					t.Fatalf("baseline not sequential: %d groups", seqSt.Groups)
				}

				d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
				outs, final, st := d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: g, Window: win, RedoMax: 0,
					Workers: workers, Seed: seed,
				})

				name := fmt.Sprintf("g=%d win=%d workers=%d", g, win, workers)
				if st.Aborts != 0 {
					t.Fatalf("%s: perfect aux aborted %d times (%+v)", name, st.Aborts, st)
				}
				if st.Redos != 0 {
					t.Fatalf("%s: redos with RedoMax=0: %d", name, st.Redos)
				}
				if want := st.Groups - 1; st.Matches != want {
					t.Fatalf("%s: matches %d, want %d", name, st.Matches, want)
				}
				if got, want := renderRun(outs, final), renderRun(seqOuts, seqFinal); got != want {
					t.Fatalf("%s: speculative run diverged from sequential:\n got %s\nwant %s",
						name, got, want)
				}
				if st.SpeculativeCommits != len(inputs)-g {
					t.Fatalf("%s: speculative commits %d, want %d",
						name, st.SpeculativeCommits, len(inputs)-g)
				}
			}
		}
	}
}

// TestStreamEquivalence repeats the metamorphic check through the streaming
// entry point: emitted (index, output) pairs must reproduce the sequential
// run's outputs in input order.
func TestStreamEquivalence(t *testing.T) {
	inputs := seqInputs(64)
	for _, g := range []int{4, 8} {
		seed := uint64(7 + g)
		seq := New(deterministicCompute, nil, walkOps())
		seqOuts, _, _ := seq.Run(inputs, walkState{}, Options{Seed: seed})

		d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
		got := make([]int, len(inputs))
		seen := make([]bool, len(inputs))
		outs, _, st := d.RunStream(inputs, walkState{}, Options{
			UseAux: true, GroupSize: g, Window: 8, Workers: 4, Seed: seed,
		}, func(i int, o int) {
			got[i] = o
			seen[i] = true
		})
		if st.Aborts != 0 {
			t.Fatalf("g=%d: aborted", g)
		}
		for i := range seen {
			if !seen[i] {
				t.Fatalf("g=%d: output %d never emitted", g, i)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(seqOuts) || fmt.Sprint(outs) != fmt.Sprint(seqOuts) {
			t.Fatalf("g=%d: stream outputs diverged", g)
		}
	}
}
