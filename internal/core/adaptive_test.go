package core

import (
	"testing"

	"repro/internal/rng"
)

// sumAux rebuilds the walk state exactly whenever the window covers every
// chunk input before the group: spec = init + sum(recent). Unlike
// exactAuxFor it needs no global positions, so it works under RunAdaptive's
// chunking.
func sumAux(_ *rng.Source, init walkState, recent []int) walkState {
	s := init
	for _, v := range recent {
		s.V += float64(v)
	}
	return s
}

func adaptiveOpts(seed uint64) AdaptiveOptions {
	return AdaptiveOptions{
		Options: Options{
			UseAux: true, GroupSize: 2, Window: 8, RedoMax: 2, Rollback: 2,
			Workers: 4, Seed: seed,
		},
		MinGroup: 2, MaxGroup: 16, ChunkGroups: 2,
	}
}

func TestAdaptivePreservesOutputs(t *testing.T) {
	inputs := seqInputs(60)
	d := New(deterministicCompute, sumAux, walkOps())
	outs, final, ast := d.RunAdaptive(inputs, walkState{}, adaptiveOpts(1))
	checkOutputs(t, outs, wantOutputs(inputs))
	if final.V != 1830 {
		t.Fatalf("final: %v", final.V)
	}
	if ast.Inputs != 60 || ast.Chunks < 2 {
		t.Fatalf("stats: %+v", ast)
	}
}

func TestAdaptiveWidensOnSuccess(t *testing.T) {
	// Perfect aux (as long as the window covers the chunk prefix): the
	// controller should widen groups well beyond the seed size.
	inputs := seqInputs(120)
	d := New(deterministicCompute, sumAux, walkOps())
	o := adaptiveOpts(2)
	o.MaxGroup = 8 // window 8 stays exact up to this group size
	_, _, ast := d.RunAdaptive(inputs, walkState{}, o)
	if len(ast.GroupSizes) < 2 {
		t.Fatalf("chunks: %v", ast.GroupSizes)
	}
	widest := 0
	for _, g := range ast.GroupSizes {
		if g > widest {
			widest = g
		}
	}
	if widest <= ast.GroupSizes[0] {
		t.Fatalf("group size did not widen: %v", ast.GroupSizes)
	}
	if widest > 8 {
		t.Fatalf("cap exceeded: %v", ast.GroupSizes)
	}
}

func TestAdaptiveNarrowsOnAborts(t *testing.T) {
	// Hopeless aux: every chunk aborts; the controller should pin the
	// group at the floor rather than keep wasting wide groups.
	inputs := seqInputs(80)
	d := New(deterministicCompute, badAux, walkOps())
	opts := adaptiveOpts(3)
	opts.GroupSize = 16
	outs, _, ast := d.RunAdaptive(inputs, walkState{}, opts)
	checkOutputs(t, outs, wantOutputs(inputs))
	last := ast.GroupSizes[len(ast.GroupSizes)-1]
	if last != opts.MinGroup {
		t.Fatalf("group did not narrow to floor: %v", ast.GroupSizes)
	}
	if ast.Aborts == 0 {
		t.Fatalf("expected aborts: %+v", ast.Stats)
	}
}

func TestAdaptiveMonotoneChunkBounds(t *testing.T) {
	inputs := seqInputs(50)
	d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(1.0))
	_, _, ast := d.RunAdaptive(inputs, walkState{}, adaptiveOpts(7))
	for i, g := range ast.GroupSizes {
		if g < 2 || g > 16 {
			t.Fatalf("chunk %d group %d out of bounds", i, g)
		}
	}
}

func TestAdaptiveDeterministicPerSeed(t *testing.T) {
	inputs := seqInputs(48)
	run := func() ([]int, AdaptiveStats) {
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(1.0))
		o, _, ast := d.RunAdaptive(inputs, walkState{}, adaptiveOpts(9))
		return o, ast
	}
	o1, a1 := run()
	o2, a2 := run()
	checkOutputs(t, o1, o2)
	if len(a1.GroupSizes) != len(a2.GroupSizes) {
		t.Fatal("trajectories differ")
	}
	for i := range a1.GroupSizes {
		if a1.GroupSizes[i] != a2.GroupSizes[i] {
			t.Fatalf("trajectory diverged at chunk %d", i)
		}
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	o := AdaptiveOptions{}.withDefaults()
	if o.MinGroup != 2 || o.MaxGroup != 64 || o.ChunkGroups != 4 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.GroupSize != 2 {
		t.Fatalf("seeded group: %d", o.GroupSize)
	}
	big := AdaptiveOptions{Options: Options{GroupSize: 1000}}.withDefaults()
	if big.GroupSize != 64 {
		t.Fatalf("clamp: %d", big.GroupSize)
	}
}

func TestAdaptiveEmptyInputs(t *testing.T) {
	d := New(deterministicCompute, nil, walkOps())
	outs, final, ast := d.RunAdaptive(nil, walkState{V: 3}, adaptiveOpts(1))
	if len(outs) != 0 || final.V != 3 || ast.Chunks != 0 {
		t.Fatalf("empty run: %d outputs, final %v, %+v", len(outs), final.V, ast)
	}
}

func TestAdaptiveBeatsFixedOnRegimeChange(t *testing.T) {
	// A workload whose aux works only in the second half: adaptive
	// shrinks groups during the failing regime and widens afterwards,
	// wasting less squashed work than a wide fixed configuration.
	inputs := seqInputs(96)
	regimeAux := func(r *rng.Source, init walkState, recent []int) walkState {
		if len(recent) > 0 && recent[len(recent)-1] <= 48 {
			return badAux(r, init, recent)
		}
		return sumAux(r, init, recent)
	}
	fixedWaste := func() int64 {
		d := New(deterministicCompute, regimeAux, walkOps())
		o := adaptiveOpts(5).Options
		o.GroupSize = 8
		_, _, st := d.Run(inputs, walkState{}, o)
		return st.Invocations - st.UsefulInvocations
	}()
	adaptiveWaste := func() int64 {
		d := New(deterministicCompute, regimeAux, walkOps())
		o := adaptiveOpts(5)
		o.GroupSize = 8
		o.MaxGroup = 8
		_, _, ast := d.RunAdaptive(inputs, walkState{}, o)
		return ast.Invocations - ast.UsefulInvocations
	}()
	// The fixed run aborts once and serializes everything after; the
	// adaptive run re-enables speculation per chunk. Compare wasted
	// invocations (fixed wastes a big squash; adaptive wastes small ones).
	if adaptiveWaste > fixedWaste*2 {
		t.Fatalf("adaptive wasted %d vs fixed %d", adaptiveWaste, fixedWaste)
	}
	// More importantly: adaptive commits speculative work in the good
	// regime, the fixed run cannot (speculation stays disabled after its
	// abort).
	dFixed := New(deterministicCompute, regimeAux, walkOps())
	oFixed := adaptiveOpts(5).Options
	oFixed.GroupSize = 8
	_, _, stFixed := dFixed.Run(inputs, walkState{}, oFixed)
	dAd := New(deterministicCompute, regimeAux, walkOps())
	oAd := adaptiveOpts(5)
	oAd.GroupSize = 8
	oAd.MaxGroup = 8
	_, _, astAd := dAd.RunAdaptive(inputs, walkState{}, oAd)
	if astAd.SpeculativeCommits <= stFixed.SpeculativeCommits {
		t.Fatalf("adaptive commits %d <= fixed %d", astAd.SpeculativeCommits, stFixed.SpeculativeCommits)
	}
}
