// Deterministic-reservations protocol: the engine's second speculation
// mode (ROADMAP "Second speculation protocol"), adapted from parlaylib's
// speculative_for ("Internally deterministic parallel algorithms can be
// fast"). Where the aux protocol guesses a group's start state and
// validates it after the fact, reservations never guess: each group's
// pending inputs run rounds of
//
//	reserve — every pending input write-mins its index into the state
//	          slots its footprint touches;
//	check   — an input still holding the minimum on all its slots wins
//	          and runs the compute from the round's snapshot;
//	commit  — the coordinator merges the winners' states in ascending
//	          input order and retires their outputs; losers carry
//	          forward into the next round.
//
// The lowest pending index always wins every slot it reserves, so each
// round commits at least one input and the protocol terminates with no
// aux code, no validation and no redo: sequential order is preserved by
// construction. Every input's random stream is pre-split on the
// coordinator in input order and attempts receive value copies, so the
// outputs are byte-identical to the sequential baseline — including under
// contained panics, deadlines and breaker denials — as long as the
// footprint contract holds (see ReserveOps).
package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Protocol selects the engine's speculation protocol.
type Protocol int

const (
	// ProtocolAux is the paper's §3.1 aux-state speculation: speculative
	// start states from auxiliary code, validated at group boundaries.
	ProtocolAux Protocol = iota
	// ProtocolReservations is the deterministic reserve/check/commit
	// protocol: priority-ordered slot reservations, lower-indexed inputs
	// win conflicts, losers carry forward.
	ProtocolReservations
)

// String returns the protocol's stable name.
func (p Protocol) String() string {
	switch p {
	case ProtocolAux:
		return "aux"
	case ProtocolReservations:
		return "reservations"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// ParseProtocol inverts String.
func ParseProtocol(s string) (Protocol, bool) {
	switch s {
	case "aux":
		return ProtocolAux, true
	case "reservations":
		return ProtocolReservations, true
	}
	return ProtocolAux, false
}

// ReserveOps decomposes a dependence's state into integer slots for the
// reservations protocol. The developer contract mirrors MatchAny's role in
// the aux protocol: Footprint must cover every slot the input's compute
// reads or writes (reads included — a read of a slot a lower-indexed input
// will write is a conflict), and computes with disjoint footprints must
// commute, because the protocol merges winners' states out of sequential
// order. Under that contract the run's outputs are byte-identical to the
// sequential baseline.
//
// A Dependence without ReserveOps still supports ProtocolReservations via
// a built-in whole-state single slot: every pending input conflicts, one
// input commits per round, and parallelism degenerates to ordered rounds —
// the honest result for states that cannot be decomposed.
type ReserveOps[I, S any] struct {
	// NumSlots returns the number of state slots, evaluated once per run
	// on a clone of the initial state. Footprint results must stay in
	// [0, NumSlots).
	NumSlots func(initial S) int
	// Footprint returns the slots the input's compute touches given the
	// state snapshot it would run from. It must be deterministic in
	// (in, s) and must not mutate s.
	Footprint func(in I, s S) []int
	// Merge copies the given slots of src into dst and returns the
	// merged state. dst is a private clone; src is a winner's returned
	// state; only the winner's footprint slots may be taken from it.
	Merge func(dst, src S, slots []int) S
	// Touched is the optional hook behind the Options.FootprintCheck
	// oracle: given the state a compute started from and the state it
	// returned, it reports the slots whose contents differ. When set and
	// the oracle is enabled, every winner's touched slots are
	// cross-checked against its declared Footprint before commit; a slot
	// touched but not declared squashes the group and falls back
	// sequentially. Writes that happen to store the old value back are
	// invisible to a state diff, so Touched is a sanitizer, not a proof.
	Touched func(before, after S) []int
}

// WithReserve attaches reservation ops to the dependence, enabling
// slot-level parallelism under ProtocolReservations. NumSlots, Footprint
// and Merge are required (Touched is optional); it returns d for chaining.
func (d *Dependence[I, S, O]) WithReserve(ops ReserveOps[I, S]) *Dependence[I, S, O] {
	if ops.NumSlots == nil || ops.Footprint == nil || ops.Merge == nil {
		panic("core: WithReserve needs NumSlots, Footprint and Merge")
	}
	d.reserve = &ops
	return d
}

// ReservationArg packs a reservation event's round (0-based within its
// group) and input index into one trace argument: round<<32 | input.
func ReservationArg(round, input int) int64 {
	return int64(round)<<32 | int64(uint32(input))
}

// SplitReservationArg inverts ReservationArg.
func SplitReservationArg(arg int64) (round, input int) {
	return int(arg >> 32), int(uint32(arg))
}

// resvRun is the per-run state of one reservations execution. Runs
// recycle it through the dependence's resvScratch pool: every slice keeps
// its capacity between runs (state-holding elements cleared on release),
// and the wave tasks with their closures are created once per chunk slot.
// Only the outputs slice is allocated fresh — it is returned to the
// caller.
type resvRun[I, S, O any] struct {
	d      *Dependence[I, S, O]
	inputs []I
	// srcs are the pre-split per-input random sources (by value: every
	// attempt copies, so squashed attempts never consume the stream).
	srcs []rng.Source
	opts Options
	o    *obs.Observer
	ctl  sched.Controller
	// coordLane is the coordinator's schedule lane; wave chunk c yields
	// on coordLane+1+c.
	coordLane int
	lanes     int
	p         *pool.Pool
	poolBase  pool.Metrics
	emit      Emit[O]
	st        *Stats

	// table is the reservation table, one write-min cell per state slot,
	// reset to the sentinel len(inputs) before each reserve wave.
	table []atomic.Int64
	// failed holds the run's groupFailure (failNone while healthy):
	// lanes CAS failPanic on contained panics, the coordinator stores
	// failTimeout on an expired deadline.
	failed  atomic.Int32
	failArg int64

	invocations atomic.Int64
	// fpViolations counts slots the FootprintCheck oracle caught being
	// touched outside a declared footprint.
	fpViolations atomic.Int64
	// committed counts inputs committed by the protocol (not fallback).
	committed int
	shared    S
	outs      []O

	// panicMu guards panics, the contained user-code panic records
	// (value+stack) the run surfaces through Stats.Panics; lanes can
	// fail concurrently, the coordinator drains after the wave barrier.
	panicMu sync.Mutex
	panics  []*PanicError

	// Per-group round state, recycled across groups and runs: pending
	// input indexes, per-input footprints, winners' returned states,
	// win flags, and the per-input lane nanoseconds of the round in
	// flight.
	pending   []int
	fps       [][]int
	states    []S
	won       []bool
	reserveNS []int64
	computeNS []int64

	// Wave dispatch state: waveTasks[c] is the recycled pool task for
	// chunk c (created once per slot), waveBody the current wave's
	// per-input body, wavePending the pending set it fans over, wavePer
	// the chunk width, and wavePoint the schedule point lanes yield at.
	// reserveBody and checkBody are the two bodies, bound once.
	waveTasks   []pool.Task
	waveBody    func(lane, i int)
	wavePending []int
	wavePer     int
	wavePoint   sched.Point
	waveWG      sync.WaitGroup
	reserveBody func(lane, i int)
	checkBody   func(lane, i int)

	// Current group context read by the bound bodies: group index, group
	// start input, and the 0-based round.
	gj, gstart, ground int
}

// getResvRun fetches (or builds) a recycled reservations run state.
func (d *Dependence[I, S, O]) getResvRun() *resvRun[I, S, O] {
	if v := d.resvScratch.Get(); v != nil {
		return v.(*resvRun[I, S, O])
	}
	r := &resvRun[I, S, O]{d: d}
	r.reserveBody = r.reserveOne
	r.checkBody = r.checkOne
	return r
}

// release clears every state-holding reference (the outputs slice is the
// caller's now and is simply forgotten) and parks the run state for
// reuse.
func (r *resvRun[I, S, O]) release() {
	var zeroS S
	r.inputs = nil
	r.opts = Options{}
	r.o = nil
	r.ctl = nil
	r.p = nil
	r.emit = nil
	r.st = nil
	r.shared = zeroS
	r.outs = nil
	clear(r.fps[:cap(r.fps)])
	clear(r.states[:cap(r.states)])
	clear(r.panics[:cap(r.panics)])
	r.panics = r.panics[:0]
	r.waveBody = nil
	r.wavePending = nil
	r.d.resvScratch.Put(r)
}

// containPanic records one contained user-code panic's value and stack.
func (r *resvRun[I, S, O]) containPanic(pe *PanicError) {
	r.panicMu.Lock()
	r.panics = append(r.panics, pe)
	r.panicMu.Unlock()
}

// drainPanics moves the run's contained panic records into Stats.Panics.
// Called after wave barriers (or on the sequential coordinator), so no
// lane is still appending.
func (r *resvRun[I, S, O]) drainPanics() {
	if len(r.panics) == 0 {
		return
	}
	r.st.Panics = append(r.st.Panics, r.panics...)
	clear(r.panics)
	r.panics = r.panics[:0]
}

// runReservations executes the deterministic-reservations protocol. It is
// the ProtocolReservations counterpart of runSpeculative, reached from
// runAll with speculation admitted (UseAux set, g < len(inputs), breaker
// allowing).
func (d *Dependence[I, S, O]) runReservations(root *rng.Source, inputs []I, initial S, g int, opts Options, st *Stats, emit Emit[O]) ([]O, S, Stats) {
	n := len(inputs)
	numGroups := (n + g - 1) / g
	st.Groups = numGroups

	r := d.getResvRun()
	defer r.release()
	if cap(r.srcs) < n {
		r.srcs = make([]rng.Source, n)
	}
	r.srcs = r.srcs[:n]
	for i := range r.srcs {
		root.SplitInto(&r.srcs[i])
	}

	r.inputs, r.opts, r.o = inputs, opts, opts.Obs
	r.ctl, r.coordLane = opts.Sched, opts.SchedLane
	r.st, r.emit = st, emit
	r.shared = d.ops.Clone(initial)
	r.outs = make([]O, n) // returned to the caller, never recycled
	r.failed.Store(int32(failNone))
	r.failArg = 0
	r.invocations.Store(0)
	r.fpViolations.Store(0)
	r.committed = 0
	r.lanes = opts.Workers
	if r.lanes < 1 {
		r.lanes = 1
	}

	slots := 1
	if d.reserve != nil {
		ns, ok, pe := d.safeNumSlots(r.shared)
		if !ok {
			// NumSlots panicked: contained, but no parallel protocol is
			// possible — the whole vector runs sequentially.
			r.containPanic(pe)
			return r.setupFallback()
		}
		if ns > slots {
			slots = ns
		}
	}
	if cap(r.table) < slots {
		r.table = make([]atomic.Int64, slots)
	}
	r.table = r.table[:slots]

	p := opts.Pool
	if p == nil {
		p = newRunPool(opts)
		p.SetObserver(r.o)
		defer func() {
			if r.ctl != nil {
				r.ctl.Block(r.coordLane)
			}
			p.Close()
			if r.ctl != nil {
				r.ctl.Unblock(r.coordLane)
			}
		}()
	}
	r.p = p
	r.poolBase = p.Metrics()
	return r.run(numGroups, g)
}

// run processes the groups in order; a group failure squashes the
// remaining inputs into the sequential fallback (§3.1: no further
// speculation for the current input vector).
func (r *resvRun[I, S, O]) run(numGroups, g int) ([]O, S, Stats) {
	n := len(r.inputs)
	for j := 0; j < numGroups; j++ {
		start, end := j*g, min(n, (j+1)*g)
		ok, pending := r.runGroup(j, start, end)
		if !ok {
			r.abort(j, numGroups, g, start, end, pending)
			break
		}
	}
	r.st.Invocations += r.invocations.Load()
	r.st.UsefulInvocations += int64(r.committed)
	r.st.FootprintViolations += int(r.fpViolations.Load())
	captureScheduler(r.st, r.p, r.poolBase)
	return r.outs, r.shared, *r.st
}

// runGroup runs one group's reserve/check/commit rounds to completion,
// reporting success and — on failure — the inputs still pending.
func (r *resvRun[I, S, O]) runGroup(j, start, end int) (bool, []int) {
	width := end - start
	// The group context the bound wave bodies read, and the recycled
	// round buffers: footprints (input i's at fps[i-start]), winners'
	// returned states, win flags, and per-input lane nanoseconds for the
	// round in flight — the latter written by the owning lane inside a
	// wave and read by the coordinator after the wave's barrier, zeroed
	// once attributed so a failure sweep only picks up work no
	// commitRound has filed yet.
	r.gj, r.gstart = j, start
	pending := r.pending[:0]
	for i := start; i < end; i++ {
		pending = append(pending, i)
	}
	r.pending = pending
	r.fps = cleared(r.fps, width)
	r.states = cleared(r.states, width)
	r.won = cleared(r.won, width)
	r.reserveNS = cleared(r.reserveNS, width)
	r.computeNS = cleared(r.computeNS, width)
	fps, states, won := r.fps, r.states, r.won
	reserveNS, computeNS := r.reserveNS, r.computeNS
	var gCommitNS, gWasteNS int64

	if r.o != nil {
		r.o.GroupsStarted.Inc()
		r.o.Tracer.Emit(j, obs.EvGroupStart, int32(j), int64(start))
	}
	timeout := r.opts.GroupTimeout
	var groupStart time.Time
	if timeout > 0 && r.ctl == nil {
		groupStart = time.Now()
	}

	rounds := 0
	for len(pending) > 0 {
		// The deadline is checked once per round on the coordinator;
		// under a controller the expiry is a schedulable choice (parked
		// wall-clock time would otherwise count against the group).
		if timeout > 0 {
			expired := false
			var elapsedNS int64
			if r.ctl != nil {
				expired = r.ctl.Choose(sched.PointTimeoutCheck, r.coordLane, 2) == 1
			} else if elapsed := time.Since(groupStart); elapsed > timeout {
				expired = true
				elapsedNS = elapsed.Nanoseconds()
			}
			if expired {
				r.failed.Store(int32(failTimeout))
				r.failArg = elapsedNS
				break
			}
		}
		round := rounds
		rounds++
		r.st.Rounds++
		r.ground = round

		// Reserve: every pending input write-mins its index into its
		// footprint's cells. The committed state is immutable for the
		// whole round, so parallel reads of it are race-free.
		for s := range r.table {
			r.table[s].Store(int64(len(r.inputs)))
		}
		r.wave(sched.PointReserve, pending, r.reserveBody)
		if r.failed.Load() != int32(failNone) {
			break
		}

		// Check + compute: an input holding the minimum on all its slots
		// wins and runs its compute from a private clone of the round's
		// snapshot; losers carry forward.
		r.wave(sched.PointReserveCheck, pending, r.checkBody)
		if r.failed.Load() != int32(failNone) {
			break
		}

		// Commit on the coordinator, in ascending input order.
		if r.ctl != nil {
			r.ctl.Yield(sched.PointCommit, r.coordLane)
		}
		if !r.commitRound(j, round, start, pending, fps, states, won) {
			break
		}
		// Attribute the round's lane time: winners' reserve+compute was
		// committed, losers' was the protocol's wasted work. Zero the
		// entries once filed so the failure sweep below never double
		// counts them.
		for _, i := range pending {
			k := i - start
			spent := reserveNS[k] + computeNS[k]
			if won[k] {
				gCommitNS += spent
			} else {
				gWasteNS += spent
			}
			reserveNS[k], computeNS[k] = 0, 0
		}
		next := pending[:0]
		for _, i := range pending {
			if !won[i-start] {
				next = append(next, i)
			}
		}
		pending = next
	}

	if r.failed.Load() != int32(failNone) {
		// A broken round commits nothing: every lane nanosecond it
		// recorded is wasted work.
		for k := 0; k < width; k++ {
			gWasteNS += reserveNS[k] + computeNS[k]
		}
	}
	r.flushLaneCPU(j, gCommitNS, gWasteNS)
	if r.o != nil {
		r.o.RoundsPerGroup.Observe(int64(rounds))
		r.o.GroupsFinished.Inc()
		r.o.Tracer.Emit(j, obs.EvGroupFinish, int32(j), int64(width-len(pending)))
	}
	if r.failed.Load() != int32(failNone) {
		return false, pending
	}
	// Group complete: its outputs are final; stream them in input order
	// (commits happened out of order, so emission buffers per group).
	if r.emit != nil {
		for i := start; i < end; i++ {
			r.emit(i, r.outs[i])
		}
	}
	return true, nil
}

// reserveOne is the reserve wave's per-input body (bound once per
// resvRun): evaluate the input's footprint against the committed state
// and write-min its index into the footprint's table cells.
func (r *resvRun[I, S, O]) reserveOne(lane, i int) {
	laneStart := time.Now()
	fp := r.footprintOf(i)
	r.fps[i-r.gstart] = fp
	for _, sl := range fp {
		for {
			cur := r.table[sl].Load()
			if cur <= int64(i) || r.table[sl].CompareAndSwap(cur, int64(i)) {
				break
			}
		}
	}
	if r.o != nil {
		r.o.Reserves.Inc()
		r.o.Tracer.Emit(lane, obs.EvReserve, int32(r.gj), ReservationArg(r.ground, i))
	}
	r.reserveNS[i-r.gstart] = time.Since(laneStart).Nanoseconds()
}

// checkOne is the check+compute wave's per-input body (bound once per
// resvRun): an input holding the minimum on all its slots wins and runs
// its compute from a private clone of the round's snapshot; losers carry
// forward into the next round.
func (r *resvRun[I, S, O]) checkOne(lane, i int) {
	k := i - r.gstart
	laneStart := time.Now()
	defer func() {
		r.computeNS[k] = time.Since(laneStart).Nanoseconds()
	}()
	r.won[k] = true
	for _, sl := range r.fps[k] {
		if r.table[sl].Load() != int64(i) {
			r.won[k] = false
			break
		}
	}
	if !r.won[k] {
		if r.o != nil {
			r.o.ReserveConflicts.Inc()
			r.o.Tracer.Emit(lane, obs.EvReserveLost, int32(r.gj), ReservationArg(r.ground, i))
		}
		return
	}
	snap := r.d.ops.Clone(r.shared)
	// The oracle needs its own pristine clone: compute may mutate
	// snap in place, so snap cannot serve as the "before" state.
	oracle := r.opts.FootprintCheck && r.d.reserve != nil && r.d.reserve.Touched != nil
	var before S
	if oracle {
		before = r.d.ops.Clone(r.shared)
	}
	src := r.srcs[i]
	out, next := r.d.compute(&src, r.inputs[i], snap)
	r.invocations.Add(1)
	r.outs[i] = out
	r.states[k] = next
	if oracle {
		declared := make(map[int]bool, len(r.fps[k]))
		for _, sl := range r.fps[k] {
			declared[sl] = true
		}
		for _, sl := range r.d.reserve.Touched(before, next) {
			if declared[sl] {
				continue
			}
			// A lying footprint: the winner touched a slot it never
			// reserved, so this round's winner set is not conflict-
			// free. Nothing from the round commits (the group breaks
			// before commitRound) and the pending inputs re-run
			// sequentially from the committed state.
			r.fpViolations.Add(1)
			if r.o != nil {
				r.o.FootprintViolations.Inc()
				r.o.Tracer.Emit(lane, obs.EvFootprintViolation, int32(r.gj), int64(sl))
			}
			r.failed.CompareAndSwap(int32(failNone), int32(failFootprint))
		}
	}
}

// commitRound merges the round's winners into the committed state in
// ascending input order and retires their outputs. A Merge panic is
// contained: the state under merge is a private clone, so the committed
// state is intact for the fallback and commitRound reports failure with
// nothing retired.
func (r *resvRun[I, S, O]) commitRound(j, round, start int, pending []int, fps [][]int, states []S, won []bool) bool {
	if r.d.reserve == nil {
		// Whole-state single slot: exactly one winner (the lowest pending
		// index); adopt its returned state wholesale.
		for _, i := range pending {
			if won[i-start] {
				r.shared = states[i-start]
				break
			}
		}
	} else {
		next := r.d.ops.Clone(r.shared)
		for _, i := range pending {
			if !won[i-start] {
				continue
			}
			merged, ok, pe := r.safeMerge(next, states[i-start], fps[i-start])
			if !ok {
				r.containPanic(pe)
				r.failed.CompareAndSwap(int32(failNone), int32(failPanic))
				return false
			}
			next = merged
		}
		r.shared = next
	}

	head := pending[0]
	winners := 0
	for _, i := range pending {
		if !won[i-start] {
			continue
		}
		winners++
		r.committed++
		if i != head {
			// This input committed in the same round as a lower-indexed
			// pending one: it genuinely ran ahead of sequential order.
			r.st.SpeculativeCommits++
			if r.o != nil {
				r.o.SpecCommittedInputs.Inc()
			}
		}
		if r.o != nil {
			r.o.Commits.Inc()
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvCommit, int32(j), ReservationArg(round, i))
		}
	}
	r.st.ReservationConflicts += len(pending) - winners
	if winners == 0 {
		// The lowest pending index wins every slot it reserves; an empty
		// round is an engine bug, not a user-code failure.
		panic("core: reservation round committed nothing")
	}
	return true
}

// flushLaneCPU files one group's resolved lane-time attribution into the
// run's Stats and, when observing, the wasted-work counters and the
// per-group attribution events.
func (r *resvRun[I, S, O]) flushLaneCPU(j int, committedNS, wastedNS int64) {
	if committedNS > 0 {
		r.st.LaneCPUCommittedNS += committedNS
		if r.o != nil {
			r.o.LaneCPUCommitted.Add(committedNS)
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvLaneCPUCommitted, int32(j), committedNS)
		}
	}
	if wastedNS > 0 {
		r.st.LaneCPUWastedNS += wastedNS
		if r.o != nil {
			r.o.LaneCPUWasted.Add(wastedNS)
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvLaneCPUWasted, int32(j), wastedNS)
		}
	}
}

// footprintOf evaluates the input's footprint against the committed
// state. Out-of-range slots are a contract violation surfaced as a panic,
// which the wave contains like any user-code panic (the group falls back
// sequentially, outputs intact).
func (r *resvRun[I, S, O]) footprintOf(i int) []int {
	if r.d.reserve == nil {
		return wholeStateFootprint
	}
	fp := r.d.reserve.Footprint(r.inputs[i], r.shared)
	for _, sl := range fp {
		if sl < 0 || sl >= len(r.table) {
			panic(fmt.Sprintf("core: footprint slot %d outside [0,%d)", sl, len(r.table)))
		}
	}
	return fp
}

// wholeStateFootprint is the built-in single-slot footprint used when the
// dependence has no ReserveOps: every input conflicts on slot 0.
var wholeStateFootprint = []int{0}

// wave fans body over the pending inputs: at most r.lanes contiguous
// chunks, one pool task each, yielding at point on the chunk's lane
// before every input. A body panic is contained (failPanic, value and
// stack recorded); once the run is failed, remaining work bails at its
// next yield. The coordinator steps out of the schedule around the
// submit-and-wait (unqueued tasks run inline on it, yielding on their own
// lanes). The chunk tasks are recycled slots created once per chunk index
// and reused across waves, groups and runs; the wave's parameters travel
// through the wave* fields, published to the workers by SubmitBatch and
// fenced from the next wave by the waveWG barrier.
func (r *resvRun[I, S, O]) wave(point sched.Point, pending []int, body func(lane, i int)) {
	chunks := r.lanes
	if chunks > len(pending) {
		chunks = len(pending)
	}
	per := (len(pending) + chunks - 1) / chunks
	nTasks := (len(pending) + per - 1) / per
	for c := len(r.waveTasks); c < nTasks; c++ {
		c := c
		r.waveTasks = append(r.waveTasks, func() { r.waveTask(c) })
	}
	r.wavePoint, r.waveBody = point, body
	r.wavePending, r.wavePer = pending, per
	r.waveWG.Add(nTasks)
	if r.ctl != nil {
		r.ctl.Block(r.coordLane)
	}
	nq, err := r.p.SubmitBatch(r.waveTasks[:nTasks])
	if err != nil {
		for _, task := range r.waveTasks[nq:nTasks] {
			task()
		}
	}
	r.waveWG.Wait()
	if r.ctl != nil {
		r.ctl.Unblock(r.coordLane)
	}
}

// waveTask runs chunk c of the wave in flight: the contiguous slice of
// wavePending at [c*wavePer, (c+1)*wavePer), on schedule lane
// coordLane+1+c.
func (r *resvRun[I, S, O]) waveTask(c int) {
	defer r.waveWG.Done()
	lane := r.coordLane + 1 + c
	if r.ctl != nil {
		defer r.ctl.Done(lane)
	}
	defer func() {
		if rec := recover(); rec != nil {
			r.containPanic(&PanicError{Value: rec, Stack: debug.Stack()})
			r.failed.CompareAndSwap(int32(failNone), int32(failPanic))
		}
	}()
	lo := c * r.wavePer
	hi := lo + r.wavePer
	if hi > len(r.wavePending) {
		hi = len(r.wavePending)
	}
	for _, i := range r.wavePending[lo:hi] {
		if r.ctl != nil {
			r.ctl.Yield(r.wavePoint, lane)
		}
		if r.failed.Load() != int32(failNone) {
			return
		}
		r.waveBody(lane, i)
	}
}

// abort handles a group failure: classify it, squash the uncommitted
// inputs, and reprocess them sequentially in ascending order from the
// committed state — each with its pre-assigned random source, so the
// outputs stay byte-identical to the sequential baseline.
func (r *resvRun[I, S, O]) abort(j, numGroups, g, start, end int, pending []int) {
	n := len(r.inputs)
	switch groupFailure(r.failed.Load()) {
	case failPanic:
		r.st.PanickedGroups++
		if r.o != nil {
			r.o.PanickedGroups.Inc()
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvPanic, int32(j), int64(len(pending)))
		}
	case failTimeout:
		r.st.TimedOutGroups++
		if r.o != nil {
			r.o.GroupTimeouts.Inc()
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvGroupTimeout, int32(j), r.failArg)
		}
	case failFootprint:
		// The oracle already counted each offending slot (and emitted
		// EvFootprintViolation per slot); only the shared abort/squash/
		// fallback bookkeeping below remains.
	}
	r.st.Aborts++
	if r.o != nil {
		r.o.Aborts.Inc()
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvAbort, int32(j), 0)
		r.o.Squashes.Inc()
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvSquash, int32(j), int64(len(pending)))
		for k := j + 1; k < numGroups; k++ {
			ks, ke := k*g, min(n, (k+1)*g)
			r.o.Squashes.Inc()
			r.o.Tracer.Emit(obs.LaneCoord, obs.EvSquash, int32(k), int64(ke-ks))
		}
	}
	remaining := len(pending) + (n - end)
	r.st.SquashedInputs = remaining
	r.st.FallbackInputs = remaining
	if r.o != nil {
		r.o.FallbackInputs.Add(int64(remaining))
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvFallback, int32(j), int64(remaining))
	}
	if r.ctl != nil {
		r.ctl.Yield(sched.PointFallback, r.coordLane)
	}
	// Fill the failed group's pending slots, then stream the whole group
	// in input order (its committed outputs were never emitted), then the
	// tail sequentially.
	fbStart := time.Now()
	for _, i := range pending {
		r.seqOne(i)
	}
	if r.emit != nil {
		for i := start; i < end; i++ {
			r.emit(i, r.outs[i])
		}
	}
	for i := end; i < n; i++ {
		r.seqOne(i)
		if r.emit != nil {
			r.emit(i, r.outs[i])
		}
	}
	// The fallback produced committed outputs; file its time against the
	// aborting group, whose squashed work it redid.
	r.flushLaneCPU(j, time.Since(fbStart).Nanoseconds(), 0)
	r.drainPanics()
}

// seqOne processes one input sequentially from the committed state with
// its pre-assigned source. Unlike the aux protocol's fallback, a panic
// here gets one contained retry: the first attempt runs on a clone with a
// value copy of the source, so a panicked attempt leaves the committed
// state and the input's stream untouched, and transient faults (at most
// one per input, the chaos contract) replay deterministically. A second
// panic is a deterministic application bug and propagates.
func (r *resvRun[I, S, O]) seqOne(i int) {
	out, next, ok := r.tryComputeSeq(i)
	r.st.Invocations++
	if !ok {
		src := r.srcs[i]
		out, next = r.d.compute(&src, r.inputs[i], r.shared)
		r.st.Invocations++
	}
	r.shared = next
	r.outs[i] = out
	r.st.UsefulInvocations++
}

// tryComputeSeq is seqOne's contained first attempt. It runs on the
// coordinator, so the panic record goes straight into the run's
// collection (drained by the fallback epilogues).
func (r *resvRun[I, S, O]) tryComputeSeq(i int) (out O, next S, ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
			r.containPanic(&PanicError{Value: rec, Stack: debug.Stack()})
		}
	}()
	src := r.srcs[i]
	out, next = r.d.compute(&src, r.inputs[i], r.d.ops.Clone(r.shared))
	return out, next, true
}

// setupFallback handles a contained NumSlots panic: no group ever starts
// and the whole vector runs sequentially.
func (r *resvRun[I, S, O]) setupFallback() ([]O, S, Stats) {
	n := len(r.inputs)
	r.st.Aborts++
	r.st.PanickedGroups++
	r.st.SquashedInputs = 0
	r.st.FallbackInputs = n
	if r.o != nil {
		r.o.Aborts.Inc()
		r.o.PanickedGroups.Inc()
		r.o.FallbackInputs.Add(int64(n))
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvPanic, 0, 0)
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvAbort, 0, 0)
		r.o.Tracer.Emit(obs.LaneCoord, obs.EvFallback, 0, int64(n))
	}
	if r.ctl != nil {
		r.ctl.Yield(sched.PointFallback, r.coordLane)
	}
	fbStart := time.Now()
	for i := 0; i < n; i++ {
		r.seqOne(i)
		if r.emit != nil {
			r.emit(i, r.outs[i])
		}
	}
	r.flushLaneCPU(0, time.Since(fbStart).Nanoseconds(), 0)
	r.drainPanics()
	return r.outs, r.shared, *r.st
}

// safeNumSlots evaluates the developer's slot count with panic
// containment, returning the recovered value and stack on failure.
func (d *Dependence[I, S, O]) safeNumSlots(s S) (n int, ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
			pe = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return d.reserve.NumSlots(s), true, nil
}

// safeMerge applies the developer's Merge with panic containment,
// returning the recovered value and stack on failure.
func (r *resvRun[I, S, O]) safeMerge(dst, src S, slots []int) (merged S, ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
			pe = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return r.d.reserve.Merge(dst, src, slots), true, nil
}
