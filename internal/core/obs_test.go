package core

import (
	"fmt"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
)

// Property-style observability invariants: for randomized option vectors
// over the same nondeterministic walk as the accounting test, the event
// log and metrics the observability layer records must agree with each
// other and with the engine's own Stats — the event stream is not a
// best-effort narration but a second, independently-consistent account of
// the run:
//
//   - counters reconcile with Stats: aborts, redos, matches, squashed
//     groups' inputs, fallback inputs, groups started/finished, aux calls;
//   - histogram totals reconcile with counter totals: the validation
//     latency histogram has one observation per resolved boundary
//     (matches + aborts) and the redos-per-validation histogram's sum is
//     the redo counter;
//   - per group, events are well-ordered in time: aux-produced <= group
//     start <= group finish <= that group's validation outcome;
//   - a sequential run (one group) emits no speculation events at all.
func TestObservabilityInvariantsRandomized(t *testing.T) {
	r := rng.New(0x0B5E)
	const cases = 240
	sawAbort, sawRedo, sawMatch := false, false, false
	for c := 0; c < cases; c++ {
		n := r.Intn(81)
		inputs := seqInputs(n)
		opts := Options{
			UseAux:    r.Bool(0.9),
			GroupSize: 1 + r.Intn(40),
			Window:    r.Intn(11),
			RedoMax:   r.Intn(5),
			Rollback:  r.Intn(7),
			Workers:   1 + r.Intn(6),
			Seed:      r.Uint64(),
		}
		tol := r.Range(0.05, 3.0)
		ob := obs.NewObserver(1+r.Intn(8), 4096)
		opts.Obs = ob
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(tol))
		outs, _, st := d.Run(inputs, walkState{}, opts)
		name := fmt.Sprintf("case %d (n=%d opts=%+v tol=%.2f)", c, n, opts, tol)

		checkOutputs(t, outs, wantOutputs(inputs))
		if d := ob.Tracer.Dropped(); d != 0 {
			t.Fatalf("%s: %d events evicted despite ample capacity", name, d)
		}
		events := ob.Tracer.Snapshot()

		// Counters vs engine stats.
		for _, chk := range []struct {
			what string
			got  int64
			want int64
		}{
			{"aborts", ob.Aborts.Value(), int64(st.Aborts)},
			{"redos", ob.Redos.Value(), int64(st.Redos)},
			{"matches", ob.Matches.Value(), int64(st.Matches)},
			{"fallback inputs", ob.FallbackInputs.Value(), int64(st.FallbackInputs)},
			{"aux calls", ob.AuxProduced.Value(), int64(st.AuxCalls)},
		} {
			if chk.got != chk.want {
				t.Fatalf("%s: observer %s %d, engine %d", name, chk.what, chk.got, chk.want)
			}
		}
		if ob.GroupsStarted.Value() != ob.GroupsFinished.Value() {
			t.Fatalf("%s: %d groups started, %d finished",
				name, ob.GroupsStarted.Value(), ob.GroupsFinished.Value())
		}

		// Event counts vs counters: with no eviction, every counted
		// decision has exactly one event.
		kindCount := map[obs.EventKind]int64{}
		var squashedInputs int64
		for _, e := range events {
			kindCount[e.Kind]++
			if e.Kind == obs.EvSquash {
				squashedInputs += e.Arg
			}
		}
		if kindCount[obs.EvAbort] != int64(st.Aborts) {
			t.Fatalf("%s: %d abort events, engine aborted %d", name, kindCount[obs.EvAbort], st.Aborts)
		}
		if kindCount[obs.EvRedo] != int64(st.Redos) {
			t.Fatalf("%s: %d redo events, engine redid %d", name, kindCount[obs.EvRedo], st.Redos)
		}
		if kindCount[obs.EvValidateMatch] != int64(st.Matches) {
			t.Fatalf("%s: %d match events, engine matched %d", name, kindCount[obs.EvValidateMatch], st.Matches)
		}
		if kindCount[obs.EvAuxProduced] != int64(st.AuxCalls) {
			t.Fatalf("%s: %d aux events, engine ran aux %d times", name, kindCount[obs.EvAuxProduced], st.AuxCalls)
		}
		if kindCount[obs.EvGroupStart] != ob.GroupsStarted.Value() {
			t.Fatalf("%s: %d start events, counter %d", name, kindCount[obs.EvGroupStart], ob.GroupsStarted.Value())
		}
		if squashedInputs != int64(st.SquashedInputs) {
			t.Fatalf("%s: squash events cover %d inputs, engine squashed %d",
				name, squashedInputs, st.SquashedInputs)
		}

		// Wasted-work attribution: the lane-CPU events, the counters and
		// Stats are three accounts of the same nanoseconds.
		var evCPUCommitted, evCPUWasted int64
		for _, e := range events {
			switch e.Kind {
			case obs.EvLaneCPUCommitted:
				evCPUCommitted += e.Arg
			case obs.EvLaneCPUWasted:
				evCPUWasted += e.Arg
			}
		}
		if evCPUCommitted != st.LaneCPUCommittedNS || ob.LaneCPUCommitted.Value() != st.LaneCPUCommittedNS {
			t.Fatalf("%s: committed lane CPU events %d, counter %d, stats %d",
				name, evCPUCommitted, ob.LaneCPUCommitted.Value(), st.LaneCPUCommittedNS)
		}
		if evCPUWasted != st.LaneCPUWastedNS || ob.LaneCPUWasted.Value() != st.LaneCPUWastedNS {
			t.Fatalf("%s: wasted lane CPU events %d, counter %d, stats %d",
				name, evCPUWasted, ob.LaneCPUWasted.Value(), st.LaneCPUWastedNS)
		}

		// Histogram totals vs counter totals.
		boundaries := int64(st.Matches + st.Aborts)
		if got := ob.ValidationLatencyNS.Count(); got != boundaries {
			t.Fatalf("%s: latency histogram has %d observations, %d boundaries resolved",
				name, got, boundaries)
		}
		if got := ob.RedosPerValidation.Count(); got != boundaries {
			t.Fatalf("%s: redo histogram has %d observations, %d boundaries resolved",
				name, got, boundaries)
		}
		if got := ob.RedosPerValidation.Sum(); got != int64(st.Redos) {
			t.Fatalf("%s: redo histogram sums to %d, engine redid %d", name, got, st.Redos)
		}

		// Per-group ordering: aux <= start <= finish <= validation outcome.
		type groupTimes struct {
			aux, start, finish, outcome int64
			has                         [4]bool
		}
		gt := map[int32]*groupTimes{}
		at := func(g int32) *groupTimes {
			if gt[g] == nil {
				gt[g] = &groupTimes{}
			}
			return gt[g]
		}
		for _, e := range events {
			switch e.Kind {
			case obs.EvAuxProduced:
				g := at(e.Group)
				g.aux, g.has[0] = e.TS, true
			case obs.EvGroupStart:
				g := at(e.Group)
				g.start, g.has[1] = e.TS, true
			case obs.EvGroupFinish:
				g := at(e.Group)
				g.finish, g.has[2] = e.TS, true
			case obs.EvValidateMatch, obs.EvAbort:
				g := at(e.Group)
				g.outcome, g.has[3] = e.TS, true
			}
		}
		for id, g := range gt {
			if g.has[0] && g.has[1] && g.aux > g.start {
				t.Fatalf("%s: group %d aux at %d after start at %d", name, id, g.aux, g.start)
			}
			if g.has[1] && g.has[2] && g.start > g.finish {
				t.Fatalf("%s: group %d start at %d after finish at %d", name, id, g.start, g.finish)
			}
			if g.has[2] && g.has[3] && g.finish > g.outcome {
				t.Fatalf("%s: group %d finished at %d after its validation at %d",
					name, id, g.finish, g.outcome)
			}
		}

		// Sequential runs speculate nothing and must say so.
		if st.Groups <= 1 {
			for _, e := range events {
				switch e.Kind {
				case obs.EvSteal, obs.EvLocalHit, obs.EvTaskFinish:
					// Scheduler events can still occur (pool warmup).
				default:
					t.Fatalf("%s: sequential run emitted %v", name, e.Kind)
				}
			}
		}

		sawAbort = sawAbort || st.Aborts > 0
		sawRedo = sawRedo || st.Redos > 0
		sawMatch = sawMatch || st.Matches > 0
	}
	if !sawAbort || !sawRedo || !sawMatch {
		t.Fatalf("sample did not exercise all outcomes: abort=%v redo=%v match=%v",
			sawAbort, sawRedo, sawMatch)
	}
}
