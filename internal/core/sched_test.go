package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
)

// The controlled-scheduler integration contract: with a controller attached
// the engine must produce the same observable results as without one (the
// schedule may be adversarial, not the semantics), any recorded run must
// replay to the identical decision sequence and output at Workers=1, and
// races that are invisible to wall-clock testing — timeout-vs-validate,
// breaker half-open probes — must become schedulable and reproducible.

// specSubset is the schedule-independent slice of Stats: invocation totals
// are excluded because how far a squashed lane ran before observing the
// abort flag legitimately varies with the schedule.
type specSubset struct {
	Inputs, Groups, Matches, Redos, Aborts          int
	SpeculativeCommits, SquashedInputs              int
	FallbackInputs                                  int
	PanickedGroups, TimedOutGroups, BreakerDenied   int
}

func subset(st Stats) specSubset {
	return specSubset{
		Inputs: st.Inputs, Groups: st.Groups, Matches: st.Matches,
		Redos: st.Redos, Aborts: st.Aborts,
		SpeculativeCommits: st.SpeculativeCommits, SquashedInputs: st.SquashedInputs,
		FallbackInputs: st.FallbackInputs,
		PanickedGroups: st.PanickedGroups, TimedOutGroups: st.TimedOutGroups,
		BreakerDenied: st.BreakerDenied,
	}
}

func TestControlledEquivalentToSequential(t *testing.T) {
	// Deterministic compute + exact aux: every controlled schedule must
	// commit outputs byte-identical to the sequential baseline.
	inputs := seqInputs(64)
	seq := New(deterministicCompute, nil, walkOps())
	for _, g := range []int{4, 8, 16} {
		for _, workers := range []int{1, 2, 4} {
			for ctlSeed := uint64(0); ctlSeed < 6; ctlSeed++ {
				seed := uint64(g*100 + workers)
				seqOuts, seqFinal, _ := seq.Run(inputs, walkState{}, Options{Seed: seed})

				var ctl sched.Controller
				kind := "random"
				if ctlSeed%2 == 0 {
					ctl = sched.NewRandom(ctlSeed)
				} else {
					ctl = sched.NewPCT(ctlSeed, 3, 256)
					kind = "pct"
				}
				d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
				outs, final, st := d.Run(inputs, walkState{}, Options{
					UseAux: true, GroupSize: g, Window: 16, Workers: workers,
					Seed: seed, Sched: ctl,
				})
				name := fmt.Sprintf("g=%d w=%d %s seed=%d", g, workers, kind, ctlSeed)
				if st.Aborts != 0 {
					t.Fatalf("%s: perfect aux aborted: %+v", name, st)
				}
				if got, want := renderRun(outs, final), renderRun(seqOuts, seqFinal); got != want {
					t.Fatalf("%s: controlled run diverged:\n got %s\nwant %s", name, got, want)
				}
				if g, ok := ctl.(interface{ Stalls() int }); ok && g.Stalls() != 0 {
					t.Fatalf("%s: %d stall force-admissions (a blocking op is not wrapped)", name, g.Stalls())
				}
			}
		}
	}
}

func TestRecordReplayExact(t *testing.T) {
	// Workers=1 removes pool-level decision points (a single shard has no
	// victims), so a recorded schedule must replay with zero divergences,
	// the identical re-recorded decision sequence, and byte-identical
	// output.
	inputs := seqInputs(48)
	for ctlSeed := uint64(0); ctlSeed < 4; ctlSeed++ {
		rec := sched.NewRandom(ctlSeed, sched.WithRecording())
		d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
		opts := Options{
			UseAux: true, GroupSize: 6, Window: 12, Workers: 1,
			Seed: 99, Sched: rec,
		}
		wantOuts, wantFinal, wantSt := d.Run(inputs, walkState{}, opts)
		tr := rec.TraceCopy()
		if len(tr.Entries) == 0 {
			t.Fatal("controlled run recorded no admissions")
		}
		if rec.Stalls() != 0 {
			t.Fatalf("recording stalled %d times", rec.Stalls())
		}

		rep := sched.NewReplay(tr, sched.WithRecording())
		opts.Sched = rep
		gotOuts, gotFinal, gotSt := d.Run(inputs, walkState{}, opts)
		if renderRun(gotOuts, gotFinal) != renderRun(wantOuts, wantFinal) {
			t.Fatalf("seed %d: replayed output diverged", ctlSeed)
		}
		if rep.Divergences() != 0 || rep.Remaining() != 0 {
			t.Fatalf("seed %d: replay not exact: %d divergences, %d remaining",
				ctlSeed, rep.Divergences(), rep.Remaining())
		}
		if re := rep.TraceCopy(); !re.Equal(tr) {
			t.Fatalf("seed %d: re-recorded decision sequence differs (%d vs %d entries)",
				ctlSeed, len(re.Entries), len(tr.Entries))
		}
		if subset(gotSt) != subset(wantSt) || gotSt.Invocations != wantSt.Invocations {
			t.Fatalf("seed %d: replayed stats differ:\n got %+v\nwant %+v", ctlSeed, gotSt, wantSt)
		}
	}
}

func TestForcedTimeoutVsValidateRace(t *testing.T) {
	// With a deadline and a controller, expiry is a per-step scheduling
	// decision (PointTimeoutCheck), not a clock read. Forcing it at a low
	// rate explores timeout-vs-validate interleavings: whichever side
	// wins, the output contract must hold (fallback reprocesses squashed
	// inputs; deterministic compute makes results byte-identical).
	inputs := seqInputs(48)
	seq := New(deterministicCompute, nil, walkOps())
	seqOuts, seqFinal, _ := seq.Run(inputs, walkState{}, Options{Seed: 5})

	sawTimeout := false
	var timeoutTrace *sched.Trace
	var wantTimedOut int
	for ctlSeed := uint64(0); ctlSeed < 12; ctlSeed++ {
		ctl := sched.NewRandom(ctlSeed, sched.WithRecording(), sched.WithForcedTimeouts(0.05))
		d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
		outs, final, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 8, Window: 8, Workers: 1,
			Seed: 5, GroupTimeout: time.Millisecond, Sched: ctl,
		})
		if renderRun(outs, final) != renderRun(seqOuts, seqFinal) {
			t.Fatalf("seed %d: timed-out run diverged from sequential", ctlSeed)
		}
		if st.TimedOutGroups > 0 {
			if st.Aborts == 0 || st.FallbackInputs == 0 {
				t.Fatalf("seed %d: timeout without abort/fallback: %+v", ctlSeed, st)
			}
			if !sawTimeout {
				sawTimeout = true
				timeoutTrace = ctl.TraceCopy()
				wantTimedOut = st.TimedOutGroups
			}
		}
	}
	if !sawTimeout {
		t.Fatal("no seed produced a forced timeout at rate 0.05 (expected ~all)")
	}

	// Replaying the timeout schedule reproduces the same squash.
	rep := sched.NewReplay(timeoutTrace)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 8, Window: 8, Workers: 1,
		Seed: 5, GroupTimeout: time.Millisecond, Sched: rep,
	})
	if renderRun(outs, final) != renderRun(seqOuts, seqFinal) {
		t.Fatal("replayed timeout run diverged from sequential")
	}
	if st.TimedOutGroups != wantTimedOut {
		t.Fatalf("replay timed out %d groups, recording had %d", st.TimedOutGroups, wantTimedOut)
	}
}

// halfOpenRace runs the breaker half-open probe race under one controller:
// run A (aborting aux) and run B (exact aux) share a just-half-opened
// breaker. Whether B's Allow lands before or after A's failing Record —
// which re-opens the breaker — is purely a scheduling decision. Returns
// whether B was denied.
func halfOpenRace(t *testing.T, ctl sched.Controller) (bDenied bool) {
	t.Helper()
	clk := newFakeClock()
	b := NewBreaker(testBreakerCfg(clk))
	for i := 0; i < 5; i++ {
		b.Allow()
		b.Record(true)
	}
	clk.advance(31 * time.Second) // past cooldown: next Allow half-opens

	inputs := seqInputs(12)
	var wg sync.WaitGroup
	var stA, stB Stats
	wg.Add(2)
	go func() {
		defer wg.Done()
		d := New(deterministicCompute, badAux, walkOps())
		_, _, stA = d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 3, Window: 12, Workers: 1, Seed: 1,
			Breaker: b, Sched: ctl, SchedLane: 0,
		})
	}()
	go func() {
		defer wg.Done()
		d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
		_, _, stB = d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 3, Window: 12, Workers: 1, Seed: 2,
			Breaker: b, Sched: ctl, SchedLane: 1000,
		})
	}()
	wg.Wait()
	if stA.BreakerDenied == 0 && stA.Aborts == 0 {
		t.Fatalf("aborting run neither denied nor aborted: %+v", stA)
	}
	return stB.BreakerDenied == 1
}

// craftDeniedTrace turns a recorded half-open race into the adversarial
// interleaving random search cannot reach: keep run A's entries (its
// internal order is self-consistent; the two runs only interact through
// the breaker), drop run B's, and append a single constrained yield that
// holds B's Allow until after A's failing Record has re-opened the
// breaker. B's later decision points have no remaining entries, so replay
// admits them freely once it runs.
func craftDeniedTrace(rec *sched.Trace) *sched.Trace {
	crafted := &sched.Trace{Seed: rec.Seed, Controller: "crafted", Note: "hold B's half-open probe past A's failing record"}
	for _, e := range rec.Entries {
		if e.Lane < 1000 {
			crafted.Entries = append(crafted.Entries, e)
		}
	}
	crafted.Entries = append(crafted.Entries, sched.Entry{
		Kind: sched.KindYield, Point: sched.PointBreakerAllow, Lane: 1000,
	})
	return crafted
}

func TestBreakerHalfOpenProbeRaceUnderReplay(t *testing.T) {
	// Under natural schedules B's probe lands while A is still running, so
	// the breaker is half-open and B is admitted. The losing interleaving
	// — A's failing probe re-opens the breaker before B's Allow — needs a
	// crafted schedule, and Replay must pin it.
	rec := sched.NewRandom(1, sched.WithRecording())
	if denied := halfOpenRace(t, rec); denied {
		t.Fatal("natural schedule denied B's probe; harness assumption broken")
	}
	tr := rec.TraceCopy()

	// Replaying the natural recording reproduces the admitted outcome.
	if got := halfOpenRace(t, sched.NewReplay(tr)); got {
		t.Fatal("replay of natural schedule flipped the race to denied")
	}

	// The crafted schedule forces the opposite outcome, reproducibly.
	crafted := craftDeniedTrace(tr)
	for round := 0; round < 3; round++ {
		rep := sched.NewReplay(crafted)
		if got := halfOpenRace(t, rep); !got {
			t.Fatalf("round %d: crafted schedule did not deny B's probe", round)
		}
		if rep.Stalls() != 0 {
			t.Fatalf("round %d: crafted replay needed %d stall force-admissions", round, rep.Stalls())
		}
	}
}
