// Cross-protocol differential suite: the deterministic-reservations
// protocol must be observationally invisible. For every registered
// workload and a grid of engine shapes it races the two protocols:
//
//   - reservations vs sequential: byte-identical outputs (the protocol's
//     construction guarantee — pre-split per-input sources, ordered
//     commits);
//   - aux vs aux: byte-identical across repeated runs (committed outputs
//     are timing-independent even for rng-consuming workloads);
//   - the full three-way triangle (sequential ≡ aux ≡ reservations) on a
//     synthetic slotted dependence where the aux leg is exact by
//     construction (deterministic compute, perfect aux, RedoMax=0).
//
// This file is an external test package so it can import the workload
// registry (registry → workload → core would cycle from package core).
package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/internal/workload/registry"
)

// slotInput is one input of the synthetic slotted dependence: it touches
// exactly one slot of the state vector.
type slotInput struct {
	Slot int
	Val  float64
}

// slottedOps clones the state vector deeply; MatchAny is exact, so the aux
// protocol's validation accepts iff the speculative state is bit-equal.
func slottedOps() core.StateOps[[]float64] {
	return core.StateOps[[]float64]{
		Clone: func(s []float64) []float64 {
			cp := make([]float64, len(s))
			copy(cp, s)
			return cp
		},
		MatchAny: func(spec []float64, originals [][]float64) bool {
			for _, o := range originals {
				if reflect.DeepEqual(spec, o) {
					return true
				}
			}
			return false
		},
	}
}

// slottedReserve exposes the vector's natural decomposition.
func slottedReserve() core.ReserveOps[slotInput, []float64] {
	return core.ReserveOps[slotInput, []float64]{
		NumSlots:  func(initial []float64) int { return len(initial) },
		Footprint: func(in slotInput, _ []float64) []int { return []int{in.Slot} },
		Merge: func(dst, src []float64, slots []int) []float64 {
			for _, sl := range slots {
				dst[sl] = src[sl]
			}
			return dst
		},
	}
}

// slotInputs deals n inputs across k slots with a deterministic but
// non-uniform pattern, so rounds see both conflicts and disjoint commits.
func slotInputs(n, k int, seed uint64) []slotInput {
	r := rng.New(seed ^ 0x51077ED)
	ins := make([]slotInput, n)
	for i := range ins {
		slot := int(r.Uint64() % uint64(k))
		if i%3 == 0 {
			slot = i % k // periodic runs of disjoint slots
		}
		// Unique values keep every window distinct, so the exact aux can
		// identify group starts unambiguously; conflicts come from slots.
		ins[i] = slotInput{Slot: slot, Val: float64(i) + 0.25}
	}
	return ins
}

// detSlotCompute is deterministic: no rng consumption, so the exact aux
// closes the aux-protocol leg of the triangle.
func detSlotCompute(_ *rng.Source, in slotInput, s []float64) (float64, []float64) {
	s[in.Slot] += in.Val
	return s[in.Slot], s
}

// exactSlotAux replays the deterministic chain up to the group start,
// identified by matching the recent window (the closure cheat of
// exactAuxFor, generalized to the slotted state).
func exactSlotAux(inputs []slotInput, k int) core.Aux[slotInput, []float64] {
	prefixes := make([][]float64, len(inputs)+1)
	prefixes[0] = make([]float64, k)
	for i, in := range inputs {
		next := make([]float64, k)
		copy(next, prefixes[i])
		next[in.Slot] += in.Val
		prefixes[i+1] = next
	}
	return func(_ *rng.Source, init []float64, recent []slotInput) []float64 {
		for start := len(recent); start <= len(inputs); start++ {
			match := true
			for i, in := range inputs[start-len(recent) : start] {
				if recent[i] != in {
					match = false
					break
				}
			}
			if match {
				spec := make([]float64, k)
				for sl := range spec {
					spec[sl] = init[sl] + prefixes[start][sl]
				}
				return spec
			}
		}
		panic("exactSlotAux: window not found")
	}
}

// noisySlotCompute consumes the input's random stream, the workload-shaped
// case: reservations must still match sequential bit-for-bit because both
// derive input i's source as the i-th split of the run root.
func noisySlotCompute(r *rng.Source, in slotInput, s []float64) (float64, []float64) {
	s[in.Slot] += in.Val + (r.Float64()-0.5)*1e-3
	return s[in.Slot], s
}

// protoGrid is the engine-shape grid the differential tests sweep.
var protoGrid = []struct {
	g, win, workers int
}{
	{2, 1, 1},
	{4, 2, 2},
	{8, 2, 4},
	{16, 4, 8},
}

// TestProtocolTriangleSynthetic closes the three-way triangle on the
// slotted dependence: sequential, perfect-aux speculation and
// reservations all commit bit-identical outputs and final states.
func TestProtocolTriangleSynthetic(t *testing.T) {
	const k = 8
	inputs := slotInputs(96, k, 0xD1FF)
	for s := 0; s < protodiffSeeds; s++ {
		seed := uint64(0xA5EED + s*7919)
		for _, cfg := range protoGrid {
			name := fmt.Sprintf("seed=%#x g=%d win=%d w=%d", seed, cfg.g, cfg.win, cfg.workers)

			seq := core.New(detSlotCompute, nil, slottedOps())
			seqOuts, seqFinal, seqSt := seq.Run(inputs, make([]float64, k), core.Options{Seed: seed})
			if seqSt.Groups != 1 {
				t.Fatalf("%s: baseline not sequential", name)
			}

			aux := core.New(detSlotCompute, exactSlotAux(inputs, k), slottedOps())
			auxOuts, auxFinal, auxSt := aux.Run(inputs, make([]float64, k), core.Options{
				UseAux: true, GroupSize: cfg.g, Window: cfg.win, RedoMax: 0,
				Workers: cfg.workers, Seed: seed,
			})
			if auxSt.Aborts != 0 {
				t.Fatalf("%s: perfect aux aborted (%+v)", name, auxSt)
			}

			resv := core.New(detSlotCompute, nil, slottedOps()).WithReserve(slottedReserve())
			resvOuts, resvFinal, resvSt := resv.Run(inputs, make([]float64, k), core.Options{
				UseAux: true, Protocol: core.ProtocolReservations,
				GroupSize: cfg.g, Workers: cfg.workers, Seed: seed,
			})

			if !reflect.DeepEqual(auxOuts, seqOuts) || !reflect.DeepEqual(auxFinal, seqFinal) {
				t.Fatalf("%s: aux diverged from sequential", name)
			}
			if !reflect.DeepEqual(resvOuts, seqOuts) || !reflect.DeepEqual(resvFinal, seqFinal) {
				t.Fatalf("%s: reservations diverged from sequential:\n got %v\nwant %v",
					name, resvOuts, seqOuts)
			}
			if resvSt.Rounds < (len(inputs)+cfg.g-1)/cfg.g {
				t.Fatalf("%s: %d rounds for %d groups — protocol did not run",
					name, resvSt.Rounds, resvSt.Groups)
			}
			if resvSt.Aborts != 0 || resvSt.FallbackInputs != 0 {
				t.Fatalf("%s: clean reservations run aborted (%+v)", name, resvSt)
			}
			if resvSt.UsefulInvocations != int64(len(inputs)) {
				t.Fatalf("%s: useful invocations %d, want %d",
					name, resvSt.UsefulInvocations, len(inputs))
			}
		}
	}
}

// TestReservationsMatchSequentialNoisy repeats the reservations leg with
// the rng-consuming compute: the protocol's pre-split source discipline
// must keep outputs bit-identical to sequential even though attempts can
// lose rounds and carry forward.
func TestReservationsMatchSequentialNoisy(t *testing.T) {
	const k = 5
	inputs := slotInputs(120, k, 0xB0B)
	for s := 0; s < protodiffSeeds; s++ {
		seed := uint64(0xFACE + s*104729)
		for _, cfg := range protoGrid {
			name := fmt.Sprintf("seed=%#x g=%d w=%d", seed, cfg.g, cfg.workers)
			seq := core.New(noisySlotCompute, nil, slottedOps())
			seqOuts, seqFinal, _ := seq.Run(inputs, make([]float64, k), core.Options{Seed: seed})

			resv := core.New(noisySlotCompute, nil, slottedOps()).WithReserve(slottedReserve())
			resvOuts, resvFinal, st := resv.Run(inputs, make([]float64, k), core.Options{
				UseAux: true, Protocol: core.ProtocolReservations,
				GroupSize: cfg.g, Workers: cfg.workers, Seed: seed,
			})
			if !reflect.DeepEqual(resvOuts, seqOuts) || !reflect.DeepEqual(resvFinal, seqFinal) {
				t.Fatalf("%s: reservations diverged from sequential", name)
			}
			if st.ReservationConflicts == 0 {
				t.Fatalf("%s: no conflicts — the input pattern should collide", name)
			}
		}
	}
}

// TestWholeStateReservations exercises the built-in single-slot fallback
// for a dependence with no ReserveOps: rounds degenerate to ordered
// commits and outputs still match sequential exactly.
func TestWholeStateReservations(t *testing.T) {
	const k = 4
	inputs := slotInputs(48, k, 0xC0FFEE)
	seq := core.New(noisySlotCompute, nil, slottedOps())
	seqOuts, seqFinal, _ := seq.Run(inputs, make([]float64, k), core.Options{Seed: 99})

	resv := core.New(noisySlotCompute, nil, slottedOps())
	outs, final, st := resv.Run(inputs, make([]float64, k), core.Options{
		UseAux: true, Protocol: core.ProtocolReservations,
		GroupSize: 8, Workers: 4, Seed: 99,
	})
	if !reflect.DeepEqual(outs, seqOuts) || !reflect.DeepEqual(final, seqFinal) {
		t.Fatal("whole-state reservations diverged from sequential")
	}
	// One commit per round: every group of g inputs needs exactly g rounds.
	if st.Rounds != len(inputs) {
		t.Fatalf("rounds %d, want %d (one commit per round)", st.Rounds, len(inputs))
	}
}

// TestProtocolDifferentialWorkloads sweeps every registered STATS target:
// under ProtocolReservations the output must equal the same-shape
// sequential run exactly, and the aux protocol must be run-to-run
// deterministic at the same point (committed outputs are timing-free).
func TestProtocolDifferentialWorkloads(t *testing.T) {
	// The slotted formulations: their reservation runs must show real
	// multi-slot overlap (several commits per round), and the footprint
	// oracle — enabled on every reservations leg — must stay silent on
	// their declared (sound) footprints.
	slotted := map[string]bool{
		"swaptions": true, "streamcluster": true,
		"fluidanimate": true, "streamclassifier": true,
	}
	for _, w := range registry.Targets() {
		w := w
		t.Run(w.Desc().Name, func(t *testing.T) {
			t.Parallel()
			for s := 0; s < protodiffWorkloadSeeds; s++ {
				seed := uint64(0x57A75 + s*2654435761)
				for _, cfg := range protodiffWorkloadGrid {
					name := fmt.Sprintf("seed=%#x g=%d w=%d", seed, cfg.g, cfg.workers)

					resvOpts := workload.SpecOptions{
						UseAux: true, Protocol: core.ProtocolReservations,
						GroupSize: cfg.g, Window: cfg.win, Workers: cfg.workers,
						FootprintCheck: true,
					}
					seqOpts := resvOpts
					seqOpts.UseAux = false

					got, st := w.RunSTATS(seed, workload.SmallSize, resvOpts)
					ref, _ := w.RunSTATS(seed, workload.SmallSize, seqOpts)
					if !reflect.DeepEqual(got, ref) {
						t.Fatalf("%s: reservations diverged from sequential (distance %g)",
							name, got.Distance(ref))
					}
					if st.Aborts != 0 {
						t.Fatalf("%s: clean run aborted (%+v)", name, st)
					}
					if st.FootprintViolations != 0 {
						t.Fatalf("%s: oracle flagged a declared footprint (%+v)", name, st)
					}
					if slotted[w.Desc().Name] {
						if st.Rounds == 0 || st.SpeculativeCommits == 0 {
							t.Fatalf("%s: slotted workload showed no speculative rounds (%+v)", name, st)
						}
						if cfg.g >= 4 && float64(st.UsefulInvocations)/float64(st.Rounds) <= 1 {
							t.Fatalf("%s: slots are not overlapping commits (%+v)", name, st)
						}
					}

					auxOpts := workload.SpecOptions{
						UseAux: true, GroupSize: cfg.g, Window: cfg.win,
						RedoMax: 2, Rollback: 2, Workers: cfg.workers,
					}
					a1, _ := w.RunSTATS(seed, workload.SmallSize, auxOpts)
					a2, _ := w.RunSTATS(seed, workload.SmallSize, auxOpts)
					if !reflect.DeepEqual(a1, a2) {
						t.Fatalf("%s: aux protocol nondeterministic across identical runs", name)
					}
				}
			}
		})
	}
}
