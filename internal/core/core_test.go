package core

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/pool"
	"repro/internal/rng"
)

// walkState is a toy state-dependence target used throughout these tests: a
// scalar random walk. Each invocation adds its input plus bounded noise to
// the state and emits a value derived from the input, so output correctness
// can be checked independently of the state chain.
type walkState struct{ V float64 }

func walkOps() StateOps[walkState] {
	return StateOps[walkState]{
		Clone: func(s walkState) walkState { return s },
		MatchAny: func(spec walkState, originals []walkState) bool {
			for _, o := range originals {
				if math.Abs(spec.V-o.V) <= 1e-9 {
					return true
				}
			}
			return false
		},
	}
}

// deterministicCompute has no nondeterminism: state is the exact prefix sum.
func deterministicCompute(_ *rng.Source, in int, s walkState) (int, walkState) {
	s.V += float64(in)
	return in * 2, s
}

// exactAux reproduces the true state: prefix sums are input-determined, so
// the speculative state always matches.
func exactAuxFor(inputs []int) Aux[int, walkState] {
	prefix := make([]float64, len(inputs)+1)
	for i, v := range inputs {
		prefix[i+1] = prefix[i] + float64(v)
	}
	// The aux sees the initial state and the recent window; for the test
	// we cheat via closure over the full input (the engine cannot tell).
	used := 0
	_ = used
	return func(_ *rng.Source, init walkState, recent []int) walkState {
		// Identify the group start by matching the recent window's end.
		// Recent windows are inputs[lo:start]; their sum plus everything
		// before them equals prefix[start]. We reconstruct start by
		// scanning — fine for tests.
		for start := 0; start <= len(inputs); start++ {
			lo := start - len(recent)
			if lo < 0 {
				continue
			}
			match := true
			for i, v := range inputs[lo:start] {
				if recent[i] != v {
					match = false
					break
				}
			}
			if match {
				return walkState{V: init.V + prefix[start]}
			}
		}
		return walkState{V: math.NaN()}
	}
}

func badAux(_ *rng.Source, init walkState, _ []int) walkState {
	return walkState{V: init.V - 1e9}
}

func seqInputs(n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = i + 1
	}
	return in
}

func wantOutputs(inputs []int) []int {
	out := make([]int, len(inputs))
	for i, v := range inputs {
		out[i] = v * 2
	}
	return out
}

func checkOutputs(t *testing.T, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNewValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil compute accepted")
		}
	}()
	New[int, walkState, int](nil, nil, walkOps())
}

func TestNewRequiresClone(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil clone accepted")
		}
	}()
	New(deterministicCompute, nil, StateOps[walkState]{})
}

func TestEmptyInputs(t *testing.T) {
	d := New(deterministicCompute, nil, walkOps())
	outs, final, st := d.Run(nil, walkState{V: 7}, Options{})
	if len(outs) != 0 {
		t.Fatalf("outputs: %v", outs)
	}
	if final.V != 7 {
		t.Fatalf("final: %v", final)
	}
	if st.Invocations != 0 {
		t.Fatalf("invocations: %d", st.Invocations)
	}
}

func TestSequentialWhenAuxDisabled(t *testing.T) {
	inputs := seqInputs(10)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{UseAux: false, GroupSize: 2, Workers: 4, Seed: 1})
	checkOutputs(t, outs, wantOutputs(inputs))
	if final.V != 55 {
		t.Fatalf("final state %v", final.V)
	}
	if st.Groups != 1 || st.AuxCalls != 0 || st.SpeculativeCommits != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestSequentialWhenNoAux(t *testing.T) {
	inputs := seqInputs(6)
	d := New(deterministicCompute, nil, walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{UseAux: true, GroupSize: 2, Seed: 1})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Groups != 1 {
		t.Fatalf("groups: %d", st.Groups)
	}
}

func TestSequentialWhenGroupCoversAll(t *testing.T) {
	inputs := seqInputs(4)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	_, _, st := d.Run(inputs, walkState{}, Options{UseAux: true, GroupSize: 4, Seed: 1})
	if st.Groups != 1 {
		t.Fatalf("groups: %d", st.Groups)
	}
}

func TestSpeculationAllMatches(t *testing.T) {
	inputs := seqInputs(16)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 4, Window: 16, Workers: 4, Seed: 42,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if final.V != 136 {
		t.Fatalf("final: %v", final.V)
	}
	if st.Groups != 4 {
		t.Fatalf("groups: %d", st.Groups)
	}
	if st.Matches != 3 {
		t.Fatalf("matches: %d", st.Matches)
	}
	if st.Aborts != 0 || st.Redos != 0 {
		t.Fatalf("aborts/redos: %+v", st)
	}
	if st.SpeculativeCommits != 12 {
		t.Fatalf("speculative commits: %d", st.SpeculativeCommits)
	}
	if st.AuxCalls != 3 {
		t.Fatalf("aux calls: %d", st.AuxCalls)
	}
}

func TestSpeculationAbortsAndFallsBack(t *testing.T) {
	inputs := seqInputs(12)
	d := New(deterministicCompute, badAux, walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 2, Workers: 4, Seed: 7, RedoMax: 2, Rollback: 2,
	})
	// Output quality must be preserved despite the hopeless aux code.
	checkOutputs(t, outs, wantOutputs(inputs))
	if final.V != 78 {
		t.Fatalf("final: %v", final.V)
	}
	if st.Aborts != 1 {
		t.Fatalf("aborts: %d", st.Aborts)
	}
	if st.Matches != 0 {
		t.Fatalf("matches: %d", st.Matches)
	}
	if st.Redos != 2 {
		t.Fatalf("redos: %d (budget was 2)", st.Redos)
	}
	// First group (3 inputs) committed; the rest fell back.
	if st.FallbackInputs != 9 {
		t.Fatalf("fallback inputs: %d", st.FallbackInputs)
	}
	if st.SquashedInputs != 9 {
		t.Fatalf("squashed inputs: %d", st.SquashedInputs)
	}
	if st.SpeculativeCommits != 0 {
		t.Fatalf("speculative commits: %d", st.SpeculativeCommits)
	}
}

func TestWindowLimitsAuxInputs(t *testing.T) {
	inputs := seqInputs(12)
	var maxRecent atomic.Int64
	aux := func(_ *rng.Source, init walkState, recent []int) walkState {
		if int64(len(recent)) > maxRecent.Load() {
			maxRecent.Store(int64(len(recent)))
		}
		return badAux(nil, init, recent)
	}
	d := New(deterministicCompute, aux, walkOps())
	_, _, st := d.Run(inputs, walkState{}, Options{UseAux: true, GroupSize: 3, Window: 2, Seed: 1})
	if maxRecent.Load() > 2 {
		t.Fatalf("aux saw %d recent inputs, window was 2", maxRecent.Load())
	}
	if st.AuxInputs != 2*3 {
		t.Fatalf("aux inputs: %d", st.AuxInputs)
	}
}

// nondetCompute adds Gaussian noise to the state transition. The noise makes
// the final state of a group vary across re-executions, which is exactly the
// freedom STATS exploits.
func nondetCompute(r *rng.Source, in int, s walkState) (int, walkState) {
	s.V += float64(in) + r.Norm()*0.5
	return in * 2, s
}

// tolerantOps accepts a speculative state within tol of any original.
func tolerantOps(tol float64) StateOps[walkState] {
	return StateOps[walkState]{
		Clone: func(s walkState) walkState { return s },
		MatchAny: func(spec walkState, originals []walkState) bool {
			for _, o := range originals {
				if math.Abs(spec.V-o.V) <= tol {
					return true
				}
			}
			return false
		},
	}
}

// noiselessAux predicts the state ignoring noise, so whether it matches
// depends on how the accumulated noise happens to land — across seeds it
// will sometimes need redos and sometimes abort.
func noiselessAuxFor(inputs []int) Aux[int, walkState] {
	exact := exactAuxFor(inputs)
	return func(r *rng.Source, init walkState, recent []int) walkState {
		return exact(r, init, recent)
	}
}

func TestRedosHappenAcrossSeeds(t *testing.T) {
	inputs := seqInputs(32)
	var redos, matches, aborts int
	for seed := uint64(0); seed < 40; seed++ {
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(1.2))
		outs, _, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 8, Window: 32, Workers: 4,
			RedoMax: 3, Rollback: 4, Seed: seed,
		})
		checkOutputs(t, outs, wantOutputs(inputs))
		redos += st.Redos
		matches += st.Matches
		aborts += st.Aborts
	}
	if matches == 0 {
		t.Fatal("no speculative state ever matched; tolerance model broken")
	}
	if redos == 0 {
		t.Fatal("no redo ever happened; nondeterminism not exercised")
	}
}

func TestOutputsPreservedUnderAnyOutcome(t *testing.T) {
	// Whatever the speculation outcome, outputs must equal the
	// input-determined values, in order.
	inputs := seqInputs(50)
	for seed := uint64(0); seed < 20; seed++ {
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(0.8))
		outs, _, _ := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 7, Window: 10, Workers: 8,
			RedoMax: 2, Rollback: 3, Seed: seed,
		})
		checkOutputs(t, outs, wantOutputs(inputs))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	inputs := seqInputs(24)
	run := func() ([]int, walkState, Stats) {
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(1.0))
		return d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: 6, Window: 6, Workers: 4,
			RedoMax: 2, Rollback: 2, Seed: 99,
		})
	}
	o1, f1, s1 := run()
	o2, f2, s2 := run()
	checkOutputs(t, o1, o2)
	if f1.V != f2.V {
		t.Fatalf("final states differ: %v vs %v", f1.V, f2.V)
	}
	if s1.Matches != s2.Matches || s1.Redos != s2.Redos || s1.Aborts != s2.Aborts {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestMatchAnySeesGrowingOriginalSet(t *testing.T) {
	inputs := seqInputs(8)
	var sizes []int
	ops := StateOps[walkState]{
		Clone: func(s walkState) walkState { return s },
		MatchAny: func(spec walkState, originals []walkState) bool {
			sizes = append(sizes, len(originals))
			return len(originals) == 3 // accept only on the second redo
		},
	}
	d := New(nondetCompute, noiselessAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 4, Window: 8, RedoMax: 5, Rollback: 2, Seed: 5,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Redos != 2 {
		t.Fatalf("redos: %d", st.Redos)
	}
	if st.Matches != 1 {
		t.Fatalf("matches: %d", st.Matches)
	}
	// The acceptance method must have seen sets of size 1, then 2, then 3.
	if len(sizes) < 3 || sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Fatalf("original set sizes: %v", sizes)
	}
}

func TestNilMatchAnyAcceptsByConstruction(t *testing.T) {
	// swaptions-style dependence: no comparison function needed.
	inputs := seqInputs(12)
	ops := StateOps[walkState]{Clone: func(s walkState) walkState { return s }}
	d := New(nondetCompute, noiselessAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Aborts != 0 || st.Matches != 3 {
		t.Fatalf("by-construction acceptance: %+v", st)
	}
}

func TestSharedPool(t *testing.T) {
	inputs := seqInputs(16)
	p := pool.New(4)
	defer p.Close()
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 4, Window: 16, Pool: p, Seed: 1,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Matches != 3 {
		t.Fatalf("matches: %d", st.Matches)
	}
	if p.Executed() == 0 {
		t.Fatal("shared pool never used")
	}
}

func TestRedoOnlyRecomputesSuffix(t *testing.T) {
	inputs := seqInputs(8)
	var invocationLog []int
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		invocationLog = append(invocationLog, in) // guarded by Workers:1
		return nondetCompute(r, in, s)
	}
	ops := StateOps[walkState]{
		Clone: func(s walkState) walkState { return s },
		MatchAny: func(spec walkState, originals []walkState) bool {
			return len(originals) == 2
		},
	}
	d := New(compute, noiselessAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 4, Window: 8, RedoMax: 3, Rollback: 2, Workers: 1, Seed: 11,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Redos != 1 {
		t.Fatalf("redos: %d", st.Redos)
	}
	// Total invocations: 8 originals + 2 redone (rollback 2).
	if st.Invocations != 10 {
		t.Fatalf("invocations: %d, log %v", st.Invocations, invocationLog)
	}
	// The redone inputs are the last two of group 0: inputs 3 and 4.
	tail := invocationLog[len(invocationLog)-2:]
	if tail[0] != 3 || tail[1] != 4 {
		t.Fatalf("redo recomputed %v, want [3 4]", tail)
	}
}

func TestStatsInvariants(t *testing.T) {
	f := func(seed uint64, groupRaw, windowRaw, redoRaw uint8) bool {
		inputs := seqInputs(30)
		g := int(groupRaw)%10 + 1
		w := int(windowRaw) % 12
		r := int(redoRaw) % 3
		d := New(nondetCompute, noiselessAuxFor(inputs), tolerantOps(1.0))
		outs, _, st := d.Run(inputs, walkState{}, Options{
			UseAux: true, GroupSize: g, Window: w, Workers: 4,
			RedoMax: r, Rollback: 2, Seed: seed,
		})
		if len(outs) != len(inputs) {
			return false
		}
		for i, o := range outs {
			if o != inputs[i]*2 {
				return false
			}
		}
		// Useful work never exceeds total work; committed inputs add up.
		if st.UsefulInvocations > st.Invocations {
			return false
		}
		if st.Aborts > 1 { // a single run aborts at most once (speculation then stops)
			return false
		}
		return st.Inputs == len(inputs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialStateNotMutated(t *testing.T) {
	inputs := seqInputs(8)
	init := walkState{V: 5}
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	// exactAux adds init.V, so matches still hold.
	_, _, _ = d.Run(inputs, init, Options{UseAux: true, GroupSize: 2, Window: 8, Seed: 1})
	if init.V != 5 {
		t.Fatalf("initial state mutated: %v", init.V)
	}
}

func TestGroupSizeClamped(t *testing.T) {
	inputs := seqInputs(5)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{UseAux: true, GroupSize: -3, Window: 5, Seed: 1})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Groups != 5 {
		t.Fatalf("groups: %d", st.Groups)
	}
}

func TestUnevenLastGroup(t *testing.T) {
	inputs := seqInputs(10) // groups of 4: [0..4) [4..8) [8..10)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{UseAux: true, GroupSize: 4, Window: 10, Workers: 4, Seed: 1})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.Groups != 3 {
		t.Fatalf("groups: %d", st.Groups)
	}
	if final.V != 55 {
		t.Fatalf("final: %v", final.V)
	}
}

func TestComputePanicPropagates(t *testing.T) {
	// A deterministic panic (one that fires every time its input is
	// computed) is first contained on the speculative lane, but the
	// sequential fallback re-executes the same input and panics again —
	// with no safe fallback left it must surface on the calling goroutine
	// (recoverable), not kill the process.
	inputs := seqInputs(12)
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in == 7 {
			panic("user bug")
		}
		return deterministicCompute(r, in, s)
	}
	d := New(compute, exactAuxFor(inputs), walkOps())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if r != "user bug" {
			t.Fatalf("panic value: %v", r)
		}
	}()
	d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 1,
	})
	t.Fatal("unreachable")
}

func TestComputePanicSequentialPathStillPanics(t *testing.T) {
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		panic("seq bug")
	}
	d := New(compute, nil, walkOps())
	defer func() {
		if recover() != "seq bug" {
			t.Fatal("sequential panic lost")
		}
	}()
	d.Run(seqInputs(3), walkState{}, Options{Seed: 1})
}
