//go:build race

package core

// raceEnabled disables the allocation-count gates under the race
// detector: race-mode sync.Pool randomly drops puts (by design, to
// widen interleavings), so warm-path allocs/run is not meaningful there.
// The -race tier still runs the recycling correctness stress.
const raceEnabled = true
