// Containment tests for the reservation-specific fault sites: the
// developer hooks ReserveOps adds (NumSlots, Footprint, Merge) must fail
// as safely as aux/compute panics do in the aux protocol — contained on
// the engine side, outputs still byte-identical to sequential via the
// fallback.
package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// runFaultyReserve runs the noisy slotted chain under reservations with
// the given ops and asserts the fallback preserved the sequential output.
func runFaultyReserve(t *testing.T, ops core.ReserveOps[slotInput, []float64]) core.Stats {
	t.Helper()
	const k = 4
	inputs := slotInputs(40, k, 0xFA11)
	seqOuts, seqFinal, _ := core.New(noisySlotCompute, nil, slottedOps()).
		Run(inputs, make([]float64, k), core.Options{Seed: 7})
	outs, final, st, err := core.New(noisySlotCompute, nil, slottedOps()).WithReserve(ops).
		RunChecked(inputs, make([]float64, k), core.Options{
			UseAux: true, Protocol: core.ProtocolReservations,
			GroupSize: 8, Workers: 4, Seed: 7,
		})
	if err != nil {
		t.Fatalf("fault escaped containment: %v", err)
	}
	if !reflect.DeepEqual(outs, seqOuts) || !reflect.DeepEqual(final, seqFinal) {
		t.Fatal("fallback diverged from sequential")
	}
	return st
}

func TestReservationMergePanicFallsBack(t *testing.T) {
	ops := slottedReserve()
	calls := 0
	inner := ops.Merge
	ops.Merge = func(dst, src []float64, slots []int) []float64 {
		calls++
		if calls == 3 {
			panic("merge fault")
		}
		return inner(dst, src, slots)
	}
	st := runFaultyReserve(t, ops)
	if st.Aborts != 1 || st.PanickedGroups != 1 {
		t.Fatalf("merge panic not classified: %+v", st)
	}
	if st.SquashedInputs != st.FallbackInputs || st.FallbackInputs == 0 {
		t.Fatalf("fallback accounting off: %+v", st)
	}
}

func TestReservationFootprintViolationFallsBack(t *testing.T) {
	ops := slottedReserve()
	ops.Footprint = func(in slotInput, _ []float64) []int {
		if in.Val > 20 {
			return []int{999} // out of range: contract violation
		}
		return []int{in.Slot}
	}
	st := runFaultyReserve(t, ops)
	if st.Aborts != 1 || st.PanickedGroups != 1 {
		t.Fatalf("footprint violation not contained: %+v", st)
	}
}

func TestReservationNumSlotsPanicFallsBack(t *testing.T) {
	ops := slottedReserve()
	ops.NumSlots = func([]float64) int { panic("numslots fault") }
	st := runFaultyReserve(t, ops)
	if st.Aborts != 1 || st.PanickedGroups != 1 || st.FallbackInputs != 40 {
		t.Fatalf("NumSlots panic accounting off: %+v", st)
	}
	if st.UsefulInvocations != 40 {
		t.Fatalf("UsefulInvocations %d, want 40", st.UsefulInvocations)
	}
}
