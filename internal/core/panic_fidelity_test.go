package core

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/rng"
)

// Panic-fidelity regression tests: every contained user-code panic must
// ride out of the run in Stats.Panics with its original value and a
// stack that still names the panic origin. The safe* helpers used to
// discard the recovered value; these tests pin the repaired behaviour
// across every containment site in both protocols.

// requirePanicRecord asserts some Stats.Panics entry carries the value
// and a stack naming this file.
func requirePanicRecord(t *testing.T, panics []*PanicError, want string) {
	t.Helper()
	if len(panics) == 0 {
		t.Fatalf("Stats.Panics is empty, want a record for %q", want)
	}
	for _, pe := range panics {
		if pe.Value != want {
			continue
		}
		if !strings.Contains(string(pe.Stack), "panic_fidelity_test.go") {
			t.Fatalf("panic %q lost its origin stack:\n%s", want, pe.Stack)
		}
		return
	}
	t.Fatalf("no Stats.Panics entry has value %q (got %d records, first: %v)",
		want, len(panics), panics[0].Value)
}

func TestPanicFidelityAux(t *testing.T) {
	inputs := seqInputs(12)
	aux := func(_ *rng.Source, init walkState, recent []int) walkState {
		panic("aux boom")
	}
	d := New(deterministicCompute, aux, walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 1,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "aux boom")
}

func TestPanicFidelitySpeculativeCompute(t *testing.T) {
	inputs := seqInputs(12)
	var fired atomic.Bool
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in == 8 && fired.CompareAndSwap(false, true) {
			panic("compute boom")
		}
		return deterministicCompute(r, in, s)
	}
	d := New(compute, exactAuxFor(inputs), walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 2,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "compute boom")
}

func TestPanicFidelityMatchAny(t *testing.T) {
	inputs := seqInputs(12)
	ops := walkOps()
	ops.MatchAny = func(walkState, []walkState) bool { panic("match boom") }
	d := New(deterministicCompute, exactAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "match boom")
}

func TestPanicFidelityFingerprint(t *testing.T) {
	inputs := seqInputs(12)
	ops := walkOps()
	ops.Fingerprint = func(walkState) uint64 { panic("fingerprint boom") }
	d := New(deterministicCompute, exactAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 4,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "fingerprint boom")
}

func TestPanicFidelityReservationsCompute(t *testing.T) {
	inputs := seqInputs(16)
	var fired atomic.Bool
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in == 5 && fired.CompareAndSwap(false, true) {
			panic("resv compute boom")
		}
		return deterministicCompute(r, in, s)
	}
	d := New(compute, nil, walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, Protocol: ProtocolReservations,
		GroupSize: 4, Workers: 4, Seed: 5,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "resv compute boom")
}

func TestPanicFidelityReservationsNumSlots(t *testing.T) {
	inputs := seqInputs(16)
	d := New(deterministicCompute, nil, walkOps()).WithReserve(ReserveOps[int, walkState]{
		NumSlots:  func(walkState) int { panic("numslots boom") },
		Footprint: func(int, walkState) []int { return []int{0} },
		Merge:     func(dst, src walkState, _ []int) walkState { return src },
	})
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, Protocol: ProtocolReservations,
		GroupSize: 4, Workers: 4, Seed: 6,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "numslots boom")
}

func TestPanicFidelityReservationsMerge(t *testing.T) {
	inputs := seqInputs(16)
	var fired atomic.Bool
	d := New(deterministicCompute, nil, walkOps()).WithReserve(ReserveOps[int, walkState]{
		NumSlots:  func(walkState) int { return 1 },
		Footprint: func(int, walkState) []int { return []int{0} },
		Merge: func(dst, src walkState, _ []int) walkState {
			if fired.CompareAndSwap(false, true) {
				panic("merge boom")
			}
			return src
		},
	})
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, Protocol: ProtocolReservations,
		GroupSize: 4, Workers: 4, Seed: 7,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	requirePanicRecord(t, st.Panics, "merge boom")
}
