package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/rng"
)

// TestFaultStressRace crosses fault injection with the engine's concurrency
// knobs — Workers × RedoMax × GroupTimeout × injection mix — under the race
// detector. Every cell must complete without a crash and commit the exact
// deterministic outputs; the failure counters are not asserted per cell
// (which faults land where is scheduling-dependent), only the output and
// conservation contracts are.
func TestFaultStressRace(t *testing.T) {
	type mix struct {
		name                    string
		auxRate, garbageRate    float64
		computeOnce, slowInputs bool
	}
	mixes := []mix{
		{name: "aux-panic", auxRate: 0.2},
		{name: "garbage", garbageRate: 0.2},
		{name: "compute-once", computeOnce: true},
		{name: "everything", auxRate: 0.15, garbageRate: 0.15, computeOnce: true, slowInputs: true},
	}
	for _, proto := range []Protocol{ProtocolAux, ProtocolReservations} {
		for _, workers := range []int{1, 4, 8} {
			for _, redoMax := range []int{0, 2} {
				for _, timeout := range []time.Duration{0, 500 * time.Microsecond} {
					for _, m := range mixes {
						if proto == ProtocolReservations && !m.computeOnce && !m.slowInputs {
							// Aux and garbage faults have no aux to land on
							// under reservations; those cells would be
							// fault-free reruns.
							continue
						}
						proto, workers, redoMax, timeout, m := proto, workers, redoMax, timeout, m
						name := fmt.Sprintf("%s/%s/w%d/r%d/t%v", proto, m.name, workers, redoMax, timeout)
						t.Run(name, func(t *testing.T) {
							t.Parallel()
							stressOne(t, proto, workers, redoMax, timeout, m.auxRate,
								m.garbageRate, m.computeOnce, m.slowInputs)
						})
					}
				}
			}
		}
	}
}

// stressOne runs one injected configuration and checks the §3.1 contract.
func stressOne(t *testing.T, proto Protocol, workers, redoMax int, timeout time.Duration, auxRate, garbageRate float64, computeOnce, slowInputs bool) {
	const n = 96
	inputs := seqInputs(n)
	in := fault.New(fault.Config{
		Seed: uint64(workers*1000 + redoMax*100) + uint64(timeout),
		AuxPanicRate: auxRate, GarbageRate: garbageRate, ComputePanicRate: 0.2,
	})
	compute := deterministicCompute
	if slowInputs {
		compute = func(r *rng.Source, v int, s walkState) (int, walkState) {
			if v%7 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
			return deterministicCompute(r, v, s)
		}
	}
	if computeOnce {
		compute = fault.WrapComputeOnce(in, compute,
			func(v int) uint64 { return uint64(v) })
	}
	aux := exactAuxFor(inputs)
	if auxRate > 0 || garbageRate > 0 {
		aux = fault.WrapAux(in, aux,
			func(s walkState) walkState { return walkState{V: s.V - 1e12} })
	}
	d := New(compute, aux, walkOps())
	outs, final, st, err := d.RunChecked(inputs, walkState{}, Options{
		UseAux: true, Protocol: proto, GroupSize: 8, Window: n, RedoMax: redoMax,
		Rollback: 4, Workers: workers, Seed: 0xFA17, GroupTimeout: timeout,
	})
	if err != nil {
		t.Fatalf("fault escaped containment: %v", err)
	}
	checkOutputs(t, outs, wantOutputs(inputs))
	var wantSum float64
	for _, v := range inputs {
		wantSum += float64(v)
	}
	if final.V != wantSum {
		t.Fatalf("final state %v, want %v", final.V, wantSum)
	}
	if st.UsefulInvocations != int64(n) {
		t.Fatalf("UsefulInvocations %d, want %d", st.UsefulInvocations, n)
	}
	if st.SquashedInputs != st.FallbackInputs {
		t.Fatalf("squashed %d != fallback %d", st.SquashedInputs, st.FallbackInputs)
	}
	if st.Aborts > 1 {
		t.Fatalf("%d aborts in one run", st.Aborts)
	}
	if (st.PanickedGroups > 0 || st.TimedOutGroups > 0) && st.Aborts != 1 {
		t.Fatalf("failed groups (%d panicked, %d timed out) but %d aborts",
			st.PanickedGroups, st.TimedOutGroups, st.Aborts)
	}
}

// TestAccountingInvariantsWithPanics extends the PR-1 accounting property
// to runs with contained panics: over randomized option vectors with
// aux-panic and garbage injection, the conservation laws must still hold,
// with one relaxation — a group-0 failure makes the run fall back from the
// initial state, so the non-speculative commit share is 0 instead of the
// first group's size. The sample must actually contain panicked groups, or
// the property is vacuous.
func TestAccountingInvariantsWithPanics(t *testing.T) {
	r := rng.New(0xFA57)
	const cases = 300
	sawPanic, sawAbort, sawGroupZeroFailure := false, false, false
	for c := 0; c < cases; c++ {
		n := r.Intn(81)
		inputs := seqInputs(n)
		opts := Options{
			UseAux:    true,
			GroupSize: 1 + r.Intn(40),
			Window:    r.Intn(11),
			RedoMax:   r.Intn(5),
			Rollback:  r.Intn(7),
			Workers:   1 + r.Intn(6),
			Seed:      r.Uint64(),
		}
		in := fault.New(fault.Config{
			Seed: r.Uint64(), AuxPanicRate: 0.15, GarbageRate: 0.1,
		})
		tol := r.Range(0.05, 3.0)
		aux := fault.WrapAux(in, noiselessAuxFor(inputs),
			func(s walkState) walkState { return walkState{V: s.V - 1e12} })
		// Aux and garbage faults only hit successor groups; to exercise the
		// group-0 failure path (fallback from the initial state), some cases
		// arm a transient panic on the first input, whose first compute is
		// always on group 0's lane. Armed only when the run will actually
		// speculate — on a sequential run the panic would have no lane to be
		// contained on.
		compute := nondetCompute
		armGroupZero := n >= 2*opts.GroupSize+1 && r.Bool(0.3)
		if armGroupZero {
			var g0 atomic.Bool
			compute = func(rr *rng.Source, v int, s walkState) (int, walkState) {
				if v == 1 && g0.CompareAndSwap(false, true) {
					panic("group-0 fault")
				}
				return nondetCompute(rr, v, s)
			}
		}
		d := New(compute, aux, tolerantOps(tol))
		outs, _, st, err := d.RunChecked(inputs, walkState{}, opts)
		name := fmt.Sprintf("case %d (n=%d opts=%+v tol=%.2f g0=%v)", c, n, opts, tol, armGroupZero)
		if err != nil {
			t.Fatalf("%s: fault escaped containment: %v", name, err)
		}

		if len(outs) != n || st.Inputs != n {
			t.Fatalf("%s: outputs %d, Inputs %d, want %d", name, len(outs), st.Inputs, n)
		}
		checkOutputs(t, outs, wantOutputs(inputs))
		if st.UsefulInvocations != int64(n) {
			t.Fatalf("%s: UsefulInvocations %d, want %d", name, st.UsefulInvocations, n)
		}
		wasted := st.Invocations - st.UsefulInvocations
		if wasted < 0 {
			t.Fatalf("%s: negative wasted work %d", name, wasted)
		}
		rollback := opts.Rollback
		if rollback < 1 {
			rollback = 1
		}
		if max := int64(st.SquashedInputs) + int64(st.Redos*rollback); wasted > max {
			t.Fatalf("%s: wasted %d exceeds bound %d (%+v)", name, wasted, max, st)
		}
		if st.SquashedInputs != st.FallbackInputs {
			t.Fatalf("%s: squashed %d != fallback %d", name, st.SquashedInputs, st.FallbackInputs)
		}
		nonSpec := n - st.SpeculativeCommits - st.FallbackInputs
		if st.Groups > 1 {
			// With panic containment in play a group-0 failure falls back
			// from the initial state: the non-speculative share is either
			// the whole first group or nothing at all.
			if nonSpec != opts.GroupSize && nonSpec != 0 {
				t.Fatalf("%s: non-speculative commits %d, want %d or 0",
					name, nonSpec, opts.GroupSize)
			}
			if nonSpec == 0 {
				if st.SpeculativeCommits != 0 || st.FallbackInputs != n {
					t.Fatalf("%s: group-0 failure accounting: %+v", name, st)
				}
				sawGroupZeroFailure = true
			}
			if st.AuxCalls != st.Groups-1 {
				t.Fatalf("%s: aux calls %d, want %d (attempts count even when aux panics)",
					name, st.AuxCalls, st.Groups-1)
			}
		} else if nonSpec != n {
			t.Fatalf("%s: sequential run committed %d of %d non-speculatively", name, nonSpec, n)
		}
		if st.Aborts > 1 {
			t.Fatalf("%s: %d aborts in one run", name, st.Aborts)
		}
		if st.PanickedGroups > 0 && st.Aborts != 1 {
			t.Fatalf("%s: %d panicked groups but %d aborts", name, st.PanickedGroups, st.Aborts)
		}
		if st.Groups > 1 && st.Matches+st.Aborts > st.Groups-1 {
			t.Fatalf("%s: boundary outcomes %d exceed boundaries %d",
				name, st.Matches+st.Aborts, st.Groups-1)
		}
		if st.Aborts == 0 {
			if st.PanickedGroups != 0 || st.TimedOutGroups != 0 {
				t.Fatalf("%s: failed groups without an abort: %+v", name, st)
			}
			if st.Groups > 1 && st.Matches != st.Groups-1 {
				t.Fatalf("%s: no abort but only %d/%d boundaries matched",
					name, st.Matches, st.Groups-1)
			}
		}
		sawPanic = sawPanic || st.PanickedGroups > 0
		sawAbort = sawAbort || st.Aborts > 0
	}
	if !sawPanic || !sawAbort || !sawGroupZeroFailure {
		t.Fatalf("sample did not exercise the fault paths: panic=%v abort=%v group0=%v",
			sawPanic, sawAbort, sawGroupZeroFailure)
	}
}
