package core

import "runtime/debug"

// Streaming commit: outputs are delivered, in input order, the moment they
// stop being speculative (§3.1: "When these checks succeed, the additional
// TLP generated can be safely used") instead of materializing only when
// the whole input vector has been processed. A downstream consumer can
// therefore overlap with the dependence's tail — the natural next step for
// the long-data-stream applications §4.8 identifies as STATS's best fit.

// Emit receives committed outputs in input order. It is called from the
// coordinating goroutine only (never concurrently), at the §3.1 commit
// points: a group's outputs when the next boundary's validation resolves
// (until then a re-execution may still splice the group's suffix), the
// last group's at run completion, and fallback outputs as they compute.
type Emit[O any] func(index int, output O)

// RunStream behaves like Run but additionally delivers each output through
// emit as soon as it commits. The returned values are identical to Run's.
func (d *Dependence[I, S, O]) RunStream(inputs []I, initial S, opts Options, emit Emit[O]) ([]O, S, Stats) {
	return d.runAll(inputs, initial, opts, emit)
}

// RunStreamChecked is RunStream with sequential-path panics (including any
// raised inside emit) converted to a *PanicError instead of propagating,
// mirroring RunChecked. Outputs emitted before the panic stand; the
// returned slices reflect only work that committed.
func (d *Dependence[I, S, O]) RunStreamChecked(inputs []I, initial S, opts Options, emit Emit[O]) (outs []O, final S, st Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	outs, final, st = d.runAll(inputs, initial, opts, emit)
	return outs, final, st, nil
}
