// Package core implements the paper's primary contribution: the STATS
// execution model of §3.1, which satisfies state dependences with
// compiler-generated auxiliary code and validates the speculation at run
// time.
//
// A state dependence is the code pattern of Figure 4: invocation i computes
// an output from an input while reading and updating a state S, so
// invocation i+1 depends on invocation i's state write, serializing the
// chain. The engine breaks the chain by grouping inputs into ordered blocks
// and overlapping the blocks' computations; each block after the first
// starts from a speculative state produced by auxiliary code from only a few
// recent inputs. When the preceding block finishes, its final state is
// compared with the speculative state (the developer's
// doesSpecStateMatchAny); on mismatch the preceding block may re-execute its
// last few inputs — fresh nondeterminism can produce a different, matching
// final state — up to a budget. If the budget is exhausted, all subsequent
// blocks are aborted and squashed, execution resumes sequentially from the
// first original final state, and no further speculation is performed for
// the current input vector.
package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Compute is the target of a state dependence (computeOutput in Figure 8):
// given an input and the current state, it produces an output and the next
// state. It must not retain s. The rng.Source carries the invocation's
// nondeterminism; re-executions receive fresh sources, which is what gives
// the runtime multiple original states to match against.
type Compute[I, S, O any] func(r *rng.Source, in I, s S) (O, S)

// Aux is auxiliary code for a state dependence: an alternative producer that
// builds a speculative state from the initial state and the window of inputs
// immediately preceding the block it feeds. A nil Aux means the dependence
// has no auxiliary code and must be satisfied conventionally.
type Aux[I, S any] func(r *rng.Source, init S, recent []I) S

// StateOps supplies the developer-provided state methods of the SDI
// (Figure 9): Clone corresponds to operator= (state privatization), and
// MatchAny to doesSpecStateMatchAny (speculative-state acceptance against a
// set of original states).
//
// MatchAny must not retain the originals slice: the engine recycles its
// backing storage across boundaries and runs.
//
// Fingerprint, when non-nil alongside MatchAny, is a cheap acceptance
// prefilter: the engine hashes the speculative state and every original
// once and calls MatchAny only when some original's fingerprint equals the
// speculative state's. The contract is one-sided: Fingerprint(a) ==
// Fingerprint(b) must hold whenever MatchAny would accept a against {b} —
// hash only what acceptance can never distinguish (structure, counts,
// quantized values outside the tolerance). Collisions fall through to the
// deep compare, so a wrong fingerprint costs redos and aborts (time),
// never correctness. Ignored when MatchAny is nil (acceptance by
// construction needs no prefilter).
type StateOps[S any] struct {
	Clone       func(S) S
	MatchAny    func(spec S, originals []S) bool
	Fingerprint func(S) uint64
}

// Options configures one run of the engine. All values correspond to state
// space dimensions (§3.3) chosen by the autotuner.
type Options struct {
	// UseAux enables speculation. When false the dependence is satisfied
	// conventionally (the paper's baseline) under either protocol.
	UseAux bool
	// Protocol selects how the run parallelizes the input chain:
	// ProtocolAux (the zero value) is the paper's aux-state speculation;
	// ProtocolReservations is the deterministic reserve/check/commit
	// protocol of reservations.go, which needs no auxiliary code and no
	// validation — sequential order is preserved by construction.
	Protocol Protocol
	// GroupSize is the input-group cardinality G. Values below 1 are
	// treated as 1.
	GroupSize int
	// Window is the number of previous inputs the auxiliary code
	// consumes (k). Negative values are treated as 0.
	Window int
	// RedoMax is the number of times the original producer may
	// re-execute per validation (R). Negative values are treated as 0.
	RedoMax int
	// Rollback is how many inputs a re-execution goes back (W), clamped
	// to [1, group length].
	Rollback int
	// Workers is the number of pool workers used for group-level TLP.
	Workers int
	// Seed determines every random stream of the run. Runs with equal
	// seeds and options are reproducible; distinct seeds model the
	// program's nondeterminism.
	Seed uint64
	// Pool, when non-nil, supplies the shared worker pool; otherwise the
	// engine creates a private pool of Options.Workers width for the run.
	Pool *pool.Pool
	// Obs, when non-nil, receives the run's speculation event log and
	// metrics: the engine emits a trace event and updates the registry
	// at every speculation decision point (group start/finish, auxiliary
	// state production, validation match/mismatch, redo, abort, squash,
	// fallback). A nil Obs costs one branch per decision point.
	Obs *obs.Observer
	// GroupTimeout bounds one speculative group execution's wall-clock
	// time. A lane exceeding it is squashed exactly like a validation
	// mismatch: the group and its successors abort and the inputs are
	// reprocessed sequentially. Zero disables the deadline. Group 0 is
	// exempt — its outputs are committed unconditionally, so squashing
	// it would gain nothing.
	GroupTimeout time.Duration
	// Breaker, when non-nil, gates speculation: a run asks Allow before
	// speculating (a refusal executes conventionally and is counted in
	// Stats.BreakerDenied) and Records its abort/panic/timeout outcome
	// afterwards.
	Breaker *Breaker
	// Sched, when non-nil, is the controlled scheduler (internal/sched):
	// the engine yields at every nondeterministic decision point — aux
	// production, group start/step/finish, validation, redo, squash,
	// fallback entry, breaker admission/recording — so adversarial
	// interleavings can be explored and recorded schedules replayed. A
	// nil Sched costs one branch per decision point (the Options.Obs
	// discipline). Under a controller a positive GroupTimeout stops
	// consulting the real clock (parked time would count) and instead
	// asks the controller each step whether the deadline expired
	// (sched.PointTimeoutCheck), making timeout races schedulable.
	Sched sched.Controller
	// SchedLane is the run's base lane in the controller's namespace:
	// the coordinator yields on SchedLane and group j on SchedLane+1+j.
	// Concurrent runs sharing one controller must use disjoint bases
	// (pool workers use negative lanes, so any non-negative spacing of
	// 1+maxGroups works).
	SchedLane int
	// FootprintCheck enables the dynamic footprint oracle under
	// ProtocolReservations: when the dependence's ReserveOps provides a
	// Touched hook, every winner's actually-touched slots are
	// cross-checked against its declared Footprint before commit. A
	// violation squashes the group (like a contained panic), falls back
	// to sequential re-execution, and counts in
	// Stats.FootprintViolations — the sanitizer catching what static
	// ⊤-widening lets through. Debug mode: it pays one extra state
	// clone per invocation.
	FootprintCheck bool
}

// Stats reports what the runtime did during a run. The profiler and the
// evaluation harness consume these to account overhead, abort rates, and
// wasted work.
type Stats struct {
	Inputs  int // inputs processed
	Groups  int // groups formed (1 means sequential)
	Matches int // speculative states accepted
	Redos   int // original-producer re-executions performed
	// FingerprintHits and FingerprintMisses count hash-first acceptance
	// attempts (boundary validations and redo re-checks) whose
	// fingerprint prefilter passed through to MatchAny vs rejected
	// without a deep compare. Both stay 0 unless the dependence defines
	// both Fingerprint and MatchAny.
	FingerprintHits   int
	FingerprintMisses int
	// Aborts counts boundary resolutions that aborted speculation:
	// exhausted redo budgets, contained panics and group deadlines (the
	// latter two also counted in PanickedGroups/TimedOutGroups).
	Aborts int

	// SpeculativeCommits counts inputs whose outputs were committed from
	// a speculative (group > 0) execution.
	SpeculativeCommits int
	// SquashedInputs counts inputs whose speculative outputs were thrown
	// away by an abort.
	SquashedInputs int
	// FallbackInputs counts inputs re-processed sequentially after an
	// abort.
	FallbackInputs int
	// Invocations counts every Compute call, including re-executions and
	// squashed work; UsefulInvocations counts only calls whose output was
	// committed.
	Invocations       int64
	UsefulInvocations int64
	// AuxCalls counts auxiliary-code executions; AuxInputs the total
	// inputs they consumed.
	AuxCalls  int
	AuxInputs int

	// PanickedGroups counts speculative groups squashed because user
	// code panicked on their lane (compute, aux, clone, or the
	// boundary's match/redo). The panic is contained: the group's
	// inputs are reprocessed sequentially and the process survives.
	PanickedGroups int
	// Panics carries each contained speculative-path panic with the same
	// value+stack fidelity *PanicError gives the sequential path: the
	// original panic value and the stack captured during the unwind.
	// Under ProtocolAux entries are in group order; under
	// ProtocolReservations in the order the coordinator observed them.
	Panics []*PanicError
	// TimedOutGroups counts speculative groups squashed because their
	// lane exceeded Options.GroupTimeout.
	TimedOutGroups int
	// BreakerDenied is 1 when the run's speculation was suppressed by an
	// open Options.Breaker (the run executed conventionally), else 0.
	// It is an int so aggregation across runs counts denials.
	BreakerDenied int

	// Rounds counts reserve/check/commit rounds executed by the
	// deterministic-reservations protocol, summed over the run's groups
	// (0 under ProtocolAux).
	Rounds int
	// ReservationConflicts counts inputs that lost a reserved slot to a
	// lower-indexed input and carried forward into a later round.
	ReservationConflicts int
	// FootprintViolations counts state slots the FootprintCheck oracle
	// caught a compute touching outside its declared reservation
	// footprint (0 unless Options.FootprintCheck is set).
	FootprintViolations int

	// LaneCPUCommittedNS and LaneCPUWastedNS split the run's lane
	// CPU-time — wall-clock nanoseconds measured at lane boundaries
	// (aux, group execution, redo, reservation reserve/compute,
	// sequential fallback) — by whether the work's results were
	// committed or discarded. Their ratio is the paper's speculation
	// trade made visible: wasted/(wasted+committed) is the price paid
	// for the wall-clock win. Purely sequential runs report zero for
	// both (no lane boundaries are crossed).
	LaneCPUCommittedNS int64
	LaneCPUWastedNS    int64

	// Scheduler counters, deltas over this run of the worker pool's
	// sharded work-stealing dispatcher (§3.4 runtime). Steals are
	// cross-worker dispatches, LocalHits the contention-free local-deque
	// fast path. On a shared pool with concurrent runs the deltas
	// attribute pool-wide activity to each overlapping run.
	Steals    int64
	LocalHits int64
	// QueueDepthPeak is the pool's peak single-deque depth as of the end
	// of the run (a lifetime high-water mark, not a delta).
	QueueDepthPeak int64
}

// Dependence is a runnable state dependence: the compute target, its
// auxiliary code, and the state methods.
type Dependence[I, S, O any] struct {
	compute Compute[I, S, O]
	aux     Aux[I, S]
	ops     StateOps[S]
	// reserve, when non-nil, decomposes the state into slots for the
	// deterministic-reservations protocol (WithReserve); nil falls back
	// to a whole-state single slot.
	reserve *ReserveOps[I, S]

	// scratch and resvScratch recycle the per-run working sets of
	// runSpeculative and runReservations through sync.Pool, so a warm
	// Run on a reused Dependence allocates (almost) nothing. Both make
	// the Dependence non-copyable once used; the engine only ever hands
	// out pointers.
	scratch     sync.Pool
	resvScratch sync.Pool
}

// New returns a Dependence. compute and ops.Clone must be non-nil; aux and
// ops.MatchAny may be nil (no auxiliary code / by-construction acceptance,
// like the paper's swaptions, streamcluster and streamclassifier, whose
// speculative state "could have already been generated by an execution of
// the original program").
func New[I, S, O any](compute Compute[I, S, O], aux Aux[I, S], ops StateOps[S]) *Dependence[I, S, O] {
	if compute == nil {
		panic("core: nil compute")
	}
	if ops.Clone == nil {
		panic("core: nil state clone")
	}
	return &Dependence[I, S, O]{compute: compute, aux: aux, ops: ops}
}

// hashFirst reports whether the dependence validates hash-first: both a
// deep acceptance method and a fingerprint prefilter are defined.
func (d *Dependence[I, S, O]) hashFirst() bool {
	return d.ops.MatchAny != nil && d.ops.Fingerprint != nil
}

// Run processes inputs starting from initial, returning the outputs in input
// order, the final state, and run statistics. The initial state is not
// mutated (it is cloned before first use).
//
// Fault isolation: a panic in user code on a speculative lane (a group
// execution, auxiliary-state production, or a boundary's match/redo) is
// contained — the affected groups are squashed and their inputs reprocessed
// sequentially, counted in Stats.PanickedGroups. A panic on the sequential
// or fallback path has no safe fallback left and propagates to the caller;
// use RunChecked to receive it as an error instead.
func (d *Dependence[I, S, O]) Run(inputs []I, initial S, opts Options) ([]O, S, Stats) {
	return d.runAll(inputs, initial, opts, nil)
}

// PanicError is the error RunChecked and RunStreamChecked return when user
// code panicked with no safe fallback left (on the sequential or fallback
// path): the original panic value plus the stack captured while the panic
// was still unwinding, so the panic site is preserved.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery
	// time during the unwind — it includes the panic origin's frames.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("core: user code panicked with no safe fallback: %v", e.Value)
}

// RunChecked is Run with sequential-path panics converted to a *PanicError
// instead of propagating. Speculative-lane panics are contained either way
// (see Run); RunChecked only changes how the unrecoverable ones surface.
func (d *Dependence[I, S, O]) RunChecked(inputs []I, initial S, opts Options) (outs []O, final S, st Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	outs, final, st = d.runAll(inputs, initial, opts, nil)
	return outs, final, st, nil
}

// runAll is the engine entry shared by Run and RunStream.
func (d *Dependence[I, S, O]) runAll(inputs []I, initial S, opts Options, emit Emit[O]) ([]O, S, Stats) {
	var st Stats
	st.Inputs = len(inputs)
	root := rng.New(opts.Seed)

	if len(inputs) == 0 {
		st.Groups = 0
		return nil, d.ops.Clone(initial), st
	}

	ctl := opts.Sched
	if ctl != nil {
		// Retire the coordinator lane however the run ends, including a
		// sequential-path panic unwinding through RunChecked.
		defer ctl.Done(opts.SchedLane)
	}

	g := opts.GroupSize
	if g < 1 {
		g = 1
	}
	// Reservations need no auxiliary code; aux speculation does.
	speculating := opts.UseAux && g < len(inputs) &&
		(opts.Protocol == ProtocolReservations || d.aux != nil)
	if speculating && opts.Breaker != nil {
		if ctl != nil {
			ctl.Yield(sched.PointBreakerAllow, opts.SchedLane)
		}
		if !opts.Breaker.Allow() {
			speculating = false
			st.BreakerDenied = 1
			if o := opts.Obs; o != nil {
				o.BreakerDenied.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvBreakerDenied, -1, 0)
			}
		}
	}
	if !speculating {
		outs, final := d.runSequential(root, inputs, d.ops.Clone(initial), &st, emit, 0)
		st.Groups = 1
		return outs, final, st
	}
	var (
		outs  []O
		final S
		stats Stats
	)
	switch opts.Protocol {
	case ProtocolAux:
		outs, final, stats = d.runSpeculative(root, inputs, initial, g, opts, &st, emit)
	case ProtocolReservations:
		outs, final, stats = d.runReservations(root, inputs, initial, g, opts, &st, emit)
	default:
		panic(fmt.Sprintf("core: unknown protocol %d", opts.Protocol))
	}
	if opts.Breaker != nil {
		if ctl != nil {
			ctl.Yield(sched.PointBreakerRecord, opts.SchedLane)
		}
		opts.Breaker.Record(stats.Aborts > 0 || stats.PanickedGroups > 0 || stats.TimedOutGroups > 0)
	}
	return outs, final, stats
}

// runSequential is the conventional execution: one invocation after
// another. Outputs stream through emit (when non-nil) as they are
// computed; base is the global index of the first input.
func (d *Dependence[I, S, O]) runSequential(r *rng.Source, inputs []I, s S, st *Stats, emit Emit[O], base int) ([]O, S) {
	outs := make([]O, 0, len(inputs))
	// One reused child source for the whole walk: SplitInto draws the
	// same stream per invocation as the old per-call Split without an
	// allocation per input.
	var src rng.Source
	for i, in := range inputs {
		var o O
		r.SplitInto(&src)
		o, s = d.compute(&src, in, s)
		st.Invocations++
		st.UsefulInvocations++
		outs = append(outs, o)
		if emit != nil {
			emit(base+i, o)
		}
	}
	return outs, s
}

// execution is one (re-)execution of a group suffix: its outputs and final
// state.
type execution[S, O any] struct {
	outputs []O
	final   S
}

// groupFailure records why a group's speculative results are unusable.
type groupFailure int

const (
	failNone      groupFailure = iota
	failPanic                  // user code panicked (contained)
	failTimeout                // the lane exceeded Options.GroupTimeout
	failFootprint              // the FootprintCheck oracle caught a lying footprint
)

// groupRun holds the state of one input group during a speculative run.
// Records are owned by a runScratch and recycled run after run: every
// scalar field is reset by begin, the random sources are re-split into
// place, and the output buffers keep their capacity with their elements
// cleared between runs (no stale user values parked in the pool).
type groupRun[I, S, O any] struct {
	idx        int // group index, used as the trace lane hint
	start, end int // input index range [start, end)
	specStart  S   // the state the group started from (spec or S0)

	// First (original) execution results.
	base execution[S, O]
	// checkpoint is the state before the last W inputs of the group,
	// from which re-executions restart; checkpointAt is its input index.
	checkpoint   S
	checkpointAt int

	// specSrc feeds the group's auxiliary code, execSrc its execution,
	// and redoSrc its re-executions; callSrc and redoCallSrc are the
	// per-invocation children execSrc/redoSrc split into (value storage,
	// so a warm run derives every stream without allocating).
	specSrc     rng.Source
	execSrc     rng.Source
	redoSrc     rng.Source
	callSrc     rng.Source
	redoCallSrc rng.Source

	// ctl and lane are the run's controlled scheduler and this group's
	// lane in it (nil/0 when the run is uncontrolled).
	ctl  sched.Controller
	lane int

	// done is a one-shot latch per run (Add(1) before launch, Done on
	// lane exit, Wait on the coordinator); a WaitGroup rather than a
	// channel so it can be rearmed when the record is recycled.
	done    sync.WaitGroup
	aborted atomic.Bool // set to squash this group's in-flight work

	// failure is why the group's results are unusable, with failArg the
	// matching event argument (elapsed ns for timeouts) and panicErr the
	// contained panic's value+stack when failure is failPanic. Written
	// by the lane before done.Done(), or by the coordinator before
	// launch (aux panic) / after done.Wait() (match/redo panic), so
	// every read — the boundary inspection and the post-wg.Wait sweep —
	// is ordered after the write.
	failure  groupFailure
	failArg  int64
	panicErr *PanicError

	// execNS is the group execution's wall-clock lane time, written by
	// the lane before done.Done() and read by the coordinator after
	// done.Wait() for wasted-work attribution.
	execNS int64

	// outBuf, redoBuf and spliceBuf back the group's execution outputs,
	// its re-execution outputs, and the spliced committed outputs.
	outBuf    []O
	redoBuf   []O
	spliceBuf []O
}

// runScratch is the recycled working set of one runSpeculative call:
// group records, the per-group timing/committed arrays, the originals
// set (plus its fingerprints), and the pool tasks with their closures.
// A Dependence keeps scratches in a sync.Pool, so a warm Run allocates
// only what it must return (the outputs slice) plus whatever user code
// allocates. Task closures are created once per group slot and index
// into the scratch, which is why they survive recycling: each run
// rebinds the fields the closures read.
type runScratch[I, S, O any] struct {
	d      *Dependence[I, S, O]
	inputs []I
	o      *obs.Observer
	ctl    sched.Controller

	rollback  int
	timeout   time.Duration
	numGroups int

	groups []*groupRun[I, S, O]
	tasks  []pool.Task

	auxNS    []int64
	commitNS []int64
	wasteNS  []int64

	committed []execution[S, O]
	originals []S
	origFPs   []uint64

	wg          sync.WaitGroup
	invocations atomic.Int64
}

// getScratch fetches (or builds) a scratch for one speculative run.
func (d *Dependence[I, S, O]) getScratch() *runScratch[I, S, O] {
	if v := d.scratch.Get(); v != nil {
		return v.(*runScratch[I, S, O])
	}
	return &runScratch[I, S, O]{d: d}
}

// begin sizes the scratch for numGroups groups and resets every record.
// It does not arm the done latches — that happens at launch, so a panic
// on the coordinator between begin and launch (an uncontained group-0
// clone) cannot leave a latch armed for the next run.
func (scr *runScratch[I, S, O]) begin(inputs []I, numGroups int, opts *Options, o *obs.Observer) {
	scr.inputs = inputs
	scr.o = o
	scr.ctl = opts.Sched
	scr.rollback = opts.Rollback
	scr.timeout = opts.GroupTimeout
	scr.numGroups = numGroups
	scr.invocations.Store(0)
	for len(scr.groups) < numGroups {
		j := len(scr.groups)
		scr.groups = append(scr.groups, &groupRun[I, S, O]{})
		scr.tasks = append(scr.tasks, func() { scr.groupTask(j) })
	}
	scr.auxNS = cleared(scr.auxNS, numGroups)
	scr.commitNS = cleared(scr.commitNS, numGroups)
	scr.wasteNS = cleared(scr.wasteNS, numGroups)
	scr.committed = cleared(scr.committed, numGroups)
	scr.originals = scr.originals[:0]
	scr.origFPs = scr.origFPs[:0]
}

// release clears every state-holding reference so the parked scratch
// retains no user data, then returns it to the dependence's pool. Callers
// must not touch the scratch afterwards; everything a run returns (the
// outputs slice, the final state, Stats) is copied out before release.
func (scr *runScratch[I, S, O]) release() {
	var zeroS S
	for _, gr := range scr.groups[:scr.numGroups] {
		gr.specStart = zeroS
		gr.checkpoint = zeroS
		gr.base = execution[S, O]{}
		gr.panicErr = nil
		clear(gr.outBuf[:cap(gr.outBuf)])
		clear(gr.redoBuf[:cap(gr.redoBuf)])
		clear(gr.spliceBuf[:cap(gr.spliceBuf)])
	}
	clear(scr.committed[:scr.numGroups])
	clear(scr.originals[:cap(scr.originals)])
	scr.inputs = nil
	scr.o = nil
	scr.ctl = nil
	scr.d.scratch.Put(scr)
}

// groupTask is the pool task body for group slot j: the per-slot closure
// wrapping it is created once and recycled with the scratch.
func (scr *runScratch[I, S, O]) groupTask(j int) {
	gr := scr.groups[j]
	defer scr.wg.Done()
	defer gr.done.Done()
	if scr.ctl != nil {
		// Retire the group lane on every exit, panic included, before
		// the done latch releases the coordinator.
		defer scr.ctl.Done(gr.lane)
	}
	// Panic isolation: a panic in user code on this lane marks the group
	// failed — value and stack preserved — and squashes it together with
	// its successors; their results would be discarded anyway once the
	// boundary inspection aborts here. Earlier groups are left running;
	// their results are still committable.
	defer func() {
		if rec := recover(); rec != nil {
			gr.failure = failPanic
			gr.panicErr = &PanicError{Value: rec, Stack: debug.Stack()}
			for _, g := range scr.groups[j:scr.numGroups] {
				g.aborted.Store(true)
			}
		}
	}()
	scr.d.executeGroup(scr.inputs, gr, scr.rollback, scr.timeout, &scr.invocations, scr.o)
}

// cleared returns s resized to length n with every element zeroed,
// reusing capacity when it suffices.
func cleared[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// runSpeculative implements the §3.1 execution model. Outputs stream
// through emit (when non-nil) at their commit points: a group's outputs
// become final when the NEXT boundary's validation resolves (a redo may
// splice its suffix until then), the last group's at run completion, and
// fallback outputs as they are computed.
func (d *Dependence[I, S, O]) runSpeculative(root *rng.Source, inputs []I, initial S, g int, opts Options, st *Stats, emit Emit[O]) ([]O, S, Stats) {
	n := len(inputs)
	numGroups := (n + g - 1) / g
	st.Groups = numGroups

	window := opts.Window
	if window < 0 {
		window = 0
	}
	redoMax := opts.RedoMax
	if redoMax < 0 {
		redoMax = 0
	}

	ctl := opts.Sched
	coordLane := opts.SchedLane

	o := opts.Obs
	scr := d.getScratch()
	scr.begin(inputs, numGroups, &opts, o)
	defer scr.release()
	groups := scr.groups[:numGroups]

	// Derive all random streams on the coordinator so the run is
	// reproducible regardless of scheduling: per-group spec stream,
	// execution stream, and redo stream, split into the recycled records
	// in the same order a cold run would Split them.
	for j := 0; j < numGroups; j++ {
		gr := groups[j]
		gr.idx = j
		gr.start, gr.end = j*g, min(n, (j+1)*g)
		gr.ctl, gr.lane = ctl, coordLane+1+j
		root.SplitInto(&gr.specSrc)
		root.SplitInto(&gr.execSrc)
		root.SplitInto(&gr.redoSrc)
		gr.aborted.Store(false)
		gr.failure, gr.failArg, gr.panicErr = failNone, 0, nil
		gr.execNS = 0
		gr.checkpointAt = 0
	}

	// Speculative start states: group 0 starts from the initial state;
	// group j>0 from aux(S0, last `window` inputs before the group). A
	// panic in the auxiliary code (or the state clone feeding it) marks
	// the group failed before launch: its lane bails immediately and the
	// boundary inspection below turns the failure into an abort.
	groups[0].specStart = d.ops.Clone(initial)
	// auxNS, commitNS and wasteNS feed the wasted-work attribution:
	// per-group lane nanoseconds, resolved into committed vs discarded
	// when the run's outcome is known (finishLaneCPU below).
	auxNS := scr.auxNS
	commitNS := scr.commitNS
	wasteNS := scr.wasteNS
	for j := 1; j < numGroups; j++ {
		lo := groups[j].start - window
		if lo < 0 {
			lo = 0
		}
		recent := inputs[lo:groups[j].start]
		st.AuxCalls++
		st.AuxInputs += len(recent)
		if ctl != nil {
			ctl.Yield(sched.PointAux, coordLane)
		}
		auxStart := time.Now()
		spec, ok, pe := d.safeAux(&groups[j].specSrc, initial, recent)
		auxNS[j] = time.Since(auxStart).Nanoseconds()
		if !ok {
			groups[j].failure = failPanic
			groups[j].panicErr = pe
			groups[j].aborted.Store(true)
			continue
		}
		groups[j].specStart = spec
		if o != nil {
			o.AuxProduced.Inc()
			o.Tracer.Emit(j, obs.EvAuxProduced, int32(j), int64(len(recent)))
		}
	}

	// Launch every group; each runs its inputs sequentially from its
	// (speculative) start state, checkpointing before its last W inputs.
	p := opts.Pool
	if p == nil {
		p = newRunPool(opts)
		// A private pool reports its scheduler events to this run's
		// observer; a shared pool's observer (and controller) is owned by
		// whoever built the pool (stats.Runtime) and is left untouched.
		p.SetObserver(o)
		// Close waits for the workers, and a worker may be parked at one
		// of its decision points — the coordinator must release its
		// schedule token or neither side can advance.
		defer func() {
			if ctl != nil {
				ctl.Block(coordLane)
			}
			p.Close()
			if ctl != nil {
				ctl.Unblock(coordLane)
			}
		}()
	}
	poolBase := p.Metrics() // baseline for this run's scheduler deltas
	// The task bodies (groupTask) and their closures live in the scratch;
	// arm the latches only now, so nothing between begin and launch can
	// strand an armed latch into the next run.
	tasks := scr.tasks[:numGroups]
	for j := 0; j < numGroups; j++ {
		scr.wg.Add(1)
		groups[j].done.Add(1)
	}
	// Fan the whole group set out in one batch operation; a closed pool
	// leaves a suffix unqueued, which runs inline on the coordinator. Both
	// can block for real (saturated pool; inline group execution yields on
	// the groups' own lanes), so the coordinator steps out of the schedule
	// around them.
	if ctl != nil {
		ctl.Block(coordLane)
	}
	nq, err := p.SubmitBatch(tasks)
	if err != nil {
		for _, task := range tasks[nq:] {
			task()
		}
	}
	if ctl != nil {
		ctl.Unblock(coordLane)
	}

	// Validate in input order. Group 0 is never speculative. For each
	// subsequent group, first check the group's own execution survived
	// (no contained panic, no deadline squash), then gather originals
	// from the previous group (first execution plus up to redoMax
	// re-executions) and ask the developer's acceptance method whether
	// the speculative start state matches.
	outs := make([]O, 0, n)
	// committed holds, per validated group, the execution whose outputs
	// are committed.
	committed := scr.committed

	abortAt := -1 // first group index whose speculation failed
	// abort squashes groups j.. and records the boundary outcome. The
	// squash yield comes AFTER the abort flags are set (a post-write
	// yield): parking the coordinator there lets the controller decide
	// which in-flight lanes observe the squash mid-group and which run
	// to completion first — the validate/squash race the exploration
	// harness targets.
	abort := func(j, redosUsed int) {
		st.Aborts++
		if o != nil {
			o.Aborts.Inc()
			o.Tracer.Emit(obs.LaneCoord, obs.EvAbort, int32(j), int64(redosUsed))
		}
		abortAt = j
		for k := j; k < numGroups; k++ {
			groups[k].aborted.Store(true)
			if o != nil {
				o.Squashes.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvSquash, int32(k), int64(groups[k].end-groups[k].start))
			}
		}
		if ctl != nil {
			ctl.Yield(sched.PointSquash, coordLane)
		}
	}

	// finishLaneCPU resolves the attribution once the outcome is known:
	// groups before the abort point (all of them when speculation
	// succeeded) committed their exec+aux lane time, groups at or past it
	// wasted theirs; redo and fallback time was already filed into
	// commitNS/wasteNS at the boundary that spent it. Every read of
	// groups[j].execNS is ordered after the lane's write by <-done or
	// wg.Wait. Stats always carries the split; the observer counters and
	// per-group attribution events ride behind the usual nil check.
	finishLaneCPU := func() {
		for j := 0; j < numGroups; j++ {
			spent := groups[j].execNS + auxNS[j]
			if abortAt >= 0 && j >= abortAt {
				wasteNS[j] += spent
			} else {
				commitNS[j] += spent
			}
			if commitNS[j] > 0 {
				st.LaneCPUCommittedNS += commitNS[j]
				if o != nil {
					o.LaneCPUCommitted.Add(commitNS[j])
					o.Tracer.Emit(obs.LaneCoord, obs.EvLaneCPUCommitted, int32(j), commitNS[j])
				}
			}
			if wasteNS[j] > 0 {
				st.LaneCPUWastedNS += wasteNS[j]
				if o != nil {
					o.LaneCPUWasted.Add(wasteNS[j])
					o.Tracer.Emit(obs.LaneCoord, obs.EvLaneCPUWasted, int32(j), wasteNS[j])
				}
			}
		}
	}

	first := groups[0]
	if ctl != nil {
		ctl.Block(coordLane)
	}
	first.done.Wait()
	if ctl != nil {
		ctl.Unblock(coordLane)
	}
	if first.failure != failNone {
		// Group 0 ran from the true initial state but its lane failed;
		// nothing is committed and the whole vector falls back.
		abort(0, 0)
	} else {
		committed[0] = first.base
	}

	hashFirst := d.hashFirst()
	for j := 1; j < numGroups && abortAt < 0; j++ {
		prev := groups[j-1]
		cur := groups[j]
		if ctl != nil {
			ctl.Block(coordLane)
		}
		cur.done.Wait()
		if ctl != nil {
			ctl.Unblock(coordLane)
		}

		if cur.failure != failNone {
			// The group's own results are unusable (contained panic or
			// deadline): squash it like a mismatch with no redo budget.
			abort(j, 0)
			break
		}

		// The previous group's final state depends on which of its
		// executions was committed; re-executions below replace only
		// the suffix after the checkpoint, so the originals set always
		// extends the committed prefix. The originals (and, hash-first,
		// their fingerprints) accumulate in recycled scratch storage.
		var vstart time.Time
		if o != nil {
			vstart = time.Now()
		}
		if ctl != nil {
			ctl.Yield(sched.PointValidate, coordLane)
		}
		var specFP uint64
		if hashFirst {
			fp, ok, pe := d.safeFingerprint(cur.specStart)
			if !ok {
				cur.failure, cur.panicErr = failPanic, pe
				abort(j, 0)
				break
			}
			specFP = fp
		}
		originals, ok, pe := scr.resetOriginals(committed[j-1].final, hashFirst)
		if !ok {
			cur.failure, cur.panicErr = failPanic, pe
			abort(j, 0)
			break
		}
		matched, ok, pe := d.acceptAttempt(cur.specStart, specFP, hashFirst, originals, scr.origFPs, st, o)
		if !ok {
			cur.failure, cur.panicErr = failPanic, pe
			abort(j, 0)
			break
		}
		acceptedExec := committed[j-1]
		if o != nil && !matched {
			o.Mismatches.Inc()
			o.Tracer.Emit(obs.LaneCoord, obs.EvValidateMismatch, int32(j), 0)
		}

		redosUsed := 0
		panicked := false
		var panicErr *PanicError
		var redoNS, acceptedRedoNS int64
		for t := 0; !matched && t < redoMax; t++ {
			if o != nil {
				o.Redos.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvRedo, int32(j), int64(t+1))
			}
			if ctl != nil {
				ctl.Yield(sched.PointRedo, coordLane)
			}
			redoStart := time.Now()
			redo, rok, rpe := d.safeRedoGroup(prev, inputs, &scr.invocations)
			thisRedoNS := time.Since(redoStart).Nanoseconds()
			redoNS += thisRedoNS
			if !rok {
				// The re-execution (prev's compute or clone) panicked:
				// the boundary cannot resolve, so the unvalidated
				// group is squashed and the panic attributed to it.
				panicked, panicErr = true, rpe
				break
			}
			st.Redos++
			redosUsed++
			originals, ok, pe = scr.appendOriginal(redo.final, hashFirst)
			if !ok {
				panicked, panicErr = true, pe
				break
			}
			m, mok, mpe := d.acceptAttempt(cur.specStart, specFP, hashFirst, originals, scr.origFPs, st, o)
			if !mok {
				panicked, panicErr = true, mpe
				break
			}
			if m {
				matched = true
				acceptedRedoNS = thisRedoNS
				// Commit the matching re-execution's suffix in
				// place of the first execution's.
				acceptedExec = spliceExecution(committed[j-1], redo, prev)
			}
		}
		// Redo lane time burned at this boundary: the accepted
		// re-execution (if any) produced committed outputs, every other
		// redo is wasted work on the producing group.
		commitNS[j-1] += acceptedRedoNS
		wasteNS[j-1] += redoNS - acceptedRedoNS
		if panicked {
			cur.failure, cur.panicErr = failPanic, panicErr
			abort(j, redosUsed)
			break
		}

		if matched {
			st.Matches++
			if o != nil {
				o.Matches.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvValidateMatch, int32(j), int64(redosUsed))
				o.ValidationLatencyNS.Observe(time.Since(vstart).Nanoseconds())
				o.RedosPerValidation.Observe(int64(redosUsed))
			}
			committed[j-1] = acceptedExec
			committed[j] = cur.base
			emitExec(emit, committed[j-1], groups[j-1].start)
			continue
		}

		// Speculation failed: abort this and all subsequent groups.
		abort(j, redosUsed)
		if o != nil {
			o.ValidationLatencyNS.Observe(time.Since(vstart).Nanoseconds())
			o.RedosPerValidation.Observe(int64(redosUsed))
		}
		break
	}

	if abortAt < 0 {
		// Every group validated; commit in order.
		if ctl != nil {
			ctl.Block(coordLane)
		}
		scr.wg.Wait()
		if ctl != nil {
			ctl.Unblock(coordLane)
		}
		for j := 0; j < numGroups; j++ {
			outs = append(outs, committed[j].outputs...)
			if j > 0 {
				st.SpeculativeCommits += groups[j].end - groups[j].start
				if o != nil {
					o.SpecCommittedInputs.Add(int64(groups[j].end - groups[j].start))
				}
			}
		}
		emitExec(emit, committed[numGroups-1], groups[numGroups-1].start)
		st.Invocations += scr.invocations.Load()
		st.UsefulInvocations += int64(n) // one committed invocation per input
		finishLaneCPU()
		captureScheduler(st, p, poolBase)
		return outs, committed[numGroups-1].final, *st
	}

	// Abort path: wait out in-flight groups (they bail early on the
	// aborted flag), squash their outputs, and reprocess the remaining
	// inputs sequentially from the first original final state of the
	// last valid group (the uncloned initial state when group 0 itself
	// failed). Per §3.1, "no other speculation is performed until all
	// the current inputs are processed."
	if ctl != nil {
		ctl.Block(coordLane)
	}
	scr.wg.Wait()
	if ctl != nil {
		ctl.Unblock(coordLane)
	}
	// Failure sweep: every lane is done, so the flags are final. Count
	// and trace each contained panic and deadline squash — groups past
	// the abort point may have failed concurrently before the squash
	// reached them, and those panics were contained too. The panic's
	// value and stack ride out of the run in Stats.Panics (the EvPanic
	// event's fixed-size argument stays the input count).
	for _, gr := range groups {
		switch gr.failure {
		case failPanic:
			st.PanickedGroups++
			if gr.panicErr != nil {
				st.Panics = append(st.Panics, gr.panicErr)
			}
			if o != nil {
				o.PanickedGroups.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvPanic, int32(gr.idx), int64(gr.end-gr.start))
			}
		case failTimeout:
			st.TimedOutGroups++
			if o != nil {
				o.GroupTimeouts.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvGroupTimeout, int32(gr.idx), gr.failArg)
			}
		}
	}
	for j := 0; j < abortAt; j++ {
		outs = append(outs, committed[j].outputs...)
		if j > 0 {
			st.SpeculativeCommits += groups[j].end - groups[j].start
			if o != nil {
				o.SpecCommittedInputs.Add(int64(groups[j].end - groups[j].start))
			}
		}
	}
	fallbackState := d.ops.Clone(initial)
	if abortAt > 0 {
		emitExec(emit, committed[abortAt-1], groups[abortAt-1].start)
		fallbackState = committed[abortAt-1].final
	}
	st.SquashedInputs = n - groups[abortAt].start
	st.Invocations += scr.invocations.Load()

	fallbackStart := groups[abortAt].start
	st.FallbackInputs = n - fallbackStart
	if o != nil {
		o.FallbackInputs.Add(int64(n - fallbackStart))
		o.Tracer.Emit(obs.LaneCoord, obs.EvFallback, int32(abortAt), int64(n-fallbackStart))
	}
	if ctl != nil {
		ctl.Yield(sched.PointFallback, coordLane)
	}
	fbStart := time.Now()
	fbOuts, final := d.runSequential(root, inputs[fallbackStart:], fallbackState, st, emit, fallbackStart)
	// The sequential fallback produced committed outputs; its time is
	// filed against the aborting group, whose speculative work it redid.
	commitNS[abortAt] += time.Since(fbStart).Nanoseconds()
	outs = append(outs, fbOuts...)
	st.UsefulInvocations += int64(fallbackStart)
	finishLaneCPU()
	captureScheduler(st, p, poolBase)
	return outs, final, *st
}

// safeAux runs the auxiliary code (including the initial-state clone that
// feeds it) with panic containment, reporting whether it completed; on a
// panic the recovered value and unwind stack come back in pe.
func (d *Dependence[I, S, O]) safeAux(r *rng.Source, initial S, recent []I) (spec S, ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			ok, pe = false, &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return d.aux(r, d.ops.Clone(initial), recent), true, nil
}

// safeMatchAny runs the developer's acceptance method with panic
// containment, reporting whether it completed; on a panic the recovered
// value and unwind stack come back in pe. A nil MatchAny accepts by
// construction.
func (d *Dependence[I, S, O]) safeMatchAny(spec S, originals []S) (matched, ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			matched, ok, pe = false, false, &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	if d.ops.MatchAny == nil {
		return true, true, nil
	}
	return d.ops.MatchAny(spec, originals), true, nil
}

// safeFingerprint hashes a state with panic containment (Fingerprint is
// user code, so it gets the same isolation MatchAny does).
func (d *Dependence[I, S, O]) safeFingerprint(s S) (fp uint64, ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			ok, pe = false, &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return d.ops.Fingerprint(s), true, nil
}

// acceptAttempt resolves one acceptance attempt. Hash-first dependences
// consult the fingerprint prefilter: when no original's fingerprint
// equals the speculative state's, MatchAny cannot accept (the contract
// makes equal fingerprints a necessary condition), so the attempt is a
// recorded miss with no deep compare; a hit falls through to MatchAny.
func (d *Dependence[I, S, O]) acceptAttempt(spec S, specFP uint64, hashFirst bool, originals []S, origFPs []uint64, st *Stats, o *obs.Observer) (matched, ok bool, pe *PanicError) {
	if hashFirst {
		hit := false
		for _, fp := range origFPs {
			if fp == specFP {
				hit = true
				break
			}
		}
		if !hit {
			st.FingerprintMisses++
			if o != nil {
				o.FingerprintMisses.Inc()
			}
			return false, true, nil
		}
		st.FingerprintHits++
		if o != nil {
			o.FingerprintHits.Inc()
		}
	}
	return d.safeMatchAny(spec, originals)
}

// resetOriginals starts a boundary's originals set (recycled storage)
// with the committed previous final state, fingerprinting it when the
// dependence validates hash-first.
func (scr *runScratch[I, S, O]) resetOriginals(first S, hashFirst bool) ([]S, bool, *PanicError) {
	scr.originals = scr.originals[:0]
	scr.origFPs = scr.origFPs[:0]
	return scr.appendOriginal(first, hashFirst)
}

// appendOriginal adds one original state (and, hash-first, its
// fingerprint) to the boundary's set.
func (scr *runScratch[I, S, O]) appendOriginal(s S, hashFirst bool) ([]S, bool, *PanicError) {
	if hashFirst {
		fp, ok, pe := scr.d.safeFingerprint(s)
		if !ok {
			return scr.originals, false, pe
		}
		scr.origFPs = append(scr.origFPs, fp)
	}
	scr.originals = append(scr.originals, s)
	return scr.originals, true, nil
}

// safeRedoGroup runs one re-execution with panic containment, reporting
// whether it completed; on a panic the recovered value and unwind stack
// come back in pe.
func (d *Dependence[I, S, O]) safeRedoGroup(gr *groupRun[I, S, O], inputs []I, invocations *atomic.Int64) (redo execution[S, O], ok bool, pe *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			ok, pe = false, &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return d.redoGroup(gr, inputs, invocations), true, nil
}

// newRunPool builds the private worker pool for one run: Options.Workers
// wide, worker PRNGs seeded from Options.Seed, and the run's controller
// (if any) attached so pool-level decisions are explorable too.
func newRunPool(opts Options) *pool.Pool {
	w := opts.Workers
	if w < 1 {
		w = 1
	}
	p := pool.NewSeeded(w, opts.Seed)
	if opts.Sched != nil {
		p.SetController(opts.Sched)
	}
	return p
}

// captureScheduler fills the run's scheduler counters as deltas against the
// pool-metrics baseline taken before the group fan-out.
func captureScheduler(st *Stats, p *pool.Pool, before pool.Metrics) {
	m := p.Metrics()
	st.Steals = m.Steals - before.Steals
	st.LocalHits = m.LocalHits - before.LocalHits
	st.QueueDepthPeak = m.QueueDepthPeak
}

// emitExec streams one committed execution's outputs.
func emitExec[S, O any](emit Emit[O], exec execution[S, O], base int) {
	if emit == nil {
		return
	}
	for i, o := range exec.outputs {
		emit(base+i, o)
	}
}

// executeGroup runs one group's inputs sequentially from its start state,
// recording the checkpoint needed for re-executions. If the group is
// aborted mid-flight it bails out early; its results are then never read.
// A positive timeout bounds the group's wall-clock execution (group 0 is
// exempt: its outputs commit unconditionally, so squashing it gains
// nothing). Group start/finish events go to ob (nil-checked) so the
// observed schedule shows every group's execution span, squashed or not.
//
// Under a controller (gr.ctl) the lane yields at start, before every
// step's abort-flag inspection, and at finish; with a deadline it asks
// the controller each step whether the deadline expired instead of
// consulting the real clock, because serialized lanes spend most of
// their wall-clock time parked.
func (d *Dependence[I, S, O]) executeGroup(inputs []I, gr *groupRun[I, S, O], rollback int, timeout time.Duration, invocations *atomic.Int64, ob *obs.Observer) {
	length := gr.end - gr.start
	w := rollback
	if w < 1 {
		w = 1
	}
	if w > length {
		w = length
	}
	checkpointAt := gr.end - w

	ctl := gr.ctl
	deadlined := timeout > 0 && gr.idx > 0
	started := time.Now()
	// Record the lane time on every exit — panic included, so a contained
	// user-code panic still attributes the CPU burned before it.
	defer func() {
		gr.execNS = time.Since(started).Nanoseconds()
	}()
	if ctl != nil {
		ctl.Yield(sched.PointGroupStart, gr.lane)
	}
	if ob != nil {
		ob.GroupsStarted.Inc()
		ob.Tracer.Emit(gr.idx, obs.EvGroupStart, int32(gr.idx), int64(gr.start))
	}
	s := d.ops.Clone(gr.specStart)
	outs := gr.outBuf[:0]
	gr.checkpointAt = checkpointAt
	for idx := gr.start; idx < gr.end; idx++ {
		if ctl != nil {
			// Yield before the abort-flag inspection, so the controller
			// decides whether this step observes a concurrent squash.
			ctl.Yield(sched.PointGroupStep, gr.lane)
		}
		if gr.aborted.Load() {
			// Squashed: record what we have; it will be discarded.
			break
		}
		if deadlined {
			expired := false
			var elapsedNS int64
			if ctl != nil {
				expired = ctl.Choose(sched.PointTimeoutCheck, gr.lane, 2) == 1
			} else if elapsed := time.Since(started); elapsed > timeout {
				expired = true
				elapsedNS = elapsed.Nanoseconds()
			}
			if expired {
				// Deadline exceeded: squash exactly like a validation
				// mismatch. Only this lane is marked; the coordinator's
				// boundary inspection squashes the successors.
				gr.failure = failTimeout
				gr.failArg = elapsedNS
				gr.aborted.Store(true)
				break
			}
		}
		if idx == checkpointAt {
			gr.checkpoint = d.ops.Clone(s)
		}
		var o O
		gr.execSrc.SplitInto(&gr.callSrc)
		o, s = d.compute(&gr.callSrc, inputs[idx], s)
		invocations.Add(1)
		outs = append(outs, o)
	}
	if ctl != nil {
		ctl.Yield(sched.PointGroupFinish, gr.lane)
	}
	gr.outBuf = outs
	gr.base = execution[S, O]{outputs: outs, final: s}
	if ob != nil {
		ob.GroupsFinished.Inc()
		ob.Tracer.Emit(gr.idx, obs.EvGroupFinish, int32(gr.idx), int64(len(outs)))
	}
}

// redoGroup re-executes the suffix of a group after its checkpoint with
// fresh randomness, returning the suffix execution. The outputs reuse the
// group's redo buffer: a boundary consumes each redo (accepting it into a
// splice or discarding it) before requesting the next, so one buffer per
// group suffices.
func (d *Dependence[I, S, O]) redoGroup(gr *groupRun[I, S, O], inputs []I, invocations *atomic.Int64) execution[S, O] {
	s := d.ops.Clone(gr.checkpoint)
	outs := gr.redoBuf[:0]
	for idx := gr.checkpointAt; idx < gr.end; idx++ {
		var o O
		gr.redoSrc.SplitInto(&gr.redoCallSrc)
		o, s = d.compute(&gr.redoCallSrc, inputs[idx], s)
		invocations.Add(1)
		outs = append(outs, o)
	}
	gr.redoBuf = outs
	return execution[S, O]{outputs: outs, final: s}
}

// spliceExecution replaces the post-checkpoint suffix of base with the
// re-executed suffix, yielding the committed execution for the group. The
// merged outputs live in the group's splice buffer — a group is spliced
// at most once per run (an accepted redo ends its boundary), so the
// buffer is never overwritten while referenced.
func spliceExecution[I, S, O any](base execution[S, O], redo execution[S, O], gr *groupRun[I, S, O]) execution[S, O] {
	prefix := gr.checkpointAt - gr.start
	outs := gr.spliceBuf[:0]
	outs = append(outs, base.outputs[:prefix]...)
	outs = append(outs, redo.outputs...)
	gr.spliceBuf = outs
	return execution[S, O]{outputs: outs, final: redo.final}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
