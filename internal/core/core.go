// Package core implements the paper's primary contribution: the STATS
// execution model of §3.1, which satisfies state dependences with
// compiler-generated auxiliary code and validates the speculation at run
// time.
//
// A state dependence is the code pattern of Figure 4: invocation i computes
// an output from an input while reading and updating a state S, so
// invocation i+1 depends on invocation i's state write, serializing the
// chain. The engine breaks the chain by grouping inputs into ordered blocks
// and overlapping the blocks' computations; each block after the first
// starts from a speculative state produced by auxiliary code from only a few
// recent inputs. When the preceding block finishes, its final state is
// compared with the speculative state (the developer's
// doesSpecStateMatchAny); on mismatch the preceding block may re-execute its
// last few inputs — fresh nondeterminism can produce a different, matching
// final state — up to a budget. If the budget is exhausted, all subsequent
// blocks are aborted and squashed, execution resumes sequentially from the
// first original final state, and no further speculation is performed for
// the current input vector.
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/rng"
)

// Compute is the target of a state dependence (computeOutput in Figure 8):
// given an input and the current state, it produces an output and the next
// state. It must not retain s. The rng.Source carries the invocation's
// nondeterminism; re-executions receive fresh sources, which is what gives
// the runtime multiple original states to match against.
type Compute[I, S, O any] func(r *rng.Source, in I, s S) (O, S)

// Aux is auxiliary code for a state dependence: an alternative producer that
// builds a speculative state from the initial state and the window of inputs
// immediately preceding the block it feeds. A nil Aux means the dependence
// has no auxiliary code and must be satisfied conventionally.
type Aux[I, S any] func(r *rng.Source, init S, recent []I) S

// StateOps supplies the developer-provided state methods of the SDI
// (Figure 9): Clone corresponds to operator= (state privatization), and
// MatchAny to doesSpecStateMatchAny (speculative-state acceptance against a
// set of original states).
type StateOps[S any] struct {
	Clone    func(S) S
	MatchAny func(spec S, originals []S) bool
}

// Options configures one run of the engine. All values correspond to state
// space dimensions (§3.3) chosen by the autotuner.
type Options struct {
	// UseAux enables speculation. When false the dependence is satisfied
	// conventionally (the paper's baseline).
	UseAux bool
	// GroupSize is the input-group cardinality G. Values below 1 are
	// treated as 1.
	GroupSize int
	// Window is the number of previous inputs the auxiliary code
	// consumes (k). Negative values are treated as 0.
	Window int
	// RedoMax is the number of times the original producer may
	// re-execute per validation (R). Negative values are treated as 0.
	RedoMax int
	// Rollback is how many inputs a re-execution goes back (W), clamped
	// to [1, group length].
	Rollback int
	// Workers is the number of pool workers used for group-level TLP.
	Workers int
	// Seed determines every random stream of the run. Runs with equal
	// seeds and options are reproducible; distinct seeds model the
	// program's nondeterminism.
	Seed uint64
	// Pool, when non-nil, supplies the shared worker pool; otherwise the
	// engine creates a private pool of Options.Workers width for the run.
	Pool *pool.Pool
	// Obs, when non-nil, receives the run's speculation event log and
	// metrics: the engine emits a trace event and updates the registry
	// at every speculation decision point (group start/finish, auxiliary
	// state production, validation match/mismatch, redo, abort, squash,
	// fallback). A nil Obs costs one branch per decision point.
	Obs *obs.Observer
}

// Stats reports what the runtime did during a run. The profiler and the
// evaluation harness consume these to account overhead, abort rates, and
// wasted work.
type Stats struct {
	Inputs  int // inputs processed
	Groups  int // groups formed (1 means sequential)
	Matches int // speculative states accepted
	Redos   int // original-producer re-executions performed
	Aborts  int // validation failures that aborted speculation

	// SpeculativeCommits counts inputs whose outputs were committed from
	// a speculative (group > 0) execution.
	SpeculativeCommits int
	// SquashedInputs counts inputs whose speculative outputs were thrown
	// away by an abort.
	SquashedInputs int
	// FallbackInputs counts inputs re-processed sequentially after an
	// abort.
	FallbackInputs int
	// Invocations counts every Compute call, including re-executions and
	// squashed work; UsefulInvocations counts only calls whose output was
	// committed.
	Invocations       int64
	UsefulInvocations int64
	// AuxCalls counts auxiliary-code executions; AuxInputs the total
	// inputs they consumed.
	AuxCalls  int
	AuxInputs int

	// Scheduler counters, deltas over this run of the worker pool's
	// sharded work-stealing dispatcher (§3.4 runtime). Steals are
	// cross-worker dispatches, LocalHits the contention-free local-deque
	// fast path. On a shared pool with concurrent runs the deltas
	// attribute pool-wide activity to each overlapping run.
	Steals    int64
	LocalHits int64
	// QueueDepthPeak is the pool's peak single-deque depth as of the end
	// of the run (a lifetime high-water mark, not a delta).
	QueueDepthPeak int64
}

// Dependence is a runnable state dependence: the compute target, its
// auxiliary code, and the state methods.
type Dependence[I, S, O any] struct {
	compute Compute[I, S, O]
	aux     Aux[I, S]
	ops     StateOps[S]
}

// New returns a Dependence. compute and ops.Clone must be non-nil; aux and
// ops.MatchAny may be nil (no auxiliary code / by-construction acceptance,
// like the paper's swaptions, streamcluster and streamclassifier, whose
// speculative state "could have already been generated by an execution of
// the original program").
func New[I, S, O any](compute Compute[I, S, O], aux Aux[I, S], ops StateOps[S]) *Dependence[I, S, O] {
	if compute == nil {
		panic("core: nil compute")
	}
	if ops.Clone == nil {
		panic("core: nil state clone")
	}
	return &Dependence[I, S, O]{compute: compute, aux: aux, ops: ops}
}

// matchAny applies the developer's acceptance method; a nil MatchAny accepts
// by construction.
func (d *Dependence[I, S, O]) matchAny(spec S, originals []S) bool {
	if d.ops.MatchAny == nil {
		return true
	}
	return d.ops.MatchAny(spec, originals)
}

// Run processes inputs starting from initial, returning the outputs in input
// order, the final state, and run statistics. The initial state is not
// mutated (it is cloned before first use).
func (d *Dependence[I, S, O]) Run(inputs []I, initial S, opts Options) ([]O, S, Stats) {
	return d.runAll(inputs, initial, opts, nil)
}

// runAll is the engine entry shared by Run and RunStream.
func (d *Dependence[I, S, O]) runAll(inputs []I, initial S, opts Options, emit Emit[O]) ([]O, S, Stats) {
	var st Stats
	st.Inputs = len(inputs)
	root := rng.New(opts.Seed)

	if len(inputs) == 0 {
		st.Groups = 0
		return nil, d.ops.Clone(initial), st
	}

	g := opts.GroupSize
	if g < 1 {
		g = 1
	}
	speculating := opts.UseAux && d.aux != nil && g < len(inputs)
	if !speculating {
		outs, final := d.runSequential(root, inputs, d.ops.Clone(initial), &st, emit, 0)
		st.Groups = 1
		return outs, final, st
	}
	return d.runSpeculative(root, inputs, initial, g, opts, &st, emit)
}

// runSequential is the conventional execution: one invocation after
// another. Outputs stream through emit (when non-nil) as they are
// computed; base is the global index of the first input.
func (d *Dependence[I, S, O]) runSequential(r *rng.Source, inputs []I, s S, st *Stats, emit Emit[O], base int) ([]O, S) {
	outs := make([]O, 0, len(inputs))
	for i, in := range inputs {
		var o O
		o, s = d.compute(r.Split(), in, s)
		st.Invocations++
		st.UsefulInvocations++
		outs = append(outs, o)
		if emit != nil {
			emit(base+i, o)
		}
	}
	return outs, s
}

// capturedPanic wraps a panic value recovered on a pool worker.
type capturedPanic struct{ value any }

// execution is one (re-)execution of a group suffix: its outputs and final
// state.
type execution[S, O any] struct {
	outputs []O
	final   S
}

// groupRun holds the state of one input group during a speculative run.
type groupRun[I, S, O any] struct {
	idx        int // group index, used as the trace lane hint
	start, end int // input index range [start, end)
	specStart  S   // the state the group started from (spec or S0)

	// First (original) execution results.
	base execution[S, O]
	// checkpoint is the state before the last W inputs of the group,
	// from which re-executions restart; checkpointAt is its input index.
	checkpoint   S
	checkpointAt int

	// redoSrc yields fresh randomness for re-executions.
	redoSrc *rng.Source

	done    chan struct{}
	aborted atomic.Bool // set to squash this group's in-flight work
}

// runSpeculative implements the §3.1 execution model. Outputs stream
// through emit (when non-nil) at their commit points: a group's outputs
// become final when the NEXT boundary's validation resolves (a redo may
// splice its suffix until then), the last group's at run completion, and
// fallback outputs as they are computed.
func (d *Dependence[I, S, O]) runSpeculative(root *rng.Source, inputs []I, initial S, g int, opts Options, st *Stats, emit Emit[O]) ([]O, S, Stats) {
	n := len(inputs)
	numGroups := (n + g - 1) / g
	st.Groups = numGroups

	window := opts.Window
	if window < 0 {
		window = 0
	}
	redoMax := opts.RedoMax
	if redoMax < 0 {
		redoMax = 0
	}

	// Derive all random streams on the coordinator so the run is
	// reproducible regardless of scheduling: per-group spec stream,
	// execution stream, and redo stream.
	groups := make([]*groupRun[I, S, O], numGroups)
	specSrcs := make([]*rng.Source, numGroups)
	execSrcs := make([]*rng.Source, numGroups)
	for j := 0; j < numGroups; j++ {
		specSrcs[j] = root.Split()
		execSrcs[j] = root.Split()
		groups[j] = &groupRun[I, S, O]{
			idx:     j,
			start:   j * g,
			end:     min(n, (j+1)*g),
			redoSrc: root.Split(),
			done:    make(chan struct{}),
		}
	}

	// Speculative start states: group 0 starts from the initial state;
	// group j>0 from aux(S0, last `window` inputs before the group).
	o := opts.Obs
	groups[0].specStart = d.ops.Clone(initial)
	for j := 1; j < numGroups; j++ {
		lo := groups[j].start - window
		if lo < 0 {
			lo = 0
		}
		recent := inputs[lo:groups[j].start]
		groups[j].specStart = d.aux(specSrcs[j], d.ops.Clone(initial), recent)
		st.AuxCalls++
		st.AuxInputs += len(recent)
		if o != nil {
			o.AuxProduced.Inc()
			o.Tracer.Emit(j, obs.EvAuxProduced, int32(j), int64(len(recent)))
		}
	}

	// Launch every group; each runs its inputs sequentially from its
	// (speculative) start state, checkpointing before its last W inputs.
	p := opts.Pool
	if p == nil {
		w := opts.Workers
		if w < 1 {
			w = 1
		}
		p = pool.New(w)
		// A private pool reports its scheduler events to this run's
		// observer; a shared pool's observer is owned by whoever built
		// the pool (stats.Runtime) and is left untouched.
		p.SetObserver(o)
		defer p.Close()
	}
	sched := p.Metrics() // baseline for this run's scheduler deltas
	var invocations atomic.Int64
	var wg sync.WaitGroup
	// A panic in user code on a pool worker would kill the process;
	// capture the first one and re-raise it on the coordinating
	// goroutine so callers can recover it like any synchronous panic.
	var panicked atomic.Value
	tasks := make([]pool.Task, numGroups)
	for j := 0; j < numGroups; j++ {
		j := j
		gr := groups[j]
		wg.Add(1)
		tasks[j] = func() {
			defer wg.Done()
			defer close(gr.done)
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, capturedPanic{value: r})
					// Squash everything; the run is aborted.
					for _, g := range groups {
						g.aborted.Store(true)
					}
				}
			}()
			d.executeGroup(execSrcs[j], inputs, gr, opts.Rollback, &invocations, o)
		}
	}
	// Fan the whole group set out in one batch operation; a closed pool
	// leaves a suffix unqueued, which runs inline on the coordinator.
	nq, err := p.SubmitBatch(tasks)
	if err != nil {
		for _, task := range tasks[nq:] {
			task()
		}
	}
	rethrow := func() {
		if pv := panicked.Load(); pv != nil {
			panic(pv.(capturedPanic).value)
		}
	}

	// Validate in input order. Group 0 is never speculative. For each
	// subsequent group, gather originals from the previous group (first
	// execution plus up to redoMax re-executions) and ask the developer's
	// acceptance method whether the speculative start state matches.
	outs := make([]O, 0, n)
	validPrev := groups[0]
	<-validPrev.done
	rethrow()
	// accepted holds, per validated group, the execution whose outputs
	// are committed.
	committed := make([]execution[S, O], numGroups)
	committed[0] = validPrev.base

	abortAt := -1 // first group index whose speculation failed
	for j := 1; j < numGroups; j++ {
		prev := groups[j-1]
		cur := groups[j]
		<-cur.done
		rethrow()

		// The previous group's final state depends on which of its
		// executions was committed; re-executions below replace only
		// the suffix after the checkpoint, so the originals set always
		// extends the committed prefix.
		var vstart time.Time
		if o != nil {
			vstart = time.Now()
		}
		originals := []S{committed[j-1].final}
		matched := d.matchAny(cur.specStart, originals)
		acceptedExec := committed[j-1]
		if o != nil && !matched {
			o.Mismatches.Inc()
			o.Tracer.Emit(obs.LaneCoord, obs.EvValidateMismatch, int32(j), 0)
		}

		redosUsed := 0
		for t := 0; !matched && t < redoMax; t++ {
			if o != nil {
				o.Redos.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvRedo, int32(j), int64(t+1))
			}
			redo := d.redoGroup(prev, inputs, &invocations)
			st.Redos++
			redosUsed++
			originals = append(originals, redo.final)
			if d.matchAny(cur.specStart, originals) {
				matched = true
				// Commit the matching re-execution's suffix in
				// place of the first execution's.
				acceptedExec = spliceExecution(committed[j-1], redo, prev)
			}
		}

		if matched {
			st.Matches++
			if o != nil {
				o.Matches.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvValidateMatch, int32(j), int64(redosUsed))
				o.ValidationLatencyNS.Observe(time.Since(vstart).Nanoseconds())
				o.RedosPerValidation.Observe(int64(redosUsed))
			}
			committed[j-1] = acceptedExec
			committed[j] = cur.base
			emitExec(emit, committed[j-1], groups[j-1].start)
			continue
		}

		// Speculation failed: abort this and all subsequent groups.
		st.Aborts++
		if o != nil {
			o.Aborts.Inc()
			o.Tracer.Emit(obs.LaneCoord, obs.EvAbort, int32(j), int64(redosUsed))
			o.ValidationLatencyNS.Observe(time.Since(vstart).Nanoseconds())
			o.RedosPerValidation.Observe(int64(redosUsed))
		}
		abortAt = j
		for k := j; k < numGroups; k++ {
			groups[k].aborted.Store(true)
			if o != nil {
				o.Squashes.Inc()
				o.Tracer.Emit(obs.LaneCoord, obs.EvSquash, int32(k), int64(groups[k].end-groups[k].start))
			}
		}
		break
	}

	if abortAt < 0 {
		// Every group validated; commit in order.
		wg.Wait()
		rethrow()
		for j := 0; j < numGroups; j++ {
			outs = append(outs, committed[j].outputs...)
			if j > 0 {
				st.SpeculativeCommits += groups[j].end - groups[j].start
				if o != nil {
					o.SpecCommittedInputs.Add(int64(groups[j].end - groups[j].start))
				}
			}
		}
		emitExec(emit, committed[numGroups-1], groups[numGroups-1].start)
		st.Invocations += invocations.Load()
		st.UsefulInvocations += int64(n) // one committed invocation per input
		captureScheduler(st, p, sched)
		return outs, committed[numGroups-1].final, *st
	}

	// Abort path: wait out in-flight groups (they bail early on the
	// aborted flag), squash their outputs, and reprocess the remaining
	// inputs sequentially from the first original final state of the
	// last valid group. Per §3.1, "no other speculation is performed
	// until all the current inputs are processed."
	wg.Wait()
	rethrow()
	for j := 0; j < abortAt; j++ {
		outs = append(outs, committed[j].outputs...)
		if j > 0 {
			st.SpeculativeCommits += groups[j].end - groups[j].start
			if o != nil {
				o.SpecCommittedInputs.Add(int64(groups[j].end - groups[j].start))
			}
		}
	}
	emitExec(emit, committed[abortAt-1], groups[abortAt-1].start)
	st.SquashedInputs = n - groups[abortAt].start
	st.Invocations += invocations.Load()

	fallbackStart := groups[abortAt].start
	st.FallbackInputs = n - fallbackStart
	if o != nil {
		o.FallbackInputs.Add(int64(n - fallbackStart))
		o.Tracer.Emit(obs.LaneCoord, obs.EvFallback, int32(abortAt), int64(n-fallbackStart))
	}
	fbOuts, final := d.runSequential(root, inputs[fallbackStart:], committed[abortAt-1].final, st, emit, fallbackStart)
	outs = append(outs, fbOuts...)
	st.UsefulInvocations += int64(fallbackStart)
	captureScheduler(st, p, sched)
	return outs, final, *st
}

// captureScheduler fills the run's scheduler counters as deltas against the
// pool-metrics baseline taken before the group fan-out.
func captureScheduler(st *Stats, p *pool.Pool, before pool.Metrics) {
	m := p.Metrics()
	st.Steals = m.Steals - before.Steals
	st.LocalHits = m.LocalHits - before.LocalHits
	st.QueueDepthPeak = m.QueueDepthPeak
}

// emitExec streams one committed execution's outputs.
func emitExec[S, O any](emit Emit[O], exec execution[S, O], base int) {
	if emit == nil {
		return
	}
	for i, o := range exec.outputs {
		emit(base+i, o)
	}
}

// executeGroup runs one group's inputs sequentially from its start state,
// recording the checkpoint needed for re-executions. If the group is
// aborted mid-flight it bails out early; its results are then never read.
// Group start/finish events go to ob (nil-checked) so the observed
// schedule shows every group's execution span, squashed or not.
func (d *Dependence[I, S, O]) executeGroup(r *rng.Source, inputs []I, gr *groupRun[I, S, O], rollback int, invocations *atomic.Int64, ob *obs.Observer) {
	length := gr.end - gr.start
	w := rollback
	if w < 1 {
		w = 1
	}
	if w > length {
		w = length
	}
	checkpointAt := gr.end - w

	if ob != nil {
		ob.GroupsStarted.Inc()
		ob.Tracer.Emit(gr.idx, obs.EvGroupStart, int32(gr.idx), int64(gr.start))
	}
	s := d.ops.Clone(gr.specStart)
	outs := make([]O, 0, length)
	gr.checkpointAt = checkpointAt
	for idx := gr.start; idx < gr.end; idx++ {
		if gr.aborted.Load() {
			// Squashed: record what we have; it will be discarded.
			break
		}
		if idx == checkpointAt {
			gr.checkpoint = d.ops.Clone(s)
		}
		var o O
		o, s = d.compute(r.Split(), inputs[idx], s)
		invocations.Add(1)
		outs = append(outs, o)
	}
	gr.base = execution[S, O]{outputs: outs, final: s}
	if ob != nil {
		ob.GroupsFinished.Inc()
		ob.Tracer.Emit(gr.idx, obs.EvGroupFinish, int32(gr.idx), int64(len(outs)))
	}
}

// redoGroup re-executes the suffix of a group after its checkpoint with
// fresh randomness, returning the suffix execution.
func (d *Dependence[I, S, O]) redoGroup(gr *groupRun[I, S, O], inputs []I, invocations *atomic.Int64) execution[S, O] {
	s := d.ops.Clone(gr.checkpoint)
	outs := make([]O, 0, gr.end-gr.checkpointAt)
	for idx := gr.checkpointAt; idx < gr.end; idx++ {
		var o O
		o, s = d.compute(gr.redoSrc.Split(), inputs[idx], s)
		invocations.Add(1)
		outs = append(outs, o)
	}
	return execution[S, O]{outputs: outs, final: s}
}

// spliceExecution replaces the post-checkpoint suffix of base with the
// re-executed suffix, yielding the committed execution for the group.
func spliceExecution[I, S, O any](base execution[S, O], redo execution[S, O], gr *groupRun[I, S, O]) execution[S, O] {
	prefix := gr.checkpointAt - gr.start
	outs := make([]O, 0, gr.end-gr.start)
	outs = append(outs, base.outputs[:prefix]...)
	outs = append(outs, redo.outputs...)
	return execution[S, O]{outputs: outs, final: redo.final}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
