//go:build !race

package core_test

// Differential-suite sizing for the plain tier (see protodiff_race_on_test.go).
const (
	protodiffSeeds         = 8
	protodiffWorkloadSeeds = 8
)

// protodiffWorkloadGrid is the engine-shape grid the workload sweep runs;
// the race tier trims it to one point.
var protodiffWorkloadGrid = []struct {
	g, win, workers int
}{
	{4, 2, 2},
	{8, 2, 4},
}
