package core

import (
	"sync"
	"testing"

	"repro/internal/pool"
)

// Recycling regression tests: the warm engine path must stay
// allocation-light (the run-scoped buffers come from the per-Dependence
// sync.Pool scratch, not the heap), and recycled state must never leak
// between concurrent runs sharing one Dependence.

// TestWarmRunAllocations is the self-calibrating allocation gate: the
// same 32-input group-8 run measured warm (reused Dependence) and cold
// (fresh Dependence per run, the seed path a one-shot caller pays), on a
// shared pool so neither side hides a private worker-pool construction.
// The warm aux path must hold ≤20% of cold — the ratio the PR's hot-path
// recycling is accountable for; the reservations protocol clones and
// returns caller-owned state every round, so its floor is higher and it
// gates on a strict improvement instead.
func TestWarmRunAllocations(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops puts at random; allocs/run is not meaningful")
	}
	inputs := benchInputs(32)
	p := pool.New(4)
	defer p.Close()
	base := Options{UseAux: true, GroupSize: 8, Window: 8, RedoMax: 1, Rollback: 4, Pool: p}

	t.Run("aux", func(t *testing.T) {
		var seed uint64
		cold := testing.AllocsPerRun(50, func() {
			d := New(cheapCompute, sumAux, fingerprintWalkOps())
			o := base
			o.Seed = seed
			seed++
			d.Run(inputs, walkState{}, o)
		})
		d := New(cheapCompute, sumAux, fingerprintWalkOps())
		o := base
		d.Run(inputs, walkState{}, o) // prime the recycled scratch
		warm := testing.AllocsPerRun(50, func() {
			o.Seed = seed
			seed++
			d.Run(inputs, walkState{}, o)
		})
		t.Logf("aux: warm %.1f allocs/run, cold %.1f (%.0f%%)", warm, cold, 100*warm/cold)
		if warm > cold/5 {
			t.Fatalf("warm aux run allocates %.1f/run, more than 20%% of the %.1f cold seed path", warm, cold)
		}
	})

	t.Run("reservations", func(t *testing.T) {
		reserve := ReserveOps[int, []float64]{
			NumSlots:  func(s []float64) int { return len(s) },
			Footprint: func(in int, _ []float64) []int { return []int{in % 8} },
			Merge: func(dst, src []float64, slots []int) []float64 {
				for _, sl := range slots {
					dst[sl] = src[sl]
				}
				return dst
			},
		}
		opts := base
		opts.Protocol = ProtocolReservations
		var seed uint64
		cold := testing.AllocsPerRun(50, func() {
			d := New(benchSlotCompute, nil, benchSlotOps()).WithReserve(reserve)
			o := opts
			o.Seed = seed
			seed++
			d.Run(inputs, make([]float64, 8), o)
		})
		d := New(benchSlotCompute, nil, benchSlotOps()).WithReserve(reserve)
		d.Run(inputs, make([]float64, 8), opts)
		warm := testing.AllocsPerRun(50, func() {
			o := opts
			o.Seed = seed
			seed++
			d.Run(inputs, make([]float64, 8), o)
		})
		t.Logf("reservations: warm %.1f allocs/run, cold %.1f (%.0f%%)", warm, cold, 100*warm/cold)
		if warm >= cold {
			t.Fatalf("warm reservations run allocates %.1f/run, no better than the %.1f cold seed path", warm, cold)
		}
	})
}

// TestRecycledScratchConcurrentRuns hammers one shared Dependence (and
// one shared abort-heavy Dependence) from many goroutines across both
// protocols and the sequential path. Every run must produce the exact
// deterministic outputs — a recycled buffer leaking between concurrent
// runs, or a released scratch still referenced by a straggler lane,
// shows up as corrupt outputs here and as a report under -race.
func TestRecycledScratchConcurrentRuns(t *testing.T) {
	inputs := seqInputs(64)
	want := wantOutputs(inputs)
	p := pool.New(8)
	defer p.Close()
	dGood := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	dAbort := New(deterministicCompute, badAux, walkOps()) // every validation fails → abort → fallback

	const goroutines = 8
	runs := 12
	if testing.Short() {
		runs = 3
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				o := Options{
					GroupSize: 8, Window: 8, RedoMax: 1, Rollback: 4,
					Pool: p, Seed: uint64(g)<<32 | uint64(i),
				}
				d := dGood
				switch (g + i) % 4 {
				case 0: // aux speculation, validations succeed
					o.UseAux = true
				case 1: // deterministic reservations
					o.UseAux = true
					o.Protocol = ProtocolReservations
				case 2: // aux speculation, every group aborts into fallback
					o.UseAux = true
					d = dAbort
				case 3: // sequential path interleaved with the recyclers
				}
				outs, final, _ := d.Run(inputs, walkState{}, o)
				if len(outs) != len(want) {
					t.Errorf("g%d run %d: %d outputs, want %d", g, i, len(outs), len(want))
					return
				}
				for k := range want {
					if outs[k] != want[k] {
						t.Errorf("g%d run %d (mode %d): output[%d] = %d, want %d",
							g, i, (g+i)%4, k, outs[k], want[k])
						return
					}
				}
				var wantV float64
				for _, in := range inputs {
					wantV += float64(in)
				}
				if final.V != wantV {
					t.Errorf("g%d run %d: final state %v, want %v", g, i, final.V, wantV)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
