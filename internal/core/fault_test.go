package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rng"
)

// panicOnce builds a compute that panics the first time it sees the given
// input value and behaves deterministically ever after — the shape of a
// transient fault: the speculative lane dies, the fallback re-execution
// succeeds.
func panicOnce(trigger int) Compute[int, walkState, int] {
	var tripped atomic.Bool
	return func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in == trigger && tripped.CompareAndSwap(false, true) {
			panic("transient user bug")
		}
		return deterministicCompute(r, in, s)
	}
}

func TestLanePanicContained(t *testing.T) {
	// A panic on a speculative lane must not kill the process or corrupt
	// the output: the group squashes, the inputs replay sequentially, and
	// the run completes with byte-identical results.
	inputs := seqInputs(12)
	d := New(panicOnce(8), exactAuxFor(inputs), walkOps())
	o := obs.NewObserver(8, 0)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3, Obs: o,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.PanickedGroups < 1 {
		t.Fatalf("PanickedGroups = %d, want >= 1", st.PanickedGroups)
	}
	if st.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", st.Aborts)
	}
	if st.SquashedInputs != st.FallbackInputs {
		t.Fatalf("SquashedInputs %d != FallbackInputs %d", st.SquashedInputs, st.FallbackInputs)
	}
	if st.FallbackInputs < 3 {
		t.Fatalf("FallbackInputs = %d, want >= one group", st.FallbackInputs)
	}

	// Stats, metrics and the event log must agree on the panic count.
	if got := o.PanickedGroups.Value(); got != int64(st.PanickedGroups) {
		t.Fatalf("metric panicked=%d, stats=%d", got, st.PanickedGroups)
	}
	panicEvents := 0
	for _, ev := range o.Tracer.Snapshot() {
		if ev.Kind == obs.EvPanic {
			panicEvents++
		}
	}
	if panicEvents != st.PanickedGroups {
		t.Fatalf("event log panics=%d, stats=%d", panicEvents, st.PanickedGroups)
	}
}

func TestAuxPanicContained(t *testing.T) {
	// A panicking auxiliary function fails its group before launch; the
	// boundary inspection converts that into an ordinary abort.
	inputs := seqInputs(12)
	exact := exactAuxFor(inputs)
	calls := 0
	aux := func(r *rng.Source, init walkState, recent []int) walkState {
		calls++
		if calls == 2 {
			panic("aux bug")
		}
		return exact(r, init, recent)
	}
	d := New(deterministicCompute, aux, walkOps())
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.PanickedGroups != 1 {
		t.Fatalf("PanickedGroups = %d, want 1", st.PanickedGroups)
	}
	// Aux attempts are still counted per boundary, so the paper's
	// AuxCalls == Groups-1 relation survives the panic.
	if st.AuxCalls != st.Groups-1 {
		t.Fatalf("AuxCalls = %d, want Groups-1 = %d", st.AuxCalls, st.Groups-1)
	}
}

func TestMatchAnyPanicContained(t *testing.T) {
	// A panic in the developer's acceptance method is attributed to the
	// boundary's unvalidated group and contained like any lane panic.
	inputs := seqInputs(12)
	calls := 0
	ops := walkOps()
	base := ops.MatchAny
	ops.MatchAny = func(spec walkState, originals []walkState) bool {
		calls++
		if calls == 2 {
			panic("match bug")
		}
		return base(spec, originals)
	}
	d := New(deterministicCompute, exactAuxFor(inputs), ops)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.PanickedGroups != 1 {
		t.Fatalf("PanickedGroups = %d, want 1", st.PanickedGroups)
	}
	if st.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", st.Aborts)
	}
}

func TestGroupZeroPanicFallsBackFromInitial(t *testing.T) {
	// Group 0 runs from the true initial state; if its lane panics the
	// whole vector replays sequentially from that same initial state.
	inputs := seqInputs(9)
	d := New(panicOnce(1), exactAuxFor(inputs), walkOps())
	outs, final, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 9, Workers: 4, Seed: 5,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	want := 0.0
	for _, v := range inputs {
		want += float64(v)
	}
	if final.V != want {
		t.Fatalf("final state %v, want %v", final.V, want)
	}
	if st.FallbackInputs != len(inputs) || st.SquashedInputs != len(inputs) {
		t.Fatalf("fallback=%d squashed=%d, want both %d",
			st.FallbackInputs, st.SquashedInputs, len(inputs))
	}
	if st.SpeculativeCommits != 0 {
		t.Fatalf("SpeculativeCommits = %d, want 0", st.SpeculativeCommits)
	}
}

func TestGroupTimeoutSquashes(t *testing.T) {
	// A speculative lane exceeding GroupTimeout squashes like a mismatch;
	// group 0 is exempt, so the run still completes correctly.
	inputs := seqInputs(12)
	compute := func(r *rng.Source, in int, s walkState) (int, walkState) {
		if in > 3 { // groups past the first are slow
			time.Sleep(20 * time.Millisecond)
		}
		return deterministicCompute(r, in, s)
	}
	d := New(compute, exactAuxFor(inputs), walkOps())
	o := obs.NewObserver(8, 0)
	outs, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 9,
		GroupTimeout: time.Millisecond, Obs: o,
	})
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.TimedOutGroups < 1 {
		t.Fatalf("TimedOutGroups = %d, want >= 1", st.TimedOutGroups)
	}
	if st.Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", st.Aborts)
	}
	if got := o.GroupTimeouts.Value(); got != int64(st.TimedOutGroups) {
		t.Fatalf("metric timeouts=%d, stats=%d", got, st.TimedOutGroups)
	}
	timeoutEvents := 0
	for _, ev := range o.Tracer.Snapshot() {
		if ev.Kind == obs.EvGroupTimeout {
			timeoutEvents++
			if ev.Arg <= 0 {
				t.Fatalf("timeout event arg %d, want elapsed ns > 0", ev.Arg)
			}
		}
	}
	if timeoutEvents != st.TimedOutGroups {
		t.Fatalf("event log timeouts=%d, stats=%d", timeoutEvents, st.TimedOutGroups)
	}
}

func TestGroupTimeoutZeroDisables(t *testing.T) {
	inputs := seqInputs(12)
	d := New(deterministicCompute, exactAuxFor(inputs), walkOps())
	_, _, st := d.Run(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 2,
	})
	if st.TimedOutGroups != 0 {
		t.Fatalf("TimedOutGroups = %d with no deadline", st.TimedOutGroups)
	}
}

func TestRunCheckedReportsSequentialPanic(t *testing.T) {
	// With no speculation there is no safe fallback: RunChecked converts
	// the propagating panic into a *PanicError carrying the origin stack.
	compute := func(_ *rng.Source, in int, s walkState) (int, walkState) {
		panic("seq bug")
	}
	d := New(compute, nil, walkOps())
	_, _, _, err := d.RunChecked(seqInputs(3), walkState{}, Options{Seed: 1})
	if err == nil {
		t.Fatal("RunChecked returned nil error for a sequential panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error type %T, want *PanicError", err)
	}
	if pe.Value != "seq bug" {
		t.Fatalf("panic value %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "fault_test.go") {
		t.Fatalf("stack lost the panic origin:\n%s", pe.Stack)
	}
}

func TestRunCheckedContainsLanePanic(t *testing.T) {
	// A transient speculative-lane panic is contained either way;
	// RunChecked reports success.
	inputs := seqInputs(12)
	d := New(panicOnce(8), exactAuxFor(inputs), walkOps())
	outs, _, st, err := d.RunChecked(inputs, walkState{}, Options{
		UseAux: true, GroupSize: 3, Window: 12, Workers: 4, Seed: 3,
	})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	checkOutputs(t, outs, wantOutputs(inputs))
	if st.PanickedGroups < 1 {
		t.Fatalf("PanickedGroups = %d, want >= 1", st.PanickedGroups)
	}
}
