package obs

import (
	"testing"
)

// TestPollIncremental: successive polls deliver each event exactly once,
// and together cover everything a full snapshot sees.
func TestPollIncremental(t *testing.T) {
	tr := NewTracer(2, 1<<8)
	var c Cursor
	var got []Event

	for i := 0; i < 10; i++ {
		tr.Emit(i%2, EvGroupStart, int32(i), int64(i))
	}
	got, d := tr.Poll(&c, got)
	if d != 0 {
		t.Fatalf("dropped %d on an unwrapped ring", d)
	}
	if len(got) != 10 {
		t.Fatalf("first poll delivered %d events, want 10", len(got))
	}

	// Nothing new: the poll is empty, not a replay.
	again, d := tr.Poll(&c, nil)
	if len(again) != 0 || d != 0 {
		t.Fatalf("idle poll delivered %d events (%d dropped), want none", len(again), d)
	}

	tr.Emit(0, EvGroupFinish, 3, 7)
	more, d := tr.Poll(&c, nil)
	if d != 0 || len(more) != 1 || more[0].Kind != EvGroupFinish || more[0].Group != 3 {
		t.Fatalf("incremental poll = %v (%d dropped), want the one new finish", more, d)
	}

	seen := map[int32]bool{}
	for _, e := range got {
		seen[e.Group] = true
	}
	if len(seen) != 10 {
		t.Errorf("poll lost groups: saw %d of 10", len(seen))
	}
}

// TestPollWrapCountsDropped: a cursor left behind a lapped ring reports
// exactly how many events it lost and resumes at the oldest retained one.
func TestPollWrapCountsDropped(t *testing.T) {
	const cap = 1 << 4
	tr := NewTracer(1, cap)
	var c Cursor

	tr.Emit(0, EvGroupStart, 0, 0)
	if got, d := tr.Poll(&c, nil); len(got) != 1 || d != 0 {
		t.Fatalf("warmup poll = %d events, %d dropped", len(got), d)
	}

	// Lap the ring: 3*cap more events while the cursor sleeps.
	for i := 0; i < 3*cap; i++ {
		tr.Emit(0, EvGroupStart, int32(i+1), 0)
	}
	got, d := tr.Poll(&c, nil)
	if len(got) != cap {
		t.Errorf("post-lap poll delivered %d events, want the %d retained", len(got), cap)
	}
	if want := int64(3*cap) - cap; d != want {
		t.Errorf("post-lap poll counted %d dropped, want %d", d, want)
	}
	// The survivors are the newest, in order.
	for i := 1; i < len(got); i++ {
		if got[i].Group != got[i-1].Group+1 {
			t.Fatalf("poll out of order at %d: %v -> %v", i, got[i-1], got[i])
		}
	}
	if got[len(got)-1].Group != int32(3*cap) {
		t.Errorf("last polled group = %d, want %d (the newest)", got[len(got)-1].Group, 3*cap)
	}
}

// TestPollMultiLane: the cursor tracks each ring independently.
func TestPollMultiLane(t *testing.T) {
	tr := NewTracer(3, 1<<4)
	var c Cursor
	tr.Emit(0, EvGroupStart, 0, 0)
	tr.Emit(2, EvGroupStart, 2, 0)
	got, _ := tr.Poll(&c, nil)
	if len(got) != 2 {
		t.Fatalf("poll delivered %d events across lanes, want 2", len(got))
	}
	tr.Emit(1, EvGroupStart, 1, 0)
	got, _ = tr.Poll(&c, nil)
	if len(got) != 1 || got[0].Group != 1 {
		t.Fatalf("poll after lane-1 emit = %v, want just group 1", got)
	}
}

// TestPollNilTracer: a nil tracer polls to nothing, like every other obs
// no-op path.
func TestPollNilTracer(t *testing.T) {
	var tr *Tracer
	var c Cursor
	got, d := tr.Poll(&c, nil)
	if len(got) != 0 || d != 0 {
		t.Fatalf("nil tracer polled %d events, %d dropped", len(got), d)
	}
}

// TestHistogramSnapshotSub: windowed bucket deltas and their quantiles.
func TestHistogramSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("x")
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20) // old tail
	}
	base := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	cur := h.Snapshot()

	win := cur.Sub(base)
	if win.Count != 100 {
		t.Errorf("windowed count = %d, want 100", win.Count)
	}
	if q := win.Quantile(0.99); q >= 1<<20 {
		t.Errorf("windowed p99 = %d still sees the pre-window tail", q)
	}
	if q := win.Quantile(0.5); q > 2047 {
		t.Errorf("windowed p50 = %d, want within the 1µs bucket", q)
	}

	// Regression (counter reset) clamps to zero rather than going negative.
	neg := base.Sub(cur)
	if neg.Count != 0 || neg.Sum != 0 {
		t.Errorf("clamped sub = count %d sum %d, want zeros", neg.Count, neg.Sum)
	}

	// Nil receiver snapshots to zero.
	var nilH *Histogram
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram snapshot count = %d", s.Count)
	}
}
