// Package obs is the runtime observability layer: a lock-free speculation
// event tracer and a registry of atomically-updated metrics, cheap enough
// to leave enabled on a serving system.
//
// The paper's evaluation (§5, Fig. 5, Table 1) depends on seeing what the
// speculator did — which groups speculated, which validations matched, how
// many redos preceded each abort — and related work on execution replay
// shows a low-overhead event log is the prerequisite for debugging and
// tuning nondeterministic parallel executions. This package supplies that
// substrate for the whole stack:
//
//   - Tracer: per-lane bounded ring buffers of timestamped Events. Writers
//     never take a lock (per-slot sequence words make concurrent emit and
//     Snapshot safe); a full ring overwrites its oldest records, so memory
//     stays bounded no matter how long the runtime runs. Snapshot merges
//     the lanes into one time-ordered log.
//
//   - Registry: named Counters, Gauges and log-scale Histograms backed by
//     plain atomics, with a deterministic plain-text exposition format
//     (WriteText) in the style every metrics scraper understands.
//
//   - Observer: the pre-registered instrument bundle the engine
//     (internal/core) and the scheduler (internal/pool) write into.
//     Every consumer hook sits behind a nil check: a nil *Observer,
//     *Tracer, *Counter or *Histogram is a no-op, so disabled
//     observability costs approximately one branch on the hot path.
//
// Event schema: every event carries a monotonic timestamp (nanoseconds
// since the Tracer's epoch), the emitting lane, a kind, the group index it
// concerns (or -1), and one kind-specific argument (input index, redo
// attempt, queue depth, squashed input count). Scheduler events
// (EvSteal/EvLocalHit/EvTaskFinish) use the lane as the worker id; engine
// events key on Group and use the lane only as a shard hint.
package obs

// Observer bundles the tracer and the typed instruments the runtime
// writes. Emission sites guard on a nil *Observer, so observability is a
// per-run opt-in with a one-branch disabled cost.
type Observer struct {
	// Tracer receives the speculation event log. Never nil on an
	// Observer built by NewObserver.
	Tracer *Tracer
	// Reg is the registry all the instruments below are registered in;
	// WriteText on it exposes everything at once.
	Reg *Registry

	// GroupsStarted and GroupsFinished count group executions entering
	// and leaving the engine's group runner (a squashed group still
	// finishes).
	GroupsStarted  *Counter
	GroupsFinished *Counter
	// AuxProduced counts auxiliary-code executions that produced a
	// speculative start state.
	AuxProduced *Counter
	// Matches, Mismatches, Redos, Aborts and Squashes count validation
	// outcomes: accepted boundaries, first-try rejections, original
	// re-executions, aborted boundaries, and groups squashed by an
	// abort.
	Matches    *Counter
	Mismatches *Counter
	Redos      *Counter
	Aborts     *Counter
	Squashes   *Counter
	// FingerprintHits and FingerprintMisses count hash-first acceptance
	// attempts whose fingerprint prefilter passed through to the deep
	// compare vs rejected without one (dependences defining both
	// MatchAny and Fingerprint).
	FingerprintHits   *Counter
	FingerprintMisses *Counter
	// FallbackInputs counts inputs reprocessed sequentially after an
	// abort.
	FallbackInputs *Counter
	// SpecCommittedInputs counts inputs whose outputs were committed
	// from a speculative (group > 0) execution — the numerator of the
	// telemetry layer's fallback-rate denominator.
	SpecCommittedInputs *Counter
	// PanickedGroups counts speculative groups squashed because user
	// code panicked on their lane; the panic was contained and the
	// group's inputs reprocessed sequentially.
	PanickedGroups *Counter
	// GroupTimeouts counts speculative groups squashed because their
	// lane exceeded the configured per-group deadline.
	GroupTimeouts *Counter
	// BreakerDenied counts runs whose speculation was suppressed by an
	// open circuit breaker.
	BreakerDenied *Counter

	// Reserves, ReserveConflicts and Commits count the deterministic-
	// reservations protocol's phases: slot reservations written, inputs
	// that lost a slot to a lower index and carried forward, and inputs
	// whose outputs the coordinator committed.
	Reserves         *Counter
	ReserveConflicts *Counter
	Commits          *Counter

	// FootprintViolations counts state slots the FootprintCheck oracle
	// caught being touched outside a declared reservation footprint.
	FootprintViolations *Counter

	// LaneCPUCommitted and LaneCPUWasted accumulate the lane CPU-time
	// (wall-clock nanoseconds measured at lane boundaries) whose results
	// were committed vs discarded — the wasted-work split the paper's
	// speculation trade lives on. Their sum over a run equals
	// Stats.LaneCPUCommittedNS + Stats.LaneCPUWastedNS.
	LaneCPUCommitted *Counter
	LaneCPUWasted    *Counter

	// Steals, LocalHits and TasksDone count the scheduler's dispatches:
	// cross-worker steals, contention-free local pops, and completed
	// tasks.
	Steals    *Counter
	LocalHits *Counter
	TasksDone *Counter

	// ValidationLatencyNS observes the wall-clock nanoseconds each group
	// boundary took to resolve (including redo re-executions).
	ValidationLatencyNS *Histogram
	// RedosPerValidation observes how many re-executions each boundary
	// consumed; its Sum equals the Redos counter and its Count the
	// number of validations.
	RedosPerValidation *Histogram
	// RoundsPerGroup observes how many reserve/check/commit rounds each
	// reservations group needed; its Sum equals Stats.Rounds and its
	// Count the number of groups the protocol processed.
	RoundsPerGroup *Histogram
	// QueueDepth observes the scheduler's per-deque depth after every
	// push; QueueDepthPeak tracks the lifetime maximum.
	QueueDepth     *Histogram
	QueueDepthPeak *Gauge
}

// NewObserver builds an Observer with a Tracer of the given lane count and
// per-lane capacity (zero values pick defaults) and a fresh Registry with
// every engine and scheduler instrument pre-registered, HELP strings
// attached, and the tracer's emit/drop totals exposed as function-backed
// counters so ring overwrite is visible on every scrape.
func NewObserver(lanes, perLaneCap int) *Observer {
	reg := NewRegistry()
	tr := NewTracer(lanes, perLaneCap)
	o := &Observer{
		Tracer: tr,
		Reg:    reg,

		GroupsStarted:  reg.Counter("stats_groups_started_total"),
		GroupsFinished: reg.Counter("stats_groups_finished_total"),
		AuxProduced:    reg.Counter("stats_aux_produced_total"),
		Matches:        reg.Counter("stats_validation_match_total"),
		Mismatches:     reg.Counter("stats_validation_mismatch_total"),
		FingerprintHits: reg.Counter(
			"stats_fingerprint_hits_total"),
		FingerprintMisses: reg.Counter(
			"stats_fingerprint_misses_total"),
		Redos: reg.Counter("stats_redos_total"),
		Aborts:         reg.Counter("stats_aborts_total"),
		Squashes:       reg.Counter("stats_squashed_groups_total"),
		FallbackInputs: reg.Counter("stats_fallback_inputs_total"),
		SpecCommittedInputs: reg.Counter(
			"stats_speculative_commit_inputs_total"),
		PanickedGroups: reg.Counter("stats_panicked_groups_total"),
		GroupTimeouts:  reg.Counter("stats_group_timeouts_total"),
		BreakerDenied:  reg.Counter("stats_breaker_denied_runs_total"),

		Reserves:         reg.Counter("stats_reserves_total"),
		ReserveConflicts: reg.Counter("stats_reserve_conflicts_total"),
		Commits:          reg.Counter("stats_reservation_commits_total"),

		FootprintViolations: reg.Counter("stats_footprint_violations_total"),

		LaneCPUCommitted: reg.Counter("stats_lane_cpu_committed_ns_total"),
		LaneCPUWasted:    reg.Counter("stats_lane_cpu_wasted_ns_total"),

		Steals:    reg.Counter("sched_steals_total"),
		LocalHits: reg.Counter("sched_local_hits_total"),
		TasksDone: reg.Counter("sched_tasks_done_total"),

		ValidationLatencyNS: reg.Histogram("stats_validation_latency_ns"),
		RedosPerValidation:  reg.Histogram("stats_redos_per_validation"),
		RoundsPerGroup:      reg.Histogram("stats_rounds_per_group"),
		QueueDepth:          reg.Histogram("sched_queue_depth"),
		QueueDepthPeak:      reg.Gauge("sched_queue_depth_peak"),
	}
	reg.CounterFunc("trace_events_emitted_total", tr.Emitted)
	reg.CounterFunc("trace_events_dropped_total", tr.Dropped)
	for name, help := range map[string]string{
		"stats_groups_started_total":            "group executions entering the engine's group runner",
		"stats_groups_finished_total":           "group executions returning (squashed groups included)",
		"stats_aux_produced_total":              "auxiliary-code executions that produced a speculative start state",
		"stats_validation_match_total":          "group boundaries whose speculative state was accepted",
		"stats_validation_mismatch_total":       "group boundaries whose first validation attempt rejected the speculative state",
		"stats_fingerprint_hits_total":          "hash-first acceptance attempts whose fingerprint prefilter fell through to the deep compare",
		"stats_fingerprint_misses_total":        "hash-first acceptance attempts rejected by the fingerprint prefilter without a deep compare",
		"stats_redos_total":                     "original-producer re-executions",
		"stats_aborts_total":                    "boundaries that exhausted their redo budget and aborted speculation",
		"stats_squashed_groups_total":           "groups squashed by an abort",
		"stats_fallback_inputs_total":           "inputs reprocessed sequentially after an abort",
		"stats_speculative_commit_inputs_total": "inputs committed from a speculative (group > 0) execution",
		"stats_panicked_groups_total":           "speculative groups squashed by a contained user-code panic",
		"stats_group_timeouts_total":            "speculative groups squashed by the per-group deadline",
		"stats_breaker_denied_runs_total":       "runs whose speculation was suppressed by an open circuit breaker",
		"stats_reserves_total":                  "slot reservations written by the deterministic-reservations protocol",
		"stats_reserve_conflicts_total":         "inputs that lost a reserved slot to a lower index and carried forward",
		"stats_reservation_commits_total":       "inputs committed by the reservations coordinator",
		"stats_footprint_violations_total":      "state slots touched outside a declared reservation footprint (FootprintCheck oracle)",
		"stats_lane_cpu_committed_ns_total":     "lane CPU nanoseconds whose results were committed",
		"stats_lane_cpu_wasted_ns_total":        "lane CPU nanoseconds whose results were discarded (aborts, squashes, timeouts, lost reservations)",
		"stats_rounds_per_group":                "reserve/check/commit rounds needed per reservations group",
		"sched_steals_total":                    "cross-worker task dispatches (work stealing)",
		"sched_local_hits_total":                "contention-free local-deque task dispatches",
		"sched_tasks_done_total":                "tasks completed by the scheduler",
		"stats_validation_latency_ns":           "wall-clock nanoseconds each group boundary took to resolve",
		"stats_redos_per_validation":            "re-executions consumed per group boundary",
		"sched_queue_depth":                     "per-deque depth observed after each push",
		"sched_queue_depth_peak":                "lifetime maximum single-deque depth",
		"trace_events_emitted_total":            "events ever emitted into the tracer's rings",
		"trace_events_dropped_total":            "events evicted by ring wrap-around (bounded-memory loss)",
	} {
		reg.SetHelp(name, help)
	}
	return o
}
